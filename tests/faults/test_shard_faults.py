"""The fault matrix over ``shard_and_solve``:

{thread, process} × {crash, timeout, transient-raise, corrupt-result}
× {raise, retry, drop} — plus the headline determinism property: a
recovered run is byte-identical to one that never failed, and a
degraded run carries a valid widened certificate.
"""

import os
import time

import numpy as np
import pytest

from repro.analysis import DegradedCoresetBound
from repro.errors import InvalidParameterError, ShardFailedError
from repro.faults import NO_RETRY, FaultPlan, RetryPolicy
from repro.pram.backends import ProcessBackend, ThreadBackend
from repro.pram.machine import PramMachine
from repro.shard import shard_and_solve

SEED = 31
K = 4
SHARDS = 4
TARGET = 1  # the shard every fault hits

_rng = np.random.default_rng(5)
POINTS = _rng.normal(size=(1200, 2)) + _rng.integers(0, K, size=(1200, 1)) * 5.0

SOLVE_KW = dict(
    shards=SHARDS, coreset_size=32, neighbors=16, seed=SEED, solver="kmedian"
)


def _backend(name):
    return ThreadBackend(3, grain=1) if name == "thread" else ProcessBackend(3, grain=1)


def _solve(backend, **kw):
    machine = PramMachine(backend=backend, seed=SEED)
    return shard_and_solve(POINTS, K, machine=machine, **SOLVE_KW, **kw)


def _plan(kind, *, every):
    return FaultPlan.single(
        kind,
        TARGET,
        attempt=None if every else 1,
        duration=0.8 if kind == "sleep" else 0.0,
    )


def _policy(kind, *, retries):
    return RetryPolicy(
        max_attempts=3 if retries else 1,
        base_delay=0.0,
        jitter=0.0,
        timeout=0.25 if kind == "sleep" else None,
    )


_BASELINE: dict = {}


def _baseline(backend_name):
    if backend_name not in _BASELINE:
        with _backend(backend_name) as b:
            _BASELINE[backend_name] = _solve(b)
    return _BASELINE[backend_name]


def _assert_byte_identical(sol, base):
    assert np.array_equal(sol.centers, base.centers)
    assert np.array_equal(sol.merged_centers, base.merged_centers)
    assert sol.cost == base.cost
    assert sol.true_cost == base.true_cost
    assert sol.movement == base.movement
    assert np.array_equal(sol.coreset_sizes, base.coreset_sizes)
    assert not sol.degraded and sol.failures == []


def _assert_valid_degradation(sol, base):
    assert sol.degraded
    assert sol.failed_shards.tolist() == [TARGET]
    assert 0.0 < sol.covered_weight_fraction < 1.0
    assert sol.coreset_sizes[TARGET] == 0
    assert len(sol.failures) >= 1
    assert isinstance(sol.bound, DegradedCoresetBound)
    assert sol.bound.dropped_movement > 0.0
    assert sol.bound.covered_weight_fraction == sol.covered_weight_fraction
    # widened: the additive term exceeds the surviving-movement one
    assert sol.bound.additive_term > (sol.bound.solver_ratio + 1.0) * sol.movement
    # the verifiable triangle-inequality sandwich over the full input
    rhs = (
        sol.extra["merged_cost_exact"]
        + sol.movement
        + sol.extra["dropped_movement"]
        + sol.extra["dropped_rep_service"]
    )
    assert sol.true_cost <= rhs * (1.0 + 1e-9)
    # degrading can only lose demand: it never beats the clean optimum
    # by covering less, so the reported true cost stays comparable
    assert sol.true_cost >= base.true_cost * 0.5


@pytest.mark.parametrize("backend_name", ["thread", "process"])
@pytest.mark.parametrize("kind", ["crash", "sleep", "raise", "corrupt"])
class TestFaultMatrix:
    def test_raise_mode_surfaces_shard_failure(self, backend_name, kind):
        with _backend(backend_name) as b:
            with pytest.raises(ShardFailedError) as ei:
                _solve(
                    b,
                    on_shard_failure="raise",
                    fault_plan=_plan(kind, every=True),
                    retry_policy=_policy(kind, retries=False),
                )
        assert ei.value.__cause__ is not None

    def test_retry_mode_recovers_byte_identical(self, backend_name, kind):
        with _backend(backend_name) as b:
            sol = _solve(
                b,
                on_shard_failure="retry",
                fault_plan=_plan(kind, every=False),  # attempt 1 only
                retry_policy=_policy(kind, retries=True),
            )
        _assert_byte_identical(sol, _baseline(backend_name))

    def test_drop_mode_degrades_with_valid_certificate(self, backend_name, kind):
        with _backend(backend_name) as b:
            sol = _solve(
                b,
                on_shard_failure="drop",
                fault_plan=_plan(kind, every=True),
                retry_policy=_policy(kind, retries=False),
            )
        _assert_valid_degradation(sol, _baseline(backend_name))


class TestSupervisedCleanRuns:
    @pytest.mark.parametrize("backend_name", ["thread", "process"])
    def test_zero_faults_byte_identical_to_unsupervised(self, backend_name):
        with _backend(backend_name) as b:
            sol = _solve(b, on_shard_failure="retry")
        _assert_byte_identical(sol, _baseline(backend_name))


class TestDegradationProperties:
    def test_drop_deterministic_across_backends(self):
        """Dropping the same shard yields byte-identical degraded
        results on thread and process pools — surviving coresets are
        seed-determined, never scheduling-determined."""
        sols = []
        for name in ("thread", "process"):
            with _backend(name) as b:
                sols.append(
                    _solve(
                        b,
                        on_shard_failure="drop",
                        fault_plan=_plan("crash", every=True),
                        retry_policy=NO_RETRY,
                    )
                )
        a, b_ = sols
        assert np.array_equal(a.centers, b_.centers)
        assert a.true_cost == b_.true_cost
        assert a.covered_weight_fraction == b_.covered_weight_fraction

    def test_coverage_floor_refuses_to_degrade(self):
        plan = FaultPlan(
            specs=tuple(
                FaultPlan.single("raise", s, attempt=None).specs[0] for s in (0, 1, 2)
            )
        )
        with _backend("thread") as b:
            with pytest.raises(ShardFailedError, match="coverage_floor"):
                _solve(
                    b,
                    on_shard_failure="drop",
                    fault_plan=plan,
                    retry_policy=NO_RETRY,
                    coverage_floor=0.9,
                )

    def test_all_shards_failed_raises(self):
        plan = FaultPlan(
            specs=tuple(
                FaultPlan.single("raise", s, attempt=None).specs[0]
                for s in range(SHARDS)
            )
        )
        with _backend("thread") as b:
            with pytest.raises(ShardFailedError, match="every shard"):
                _solve(
                    b,
                    on_shard_failure="drop",
                    fault_plan=plan,
                    retry_policy=NO_RETRY,
                    coverage_floor=0.01,
                )

    def test_env_fault_plan_activates_supervision(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_PLAN", f"raise@{TARGET}#*")
        with _backend("thread") as b:
            sol = _solve(b, on_shard_failure="drop", retry_policy=NO_RETRY)
        assert sol.degraded and sol.failed_shards.tolist() == [TARGET]

    def test_weighted_input_coverage_accounting(self):
        w = np.ones(POINTS.shape[0])
        with _backend("thread") as b:
            sol = _solve(
                b,
                weights=w * 2.0,
                on_shard_failure="drop",
                fault_plan=_plan("raise", every=True),
                retry_policy=NO_RETRY,
            )
        assert sol.degraded
        # uniform weights: covered fraction equals covered point fraction
        covered_points = sol.shard_sizes.sum() - sol.shard_sizes[TARGET]
        assert sol.covered_weight_fraction == pytest.approx(
            covered_points / sol.shard_sizes.sum()
        )


class TestParameterValidation:
    def test_bad_mode_rejected(self):
        with pytest.raises(InvalidParameterError, match="on_shard_failure"):
            shard_and_solve(POINTS, K, on_shard_failure="panic", **SOLVE_KW)

    @pytest.mark.parametrize("floor", [0.0, -0.5, 1.5, float("nan")])
    def test_bad_coverage_floor_rejected(self, floor):
        with pytest.raises(InvalidParameterError, match="coverage_floor"):
            shard_and_solve(POINTS, K, coverage_floor=floor, **SOLVE_KW)

    def test_bad_retry_policy_rejected(self):
        with pytest.raises(InvalidParameterError, match="retry_policy"):
            shard_and_solve(POINTS, K, retry_policy="three", **SOLVE_KW)


@pytest.mark.skipif(
    os.environ.get("REPRO_SLOW_FAULTS") != "1",
    reason="250k recovery run; set REPRO_SLOW_FAULTS=1 (CI fault leg)",
)
class TestRecoveryAtScale:
    """The acceptance run: 250k points, process backend, one injected
    crash mid-build."""

    N = 250_000

    def _points(self):
        rng = np.random.default_rng(17)
        return rng.normal(size=(self.N, 3)) + rng.integers(
            0, 8, size=(self.N, 1)
        ) * 6.0

    def _solve(self, backend, **kw):
        machine = PramMachine(backend=backend, seed=SEED)
        return shard_and_solve(
            self._points(), 8, machine=machine, shards=8,
            coreset_size=256, seed=SEED, solver="kmedian", **kw,
        )

    def test_crash_recovery_and_degradation(self):
        with ProcessBackend(4, grain=1) as b:
            t0 = time.perf_counter()
            base = self._solve(b)
            base_wall = time.perf_counter() - t0

            plan = FaultPlan.single("crash", 2)
            recovered = self._solve(
                b, on_shard_failure="retry", fault_plan=plan,
                retry_policy=RetryPolicy(base_delay=0.0, jitter=0.0),
            )
            assert np.array_equal(recovered.centers, base.centers)
            assert recovered.true_cost == base.true_cost
            assert not recovered.degraded

            t0 = time.perf_counter()
            dropped = self._solve(
                b, on_shard_failure="drop",
                fault_plan=FaultPlan.single("crash", 2, attempt=None),
                retry_policy=NO_RETRY,
            )
            drop_wall = time.perf_counter() - t0
            assert dropped.degraded
            assert dropped.covered_weight_fraction < 1.0
            rhs = (
                dropped.extra["merged_cost_exact"]
                + dropped.movement
                + dropped.extra["dropped_movement"]
                + dropped.extra["dropped_rep_service"]
            )
            assert dropped.true_cost <= rhs * (1.0 + 1e-9)
            assert drop_wall < 2.0 * base_wall + 1.0
