"""FaultPlan/FaultSpec: deterministic fault descriptions and parsing."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.faults import (
    FaultPlan,
    FaultSpec,
    InjectedFaultError,
    apply_fault_after,
    apply_fault_before,
    corrupt_result,
)
from repro.shard import build_coreset


class TestFaultSpec:
    def test_matches_pins_index_and_attempt(self):
        spec = FaultSpec("raise", 3, attempt=2)
        assert spec.matches(3, 2)
        assert not spec.matches(3, 1)
        assert not spec.matches(2, 2)

    def test_attempt_none_matches_every_attempt(self):
        spec = FaultSpec("crash", 0, attempt=None)
        assert all(spec.matches(0, a) for a in (1, 2, 5))

    @pytest.mark.parametrize(
        "kw",
        [
            dict(kind="melt", index=0),
            dict(kind="raise", index=-1),
            dict(kind="raise", index=0, attempt=0),
            dict(kind="sleep", index=0, duration=-0.5),
        ],
    )
    def test_validation(self, kw):
        with pytest.raises(InvalidParameterError):
            FaultSpec(**kw)


class TestFaultPlan:
    def test_lookup_first_match_wins(self):
        plan = FaultPlan(
            specs=(FaultSpec("raise", 1), FaultSpec("crash", 1, attempt=None))
        )
        assert plan.lookup(1, 1).kind == "raise"
        assert plan.lookup(1, 2).kind == "crash"
        assert plan.lookup(0, 1) is None

    def test_single(self):
        plan = FaultPlan.single("sleep", 2, duration=0.25)
        assert len(plan) == 1
        assert plan.lookup(2, 1).duration == 0.25

    def test_rejects_non_spec_entries(self):
        with pytest.raises(InvalidParameterError):
            FaultPlan(specs=("crash@1",))

    def test_random_is_seed_deterministic(self):
        a = FaultPlan.random(42, 10, n_faults=3)
        b = FaultPlan.random(42, 10, n_faults=3)
        assert a == b
        assert len(a) == 3
        assert len({s.index for s in a.specs}) == 3  # distinct targets
        assert all(s.kind in ("crash", "raise") for s in a.specs)

    def test_random_validation(self):
        with pytest.raises(InvalidParameterError):
            FaultPlan.random(0, 0)
        with pytest.raises(InvalidParameterError):
            FaultPlan.random(0, 4, n_faults=5)


class TestFromEnv:
    def test_unset_is_none(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULT_PLAN", raising=False)
        assert FaultPlan.from_env() is None
        monkeypatch.setenv("REPRO_FAULT_PLAN", "   ")
        assert FaultPlan.from_env() is None

    def test_grammar(self, monkeypatch):
        monkeypatch.setenv(
            "REPRO_FAULT_PLAN", "crash@1, sleep@0:0.5, raise@3#2, corrupt@2#*"
        )
        plan = FaultPlan.from_env()
        kinds = [(s.kind, s.index, s.attempt, s.duration) for s in plan.specs]
        assert kinds == [
            ("crash", 1, 1, 0.0),
            ("sleep", 0, 1, 0.5),
            ("raise", 3, 2, 0.0),
            ("corrupt", 2, None, 0.0),
        ]

    @pytest.mark.parametrize("bad", ["explode@1", "crash@x", "crash@1#zero", "crash"])
    def test_bad_grammar_rejected(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_FAULT_PLAN", bad)
        with pytest.raises(InvalidParameterError):
            FaultPlan.from_env()


class TestApplication:
    def test_raise_fault_fires(self):
        with pytest.raises(InjectedFaultError):
            apply_fault_before(FaultSpec("raise", 0))

    def test_none_spec_is_noop(self):
        apply_fault_before(None)
        assert apply_fault_after(None, "x") == "x"

    def test_corrupt_negates_coreset_weights(self, rng):
        coreset = build_coreset(rng.random((40, 2)), 8, seed=0)
        bad = corrupt_result(coreset)
        assert np.all(np.asarray(bad.weights) < 0)
        # the original is untouched (dataclasses.replace copies)
        assert np.all(np.asarray(coreset.weights) > 0)

    def test_corrupt_bare_array_and_opaque(self):
        arr = np.ones(3)
        assert np.array_equal(corrupt_result(arr), -arr)
        assert corrupt_result("not-an-array") is None
