"""Supervisor: retry/timeout/backoff/crash recovery over real pools."""

import time

import numpy as np
import pytest

from repro.errors import (
    ExecutionError,
    InvalidParameterError,
    TaskTimeoutError,
    WorkerCrashError,
)
from repro.faults import (
    NO_RETRY,
    FaultPlan,
    RetryPolicy,
    Supervisor,
    TaskFailure,
    supervised_submit_batch,
)
from repro.pram.backends import ProcessBackend, SerialBackend, ThreadBackend

FAST = RetryPolicy(base_delay=0.0, jitter=0.0)


def _square(x):
    return x * x


def _sleepy(x):
    time.sleep(x)
    return x


@pytest.fixture(params=["serial", "thread", "process"])
def backend(request):
    b = {
        "serial": SerialBackend,
        "thread": lambda: ThreadBackend(2, grain=1),
        "process": lambda: ProcessBackend(2, grain=1),
    }[request.param]
    b = b() if request.param != "serial" else SerialBackend()
    yield b
    b.close()


class TestRetryPolicy:
    @pytest.mark.parametrize(
        "kw",
        [
            dict(max_attempts=0),
            dict(max_attempts=-2),
            dict(base_delay=-0.1),
            dict(jitter=-1.0),
            dict(backoff=0.5),
            dict(timeout=0.0),
            dict(timeout=-1.0),
            dict(timeout=float("nan")),
            dict(retryable_exceptions=("ValueError",)),
        ],
    )
    def test_validation(self, kw):
        with pytest.raises(InvalidParameterError):
            RetryPolicy(**kw)

    def test_delay_grows_and_is_deterministic(self):
        p = RetryPolicy(base_delay=0.1, backoff=2.0, jitter=0.5)
        d1, d2 = p.delay(1, index=3), p.delay(2, index=3)
        assert 0.1 <= d1 <= 0.15
        assert 0.2 <= d2 <= 0.3
        assert d1 == p.delay(1, index=3)  # no wall-clock entropy

    def test_no_retry_constant(self):
        assert NO_RETRY.max_attempts == 1
        assert NO_RETRY.delay(1) == 0.0


class TestSupervisorBasics:
    def test_clean_batch_matches_serial(self, backend):
        results, failures = Supervisor(backend, FAST).submit_batch(
            _square, list(range(8))
        )
        assert results == [x * x for x in range(8)]
        assert failures == []

    def test_constructor_validation(self):
        with pytest.raises(InvalidParameterError):
            Supervisor(SerialBackend(), policy="retry-lots")
        with pytest.raises(InvalidParameterError):
            Supervisor(SerialBackend(), fault_plan="crash@1")

    def test_unpicklable_fn_runs_inline_on_process_pool(self):
        seen = []

        def closure(x):
            seen.append(x)
            return x + 1

        with ProcessBackend(2, grain=1) as b:
            results, failures = Supervisor(b, FAST).submit_batch(closure, [1, 2])
        assert results == [2, 3] and failures == [] and seen == [1, 2]


class TestTransientFaults:
    def test_raise_retried_to_success(self, backend):
        plan = FaultPlan.single("raise", 2)  # attempt 1 only
        results, failures = Supervisor(backend, FAST, plan).submit_batch(
            _square, list(range(5))
        )
        assert results == [x * x for x in range(5)]
        assert failures == []

    def test_exhausted_budget_yields_failure_record(self, backend):
        plan = FaultPlan.single("raise", 1, attempt=None)  # every attempt
        results, failures = Supervisor(backend, FAST, plan).submit_batch(
            _square, [5, 6, 7]
        )
        assert results == [25, None, 49]
        (f,) = failures
        assert isinstance(f, TaskFailure)
        assert f.index == 1
        assert f.attempts == FAST.max_attempts
        assert isinstance(f.error, ExecutionError)
        assert f.error.__cause__ is not None
        assert f.duration >= 0.0

    def test_non_retryable_exception_fails_fast(self, backend):
        policy = RetryPolicy(base_delay=0.0, jitter=0.0, retryable_exceptions=(KeyError,))
        plan = FaultPlan.single("raise", 0, attempt=None)
        _, failures = Supervisor(backend, policy, plan).submit_batch(_square, [1, 2])
        (f,) = failures
        assert f.attempts == 1  # InjectedFaultError is not a KeyError


class TestCrashFaults:
    @pytest.mark.parametrize("make", [lambda: ThreadBackend(2, grain=1),
                                      lambda: ProcessBackend(2, grain=1)])
    def test_crash_retried_to_success(self, make):
        with make() as b:
            results, failures = Supervisor(b, FAST, FaultPlan.single("crash", 1)).submit_batch(
                _square, list(range(6))
            )
        assert results == [x * x for x in range(6)]
        assert failures == []

    def test_process_crash_attributed_to_one_task(self):
        """Pool breakage poisons every future; the sentinel flags must
        pin the failure on the crashed task alone — collateral tasks
        rerun for free even under NO_RETRY."""
        with ProcessBackend(2, grain=1) as b:
            results, failures = Supervisor(
                b, NO_RETRY, FaultPlan.single("crash", 1, attempt=None)
            ).submit_batch(_square, list(range(8)))
            assert [i for i, r in enumerate(results) if r is None] == [1]
            (f,) = failures
            assert isinstance(f.error, WorkerCrashError)
            # the pool was respawned: the backend still works
            assert b.submit_batch(_square, [2, 3]) == [4, 9]

    def test_inline_crash_is_simulated(self):
        results, failures = Supervisor(
            SerialBackend(), NO_RETRY, FaultPlan.single("crash", 0, attempt=None)
        ).submit_batch(_square, [3, 4])
        assert results == [None, 16]
        assert isinstance(failures[0].error, WorkerCrashError)


class TestTimeouts:
    def test_process_timeout_classified_and_pool_respawned(self):
        policy = RetryPolicy(
            max_attempts=1, base_delay=0.0, jitter=0.0, timeout=0.2
        )
        with ProcessBackend(2, grain=1) as b:
            t0 = time.perf_counter()
            results, failures = Supervisor(
                b, policy, FaultPlan.single("sleep", 0, attempt=None, duration=2.0)
            ).submit_batch(_sleepy, [0.0, 0.01])
            wall = time.perf_counter() - t0
            assert results[0] is None and results[1] == 0.01
            assert isinstance(failures[0].error, TaskTimeoutError)
            assert wall < 1.5  # did not wait out the 2s sleep
            assert b.submit_batch(_square, [5]) == [25]

    def test_inline_timeout_flagged_post_hoc(self):
        policy = RetryPolicy(max_attempts=1, base_delay=0.0, jitter=0.0, timeout=0.05)
        results, failures = Supervisor(SerialBackend(), policy).submit_batch(
            _sleepy, [0.12]
        )
        assert results == [None]
        assert isinstance(failures[0].error, TaskTimeoutError)
        assert failures[0].duration >= 0.05


class TestValidation:
    def test_rejected_result_retries_then_succeeds(self, backend):
        plan = FaultPlan.single("corrupt", 0)  # attempt 1 only
        arrays = [np.full(3, float(i + 1)) for i in range(3)]

        def validate(index, value):
            if np.any(value <= 0):
                raise ValueError("negative result")

        results, failures = supervised_submit_batch(
            backend, _double, arrays, policy=FAST, fault_plan=plan, validate=validate
        )
        assert failures == []
        for i, r in enumerate(results):
            assert np.array_equal(r, arrays[i] * 2)

    def test_rejected_result_exhausts_budget(self, backend):
        plan = FaultPlan.single("corrupt", 1, attempt=None)

        def validate(index, value):
            if np.any(np.asarray(value) <= 0):
                raise ValueError("negative result")

        results, failures = supervised_submit_batch(
            backend, _double, [np.ones(2), np.ones(2)],
            policy=FAST, fault_plan=plan, validate=validate,
        )
        assert results[1] is None
        (f,) = failures
        assert "rejected result" in str(f.error)
        assert isinstance(f.error.__cause__, ValueError)


def _double(a):
    return a * 2
