"""Satellite: the supervisor records attempt history for *every* task,
successes included, and exposes retry counters through the tracer's
metrics registry."""

from __future__ import annotations

from repro.faults import (
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    Supervisor,
    TaskAttempt,
)
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.pram.backends import SerialBackend

FAST = RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0)


def _square(x):
    return x * x


def test_attempt_log_records_successes():
    sup = Supervisor(SerialBackend(), FAST)
    results, failures = sup.submit_batch(_square, [1, 2, 3])
    assert results == [1, 4, 9]
    assert failures == []
    assert len(sup.attempt_log) == 3
    assert all(isinstance(a, TaskAttempt) for a in sup.attempt_log)
    assert sorted(a.index for a in sup.attempt_log) == [0, 1, 2]
    assert all(a.outcome == "ok" for a in sup.attempt_log)
    assert all(a.attempt == 1 for a in sup.attempt_log)
    assert all(a.error is None for a in sup.attempt_log)
    assert all(a.duration >= 0.0 for a in sup.attempt_log)


def test_attempt_log_records_failures_then_success():
    plan = FaultPlan([FaultSpec("raise", 1, attempt=1)])
    sup = Supervisor(SerialBackend(), FAST, plan)
    results, failures = sup.submit_batch(_square, [1, 2, 3])
    assert results == [1, 4, 9]
    assert failures == []
    task1 = sorted(
        (a for a in sup.attempt_log if a.index == 1), key=lambda a: a.attempt
    )
    assert [a.outcome for a in task1] == ["fail", "ok"]
    assert task1[0].error is not None
    assert task1[1].error is None


def test_attempt_log_records_terminal_failure():
    plan = FaultPlan([
        FaultSpec("raise", 0, attempt=a) for a in (1, 2, 3)
    ])
    sup = Supervisor(SerialBackend(), FAST, plan)
    results, failures = sup.submit_batch(_square, [5])
    assert results == [None]
    assert len(failures) == 1
    outcomes = [a.outcome for a in sup.attempt_log if a.index == 0]
    assert outcomes == ["fail", "fail", "fail"]


def test_attempt_log_resets_per_batch():
    sup = Supervisor(SerialBackend(), FAST)
    sup.submit_batch(_square, [1, 2])
    sup.submit_batch(_square, [3])
    assert len(sup.attempt_log) == 1


def test_attempt_log_recorded_without_tracing():
    """The history is a supervisor feature, not a tracing feature."""
    sup = Supervisor(SerialBackend(), FAST, tracer=NULL_TRACER)
    sup.submit_batch(_square, [1, 2])
    assert len(sup.attempt_log) == 2


def test_retry_counters_exposed_when_traced():
    plan = FaultPlan([FaultSpec("raise", 1, attempt=1)])
    tracer = Tracer(None)  # enabled drop sink: counts without a file
    sup = Supervisor(SerialBackend(), FAST, plan, tracer=tracer)
    results, failures = sup.submit_batch(_square, [1, 2, 3])
    assert results == [1, 4, 9]
    snap = tracer.metrics.snapshot()
    assert snap["counters"]["supervisor.tasks_retried"] == 1
    # 3 tasks + 1 retry = 4 attempts consumed
    assert snap["counters"]["supervisor.attempts_total"] == 4


def test_counters_absent_when_disabled():
    plan = FaultPlan([FaultSpec("raise", 1, attempt=1)])
    sup = Supervisor(SerialBackend(), FAST, plan, tracer=NULL_TRACER)
    sup.submit_batch(_square, [1, 2, 3])
    # the shared null tracer's registry stays empty
    assert NULL_TRACER.metrics.snapshot()["counters"] == {}
