"""Tests for repro.obs.rss — VmRSS sampling shared with the bench."""

from __future__ import annotations

import time

from repro.obs.rss import rss_mib, run_with_peak_rss


def test_rss_mib_positive_on_linux():
    # /proc/self/status exists on every CI target; off-Linux this is 0.0
    # by contract, so only assert non-negativity plus the Linux value.
    value = rss_mib()
    assert value >= 0.0
    try:
        open("/proc/self/status").close()
    except OSError:
        return
    assert value > 0.0


def test_run_with_peak_rss_returns_result_wall_peak():
    result, wall, peak = run_with_peak_rss(lambda: sum(range(1000)), interval=0.001)
    assert result == sum(range(1000))
    assert wall >= 0.0
    assert peak >= rss_mib() * 0.5  # same order as the current residency


def test_run_with_peak_rss_times_the_call():
    _, wall, _ = run_with_peak_rss(lambda: time.sleep(0.05), interval=0.005)
    assert wall >= 0.05


def test_run_with_peak_rss_propagates_exceptions():
    import pytest

    with pytest.raises(ValueError):
        run_with_peak_rss(lambda: (_ for _ in ()).throw(ValueError("boom")))


def test_bench_aliases_point_at_obs():
    # satellite: the bench module re-uses the extracted helpers instead
    # of carrying its own copies.
    from repro.bench import sparse_bench

    assert sparse_bench._rss_mib is rss_mib
    assert sparse_bench._run_with_peak_rss is run_with_peak_rss
