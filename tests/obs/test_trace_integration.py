"""End-to-end trace of a process-backend sharded solve.

A scaled-down version of the acceptance run: shard_and_solve on a real
process pool with fault injection, traced to JSONL, then loaded,
schema-validated, and summarized. Asserts that every instrumentation
layer actually landed in one file: worker lanes from the pool, all
shard-pipeline stages, PRAM primitives, and the supervisor's event
stream.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import PramMachine, shard_and_solve
from repro.faults import FaultPlan, FaultSpec, RetryPolicy
from repro.obs.report import (
    load_trace,
    render_summary,
    summarize_trace,
    validate_events,
)
from repro.obs.tracer import NULL_TRACER, set_tracer, trace_to
from repro.pram.backends import ProcessBackend


@pytest.fixture(autouse=True)
def _force_tracing_off_between_runs():
    prev = set_tracer(NULL_TRACER)
    yield
    set_tracer(prev)


@pytest.fixture(scope="module")
def traced_run(tmp_path_factory):
    path = tmp_path_factory.mktemp("trace") / "run.jsonl"
    rng = np.random.default_rng(0)
    points = rng.normal(size=(20_000, 2)) + rng.integers(0, 5, size=(20_000, 1)) * 8.0
    plan = FaultPlan([FaultSpec("raise", 2, attempt=1)])
    policy = RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0)
    with trace_to(path) as tracer:
        with ProcessBackend(2, grain=4096) as backend:
            machine = PramMachine(backend=backend, seed=3)
            sol = shard_and_solve(
                points, 5, shards=8, seed=13, machine=machine,
                retry_policy=policy, fault_plan=plan,
            )
        tracer.flush()
    set_tracer(NULL_TRACER)
    return path, sol


def test_trace_validates_against_schema(traced_run):
    path, _ = traced_run
    events = load_trace(path)
    assert events
    assert validate_events(events) == []


def test_trace_contains_every_layer(traced_run):
    path, _ = traced_run
    events = load_trace(path)
    cats = {e.get("cat") for e in events}
    assert {"pram", "backend", "shard", "fault", "round"} <= cats


def test_all_shard_stages_present(traced_run):
    path, _ = traced_run
    stage_names = {
        e["name"] for e in load_trace(path) if e.get("cat") == "shard"
    }
    assert {
        "shard.partition", "shard.coreset", "shard.merge",
        "shard.solve", "shard.true_cost",
    } <= stage_names


def test_worker_lanes_present(traced_run):
    path, _ = traced_run
    events = load_trace(path)
    worker_lanes = {
        e["tid"]
        for e in events
        if e.get("ph") == "M"
        and e["name"] == "thread_name"
        and e.get("args", {}).get("name", "").startswith("worker-")
    }
    assert len(worker_lanes) >= 1
    # exec spans landed on those lanes
    exec_lanes = {
        e["tid"] for e in events
        if e.get("cat") == "backend" and e["name"] == "exec"
    }
    assert worker_lanes & exec_lanes


def test_supervisor_event_stream_recorded(traced_run):
    path, _ = traced_run
    events = load_trace(path)
    fault_names = {e["name"] for e in events if e.get("cat") == "fault"}
    assert "task_fail" in fault_names  # the injected raise
    fail = next(
        e for e in events
        if e.get("cat") == "fault" and e["name"] == "task_fail"
    )
    assert fail["args"]["task"] == 2
    assert fail["args"]["attempt"] == 1


def test_metrics_snapshot_in_trace(traced_run):
    path, _ = traced_run
    events = load_trace(path)
    counters = next(
        e for e in events if e.get("ph") == "C" and e["name"] == "repro.counters"
    )
    assert counters["args"].get("supervisor.tasks_retried", 0) >= 1
    assert counters["args"].get("supervisor.attempts_total", 0) >= 9


def test_summary_and_render(traced_run):
    path, sol = traced_run
    summary = summarize_trace(load_trace(path))
    assert summary["wall_s"] > 0
    stages = {s["stage"] for s in summary["stages"]}
    assert "shard.coreset" in stages
    assert summary["primitives"]  # PRAM layer aggregated
    assert summary["backend"]["lanes"]  # per-lane utilization
    assert summary["faults"]["counts"].get("task_fail", 0) >= 1
    text = render_summary(summary)
    assert "shard.coreset" in text
    # and the solve itself was sane
    assert sol.centers.size == 5
    assert not sol.degraded


def test_report_cli_runs_on_real_trace(traced_run, capsys):
    from repro.obs.report import main

    path, _ = traced_run
    assert main([str(path), "--validate"]) == 0
    out = capsys.readouterr().out
    assert "shard pipeline stages" in out
    assert "backend lanes" in out
