"""Tests for the trace loader, schema validator, and report CLI."""

from __future__ import annotations

import json

import pytest

from repro.obs.report import (
    load_trace,
    main,
    render_summary,
    summarize_trace,
    validate_events,
)
from repro.obs.tracer import trace_to


def _write_jsonl(path, events):
    with open(path, "w") as fh:
        for event in events:
            fh.write(json.dumps(event) + "\n")


def _synthetic_events():
    return [
        {"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
         "args": {"name": "repro-driver"}},
        {"name": "thread_name", "ph": "M", "pid": 1, "tid": 100,
         "args": {"name": "worker-100"}},
        {"name": "shard.partition", "cat": "shard", "ph": "X", "ts": 0,
         "dur": 1000, "pid": 1, "tid": 1, "args": {"shards": 2}},
        {"name": "shard.solve", "cat": "shard", "ph": "X", "ts": 1000,
         "dur": 3000, "pid": 1, "tid": 1},
        {"name": "map", "cat": "pram", "ph": "X", "ts": 100, "dur": 50,
         "pid": 1, "tid": 1, "args": {"work": 10.0}},
        {"name": "map", "cat": "pram", "ph": "X", "ts": 200, "dur": 150,
         "pid": 1, "tid": 1, "args": {"work": 30.0}},
        {"name": "exec", "cat": "backend", "ph": "X", "ts": 500, "dur": 400,
         "pid": 1, "tid": 100, "args": {"task": 0}},
        {"name": "queue_wait", "cat": "backend", "ph": "X", "ts": 400,
         "dur": 100, "pid": 1, "tid": 100, "args": {"task": 0}},
        {"name": "task_fail", "cat": "fault", "ph": "i", "s": "t", "ts": 600,
         "pid": 1, "tid": 1, "args": {"task": 0, "attempt": 1}},
        {"name": "shm_bytes", "cat": "metrics", "ph": "C", "ts": 700,
         "pid": 1, "tid": 0, "args": {"bytes": 4096}},
    ]


def test_load_trace_roundtrip(tmp_path):
    path = tmp_path / "t.jsonl"
    _write_jsonl(path, _synthetic_events())
    events = load_trace(path)
    assert len(events) == len(_synthetic_events())
    assert events[0]["name"] == "process_name"


def test_load_trace_skips_blank_lines(tmp_path):
    path = tmp_path / "t.jsonl"
    path.write_text('{"name":"a","ph":"M","pid":1,"tid":0}\n\n\n')
    assert len(load_trace(path)) == 1


def test_load_trace_rejects_bad_json_with_line_number(tmp_path):
    path = tmp_path / "t.jsonl"
    path.write_text('{"name":"a","ph":"M","pid":1,"tid":0}\nnot json\n')
    with pytest.raises(ValueError, match=":2:"):
        load_trace(path)


def test_load_trace_rejects_non_object(tmp_path):
    path = tmp_path / "t.jsonl"
    path.write_text("[1,2,3]\n")
    with pytest.raises(ValueError, match="not an object"):
        load_trace(path)


def test_validate_events_accepts_synthetic_trace():
    assert validate_events(_synthetic_events()) == []


def test_validate_events_flags_defects():
    bad = [
        {"ph": "X", "pid": 1, "tid": 1, "ts": 0, "dur": 1},  # no name
        {"name": "x", "ph": "Z", "pid": 1, "tid": 1, "ts": 0},  # bad phase
        {"name": "x", "ph": "X", "pid": "p", "tid": 1, "ts": 0, "dur": 1},
        {"name": "x", "ph": "X", "pid": 1, "tid": 1, "ts": -5, "dur": 1},
        {"name": "x", "ph": "X", "pid": 1, "tid": 1, "ts": 0},  # no dur
        {"name": "x", "ph": "C", "pid": 1, "tid": 1, "ts": 0},  # no args
    ]
    errors = validate_events(bad)
    assert len(errors) == 6


def test_summarize_trace_sections():
    s = summarize_trace(_synthetic_events())
    assert s["events"] == len(_synthetic_events())
    assert s["wall_s"] == pytest.approx((4000 - 0) / 1e6)
    assert [st["stage"] for st in s["stages"]] == ["shard.partition", "shard.solve"]
    assert s["stages"][1]["share"] == pytest.approx(0.75)
    assert s["primitives"]["map"]["count"] == 2
    assert s["primitives"]["map"]["ledger_work"] == 40.0
    lane = s["backend"]["lanes"]["worker-100"]
    assert lane["tasks"] == 1
    assert lane["busy_s"] == pytest.approx(400 / 1e6)
    assert lane["queue_wait_s"] == pytest.approx(100 / 1e6)
    assert s["backend"]["straggler"]["lane"] == "worker-100"
    assert s["faults"]["counts"] == {"task_fail": 1}
    assert s["counters"]["shm_bytes"] == {"bytes": 4096}


def test_summarize_empty_trace():
    s = summarize_trace([])
    assert s["wall_s"] == 0.0
    assert s["stages"] == []
    assert s["primitives"] == {}


def test_render_summary_mentions_all_sections():
    text = render_summary(summarize_trace(_synthetic_events()))
    for needle in ("shard.partition", "map", "worker-100", "task_fail", "shm_bytes"):
        assert needle in text


def test_summary_is_json_serializable():
    json.dumps(summarize_trace(_synthetic_events()), default=float)


def test_main_text_and_json(tmp_path, capsys):
    path = tmp_path / "t.jsonl"
    _write_jsonl(path, _synthetic_events())
    assert main([str(path)]) == 0
    assert "shard.partition" in capsys.readouterr().out
    assert main([str(path), "--json"]) == 0
    parsed = json.loads(capsys.readouterr().out)
    assert parsed["events"] == len(_synthetic_events())


def test_main_validate_flags_schema_errors(tmp_path, capsys):
    path = tmp_path / "t.jsonl"
    _write_jsonl(path, [{"name": "x", "ph": "Z", "pid": 1, "tid": 1}])
    assert main([str(path), "--validate"]) == 1
    assert "schema:" in capsys.readouterr().out


def test_real_trace_passes_validation(tmp_path):
    """A trace produced by the actual Tracer validates cleanly."""
    path = tmp_path / "real.jsonl"
    with trace_to(path) as t:
        with t.span("stage", "shard", {"n": 1}):
            t.instant("mark", "round", args={"i": 0})
        t.counter_event("bytes", {"shm": 1})
        t.flush()
    events = load_trace(path)
    assert validate_events(events) == []
    summarize_trace(events)
