"""Tests for the trace loader, schema validator, and report CLI."""

from __future__ import annotations

import json

import pytest

from repro.obs.report import (
    load_trace,
    main,
    render_summary,
    summarize_trace,
    validate_events,
)
from repro.obs.tracer import trace_to


def _write_jsonl(path, events):
    with open(path, "w") as fh:
        for event in events:
            fh.write(json.dumps(event) + "\n")


def _synthetic_events():
    return [
        {"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
         "args": {"name": "repro-driver"}},
        {"name": "thread_name", "ph": "M", "pid": 1, "tid": 100,
         "args": {"name": "worker-100"}},
        {"name": "shard.partition", "cat": "shard", "ph": "X", "ts": 0,
         "dur": 1000, "pid": 1, "tid": 1, "args": {"shards": 2}},
        {"name": "shard.solve", "cat": "shard", "ph": "X", "ts": 1000,
         "dur": 3000, "pid": 1, "tid": 1},
        {"name": "map", "cat": "pram", "ph": "X", "ts": 100, "dur": 50,
         "pid": 1, "tid": 1, "args": {"work": 10.0}},
        {"name": "map", "cat": "pram", "ph": "X", "ts": 200, "dur": 150,
         "pid": 1, "tid": 1, "args": {"work": 30.0}},
        {"name": "exec", "cat": "backend", "ph": "X", "ts": 500, "dur": 400,
         "pid": 1, "tid": 100, "args": {"task": 0}},
        {"name": "queue_wait", "cat": "backend", "ph": "X", "ts": 400,
         "dur": 100, "pid": 1, "tid": 100, "args": {"task": 0}},
        {"name": "task_fail", "cat": "fault", "ph": "i", "s": "t", "ts": 600,
         "pid": 1, "tid": 1, "args": {"task": 0, "attempt": 1}},
        {"name": "shm_bytes", "cat": "metrics", "ph": "C", "ts": 700,
         "pid": 1, "tid": 0, "args": {"bytes": 4096}},
    ]


def test_load_trace_roundtrip(tmp_path):
    path = tmp_path / "t.jsonl"
    _write_jsonl(path, _synthetic_events())
    events = load_trace(path)
    assert len(events) == len(_synthetic_events())
    assert events[0]["name"] == "process_name"


def test_load_trace_skips_blank_lines(tmp_path):
    path = tmp_path / "t.jsonl"
    path.write_text('{"name":"a","ph":"M","pid":1,"tid":0}\n\n\n')
    assert len(load_trace(path)) == 1


def test_load_trace_rejects_bad_json_with_line_number(tmp_path):
    path = tmp_path / "t.jsonl"
    path.write_text('{"name":"a","ph":"M","pid":1,"tid":0}\nnot json\n')
    with pytest.raises(ValueError, match=":2:"):
        load_trace(path)


def test_load_trace_rejects_non_object(tmp_path):
    path = tmp_path / "t.jsonl"
    path.write_text("[1,2,3]\n")
    with pytest.raises(ValueError, match="not an object"):
        load_trace(path)


def test_validate_events_accepts_synthetic_trace():
    assert validate_events(_synthetic_events()) == []


def test_validate_events_flags_defects():
    bad = [
        {"ph": "X", "pid": 1, "tid": 1, "ts": 0, "dur": 1},  # no name
        {"name": "x", "ph": "Z", "pid": 1, "tid": 1, "ts": 0},  # bad phase
        {"name": "x", "ph": "X", "pid": "p", "tid": 1, "ts": 0, "dur": 1},
        {"name": "x", "ph": "X", "pid": 1, "tid": 1, "ts": -5, "dur": 1},
        {"name": "x", "ph": "X", "pid": 1, "tid": 1, "ts": 0},  # no dur
        {"name": "x", "ph": "C", "pid": 1, "tid": 1, "ts": 0},  # no args
    ]
    errors = validate_events(bad)
    assert len(errors) == 6


def test_summarize_trace_sections():
    s = summarize_trace(_synthetic_events())
    assert s["events"] == len(_synthetic_events())
    assert s["wall_s"] == pytest.approx((4000 - 0) / 1e6)
    assert [st["stage"] for st in s["stages"]] == ["shard.partition", "shard.solve"]
    assert s["stages"][1]["share"] == pytest.approx(0.75)
    assert s["primitives"]["map"]["count"] == 2
    assert s["primitives"]["map"]["ledger_work"] == 40.0
    lane = s["backend"]["lanes"]["worker-100"]
    assert lane["tasks"] == 1
    assert lane["busy_s"] == pytest.approx(400 / 1e6)
    assert lane["queue_wait_s"] == pytest.approx(100 / 1e6)
    assert s["backend"]["straggler"]["lane"] == "worker-100"
    assert s["faults"]["counts"] == {"task_fail": 1}
    assert s["counters"]["shm_bytes"] == {"bytes": 4096}


def test_summarize_empty_trace():
    s = summarize_trace([])
    assert s["wall_s"] == 0.0
    assert s["stages"] == []
    assert s["primitives"] == {}


def test_render_summary_mentions_all_sections():
    text = render_summary(summarize_trace(_synthetic_events()))
    for needle in ("shard.partition", "map", "worker-100", "task_fail", "shm_bytes"):
        assert needle in text


def test_summary_is_json_serializable():
    json.dumps(summarize_trace(_synthetic_events()), default=float)


def test_main_text_and_json(tmp_path, capsys):
    path = tmp_path / "t.jsonl"
    _write_jsonl(path, _synthetic_events())
    assert main([str(path)]) == 0
    assert "shard.partition" in capsys.readouterr().out
    assert main([str(path), "--json"]) == 0
    parsed = json.loads(capsys.readouterr().out)
    assert parsed["events"] == len(_synthetic_events())


def test_main_validate_flags_schema_errors(tmp_path, capsys):
    path = tmp_path / "t.jsonl"
    _write_jsonl(path, [{"name": "x", "ph": "Z", "pid": 1, "tid": 1}])
    assert main([str(path), "--validate"]) == 1
    assert "schema:" in capsys.readouterr().out


def test_real_trace_passes_validation(tmp_path):
    """A trace produced by the actual Tracer validates cleanly."""
    path = tmp_path / "real.jsonl"
    with trace_to(path) as t:
        with t.span("stage", "shard", {"n": 1}):
            t.instant("mark", "round", args={"i": 0})
        t.counter_event("bytes", {"shm": 1})
        t.flush()
    events = load_trace(path)
    assert validate_events(events) == []
    summarize_trace(events)


def _traced_request_events():
    """A two-lane request: driver spans nested on tid 1, a worker exec
    on lane 100, an instant, plus unrelated spans from another request."""
    tid = {"trace_id": "req-1"}
    return [
        {"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
         "args": {"name": "repro-driver"}},
        {"name": "thread_name", "ph": "M", "pid": 1, "tid": 100,
         "args": {"name": "worker-100"}},
        {"name": "serve.request", "cat": "serve", "ph": "X", "ts": 0,
         "dur": 10_000, "pid": 1, "tid": 1, "args": {"path": "/solve", **tid}},
        {"name": "serve.solve", "cat": "serve", "ph": "X", "ts": 1000,
         "dur": 8000, "pid": 1, "tid": 1, "args": dict(tid)},
        {"name": "shard.solve", "cat": "shard", "ph": "X", "ts": 2000,
         "dur": 5000, "pid": 1, "tid": 1, "args": dict(tid)},
        {"name": "exec", "cat": "backend", "ph": "X", "ts": 3000,
         "dur": 2000, "pid": 1, "tid": 100, "args": {"task": 0, **tid}},
        {"name": "task_fail", "cat": "fault", "ph": "i", "s": "t",
         "ts": 4000, "pid": 1, "tid": 1, "args": {"task": 0, **tid}},
        # another request's span — must not leak into req-1's tree
        {"name": "serve.request", "cat": "serve", "ph": "X", "ts": 0,
         "dur": 500, "pid": 1, "tid": 2, "args": {"trace_id": "req-2"}},
        # untraced span
        {"name": "map", "cat": "pram", "ph": "X", "ts": 100, "dur": 50,
         "pid": 1, "tid": 1},
    ]


class TestStitchRequestTrace:
    def test_selects_only_the_requested_trace(self):
        from repro.obs.report import stitch_request_trace

        stitched = stitch_request_trace(_traced_request_events(), "req-1")
        assert stitched["found"] is True
        assert stitched["events"] == 5
        assert stitched["span_names"] == [
            "exec", "serve.request", "serve.solve", "shard.solve",
        ]
        assert "map" not in stitched["span_names"]

    def test_nesting_by_containment_per_lane(self):
        from repro.obs.report import stitch_request_trace

        stitched = stitch_request_trace(_traced_request_events(), "req-1")
        # driver lane: request > solve > shard; worker lane: exec root
        roots = {r["name"]: r for r in stitched["roots"]}
        assert set(roots) == {"serve.request", "exec"}
        req = roots["serve.request"]
        assert [c["name"] for c in req["children"]] == ["serve.solve"]
        assert [c["name"] for c in req["children"][0]["children"]] == [
            "shard.solve"
        ]

    def test_worker_lanes_and_stages_indexed(self):
        from repro.obs.report import stitch_request_trace

        stitched = stitch_request_trace(_traced_request_events(), "req-1")
        assert stitched["worker_lanes"] == ["worker-100"]
        assert stitched["stages"] == ["shard.solve"]
        assert [i["name"] for i in stitched["instants"]] == ["task_fail"]
        # trace_id is implied by the query, stripped from node args
        assert all(
            "trace_id" not in r["args"] for r in stitched["roots"]
        )

    def test_empty_trace_not_found(self):
        from repro.obs.report import stitch_request_trace

        stitched = stitch_request_trace([], "req-1")
        assert stitched["found"] is False
        assert stitched["events"] == 0
        assert stitched["roots"] == []
        assert stitched["worker_lanes"] == []

    def test_unknown_id_not_found(self):
        from repro.obs.report import stitch_request_trace

        stitched = stitch_request_trace(_traced_request_events(), "nope")
        assert stitched["found"] is False

    def test_instants_only_trace_is_found(self):
        from repro.obs.report import stitch_request_trace

        events = [
            {"name": "mark", "cat": "app", "ph": "i", "s": "t", "ts": 10,
             "pid": 1, "tid": 1, "args": {"trace_id": "solo"}},
        ]
        stitched = stitch_request_trace(events, "solo")
        assert stitched["found"] is True
        assert stitched["roots"] == []
        assert [i["name"] for i in stitched["instants"]] == ["mark"]

    def test_worker_only_request_still_stitches(self):
        # A request whose driver spans were lost (e.g. trace enabled
        # mid-run) must still surface its worker-emitted spans.
        from repro.obs.report import stitch_request_trace

        events = [
            {"name": "thread_name", "ph": "M", "pid": 1, "tid": 100,
             "args": {"name": "worker-100"}},
            {"name": "exec", "cat": "backend", "ph": "X", "ts": 0,
             "dur": 100, "pid": 1, "tid": 100,
             "args": {"trace_id": "orphan"}},
        ]
        stitched = stitch_request_trace(events, "orphan")
        assert stitched["found"] is True
        assert stitched["worker_lanes"] == ["worker-100"]
        assert stitched["roots"][0]["name"] == "exec"

    def test_render_request_trace_text(self):
        from repro.obs.report import render_request_trace, stitch_request_trace

        stitched = stitch_request_trace(_traced_request_events(), "req-1")
        text = render_request_trace(stitched)
        assert "req-1" in text
        for needle in ("serve.request", "shard.solve", "exec", "task_fail"):
            assert needle in text
        missing = render_request_trace(stitch_request_trace([], "x"))
        assert "no events found" in missing

    def test_main_trace_id_flag(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        _write_jsonl(path, _traced_request_events())
        assert main([str(path), "--trace-id", "req-1"]) == 0
        assert "serve.request" in capsys.readouterr().out
        assert main([str(path), "--trace-id", "req-1", "--json"]) == 0
        parsed = json.loads(capsys.readouterr().out)
        assert parsed["found"] is True
        assert main([str(path), "--trace-id", "nope"]) == 1
        assert "no events found" in capsys.readouterr().out

    def test_trace_id_round_trip_through_process_backend(self, tmp_path):
        # The end-to-end propagation claim at the obs layer: spans
        # emitted inside forked worker processes come back stamped with
        # the ambient trace id of the submitting driver thread.
        from repro.obs.tracer import trace_context
        from repro.pram.backends import ProcessBackend

        path = tmp_path / "t.jsonl"
        backend = ProcessBackend(2, grain=1)
        try:
            with trace_to(path) as t:
                with trace_context("proc-req"):
                    out = backend.submit_batch(_double, list(range(8)))
                t.flush()
        finally:
            backend.close()
        assert out == [0, 2, 4, 6, 8, 10, 12, 14]
        from repro.obs.report import stitch_request_trace

        stitched = stitch_request_trace(load_trace(path), "proc-req")
        assert stitched["found"] is True
        assert stitched["worker_lanes"]  # >= 1 forked worker lane
        assert "exec" in stitched["span_names"]


def _double(x):
    return x * 2
