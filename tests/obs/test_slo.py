"""Unit tests for the sliding-window SLO evaluator."""

from __future__ import annotations

import pytest

from repro.obs.slo import SloEvaluator, SloTarget, grade_report


def _fill(ev, count, *, latency=0.01, error=False, now=100.0):
    for _ in range(count):
        ev.record(latency, error=error, now=now)


class TestTarget:
    def test_defaults_disable_both_checks(self):
        t = SloTarget()
        assert t.p99_latency_s is None
        assert t.max_error_rate is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"p99_latency_s": 0.0},
            {"p99_latency_s": -1.0},
            {"max_error_rate": -0.1},
            {"max_error_rate": 1.5},
            {"window_s": 0.0},
            {"min_samples": 0},
        ],
    )
    def test_invalid_targets_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SloTarget(**kwargs)

    def test_to_json_round_trips_fields(self):
        t = SloTarget(p99_latency_s=1.0, max_error_rate=0.1, window_s=30.0)
        assert t.to_json() == {
            "p99_latency_s": 1.0,
            "max_error_rate": 0.1,
            "window_s": 30.0,
            "min_samples": 20,
        }


class TestEvaluator:
    def test_cold_service_is_insufficient_data_not_degraded(self):
        ev = SloEvaluator(SloTarget(p99_latency_s=0.001, min_samples=5))
        _fill(ev, 4, latency=10.0)  # wildly over target, but too few
        verdict = ev.evaluate(now=100.0)
        assert verdict.status == "insufficient_data"
        assert not verdict.degraded
        assert verdict.reasons == []

    def test_ok_within_targets(self):
        ev = SloEvaluator(
            SloTarget(p99_latency_s=1.0, max_error_rate=0.5, min_samples=5)
        )
        _fill(ev, 10, latency=0.01)
        verdict = ev.evaluate(now=100.0)
        assert verdict.status == "ok"
        assert verdict.measured["count"] == 10
        assert verdict.measured["p99_latency_s"] == 0.01

    def test_latency_breach_degrades_with_reason(self):
        ev = SloEvaluator(SloTarget(p99_latency_s=0.05, min_samples=5))
        _fill(ev, 20, latency=0.2)
        verdict = ev.evaluate(now=100.0)
        assert verdict.degraded
        assert any("p99 latency" in r for r in verdict.reasons)

    def test_error_rate_breach_degrades_with_reason(self):
        ev = SloEvaluator(SloTarget(max_error_rate=0.1, min_samples=5))
        _fill(ev, 8, error=False)
        _fill(ev, 2, error=True)
        verdict = ev.evaluate(now=100.0)
        assert verdict.degraded
        assert any("error rate" in r for r in verdict.reasons)
        assert verdict.measured["error_rate"] == pytest.approx(0.2)

    def test_both_breaches_report_both_reasons(self):
        ev = SloEvaluator(
            SloTarget(p99_latency_s=0.01, max_error_rate=0.01, min_samples=2)
        )
        _fill(ev, 5, latency=1.0, error=True)
        verdict = ev.evaluate(now=100.0)
        assert len(verdict.reasons) == 2

    def test_old_records_age_out_of_the_window(self):
        # A burst of failures outside the window must not poison the
        # verdict forever — that is the whole point of a *time* window.
        ev = SloEvaluator(
            SloTarget(max_error_rate=0.1, window_s=60.0, min_samples=5)
        )
        _fill(ev, 20, error=True, now=100.0)
        assert ev.evaluate(now=110.0).degraded
        _fill(ev, 10, error=False, now=500.0)
        verdict = ev.evaluate(now=500.0)
        assert verdict.status == "ok"
        assert verdict.measured["errors"] == 0

    def test_record_cap_bounds_memory(self):
        ev = SloEvaluator(SloTarget(window_s=1e9))
        for i in range(SloEvaluator.MAX_RECORDS + 100):
            ev.record(0.01, now=float(i) * 1e-6)
        assert len(ev._records) == SloEvaluator.MAX_RECORDS

    def test_nearest_rank_p99(self):
        ev = SloEvaluator(SloTarget(min_samples=1))
        for v in range(100):
            ev.record(float(v), now=100.0)
        window = ev.window(now=100.0)
        assert window["p50_latency_s"] == 50.0
        assert window["p99_latency_s"] == 99.0

    def test_status_to_json_shape(self):
        ev = SloEvaluator(SloTarget(p99_latency_s=1.0, min_samples=1))
        ev.record(0.01, now=100.0)
        out = ev.evaluate(now=100.0).to_json()
        assert set(out) == {"status", "reasons", "measured", "target"}
        assert out["status"] == "ok"


class TestGradeReport:
    REPORT = {
        "latency_s": {"p99": 0.5},
        "failure_rate": 0.25,
        "failed": 1,
        "requests_sent": 4,
    }

    def test_no_thresholds_no_breaches(self):
        assert grade_report(self.REPORT) == []

    def test_p99_breach(self):
        breaches = grade_report(self.REPORT, p99_latency_s=0.1)
        assert len(breaches) == 1 and "p99" in breaches[0]

    def test_failure_rate_breach(self):
        breaches = grade_report(self.REPORT, max_failure_rate=0.1)
        assert len(breaches) == 1 and "failure rate" in breaches[0]

    def test_within_thresholds(self):
        assert grade_report(
            self.REPORT, p99_latency_s=1.0, max_failure_rate=0.5
        ) == []
