"""Unit tests for the structured JSONL event log."""

from __future__ import annotations

import json
import os

import pytest

import repro.obs.log as log_mod
from repro.obs.log import (
    LOG_ENV,
    NULL_LOG,
    EventLog,
    current_log,
    log_to,
    read_log,
    set_log,
)
from repro.obs.tracer import trace_context


@pytest.fixture(autouse=True)
def _clean_log_state(monkeypatch):
    """Isolate process-wide log selection from other tests."""
    monkeypatch.delenv(LOG_ENV, raising=False)
    prev = set_log(None)
    monkeypatch.setattr(log_mod, "_env_log", None)
    monkeypatch.setattr(log_mod, "_env_path", None)
    yield
    set_log(prev)


def test_null_log_is_disabled_and_inert():
    assert NULL_LOG.enabled is False
    NULL_LOG.event("anything", x=1)
    NULL_LOG.flush()
    NULL_LOG.close()


def test_current_log_defaults_to_null():
    assert current_log() is NULL_LOG


def test_event_records_ts_pid_and_fields(tmp_path):
    path = tmp_path / "log.jsonl"
    with log_to(path):
        current_log().event("job.created", job_id="job-000001", k=3)
    records = read_log(path)
    assert len(records) == 1
    rec = records[0]
    assert rec["event"] == "job.created"
    assert rec["job_id"] == "job-000001"
    assert rec["k"] == 3
    assert rec["pid"] == os.getpid()
    assert rec["ts"] > 0


def test_none_fields_are_omitted(tmp_path):
    path = tmp_path / "log.jsonl"
    with log_to(path):
        current_log().event("job.finished", error=None, wall_s=0.5)
    rec = read_log(path)[0]
    assert "error" not in rec
    assert rec["wall_s"] == 0.5


def test_ambient_trace_id_is_stamped(tmp_path):
    path = tmp_path / "log.jsonl"
    with log_to(path):
        with trace_context("abc123"):
            current_log().event("inside")
        current_log().event("outside")
    inside, outside = read_log(path)
    assert inside["trace_id"] == "abc123"
    assert "trace_id" not in outside


def test_explicit_trace_id_wins_over_ambient(tmp_path):
    path = tmp_path / "log.jsonl"
    with log_to(path):
        with trace_context("ambient"):
            current_log().event("e", trace_id="explicit")
    assert read_log(path)[0]["trace_id"] == "explicit"


def test_env_var_activates_logging(monkeypatch, tmp_path):
    path = tmp_path / "env.jsonl"
    monkeypatch.setenv(LOG_ENV, str(path))
    log = current_log()
    assert log.enabled
    assert log.path == str(path)
    assert current_log() is log  # cached per path


def test_explicit_wins_over_env(monkeypatch, tmp_path):
    monkeypatch.setenv(LOG_ENV, str(tmp_path / "env.jsonl"))
    mine = EventLog(tmp_path / "mine.jsonl")
    set_log(mine)
    assert current_log() is mine
    set_log(None)
    assert current_log() is not mine


def test_append_mode_accumulates_across_logs(tmp_path):
    path = tmp_path / "log.jsonl"
    with log_to(path):
        current_log().event("first")
    with log_to(path):
        current_log().event("second")
    assert [r["event"] for r in read_log(path)] == ["first", "second"]


def test_forked_pid_guard_drops_events(tmp_path):
    path = tmp_path / "log.jsonl"
    log = EventLog(path)
    log.event("parent")
    log._pid = os.getpid() + 1  # simulate a forked child's view
    log.event("child")
    log.close()  # pid-guarded too
    log._pid = os.getpid()
    log.close()
    assert [r["event"] for r in read_log(path)] == ["parent"]


def test_drop_sink_enabled_without_path(tmp_path):
    log = EventLog(None)
    assert log.enabled
    log.event("x", a=1)
    log.close()
    assert list(tmp_path.iterdir()) == []


def test_stream_sink_writes_lines():
    import io

    buf = io.StringIO()
    log = EventLog(stream=buf)
    log.event("streamed", n=2)
    rec = json.loads(buf.getvalue())
    assert rec["event"] == "streamed" and rec["n"] == 2


def test_read_log_rejects_bad_lines(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"event": "ok"}\nnot json\n')
    with pytest.raises(ValueError, match="bad JSON"):
        read_log(path)
    path.write_text('[1, 2]\n')
    with pytest.raises(ValueError, match="not an object"):
        read_log(path)


def test_read_log_skips_blank_lines(tmp_path):
    path = tmp_path / "log.jsonl"
    path.write_text('{"event": "a"}\n\n{"event": "b"}\n')
    assert [r["event"] for r in read_log(path)] == ["a", "b"]


def test_non_serializable_fields_fall_back_to_str(tmp_path):
    path = tmp_path / "log.jsonl"
    with log_to(path):
        current_log().event("odd", obj={1, 2}.__class__)
    assert "class" in read_log(path)[0]["obj"]
