"""The headline invariant: observability never perturbs results.

Every solver run here is seeded, so a traced run and an untraced run
must produce *identical* outputs — same opened sets, same centers, same
costs, same ledger charges — on every backend, and even when the
supervisor is retrying injected faults while the trace records them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import PramMachine, shard_and_solve
from repro.core.greedy import parallel_greedy
from repro.core.local_search import parallel_kmedian
from repro.core.primal_dual import parallel_primal_dual
from repro.faults import FaultPlan, FaultSpec, RetryPolicy
from repro.metrics.generators import euclidean_clustering, euclidean_instance
from repro.obs.tracer import NULL_TRACER, set_tracer, trace_to
from repro.pram.backends import make_backend

BACKENDS = ["serial", "thread", "process"]


@pytest.fixture(autouse=True)
def _force_tracing_off_between_runs():
    prev = set_tracer(NULL_TRACER)
    yield
    set_tracer(prev)


def _run(make_solution, backend_name, trace_path=None):
    def solve():
        backend = make_backend(backend_name, num_workers=2, grain=128)
        try:
            return make_solution(PramMachine(backend=backend, seed=5))
        finally:
            backend.close()

    if trace_path is None:
        return solve()
    with trace_to(trace_path):
        return solve()


def _assert_fl_identical(a, b):
    assert np.array_equal(a.opened, b.opened)
    assert a.cost == b.cost
    assert np.array_equal(a.alpha, b.alpha)
    assert a.model_costs.work == b.model_costs.work
    assert a.model_costs.depth == b.model_costs.depth


@pytest.mark.parametrize("backend_name", BACKENDS)
def test_greedy_identical_with_tracing(tmp_path, backend_name):
    instance = euclidean_instance(12, 40, seed=3)
    off = _run(lambda m: parallel_greedy(instance, epsilon=0.1, machine=m), backend_name)
    on = _run(
        lambda m: parallel_greedy(instance, epsilon=0.1, machine=m),
        backend_name,
        tmp_path / "greedy.jsonl",
    )
    _assert_fl_identical(off, on)
    # the traced run actually traced something
    assert (tmp_path / "greedy.jsonl").stat().st_size > 0


@pytest.mark.parametrize("backend_name", BACKENDS)
def test_primal_dual_identical_with_tracing(tmp_path, backend_name):
    instance = euclidean_instance(12, 40, seed=3)
    off = _run(
        lambda m: parallel_primal_dual(instance, epsilon=0.1, machine=m), backend_name
    )
    on = _run(
        lambda m: parallel_primal_dual(instance, epsilon=0.1, machine=m),
        backend_name,
        tmp_path / "pd.jsonl",
    )
    _assert_fl_identical(off, on)


def test_kmedian_identical_with_tracing(tmp_path):
    instance = euclidean_clustering(60, 4, seed=9)
    off = _run(lambda m: parallel_kmedian(instance, epsilon=0.5, machine=m), "serial")
    on = _run(
        lambda m: parallel_kmedian(instance, epsilon=0.5, machine=m),
        "serial",
        tmp_path / "km.jsonl",
    )
    assert np.array_equal(off.centers, on.centers)
    assert off.cost == on.cost
    assert off.model_costs.work == on.model_costs.work


@pytest.mark.parametrize("backend_name", BACKENDS)
def test_shard_and_solve_identical_with_tracing(tmp_path, backend_name):
    rng = np.random.default_rng(2)
    points = rng.normal(size=(500, 2))

    def solve(machine):
        return shard_and_solve(points, 4, shards=4, seed=11, machine=machine)

    off = _run(solve, backend_name)
    on = _run(solve, backend_name, tmp_path / "shard.jsonl")
    assert np.array_equal(off.centers, on.centers)
    assert off.cost == on.cost
    assert off.true_cost == on.true_cost
    assert np.array_equal(off.coreset_sizes, on.coreset_sizes)
    assert off.model_costs.work == on.model_costs.work


@pytest.mark.parametrize("backend_name", ["serial", "process"])
def test_shard_identical_under_fault_retry(tmp_path, backend_name):
    """Tracing on + injected fault + retry still reproduces the clean run."""
    rng = np.random.default_rng(2)
    points = rng.normal(size=(500, 2))
    policy = RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0)
    plan = FaultPlan([FaultSpec("raise", 1, attempt=1)])

    def clean(machine):
        return shard_and_solve(points, 4, shards=4, seed=11, machine=machine)

    def faulted(machine):
        return shard_and_solve(
            points, 4, shards=4, seed=11, machine=machine,
            retry_policy=policy, fault_plan=plan,
        )

    base = _run(clean, backend_name)
    recovered = _run(faulted, backend_name, tmp_path / "fault.jsonl")
    assert np.array_equal(base.centers, recovered.centers)
    assert base.cost == recovered.cost
    assert base.true_cost == recovered.true_cost
    # the retry is visible in the trace even though the result is clean
    from repro.obs.report import load_trace

    events = load_trace(tmp_path / "fault.jsonl")
    assert any(e.get("cat") == "fault" and e["name"] == "task_fail" for e in events)


def test_env_var_tracing_identical(tmp_path, monkeypatch):
    """REPRO_TRACE activation (not just trace_to) preserves results."""
    import repro.obs.tracer as tracer_mod

    instance = euclidean_instance(10, 30, seed=3)
    off = _run(lambda m: parallel_greedy(instance, epsilon=0.1, machine=m), "serial")

    set_tracer(None)
    monkeypatch.setenv(tracer_mod.TRACE_ENV, str(tmp_path / "env.jsonl"))
    monkeypatch.setattr(tracer_mod, "_env_tracer", None)
    monkeypatch.setattr(tracer_mod, "_env_path", None)
    try:
        on = _run(lambda m: parallel_greedy(instance, epsilon=0.1, machine=m), "serial")
    finally:
        tracer_mod.current_tracer().close()
        set_tracer(NULL_TRACER)
    _assert_fl_identical(off, on)
    assert (tmp_path / "env.jsonl").stat().st_size > 0
