"""Unit tests for the span tracer: emission, activation, safety guards."""

from __future__ import annotations

import json
import os

import pytest

import repro.obs.tracer as tracer_mod
from repro.obs.tracer import (
    NULL_TRACER,
    TRACE_ENV,
    Tracer,
    current_tracer,
    set_tracer,
    trace_to,
)


def _read(path):
    with open(path) as fh:
        return [json.loads(line) for line in fh if line.strip()]


@pytest.fixture(autouse=True)
def _clean_tracer_state(monkeypatch):
    """Isolate process-wide tracer selection from other tests."""
    monkeypatch.delenv(TRACE_ENV, raising=False)
    prev = set_tracer(None)
    monkeypatch.setattr(tracer_mod, "_env_tracer", None)
    monkeypatch.setattr(tracer_mod, "_env_path", None)
    yield
    set_tracer(prev)


def test_null_tracer_is_disabled_and_inert():
    assert NULL_TRACER.enabled is False
    assert NULL_TRACER.path is None
    NULL_TRACER.complete("x", "cat", 0, 1)
    NULL_TRACER.instant("x", "cat")
    NULL_TRACER.counter_event("x", {"a": 1})
    with NULL_TRACER.span("x"):
        pass
    NULL_TRACER.flush()
    NULL_TRACER.close()
    assert NULL_TRACER.worker_lane(123, 7) == 7


def test_current_tracer_defaults_to_null():
    assert current_tracer() is NULL_TRACER


def test_env_var_activates_tracing(monkeypatch, tmp_path):
    path = tmp_path / "env.jsonl"
    monkeypatch.setenv(TRACE_ENV, str(path))
    t = current_tracer()
    assert t.enabled
    assert t.path == str(path)
    # cached per path
    assert current_tracer() is t


def test_explicit_tracer_wins_over_env(monkeypatch, tmp_path):
    monkeypatch.setenv(TRACE_ENV, str(tmp_path / "env.jsonl"))
    mine = Tracer(tmp_path / "mine.jsonl")
    set_tracer(mine)
    assert current_tracer() is mine
    set_tracer(None)
    assert current_tracer() is not mine


def test_trace_to_scopes_and_restores(tmp_path):
    path = tmp_path / "scoped.jsonl"
    with trace_to(path) as t:
        assert current_tracer() is t
        with t.span("unit", "app", {"k": 1}):
            pass
    assert current_tracer() is NULL_TRACER
    events = _read(path)
    names = [e["name"] for e in events]
    assert "process_name" in names  # metadata header
    span = next(e for e in events if e["name"] == "unit")
    assert span["ph"] == "X"
    assert span["cat"] == "app"
    assert span["dur"] >= 0
    assert span["args"] == {"k": 1}


def test_span_args_serialized_at_exit(tmp_path):
    with trace_to(tmp_path / "t.jsonl") as t:
        args = {"before": 1}
        with t.span("late", "app", args):
            args["after"] = 2
    span = next(e for e in _read(tmp_path / "t.jsonl") if e["name"] == "late")
    assert span["args"] == {"before": 1, "after": 2}


def test_span_emitted_even_when_block_raises(tmp_path):
    with trace_to(tmp_path / "t.jsonl") as t:
        with pytest.raises(RuntimeError):
            with t.span("boom", "app"):
                raise RuntimeError("x")
    assert any(e["name"] == "boom" for e in _read(tmp_path / "t.jsonl"))


def test_instant_and_counter_events(tmp_path):
    with trace_to(tmp_path / "t.jsonl") as t:
        t.instant("mark", "round", args={"i": 3})
        t.counter_event("bytes", {"shm": 42})
    events = _read(tmp_path / "t.jsonl")
    mark = next(e for e in events if e["name"] == "mark")
    assert mark["ph"] == "i" and mark["s"] == "t" and mark["args"] == {"i": 3}
    ctr = next(e for e in events if e["name"] == "bytes")
    assert ctr["ph"] == "C" and ctr["args"] == {"shm": 42}


def test_worker_lane_naming_and_metadata(tmp_path):
    with trace_to(tmp_path / "t.jsonl") as t:
        other = os.getpid() + 1
        assert t.worker_lane(other, 5) == other
        assert t.worker_lane(other, 9) == other  # metadata only once
        lane = t.worker_lane(os.getpid(), 17)
        assert lane == 17
    events = _read(tmp_path / "t.jsonl")
    meta = [e for e in events if e["name"] == "thread_name"]
    labels = {e["tid"]: e["args"]["name"] for e in meta}
    assert labels[other] == f"worker-{other}"
    assert labels[17] == "driver-thread-17"
    assert len(meta) == 2


def test_forked_pid_guard_drops_events(tmp_path):
    path = tmp_path / "t.jsonl"
    t = Tracer(path)
    t.instant("parent", "app")
    t._pid = os.getpid() + 1  # simulate a forked child's view
    t.instant("child", "app")
    t.close()  # also pid-guarded: must not flush/close from the "child"
    t._pid = os.getpid()
    t.close()
    names = [e["name"] for e in _read(path)]
    assert "parent" in names
    assert "child" not in names


def test_drop_sink_writes_nothing(tmp_path):
    t = Tracer(None)
    assert t.enabled
    with t.span("x", "app"):
        pass
    t.metrics.counter("n").inc()
    t.flush()
    t.close()
    assert list(tmp_path.iterdir()) == []


def test_flush_emits_metrics_snapshot(tmp_path):
    with trace_to(tmp_path / "t.jsonl") as t:
        t.metrics.counter("tasks").inc(3)
        t.metrics.gauge("depth").set(2.0)
        t.flush()
    events = _read(tmp_path / "t.jsonl")
    counters = next(e for e in events if e["name"] == "repro.counters")
    assert counters["args"] == {"tasks": 3}
    gauges = next(e for e in events if e["name"] == "repro.gauges")
    assert gauges["args"] == {"depth": 2.0}


def test_trace_lines_are_valid_jsonl(tmp_path):
    path = tmp_path / "t.jsonl"
    with trace_to(path) as t:
        for i in range(10):
            t.instant(f"e{i}", "app", args={"i": i})
    with open(path) as fh:
        for line in fh:
            event = json.loads(line)
            assert isinstance(event, dict)


class TestTraceContext:
    def test_new_trace_id_is_hex_and_unique(self):
        from repro.obs.tracer import new_trace_id

        ids = {new_trace_id() for _ in range(64)}
        assert len(ids) == 64
        assert all(len(i) == 16 and int(i, 16) >= 0 for i in ids)

    def test_new_trace_id_leaves_global_rng_alone(self):
        # trace-id minting must never perturb the RNG streams the
        # solvers' byte-identity invariant rests on
        import random as _random

        from repro.obs.tracer import new_trace_id

        _random.seed(42)
        expected = _random.random()
        _random.seed(42)
        new_trace_id()
        assert _random.random() == expected

    def test_trace_context_scopes_and_restores(self):
        from repro.obs.tracer import current_trace_id, trace_context

        assert current_trace_id() is None
        with trace_context("outer"):
            assert current_trace_id() == "outer"
            with trace_context("inner"):
                assert current_trace_id() == "inner"
            assert current_trace_id() == "outer"
        assert current_trace_id() is None

    def test_trace_context_none_clears(self):
        from repro.obs.tracer import current_trace_id, trace_context

        with trace_context("req"):
            with trace_context(None):
                assert current_trace_id() is None
            assert current_trace_id() == "req"

    def test_set_trace_id_returns_previous(self):
        from repro.obs.tracer import current_trace_id, set_trace_id

        assert set_trace_id("a") is None
        assert set_trace_id("b") == "a"
        assert current_trace_id() == "b"
        set_trace_id(None)
        assert current_trace_id() is None

    def test_spans_and_instants_stamped_with_ambient_id(self, tmp_path):
        from repro.obs.tracer import trace_context

        with trace_to(tmp_path / "t.jsonl") as t:
            with trace_context("req-1"):
                with t.span("inside", "app", {"k": 1}):
                    pass
                t.instant("mark", "app")
            with t.span("outside", "app"):
                pass
        events = _read(tmp_path / "t.jsonl")
        inside = next(e for e in events if e["name"] == "inside")
        assert inside["args"] == {"k": 1, "trace_id": "req-1"}
        mark = next(e for e in events if e["name"] == "mark")
        assert mark["args"] == {"trace_id": "req-1"}
        outside = next(e for e in events if e["name"] == "outside")
        assert "args" not in outside

    def test_explicit_trace_id_wins_over_ambient(self, tmp_path):
        from repro.obs.tracer import trace_context

        with trace_to(tmp_path / "t.jsonl") as t:
            with trace_context("ambient"):
                t.instant("e", "app", args={"trace_id": "envelope"})
        e = next(x for x in _read(tmp_path / "t.jsonl") if x["name"] == "e")
        assert e["args"]["trace_id"] == "envelope"

    def test_counter_events_are_not_stamped(self, tmp_path):
        # counters are process-wide series, not request-scoped
        from repro.obs.tracer import trace_context

        with trace_to(tmp_path / "t.jsonl") as t:
            with trace_context("req"):
                t.counter_event("bytes", {"shm": 1})
        ctr = next(e for e in _read(tmp_path / "t.jsonl") if e["name"] == "bytes")
        assert ctr["args"] == {"shm": 1}


class TestWorkerLanes:
    def test_worker_lane_is_race_free_under_concurrency(self, tmp_path):
        # Regression: an unlocked check-then-set let two threads both
        # miss the cache and emit duplicate thread_name metadata.
        import threading

        with trace_to(tmp_path / "t.jsonl") as t:
            other = os.getpid() + 1
            barrier = threading.Barrier(8)

            def hammer():
                barrier.wait()
                for _ in range(50):
                    assert t.worker_lane(other, 5) == other

            threads = [threading.Thread(target=hammer) for _ in range(8)]
            for th in threads:
                th.start()
            for th in threads:
                th.join()
        meta = [e for e in _read(tmp_path / "t.jsonl") if e["name"] == "thread_name"]
        assert len(meta) == 1

    def test_lane_epoch_separates_recycled_pids(self, tmp_path):
        # Regression: after a pool respawn the OS may hand a new worker
        # a previously-seen pid; keying lanes by pid alone silently
        # merged two different workers' spans into one lane.
        with trace_to(tmp_path / "t.jsonl") as t:
            other = os.getpid() + 1
            first = t.worker_lane(other, 5)
            assert first == other
            t.bump_lane_epoch()
            second = t.worker_lane(other, 5)
            assert second != first  # distinct lane for the reused pid
        meta = [e for e in _read(tmp_path / "t.jsonl") if e["name"] == "thread_name"]
        labels = sorted(e["args"]["name"] for e in meta)
        assert labels == [f"worker-{other}", f"worker-{other}-g1"]

    def test_driver_lanes_unaffected_by_epoch(self, tmp_path):
        with trace_to(tmp_path / "t.jsonl") as t:
            assert t.worker_lane(os.getpid(), 17) == 17
            t.bump_lane_epoch()
            assert t.worker_lane(os.getpid(), 17) == 17
        meta = [e for e in _read(tmp_path / "t.jsonl") if e["name"] == "thread_name"]
        assert len(meta) == 1

    def test_null_tracer_bump_is_inert(self):
        NULL_TRACER.bump_lane_epoch()
