"""Unit tests for the repro.obs metrics registry."""

from __future__ import annotations

import threading

from repro.obs.metrics import (
    HISTOGRAM_SAMPLE_CAP,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


def test_counter_increments():
    c = Counter("tasks")
    assert c.value == 0
    c.inc()
    c.inc(4)
    assert c.value == 5


def test_gauge_holds_last_value():
    g = Gauge("depth")
    g.set(3.5)
    g.set(2.0)
    assert g.value == 2.0


def test_histogram_summary_stats():
    h = Histogram("lat")
    for v in [1.0, 2.0, 3.0, 4.0]:
        h.observe(v)
    s = h.summary()
    assert s["count"] == 4
    assert s["total"] == 10.0
    assert s["min"] == 1.0
    assert s["max"] == 4.0
    assert s["mean"] == 2.5
    assert 1.0 <= s["p50"] <= 4.0
    assert s["p50"] <= s["p95"] <= 4.0


def test_histogram_empty_summary():
    assert Histogram("lat").summary() == {"count": 0}


def test_histogram_sample_cap_keeps_count_and_total():
    h = Histogram("lat")
    n = HISTOGRAM_SAMPLE_CAP + 500
    for i in range(n):
        h.observe(1.0)
    s = h.summary()
    # count/total are exact even though the sample reservoir is capped
    assert s["count"] == n
    assert s["total"] == float(n)


def test_histogram_percentiles_exact_below_cap():
    h = Histogram("lat")
    for v in range(100):
        h.observe(float(v))
    s = h.summary()
    assert s["p50"] == 50.0
    assert s["p99"] == 99.0


def test_histogram_reservoir_tracks_whole_run():
    # A serving process observes a slow startup era then a fast steady
    # state much longer than the cap. A frozen sample would report the
    # startup p50 forever; the reservoir must follow the stream.
    h = Histogram("serve.request_latency")
    for _ in range(HISTOGRAM_SAMPLE_CAP):
        h.observe(100.0)  # startup/JIT era: exactly fills the old cap
    for _ in range(9 * HISTOGRAM_SAMPLE_CAP):
        h.observe(1.0)  # steady state: 90% of the run
    s = h.summary()
    assert s["count"] == 10 * HISTOGRAM_SAMPLE_CAP
    assert s["min"] == 1.0 and s["max"] == 100.0
    # p50 of the true stream is 1.0; the frozen-sample bug reported 100.0
    assert s["p50"] == 1.0
    # the startup era is ~10% of the stream, so it still shows at p95+
    assert s["p99"] == 100.0


def test_histogram_reservoir_is_deterministic():
    # Seeded from the instrument name: identical observation sequences
    # yield identical summaries across instances (and processes).
    def fill(h):
        for v in range(3 * HISTOGRAM_SAMPLE_CAP):
            h.observe(float(v % 977))
        return h.summary()

    assert fill(Histogram("lat")) == fill(Histogram("lat"))


def test_registry_get_or_create_is_idempotent():
    reg = MetricsRegistry()
    assert reg.counter("a") is reg.counter("a")
    assert reg.gauge("g") is reg.gauge("g")
    assert reg.histogram("h") is reg.histogram("h")
    # the same name with a different type is a distinct metric
    assert reg.counter("x") is not reg.gauge("x")


def test_registry_snapshot_and_reset():
    reg = MetricsRegistry()
    reg.counter("tasks").inc(3)
    reg.gauge("depth").set(7.0)
    reg.histogram("lat").observe(1.5)
    snap = reg.snapshot()
    assert snap["counters"]["tasks"] == 3
    assert snap["gauges"]["depth"] == 7.0
    assert snap["histograms"]["lat"]["count"] == 1
    reg.reset()
    snap = reg.snapshot()
    assert snap["counters"] == {}
    assert snap["gauges"] == {}
    assert snap["histograms"] == {}


def test_counter_thread_safety():
    c = Counter("n")
    per_thread = 5000

    def work():
        for _ in range(per_thread):
            c.inc()

    threads = [threading.Thread(target=work) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert c.value == 4 * per_thread
