"""Unit tests for the repro.obs metrics registry."""

from __future__ import annotations

import threading

import pytest

from repro.obs.metrics import (
    HISTOGRAM_SAMPLE_CAP,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


def test_counter_increments():
    c = Counter("tasks")
    assert c.value == 0
    c.inc()
    c.inc(4)
    assert c.value == 5


def test_gauge_holds_last_value():
    g = Gauge("depth")
    g.set(3.5)
    g.set(2.0)
    assert g.value == 2.0


def test_histogram_summary_stats():
    h = Histogram("lat")
    for v in [1.0, 2.0, 3.0, 4.0]:
        h.observe(v)
    s = h.summary()
    assert s["count"] == 4
    assert s["total"] == 10.0
    assert s["min"] == 1.0
    assert s["max"] == 4.0
    assert s["mean"] == 2.5
    assert 1.0 <= s["p50"] <= 4.0
    assert s["p50"] <= s["p95"] <= 4.0


def test_histogram_empty_summary():
    assert Histogram("lat").summary() == {"count": 0}


def test_histogram_sample_cap_keeps_count_and_total():
    h = Histogram("lat")
    n = HISTOGRAM_SAMPLE_CAP + 500
    for i in range(n):
        h.observe(1.0)
    s = h.summary()
    # count/total are exact even though the sample reservoir is capped
    assert s["count"] == n
    assert s["total"] == float(n)


def test_histogram_percentiles_exact_below_cap():
    h = Histogram("lat")
    for v in range(100):
        h.observe(float(v))
    s = h.summary()
    assert s["p50"] == 50.0
    assert s["p99"] == 99.0


def test_histogram_reservoir_tracks_whole_run():
    # A serving process observes a slow startup era then a fast steady
    # state much longer than the cap. A frozen sample would report the
    # startup p50 forever; the reservoir must follow the stream.
    h = Histogram("serve.request_latency")
    for _ in range(HISTOGRAM_SAMPLE_CAP):
        h.observe(100.0)  # startup/JIT era: exactly fills the old cap
    for _ in range(9 * HISTOGRAM_SAMPLE_CAP):
        h.observe(1.0)  # steady state: 90% of the run
    s = h.summary()
    assert s["count"] == 10 * HISTOGRAM_SAMPLE_CAP
    assert s["min"] == 1.0 and s["max"] == 100.0
    # p50 of the true stream is 1.0; the frozen-sample bug reported 100.0
    assert s["p50"] == 1.0
    # the startup era is ~10% of the stream, so it still shows at p95+
    assert s["p99"] == 100.0


def test_histogram_reservoir_is_deterministic():
    # Seeded from the instrument name: identical observation sequences
    # yield identical summaries across instances (and processes).
    def fill(h):
        for v in range(3 * HISTOGRAM_SAMPLE_CAP):
            h.observe(float(v % 977))
        return h.summary()

    assert fill(Histogram("lat")) == fill(Histogram("lat"))


def test_registry_get_or_create_is_idempotent():
    reg = MetricsRegistry()
    assert reg.counter("a") is reg.counter("a")
    assert reg.gauge("g") is reg.gauge("g")
    assert reg.histogram("h") is reg.histogram("h")
    # the same name with a different type is a distinct metric
    assert reg.counter("x") is not reg.gauge("x")


def test_registry_snapshot_and_reset():
    reg = MetricsRegistry()
    reg.counter("tasks").inc(3)
    reg.gauge("depth").set(7.0)
    reg.histogram("lat").observe(1.5)
    snap = reg.snapshot()
    assert snap["counters"]["tasks"] == 3
    assert snap["gauges"]["depth"] == 7.0
    assert snap["histograms"]["lat"]["count"] == 1
    reg.reset()
    snap = reg.snapshot()
    assert snap["counters"] == {}
    assert snap["gauges"] == {}
    assert snap["histograms"] == {}


def test_counter_thread_safety():
    c = Counter("n")
    per_thread = 5000

    def work():
        for _ in range(per_thread):
            c.inc()

    threads = [threading.Thread(target=work) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert c.value == 4 * per_thread


class TestLabels:
    def test_labeled_instruments_are_distinct(self):
        reg = MetricsRegistry()
        ok = reg.counter("requests", labels={"status": "200"})
        bad = reg.counter("requests", labels={"status": "500"})
        assert ok is not bad
        ok.inc(3)
        bad.inc()
        snap = reg.snapshot()
        assert snap["counters"]['requests{status="200"}'] == 3
        assert snap["counters"]['requests{status="500"}'] == 1

    def test_label_order_is_canonical(self):
        reg = MetricsRegistry()
        a = reg.counter("c", labels={"x": 1, "y": 2})
        b = reg.counter("c", labels={"y": 2, "x": 1})
        assert a is b
        assert a.sample_name == 'c{x="1",y="2"}'

    def test_unlabeled_names_stay_bare(self):
        # the historical snapshot format must not change
        reg = MetricsRegistry()
        reg.counter("tasks").inc()
        reg.gauge("depth").set(1.0)
        reg.histogram("lat").observe(0.5)
        snap = reg.snapshot()
        assert set(snap["counters"]) == {"tasks"}
        assert set(snap["gauges"]) == {"depth"}
        assert set(snap["histograms"]) == {"lat"}
        assert "buckets" not in snap["histograms"]["lat"]

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        c = reg.counter("c", labels={"path": 'a"b\\c'})
        assert c.sample_name == 'c{path="a\\"b\\\\c"}'


class TestBuckets:
    def test_bucket_counts_are_cumulative_le(self):
        h = Histogram("lat", buckets=(0.1, 0.5, 1.0))
        for v in (0.05, 0.1, 0.3, 2.0):
            h.observe(v)
        counts = h.bucket_counts()
        # le semantics: 0.1 catches 0.05 and the exactly-equal 0.1
        assert counts[0.1] == 2
        assert counts[0.5] == 3
        assert counts[1.0] == 3
        assert counts[float("inf")] == 4

    def test_unbucketed_histogram_has_no_bucket_counts(self):
        assert Histogram("lat").bucket_counts() is None

    def test_summary_carries_buckets_only_when_configured(self):
        h = Histogram("lat", buckets=(1.0,))
        h.observe(0.5)
        s = h.summary()
        assert s["buckets"] == {"1.0": 1, "+Inf": 1}
        h2 = Histogram("lat2")
        h2.observe(0.5)
        assert "buckets" not in h2.summary()

    def test_registry_buckets_apply_on_first_creation_only(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(1.0, 2.0))
        again = reg.histogram("lat", buckets=(9.0,))
        assert again is h
        assert h.buckets == (1.0, 2.0)


class TestPrometheus:
    def test_render_and_parse_round_trip(self):
        from repro.obs.metrics import parse_prometheus_text, render_prometheus

        reg = MetricsRegistry()
        reg.counter("serve.requests_total").inc(7)
        reg.counter("serve.requests_by_status", labels={"status": "200"}).inc(6)
        reg.gauge("serve.queue_depth").set(2.0)
        hist = reg.histogram("serve.request_latency_s", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        reg.histogram("solve.lat").observe(0.25)

        text = render_prometheus(reg)
        parsed = parse_prometheus_text(text)
        types, samples = parsed["types"], parsed["samples"]
        assert types["serve_requests_total"] == "counter"
        assert types["serve_queue_depth"] == "gauge"
        assert types["serve_request_latency_s"] == "histogram"
        assert types["solve_lat"] == "summary"
        assert samples["serve_requests_total"] == 7
        assert samples['serve_requests_by_status{status="200"}'] == 6
        assert samples['serve_request_latency_s_bucket{le="0.1"}'] == 1
        assert samples['serve_request_latency_s_bucket{le="1"}'] == 2
        assert samples['serve_request_latency_s_bucket{le="+Inf"}'] == 2
        assert samples["serve_request_latency_s_count"] == 2
        assert samples["serve_request_latency_s_sum"] == 0.55
        assert samples['solve_lat{quantile="0.50"}'] == 0.25
        assert samples["solve_lat_count"] == 1

    def test_parse_rejects_untyped_samples(self):
        from repro.obs.metrics import parse_prometheus_text

        with pytest.raises(ValueError, match="missing # TYPE"):
            parse_prometheus_text("lonely_sample 1\n")

    def test_parse_rejects_bad_values(self):
        from repro.obs.metrics import parse_prometheus_text

        with pytest.raises(ValueError, match="bad value"):
            parse_prometheus_text("# TYPE x counter\nx nope\n")

    def test_name_sanitization(self):
        from repro.obs.metrics import _prom_name

        assert _prom_name("serve.request_latency_s") == "serve_request_latency_s"
        assert _prom_name("9lives") == "_9lives"

    def test_empty_registry_renders_empty(self):
        from repro.obs.metrics import render_prometheus

        assert render_prometheus(MetricsRegistry()) == ""


class TestRaces:
    def test_snapshot_during_concurrent_registration(self):
        # Regression: snapshot() used to iterate the live instrument
        # dict; a concurrent counter() registration could raise
        # RuntimeError(dict changed size during iteration) or tear the
        # view. Hammer both sides and require clean snapshots.
        reg = MetricsRegistry()
        stop = threading.Event()
        errors = []

        def register():
            i = 0
            while not stop.is_set():
                reg.counter(f"c{i % 997}").inc()
                i += 1

        def snapshot():
            try:
                for _ in range(300):
                    snap = reg.snapshot()
                    assert isinstance(snap["counters"], dict)
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)
            finally:
                stop.set()

        threads = [threading.Thread(target=register) for _ in range(3)]
        threads.append(threading.Thread(target=snapshot))
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors

    def test_summary_is_not_torn_under_concurrent_observes(self):
        # Regression: summary() read count/total after releasing the
        # lock, so a mid-snapshot observe could yield mean > max.
        h = Histogram("lat", buckets=(10.0,))
        stop = threading.Event()
        errors = []

        def observe():
            while not stop.is_set():
                h.observe(1.0)

        def check():
            try:
                for _ in range(2000):
                    s = h.summary()
                    if s["count"] == 0:
                        continue
                    assert s["total"] == s["count"] * 1.0
                    assert s["min"] == s["max"] == s["mean"] == 1.0
                    assert s["buckets"]["+Inf"] == s["count"]
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)
            finally:
                stop.set()

        threads = [threading.Thread(target=observe) for _ in range(3)]
        threads.append(threading.Thread(target=check))
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
