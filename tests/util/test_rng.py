"""RNG plumbing: determinism, passthrough, and independent spawning."""

import numpy as np
import pytest

from repro.util.rng import ensure_rng, spawn_rngs


def test_ensure_rng_from_int_is_deterministic():
    a = ensure_rng(42).random(5)
    b = ensure_rng(42).random(5)
    assert np.array_equal(a, b)


def test_ensure_rng_different_seeds_differ():
    assert not np.array_equal(ensure_rng(1).random(5), ensure_rng(2).random(5))


def test_ensure_rng_passthrough_identity():
    gen = np.random.default_rng(0)
    assert ensure_rng(gen) is gen


def test_ensure_rng_none_gives_generator():
    assert isinstance(ensure_rng(None), np.random.Generator)


def test_ensure_rng_seed_sequence():
    seq = np.random.SeedSequence(7)
    a = ensure_rng(seq).random(3)
    b = ensure_rng(np.random.SeedSequence(7)).random(3)
    assert np.array_equal(a, b)


def test_spawn_rngs_count():
    assert len(spawn_rngs(0, 4)) == 4
    assert spawn_rngs(0, 0) == []


def test_spawn_rngs_streams_differ():
    rngs = spawn_rngs(9, 3)
    draws = [r.random(4).tolist() for r in rngs]
    assert draws[0] != draws[1] != draws[2]


def test_spawn_rngs_deterministic_group():
    a = [r.random(2).tolist() for r in spawn_rngs(5, 3)]
    b = [r.random(2).tolist() for r in spawn_rngs(5, 3)]
    assert a == b


def test_spawn_rngs_from_generator():
    gen = np.random.default_rng(3)
    rngs = spawn_rngs(gen, 2)
    assert len(rngs) == 2 and all(isinstance(r, np.random.Generator) for r in rngs)


def test_spawn_rngs_negative_raises():
    with pytest.raises(ValueError):
        spawn_rngs(0, -1)
