"""Parameter validators: domains, coercion, and error naming."""

import pytest

from repro.errors import InvalidParameterError
from repro.util.validation import check_epsilon, check_k, check_positive_int, check_probability


class TestCheckEpsilon:
    def test_accepts_positive(self):
        assert check_epsilon(0.1) == pytest.approx(0.1)

    @pytest.mark.parametrize("bad", [0.0, -0.5, -1e-30])
    def test_rejects_nonpositive(self, bad):
        with pytest.raises(InvalidParameterError):
            check_epsilon(bad)

    def test_upper_bound_enforced(self):
        with pytest.raises(InvalidParameterError):
            check_epsilon(1.5, upper=1.0)

    def test_upper_bound_inclusive(self):
        assert check_epsilon(1.0, upper=1.0) == 1.0

    def test_error_names_parameter(self):
        with pytest.raises(InvalidParameterError, match="slack"):
            check_epsilon(-1, name="slack")


class TestCheckK:
    def test_accepts_range(self):
        assert check_k(3, 10) == 3
        assert check_k(1, 1) == 1
        assert check_k(10, 10) == 10

    @pytest.mark.parametrize("bad", [0, -1, 11])
    def test_rejects_out_of_range(self, bad):
        with pytest.raises(InvalidParameterError):
            check_k(bad, 10)

    def test_rejects_fractional(self):
        with pytest.raises(InvalidParameterError):
            check_k(2.5, 10)


class TestCheckPositiveInt:
    def test_accepts(self):
        assert check_positive_int(5, name="n") == 5

    @pytest.mark.parametrize("bad", [0, -3, 2.5])
    def test_rejects(self, bad):
        with pytest.raises(InvalidParameterError):
            check_positive_int(bad, name="n")


class TestCheckProbability:
    @pytest.mark.parametrize("ok", [0.0, 0.5, 1.0])
    def test_accepts_unit_interval(self, ok):
        assert check_probability(ok) == ok

    @pytest.mark.parametrize("bad", [-0.1, 1.1])
    def test_rejects_outside(self, bad):
        with pytest.raises(InvalidParameterError):
            check_probability(bad)
