"""Tests for the shared CSR structure helpers."""

import numpy as np
import pytest
from scipy import sparse

from repro.errors import InvalidInstanceError
from repro.util.csr import (
    csr_drop_diagonal,
    csr_transpose,
    rows_are_uniform,
    validate_csr,
)


class TestValidateCsr:
    def test_accepts_canonical_structure(self):
        indptr, indices = validate_csr([0, 2, 2, 3], [0, 3, 1], 4)
        assert indptr.dtype == np.intp and indices.dtype == np.intp

    def test_rejects_nonzero_start(self):
        with pytest.raises(InvalidInstanceError, match="start at 0"):
            validate_csr([1, 2], [0], 4)

    def test_rejects_decreasing_indptr(self):
        with pytest.raises(InvalidInstanceError, match="non-decreasing"):
            validate_csr([0, 2, 1], [0, 1], 4)

    def test_rejects_length_mismatch(self):
        with pytest.raises(InvalidInstanceError, match="len"):
            validate_csr([0, 3], [0, 1], 4)

    def test_rejects_out_of_range_column(self):
        with pytest.raises(InvalidInstanceError, match="out of range"):
            validate_csr([0, 1], [4], 4)
        with pytest.raises(InvalidInstanceError, match="out of range"):
            validate_csr([0, 1], [-1], 4)

    def test_rejects_duplicate_column_in_row(self):
        with pytest.raises(InvalidInstanceError, match="duplicate"):
            validate_csr([0, 2], [1, 1], 4)

    def test_duplicates_across_rows_are_fine(self):
        validate_csr([0, 1, 2], [1, 1], 4)

    def test_require_sorted(self):
        validate_csr([0, 2, 4], [0, 3, 1, 2], 4, require_sorted=True)
        with pytest.raises(InvalidInstanceError, match="ascending"):
            validate_csr([0, 2], [3, 0], 4, require_sorted=True)
        # Descent across a row boundary is fine.
        validate_csr([0, 1, 2], [3, 0], 4, require_sorted=True)
        # Duplicates are caught by strict ascent.
        with pytest.raises(InvalidInstanceError, match="ascending"):
            validate_csr([0, 2], [1, 1], 4, require_sorted=True)

    def test_empty_rows_and_empty_matrix(self):
        validate_csr([0, 0, 0], [], 4, require_sorted=True)
        validate_csr([0], [], 0)


class TestRowsAreUniform:
    def test_uniform(self):
        flag, k = rows_are_uniform(np.array([0, 3, 6, 9]))
        assert flag and k == 3

    def test_ragged(self):
        flag, _ = rows_are_uniform(np.array([0, 3, 5, 9]))
        assert not flag

    def test_empty(self):
        flag, k = rows_are_uniform(np.array([0]))
        assert flag and k == 0


class TestCsrTranspose:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_scipy_transpose(self, seed):
        rng = np.random.default_rng(seed)
        A = sparse.random(13, 7, density=0.3, random_state=rng, format="csr")
        A.sort_indices()
        t_indptr, t_indices, entry = csr_transpose(A.indptr, A.indices, 7)
        T = A.T.tocsr()
        T.sort_indices()
        np.testing.assert_array_equal(t_indptr, T.indptr)
        np.testing.assert_array_equal(t_indices, T.indices)
        np.testing.assert_allclose(A.data[entry], T.data)

    def test_entry_round_trips_payload(self):
        indptr = np.array([0, 2, 3])
        indices = np.array([1, 2, 1])
        data = np.array([10.0, 20.0, 30.0])
        t_indptr, t_indices, entry = csr_transpose(indptr, indices, 3)
        # column 1 holds rows 0 and 1 in ascending row order
        np.testing.assert_array_equal(t_indptr, [0, 0, 2, 3])
        np.testing.assert_array_equal(t_indices, [0, 1, 0])
        np.testing.assert_allclose(data[entry], [10.0, 30.0, 20.0])


class TestCsrDropDiagonal:
    def test_removes_diagonal_only(self):
        A = sparse.csr_matrix(
            np.array([[1, 1, 0], [0, 1, 1], [1, 0, 1]], dtype=bool)
        )
        B = csr_drop_diagonal(A)
        assert sparse.isspmatrix_csr(B)
        expected = A.toarray().copy()
        np.fill_diagonal(expected, False)
        np.testing.assert_array_equal(B.toarray(), expected)

    def test_no_diagonal_is_identity(self):
        A = sparse.csr_matrix(np.array([[0, 1], [1, 0]], dtype=bool))
        B = csr_drop_diagonal(A)
        np.testing.assert_array_equal(B.toarray(), A.toarray())

    @pytest.mark.parametrize("seed", [3, 4])
    def test_random_matrices(self, seed):
        rng = np.random.default_rng(seed)
        dense = rng.random((20, 20)) < 0.2
        A = sparse.csr_matrix(dense)
        B = csr_drop_diagonal(A)
        expected = dense.copy()
        np.fill_diagonal(expected, False)
        np.testing.assert_array_equal(B.toarray() != 0, expected)
