"""The exception hierarchy contract: everything derives from ReproError."""

import pytest

from repro.errors import (
    ConvergenceError,
    InfeasibleSolutionError,
    InvalidInstanceError,
    InvalidParameterError,
    LPSolveError,
    ReproError,
)

_SUBCLASSES = [
    InvalidInstanceError,
    InvalidParameterError,
    ConvergenceError,
    LPSolveError,
    InfeasibleSolutionError,
]


@pytest.mark.parametrize("exc", _SUBCLASSES)
def test_subclasses_repro_error(exc):
    assert issubclass(exc, ReproError)


@pytest.mark.parametrize("exc", _SUBCLASSES)
def test_catchable_as_repro_error(exc):
    with pytest.raises(ReproError):
        raise exc("boom")


def test_repro_error_is_exception():
    assert issubclass(ReproError, Exception)


def test_distinct_types():
    assert len(set(_SUBCLASSES)) == len(_SUBCLASSES)
