"""§4 parallel greedy: approximation, dual fitting, rounds, mechanics."""

import numpy as np
import pytest

from repro.analysis.rounds import round_envelopes
from repro.baselines.brute_force import brute_force_facility_location
from repro.baselines.greedy_jms import greedy_jms
from repro.core.greedy import parallel_greedy
from repro.errors import ConvergenceError, InvalidParameterError
from repro.lp.duality import check_dual_feasible, dual_fitting_slack
from repro.lp.solve import lp_lower_bound
from repro.metrics.generators import euclidean_instance
from repro.metrics.instance import FacilityLocationInstance
from repro.pram.machine import PramMachine

FIXTURES = ["tiny_fl", "small_fl", "clustered_fl", "nongeometric_fl", "star_fl", "two_scale_fl"]


class TestApproximation:
    @pytest.mark.parametrize("fixture", FIXTURES)
    def test_within_proven_factor_of_opt(self, fixture, request):
        """Theorem 4.9: (6+ε)-approx (the paper's weaker, self-contained
        bound; the factor-revealing-LP bound is 3.722+ε)."""
        inst = request.getfixturevalue(fixture)
        opt, _ = brute_force_facility_location(inst)
        sol = parallel_greedy(inst, epsilon=0.1, seed=3)
        assert sol.cost <= (6 + 0.1) * opt * (1 + 1e-9)

    @pytest.mark.parametrize("fixture", FIXTURES)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_within_tight_factor_across_seeds(self, fixture, seed, request):
        """Abstract claim: (3.722+ε) — holds on all measured runs."""
        inst = request.getfixturevalue(fixture)
        opt, _ = brute_force_facility_location(inst)
        sol = parallel_greedy(inst, epsilon=0.2, seed=seed)
        assert sol.cost <= (3.722 + 0.2) * opt * (1 + 1e-9)

    def test_medium_instance_vs_lp(self, medium_fl):
        sol = parallel_greedy(medium_fl, epsilon=0.1, seed=5)
        assert sol.cost <= (6 + 0.1) * lp_lower_bound(medium_fl) * (1 + 1e-9)

    def test_star_instance_resists_rim(self, star_fl):
        opt, _ = brute_force_facility_location(star_fl)
        sol = parallel_greedy(star_fl, epsilon=0.1, seed=1)
        assert sol.cost <= 2.0 * opt  # hub should dominate the solution


class TestDualFitting:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_lemma_47_alpha_over_3_feasible(self, small_fl, seed):
        sol = parallel_greedy(small_fl, epsilon=0.1, seed=seed, preprocess=False)
        check_dual_feasible(small_fl, sol.alpha / 3.0, tol=1e-7)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_lemma_46_shrink_within_1861(self, small_fl, seed):
        """Lemma 4.6: α/1.861 is dual feasible (factor-revealing LP)."""
        sol = parallel_greedy(small_fl, epsilon=0.1, seed=seed, preprocess=False)
        slack = dual_fitting_slack(small_fl, sol.alpha)
        assert slack <= 1.861 * (1 + 1e-6)

    @pytest.mark.parametrize("fixture", ["tiny_fl", "clustered_fl", "nongeometric_fl"])
    def test_lemma_43_cost_bounded_by_alpha(self, fixture, request):
        """Lemma 4.3: cost ≤ 2(1+ε)² Σ α_j (exact without preprocessing)."""
        inst = request.getfixturevalue(fixture)
        eps = 0.1
        sol = parallel_greedy(inst, epsilon=eps, seed=7, preprocess=False)
        assert sol.cost <= 2 * (1 + eps) ** 2 * sol.alpha.sum() * (1 + 1e-9)

    def test_alpha_nonnegative_and_bounded(self, small_fl):
        sol = parallel_greedy(small_fl, epsilon=0.1, seed=0, preprocess=False)
        assert np.all(sol.alpha >= 0)
        # Σα/1.861 feasible ⇒ Σα ≤ 1.861·LP ≤ 1.861·opt
        assert sol.alpha.sum() <= 1.861 * lp_lower_bound(small_fl) * (1 + 1e-6)


class TestRounds:
    @pytest.mark.parametrize("eps", [0.1, 0.5, 1.0])
    def test_outer_rounds_within_envelope(self, small_fl, eps):
        sol = parallel_greedy(small_fl, epsilon=eps, seed=2)
        env = round_envelopes(small_fl.m, eps)
        assert sol.rounds["greedy_outer"] <= env["greedy_outer"]

    def test_subselect_rounds_reasonable(self, small_fl):
        sol = parallel_greedy(small_fl, epsilon=0.1, seed=2)
        env = round_envelopes(small_fl.m, 0.1)
        assert sol.rounds["greedy_subselect"] <= env["greedy_subselect"] * sol.rounds["greedy_outer"]

    def test_preprocessing_reduces_or_keeps_rounds(self, two_scale_fl):
        with_pre = parallel_greedy(two_scale_fl, epsilon=0.1, seed=4, preprocess=True)
        without = parallel_greedy(two_scale_fl, epsilon=0.1, seed=4, preprocess=False)
        assert with_pre.rounds["greedy_outer"] <= without.rounds["greedy_outer"] + 1

    def test_round_cap_raises(self, small_fl):
        with pytest.raises(ConvergenceError, match="outer"):
            parallel_greedy(small_fl, epsilon=0.1, seed=0, max_outer_rounds=0)


class TestMechanics:
    def test_solution_structure(self, small_fl):
        sol = parallel_greedy(small_fl, epsilon=0.1, seed=0)
        assert sol.opened.size >= 1
        assert sol.cost == pytest.approx(small_fl.cost(sol.opened))
        assert sol.cost == pytest.approx(sol.facility_cost + sol.connection_cost)

    def test_deterministic_under_seed(self, small_fl):
        a = parallel_greedy(small_fl, epsilon=0.1, seed=11)
        b = parallel_greedy(small_fl, epsilon=0.1, seed=11)
        assert np.array_equal(a.opened, b.opened)
        assert np.allclose(a.alpha, b.alpha)

    def test_model_costs_recorded(self, small_fl):
        sol = parallel_greedy(small_fl, epsilon=0.1, seed=0)
        assert sol.model_costs.work > 0
        assert sol.model_costs.depth > 0
        # polylog depth: far below work
        assert sol.model_costs.depth < sol.model_costs.work / 10

    def test_tau_trace_nondecreasing_with_preprocessing(self, small_fl):
        sol = parallel_greedy(small_fl, epsilon=0.1, seed=0)
        taus = sol.extra["tau_trace"]
        # After opening, zero-cost facilities can re-enter with lower star
        # prices; τ need not rise monotonically, but it never collapses
        # below the preprocessing floor.
        floor = sol.extra["gamma"] / small_fl.m**2
        assert all(t >= floor - 1e-12 for t in taus)

    def test_epsilon_validation(self, small_fl):
        with pytest.raises(InvalidParameterError):
            parallel_greedy(small_fl, epsilon=0.0)
        with pytest.raises(InvalidParameterError):
            parallel_greedy(small_fl, epsilon=1.5)

    def test_explicit_machine_used(self, small_fl):
        m = PramMachine(seed=9)
        parallel_greedy(small_fl, epsilon=0.1, machine=m)
        assert m.ledger.work > 0

    def test_single_facility_instance(self):
        inst = FacilityLocationInstance(np.array([[1.0, 2.0, 3.0]]), np.array([2.0]))
        sol = parallel_greedy(inst, epsilon=0.1, seed=0)
        assert sol.opened.tolist() == [0]
        assert sol.cost == pytest.approx(8.0)

    def test_single_client_instance(self):
        inst = FacilityLocationInstance(np.array([[5.0], [1.0]]), np.array([1.0, 3.0]))
        sol = parallel_greedy(inst, epsilon=0.1, seed=0)
        opt, _ = brute_force_facility_location(inst)
        assert sol.cost <= 6.1 * opt

    def test_zero_cost_facilities(self):
        D = np.array([[0.0, 1.0], [1.0, 0.0]])
        inst = FacilityLocationInstance(D, np.zeros(2))
        sol = parallel_greedy(inst, epsilon=0.1, seed=0)
        assert sol.cost == pytest.approx(0.0)

    def test_all_ties_star_instance(self, star_fl):
        # Every rim star ties exactly — subselection must thin them.
        sol = parallel_greedy(star_fl, epsilon=0.5, seed=3)
        assert sol.opened.size <= star_fl.n_facilities

    def test_larger_epsilon_fewer_or_equal_outer_rounds(self, medium_fl):
        lo = parallel_greedy(medium_fl, epsilon=0.05, seed=1)
        hi = parallel_greedy(medium_fl, epsilon=1.0, seed=1)
        assert hi.rounds["greedy_outer"] <= lo.rounds["greedy_outer"]
