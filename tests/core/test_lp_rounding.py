"""§6.2 LP rounding: (4+ε) vs LP value, Claims 6.3/6.4, mechanics."""

import numpy as np
import pytest

from repro.core.lp_rounding import parallel_lp_rounding
from repro.errors import ConvergenceError, InvalidParameterError
from repro.lp.solve import solve_primal
from repro.metrics.generators import euclidean_instance
from repro.metrics.instance import FacilityLocationInstance

FIXTURES = ["tiny_fl", "small_fl", "clustered_fl", "nongeometric_fl", "two_scale_fl"]


class TestApproximation:
    @pytest.mark.parametrize("fixture", FIXTURES)
    @pytest.mark.parametrize("seed", [0, 1])
    def test_4_plus_eps_vs_lp(self, fixture, seed, request):
        """Theorem 6.5: cost ≤ (4+ε)·LP (α=1/3), plus the θ/m preprocessing
        allowance."""
        inst = request.getfixturevalue(fixture)
        eps = 0.1
        primal = solve_primal(inst)
        sol = parallel_lp_rounding(inst, primal, epsilon=eps, seed=seed)
        bound = 4 * (1 + eps) * primal.value + primal.value / inst.m
        assert sol.cost <= bound * (1 + 1e-9)

    def test_solves_lp_when_not_given(self, tiny_fl):
        sol = parallel_lp_rounding(tiny_fl, epsilon=0.1, seed=0)
        assert sol.extra["theta"] > 0

    def test_filter_alpha_tradeoff(self, small_fl):
        """Facility factor (1+1/a): larger a relaxes connections, tightens
        facilities — both settings still meet their own bound."""
        primal = solve_primal(small_fl)
        for a in (0.25, 0.5):
            sol = parallel_lp_rounding(small_fl, primal, epsilon=0.1, filter_alpha=a, seed=0)
            facility_bound = (1 + 1 / a) * float((small_fl.f * primal.y).sum())
            assert sol.facility_cost <= facility_bound * (1 + 1e-9) + primal.value / small_fl.m


class TestClaims:
    def test_claim_63_facility_cost_paid_by_y_prime(self, small_fl):
        """Σ_{opened} f ≤ Σ_i y′_i f_i (over disjoint balls)."""
        primal = solve_primal(small_fl)
        sol = parallel_lp_rounding(small_fl, primal, epsilon=0.1, seed=1)
        y_prime = sol.extra["y_prime"]
        assert sol.facility_cost <= float((y_prime * small_fl.f).sum()) * (1 + 1e-9)

    def test_claim_64_per_client_service_bound(self, small_fl):
        """d(j, F_A) ≤ 3(1+a)(1+ε)·δ_j for every non-preprocessed client."""
        eps, a = 0.1, 1.0 / 3.0
        primal = solve_primal(small_fl)
        sol = parallel_lp_rounding(small_fl, primal, epsilon=eps, filter_alpha=a, seed=1)
        delta = sol.extra["delta"]
        served = small_fl.connection_distances(sol.opened)
        cut = sol.extra["theta"] / small_fl.m**2
        normal = delta > cut
        assert np.all(
            served[normal] <= 3 * (1 + a) * (1 + eps) * delta[normal] * (1 + 1e-9)
        )

    def test_chosen_balls_disjoint_per_round(self, small_fl):
        """The per-round trace: chosen ≤ processed; every round processes
        at least one client."""
        primal = solve_primal(small_fl)
        sol = parallel_lp_rounding(small_fl, primal, epsilon=0.1, seed=1)
        for row in sol.extra["trace"]:
            assert 1 <= row["chosen"] <= row["processed"]


class TestMechanics:
    def test_anchor_is_cheapest_in_ball(self, small_fl):
        primal = solve_primal(small_fl)
        sol = parallel_lp_rounding(small_fl, primal, epsilon=0.1, seed=0)
        delta = sol.extra["delta"]
        anchor = sol.extra["anchor"]
        a = sol.extra["filter_alpha"]
        for j in range(small_fl.n_clients):
            ball = np.flatnonzero(small_fl.D[:, j] <= (1 + a) * delta[j] * (1 + 1e-9))
            assert anchor[j] in ball
            assert small_fl.f[anchor[j]] == pytest.approx(small_fl.f[ball].min())

    def test_deterministic_under_seed(self, small_fl):
        primal = solve_primal(small_fl)
        a = parallel_lp_rounding(small_fl, primal, epsilon=0.1, seed=5)
        b = parallel_lp_rounding(small_fl, primal, epsilon=0.1, seed=5)
        assert np.array_equal(a.opened, b.opened)

    def test_rounds_recorded(self, small_fl):
        sol = parallel_lp_rounding(small_fl, epsilon=0.1, seed=0)
        assert sol.rounds["rounding"] == len(sol.extra["trace"])

    def test_filter_alpha_validation(self, small_fl):
        with pytest.raises(InvalidParameterError, match="filter_alpha"):
            parallel_lp_rounding(small_fl, epsilon=0.1, filter_alpha=1.5)

    def test_round_cap_raises(self, small_fl):
        with pytest.raises(ConvergenceError):
            parallel_lp_rounding(small_fl, epsilon=0.1, max_rounds=0)

    def test_cost_components(self, small_fl):
        sol = parallel_lp_rounding(small_fl, epsilon=0.1, seed=0)
        assert sol.cost == pytest.approx(small_fl.cost(sol.opened))

    def test_model_costs_polylog_depth(self, small_fl):
        sol = parallel_lp_rounding(small_fl, epsilon=0.1, seed=0)
        assert 0 < sol.model_costs.depth < sol.model_costs.work / 5


class TestEdgeCases:
    def test_integral_lp_solution_recovered(self):
        """When the LP optimum is integral (one dominant facility), the
        rounding should essentially return it."""
        D = np.array([[0.1, 0.1, 0.1], [5.0, 5.0, 5.0]])
        inst = FacilityLocationInstance(D, np.array([0.5, 100.0]))
        sol = parallel_lp_rounding(inst, epsilon=0.1, seed=0)
        assert sol.opened.tolist() == [0]

    def test_single_facility(self):
        inst = FacilityLocationInstance(np.array([[1.0, 2.0]]), np.array([3.0]))
        sol = parallel_lp_rounding(inst, epsilon=0.1, seed=0)
        assert sol.opened.tolist() == [0]

    def test_zero_delta_clients(self):
        """Clients sitting exactly on fractional facilities (δ = 0)."""
        D = np.array([[0.0, 1.0], [1.0, 0.0]])
        inst = FacilityLocationInstance(D, np.array([0.1, 0.1]))
        sol = parallel_lp_rounding(inst, epsilon=0.1, seed=0)
        assert sol.cost <= 4.2 * (0.2 + 0.0) + 1.0  # both open or one + hop
