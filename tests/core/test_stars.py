"""§4 star computation: agreement with enumeration, masking, Fact 4.2."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.greedy_jms import cheapest_star_prices
from repro.core.stars import cheapest_star_prices_masked, presort_distances, star_members
from repro.pram.machine import PramMachine


@pytest.fixture
def setup(rng):
    D = rng.random((5, 9)) * 4
    f = rng.random(5) * 2 + 0.1
    m = PramMachine(seed=0)
    order, Ds = presort_distances(m, D)
    return m, D, f, order, Ds


def test_presort_rows_sorted(setup):
    _, D, _, order, Ds = setup
    assert np.array_equal(Ds, np.sort(D, axis=1))
    assert np.array_equal(np.take_along_axis(D, order, axis=1), Ds)


def test_prices_match_sequential_reference(setup):
    m, D, f, order, Ds = setup
    active = np.ones(9, dtype=bool)
    got = cheapest_star_prices_masked(m, Ds, order, f, active)
    want, _ = cheapest_star_prices(D, f)
    assert np.allclose(got, want)


def test_prices_with_mask_match_submatrix(setup):
    m, D, f, order, Ds = setup
    active = np.array([True, False, True, True, False, True, False, True, True])
    got = cheapest_star_prices_masked(m, Ds, order, f, active)
    want, _ = cheapest_star_prices(D[:, active], f)
    assert np.allclose(got, want)


def test_no_active_clients_inf(setup):
    m, D, f, order, Ds = setup
    got = cheapest_star_prices_masked(m, Ds, order, f, np.zeros(9, dtype=bool))
    assert np.all(np.isinf(got))


def test_zero_facility_cost_price_is_min_distance(setup):
    m, D, _, order, Ds = setup
    got = cheapest_star_prices_masked(m, Ds, order, np.zeros(5), np.ones(9, dtype=bool))
    assert np.allclose(got, D.min(axis=1))


def test_single_active_client(setup):
    m, D, f, order, Ds = setup
    active = np.zeros(9, dtype=bool)
    active[4] = True
    got = cheapest_star_prices_masked(m, Ds, order, f, active)
    assert np.allclose(got, f + D[:, 4])


def test_star_members_fact_42(setup):
    _, D, f, *_ = setup
    prices, _ = cheapest_star_prices(D, f)
    active = np.ones(9, dtype=bool)
    for i in range(5):
        members = star_members(D, i, prices[i], active)
        # Fact 4.2(2): the members' slack exactly pays the facility.
        assert np.sum(prices[i] - D[i, members]) == pytest.approx(f[i], rel=1e-9)


def test_star_members_respect_active(setup):
    _, D, f, *_ = setup
    prices, _ = cheapest_star_prices(D, f)
    active = np.zeros(9, dtype=bool)
    assert star_members(D, 0, prices[0], active).size == 0


def test_charges_only_basic_ops_per_call(setup):
    m, D, f, order, Ds = setup
    before = m.snapshot()
    cheapest_star_prices_masked(m, Ds, order, f, np.ones(9, dtype=bool))
    d = m.ledger.since(before)
    # O(m) work: a handful of basic ops over the 45-element matrix.
    assert d.work <= 12 * D.size
    assert d.calls <= 8


@settings(max_examples=30, deadline=None)
@given(
    st.integers(1, 6),
    st.integers(1, 10),
    st.integers(0, 100_000),
)
def test_property_masked_prices_match_reference(nf, nc, seed):
    rng = np.random.default_rng(seed)
    D = rng.random((nf, nc)) * 10
    f = rng.random(nf) * 5
    active = rng.random(nc) < 0.7
    m = PramMachine(seed=0)
    order, Ds = presort_distances(m, D)
    got = cheapest_star_prices_masked(m, Ds, order, f, active)
    if active.any():
        want, _ = cheapest_star_prices(D[:, active], f)
        assert np.allclose(got, want)
    else:
        assert np.all(np.isinf(got))
