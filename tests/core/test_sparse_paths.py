"""Behavior of the sparse greedy / primal–dual paths on truncated
instances (the cases with no dense twin): solution quality, fallback
handling, O(nnz) work scaling, and entry-point plumbing."""

import numpy as np
import pytest

from repro import PramMachine
from repro.baselines.brute_force import brute_force_facility_location
from repro.core.greedy import parallel_greedy
from repro.core.primal_dual import parallel_primal_dual
from repro.metrics.generators import euclidean_instance, knn_instance
from repro.metrics.sparse import (
    SparseFacilityLocationInstance,
    knn_sparsify,
    threshold_sparsify,
)


@pytest.fixture
def dense():
    return euclidean_instance(10, 40, seed=4)


class TestQuality:
    @pytest.mark.parametrize("algorithm", [parallel_greedy, parallel_primal_dual])
    def test_knn_solution_near_dense_optimum(self, dense, algorithm):
        """With k covering most of the action, the sparse objective on a
        truncated instance stays within a small factor of the dense
        optimum (the fallback column keeps it finite and comparable)."""
        opt, _ = brute_force_facility_location(dense)
        trunc = knn_sparsify(dense, 5)
        sol = algorithm(trunc, epsilon=0.1, machine=PramMachine(seed=1))
        assert np.isfinite(sol.cost)
        # dense-objective value of the sparse solution is also bounded
        assert dense.cost(sol.opened) <= 4.0 * opt
        assert sol.cost <= 4.0 * opt

    @pytest.mark.parametrize("algorithm", [parallel_greedy, parallel_primal_dual])
    def test_threshold_solution_quality(self, dense, algorithm):
        opt, _ = brute_force_facility_location(dense)
        trunc = threshold_sparsify(dense, 0.5)
        sol = algorithm(trunc, epsilon=0.1, machine=PramMachine(seed=1))
        assert np.isfinite(sol.cost)
        assert sol.cost <= 5.0 * opt

    def test_greedy_duals_recorded(self):
        inst = knn_instance(20, 80, k=4, seed=6)
        sol = parallel_greedy(inst, epsilon=0.1, machine=PramMachine(seed=2))
        # every covered client freezes at some round's tau (or was
        # preprocessed at alpha 0)
        assert sol.alpha.shape == (80,)
        assert np.all(sol.alpha >= 0)
        assert np.all(np.isfinite(sol.alpha))


class TestFallback:
    def make_island(self):
        """Client 2 has no candidate facility; fallback serves it."""
        return SparseFacilityLocationInstance(
            [0, 2, 4],
            [0, 1, 0, 1],
            [1.0, 2.0, 2.0, 1.0],
            [1.0, 1.5],
            n_clients=3,
            fallback=[np.inf, np.inf, 7.0],
        )

    def test_greedy_serves_island_by_fallback(self):
        inst = self.make_island()
        sol = parallel_greedy(inst, epsilon=0.1, machine=PramMachine(seed=0))
        assert sol.alpha[2] == 0.0  # never active, dual untouched
        # the island's fallback cost is part of the objective
        assert sol.cost == pytest.approx(inst.cost(sol.opened))
        assert inst.connection_distances(sol.opened)[2] == 7.0

    def test_primal_dual_freezes_island_on_fallback(self):
        inst = self.make_island()
        sol = parallel_primal_dual(inst, epsilon=0.1, machine=PramMachine(seed=0))
        assert np.isfinite(sol.cost)
        assert inst.connection_distances(sol.opened)[2] == 7.0
        # the island froze against the fallback level, not a facility
        assert sol.alpha[2] <= 7.0 * (1 + 0.1) + 1e-9

    def test_all_fallback_instance(self):
        """Every client prefers its fallback: solvers still terminate
        and return a valid (cheapest-facility) solution shape."""
        inst = SparseFacilityLocationInstance(
            [0, 1, 2],
            [0, 0],
            [9.0, 9.0],
            [5.0, 4.0],
            n_clients=2,
            fallback=[0.5, 0.5],
        )
        sol = parallel_primal_dual(inst, epsilon=0.5, machine=PramMachine(seed=0))
        assert np.isfinite(sol.cost)
        assert sol.opened.size >= 1


class TestWorkScaling:
    def test_ledger_work_tracks_nnz(self):
        """Same geometry, smaller k => proportionally less charged work.

        The k-NN instance at k=4 has ~6x fewer edges than at k=24; the
        sparse greedy's charged work must shrink accordingly (well
        beyond a constant-factor wobble)."""
        dense = euclidean_instance(24, 120, seed=8)
        big = knn_sparsify(dense, 24)  # full
        small = knn_sparsify(dense, 4)
        m_big = PramMachine(seed=3)
        parallel_greedy(big, epsilon=0.2, machine=m_big)
        m_small = PramMachine(seed=3)
        parallel_greedy(small, epsilon=0.2, machine=m_small)
        assert small.nnz <= big.nnz / 5
        assert m_small.ledger.work < m_big.ledger.work / 2

    def test_rounds_counted(self):
        inst = knn_instance(15, 60, k=3, seed=5)
        sol = parallel_greedy(inst, epsilon=0.2, machine=PramMachine(seed=4))
        assert sol.rounds["greedy_outer"] >= 1
        sol2 = parallel_primal_dual(inst, epsilon=0.2, machine=PramMachine(seed=4))
        assert sol2.rounds["pd_iterations"] >= 1


class TestEntryPoints:
    def test_backend_kwarg(self):
        inst = knn_instance(12, 50, k=4, seed=1)
        via_machine = parallel_greedy(inst, epsilon=0.1, machine=PramMachine(seed=7))
        via_backend = parallel_greedy(inst, epsilon=0.1, seed=7, backend="serial")
        assert np.array_equal(via_machine.opened, via_backend.opened)
        assert via_machine.cost == via_backend.cost

    def test_compaction_argument_is_ignored_for_sparse(self):
        inst = knn_instance(12, 50, k=4, seed=1)
        a = parallel_greedy(inst, epsilon=0.1, machine=PramMachine(seed=7))
        b = parallel_greedy(
            inst, epsilon=0.1, machine=PramMachine(seed=7), compaction=False
        )
        assert np.array_equal(a.opened, b.opened)
        assert a.cost == b.cost

    def test_solution_metadata(self):
        inst = knn_instance(12, 50, k=4, seed=2)
        sol = parallel_primal_dual(inst, epsilon=0.2, machine=PramMachine(seed=9))
        assert sol.model_costs.work > 0
        assert "gamma" in sol.extra and np.isfinite(sol.extra["gamma"])
        H = sol.extra["H"]
        assert H.shape == (12, 50)
