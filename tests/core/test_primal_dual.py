"""§5 parallel primal–dual: Claim 5.1, Eq. (5), iterations, structure."""

import numpy as np
import pytest

from repro.analysis.rounds import round_envelopes
from repro.baselines.brute_force import brute_force_facility_location
from repro.core.primal_dual import parallel_primal_dual
from repro.errors import ConvergenceError, InvalidParameterError
from repro.lp.duality import check_dual_feasible
from repro.lp.solve import lp_lower_bound
from repro.metrics.instance import FacilityLocationInstance

FIXTURES = ["tiny_fl", "small_fl", "clustered_fl", "nongeometric_fl", "star_fl", "two_scale_fl"]


class TestApproximation:
    @pytest.mark.parametrize("fixture", FIXTURES)
    def test_within_3_plus_eps_of_opt(self, fixture, request):
        """Theorem 5.4 headline: (3+ε)-approximation."""
        inst = request.getfixturevalue(fixture)
        opt, _ = brute_force_facility_location(inst)
        eps = 0.1
        sol = parallel_primal_dual(inst, epsilon=eps, seed=3)
        # ε′ absorbs the 3γ/m additive and the (1+ε) factor: 3(1+ε)+o(1).
        assert sol.cost <= 3 * (1 + eps) * opt * (1 + 1e-9) + 3 * sol.extra["gamma"] / inst.m

    def test_medium_vs_lp(self, medium_fl):
        eps = 0.1
        sol = parallel_primal_dual(medium_fl, epsilon=eps, seed=5)
        lp = lp_lower_bound(medium_fl)
        assert sol.cost <= 3 * (1 + eps) * lp * (1 + 1e-9) + 3 * sol.extra["gamma"] / medium_fl.m


class TestDualFeasibility:
    @pytest.mark.parametrize("fixture", FIXTURES)
    @pytest.mark.parametrize("seed", [0, 1])
    def test_claim_51_alpha_feasible_with_preprocessing(self, fixture, seed, request):
        """Claim 5.1: the recorded α (canonically completed) is dual
        feasible — unshrunk, unlike the greedy's."""
        inst = request.getfixturevalue(fixture)
        sol = parallel_primal_dual(inst, epsilon=0.1, seed=seed, preprocess=True)
        check_dual_feasible(inst, sol.alpha, tol=1e-7)

    def test_alpha_sum_below_lp(self, small_fl):
        sol = parallel_primal_dual(small_fl, epsilon=0.1, seed=0)
        assert sol.alpha.sum() <= lp_lower_bound(small_fl) * (1 + 1e-7)

    def test_without_preprocessing_violation_bounded(self, small_fl):
        """Disabling preprocessing may overtighten cheap facilities, but
        only by the quantified γ·n_c/m² slack."""
        sol = parallel_primal_dual(small_fl, epsilon=0.1, seed=0, preprocess=False)
        gamma = sol.extra["gamma"]
        beta = np.maximum(0.0, sol.alpha[None, :] - small_fl.D)
        overshoot = beta.sum(axis=1) - small_fl.f
        assert overshoot.max() <= gamma * small_fl.n_clients / small_fl.m**2 + 1e-9

    def test_lmp_inequality_eq5(self, small_fl):
        """Eq. (5): 3·Σf + Σd ≤ 3γ/m + 3(1+ε)·Σα."""
        eps = 0.1
        sol = parallel_primal_dual(small_fl, epsilon=eps, seed=2)
        lhs = 3 * sol.facility_cost + sol.connection_cost
        rhs = 3 * sol.extra["gamma"] / small_fl.m + 3 * (1 + eps) * sol.alpha.sum()
        assert lhs <= rhs * (1 + 1e-9)


class TestIterations:
    @pytest.mark.parametrize("eps", [0.05, 0.1, 0.5, 1.0])
    def test_iterations_within_3log(self, small_fl, eps):
        sol = parallel_primal_dual(small_fl, epsilon=eps, seed=1)
        env = round_envelopes(small_fl.m, eps)
        assert sol.rounds["pd_iterations"] <= env["pd_iterations"]

    def test_smaller_eps_more_iterations(self, small_fl):
        lo = parallel_primal_dual(small_fl, epsilon=0.05, seed=1)
        hi = parallel_primal_dual(small_fl, epsilon=0.5, seed=1)
        assert lo.rounds["pd_iterations"] > hi.rounds["pd_iterations"]

    def test_iteration_cap_raises(self, small_fl):
        with pytest.raises(ConvergenceError):
            parallel_primal_dual(small_fl, epsilon=0.1, max_iterations=1)


class TestStructure:
    def test_postprocessing_no_shared_contributions(self, small_fl):
        """The MaxUDom property: each client strictly pays at most one
        surviving facility."""
        sol = parallel_primal_dual(small_fl, epsilon=0.1, seed=4)
        I = sol.extra["I"]
        H = sol.extra["H"]
        if I.size:
            pays = H[I].sum(axis=0)
            assert pays.max() <= 1

    def test_survivors_subset_of_tentative(self, small_fl):
        sol = parallel_primal_dual(small_fl, epsilon=0.1, seed=4)
        assert set(sol.extra["I"].tolist()) <= set(sol.extra["F_T"].tolist())

    def test_opened_is_f0_union_i(self, small_fl):
        sol = parallel_primal_dual(small_fl, epsilon=0.1, seed=4)
        want = np.union1d(sol.extra["F0"], sol.extra["I"])
        assert np.array_equal(sol.opened, want)

    def test_cost_components(self, small_fl):
        sol = parallel_primal_dual(small_fl, epsilon=0.1, seed=0)
        assert sol.cost == pytest.approx(small_fl.cost(sol.opened))
        assert sol.cost == pytest.approx(sol.facility_cost + sol.connection_cost)

    def test_deterministic_under_seed(self, small_fl):
        a = parallel_primal_dual(small_fl, epsilon=0.1, seed=11)
        b = parallel_primal_dual(small_fl, epsilon=0.1, seed=11)
        assert np.array_equal(a.opened, b.opened)
        assert np.allclose(a.alpha, b.alpha)

    def test_alpha_nonnegative(self, small_fl):
        sol = parallel_primal_dual(small_fl, epsilon=0.1, seed=0)
        assert np.all(sol.alpha >= 0)

    def test_epsilon_validation(self, small_fl):
        with pytest.raises(InvalidParameterError):
            parallel_primal_dual(small_fl, epsilon=-1)

    def test_model_costs_polylog_depth(self, small_fl):
        sol = parallel_primal_dual(small_fl, epsilon=0.1, seed=0)
        assert 0 < sol.model_costs.depth < sol.model_costs.work / 10


class TestEdgeCases:
    def test_zero_gamma_instance(self):
        """Every client has a free zero-distance facility: γ = 0."""
        D = np.array([[0.0, 1.0], [1.0, 0.0]])
        inst = FacilityLocationInstance(D, np.zeros(2))
        sol = parallel_primal_dual(inst, epsilon=0.1, seed=0)
        assert sol.cost == pytest.approx(0.0)

    def test_single_facility(self):
        inst = FacilityLocationInstance(np.array([[1.0, 2.0]]), np.array([3.0]))
        sol = parallel_primal_dual(inst, epsilon=0.1, seed=0)
        assert sol.opened.tolist() == [0]
        assert sol.cost == pytest.approx(6.0)

    def test_single_client(self):
        inst = FacilityLocationInstance(np.array([[2.0], [0.5]]), np.array([1.0, 4.0]))
        sol = parallel_primal_dual(inst, epsilon=0.05, seed=0)
        opt, _ = brute_force_facility_location(inst)
        assert sol.cost <= 3.2 * opt

    def test_expensive_facilities_exhaustion_path(self):
        """Cheap instance γ-wise but facility budgets met late — exercises
        the all-facilities-open exhaustion rule."""
        D = np.array([[1.0, 1.0, 1.0]])
        inst = FacilityLocationInstance(D, np.array([0.1]))
        sol = parallel_primal_dual(inst, epsilon=0.5, seed=0)
        assert sol.opened.tolist() == [0]
