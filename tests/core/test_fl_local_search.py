"""§7-remark extension: facility-location local search (add/drop/swap)."""

import numpy as np
import pytest

from repro.baselines.brute_force import brute_force_facility_location
from repro.core.fl_local_search import parallel_fl_local_search
from repro.errors import InvalidParameterError
from repro.metrics.instance import FacilityLocationInstance

FIXTURES = ["tiny_fl", "small_fl", "clustered_fl", "nongeometric_fl", "star_fl"]


class TestApproximation:
    @pytest.mark.parametrize("fixture", FIXTURES)
    def test_within_3_eps_of_opt(self, fixture, request):
        """Local optima of add/drop/swap are 3-approximate (Arya et al.);
        with the threshold the envelope is 3+ε."""
        inst = request.getfixturevalue(fixture)
        opt, _ = brute_force_facility_location(inst)
        sol = parallel_fl_local_search(inst, epsilon=0.1, seed=0)
        assert sol.extra["converged"]
        assert sol.cost <= (3 + 0.1) * opt * (1 + 1e-9)

    def test_often_near_optimal(self, clustered_fl):
        opt, _ = brute_force_facility_location(clustered_fl)
        sol = parallel_fl_local_search(clustered_fl, epsilon=0.05, seed=0)
        assert sol.cost <= 1.3 * opt


class TestMoveSemantics:
    def test_moves_strictly_improve(self, small_fl):
        sol = parallel_fl_local_search(small_fl, epsilon=0.1, seed=0)
        costs = [sol.extra["initial_cost"]] + [c for *_, c in sol.extra["moves"]]
        for prev, new in zip(costs, costs[1:]):
            assert new < prev

    def test_local_optimum_certified(self, small_fl):
        """At convergence no single add/drop/swap beats the threshold —
        verified exhaustively against the returned set."""
        eps = 0.2
        sol = parallel_fl_local_search(small_fl, epsilon=eps, seed=0)
        assert sol.extra["converged"]
        beta = eps / (1 + eps)
        nf = small_fl.n_facilities
        thresh = (1 - beta / (nf + 1)) * sol.cost
        mask = np.zeros(nf, dtype=bool)
        mask[sol.opened] = True
        # adds
        for i in np.flatnonzero(~mask):
            trial = mask.copy(); trial[i] = True
            assert small_fl.cost(trial) >= thresh * (1 - 1e-12)
        # drops
        if sol.opened.size > 1:
            for i in sol.opened:
                trial = mask.copy(); trial[i] = False
                assert small_fl.cost(trial) >= thresh * (1 - 1e-12)
        # swaps
        for i in sol.opened:
            for j in np.flatnonzero(~mask):
                trial = mask.copy(); trial[i] = False; trial[j] = True
                assert small_fl.cost(trial) >= thresh * (1 - 1e-12)

    def test_initial_solution_honored(self, small_fl):
        sol = parallel_fl_local_search(small_fl, epsilon=0.1, seed=0, initial=[0, 1])
        start = small_fl.cost([0, 1])
        assert sol.cost <= start * (1 + 1e-12)

    def test_invalid_initial_rejected(self, small_fl):
        with pytest.raises(InvalidParameterError, match="initial"):
            parallel_fl_local_search(small_fl, initial=[99])


class TestStructure:
    def test_deterministic(self, small_fl):
        a = parallel_fl_local_search(small_fl, epsilon=0.1, seed=3)
        b = parallel_fl_local_search(small_fl, epsilon=0.1, seed=3)
        assert np.array_equal(a.opened, b.opened)

    def test_round_cap_reports_nonconvergence(self, small_fl):
        sol = parallel_fl_local_search(small_fl, epsilon=0.1, seed=0, max_rounds=0)
        assert not sol.extra["converged"]

    def test_cost_components(self, small_fl):
        sol = parallel_fl_local_search(small_fl, epsilon=0.1, seed=0)
        assert sol.cost == pytest.approx(small_fl.cost(sol.opened))

    def test_single_facility_instance(self):
        inst = FacilityLocationInstance(np.array([[1.0, 2.0]]), np.array([3.0]))
        sol = parallel_fl_local_search(inst, epsilon=0.1, seed=0)
        assert sol.opened.tolist() == [0]

    def test_never_empty(self, star_fl):
        sol = parallel_fl_local_search(star_fl, epsilon=0.1, seed=0)
        assert sol.opened.size >= 1

    def test_rounds_recorded(self, small_fl):
        sol = parallel_fl_local_search(small_fl, epsilon=0.1, seed=0)
        assert sol.rounds["fl_local_search"] == len(sol.extra["moves"]) + 1
