"""Lemma 3.1 remark: sparse dominator sets — same semantics, O(|E|) rounds."""

import numpy as np
import pytest
from scipy import sparse

from repro.core.dominator_sparse import (
    _to_csr,
    max_dominator_set_sparse,
    max_u_dominator_set_sparse,
)
from repro.errors import ConvergenceError, InvalidParameterError
from repro.pram.machine import PramMachine
from tests.core.test_dominator import assert_valid_maxdom, random_graph


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("p", [0.05, 0.2, 0.6])
    def test_random_graphs_valid(self, seed, p):
        A = random_graph(24, p, seed)
        sel = max_dominator_set_sparse(sparse.csr_matrix(A), PramMachine(seed=seed))
        assert_valid_maxdom(A, sel)

    def test_accepts_dense_input(self, machine):
        A = random_graph(15, 0.2, 0)
        sel = max_dominator_set_sparse(A, machine)
        assert_valid_maxdom(A, sel)

    def test_matches_dense_variant_distribution(self):
        """Same priorities (same machine seed) ⇒ identical selection to
        the dense implementation round-for-round."""
        from repro.core.dominator import max_dominator_set

        A = random_graph(30, 0.15, 3)
        dense = max_dominator_set(A, PramMachine(seed=42))
        sparse_sel = max_dominator_set_sparse(sparse.csr_matrix(A), PramMachine(seed=42))
        assert np.array_equal(dense, sparse_sel)

    def test_empty_graph_selects_all(self, machine):
        A = sparse.csr_matrix((5, 5), dtype=bool)
        assert max_dominator_set_sparse(A, machine).all()

    def test_complete_graph_selects_one(self, machine):
        A = ~np.eye(8, dtype=bool)
        assert max_dominator_set_sparse(A, machine).sum() == 1

    def test_zero_nodes(self, machine):
        assert max_dominator_set_sparse(sparse.csr_matrix((0, 0)), machine).size == 0

    def test_self_loops_removed(self, machine):
        A = sparse.csr_matrix(np.eye(4, dtype=bool))
        assert max_dominator_set_sparse(A, machine).all()


class TestCosts:
    def test_work_scales_with_edges_not_n_squared(self):
        """On a bounded-degree graph the sparse variant's per-round work
        is O(|E|) ≪ n²: compare charged work against the dense one."""
        from repro.core.dominator import max_dominator_set

        n = 256
        A = random_graph(n, 6.0 / n, 0)  # ~6n/2 edges
        md = PramMachine(seed=1)
        max_dominator_set(A, md)
        ms = PramMachine(seed=1)
        max_dominator_set_sparse(sparse.csr_matrix(A), ms)
        assert ms.ledger.work < md.ledger.work / 10

    def test_rounds_counted(self, machine):
        A = random_graph(40, 0.1, 2)
        max_dominator_set_sparse(A, machine)
        assert machine.ledger.rounds["maxdom_sparse"] >= 1


class TestValidation:
    def test_rejects_nonsquare(self, machine):
        with pytest.raises(InvalidParameterError, match="square"):
            max_dominator_set_sparse(sparse.csr_matrix((2, 3)), machine)

    def test_rejects_asymmetric(self, machine):
        A = sparse.csr_matrix(np.array([[0, 1], [0, 0]], dtype=bool))
        with pytest.raises(InvalidParameterError, match="symmetric"):
            max_dominator_set_sparse(A, machine)

    def test_round_cap(self, machine):
        A = random_graph(12, 0.3, 0)
        with pytest.raises(ConvergenceError):
            max_dominator_set_sparse(A, machine, max_rounds=0)


class TestToCsr:
    """The CSR-native cleanup (no LIL round-trip) must behave exactly
    like the old conversion: square/symmetric validation, diagonal
    dropped, canonical sorted structure."""

    def test_diagonal_dropped_in_csr(self):
        A = sparse.csr_matrix(
            np.array([[1, 1, 0], [1, 1, 1], [0, 1, 1]], dtype=bool)
        )
        B = _to_csr(A)
        assert sparse.isspmatrix_csr(B)
        assert B.diagonal().sum() == 0
        expected = A.toarray().copy()
        np.fill_diagonal(expected, False)
        np.testing.assert_array_equal(B.toarray(), expected)

    def test_structure_is_canonical(self):
        A = random_graph(20, 0.3, 1)
        np.fill_diagonal(A, True)
        B = _to_csr(sparse.csr_matrix(A))
        # sorted, in-range, duplicate-free — validated inside _to_csr;
        # spot-check the row ordering here
        for i in range(20):
            row = B.indices[B.indptr[i] : B.indptr[i + 1]]
            assert np.all(np.diff(row) > 0)

    def test_selections_unchanged_by_rewrite(self):
        """Same seeded machine ⇒ same selections whether or not the
        input carried a diagonal (cleanup is semantics-preserving)."""
        A = random_graph(25, 0.2, 4)
        with_diag = A.copy()
        np.fill_diagonal(with_diag, True)
        a = max_dominator_set_sparse(sparse.csr_matrix(A), PramMachine(seed=8))
        b = max_dominator_set_sparse(sparse.csr_matrix(with_diag), PramMachine(seed=8))
        np.testing.assert_array_equal(a, b)


class TestMaxUDomSparse:
    def test_explicit_stored_zeros_are_not_edges(self):
        """A stored False entry must behave exactly like an absent one
        (dense parity: the dense matrix reads it as no-edge)."""
        from repro.core.dominator import max_u_dominator_set

        rng = np.random.default_rng(3)
        dense_B = rng.random((10, 6)) < 0.3
        superset = (rng.random((10, 6)) < 0.7) | dense_B
        rows, cols = np.nonzero(superset)
        data = dense_B[rows, cols].astype(float)  # 0.0 at non-edges
        with_zeros = sparse.csr_matrix((data, (rows, cols)), shape=(10, 6))
        assert with_zeros.nnz > int(dense_B.sum())  # zeros really stored
        a = max_u_dominator_set(dense_B, PramMachine(seed=3))
        b = max_u_dominator_set_sparse(with_zeros, PramMachine(seed=3))
        np.testing.assert_array_equal(a, b)

    def test_matches_dense_selections(self):
        from repro.core.dominator import max_u_dominator_set

        for seed in range(5):
            rng = np.random.default_rng(seed)
            B = rng.random((20, 12)) < 0.3
            a = max_u_dominator_set(B, PramMachine(seed=31))
            b = max_u_dominator_set_sparse(sparse.csr_matrix(B), PramMachine(seed=31))
            np.testing.assert_array_equal(a, b)

    def test_isolated_u_nodes_always_selected(self, machine):
        B = np.zeros((4, 3), dtype=bool)
        assert max_u_dominator_set_sparse(B, machine).all()

    def test_candidates_mask_respected(self, machine):
        rng = np.random.default_rng(2)
        B = rng.random((15, 8)) < 0.4
        cand = rng.random(15) < 0.5
        sel = max_u_dominator_set_sparse(B, machine, candidates=cand)
        assert not np.any(sel & ~cand)

    def test_no_shared_v_neighbor(self, machine):
        """Selected U-nodes never share a V-neighbor (MIS of H')."""
        rng = np.random.default_rng(7)
        B = rng.random((18, 10)) < 0.3
        sel = max_u_dominator_set_sparse(B, machine)
        chosen = np.flatnonzero(sel)
        for a in chosen:
            for b in chosen:
                if a < b:
                    assert not np.any(B[a] & B[b])

    def test_bad_candidates_shape(self, machine):
        with pytest.raises(InvalidParameterError, match="candidates"):
            max_u_dominator_set_sparse(
                np.zeros((3, 2), dtype=bool), machine, candidates=np.ones(4, dtype=bool)
            )

    def test_round_cap(self, machine):
        rng = np.random.default_rng(3)
        B = rng.random((10, 6)) < 0.5
        with pytest.raises(ConvergenceError):
            max_u_dominator_set_sparse(B, machine, max_rounds=0)

    def test_work_scales_with_edges(self):
        """Charged work on a bounded-degree bipartite graph ≪ dense."""
        from repro.core.dominator import max_u_dominator_set

        rng = np.random.default_rng(0)
        nu, nv = 300, 200
        B = rng.random((nu, nv)) < (4.0 / nv)
        md = PramMachine(seed=1)
        max_u_dominator_set(B, md)
        ms = PramMachine(seed=1)
        max_u_dominator_set_sparse(sparse.csr_matrix(B), ms)
        assert ms.ledger.work < md.ledger.work / 10
