"""Lemma 3.1 remark: sparse dominator sets — same semantics, O(|E|) rounds."""

import numpy as np
import pytest
from scipy import sparse

from repro.core.dominator_sparse import max_dominator_set_sparse
from repro.errors import ConvergenceError, InvalidParameterError
from repro.pram.machine import PramMachine
from tests.core.test_dominator import assert_valid_maxdom, random_graph


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("p", [0.05, 0.2, 0.6])
    def test_random_graphs_valid(self, seed, p):
        A = random_graph(24, p, seed)
        sel = max_dominator_set_sparse(sparse.csr_matrix(A), PramMachine(seed=seed))
        assert_valid_maxdom(A, sel)

    def test_accepts_dense_input(self, machine):
        A = random_graph(15, 0.2, 0)
        sel = max_dominator_set_sparse(A, machine)
        assert_valid_maxdom(A, sel)

    def test_matches_dense_variant_distribution(self):
        """Same priorities (same machine seed) ⇒ identical selection to
        the dense implementation round-for-round."""
        from repro.core.dominator import max_dominator_set

        A = random_graph(30, 0.15, 3)
        dense = max_dominator_set(A, PramMachine(seed=42))
        sparse_sel = max_dominator_set_sparse(sparse.csr_matrix(A), PramMachine(seed=42))
        assert np.array_equal(dense, sparse_sel)

    def test_empty_graph_selects_all(self, machine):
        A = sparse.csr_matrix((5, 5), dtype=bool)
        assert max_dominator_set_sparse(A, machine).all()

    def test_complete_graph_selects_one(self, machine):
        A = ~np.eye(8, dtype=bool)
        assert max_dominator_set_sparse(A, machine).sum() == 1

    def test_zero_nodes(self, machine):
        assert max_dominator_set_sparse(sparse.csr_matrix((0, 0)), machine).size == 0

    def test_self_loops_removed(self, machine):
        A = sparse.csr_matrix(np.eye(4, dtype=bool))
        assert max_dominator_set_sparse(A, machine).all()


class TestCosts:
    def test_work_scales_with_edges_not_n_squared(self):
        """On a bounded-degree graph the sparse variant's per-round work
        is O(|E|) ≪ n²: compare charged work against the dense one."""
        from repro.core.dominator import max_dominator_set

        n = 256
        A = random_graph(n, 6.0 / n, 0)  # ~6n/2 edges
        md = PramMachine(seed=1)
        max_dominator_set(A, md)
        ms = PramMachine(seed=1)
        max_dominator_set_sparse(sparse.csr_matrix(A), ms)
        assert ms.ledger.work < md.ledger.work / 10

    def test_rounds_counted(self, machine):
        A = random_graph(40, 0.1, 2)
        max_dominator_set_sparse(A, machine)
        assert machine.ledger.rounds["maxdom_sparse"] >= 1


class TestValidation:
    def test_rejects_nonsquare(self, machine):
        with pytest.raises(InvalidParameterError, match="square"):
            max_dominator_set_sparse(sparse.csr_matrix((2, 3)), machine)

    def test_rejects_asymmetric(self, machine):
        A = sparse.csr_matrix(np.array([[0, 1], [0, 0]], dtype=bool))
        with pytest.raises(InvalidParameterError, match="symmetric"):
            max_dominator_set_sparse(A, machine)

    def test_round_cap(self, machine):
        A = random_graph(12, 0.3, 0)
        with pytest.raises(ConvergenceError):
            max_dominator_set_sparse(A, machine, max_rounds=0)
