"""Solution dataclasses: coercion and field contracts."""

import numpy as np

from repro.core.result import ClusteringSolution, FacilityLocationSolution
from repro.pram.ledger import CostSnapshot


def test_fl_solution_coerces_opened():
    sol = FacilityLocationSolution(
        opened=[2, 0], cost=1.0, facility_cost=0.4, connection_cost=0.6
    )
    assert sol.opened.dtype == np.dtype(int)
    assert sol.opened.tolist() == [2, 0]


def test_fl_solution_defaults():
    sol = FacilityLocationSolution(opened=[0], cost=1.0, facility_cost=1.0, connection_cost=0.0)
    assert sol.alpha is None and sol.rounds == {} and sol.extra == {}
    assert sol.model_costs is None


def test_clustering_solution_coerces_centers():
    sol = ClusteringSolution(centers=(1, 2), cost=0.0, objective="kmedian")
    assert sol.centers.tolist() == [1, 2]


def test_solutions_carry_snapshots():
    snap = CostSnapshot(work=10, depth=2, cache=1, calls=3)
    sol = ClusteringSolution(centers=[0], cost=0.0, objective="kcenter", model_costs=snap)
    assert sol.model_costs.work == 10
