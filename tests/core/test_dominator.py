"""§3 dominator sets: independence in G²/H', maximality, rounds, costs.

Independence and maximality are the defining properties (MIS of the
square graph); they're checked exactly on fixed and random graphs,
including the relay-through-removed-nodes subtlety.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dominator import (
    expected_round_bound,
    max_dominator_set,
    max_u_dominator_set,
)
from repro.errors import ConvergenceError, InvalidParameterError
from repro.pram.machine import PramMachine


def random_graph(n, p, seed):
    rng = np.random.default_rng(seed)
    A = np.triu(rng.random((n, n)) < p, 1)
    return A | A.T


def square_graph(A):
    return (A | (A.astype(int) @ A.astype(int) > 0)) & ~np.eye(len(A), dtype=bool)


def assert_valid_maxdom(A, sel):
    """Independent in G² and maximal (every non-member conflicts)."""
    sq = square_graph(A)
    idx = np.flatnonzero(sel)
    for a in idx:
        for b in idx:
            if a != b:
                assert not sq[a, b], f"{a},{b} within two hops"
    for v in np.flatnonzero(~sel):
        assert sq[v][sel].any(), f"{v} could still be added"


def assert_valid_maxudom(B, sel, candidates=None):
    """No two selected share a V-neighbor; maximal among candidates."""
    share = (B.astype(int) @ B.astype(int).T) > 0
    idx = np.flatnonzero(sel)
    for a in idx:
        for b in idx:
            if a != b:
                assert not share[a, b], f"{a},{b} share a V-neighbor"
    cand = np.ones(B.shape[0], dtype=bool) if candidates is None else candidates
    for u in np.flatnonzero(cand & ~sel):
        assert share[u][sel].any(), f"{u} could still be added"


class TestMaxDom:
    def test_empty_graph_selects_all(self, machine):
        A = np.zeros((5, 5), dtype=bool)
        assert max_dominator_set(A, machine).all()

    def test_complete_graph_selects_one(self, machine):
        A = ~np.eye(6, dtype=bool)
        assert max_dominator_set(A, machine).sum() == 1

    def test_path_graph(self, machine):
        A = np.zeros((7, 7), dtype=bool)
        for i in range(6):
            A[i, i + 1] = A[i + 1, i] = True
        sel = max_dominator_set(A, machine)
        assert_valid_maxdom(A, sel)

    def test_star_graph_center_or_one_leaf(self, machine):
        A = np.zeros((8, 8), dtype=bool)
        A[0, 1:] = A[1:, 0] = True
        sel = max_dominator_set(A, machine)
        assert sel.sum() == 1  # all nodes pairwise within two hops

    def test_relay_through_nonadjacent_component(self, machine):
        # Two hubs joined by a middle relay; hubs are two hops apart so
        # only one may win even after the relay's component shrinks.
        A = np.zeros((3, 3), dtype=bool)
        A[0, 1] = A[1, 0] = True
        A[1, 2] = A[2, 1] = True
        sel = max_dominator_set(A, machine)
        assert sel.sum() == 1

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("p", [0.05, 0.2, 0.6])
    def test_random_graphs_valid(self, seed, p):
        A = random_graph(24, p, seed)
        sel = max_dominator_set(A, PramMachine(seed=seed))
        assert_valid_maxdom(A, sel)

    def test_self_loops_ignored(self, machine):
        A = np.eye(4, dtype=bool)
        assert max_dominator_set(A, machine).all()

    def test_zero_nodes(self, machine):
        assert max_dominator_set(np.zeros((0, 0), dtype=bool), machine).size == 0

    def test_rejects_asymmetric(self, machine):
        A = np.zeros((3, 3), dtype=bool)
        A[0, 1] = True
        with pytest.raises(InvalidParameterError, match="symmetric"):
            max_dominator_set(A, machine)

    def test_rejects_nonsquare(self, machine):
        with pytest.raises(InvalidParameterError, match="square"):
            max_dominator_set(np.zeros((2, 3), dtype=bool), machine)

    def test_round_cap_raises(self):
        A = random_graph(20, 0.2, 0)
        with pytest.raises(ConvergenceError):
            max_dominator_set(A, PramMachine(seed=0), max_rounds=0)

    def test_rounds_within_expected_envelope(self):
        n = 48
        A = random_graph(n, 0.1, 3)
        m = PramMachine(seed=3)
        max_dominator_set(A, m)
        assert m.ledger.rounds["maxdom"] <= expected_round_bound(n)

    def test_work_charged_quadratic_per_round(self):
        n = 32
        A = random_graph(n, 0.2, 1)
        m = PramMachine(seed=1)
        max_dominator_set(A, m)
        rounds = m.ledger.rounds["maxdom"]
        # each round: O(1) basic ops on n² elements
        assert m.ledger.work <= 30 * rounds * n * n

    def test_deterministic_under_seed(self):
        A = random_graph(30, 0.15, 7)
        a = max_dominator_set(A, PramMachine(seed=42))
        b = max_dominator_set(A, PramMachine(seed=42))
        assert np.array_equal(a, b)


class TestMaxUDom:
    def test_disjoint_stars_all_selected(self, machine):
        B = np.zeros((3, 6), dtype=bool)
        B[0, :2] = B[1, 2:4] = B[2, 4:] = True
        assert max_u_dominator_set(B, machine).all()

    def test_shared_neighbor_one_wins(self, machine):
        B = np.ones((4, 1), dtype=bool)  # all share the single V node
        assert max_u_dominator_set(B, machine).sum() == 1

    def test_isolated_u_nodes_selected(self, machine):
        B = np.zeros((3, 2), dtype=bool)
        B[0, 0] = B[1, 0] = True
        sel = max_u_dominator_set(B, machine)
        assert sel[2]  # no V-neighbors -> no conflicts
        assert sel[:2].sum() == 1

    @pytest.mark.parametrize("seed", range(6))
    def test_random_bipartite_valid(self, seed):
        rng = np.random.default_rng(seed)
        B = rng.random((15, 10)) < 0.25
        sel = max_u_dominator_set(B, PramMachine(seed=seed))
        assert_valid_maxudom(B, sel)

    @pytest.mark.parametrize("seed", range(4))
    def test_candidate_restriction(self, seed):
        rng = np.random.default_rng(seed)
        B = rng.random((12, 8)) < 0.3
        cand = rng.random(12) < 0.6
        sel = max_u_dominator_set(B, PramMachine(seed=seed), candidates=cand)
        assert not sel[~cand].any()
        assert_valid_maxudom(B, sel, candidates=cand)

    def test_no_candidates_returns_empty(self, machine):
        B = np.ones((3, 3), dtype=bool)
        sel = max_u_dominator_set(B, machine, candidates=np.zeros(3, dtype=bool))
        assert not sel.any()

    def test_zero_u_nodes(self, machine):
        assert max_u_dominator_set(np.zeros((0, 4), dtype=bool), machine).size == 0

    def test_bad_candidates_shape(self, machine):
        with pytest.raises(InvalidParameterError, match="candidates"):
            max_u_dominator_set(np.ones((3, 2), dtype=bool), machine, candidates=np.ones(4, dtype=bool))

    def test_round_cap_raises(self, machine):
        with pytest.raises(ConvergenceError):
            max_u_dominator_set(np.ones((4, 2), dtype=bool), machine, max_rounds=0)


@settings(max_examples=30, deadline=None)
@given(st.integers(1, 18), st.floats(0.0, 0.9), st.integers(0, 10_000))
def test_property_maxdom_always_valid(n, p, seed):
    A = random_graph(n, p, seed)
    sel = max_dominator_set(A, PramMachine(seed=seed))
    assert_valid_maxdom(A, sel)


@settings(max_examples=30, deadline=None)
@given(st.integers(1, 12), st.integers(1, 10), st.floats(0.0, 0.9), st.integers(0, 10_000))
def test_property_maxudom_always_valid(nu, nv, p, seed):
    rng = np.random.default_rng(seed)
    B = rng.random((nu, nv)) < p
    sel = max_u_dominator_set(B, PramMachine(seed=seed))
    assert_valid_maxudom(B, sel)
