"""Lagrangian k-median on the §5 LMP primal–dual."""

import numpy as np
import pytest

from repro.baselines.brute_force import brute_force_kmedian
from repro.core.kmedian_lagrangian import parallel_kmedian_lagrangian
from repro.errors import InvalidParameterError
from repro.metrics.generators import clustered_clustering, euclidean_clustering


FIXTURES = ["small_clustering", "blob_clustering"]


@pytest.mark.parametrize("fixture", FIXTURES)
def test_respects_budget(fixture, request):
    inst = request.getfixturevalue(fixture)
    sol = parallel_kmedian_lagrangian(inst, epsilon=0.1, seed=0)
    assert 1 <= sol.centers.size <= inst.k


@pytest.mark.parametrize("fixture", FIXTURES)
def test_quality_within_jv_envelope(fixture, request):
    """The JV pipeline's factor is 6 (with convex combination, 2·LMP·3);
    measured solutions land far inside it on these workloads."""
    inst = request.getfixturevalue(fixture)
    opt, _ = brute_force_kmedian(inst, max_subsets=200_000)
    sol = parallel_kmedian_lagrangian(inst, epsilon=0.1, seed=0)
    assert sol.cost <= 6.0 * opt * (1 + 1e-9)


def test_blobs_recover_structure():
    inst = clustered_clustering(40, 4, spread=0.02, seed=5)
    opt, _ = brute_force_kmedian(inst, max_subsets=200_000)
    sol = parallel_kmedian_lagrangian(inst, epsilon=0.1, seed=0)
    assert sol.cost <= 2.0 * opt


def test_binary_search_brackets():
    inst = euclidean_clustering(30, 3, seed=9)
    sol = parallel_kmedian_lagrangian(inst, epsilon=0.1, seed=0)
    lo = sol.extra["bracket_low"]
    assert lo is not None and lo[1] <= inst.k
    hi = sol.extra["bracket_high"]
    if hi is not None:
        assert hi[1] > inst.k
        assert hi[0] <= lo[0]  # more facilities at the cheaper price


def test_probe_trace_recorded():
    inst = euclidean_clustering(25, 3, seed=2)
    sol = parallel_kmedian_lagrangian(inst, epsilon=0.1, seed=0, max_probes=12)
    assert 1 <= len(sol.extra["probes"]) <= 12
    assert all("lambda" in p and "n_open" in p for p in sol.extra["probes"])


def test_k_equals_n_trivial():
    inst = euclidean_clustering(8, 8, seed=0)
    sol = parallel_kmedian_lagrangian(inst, seed=0)
    assert sol.cost == 0.0


def test_deterministic(small_clustering):
    a = parallel_kmedian_lagrangian(small_clustering, epsilon=0.1, seed=4)
    b = parallel_kmedian_lagrangian(small_clustering, epsilon=0.1, seed=4)
    assert np.array_equal(a.centers, b.centers)


def test_cost_matches_instance(small_clustering):
    sol = parallel_kmedian_lagrangian(small_clustering, epsilon=0.1, seed=0)
    assert sol.cost == pytest.approx(small_clustering.kmedian_cost(sol.centers))


def test_max_probes_validated(small_clustering):
    with pytest.raises(InvalidParameterError):
        parallel_kmedian_lagrangian(small_clustering, max_probes=0)
