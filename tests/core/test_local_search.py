"""§7 parallel local search: 5+ε / 81+ε, swap semantics, rounds."""

import numpy as np
import pytest

from repro.baselines.brute_force import brute_force_kmeans, brute_force_kmedian
from repro.baselines.local_search_seq import local_search_kmedian_seq
from repro.core.local_search import parallel_kmeans, parallel_kmedian, parallel_local_search
from repro.errors import ConvergenceError, InvalidParameterError
from repro.metrics.generators import euclidean_clustering
from repro.metrics.instance import ClusteringInstance
from repro.metrics.space import MetricSpace
from repro.pram.machine import PramMachine

FIXTURES = ["small_clustering", "blob_clustering"]


class TestApproximation:
    @pytest.mark.parametrize("fixture", FIXTURES)
    @pytest.mark.parametrize("seed", [0, 1])
    def test_kmedian_within_5_eps(self, fixture, seed, request):
        inst = request.getfixturevalue(fixture)
        opt, _ = brute_force_kmedian(inst, max_subsets=200_000)
        eps = 0.3
        sol = parallel_kmedian(inst, epsilon=eps, seed=seed)
        assert sol.cost <= (5 + eps) * opt * (1 + 1e-9)

    @pytest.mark.parametrize("fixture", FIXTURES)
    def test_kmeans_within_81_eps(self, fixture, request):
        inst = request.getfixturevalue(fixture)
        opt, _ = brute_force_kmeans(inst, max_subsets=200_000)
        sol = parallel_kmeans(inst, epsilon=0.3, seed=0)
        assert sol.cost <= (81 + 0.3) * opt * (1 + 1e-9)

    def test_blobs_near_optimal(self, blob_clustering):
        opt, _ = brute_force_kmedian(blob_clustering, max_subsets=200_000)
        sol = parallel_kmedian(blob_clustering, epsilon=0.05, seed=0)
        assert sol.cost <= 1.6 * opt

    def test_comparable_to_sequential(self, small_clustering):
        par = parallel_kmedian(small_clustering, epsilon=0.2, seed=0)
        seq = local_search_kmedian_seq(small_clustering, epsilon=0.2)
        # Same threshold rule ⇒ same quality class (not identical paths).
        assert par.cost <= 1.5 * seq.cost + 1e-9
        assert seq.cost <= 1.5 * par.cost + 1e-9


class TestSwapSemantics:
    def test_swaps_strictly_improve_by_threshold(self, small_clustering):
        eps = 0.3
        sol = parallel_kmedian(small_clustering, epsilon=eps, seed=2)
        beta = eps / (1 + eps)
        k = small_clustering.k
        costs = [sol.extra["initial_cost"]] + [c for _, _, c in sol.extra["swaps"]]
        for prev, new in zip(costs, costs[1:]):
            assert new < (1 - beta / k) * prev * (1 + 1e-12)

    def test_final_state_is_local_optimum(self, small_clustering):
        """No remaining swap beats the threshold (verified exhaustively)."""
        eps = 0.3
        sol = parallel_kmedian(small_clustering, epsilon=eps, seed=0)
        beta = eps / (1 + eps)
        D, k = small_clustering.D, small_clustering.k
        centers = sol.centers
        cost = sol.cost
        out = np.setdiff1d(np.arange(small_clustering.n), centers)
        for a in range(centers.size):
            trial_centers = np.delete(centers, a)
            for c in out:
                tc = np.concatenate([trial_centers, [c]])
                new = D[:, tc].min(axis=1).sum()
                assert new >= (1 - beta / k) * cost * (1 - 1e-12)

    def test_warm_start_from_kcenter(self, small_clustering):
        sol = parallel_kmedian(small_clustering, epsilon=0.3, seed=0)
        assert sol.extra["initial_cost"] >= sol.cost * (1 - 1e-12)

    def test_explicit_initial_centers(self, small_clustering):
        init = np.array([0, 1, 2])
        sol = parallel_kmedian(small_clustering, epsilon=0.3, seed=0, initial=init)
        assert sol.cost <= small_clustering.kmedian_cost(init) * (1 + 1e-12)

    def test_invalid_initial_rejected(self, small_clustering):
        with pytest.raises(InvalidParameterError, match="initial"):
            parallel_kmedian(small_clustering, initial=[99])


class TestStructure:
    def test_budget_respected(self, small_clustering):
        sol = parallel_kmedian(small_clustering, seed=0)
        assert sol.centers.size <= small_clustering.k

    def test_cost_matches_instance(self, small_clustering):
        sol = parallel_kmedian(small_clustering, seed=0)
        assert sol.cost == pytest.approx(small_clustering.kmedian_cost(sol.centers))

    def test_kmeans_cost_matches_instance(self, small_clustering):
        sol = parallel_kmeans(small_clustering, seed=0)
        assert sol.cost == pytest.approx(small_clustering.kmeans_cost(sol.centers))

    def test_deterministic_under_seed(self, small_clustering):
        a = parallel_kmedian(small_clustering, seed=6)
        b = parallel_kmedian(small_clustering, seed=6)
        assert np.array_equal(a.centers, b.centers)

    def test_objective_validation(self, small_clustering):
        with pytest.raises(InvalidParameterError, match="objective"):
            parallel_local_search(small_clustering, "kmax")

    def test_epsilon_validation(self, small_clustering):
        with pytest.raises(InvalidParameterError):
            parallel_kmedian(small_clustering, epsilon=1.0)

    def test_round_cap_raises(self, small_clustering):
        with pytest.raises(ConvergenceError):
            parallel_kmedian(small_clustering, epsilon=0.05, seed=0, max_rounds=1)

    def test_rounds_recorded(self, small_clustering):
        sol = parallel_kmedian(small_clustering, seed=0)
        assert sol.rounds["local_search"] >= 1
        assert sol.rounds["local_search"] == len(sol.extra["swaps"]) + 1

    def test_machine_shared_with_warm_start(self, small_clustering):
        m = PramMachine(seed=0)
        parallel_kmedian(small_clustering, machine=m)
        # k-center warm start charged on the same ledger
        assert m.ledger.rounds.get("kcenter_probe", 0) >= 1


class TestEdgeCases:
    def test_k_equals_n(self):
        inst = euclidean_clustering(7, 7, seed=0)
        sol = parallel_kmedian(inst, seed=0)
        assert sol.cost == pytest.approx(0.0)

    def test_k_equals_1(self):
        inst = euclidean_clustering(15, 1, seed=0)
        opt, _ = brute_force_kmedian(inst)
        sol = parallel_kmedian(inst, epsilon=0.2, seed=0)
        assert sol.cost <= 5.2 * opt * (1 + 1e-9)

    def test_duplicate_points(self):
        pts = np.vstack([np.zeros((4, 1)), np.ones((4, 1)), np.full((4, 1), 5.0)])
        inst = ClusteringInstance(MetricSpace.from_points(pts), 3)
        sol = parallel_kmedian(inst, seed=0)
        assert sol.cost == pytest.approx(0.0)
