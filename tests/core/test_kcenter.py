"""§6.1 parallel k-center: 2-approx, threshold ≤ opt, probe counts."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.brute_force import brute_force_kcenter
from repro.baselines.hochbaum_shmoys import hochbaum_shmoys_kcenter
from repro.core.kcenter import parallel_kcenter
from repro.metrics.generators import euclidean_clustering
from repro.metrics.instance import ClusteringInstance
from repro.metrics.space import MetricSpace
from repro.pram.machine import PramMachine


FIXTURES = ["small_clustering", "blob_clustering"]


class TestApproximation:
    @pytest.mark.parametrize("fixture", FIXTURES)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_2_approx(self, fixture, seed, request):
        inst = request.getfixturevalue(fixture)
        opt, _ = brute_force_kcenter(inst, max_subsets=200_000)
        sol = parallel_kcenter(inst, seed=seed)
        assert sol.cost <= 2 * opt * (1 + 1e-9)

    @pytest.mark.parametrize("fixture", FIXTURES)
    def test_threshold_at_most_opt(self, fixture, request):
        """The randomized-probe binary search still lands at t ≤ opt
        (every t ≥ opt passes for any maximal dominator set)."""
        inst = request.getfixturevalue(fixture)
        opt, _ = brute_force_kcenter(inst, max_subsets=200_000)
        sol = parallel_kcenter(inst, seed=0)
        assert sol.extra["threshold"] <= opt + 1e-9

    def test_matches_sequential_quality_class(self, small_clustering):
        par = parallel_kcenter(small_clustering, seed=0)
        seq = hochbaum_shmoys_kcenter(small_clustering)
        opt, _ = brute_force_kcenter(small_clustering, max_subsets=200_000)
        assert par.cost <= 2 * opt * (1 + 1e-9)
        assert seq.radius <= 2 * opt * (1 + 1e-9)


class TestStructure:
    def test_respects_k(self, small_clustering):
        sol = parallel_kcenter(small_clustering, seed=0)
        assert sol.centers.size <= small_clustering.k

    def test_probe_count_logarithmic(self, small_clustering):
        sol = parallel_kcenter(small_clustering, seed=0)
        p = sol.extra["n_thresholds"]
        assert sol.extra["probes"] <= int(np.ceil(np.log2(p))) + 2

    def test_cost_matches_instance(self, small_clustering):
        sol = parallel_kcenter(small_clustering, seed=0)
        assert sol.cost == pytest.approx(small_clustering.kcenter_cost(sol.centers))

    def test_deterministic_under_seed(self, small_clustering):
        a = parallel_kcenter(small_clustering, seed=9)
        b = parallel_kcenter(small_clustering, seed=9)
        assert np.array_equal(a.centers, b.centers)

    def test_model_costs_recorded(self, small_clustering):
        sol = parallel_kcenter(small_clustering, seed=0)
        assert sol.model_costs.work > 0
        assert sol.model_costs.depth < sol.model_costs.work / 10

    def test_explicit_machine_accumulates(self, small_clustering):
        m = PramMachine(seed=0)
        parallel_kcenter(small_clustering, machine=m)
        assert m.ledger.rounds["kcenter_probe"] >= 1
        assert m.ledger.rounds["maxdom"] >= 1

    def test_thresholds_charged_as_single_sorted_unique(self, small_clustering):
        """Ledger-honesty regression: the threshold sequence is one
        sorted-unique primitive — not a charged machine sort followed by
        an uncharged ``np.unique`` re-sort."""
        m = PramMachine(seed=0)
        parallel_kcenter(small_clustering, machine=m)
        assert m.ledger.calls_by_op["sorted_unique"] == 1
        assert "sort" not in m.ledger.calls_by_op


class TestEdgeCases:
    def test_k_equals_n(self):
        inst = euclidean_clustering(8, 8, seed=0)
        sol = parallel_kcenter(inst, seed=0)
        assert sol.cost == pytest.approx(0.0)

    def test_k_equals_1(self):
        inst = euclidean_clustering(12, 1, seed=0)
        opt, _ = brute_force_kcenter(inst)
        sol = parallel_kcenter(inst, seed=0)
        assert sol.cost <= 2 * opt * (1 + 1e-9)

    def test_duplicate_points(self):
        pts = np.vstack([np.zeros((5, 1)), np.ones((5, 1))])
        inst = ClusteringInstance(MetricSpace.from_points(pts), 2)
        sol = parallel_kcenter(inst, seed=0)
        assert sol.cost == pytest.approx(0.0)

    def test_two_points(self):
        inst = ClusteringInstance(MetricSpace.from_points(np.array([[0.0], [1.0]])), 1)
        sol = parallel_kcenter(inst, seed=0)
        assert sol.cost == pytest.approx(1.0)


@settings(max_examples=20, deadline=None)
@given(st.integers(4, 16), st.integers(1, 3), st.integers(0, 10_000))
def test_property_2_approx_random(n, k, seed):
    inst = euclidean_clustering(n, k, seed=seed)
    opt, _ = brute_force_kcenter(inst)
    sol = parallel_kcenter(inst, seed=seed)
    assert sol.cost <= 2 * opt * (1 + 1e-9)
    assert sol.centers.size <= k
