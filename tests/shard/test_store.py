"""Out-of-core shard store: layout, validation, and the byte-identity
parity suite — a pipeline run whose blocks live on disk must produce
bit-for-bit the same centers, costs, and certificates as the resident
run it spilled from.
"""

from __future__ import annotations

import json
import os
import pickle

import numpy as np
import pytest

from repro.errors import InvalidInstanceError, InvalidParameterError
from repro.faults import NO_RETRY, FaultPlan
from repro.pram.backends import ProcessBackend, ThreadBackend
from repro.pram.machine import PramMachine
from repro.shard import (
    STORE_VERSION,
    ShardStore,
    StoredShard,
    build_shard_coresets,
    make_partition,
    partition_to_store,
    shard_and_solve,
    supervised_shard_coresets,
)

SEED = 17
K = 4
SHARDS = 4

_rng = np.random.default_rng(3)
POINTS = _rng.normal(size=(900, 2)) + _rng.integers(0, K, size=(900, 1)) * 4.0
LABELS = make_partition(POINTS, SHARDS, "locality", seed=SEED)
WEIGHTS = _rng.uniform(0.5, 2.0, POINTS.shape[0])

SOLVE_KW = dict(
    shards=SHARDS, coreset_size=32, neighbors=16, seed=SEED, solver="kmedian"
)


@pytest.fixture
def store(tmp_path):
    return ShardStore.create(str(tmp_path / "st"), POINTS, LABELS, SHARDS)


@pytest.fixture
def wstore(tmp_path):
    return ShardStore.create(
        str(tmp_path / "wst"), POINTS, LABELS, SHARDS, weights=WEIGHTS
    )


# -- layout and round-trip --------------------------------------------------


class TestCreateOpen:
    def test_blocks_match_resident_slices(self, store):
        assert store.n == POINTS.shape[0] and store.dim == 2
        assert not store.has_weights
        for s, pts, w, origin in store.iter_shards():
            idx = np.flatnonzero(LABELS == s)
            np.testing.assert_array_equal(np.asarray(pts), POINTS[idx])
            np.testing.assert_array_equal(np.asarray(origin), idx)
            assert w is None
            assert store.sizes[s] == idx.size
        assert store.sizes.sum() == store.n

    def test_weighted_blocks_and_totals(self, wstore):
        assert wstore.has_weights
        for s, _, w, origin in wstore.iter_shards():
            np.testing.assert_array_equal(np.asarray(w), WEIGHTS[np.asarray(origin)])
        assert wstore.total_weight == pytest.approx(
            sum(wstore.weight_totals), rel=0, abs=0
        )

    def test_reopen_round_trip(self, store):
        re = ShardStore.open(store.directory)
        assert re.shards == store.shards and re.n == store.n
        np.testing.assert_array_equal(re.sizes, store.sizes)
        a = store.load_shard(1)[0]
        b = re.load_shard(1)[0]
        np.testing.assert_array_equal(np.asarray(a), np.asarray(b))

    def test_loads_are_readonly_memmaps(self, store):
        pts, _, origin = store.load_shard(0)
        assert isinstance(pts, np.memmap) and isinstance(origin, np.memmap)
        with pytest.raises(ValueError):
            pts[0, 0] = 99.0

    def test_eager_load_mode(self, store):
        pts, _, _ = store.load_shard(0, mmap_mode=None)
        assert isinstance(pts, np.ndarray) and not isinstance(pts, np.memmap)

    def test_stored_shard_ref_is_picklable(self, store):
        ref = store.shard_ref(2)
        assert isinstance(ref, StoredShard)
        clone = pickle.loads(pickle.dumps(ref))
        assert clone == ref
        pts, _, origin = clone.load()
        np.testing.assert_array_equal(
            np.asarray(pts), POINTS[np.flatnonzero(LABELS == 2)]
        )
        assert pts.shape == (ref.size, ref.dim) and origin.shape == (ref.size,)

    def test_partition_to_store_matches_manual_create(self, tmp_path):
        st = partition_to_store(
            POINTS, SHARDS, str(tmp_path / "auto"), partition="locality", seed=SEED
        )
        for s in range(SHARDS):
            np.testing.assert_array_equal(
                np.asarray(st.load_shard(s)[0]),
                POINTS[np.flatnonzero(LABELS == s)],
            )

    def test_partition_to_store_charges_machine(self, tmp_path):
        m = PramMachine(seed=0)
        partition_to_store(
            POINTS, SHARDS, str(tmp_path / "ch"), seed=SEED, machine=m
        )
        assert m.ledger.work >= POINTS.shape[0]
        assert m.ledger.rounds["shard_partition"] == 1


class TestValidation:
    def test_create_rejects_bad_shapes(self, tmp_path):
        d = str(tmp_path / "bad")
        with pytest.raises(InvalidParameterError, match="non-empty"):
            ShardStore.create(d, np.empty((0, 2)), np.array([]), 1)
        with pytest.raises(InvalidParameterError, match="labels"):
            ShardStore.create(d, POINTS, LABELS[:-1], SHARDS)
        with pytest.raises(InvalidParameterError, match="shards must be >= 1"):
            ShardStore.create(d, POINTS, LABELS, 0)
        with pytest.raises(InvalidParameterError, match=r"lie in \[0"):
            ShardStore.create(d, POINTS, LABELS, 2)
        with pytest.raises(InvalidParameterError, match="strictly positive"):
            ShardStore.create(d, POINTS, LABELS, SHARDS, weights=np.zeros(POINTS.shape[0]))

    def test_create_rejects_empty_shard(self, tmp_path):
        labels = np.zeros(POINTS.shape[0], dtype=np.intp)
        with pytest.raises(InvalidParameterError, match="shard 1 is empty"):
            ShardStore.create(str(tmp_path / "e"), POINTS, labels, 2)

    def test_open_rejects_non_store(self, tmp_path):
        with pytest.raises(InvalidInstanceError, match="not a shard store"):
            ShardStore.open(str(tmp_path))

    def test_open_rejects_wrong_format_and_newer_version(self, store, tmp_path):
        d = str(tmp_path / "fmt")
        os.makedirs(d)
        with open(os.path.join(d, "manifest.json"), "w") as fh:
            json.dump({"format": "something-else"}, fh)
        with pytest.raises(InvalidInstanceError, match="format"):
            ShardStore.open(d)

        mpath = os.path.join(store.directory, "manifest.json")
        with open(mpath) as fh:
            manifest = json.load(fh)
        manifest["version"] = STORE_VERSION + 1
        with open(mpath, "w") as fh:
            json.dump(manifest, fh)
        with pytest.raises(InvalidInstanceError, match="newer than supported"):
            ShardStore.open(store.directory)

    def test_open_rejects_missing_block(self, store):
        os.remove(os.path.join(store.directory, "shard_00002.origin.npy"))
        with pytest.raises(InvalidInstanceError, match="missing block"):
            ShardStore.open(store.directory)

    def test_shard_index_bounds(self, store):
        with pytest.raises(InvalidParameterError, match="shard index"):
            store.load_shard(SHARDS)
        with pytest.raises(InvalidParameterError, match="shard index"):
            store.shard_ref(-1)


# -- coreset parity ---------------------------------------------------------


class TestCoresetParity:
    def test_store_coresets_byte_identical_to_resident(self, store):
        res = build_shard_coresets(POINTS, LABELS, SHARDS, 32, seed=SEED)
        via = build_shard_coresets(store, size=32, seed=SEED)
        assert len(via) == len(res)
        for a, b in zip(via, res):
            np.testing.assert_array_equal(a.points, b.points)
            np.testing.assert_array_equal(a.weights, b.weights)
            np.testing.assert_array_equal(a.origin, b.origin)

    def test_weighted_store_coresets_byte_identical(self, wstore):
        res = build_shard_coresets(
            POINTS, LABELS, SHARDS, 32, weights=WEIGHTS, seed=SEED
        )
        via = build_shard_coresets(wstore, size=32, seed=SEED)
        for a, b in zip(via, res):
            np.testing.assert_array_equal(a.points, b.points)
            np.testing.assert_array_equal(a.weights, b.weights)

    @pytest.mark.parametrize("backend_name", ["thread", "process"])
    def test_store_coresets_parallel_backends(self, store, backend_name):
        res = build_shard_coresets(POINTS, LABELS, SHARDS, 32, seed=SEED)
        backend = (
            ThreadBackend(2, grain=1)
            if backend_name == "thread"
            else ProcessBackend(2, grain=1)
        )
        with backend as b:
            m = PramMachine(backend=b, seed=0)
            via = build_shard_coresets(store, size=32, seed=SEED, machine=m)
        for a, b_ in zip(via, res):
            np.testing.assert_array_equal(a.points, b_.points)
            np.testing.assert_array_equal(a.weights, b_.weights)

    def test_store_rejects_conflicting_resident_args(self, store):
        with pytest.raises(InvalidParameterError, match="ShardStore"):
            build_shard_coresets(store, LABELS, SHARDS, 32, seed=SEED)
        with pytest.raises(InvalidParameterError, match="ShardStore"):
            supervised_shard_coresets(store, LABELS, SHARDS, 32, seed=SEED)

    def test_supervised_store_coresets_match_unsupervised(self, store):
        res = build_shard_coresets(store, size=32, seed=SEED)
        with ThreadBackend(2, grain=1) as b:
            m = PramMachine(backend=b, seed=0)
            via, failures = supervised_shard_coresets(store, size=32, seed=SEED, machine=m)
        assert failures == []
        for a, b_ in zip(via, res):
            np.testing.assert_array_equal(a.points, b_.points)


# -- driver parity ----------------------------------------------------------


def _assert_same_solution(a, b):
    np.testing.assert_array_equal(a.centers, b.centers)
    np.testing.assert_array_equal(a.merged_centers, b.merged_centers)
    assert a.cost == b.cost
    assert a.true_cost == b.true_cost
    assert a.movement == b.movement
    np.testing.assert_array_equal(a.coreset_sizes, b.coreset_sizes)


class TestDriverParity:
    def test_store_source_byte_identical_to_resident(self, tmp_path):
        resident = shard_and_solve(POINTS, K, **SOLVE_KW)
        st = partition_to_store(
            POINTS, SHARDS, str(tmp_path / "drv"), partition="locality", seed=SEED
        )
        kw = {k: v for k, v in SOLVE_KW.items() if k != "shards"}
        via = shard_and_solve(st, K, **kw)
        _assert_same_solution(via, resident)
        assert via.extra["store"] and not resident.extra["store"]

    def test_spill_dir_byte_identical_to_resident(self, tmp_path):
        resident = shard_and_solve(POINTS, K, **SOLVE_KW)
        via = shard_and_solve(
            POINTS, K, spill_dir=str(tmp_path / "spill"), **SOLVE_KW
        )
        _assert_same_solution(via, resident)
        assert via.extra["store"]
        # the spill is a valid, reopenable store
        re = ShardStore.open(str(tmp_path / "spill"))
        assert re.n == POINTS.shape[0] and re.shards == SHARDS

    @pytest.mark.parametrize("backend_name", ["thread", "process"])
    def test_store_source_parallel_backends(self, tmp_path, backend_name):
        resident = shard_and_solve(POINTS, K, **SOLVE_KW)
        st = partition_to_store(
            POINTS, SHARDS, str(tmp_path / "bk"), partition="locality", seed=SEED
        )
        backend = (
            ThreadBackend(3, grain=1)
            if backend_name == "thread"
            else ProcessBackend(3, grain=1)
        )
        kw = {k: v for k, v in SOLVE_KW.items() if k != "shards"}
        with backend as b:
            m = PramMachine(backend=b, seed=SEED)
            via = shard_and_solve(st, K, machine=m, **kw)
        _assert_same_solution(via, resident)

    def test_weighted_store_source(self, tmp_path):
        resident = shard_and_solve(POINTS, K, weights=WEIGHTS, **SOLVE_KW)
        st = ShardStore.create(
            str(tmp_path / "w"), POINTS, LABELS, SHARDS, weights=WEIGHTS
        )
        kw = {k: v for k, v in SOLVE_KW.items() if k != "shards"}
        via = shard_and_solve(st, K, **kw)
        _assert_same_solution(via, resident)

    def test_store_source_rejects_conflicting_args(self, store, tmp_path):
        with pytest.raises(InvalidParameterError, match="weights"):
            shard_and_solve(store, K, weights=WEIGHTS, seed=SEED)
        with pytest.raises(InvalidParameterError, match="spill_dir"):
            shard_and_solve(store, K, spill_dir=str(tmp_path / "x"), seed=SEED)

    def test_spill_dir_requires_raw_points(self, tmp_path):
        from repro.metrics.generators import knn_clustering_instance

        inst = knn_clustering_instance(120, 3, neighbors=32, seed=1)
        with pytest.raises(InvalidParameterError, match="spill_dir"):
            shard_and_solve(
                inst, 3, shards=1, seed=SEED, spill_dir=str(tmp_path / "no")
            )

    def test_degraded_drop_parity_with_resident(self, tmp_path):
        """Dropping the same shard out-of-core reproduces the resident
        degraded solution: same centers, same true cost, same widened
        certificate (covered fraction compares approximately — block
        sums reduce in a different order than the masked global sum)."""
        plan = FaultPlan.single("raise", 1, attempt=None)
        common = dict(
            on_shard_failure="drop",
            fault_plan=plan,
            retry_policy=NO_RETRY,
            coverage_floor=0.1,
        )
        with ThreadBackend(3, grain=1) as b:
            m = PramMachine(backend=b, seed=SEED)
            resident = shard_and_solve(POINTS, K, machine=m, **SOLVE_KW, **common)
        st = partition_to_store(
            POINTS, SHARDS, str(tmp_path / "deg"), partition="locality", seed=SEED
        )
        kw = {k: v for k, v in SOLVE_KW.items() if k != "shards"}
        with ThreadBackend(3, grain=1) as b:
            m = PramMachine(backend=b, seed=SEED)
            via = shard_and_solve(st, K, machine=m, **kw, **common)
        assert via.degraded and resident.degraded
        assert via.failed_shards.tolist() == resident.failed_shards.tolist()
        np.testing.assert_array_equal(via.centers, resident.centers)
        assert via.true_cost == resident.true_cost
        assert via.covered_weight_fraction == pytest.approx(
            resident.covered_weight_fraction
        )

    def test_kcenter_and_kmeans_store_parity(self, tmp_path):
        for solver in ("kcenter", "kmeans"):
            kw = dict(SOLVE_KW, solver=solver)
            resident = shard_and_solve(POINTS, K, **kw)
            via = shard_and_solve(
                POINTS, K, spill_dir=str(tmp_path / solver), **kw
            )
            np.testing.assert_array_equal(via.centers, resident.centers)
            assert via.true_cost == resident.true_cost
