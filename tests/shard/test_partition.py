"""Partitioner contracts: coverage, balance, determinism, locality."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.shard.partition import (
    grid_partition,
    kdtree_partition,
    make_partition,
    random_partition,
    shard_sizes,
)


@pytest.fixture
def points():
    return np.random.default_rng(7).random((500, 2))


@pytest.mark.parametrize("method", ["random", "grid", "locality"])
@pytest.mark.parametrize("shards", [1, 3, 8])
def test_partition_covers_all_points(points, method, shards):
    labels = make_partition(points, shards, method, seed=3)
    assert labels.shape == (500,)
    sizes = shard_sizes(labels, shards)
    assert sizes.sum() == 500
    assert np.all(sizes > 0)


def test_random_partition_balanced_and_seeded():
    a = random_partition(101, 4, seed=5)
    b = random_partition(101, 4, seed=5)
    c = random_partition(101, 4, seed=6)
    assert np.array_equal(a, b)
    assert not np.array_equal(a, c)
    sizes = np.bincount(a)
    assert sizes.max() - sizes.min() <= 1


def test_grid_partition_balanced(points):
    sizes = shard_sizes(grid_partition(points, 7), 7)
    assert sizes.max() - sizes.min() <= 1


def test_grid_partition_handles_duplicates():
    pts = np.zeros((40, 3))  # fully degenerate cloud
    sizes = shard_sizes(grid_partition(pts, 5), 5)
    assert sizes.max() - sizes.min() <= 1


def test_kdtree_partition_is_local(points):
    """Leaves from median splits have smaller spread than random shards."""
    loc = kdtree_partition(points, 8)
    rnd = random_partition(500, 8, seed=1)

    def mean_spread(labels):
        return np.mean([
            points[labels == s].std(axis=0).sum() for s in range(8)
        ])

    assert mean_spread(loc) < mean_spread(rnd)


def test_kdtree_partition_balanced(points):
    sizes = shard_sizes(kdtree_partition(points, 8), 8)
    assert sizes.max() <= 2 * sizes.min()


def test_partition_validation(points):
    with pytest.raises(InvalidParameterError):
        make_partition(points, 0, "random")
    with pytest.raises(InvalidParameterError):
        make_partition(points, 501, "locality")
    with pytest.raises(InvalidParameterError):
        make_partition(points, 4, "voronoi")
    with pytest.raises(InvalidParameterError):
        grid_partition(np.full((4, 2), np.nan), 2)
    with pytest.raises(InvalidParameterError):
        shard_sizes(np.zeros(10, dtype=np.intp), 3)  # shards 1..2 empty
