"""The shard-and-conquer driver: merge semantics, the identity-pipeline
byte-parity anchor (shards=1 ≡ direct solve, across backends), the full
scale pipeline, and the composed accounting invariants.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.metrics.generators import knn_clustering_instance
from repro.core.kcenter import parallel_kcenter
from repro.core.kmedian_lagrangian import parallel_kmedian_lagrangian
from repro.core.local_search import parallel_kmedian
from repro.shard.coreset import build_coreset
from repro.shard.merge import merge_coresets
from repro.shard.solve import shard_and_solve


@pytest.fixture
def points():
    rng = np.random.default_rng(1)
    centers = rng.random((6, 2))
    return centers[rng.integers(0, 6, 1200)] + rng.normal(scale=0.04, size=(1200, 2))


# -- merge ------------------------------------------------------------------

def test_merge_builds_weighted_instance(points):
    cs = [
        build_coreset(points[:600], 50, seed=1, origin=np.arange(600)),
        build_coreset(points[600:], 50, seed=2, origin=np.arange(600, 1200)),
    ]
    inst, origin, merged_pts = merge_coresets(cs, 5, neighbors=12)
    assert inst.n == 100
    assert not inst.has_unit_weights
    assert inst.total_weight == pytest.approx(1200.0)
    assert origin.shape == (100,)
    assert np.allclose(points[origin], merged_pts)


def test_merge_rejects_budget_overflow(points):
    cs = [build_coreset(points[:600], 10, seed=1)]
    with pytest.raises(InvalidParameterError, match="raise"):
        merge_coresets(cs, 50)
    with pytest.raises(InvalidParameterError):
        merge_coresets([], 2)
    with pytest.raises(InvalidParameterError):
        merge_coresets([object()], 2)


# -- identity pipeline: byte parity with the direct solvers -----------------

@pytest.mark.parametrize("backend", ["serial", "thread", "process"])
def test_shards1_kmedian_byte_identical_to_direct(backend):
    inst = knn_clustering_instance(300, 10, neighbors=48, seed=3)
    direct = parallel_kmedian(inst, seed=7, epsilon=0.5, backend=backend)
    via = shard_and_solve(
        inst, 10, shards=1, solver="kmedian", seed=7, epsilon=0.5, backend=backend
    )
    assert np.array_equal(np.sort(direct.centers), via.centers)
    assert direct.cost == via.cost
    assert via.extra["identity"] and via.movement == 0.0


def test_shards1_other_solvers_match_direct():
    inst = knn_clustering_instance(260, 9, neighbors=48, seed=5)
    kc = parallel_kcenter(inst, seed=11)
    via_kc = shard_and_solve(inst, 9, shards=1, solver="kcenter", seed=11)
    assert np.array_equal(np.sort(kc.centers), via_kc.centers)
    assert kc.cost == via_kc.cost

    lag = parallel_kmedian_lagrangian(inst, seed=11, epsilon=0.2)
    via_lag = shard_and_solve(
        inst, 9, shards=1, solver="kmedian_lagrangian", seed=11, epsilon=0.2
    )
    assert np.array_equal(np.sort(lag.centers), via_lag.centers)
    assert lag.cost == via_lag.cost


def test_instance_source_guardrails():
    inst = knn_clustering_instance(100, 5, neighbors=32, seed=1)
    with pytest.raises(InvalidParameterError, match="shards=1"):
        shard_and_solve(inst, 5, shards=4)
    with pytest.raises(InvalidParameterError, match="weights"):
        shard_and_solve(inst, 5, shards=1, weights=np.ones(100))
    with pytest.raises(InvalidParameterError, match="solver"):
        shard_and_solve(inst, 5, shards=1, solver="dbscan")


# -- the scale pipeline -----------------------------------------------------

@pytest.mark.parametrize("partition", ["random", "grid", "locality"])
def test_pipeline_partitions(points, partition):
    sol = shard_and_solve(
        points, 6, shards=4, coreset_size=80, partition=partition, seed=2
    )
    assert sol.centers.size <= 6
    assert np.all(sol.centers < 1200)
    assert sol.shard_sizes.sum() == 1200
    # centers are original point ids; true cost is their exact objective
    d = np.min(
        np.linalg.norm(points[:, None, :] - points[sol.centers][None, :, :], axis=2),
        axis=1,
    )
    assert sol.true_cost == pytest.approx(d.sum())


@pytest.mark.parametrize("solver", ["kmedian", "kmeans", "kcenter", "kmedian_lagrangian"])
def test_pipeline_solvers(points, solver):
    sol = shard_and_solve(
        points, 5, shards=3, coreset_size=60, solver=solver, seed=4, neighbors=12
    )
    assert sol.centers.size <= 5
    assert sol.true_cost > 0


def test_movement_bound_invariant(points):
    """cost_true ≤ exact-coreset cost + movement (triangle inequality)
    — the additive term the composed accounting charges."""
    sol = shard_and_solve(points, 6, shards=4, coreset_size=80, seed=3)
    exact = sol.extra["merged_cost_exact"]
    assert sol.true_cost <= exact + sol.movement + 1e-9
    assert exact <= sol.true_cost + sol.movement + 1e-9
    assert sol.bound is not None
    assert sol.bound.additive_term == pytest.approx(6.5 * sol.movement)


def test_backend_scheduling_invariance(points):
    sols = [
        shard_and_solve(points, 6, shards=4, coreset_size=80, seed=9, backend=b)
        for b in ("serial", "thread", "process")
    ]
    for other in sols[1:]:
        assert np.array_equal(sols[0].centers, other.centers)
        assert sols[0].cost == other.cost
        assert sols[0].true_cost == other.true_cost


def test_weighted_input_composes(points):
    """A weighted input: coresets aggregate the given weights, and the
    true objective is the weighted one."""
    rng = np.random.default_rng(8)
    w = rng.uniform(0.5, 3.0, 1200)
    sol = shard_and_solve(points, 5, shards=3, coreset_size=70, weights=w, seed=6)
    d = np.min(
        np.linalg.norm(points[:, None, :] - points[sol.centers][None, :, :], axis=2),
        axis=1,
    )
    assert sol.true_cost == pytest.approx(np.sum(w * d))


def test_identity_scale_path_equals_direct_knn(points):
    """shards=1 + coreset='none' over points builds exactly the kNN
    instance of the full point set: the solved objective must agree
    with evaluating the returned centers on that instance directly."""
    from repro.metrics.generators import knn_clustering_from_points

    sol = shard_and_solve(
        points, 8, shards=1, coreset="none", neighbors=24, seed=5,
        solver="kmedian", epsilon=0.5,
    )
    assert sol.movement == 0.0
    assert np.array_equal(sol.centers, sol.merged_centers)
    inst = knn_clustering_from_points(points, 8, neighbors=24)
    assert sol.cost == pytest.approx(inst.kmedian_cost(sol.merged_centers))


def test_rounds_and_ledger_recorded(points):
    sol = shard_and_solve(points, 5, shards=3, coreset_size=60, seed=1)
    assert sol.rounds["shard_partition"] == 1
    assert sol.rounds["shard_coreset"] == 1
    assert sol.rounds["shard_merge"] == 1
    assert sol.model_costs.work > 0
