"""Coreset builder contracts: weight conservation, movement, identity
pass-through, seeding determinism, and the ledger-honesty regression
for the shard-parallel aggregation seam.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.pram.backends import SerialBackend, ThreadBackend
from repro.pram.ledger import CostLedger
from repro.pram.machine import PramMachine
from repro.shard.coreset import build_coreset, build_shard_coresets
from repro.shard.partition import random_partition


@pytest.fixture
def points():
    return np.random.default_rng(3).random((400, 2))


@pytest.mark.parametrize("method", ["gonzalez", "sample"])
def test_coreset_conserves_total_weight(points, method):
    w = np.random.default_rng(4).uniform(0.5, 3.0, 400)
    c = build_coreset(points, 32, weights=w, method=method, seed=9)
    assert c.size == 32
    assert c.weights.sum() == pytest.approx(w.sum())
    assert np.all(c.weights > 0)
    # representatives are actual input points
    assert np.all(c.origin < 400)
    assert np.allclose(c.points, points[c.origin])


@pytest.mark.parametrize("method", ["gonzalez", "sample"])
def test_coreset_movement_is_exact(points, method):
    c = build_coreset(points, 25, method=method, seed=2)
    d = np.min(
        np.linalg.norm(points[:, None, :] - c.points[None, :, :], axis=2), axis=1
    )
    assert c.movement == pytest.approx(d.sum())


def test_identity_coreset(points):
    for spec in (dict(size=400), dict(size=1000), dict(size=16, method="none")):
        c = build_coreset(points, spec["size"], method=spec.get("method", "gonzalez"))
        assert c.size == 400
        assert c.movement == 0.0
        assert np.array_equal(c.origin, np.arange(400))


def test_coreset_seeding_deterministic(points):
    a = build_coreset(points, 20, method="sample", seed=11)
    b = build_coreset(points, 20, method="sample", seed=11)
    assert np.array_equal(a.origin, b.origin)


def test_coreset_validation(points):
    with pytest.raises(InvalidParameterError):
        build_coreset(points, 0)
    with pytest.raises(InvalidParameterError):
        build_coreset(points, 10, method="fancy")
    with pytest.raises(InvalidParameterError):
        build_coreset(points, 10, weights=np.zeros(400))
    with pytest.raises(InvalidParameterError):
        build_coreset(points, 10, origin=np.arange(3))


def test_gonzalez_movement_beats_sampling_typically(points):
    """Farthest-point seeding covers the cloud; it should not be much
    worse than random sampling (usually better)."""
    g = build_coreset(points, 30, method="gonzalez", seed=1)
    s = build_coreset(points, 30, method="sample", seed=1)
    assert g.movement <= 2.0 * s.movement


# -- shard-parallel builds & the ledger aggregation seam --------------------

def test_shard_coresets_independent_of_backend_scheduling(points):
    labels = random_partition(400, 4, seed=5)
    kwargs = dict(weights=None, method="gonzalez", seed=13)
    serial = build_shard_coresets(
        points, labels, 4, 40, machine=PramMachine(SerialBackend()), **kwargs
    )
    with ThreadBackend(num_workers=2, grain=1) as tb:
        threaded = build_shard_coresets(
            points, labels, 4, 40, machine=PramMachine(tb), **kwargs
        )
    for a, b in zip(serial, threaded):
        assert np.array_equal(a.origin, b.origin)
        assert np.array_equal(a.weights, b.weights)
        assert a.movement == b.movement


def test_shard_ledger_charges_sum_of_per_shard_work(points):
    """Ledger honesty: the global ledger's increase at the aggregation
    seam equals the sum of per-shard charges — no double-charging, no
    dropped work — and the depth is the max (parallel composition)."""
    labels = random_partition(400, 5, seed=2)
    machine = PramMachine(seed=0)
    before = machine.ledger.snapshot()
    coresets = build_shard_coresets(
        points, labels, 5, 30, method="gonzalez", seed=4, machine=machine
    )
    delta = machine.ledger.since(before)
    assert delta.work == pytest.approx(sum(c.costs.work for c in coresets))
    assert delta.cache == pytest.approx(sum(c.costs.cache for c in coresets))
    assert delta.depth == pytest.approx(max(c.costs.depth for c in coresets))
    assert machine.ledger.rounds["shard_coreset"] == 1
    # every shard actually charged something
    assert all(c.costs.work > 0 for c in coresets)


def test_charge_parallel_combines_snapshots():
    led_a, led_b = CostLedger(), CostLedger()
    led_a.charge_basic("x", 100)
    led_b.charge_basic("y", 300)
    target = CostLedger()
    combined = target.charge_parallel("par", [led_a.snapshot(), led_b.snapshot()])
    assert combined.work == 400.0
    assert combined.depth == max(led_a.depth, led_b.depth)
    assert target.work == 400.0
    assert target.depth == combined.depth
    assert target.calls_by_op["par"] == 1


def test_empty_shard_rejected(points):
    labels = np.zeros(400, dtype=np.intp)  # everything on shard 0
    with pytest.raises(InvalidParameterError, match="empty"):
        build_shard_coresets(points, labels, 2, 10, seed=0)


def test_out_of_range_labels_rejected(points):
    """An out-of-range label must fail loudly, not silently drop its
    points from every shard (weight-conservation regression)."""
    labels = random_partition(400, 3, seed=1)
    labels[7] = 3  # outside [0, shards)
    with pytest.raises(InvalidParameterError, match=r"\[0, 3\)"):
        build_shard_coresets(points, labels, 3, 20, seed=0)
    labels[7] = -1
    with pytest.raises(InvalidParameterError, match=r"\[0, 3\)"):
        build_shard_coresets(points, labels, 3, 20, seed=0)


@pytest.mark.parametrize("method", ["gonzalez", "sample"])
def test_duplicate_coordinates_never_yield_zero_weight_reps(method):
    """Coincident points can make two seeds share a coordinate; the KD
    assignment then starves one of them. Starved reps must be dropped,
    not returned at weight 0 (which the merge would reject)."""
    rng = np.random.default_rng(0)
    pts = np.repeat(rng.random((5, 2)), 8, axis=0)  # 40 points, 5 distinct
    c = build_coreset(pts, 12, method=method, seed=3)
    assert np.all(c.weights > 0)
    assert c.weights.sum() == pytest.approx(40.0)
    assert c.size <= 12
