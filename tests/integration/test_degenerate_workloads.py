"""Tie-heavy and skewed workloads: line metrics, grids, power-law demand.

Distance degeneracy (everything ties) is the classic way threshold
comparisons and mask updates go wrong; these workloads force every
algorithm through dense tie groups and skewed cluster masses.
"""

import numpy as np
import pytest

from repro.baselines.brute_force import brute_force_facility_location
from repro.core.fl_local_search import parallel_fl_local_search
from repro.core.greedy import parallel_greedy
from repro.core.kcenter import parallel_kcenter
from repro.core.local_search import parallel_kmedian
from repro.core.primal_dual import parallel_primal_dual
from repro.lp.duality import check_dual_feasible
from repro.lp.solve import lp_lower_bound
from repro.metrics.generators import grid_points, line_instance, powerlaw_cluster_instance
from repro.metrics.instance import ClusteringInstance


@pytest.fixture
def line_fl():
    return line_instance(5, 15, seed=3)


@pytest.fixture
def powerlaw_fl():
    return powerlaw_cluster_instance(8, 40, n_clusters=5, seed=3)


@pytest.fixture
def grid_clustering():
    return ClusteringInstance(grid_points(6, 6), 4)


class TestLineInstances:
    def test_generator_all_gaps_tie(self):
        inst = line_instance(4, 8, spacing=2.0, seed=1)
        gaps = np.unique(np.round(inst.metric.D, 9))
        # 1-D evenly spaced: distances are exact multiples of the spacing
        assert np.allclose(gaps % 2.0, 0.0)

    def test_greedy_on_ties(self, line_fl):
        opt, _ = brute_force_facility_location(line_fl)
        for seed in range(3):
            sol = parallel_greedy(line_fl, epsilon=0.1, seed=seed)
            assert sol.cost <= (6 + 0.1) * opt * (1 + 1e-9)

    def test_primal_dual_on_ties(self, line_fl):
        opt, _ = brute_force_facility_location(line_fl)
        sol = parallel_primal_dual(line_fl, epsilon=0.1, seed=0)
        check_dual_feasible(line_fl, sol.alpha, tol=1e-7)
        assert sol.cost <= 3 * 1.1 * opt * (1 + 1e-9) + 3 * sol.extra["gamma"] / line_fl.m

    def test_fl_local_search_on_ties(self, line_fl):
        opt, _ = brute_force_facility_location(line_fl)
        sol = parallel_fl_local_search(line_fl, epsilon=0.1, seed=0)
        assert sol.cost <= 3.1 * opt * (1 + 1e-9)


class TestGridClustering:
    def test_kcenter_grid_ties(self, grid_clustering):
        # Manhattan grid: few distinct thresholds, heavy ties per probe.
        sol = parallel_kcenter(grid_clustering, seed=0)
        assert sol.centers.size <= grid_clustering.k
        # 6×6 grid, k=4: quadrant centers give radius ≤ 3 (L1); 2-approx
        # of the optimum (which is ≥ 2) keeps us ≤ 4.
        assert sol.cost <= 4.0 + 1e-9

    def test_kmedian_grid_ties(self, grid_clustering):
        sol = parallel_kmedian(grid_clustering, epsilon=0.3, seed=0)
        assert sol.centers.size <= grid_clustering.k
        assert sol.cost <= 5.3 * grid_clustering.kmedian_cost(sol.centers) / 1.0  # sanity: finite

    def test_kcenter_deterministic_across_seeds_value_class(self, grid_clustering):
        radii = {parallel_kcenter(grid_clustering, seed=s).cost for s in range(4)}
        # Different seeds may pick different centers, but every radius
        # obeys the 2-approx envelope, so the spread is bounded.
        assert max(radii) <= 2 * min(radii) + 1e-9


class TestPowerLaw:
    def test_generator_skew(self):
        inst = powerlaw_cluster_instance(6, 200, n_clusters=6, alpha=2.0, seed=0)
        assert inst.n_clients == 200

    def test_all_fl_algorithms_vs_lp(self, powerlaw_fl):
        lp = lp_lower_bound(powerlaw_fl)
        g = parallel_greedy(powerlaw_fl, epsilon=0.1, seed=0)
        pd = parallel_primal_dual(powerlaw_fl, epsilon=0.1, seed=0)
        ls = parallel_fl_local_search(powerlaw_fl, epsilon=0.1, seed=0)
        assert g.cost <= 6.1 * lp * (1 + 1e-9)
        assert pd.cost <= 3.4 * lp * (1 + 1e-9) + 3 * pd.extra["gamma"] / powerlaw_fl.m
        assert ls.cost <= 3.1 * lp * (1 + 1e-9)

    def test_generators_deterministic(self):
        a = powerlaw_cluster_instance(5, 30, seed=9)
        b = powerlaw_cluster_instance(5, 30, seed=9)
        assert np.array_equal(a.D, b.D)
