"""Tie-heavy and skewed workloads: line metrics, grids, power-law demand.

Distance degeneracy (everything ties) is the classic way threshold
comparisons and mask updates go wrong; these workloads force every
algorithm through dense tie groups and skewed cluster masses.
"""

import numpy as np
import pytest

from repro.baselines.brute_force import brute_force_facility_location
from repro.core.fl_local_search import parallel_fl_local_search
from repro.core.greedy import parallel_greedy
from repro.core.kcenter import parallel_kcenter
from repro.core.local_search import parallel_kmeans, parallel_kmedian
from repro.core.primal_dual import parallel_primal_dual
from repro.errors import InfeasibleSolutionError
from repro.lp.duality import check_dual_feasible
from repro.lp.solve import lp_lower_bound
from repro.metrics.generators import (
    euclidean_clustering,
    grid_points,
    knn_clustering_instance,
    line_instance,
    powerlaw_cluster_instance,
)
from repro.metrics.instance import ClusteringInstance
from repro.metrics.space import MetricSpace
from repro.metrics.sparse import SparseClusteringInstance, knn_sparsify, threshold_sparsify


@pytest.fixture
def line_fl():
    return line_instance(5, 15, seed=3)


@pytest.fixture
def powerlaw_fl():
    return powerlaw_cluster_instance(8, 40, n_clusters=5, seed=3)


@pytest.fixture
def grid_clustering():
    return ClusteringInstance(grid_points(6, 6), 4)


class TestLineInstances:
    def test_generator_all_gaps_tie(self):
        inst = line_instance(4, 8, spacing=2.0, seed=1)
        gaps = np.unique(np.round(inst.metric.D, 9))
        # 1-D evenly spaced: distances are exact multiples of the spacing
        assert np.allclose(gaps % 2.0, 0.0)

    def test_greedy_on_ties(self, line_fl):
        opt, _ = brute_force_facility_location(line_fl)
        for seed in range(3):
            sol = parallel_greedy(line_fl, epsilon=0.1, seed=seed)
            assert sol.cost <= (6 + 0.1) * opt * (1 + 1e-9)

    def test_primal_dual_on_ties(self, line_fl):
        opt, _ = brute_force_facility_location(line_fl)
        sol = parallel_primal_dual(line_fl, epsilon=0.1, seed=0)
        check_dual_feasible(line_fl, sol.alpha, tol=1e-7)
        assert sol.cost <= 3 * 1.1 * opt * (1 + 1e-9) + 3 * sol.extra["gamma"] / line_fl.m

    def test_fl_local_search_on_ties(self, line_fl):
        opt, _ = brute_force_facility_location(line_fl)
        sol = parallel_fl_local_search(line_fl, epsilon=0.1, seed=0)
        assert sol.cost <= 3.1 * opt * (1 + 1e-9)


class TestGridClustering:
    def test_kcenter_grid_ties(self, grid_clustering):
        # Manhattan grid: few distinct thresholds, heavy ties per probe.
        sol = parallel_kcenter(grid_clustering, seed=0)
        assert sol.centers.size <= grid_clustering.k
        # 6×6 grid, k=4: quadrant centers give radius ≤ 3 (L1); 2-approx
        # of the optimum (which is ≥ 2) keeps us ≤ 4.
        assert sol.cost <= 4.0 + 1e-9

    def test_kmedian_grid_ties(self, grid_clustering):
        sol = parallel_kmedian(grid_clustering, epsilon=0.3, seed=0)
        assert sol.centers.size <= grid_clustering.k
        assert sol.cost <= 5.3 * grid_clustering.kmedian_cost(sol.centers) / 1.0  # sanity: finite

    def test_kcenter_deterministic_across_seeds_value_class(self, grid_clustering):
        radii = {parallel_kcenter(grid_clustering, seed=s).cost for s in range(4)}
        # Different seeds may pick different centers, but every radius
        # obeys the 2-approx envelope, so the spread is bounded.
        assert max(radii) <= 2 * min(radii) + 1e-9


class TestPowerLaw:
    def test_generator_skew(self):
        inst = powerlaw_cluster_instance(6, 200, n_clusters=6, alpha=2.0, seed=0)
        assert inst.n_clients == 200

    def test_all_fl_algorithms_vs_lp(self, powerlaw_fl):
        lp = lp_lower_bound(powerlaw_fl)
        g = parallel_greedy(powerlaw_fl, epsilon=0.1, seed=0)
        pd = parallel_primal_dual(powerlaw_fl, epsilon=0.1, seed=0)
        ls = parallel_fl_local_search(powerlaw_fl, epsilon=0.1, seed=0)
        assert g.cost <= 6.1 * lp * (1 + 1e-9)
        assert pd.cost <= 3.4 * lp * (1 + 1e-9) + 3 * pd.extra["gamma"] / powerlaw_fl.m
        assert ls.cost <= 3.1 * lp * (1 + 1e-9)

    def test_generators_deterministic(self):
        a = powerlaw_cluster_instance(5, 30, seed=9)
        b = powerlaw_cluster_instance(5, 30, seed=9)
        assert np.array_equal(a.D, b.D)


def _four_far_blobs(k: int) -> ClusteringInstance:
    """Four tight, mutually distant blobs of three points each."""
    rng = np.random.default_rng(0)
    pts = np.concatenate(
        [rng.normal(loc=c, scale=0.01, size=(3, 2)) for c in ((0, 0), (10, 0), (0, 10), (10, 10))]
    )
    return ClusteringInstance(MetricSpace.from_points(pts), k)


class TestClusteringDegenerate:
    """k = 1, k = n, tied distances, and uncoverable truncations — the
    satellite edge cases for the sparse clustering stack."""

    @pytest.mark.parametrize("make_sparse", [
        SparseClusteringInstance.from_instance,
        lambda inst: knn_sparsify(inst, inst.n),
    ], ids=["full-csr", "knn-all"])
    def test_k_equals_1_sparse(self, make_sparse):
        inst = euclidean_clustering(12, 1, seed=0)
        sp = make_sparse(inst)
        a = parallel_kcenter(inst, seed=0)
        b = parallel_kcenter(sp, seed=0)
        assert a.cost == b.cost
        assert parallel_kmedian(sp, epsilon=0.3, seed=0).centers.size == 1
        assert parallel_kmeans(sp, epsilon=0.3, seed=0).centers.size == 1

    def test_k_equals_n_sparse(self):
        inst = euclidean_clustering(8, 8, seed=0)
        sp = SparseClusteringInstance.from_instance(inst)
        assert parallel_kcenter(sp, seed=0).cost == pytest.approx(0.0)
        assert parallel_kmedian(sp, seed=0).cost == pytest.approx(0.0)
        # Truncated too: the diagonal is always stored, so k = n is 0.
        kn = knn_sparsify(inst, 3)
        assert parallel_kcenter(kn, seed=0).cost == pytest.approx(0.0)
        assert parallel_kmedian(kn, seed=0).cost == pytest.approx(0.0)

    def test_tied_distances_sparse_matches_dense(self):
        """Manhattan grid: few distinct thresholds, heavy tie groups per
        probe — sparse and dense must agree decision-for-decision."""
        inst = ClusteringInstance(grid_points(5, 5, p=1.0), 4)
        sp = SparseClusteringInstance.from_instance(inst)
        from repro.pram.machine import PramMachine

        a = parallel_kcenter(inst, machine=PramMachine(seed=0))
        b = parallel_kcenter(sp, machine=PramMachine(seed=0))
        assert np.array_equal(a.centers, b.centers) and a.cost == b.cost
        am = parallel_kmedian(inst, epsilon=0.3, machine=PramMachine(seed=0))
        bm = parallel_kmedian(sp, epsilon=0.3, machine=PramMachine(seed=0))
        assert np.array_equal(am.centers, bm.centers) and am.cost == bm.cost

    def test_tied_distances_threshold_truncation(self):
        """A threshold truncation of the grid keeps whole tie groups;
        the 2-approx envelope must hold on the stored radius."""
        inst = ClusteringInstance(grid_points(5, 5, p=1.0), 4)
        sp = threshold_sparsify(inst, 4.0)
        sol = parallel_kcenter(sp, seed=0)
        assert sol.centers.size <= 4
        assert sol.cost <= 4.0 + 1e-9  # fallback-capped by construction

    def test_uncoverable_knn_kcenter_raises(self):
        """A kNN graph whose components outnumber k cannot be covered at
        any stored radius: the solver must raise, not return inf or a
        silently fallback-capped radius."""
        inst = _four_far_blobs(k=2)
        kn = knn_sparsify(inst, 3)  # within-blob candidates only
        with pytest.raises(InfeasibleSolutionError, match="too sparse"):
            parallel_kcenter(kn, seed=0)

    def test_uncoverable_knn_warm_start_raises_but_initial_works(self):
        """Local search inherits the loud failure through its k-center
        warm start; an explicit initial sidesteps it."""
        inst = _four_far_blobs(k=2)
        kn = knn_sparsify(inst, 3)
        with pytest.raises(InfeasibleSolutionError):
            parallel_kmedian(kn, epsilon=0.3, seed=0)
        sol = parallel_kmedian(kn, epsilon=0.3, seed=0, initial=[0, 3])
        assert sol.centers.size <= 2 and np.isfinite(sol.cost)

    def test_coverable_once_k_matches_components(self):
        """The same truncation is feasible when k covers the components."""
        inst = _four_far_blobs(k=4)
        kn = knn_sparsify(inst, 3)
        sol = parallel_kcenter(kn, seed=0)
        assert sol.centers.size <= 4
        assert sol.cost <= 0.1  # one center per blob, blob radius ~0.01

    def test_unserved_node_under_infinite_fallback_still_swaps(self):
        """A node with no stored edge to any initial center and an
        infinite fallback must not poison the swap arithmetic (inf−inf
        → NaN → silent no-op): the improving swap to finite cost must
        be found."""
        # Two disjoint stored pairs {0,1} and {2,3} (plus diagonals).
        sp = SparseClusteringInstance(
            [0, 2, 4, 6, 8],
            [0, 1, 0, 1, 2, 3, 2, 3],
            [0.0, 1.0, 1.0, 0.0, 0.0, 1.0, 1.0, 0.0],
            2,
        )
        sol = parallel_kmedian(sp, epsilon=0.3, seed=0, initial=[0, 1])
        assert np.isfinite(sol.cost)
        assert sol.cost == pytest.approx(2.0)
        assert len(set(sol.centers) & {0, 1}) == 1  # one center per pair
        assert len(set(sol.centers) & {2, 3}) == 1

    def test_generator_too_sparse_for_budget(self):
        """KD-tree-first generator + tiny neighborhoods: same loud
        failure, straight from the public construction path."""
        inst = knn_clustering_instance(60, 2, neighbors=3, n_clusters=6, spread=0.005, seed=1)
        with pytest.raises(InfeasibleSolutionError, match="neighbors"):
            parallel_kcenter(inst, seed=0)
