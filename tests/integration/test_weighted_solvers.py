"""Weighted solver certification.

Three gates over the weighted paths (the shard-and-conquer substrate):

1. **unit-weight parity** — an explicit all-ones weight vector produces
   byte-identical seeded solutions to the unweighted instance on every
   solver (the weighted code is provably dormant at unit weights);
2. **weighted ratio certification** — on the ``weighted_*`` ratio
   suites, solver costs stay within the paper bounds of the exact
   *weighted* brute-force optimum;
3. **duplicate-metamorphic** — solving an instance with a client
   physically duplicated matches solving the weight-2 collapsed
   instance (cost-wise), on the dense and sparse paths.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.brute_force import (
    brute_force_facility_location,
    brute_force_kmedian,
)
from repro.bench.workloads import weighted_clustering_ratio_suite, weighted_fl_ratio_suite
from repro.core.greedy import parallel_greedy
from repro.core.kcenter import parallel_kcenter
from repro.core.local_search import parallel_kmedian
from repro.core.primal_dual import parallel_primal_dual
from repro.metrics.instance import ClusteringInstance, FacilityLocationInstance
from repro.metrics.sparse import (
    SparseClusteringInstance,
    SparseFacilityLocationInstance,
)

EPS = 0.2


# -- unit-weight parity -----------------------------------------------------

def test_unit_weight_parity_clustering():
    from repro.metrics.generators import euclidean_clustering

    base = euclidean_clustering(30, 3, seed=21)
    ones = ClusteringInstance(base.space, 3, weights=np.ones(30))
    for inst_a, inst_b in ((base, ones),):
        a = parallel_kmedian(inst_a, seed=5, epsilon=0.5)
        b = parallel_kmedian(inst_b, seed=5, epsilon=0.5)
        assert np.array_equal(a.centers, b.centers)
        assert a.cost == b.cost
    sa = parallel_kcenter(SparseClusteringInstance.from_instance(base), seed=5)
    sb = parallel_kcenter(SparseClusteringInstance.from_instance(ones), seed=5)
    assert np.array_equal(sa.centers, sb.centers)


def test_unit_weight_parity_fl():
    from repro.metrics.generators import euclidean_instance

    base = euclidean_instance(7, 18, seed=31)
    ones = FacilityLocationInstance(base.D, base.f, client_weights=np.ones(18))
    for fn in (parallel_greedy, parallel_primal_dual):
        a = fn(base, seed=9, epsilon=EPS)
        b = fn(ones, seed=9, epsilon=EPS)
        assert np.array_equal(a.opened, b.opened)
        assert a.cost == b.cost
        # sparse path too
        sa = fn(SparseFacilityLocationInstance.from_instance(base), seed=9, epsilon=EPS)
        sb = fn(SparseFacilityLocationInstance.from_instance(ones), seed=9, epsilon=EPS)
        assert np.array_equal(sa.opened, sb.opened)
        assert np.array_equal(a.opened, sa.opened)


# -- weighted ratio certification vs brute force ----------------------------

@pytest.mark.parametrize(
    "name,instance", weighted_clustering_ratio_suite(0), ids=lambda p: str(p)
)
def test_weighted_kmedian_within_local_search_bound(name, instance):
    if not isinstance(instance, ClusteringInstance):
        pytest.skip("clustering entries only")
    opt, _ = brute_force_kmedian(instance)
    sol = parallel_kmedian(instance, seed=3, epsilon=0.5)
    assert sol.cost == pytest.approx(instance.kmedian_cost(sol.centers))
    # Theorem 7.1 polynomial-variant bound (5 + ε), with float headroom.
    assert sol.cost <= (5.0 + 0.5) * opt * (1 + 1e-9)


@pytest.mark.parametrize(
    "name,instance", weighted_fl_ratio_suite(0), ids=lambda p: str(p)
)
def test_weighted_fl_within_paper_bounds(name, instance):
    if not isinstance(instance, FacilityLocationInstance):
        pytest.skip("FL entries only")
    opt, _ = brute_force_facility_location(instance)
    greedy = parallel_greedy(instance, seed=1, epsilon=EPS)
    pd = parallel_primal_dual(instance, seed=1, epsilon=EPS)
    # §4: (1+ε)·H_n-ish dual-fitting constant ≤ 3.16(1+ε)²; §5: 3+ε.
    assert greedy.cost <= 3.16 * (1 + EPS) ** 2 * opt * (1 + 1e-9)
    assert pd.cost <= (3.0 + 3 * EPS) * opt * (1 + 1e-9)
    # weighted sparse paths agree with their dense runs
    sg = parallel_greedy(
        SparseFacilityLocationInstance.from_instance(instance), seed=1, epsilon=EPS
    )
    assert np.array_equal(sg.opened, greedy.opened)


# -- duplicate-metamorphic on solvers ---------------------------------------

def test_solver_duplicate_equals_weight_two_fl():
    from repro.metrics.generators import euclidean_instance

    base = euclidean_instance(6, 12, seed=41)
    w = np.ones(12)
    w[[3, 8]] = 2.0
    weighted = FacilityLocationInstance(base.D, base.f, client_weights=w)
    cols = np.repeat(np.arange(12), w.astype(int))
    expanded = FacilityLocationInstance(base.D[:, cols], base.f)
    # Greedy: duplicates vote identically to their twin, so weighted
    # degrees/votes reproduce the expanded run decision-for-decision.
    sw = parallel_greedy(weighted, seed=2, epsilon=EPS)
    se = parallel_greedy(expanded, seed=2, epsilon=EPS)
    assert np.array_equal(sw.opened, se.opened)
    assert sw.cost == pytest.approx(se.cost)
    # Primal–dual: the payment dynamics collapse exactly, but the §3
    # MaxUDom post-processing sees duplicated client *nodes* vs one
    # weighted node and may pick a different (equally valid) survivor —
    # so assert the guarantee, not equality.
    opt, _ = brute_force_facility_location(weighted)
    pw = parallel_primal_dual(weighted, seed=2, epsilon=EPS)
    pe = parallel_primal_dual(expanded, seed=2, epsilon=EPS)
    assert pw.cost == pytest.approx(weighted.cost(pw.opened))
    assert pe.cost == pytest.approx(weighted.cost(pe.opened))  # same objective either way
    for sol in (pw, pe):
        assert sol.cost <= (3.0 + 3 * EPS) * opt * (1 + 1e-9)


def test_solver_duplicate_equals_weight_two_kmedian():
    from repro.metrics.generators import euclidean_clustering
    from repro.metrics.space import MetricSpace

    base = euclidean_clustering(20, 3, seed=51)
    w = np.ones(20)
    w[[1, 9, 14]] = 2.0
    weighted = ClusteringInstance(base.space, 3, weights=w)
    reps = np.repeat(np.arange(20), w.astype(int))
    expanded = ClusteringInstance(
        MetricSpace(base.D[np.ix_(reps, reps)], validate=False), 3
    )
    sw = parallel_kmedian(weighted, seed=6, epsilon=0.5)
    se = parallel_kmedian(expanded, seed=6, epsilon=0.5)
    # label sets differ (duplicates are distinct nodes); the weighted
    # objective of each solution must agree with the other's cost to
    # within the (1-β/k)-local-optimum slack of the swap loop.
    assert sw.cost == pytest.approx(weighted.kmedian_cost(sw.centers))
    assert se.cost == pytest.approx(expanded.kmedian_cost(se.centers))
    assert abs(sw.cost - se.cost) <= 0.35 * max(sw.cost, se.cost)


def test_weighted_sparse_local_search_matches_dense():
    from repro.metrics.generators import euclidean_clustering

    base = euclidean_clustering(26, 3, seed=61)
    w = np.random.default_rng(7).uniform(0.5, 3.0, 26)
    weighted = ClusteringInstance(base.space, 3, weights=w)
    dense = parallel_kmedian(weighted, seed=8, epsilon=0.5)
    sparse = parallel_kmedian(
        SparseClusteringInstance.from_instance(weighted), seed=8, epsilon=0.5
    )
    assert np.array_equal(dense.centers, sparse.centers)
    assert dense.cost == pytest.approx(sparse.cost)


def test_weighted_fl_paths_agree_dense_compact_sparse():
    """The weighted threading must not desynchronize the three
    execution paths: dense, frontier-compacted, and sparse runs of
    greedy and primal–dual return identical seeded solutions on a
    dense-representable weighted instance."""
    from repro.metrics.generators import euclidean_instance

    base = euclidean_instance(12, 40, seed=17)
    w = np.random.default_rng(3).uniform(0.5, 4.0, 40)
    inst = FacilityLocationInstance(base.D, base.f, client_weights=w)
    sp = SparseFacilityLocationInstance.from_instance(inst)
    for fn in (parallel_greedy, parallel_primal_dual):
        dense = fn(inst, seed=5, epsilon=0.15, compaction=False)
        compact = fn(inst, seed=5, epsilon=0.15, compaction=True)
        sparse = fn(sp, seed=5, epsilon=0.15)
        assert np.array_equal(dense.opened, compact.opened)
        assert np.array_equal(dense.opened, sparse.opened)
        assert dense.cost == compact.cost == sparse.cost
        assert np.array_equal(dense.alpha, compact.alpha)
        assert np.array_equal(dense.alpha, sparse.alpha)


@pytest.mark.parametrize("weight", [1e-6, 1e-9])
def test_primal_dual_converges_with_tiny_fractional_weights(weight):
    """Fractional coreset weights shrink payments by w; the geometric
    schedule must get log_{1+ε}(1/w_min) extra levels instead of
    raising ConvergenceError (regression for the weight-blind cap)."""
    from repro.metrics.generators import euclidean_instance

    base = euclidean_instance(8, 24, seed=13)
    w = np.full(24, weight)
    w[0] = 1.0  # mixed spread
    inst = FacilityLocationInstance(base.D, base.f, client_weights=w)
    for variant in (inst, SparseFacilityLocationInstance.from_instance(inst)):
        sol = parallel_primal_dual(variant, seed=1, epsilon=EPS)
        assert sol.opened.size >= 1
        assert np.isfinite(sol.cost)
