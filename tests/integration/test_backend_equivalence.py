"""Backend-independence sweep: every algorithm, across every backend.

The execution backend must never change results or model charges —
only wall-clock time. The first half sweeps the satellite algorithms
serial-vs-thread (PR-1 suite); the second half is the PR-2 parity
gate: seeded runs of greedy, primal–dual, and both dominator variants
must be **byte-identical** on serial, thread, and process backends, on
both the dense and frontier-compacted execution paths. Pool grains are
tiny so the parallel code paths really execute at test sizes.
"""

import numpy as np
import pytest

from repro import PramMachine, ProcessBackend, SerialBackend, ThreadBackend
from repro.core.dominator import max_dominator_set, max_u_dominator_set
from repro.core.dominator_sparse import max_dominator_set_sparse
from repro.core.fl_local_search import parallel_fl_local_search
from repro.core.greedy import parallel_greedy
from repro.core.kmedian_lagrangian import parallel_kmedian_lagrangian
from repro.core.local_search import parallel_kmeans, parallel_kmedian
from repro.core.lp_rounding import parallel_lp_rounding
from repro.core.primal_dual import parallel_primal_dual
from repro.lp.solve import solve_primal
from repro.metrics.generators import euclidean_clustering, euclidean_instance


@pytest.fixture
def pair():
    """Matched (serial, threaded) machines with identical seeds."""
    serial = PramMachine(seed=77)
    threaded = PramMachine(backend=ThreadBackend(2, grain=8), seed=77)
    yield serial, threaded
    threaded.close()


def test_lp_rounding_backend_equivalence(pair):
    serial, threaded = pair
    inst = euclidean_instance(10, 40, seed=5)
    primal = solve_primal(inst)
    a = parallel_lp_rounding(inst, primal, epsilon=0.1, machine=serial)
    b = parallel_lp_rounding(inst, primal, epsilon=0.1, machine=threaded)
    assert np.array_equal(a.opened, b.opened)
    assert a.cost == pytest.approx(b.cost)
    assert serial.ledger.work == pytest.approx(threaded.ledger.work)


def test_kmedian_backend_equivalence(pair):
    serial, threaded = pair
    inst = euclidean_clustering(40, 4, seed=5)
    a = parallel_kmedian(inst, epsilon=0.3, machine=serial)
    b = parallel_kmedian(inst, epsilon=0.3, machine=threaded)
    assert np.array_equal(a.centers, b.centers)
    assert a.cost == pytest.approx(b.cost)


def test_kmeans_backend_equivalence(pair):
    serial, threaded = pair
    inst = euclidean_clustering(36, 3, seed=6)
    a = parallel_kmeans(inst, epsilon=0.3, machine=serial)
    b = parallel_kmeans(inst, epsilon=0.3, machine=threaded)
    assert np.array_equal(a.centers, b.centers)


def test_fl_local_search_backend_equivalence(pair):
    serial, threaded = pair
    inst = euclidean_instance(9, 30, seed=7)
    a = parallel_fl_local_search(inst, epsilon=0.1, machine=serial)
    b = parallel_fl_local_search(inst, epsilon=0.1, machine=threaded)
    assert np.array_equal(a.opened, b.opened)
    assert a.extra["moves"] == b.extra["moves"]


def test_lagrangian_backend_equivalence(pair):
    serial, threaded = pair
    inst = euclidean_clustering(25, 3, seed=8)
    a = parallel_kmedian_lagrangian(inst, epsilon=0.2, machine=serial, max_probes=10)
    b = parallel_kmedian_lagrangian(inst, epsilon=0.2, machine=threaded, max_probes=10)
    assert np.array_equal(a.centers, b.centers)
    assert [p["lambda"] for p in a.extra["probes"]] == [
        p["lambda"] for p in b.extra["probes"]
    ]


def test_depth_charges_backend_independent(pair):
    serial, threaded = pair
    inst = euclidean_instance(10, 40, seed=9)
    primal = solve_primal(inst)
    parallel_lp_rounding(inst, primal, epsilon=0.1, machine=serial)
    parallel_lp_rounding(inst, primal, epsilon=0.1, machine=threaded)
    assert serial.ledger.depth == pytest.approx(threaded.ledger.depth)
    assert serial.ledger.cache == pytest.approx(threaded.ledger.cache)


# -- PR-2 parity gate: byte-identical across serial/thread/process ------------

BACKEND_NAMES = ("serial", "thread", "process")


@pytest.fixture(scope="module")
def backend_set():
    """One pool per backend for the whole module (machines share them)."""
    backends = {
        "serial": SerialBackend(),
        "thread": ThreadBackend(2, grain=8),
        "process": ProcessBackend(2, grain=64),
    }
    yield backends
    for backend in backends.values():
        backend.close()


def _sweep(backend_set, run):
    """Run ``run(machine)`` once per backend on identically seeded
    machines; return {name: (result, ledger_totals)}."""
    out = {}
    for name in BACKEND_NAMES:
        machine = PramMachine(backend=backend_set[name], seed=123)
        result = run(machine)
        ledger = machine.ledger
        out[name] = (result, (ledger.work, ledger.depth, ledger.cache))
    return out


def _assert_all_equal(results, check):
    ref_result, ref_costs = results["serial"]
    for name in BACKEND_NAMES[1:]:
        result, costs = results[name]
        check(ref_result, result)
        assert costs == ref_costs, f"ledger charges drifted on {name}"


@pytest.mark.parametrize("compaction", [False, True], ids=["dense", "compacted"])
def test_greedy_byte_identical_across_backends(backend_set, compaction):
    inst = euclidean_instance(16, 48, seed=5)
    results = _sweep(
        backend_set,
        lambda m: parallel_greedy(inst, epsilon=0.1, machine=m, compaction=compaction),
    )

    def check(a, b):
        assert np.array_equal(a.opened, b.opened)
        assert a.cost == b.cost
        assert np.array_equal(a.alpha, b.alpha)
        assert a.extra["tau_trace"] == b.extra["tau_trace"]
        assert a.rounds == b.rounds

    _assert_all_equal(results, check)


@pytest.mark.parametrize("compaction", [False, True], ids=["dense", "compacted"])
def test_primal_dual_byte_identical_across_backends(backend_set, compaction):
    inst = euclidean_instance(16, 48, seed=6)
    results = _sweep(
        backend_set,
        lambda m: parallel_primal_dual(inst, epsilon=0.1, machine=m, compaction=compaction),
    )

    def check(a, b):
        assert np.array_equal(a.opened, b.opened)
        assert a.cost == b.cost
        assert np.array_equal(a.alpha, b.alpha)
        assert np.array_equal(a.extra["H"], b.extra["H"])
        assert np.array_equal(a.extra["F0"], b.extra["F0"])
        assert np.array_equal(a.extra["F_T"], b.extra["F_T"])
        assert np.array_equal(a.extra["I"], b.extra["I"])
        assert a.rounds == b.rounds

    _assert_all_equal(results, check)


@pytest.mark.parametrize("compaction", [False, True], ids=["dense", "compacted"])
def test_maxdom_byte_identical_across_backends(backend_set, compaction):
    rng = np.random.default_rng(2)
    A = np.triu(rng.random((40, 40)) < 0.15, 1)
    A = A | A.T
    results = _sweep(
        backend_set, lambda m: max_dominator_set(A, m, compaction=compaction)
    )
    _assert_all_equal(results, lambda a, b: np.testing.assert_array_equal(a, b))


@pytest.mark.parametrize("compaction", [False, True], ids=["dense", "compacted"])
def test_maxudom_byte_identical_across_backends(backend_set, compaction):
    rng = np.random.default_rng(3)
    B = rng.random((30, 18)) < 0.25
    cand = rng.random(30) < 0.6
    results = _sweep(
        backend_set,
        lambda m: max_u_dominator_set(B, m, candidates=cand, compaction=compaction),
    )
    _assert_all_equal(results, lambda a, b: np.testing.assert_array_equal(a, b))


def test_maxdom_sparse_byte_identical_across_backends(backend_set):
    rng = np.random.default_rng(4)
    A = np.triu(rng.random((50, 50)) < 0.08, 1)
    A = A | A.T
    results = _sweep(backend_set, lambda m: max_dominator_set_sparse(A, m))
    _assert_all_equal(results, lambda a, b: np.testing.assert_array_equal(a, b))


def test_backend_kwarg_entry_point_parity():
    """The public backend= plumbing reaches the same results as machine=."""
    inst = euclidean_instance(10, 30, seed=9)
    via_machine = parallel_greedy(inst, epsilon=0.1, machine=PramMachine(seed=7))
    with ThreadBackend(2, grain=8) as backend:
        via_backend = parallel_greedy(
            inst, epsilon=0.1, seed=7, backend=backend
        )
    assert np.array_equal(via_machine.opened, via_backend.opened)
    assert via_machine.cost == via_backend.cost
    assert np.array_equal(via_machine.alpha, via_backend.alpha)
