"""Backend-independence sweep: every algorithm, serial vs threaded.

The execution backend must never change results or model charges —
only wall-clock time. test_cross_algorithm covers greedy/primal–dual/
k-center; this file sweeps the remaining algorithms and the extension
modules, with a tiny thread grain so the parallel code paths really
execute at test sizes.
"""

import numpy as np
import pytest

from repro import PramMachine, ThreadBackend
from repro.core.fl_local_search import parallel_fl_local_search
from repro.core.kmedian_lagrangian import parallel_kmedian_lagrangian
from repro.core.local_search import parallel_kmeans, parallel_kmedian
from repro.core.lp_rounding import parallel_lp_rounding
from repro.lp.solve import solve_primal
from repro.metrics.generators import euclidean_clustering, euclidean_instance


@pytest.fixture
def pair():
    """Matched (serial, threaded) machines with identical seeds."""
    serial = PramMachine(seed=77)
    threaded = PramMachine(backend=ThreadBackend(2, grain=8), seed=77)
    yield serial, threaded
    threaded.close()


def test_lp_rounding_backend_equivalence(pair):
    serial, threaded = pair
    inst = euclidean_instance(10, 40, seed=5)
    primal = solve_primal(inst)
    a = parallel_lp_rounding(inst, primal, epsilon=0.1, machine=serial)
    b = parallel_lp_rounding(inst, primal, epsilon=0.1, machine=threaded)
    assert np.array_equal(a.opened, b.opened)
    assert a.cost == pytest.approx(b.cost)
    assert serial.ledger.work == pytest.approx(threaded.ledger.work)


def test_kmedian_backend_equivalence(pair):
    serial, threaded = pair
    inst = euclidean_clustering(40, 4, seed=5)
    a = parallel_kmedian(inst, epsilon=0.3, machine=serial)
    b = parallel_kmedian(inst, epsilon=0.3, machine=threaded)
    assert np.array_equal(a.centers, b.centers)
    assert a.cost == pytest.approx(b.cost)


def test_kmeans_backend_equivalence(pair):
    serial, threaded = pair
    inst = euclidean_clustering(36, 3, seed=6)
    a = parallel_kmeans(inst, epsilon=0.3, machine=serial)
    b = parallel_kmeans(inst, epsilon=0.3, machine=threaded)
    assert np.array_equal(a.centers, b.centers)


def test_fl_local_search_backend_equivalence(pair):
    serial, threaded = pair
    inst = euclidean_instance(9, 30, seed=7)
    a = parallel_fl_local_search(inst, epsilon=0.1, machine=serial)
    b = parallel_fl_local_search(inst, epsilon=0.1, machine=threaded)
    assert np.array_equal(a.opened, b.opened)
    assert a.extra["moves"] == b.extra["moves"]


def test_lagrangian_backend_equivalence(pair):
    serial, threaded = pair
    inst = euclidean_clustering(25, 3, seed=8)
    a = parallel_kmedian_lagrangian(inst, epsilon=0.2, machine=serial, max_probes=10)
    b = parallel_kmedian_lagrangian(inst, epsilon=0.2, machine=threaded, max_probes=10)
    assert np.array_equal(a.centers, b.centers)
    assert [p["lambda"] for p in a.extra["probes"]] == [
        p["lambda"] for p in b.extra["probes"]
    ]


def test_depth_charges_backend_independent(pair):
    serial, threaded = pair
    inst = euclidean_instance(10, 40, seed=9)
    primal = solve_primal(inst)
    parallel_lp_rounding(inst, primal, epsilon=0.1, machine=serial)
    parallel_lp_rounding(inst, primal, epsilon=0.1, machine=threaded)
    assert serial.ledger.depth == pytest.approx(threaded.ledger.depth)
    assert serial.ledger.cache == pytest.approx(threaded.ledger.cache)
