"""Sparse-vs-dense equivalence suite (the PR-3 parity gate).

On dense-representable instances (full CSR, no finite fallback) the
sparse greedy and primal–dual paths must return **byte-identical**
seeded solutions to the dense paths — opened set, cost, duals, traces,
and round counters — on all three execution backends. The sparse
``MaxUDom`` must match the dense one selection-for-selection.
"""

import numpy as np
import pytest

from repro import PramMachine, ProcessBackend, SerialBackend, ThreadBackend
from repro.core.dominator import max_u_dominator_set
from repro.core.dominator_sparse import max_u_dominator_set_sparse
from repro.core.greedy import parallel_greedy
from repro.core.primal_dual import parallel_primal_dual
from repro.metrics.generators import clustered_instance, euclidean_instance
from repro.metrics.sparse import SparseFacilityLocationInstance

BACKEND_NAMES = ("serial", "thread", "process")


@pytest.fixture(scope="module")
def backend_set():
    backends = {
        "serial": SerialBackend(),
        "thread": ThreadBackend(2, grain=8),
        "process": ProcessBackend(2, grain=64),
    }
    yield backends
    for backend in backends.values():
        backend.close()


def _greedy_check(a, b):
    assert np.array_equal(a.opened, b.opened)
    assert a.cost == b.cost
    assert np.array_equal(a.alpha, b.alpha)
    assert a.extra["tau_trace"] == b.extra["tau_trace"]
    assert a.extra["gamma"] == b.extra["gamma"]
    assert a.extra["preprocessed_clients"] == b.extra["preprocessed_clients"]
    assert a.rounds == b.rounds


def _pd_check(a, b):
    assert np.array_equal(a.opened, b.opened)
    assert a.cost == b.cost
    assert np.array_equal(a.alpha, b.alpha)
    H_b = b.extra["H"]
    H_b = H_b.toarray() if hasattr(H_b, "toarray") else H_b
    H_a = a.extra["H"]
    H_a = H_a.toarray() if hasattr(H_a, "toarray") else H_a
    assert np.array_equal(H_a, H_b)
    assert np.array_equal(a.extra["F0"], b.extra["F0"])
    assert np.array_equal(a.extra["F_T"], b.extra["F_T"])
    assert np.array_equal(a.extra["I"], b.extra["I"])
    assert a.rounds == b.rounds


WORKLOADS = [
    ("euclid-16x48", lambda: euclidean_instance(16, 48, seed=5)),
    ("euclid-12x40", lambda: euclidean_instance(12, 40, seed=9)),
    ("clustered-10x50", lambda: clustered_instance(10, 50, n_clusters=4, seed=2)),
]


@pytest.mark.parametrize("name,make", WORKLOADS, ids=[w[0] for w in WORKLOADS])
@pytest.mark.parametrize("compaction", [False, True], ids=["dense", "compacted"])
def test_sparse_greedy_matches_dense_paths(name, make, compaction):
    dense = make()
    sp = SparseFacilityLocationInstance.from_instance(dense)
    a = parallel_greedy(dense, epsilon=0.1, machine=PramMachine(seed=123), compaction=compaction)
    b = parallel_greedy(sp, epsilon=0.1, machine=PramMachine(seed=123))
    _greedy_check(a, b)


@pytest.mark.parametrize("name,make", WORKLOADS, ids=[w[0] for w in WORKLOADS])
@pytest.mark.parametrize("compaction", [False, True], ids=["dense", "compacted"])
def test_sparse_primal_dual_matches_dense_paths(name, make, compaction):
    dense = make()
    sp = SparseFacilityLocationInstance.from_instance(dense)
    a = parallel_primal_dual(
        dense, epsilon=0.1, machine=PramMachine(seed=123), compaction=compaction
    )
    b = parallel_primal_dual(sp, epsilon=0.1, machine=PramMachine(seed=123))
    _pd_check(a, b)


@pytest.mark.parametrize("algorithm", [parallel_greedy, parallel_primal_dual])
def test_sparse_paths_byte_identical_across_backends(backend_set, algorithm):
    """Seeded sparse runs must agree byte-for-byte on serial, thread,
    and process backends — charges included."""
    dense = euclidean_instance(16, 48, seed=5)
    sp = SparseFacilityLocationInstance.from_instance(dense)
    results = {}
    for name in BACKEND_NAMES:
        machine = PramMachine(backend=backend_set[name], seed=123)
        sol = algorithm(sp, epsilon=0.1, machine=machine)
        ledger = machine.ledger
        results[name] = (sol, (ledger.work, ledger.depth, ledger.cache))
    ref_sol, ref_costs = results["serial"]
    check = _greedy_check if algorithm is parallel_greedy else _pd_check
    for name in BACKEND_NAMES[1:]:
        sol, costs = results[name]
        check(ref_sol, sol)
        assert costs == ref_costs, f"ledger charges drifted on {name}"


@pytest.mark.parametrize("algorithm", [parallel_greedy, parallel_primal_dual])
def test_sparse_equals_dense_across_backends(backend_set, algorithm):
    """The acceptance gate: sparse solution == dense solution on every
    backend, for both algorithms."""
    dense = euclidean_instance(14, 44, seed=7)
    sp = SparseFacilityLocationInstance.from_instance(dense)
    check = _greedy_check if algorithm is parallel_greedy else _pd_check
    for name in BACKEND_NAMES:
        a = algorithm(
            dense, epsilon=0.1, machine=PramMachine(backend=backend_set[name], seed=123)
        )
        b = algorithm(
            sp, epsilon=0.1, machine=PramMachine(backend=backend_set[name], seed=123)
        )
        check(a, b)


def test_sparse_maxudom_byte_identical_across_backends(backend_set):
    rng = np.random.default_rng(3)
    B = rng.random((30, 18)) < 0.25
    cand = rng.random(30) < 0.6
    results = {}
    for name in BACKEND_NAMES:
        machine = PramMachine(backend=backend_set[name], seed=123)
        results[name] = max_u_dominator_set_sparse(B, machine, candidates=cand)
    for name in BACKEND_NAMES[1:]:
        np.testing.assert_array_equal(results["serial"], results[name])


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
@pytest.mark.parametrize("compaction", [False, True], ids=["dense", "compacted"])
def test_sparse_maxudom_matches_dense(seed, compaction):
    rng = np.random.default_rng(seed)
    B = rng.random((25, 15)) < 0.3
    cand = rng.random(25) < 0.7
    a = max_u_dominator_set(
        B, PramMachine(seed=99), candidates=cand, compaction=compaction
    )
    b = max_u_dominator_set_sparse(B, PramMachine(seed=99), candidates=cand)
    np.testing.assert_array_equal(a, b)


def test_preprocessing_ablation_parity():
    """preprocess=False must also agree between sparse and dense."""
    dense = euclidean_instance(10, 30, seed=11)
    sp = SparseFacilityLocationInstance.from_instance(dense)
    a = parallel_greedy(
        dense, epsilon=0.2, machine=PramMachine(seed=5), preprocess=False
    )
    b = parallel_greedy(sp, epsilon=0.2, machine=PramMachine(seed=5), preprocess=False)
    _greedy_check(a, b)
