"""Sparse-vs-dense equivalence suite (the PR-3/PR-4 parity gate).

On dense-representable instances (full CSR, no finite fallback) the
sparse execution paths must return **byte-identical** seeded solutions
to the dense paths on all three execution backends:

* PR 3: greedy and primal–dual facility location — opened set, cost,
  duals, traces, and round counters; sparse ``MaxUDom``
  selection-for-selection.
* PR 4: the clustering stack — k-center (centers, radius, threshold,
  probe schedule), §7 local search for k-median/k-means (centers,
  final and warm-start costs, swap sequence, round count), and the
  Lagrangian k-median (centers, cost, full λ-probe trace).
"""

import numpy as np
import pytest

from repro import PramMachine, ProcessBackend, SerialBackend, ThreadBackend
from repro.core.dominator import max_u_dominator_set
from repro.core.dominator_sparse import max_u_dominator_set_sparse
from repro.core.greedy import parallel_greedy
from repro.core.kcenter import parallel_kcenter
from repro.core.kmedian_lagrangian import parallel_kmedian_lagrangian
from repro.core.local_search import parallel_local_search
from repro.core.primal_dual import parallel_primal_dual
from repro.metrics.generators import (
    clustered_clustering,
    clustered_instance,
    euclidean_clustering,
    euclidean_instance,
)
from repro.metrics.sparse import (
    SparseClusteringInstance,
    SparseFacilityLocationInstance,
)

BACKEND_NAMES = ("serial", "thread", "process")


@pytest.fixture(scope="module")
def backend_set():
    backends = {
        "serial": SerialBackend(),
        "thread": ThreadBackend(2, grain=8),
        "process": ProcessBackend(2, grain=64),
    }
    yield backends
    for backend in backends.values():
        backend.close()


def _greedy_check(a, b):
    assert np.array_equal(a.opened, b.opened)
    assert a.cost == b.cost
    assert np.array_equal(a.alpha, b.alpha)
    assert a.extra["tau_trace"] == b.extra["tau_trace"]
    assert a.extra["gamma"] == b.extra["gamma"]
    assert a.extra["preprocessed_clients"] == b.extra["preprocessed_clients"]
    assert a.rounds == b.rounds


def _pd_check(a, b):
    assert np.array_equal(a.opened, b.opened)
    assert a.cost == b.cost
    assert np.array_equal(a.alpha, b.alpha)
    H_b = b.extra["H"]
    H_b = H_b.toarray() if hasattr(H_b, "toarray") else H_b
    H_a = a.extra["H"]
    H_a = H_a.toarray() if hasattr(H_a, "toarray") else H_a
    assert np.array_equal(H_a, H_b)
    assert np.array_equal(a.extra["F0"], b.extra["F0"])
    assert np.array_equal(a.extra["F_T"], b.extra["F_T"])
    assert np.array_equal(a.extra["I"], b.extra["I"])
    assert a.rounds == b.rounds


WORKLOADS = [
    ("euclid-16x48", lambda: euclidean_instance(16, 48, seed=5)),
    ("euclid-12x40", lambda: euclidean_instance(12, 40, seed=9)),
    ("clustered-10x50", lambda: clustered_instance(10, 50, n_clusters=4, seed=2)),
]


@pytest.mark.parametrize("name,make", WORKLOADS, ids=[w[0] for w in WORKLOADS])
@pytest.mark.parametrize("compaction", [False, True], ids=["dense", "compacted"])
def test_sparse_greedy_matches_dense_paths(name, make, compaction):
    dense = make()
    sp = SparseFacilityLocationInstance.from_instance(dense)
    a = parallel_greedy(dense, epsilon=0.1, machine=PramMachine(seed=123), compaction=compaction)
    b = parallel_greedy(sp, epsilon=0.1, machine=PramMachine(seed=123))
    _greedy_check(a, b)


@pytest.mark.parametrize("name,make", WORKLOADS, ids=[w[0] for w in WORKLOADS])
@pytest.mark.parametrize("compaction", [False, True], ids=["dense", "compacted"])
def test_sparse_primal_dual_matches_dense_paths(name, make, compaction):
    dense = make()
    sp = SparseFacilityLocationInstance.from_instance(dense)
    a = parallel_primal_dual(
        dense, epsilon=0.1, machine=PramMachine(seed=123), compaction=compaction
    )
    b = parallel_primal_dual(sp, epsilon=0.1, machine=PramMachine(seed=123))
    _pd_check(a, b)


@pytest.mark.parametrize("algorithm", [parallel_greedy, parallel_primal_dual])
def test_sparse_paths_byte_identical_across_backends(backend_set, algorithm):
    """Seeded sparse runs must agree byte-for-byte on serial, thread,
    and process backends — charges included."""
    dense = euclidean_instance(16, 48, seed=5)
    sp = SparseFacilityLocationInstance.from_instance(dense)
    results = {}
    for name in BACKEND_NAMES:
        machine = PramMachine(backend=backend_set[name], seed=123)
        sol = algorithm(sp, epsilon=0.1, machine=machine)
        ledger = machine.ledger
        results[name] = (sol, (ledger.work, ledger.depth, ledger.cache))
    ref_sol, ref_costs = results["serial"]
    check = _greedy_check if algorithm is parallel_greedy else _pd_check
    for name in BACKEND_NAMES[1:]:
        sol, costs = results[name]
        check(ref_sol, sol)
        assert costs == ref_costs, f"ledger charges drifted on {name}"


@pytest.mark.parametrize("algorithm", [parallel_greedy, parallel_primal_dual])
def test_sparse_equals_dense_across_backends(backend_set, algorithm):
    """The acceptance gate: sparse solution == dense solution on every
    backend, for both algorithms."""
    dense = euclidean_instance(14, 44, seed=7)
    sp = SparseFacilityLocationInstance.from_instance(dense)
    check = _greedy_check if algorithm is parallel_greedy else _pd_check
    for name in BACKEND_NAMES:
        a = algorithm(
            dense, epsilon=0.1, machine=PramMachine(backend=backend_set[name], seed=123)
        )
        b = algorithm(
            sp, epsilon=0.1, machine=PramMachine(backend=backend_set[name], seed=123)
        )
        check(a, b)


def test_sparse_maxudom_byte_identical_across_backends(backend_set):
    rng = np.random.default_rng(3)
    B = rng.random((30, 18)) < 0.25
    cand = rng.random(30) < 0.6
    results = {}
    for name in BACKEND_NAMES:
        machine = PramMachine(backend=backend_set[name], seed=123)
        results[name] = max_u_dominator_set_sparse(B, machine, candidates=cand)
    for name in BACKEND_NAMES[1:]:
        np.testing.assert_array_equal(results["serial"], results[name])


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
@pytest.mark.parametrize("compaction", [False, True], ids=["dense", "compacted"])
def test_sparse_maxudom_matches_dense(seed, compaction):
    rng = np.random.default_rng(seed)
    B = rng.random((25, 15)) < 0.3
    cand = rng.random(25) < 0.7
    a = max_u_dominator_set(
        B, PramMachine(seed=99), candidates=cand, compaction=compaction
    )
    b = max_u_dominator_set_sparse(B, PramMachine(seed=99), candidates=cand)
    np.testing.assert_array_equal(a, b)


def test_preprocessing_ablation_parity():
    """preprocess=False must also agree between sparse and dense."""
    dense = euclidean_instance(10, 30, seed=11)
    sp = SparseFacilityLocationInstance.from_instance(dense)
    a = parallel_greedy(
        dense, epsilon=0.2, machine=PramMachine(seed=5), preprocess=False
    )
    b = parallel_greedy(sp, epsilon=0.2, machine=PramMachine(seed=5), preprocess=False)
    _greedy_check(a, b)


# --------------------------------------------------------------------------
# PR 4: the sparse clustering stack (§6.1 k-center, §7 local search,
# Lagrangian k-median) against the dense paths.
# --------------------------------------------------------------------------

CLUSTER_WORKLOADS = [
    ("euclid-n30-k3", lambda: euclidean_clustering(30, 3, seed=5)),
    ("euclid-n28-k4", lambda: euclidean_clustering(28, 4, seed=9)),
    ("blobs-n30-k3", lambda: clustered_clustering(30, 3, seed=2)),
]


def _kcenter_check(a, b):
    assert np.array_equal(a.centers, b.centers)
    assert a.cost == b.cost
    assert a.extra["threshold"] == b.extra["threshold"]
    assert a.extra["probes"] == b.extra["probes"]
    assert a.extra["n_thresholds"] == b.extra["n_thresholds"]


def _local_search_check(a, b, *, float_rel=1e-12):
    """Byte-identical decisions, ulp-tolerant float traces: centers,
    swap pairs, round counts, and the recomputed final cost must match
    exactly; the summed traces (warm-start cost, swap objective values)
    may reassociate by an ulp — between the decomposed sparse batch and
    the dense one, and across pool backends — the caveat already
    documented on every sum-reduction."""
    assert np.array_equal(a.centers, b.centers)
    assert a.cost == b.cost
    assert a.extra["initial_cost"] == pytest.approx(
        b.extra["initial_cost"], rel=float_rel, abs=0.0
    )
    assert [(i, j) for i, j, _ in a.extra["swaps"]] == [
        (i, j) for i, j, _ in b.extra["swaps"]
    ]
    for (_, _, va), (_, _, vb) in zip(a.extra["swaps"], b.extra["swaps"]):
        assert va == pytest.approx(vb, rel=float_rel, abs=0.0)
    assert a.rounds["local_search"] == b.rounds["local_search"]


def _lagrangian_check(a, b):
    assert np.array_equal(a.centers, b.centers)
    assert a.cost == b.cost
    assert [(p["lambda"], p["n_open"]) for p in a.extra["probes"]] == [
        (p["lambda"], p["n_open"]) for p in b.extra["probes"]
    ]


@pytest.mark.parametrize("name,make", CLUSTER_WORKLOADS, ids=[w[0] for w in CLUSTER_WORKLOADS])
def test_sparse_kcenter_matches_dense(name, make):
    dense = make()
    sp = SparseClusteringInstance.from_instance(dense)
    a = parallel_kcenter(dense, machine=PramMachine(seed=123))
    b = parallel_kcenter(sp, machine=PramMachine(seed=123))
    _kcenter_check(a, b)


@pytest.mark.parametrize("objective", ["kmedian", "kmeans"])
@pytest.mark.parametrize("name,make", CLUSTER_WORKLOADS, ids=[w[0] for w in CLUSTER_WORKLOADS])
def test_sparse_local_search_matches_dense(name, make, objective):
    dense = make()
    sp = SparseClusteringInstance.from_instance(dense)
    a = parallel_local_search(dense, objective, epsilon=0.3, machine=PramMachine(seed=123))
    b = parallel_local_search(sp, objective, epsilon=0.3, machine=PramMachine(seed=123))
    _local_search_check(a, b)


@pytest.mark.parametrize("name,make", CLUSTER_WORKLOADS, ids=[w[0] for w in CLUSTER_WORKLOADS])
def test_sparse_lagrangian_matches_dense(name, make):
    dense = make()
    sp = SparseClusteringInstance.from_instance(dense)
    a = parallel_kmedian_lagrangian(
        dense, epsilon=0.2, machine=PramMachine(seed=123), max_probes=20
    )
    b = parallel_kmedian_lagrangian(
        sp, epsilon=0.2, machine=PramMachine(seed=123), max_probes=20
    )
    _lagrangian_check(a, b)


_CLUSTER_ALGORITHMS = {
    "kcenter": (lambda inst, m: parallel_kcenter(inst, machine=m), _kcenter_check),
    "kmedian": (
        lambda inst, m: parallel_local_search(inst, "kmedian", epsilon=0.3, machine=m),
        _local_search_check,
    ),
    "kmeans": (
        lambda inst, m: parallel_local_search(inst, "kmeans", epsilon=0.3, machine=m),
        _local_search_check,
    ),
    "lagrangian": (
        lambda inst, m: parallel_kmedian_lagrangian(
            inst, epsilon=0.2, machine=m, max_probes=15
        ),
        _lagrangian_check,
    ),
}


@pytest.mark.parametrize("algorithm", sorted(_CLUSTER_ALGORITHMS))
def test_sparse_clustering_equals_dense_across_backends(backend_set, algorithm):
    """The PR-4 acceptance gate: seeded sparse clustering solutions are
    byte-identical to the dense paths on serial, thread, and process."""
    run, check = _CLUSTER_ALGORITHMS[algorithm]
    dense = euclidean_clustering(30, 3, seed=5)
    sp = SparseClusteringInstance.from_instance(dense)
    for name in BACKEND_NAMES:
        a = run(dense, PramMachine(backend=backend_set[name], seed=123))
        b = run(sp, PramMachine(backend=backend_set[name], seed=123))
        check(a, b)


@pytest.mark.parametrize("algorithm", sorted(_CLUSTER_ALGORITHMS))
def test_sparse_clustering_byte_identical_across_backends(backend_set, algorithm):
    """Seeded sparse clustering runs must agree across serial, thread,
    and process — ledger charges included, floats to the ulp."""
    run, check = _CLUSTER_ALGORITHMS[algorithm]
    dense = euclidean_clustering(28, 4, seed=9)
    sp = SparseClusteringInstance.from_instance(dense)
    results = {}
    for name in BACKEND_NAMES:
        machine = PramMachine(backend=backend_set[name], seed=123)
        sol = run(sp, machine)
        ledger = machine.ledger
        results[name] = (sol, (ledger.work, ledger.depth, ledger.cache))
    ref_sol, ref_costs = results["serial"]
    for name in BACKEND_NAMES[1:]:
        sol, costs = results[name]
        check(ref_sol, sol)
        assert costs == ref_costs, f"ledger charges drifted on {name}"


@pytest.mark.parametrize("algorithm", sorted(_CLUSTER_ALGORITHMS))
def test_truncated_sparse_deterministic_across_backends(backend_set, algorithm):
    """kNN truncations (genuinely sparse, finite fallback) must return
    the same seeded solution on every backend."""
    from repro.metrics.sparse import knn_sparsify

    run, check = _CLUSTER_ALGORITHMS[algorithm]
    sp = knn_sparsify(euclidean_clustering(30, 3, seed=5), 18)
    ref = run(sp, PramMachine(backend=backend_set["serial"], seed=123))
    for name in BACKEND_NAMES[1:]:
        check(ref, run(sp, PramMachine(backend=backend_set[name], seed=123)))
