"""Frontier compaction must not change a single bit of any solution.

The compacted execution paths (``compaction=True``) re-derive every
per-round quantity from frontier submatrices; these tests run dense and
compacted seeded side-by-side on random *and* adversarial workloads and
assert the opened sets, costs, dual vectors — and for primal–dual the
full contribution graph ``H`` — are identical, not merely close.
"""

import numpy as np
import pytest

from repro.core.dominator import max_dominator_set, max_u_dominator_set
from repro.core.dominator_sparse import max_dominator_set_sparse
from repro.core.frontier import AUTO_COMPACTION_MIN_SIZE, resolve_compaction
from repro.core.greedy import parallel_greedy
from repro.core.primal_dual import parallel_primal_dual
from repro.errors import InvalidParameterError
from repro.metrics.generators import (
    clustered_instance,
    euclidean_instance,
    random_metric_instance,
    star_instance,
    two_scale_instance,
)
from repro.pram.machine import PramMachine

# Random + adversarial: stars tie every rim facility exactly, two-scale
# stresses the preprocessing floor, the random metric is non-geometric.
WORKLOADS = [
    ("euclid-8x24", lambda: euclidean_instance(8, 24, seed=7)),
    ("euclid-40x160", lambda: euclidean_instance(40, 160, seed=9)),
    ("clustered-16x100", lambda: clustered_instance(16, 100, n_clusters=5, seed=3)),
    ("random-metric-9x27", lambda: random_metric_instance(9, 27, seed=31)),
    ("star-12", lambda: star_instance(12, seed=41)),
    ("two-scale-4x10", lambda: two_scale_instance(4, 10, seed=51)),
]


def _pair(fn, inst, **kwargs):
    dense = fn(inst, machine=PramMachine(seed=123), compaction=False, **kwargs)
    compacted = fn(inst, machine=PramMachine(seed=123), compaction=True, **kwargs)
    return dense, compacted


@pytest.mark.parametrize("name,make", WORKLOADS, ids=[w[0] for w in WORKLOADS])
@pytest.mark.parametrize("eps", [0.1, 0.5])
@pytest.mark.parametrize("preprocess", [True, False])
class TestGreedyEquivalence:
    def test_identical_solution(self, name, make, eps, preprocess):
        a, b = _pair(parallel_greedy, make(), epsilon=eps, preprocess=preprocess)
        assert np.array_equal(a.opened, b.opened)
        assert a.cost == b.cost
        assert np.array_equal(a.alpha, b.alpha)
        assert a.extra["tau_trace"] == b.extra["tau_trace"]
        assert a.rounds == b.rounds


@pytest.mark.parametrize("name,make", WORKLOADS, ids=[w[0] for w in WORKLOADS])
@pytest.mark.parametrize("eps", [0.1, 0.5])
@pytest.mark.parametrize("preprocess", [True, False])
class TestPrimalDualEquivalence:
    def test_identical_solution(self, name, make, eps, preprocess):
        a, b = _pair(parallel_primal_dual, make(), epsilon=eps, preprocess=preprocess)
        assert np.array_equal(a.opened, b.opened)
        assert a.cost == b.cost
        assert np.array_equal(a.alpha, b.alpha)
        assert np.array_equal(a.extra["H"], b.extra["H"])
        assert np.array_equal(a.extra["F0"], b.extra["F0"])
        assert np.array_equal(a.extra["F_T"], b.extra["F_T"])
        assert np.array_equal(a.extra["I"], b.extra["I"])
        assert a.rounds == b.rounds


class TestCompactionChargesLess:
    """The point of the refactor: charged work tracks the frontier."""

    def test_greedy_work_shrinks(self):
        inst = euclidean_instance(60, 240, seed=2)
        md, mc = PramMachine(seed=5), PramMachine(seed=5)
        parallel_greedy(inst, epsilon=0.1, machine=md, compaction=False)
        parallel_greedy(inst, epsilon=0.1, machine=mc, compaction=True)
        assert mc.ledger.work < md.ledger.work

    def test_primal_dual_work_shrinks(self):
        inst = euclidean_instance(60, 240, seed=2)
        md, mc = PramMachine(seed=5), PramMachine(seed=5)
        parallel_primal_dual(inst, epsilon=0.1, machine=md, compaction=False)
        parallel_primal_dual(inst, epsilon=0.1, machine=mc, compaction=True)
        assert mc.ledger.work < md.ledger.work


class TestDominatorEquivalence:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("p", [0.05, 0.2, 0.6])
    def test_maxdom_identical(self, seed, p):
        rng = np.random.default_rng(seed)
        A = np.triu(rng.random((40, 40)) < p, 1)
        A = A | A.T
        a = max_dominator_set(A, PramMachine(seed=seed), compaction=False)
        b = max_dominator_set(A, PramMachine(seed=seed), compaction=True)
        assert np.array_equal(a, b)

    @pytest.mark.parametrize("seed", range(6))
    def test_maxudom_identical_with_candidates(self, seed):
        rng = np.random.default_rng(seed)
        B = rng.random((30, 18)) < 0.25
        cand = rng.random(30) < 0.6
        a = max_u_dominator_set(B, PramMachine(seed=seed), candidates=cand, compaction=False)
        b = max_u_dominator_set(B, PramMachine(seed=seed), candidates=cand, compaction=True)
        assert np.array_equal(a, b)

    @pytest.mark.parametrize("seed", range(6))
    def test_maxdom_sparse_identical(self, seed):
        rng = np.random.default_rng(seed)
        A = np.triu(rng.random((60, 60)) < 0.08, 1)
        A = A | A.T
        a = max_dominator_set_sparse(A, PramMachine(seed=seed), compaction=False)
        b = max_dominator_set_sparse(A, PramMachine(seed=seed), compaction=True)
        c = max_dominator_set(A, PramMachine(seed=seed), compaction=True)
        assert np.array_equal(a, b)
        assert np.array_equal(a, c)

    def test_maxdom_compacted_charges_less(self):
        rng = np.random.default_rng(1)
        A = np.triu(rng.random((80, 80)) < 0.1, 1)
        A = A | A.T
        md, mc = PramMachine(seed=4), PramMachine(seed=4)
        max_dominator_set(A, md, compaction=False)
        max_dominator_set(A, mc, compaction=True)
        assert mc.ledger.work < md.ledger.work


class TestResolvePolicy:
    def test_explicit_modes(self):
        assert resolve_compaction(True, 1) is True
        assert resolve_compaction(False, 10**9) is False

    def test_numpy_bools_accepted(self):
        """Regression: numpy bools arise naturally from comparisons like
        ``n_f * n_c > threshold`` and must behave exactly like built-in
        bools (the old identity check rejected them)."""
        assert resolve_compaction(np.True_, 1) is True
        assert resolve_compaction(np.False_, 10**9) is False
        # the natural call site: a numpy scalar comparison
        derived = np.int64(100) * np.int64(100) > 5000
        assert isinstance(derived, np.bool_)
        assert resolve_compaction(derived, 1) is True

    def test_numpy_bool_compaction_end_to_end(self):
        inst = euclidean_instance(6, 18, seed=2)
        plain = parallel_greedy(inst, epsilon=0.2, seed=3, compaction=True)
        coerced = parallel_greedy(
            inst, epsilon=0.2, seed=3, compaction=np.bool_(inst.m > 0)
        )
        assert np.array_equal(plain.opened, coerced.opened)
        assert plain.cost == coerced.cost

    def test_auto_threshold(self):
        assert resolve_compaction("auto", AUTO_COMPACTION_MIN_SIZE) is True
        assert resolve_compaction("auto", AUTO_COMPACTION_MIN_SIZE - 1) is False

    def test_invalid_mode_rejected(self):
        with pytest.raises(InvalidParameterError):
            resolve_compaction("yes", 10)

    def test_algorithms_reject_bad_mode(self):
        inst = euclidean_instance(4, 8, seed=0)
        with pytest.raises(InvalidParameterError):
            parallel_greedy(inst, epsilon=0.1, seed=0, compaction="sometimes")
        with pytest.raises(InvalidParameterError):
            parallel_primal_dual(inst, epsilon=0.1, seed=0, compaction="sometimes")
