"""Documentation contract: every public item carries a docstring.

Walks the package: every module, every name in each ``__all__``, and
every public method on public classes must be documented. This is a
release-quality gate, not a style preference — the README promises
"doc comments on every public item".
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = [
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
]


@pytest.mark.parametrize("module_name", MODULES)
def test_module_has_docstring(module_name):
    mod = importlib.import_module(module_name)
    assert mod.__doc__ and mod.__doc__.strip(), f"{module_name} lacks a module docstring"


def _public_api():
    for name in repro.__all__:
        obj = getattr(repro, name)
        if callable(obj) or inspect.isclass(obj):
            yield name, obj


@pytest.mark.parametrize("name,obj", list(_public_api()))
def test_public_item_documented(name, obj):
    assert inspect.getdoc(obj), f"repro.{name} lacks a docstring"


@pytest.mark.parametrize(
    "cls_name",
    [
        "PramMachine",
        "MetricSpace",
        "FacilityLocationInstance",
        "ClusteringInstance",
        "SparseFacilityLocationInstance",
        "SparseClusteringInstance",
        "CostLedger",
    ],
)
def test_public_methods_documented(cls_name):
    cls = getattr(repro, cls_name)
    undocumented = [
        n
        for n, member in inspect.getmembers(cls)
        if not n.startswith("_")
        and (inspect.isfunction(member) or isinstance(member, property))
        and not inspect.getdoc(member)
    ]
    assert not undocumented, f"{cls_name} methods missing docs: {undocumented}"


def test_all_modules_importable():
    for name in MODULES:
        importlib.import_module(name)
