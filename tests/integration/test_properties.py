"""Property-based integration tests over random metric instances.

Hypothesis generates instance shapes and seeds; each property is an
invariant the paper's analysis guarantees for *every* metric input —
these are the tests most likely to find mechanism bugs (threshold
comparisons, mask updates, degenerate geometry).
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.bounds import eq2_bounds
from repro.core.fl_local_search import parallel_fl_local_search
from repro.core.greedy import parallel_greedy
from repro.core.local_search import parallel_kmedian
from repro.core.lp_rounding import parallel_lp_rounding
from repro.core.primal_dual import parallel_primal_dual
from repro.lp.duality import check_dual_feasible
from repro.metrics.generators import euclidean_clustering, euclidean_instance
from repro.metrics.instance import FacilityLocationInstance
from repro.metrics.space import MetricSpace

COMMON = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

fl_shapes = st.tuples(st.integers(1, 8), st.integers(1, 16), st.integers(0, 10_000))


def random_instance(nf, nc, seed, *, zero_costs=False, duplicates=False):
    """Instance generator covering degenerate geometry on demand."""
    rng = np.random.default_rng(seed)
    pts = rng.random((nf + nc, 2))
    if duplicates and nf + nc >= 4:
        pts[1] = pts[0]
        pts[nf] = pts[0]  # a client on top of a facility
    space = MetricSpace.from_points(pts)
    f = np.zeros(nf) if zero_costs else rng.random(nf) * 2
    return FacilityLocationInstance.from_metric(
        space, np.arange(nf), nf + np.arange(nc), f
    )


@settings(**COMMON)
@given(fl_shapes, st.booleans(), st.booleans())
def test_greedy_serves_everyone_within_alpha_budget(shape, zero_costs, duplicates):
    """Lemma 4.3 (no preprocessing): cost ≤ 2(1+ε)²·Σα, on arbitrary
    shapes including zero costs and duplicate points."""
    nf, nc, seed = shape
    inst = random_instance(nf, nc, seed, zero_costs=zero_costs, duplicates=duplicates)
    eps = 0.25
    sol = parallel_greedy(inst, epsilon=eps, seed=seed, preprocess=False)
    assert sol.opened.size >= 1
    assert np.all(sol.alpha >= 0)
    assert sol.cost <= 2 * (1 + eps) ** 2 * sol.alpha.sum() * (1 + 1e-9) + 1e-12


@settings(**COMMON)
@given(fl_shapes)
def test_greedy_alpha_over_3_always_dual_feasible(shape):
    """Lemma 4.7 on random instances."""
    nf, nc, seed = shape
    inst = random_instance(nf, nc, seed)
    sol = parallel_greedy(inst, epsilon=0.25, seed=seed, preprocess=False)
    assert check_dual_feasible(inst, sol.alpha / 3.0, tol=1e-7, raise_on_fail=False)


@settings(**COMMON)
@given(fl_shapes, st.booleans())
def test_primal_dual_claim_51_always_holds(shape, duplicates):
    """Claim 5.1 with preprocessing, on arbitrary shapes."""
    nf, nc, seed = shape
    inst = random_instance(nf, nc, seed, duplicates=duplicates)
    sol = parallel_primal_dual(inst, epsilon=0.25, seed=seed, preprocess=True)
    assert check_dual_feasible(inst, sol.alpha, tol=1e-7, raise_on_fail=False)
    # Eq. (2): the dual value respects the γ-chain upper bound.
    b = eq2_bounds(inst)
    assert sol.alpha.sum() <= b.sum_gamma_j * (1 + 1e-9)


@settings(**COMMON)
@given(fl_shapes)
def test_primal_dual_eq5_lmp(shape):
    nf, nc, seed = shape
    inst = random_instance(nf, nc, seed)
    eps = 0.25
    sol = parallel_primal_dual(inst, epsilon=eps, seed=seed)
    lhs = 3 * sol.facility_cost + sol.connection_cost
    rhs = 3 * sol.extra["gamma"] / inst.m + 3 * (1 + eps) * sol.alpha.sum()
    assert lhs <= rhs * (1 + 1e-9) + 1e-12


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.tuples(st.integers(2, 6), st.integers(2, 10), st.integers(0, 10_000)))
def test_lp_rounding_claims_on_random_instances(shape):
    """Theorem 6.5 + Claim 6.4 per client, LP solved exactly per example."""
    nf, nc, seed = shape
    inst = random_instance(nf, nc, seed)
    from repro.lp.solve import solve_primal

    primal = solve_primal(inst)
    eps, a = 0.25, 1.0 / 3.0
    sol = parallel_lp_rounding(inst, primal, epsilon=eps, filter_alpha=a, seed=seed)
    assert sol.cost <= 4 * (1 + eps) * primal.value * (1 + 1e-7) + primal.value / inst.m + 1e-12
    delta = sol.extra["delta"]
    served = inst.connection_distances(sol.opened)
    normal = delta > sol.extra["theta"] / inst.m**2
    assert np.all(served[normal] <= 3 * (1 + a) * (1 + eps) * delta[normal] * (1 + 1e-7) + 1e-12)


@settings(**COMMON)
@given(fl_shapes)
def test_fl_local_search_never_worse_than_start(shape):
    nf, nc, seed = shape
    inst = random_instance(nf, nc, seed)
    sol = parallel_fl_local_search(inst, epsilon=0.3, seed=seed)
    assert sol.cost <= sol.extra["initial_cost"] * (1 + 1e-9)
    assert sol.opened.size >= 1


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(3, 20), st.data())
def test_kmedian_solution_dominates_every_singleton_swap(n, data):
    """Local optimality generalizes across random shapes: the returned
    centers beat the (1−β/k) threshold against all single swaps."""
    k = data.draw(st.integers(1, min(4, n)))
    seed = data.draw(st.integers(0, 10_000))
    inst = euclidean_clustering(n, k, seed=seed)
    eps = 0.4
    sol = parallel_kmedian(inst, epsilon=eps, seed=seed)
    assert sol.centers.size <= k
    beta = eps / (1 + eps)
    D = inst.D
    cost = sol.cost
    out = np.setdiff1d(np.arange(n), sol.centers)
    for a in range(sol.centers.size):
        rest = np.delete(sol.centers, a)
        for c in out[:5]:  # bounded spot-check per example
            trial = np.concatenate([rest, [c]])
            assert D[:, trial].min(axis=1).sum() >= (1 - beta / k) * cost * (1 - 1e-9)


@settings(**COMMON)
@given(st.integers(0, 10_000))
def test_algorithms_identical_across_repeat_runs(seed):
    """Full determinism sweep: same seed twice, three algorithms."""
    inst = euclidean_instance(5, 12, seed=seed)
    for algo in (parallel_greedy, parallel_primal_dual):
        a = algo(inst, epsilon=0.3, seed=seed)
        b = algo(inst, epsilon=0.3, seed=seed)
        assert np.array_equal(a.opened, b.opened)
        assert a.cost == b.cost
