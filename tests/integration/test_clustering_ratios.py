"""Ratio certification: the paper's clustering bounds enforced by tier-1.

On :func:`repro.bench.workloads.clustering_ratio_suite` — small enough
for exact optima via :mod:`repro.baselines.brute_force` — every solver
must sit inside its proven envelope, seeded, on every execution
backend:

* Theorem 6.1: ``parallel_kcenter ≤ 2·opt``;
* Theorem 7.1: parallel local search ``≤ (5+ε)·opt`` for k-median and
  ``≤ (81+ε)·opt`` for k-means;
* the Jain–Vazirani pipeline: ``parallel_kmedian_lagrangian ≤ 6·opt``.

The same envelopes are asserted on the full-CSR sparse instances, so
the sparse execution paths carry the theorems too, not just parity.
"""

import numpy as np
import pytest

from repro import PramMachine, SerialBackend, ThreadBackend
from repro.baselines.brute_force import (
    brute_force_kcenter,
    brute_force_kmeans,
    brute_force_kmedian,
)
from repro.bench.workloads import clustering_ratio_suite
from repro.core.kcenter import parallel_kcenter
from repro.core.kmedian_lagrangian import parallel_kmedian_lagrangian
from repro.core.local_search import parallel_kmeans, parallel_kmedian
from repro.metrics.sparse import SparseClusteringInstance

EPS = 0.5
BACKEND_NAMES = ("serial", "thread")
SUITE = clustering_ratio_suite(seed=0)
IDS = [name for name, _ in SUITE]


@pytest.fixture(scope="module")
def backend_set():
    backends = {"serial": SerialBackend(), "thread": ThreadBackend(2, grain=8)}
    yield backends
    for backend in backends.values():
        backend.close()


@pytest.fixture(scope="module")
def optima():
    """Exact optima per (instance, objective), computed once."""
    out = {}
    for name, inst in SUITE:
        out[name, "kcenter"] = brute_force_kcenter(inst, max_subsets=200_000)[0]
        out[name, "kmedian"] = brute_force_kmedian(inst, max_subsets=200_000)[0]
        out[name, "kmeans"] = brute_force_kmeans(inst, max_subsets=200_000)[0]
    return out


def _shapes(inst):
    return [("dense", inst), ("sparse", SparseClusteringInstance.from_instance(inst))]


@pytest.mark.parametrize("name,inst", SUITE, ids=IDS)
@pytest.mark.parametrize("backend", BACKEND_NAMES)
def test_kcenter_within_2_opt(backend_set, optima, name, inst, backend):
    opt = optima[name, "kcenter"]
    for shape, instance in _shapes(inst):
        sol = parallel_kcenter(
            instance, machine=PramMachine(backend=backend_set[backend], seed=11)
        )
        assert sol.centers.size <= inst.k
        assert sol.cost <= 2 * opt * (1 + 1e-9), (shape, sol.cost, opt)
        # Theorem 6.1's stronger artifact: the landed threshold ≤ opt.
        assert sol.extra["threshold"] <= opt * (1 + 1e-9), shape


@pytest.mark.parametrize("name,inst", SUITE, ids=IDS)
@pytest.mark.parametrize("backend", BACKEND_NAMES)
def test_kmedian_within_5_eps_opt(backend_set, optima, name, inst, backend):
    opt = optima[name, "kmedian"]
    for shape, instance in _shapes(inst):
        sol = parallel_kmedian(
            instance,
            epsilon=EPS,
            machine=PramMachine(backend=backend_set[backend], seed=11),
        )
        assert sol.centers.size <= inst.k
        assert sol.cost <= (5 + EPS) * opt * (1 + 1e-9), (shape, sol.cost, opt)


@pytest.mark.parametrize("name,inst", SUITE, ids=IDS)
@pytest.mark.parametrize("backend", BACKEND_NAMES)
def test_kmeans_within_81_eps_opt(backend_set, optima, name, inst, backend):
    opt = optima[name, "kmeans"]
    for shape, instance in _shapes(inst):
        sol = parallel_kmeans(
            instance,
            epsilon=EPS,
            machine=PramMachine(backend=backend_set[backend], seed=11),
        )
        assert sol.centers.size <= inst.k
        assert sol.cost <= (81 + EPS) * opt * (1 + 1e-9), (shape, sol.cost, opt)


@pytest.mark.parametrize("name,inst", SUITE, ids=IDS)
@pytest.mark.parametrize("backend", BACKEND_NAMES)
def test_lagrangian_within_jv_factor(backend_set, optima, name, inst, backend):
    opt = optima[name, "kmedian"]
    for shape, instance in _shapes(inst):
        sol = parallel_kmedian_lagrangian(
            instance,
            epsilon=0.1,
            machine=PramMachine(backend=backend_set[backend], seed=11),
        )
        assert sol.centers.size <= inst.k
        assert sol.cost <= 6 * opt * (1 + 1e-9), (shape, sol.cost, opt)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_ratios_seed_robust(optima, seed):
    """The envelopes are not a lucky seed: re-certify the first suite
    entry under several machine seeds (serial)."""
    name, inst = SUITE[0]
    assert parallel_kcenter(inst, seed=seed).cost <= 2 * optima[name, "kcenter"] * (
        1 + 1e-9
    )
    assert parallel_kmedian(inst, epsilon=EPS, seed=seed).cost <= (5 + EPS) * optima[
        name, "kmedian"
    ] * (1 + 1e-9)
    assert parallel_kmeans(inst, epsilon=EPS, seed=seed).cost <= (81 + EPS) * optima[
        name, "kmeans"
    ] * (1 + 1e-9)


def test_suite_is_brute_forceable():
    """Guard: every suite entry stays exactly solvable (C(n,k) bounded),
    so the certification above can never silently skip."""
    from math import comb

    for _, inst in SUITE:
        assert comb(inst.n, inst.k) <= 200_000
        assert np.isfinite(inst.D).all()
