"""Metamorphic property suite for the clustering solvers.

Three families of invariants, asserted for every clustering solver on
dense, full-CSR sparse, and kNN-truncated sparse instances, across
execution backends:

* **Permutation equivariance** — relabeling the nodes (and relabeling
  the per-node randomness consistently) permutes the returned centers
  and leaves the cost unchanged. The randomness is relabeled through a
  machine whose ``random_priorities`` draws are composed with the
  permutation, so the solvers' selection logic is exercised, not
  bypassed.
* **Scale equivariance** — ``d → 2·d`` (a power of two, so every float
  operation scales exactly) returns the identical center set with the
  cost scaled by ``2`` (k-median, k-center) or ``4`` (k-means).
* **Duplicate-point invariance** — appending an exact copy of a node
  keeps the objectives consistent (evaluating with either copy is
  byte-identical) and every solver stays inside its approximation
  envelope on the augmented instance, exercising the exact-zero-
  distance tie handling.
"""

import numpy as np
import pytest

from repro import PramMachine, SerialBackend, ThreadBackend
from repro.baselines.brute_force import (
    brute_force_kcenter,
    brute_force_kmeans,
    brute_force_kmedian,
)
from repro.core.kcenter import parallel_kcenter
from repro.core.kmedian_lagrangian import parallel_kmedian_lagrangian
from repro.core.local_search import parallel_local_search
from repro.metrics.generators import euclidean_clustering
from repro.metrics.instance import ClusteringInstance
from repro.metrics.space import MetricSpace
from repro.metrics.sparse import SparseClusteringInstance, knn_sparsify

BACKEND_NAMES = ("serial", "thread")


@pytest.fixture(scope="module")
def backend_set():
    backends = {"serial": SerialBackend(), "thread": ThreadBackend(2, grain=8)}
    yield backends
    for backend in backends.values():
        backend.close()


class _RelabeledMachine(PramMachine):
    """Machine whose per-node randomness is relabeled by a permutation.

    Node ``p`` of the permuted instance corresponds to node ``perm[p]``
    of the original; drawing ``base[perm]`` gives it the original
    node's priority, which is exactly the consistent-relabeling the
    equivariance property quantifies over.
    """

    def __init__(self, perm, *, seed, backend=None):
        super().__init__(backend=backend, seed=seed)
        self._perm = np.asarray(perm, dtype=np.intp)

    def random_priorities(self, n):
        out = super().random_priorities(n)
        return out[self._perm] if n == self._perm.size else out


SOLVERS = {
    "kcenter": lambda inst, m: parallel_kcenter(inst, machine=m),
    "kmedian": lambda inst, m: parallel_local_search(
        inst, "kmedian", epsilon=0.4, machine=m
    ),
    "kmeans": lambda inst, m: parallel_local_search(
        inst, "kmeans", epsilon=0.4, machine=m
    ),
    "lagrangian": lambda inst, m: parallel_kmedian_lagrangian(
        inst, epsilon=0.2, machine=m, max_probes=20
    ),
}
SCALE_POWER = {"kcenter": 1, "kmedian": 1, "kmeans": 2, "lagrangian": 1}


def _dense_instance():
    return euclidean_clustering(24, 3, seed=13)


INSTANCES = {
    "dense": _dense_instance,
    "sparse-full": lambda: SparseClusteringInstance.from_instance(_dense_instance()),
    "sparse-knn": lambda: knn_sparsify(_dense_instance(), 14),
}


def _permuted(instance, perm):
    """The same instance with node ``p`` renamed from ``perm[p]``."""
    if isinstance(instance, SparseClusteringInstance):
        inv = np.argsort(perm)
        rows = inv[instance.rows_flat()]
        cols = inv[instance.indices]
        order = np.lexsort((cols, rows))
        indptr = np.concatenate(
            ([0], np.cumsum(np.bincount(rows, minlength=instance.n)))
        ).astype(np.intp)
        return SparseClusteringInstance(
            indptr,
            cols[order],
            instance.data[order],
            instance.k,
            fallback=instance.fallback[perm],
        )
    D = instance.D[np.ix_(perm, perm)]
    return ClusteringInstance(MetricSpace(D, validate=False), instance.k)


def _scaled(instance, factor):
    if isinstance(instance, SparseClusteringInstance):
        return SparseClusteringInstance(
            instance.indptr,
            instance.indices,
            instance.data * factor,
            instance.k,
            fallback=instance.fallback * factor,
        )
    return ClusteringInstance(
        MetricSpace(instance.D * factor, validate=False), instance.k
    )


@pytest.mark.parametrize("shape", sorted(INSTANCES))
@pytest.mark.parametrize("solver", sorted(SOLVERS))
@pytest.mark.parametrize("backend", BACKEND_NAMES)
def test_permutation_equivariance(backend_set, shape, solver, backend):
    instance = INSTANCES[shape]()
    perm = np.random.default_rng(5).permutation(instance.n)
    base = SOLVERS[solver](
        instance, PramMachine(backend=backend_set[backend], seed=321)
    )
    permuted = SOLVERS[solver](
        _permuted(instance, perm),
        _RelabeledMachine(perm, seed=321, backend=backend_set[backend]),
    )
    assert sorted(perm[permuted.centers]) == sorted(base.centers)
    assert permuted.cost == pytest.approx(base.cost, rel=1e-9)


@pytest.mark.parametrize("shape", sorted(INSTANCES))
@pytest.mark.parametrize("solver", sorted(SOLVERS))
@pytest.mark.parametrize("backend", BACKEND_NAMES)
def test_scale_equivariance(backend_set, shape, solver, backend):
    """d → 2·d: identical centers, cost × 2^power, bit-for-bit."""
    instance = INSTANCES[shape]()
    factor = 2.0
    base = SOLVERS[solver](
        instance, PramMachine(backend=backend_set[backend], seed=99)
    )
    scaled = SOLVERS[solver](
        _scaled(instance, factor), PramMachine(backend=backend_set[backend], seed=99)
    )
    assert np.array_equal(scaled.centers, base.centers)
    assert scaled.cost == factor ** SCALE_POWER[solver] * base.cost


def _with_duplicate(instance: ClusteringInstance, node: int = 0) -> ClusteringInstance:
    idx = np.concatenate([np.arange(instance.n), [node]])
    D = instance.D[np.ix_(idx, idx)]
    return ClusteringInstance(MetricSpace(D, validate=False), instance.k)


class TestDuplicateInvariance:
    def test_objectives_blind_to_which_copy(self):
        inst = _dense_instance()
        aug = _with_duplicate(inst, node=0)
        n = inst.n  # the duplicate's id in aug
        for with_orig, with_dup in [([0, 3, 7], [n, 3, 7]), ([0, 5], [n, 5])]:
            for cost in ("kmedian_cost", "kmeans_cost", "kcenter_cost"):
                assert getattr(aug, cost)(with_orig) == getattr(aug, cost)(with_dup)
        # Evaluating a duplicate-free center set on the augmented
        # instance adds exactly the duplicate's (= original's) service.
        centers = [3, 7, 11]
        d = np.min(inst.D[:, centers], axis=1)
        assert aug.kmedian_cost(centers) == pytest.approx(
            inst.kmedian_cost(centers) + d[0]
        )
        assert aug.kcenter_cost(centers) == inst.kcenter_cost(centers)

    def test_sparse_objectives_blind_to_which_copy(self):
        aug = _with_duplicate(_dense_instance(), node=0)
        sp = SparseClusteringInstance.from_instance(aug)
        n = aug.n - 1
        for cost in ("kmedian_cost", "kmeans_cost", "kcenter_cost"):
            assert getattr(sp, cost)([0, 3, 7]) == getattr(sp, cost)([n, 3, 7])

    @pytest.mark.parametrize("solver", sorted(SOLVERS))
    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    def test_solvers_stay_in_envelope_with_duplicates(
        self, backend_set, solver, backend
    ):
        """Exact-zero distance ties must not break any solver or its
        guarantee (k-center 2·opt; local search (5+ε)/(81+ε)·opt; the
        Lagrangian within the JV factor)."""
        inst = euclidean_clustering(16, 3, seed=3)
        aug = _with_duplicate(inst, node=0)
        sol = SOLVERS[solver](aug, PramMachine(backend=backend_set[backend], seed=7))
        assert sol.centers.size <= aug.k
        if solver == "kcenter":
            opt_aug, _ = brute_force_kcenter(aug)
            opt_orig, _ = brute_force_kcenter(inst)
            assert opt_aug == pytest.approx(opt_orig)  # duplicates don't move opt
            assert sol.cost <= 2 * opt_aug * (1 + 1e-9)
        elif solver == "kmedian":
            opt, _ = brute_force_kmedian(aug)
            assert sol.cost <= (5 + 0.4) * opt * (1 + 1e-9)
        elif solver == "kmeans":
            opt, _ = brute_force_kmeans(aug)
            assert sol.cost <= (81 + 0.4) * opt * (1 + 1e-9)
        else:
            opt, _ = brute_force_kmedian(aug)
            assert sol.cost <= 6 * opt * (1 + 1e-9)

    @pytest.mark.parametrize("solver", sorted(SOLVERS))
    def test_sparse_paths_handle_duplicates(self, solver):
        """Full-CSR and kNN-truncated sparse instances with duplicated
        points run every solver to a valid, deterministic solution."""
        aug = _with_duplicate(euclidean_clustering(16, 3, seed=3), node=0)
        for sp in (SparseClusteringInstance.from_instance(aug), knn_sparsify(aug, 10)):
            a = SOLVERS[solver](sp, PramMachine(seed=7))
            b = SOLVERS[solver](sp, PramMachine(seed=7))
            assert a.centers.size <= sp.k
            assert np.isfinite(a.cost)
            assert np.array_equal(a.centers, b.centers) and a.cost == b.cost
