"""Cross-algorithm integration: the paper's algorithms side by side.

These tests run multiple algorithms on shared instances and verify the
*relationships* the paper implies: all approximation chains anchored at
the same exact optimum, parallel vs sequential quality classes, dual
values nested under the LP optimum, and identical results across
execution backends.
"""

import numpy as np
import pytest

from repro import (
    PramMachine,
    ThreadBackend,
    parallel_greedy,
    parallel_kcenter,
    parallel_kmedian,
    parallel_lp_rounding,
    parallel_primal_dual,
)
from repro.baselines import (
    brute_force_facility_location,
    brute_force_kcenter,
    brute_force_kmedian,
    gonzalez_kcenter,
    greedy_jms,
    hochbaum_shmoys_kcenter,
    jv_sequential,
    local_search_kmedian_seq,
)
from repro.bench.workloads import clustering_ratio_suite, fl_ratio_suite
from repro.lp.solve import lp_lower_bound, solve_dual, solve_primal


@pytest.mark.parametrize("name,inst", fl_ratio_suite(seed=0))
def test_all_fl_algorithms_respect_their_factors(name, inst):
    """One instance, all four FL algorithms, one exact optimum."""
    opt, _ = brute_force_facility_location(inst)
    eps = 0.1
    gamma_slack = 3.0 / inst.m  # primal–dual preprocessing allowance

    g = parallel_greedy(inst, epsilon=eps, seed=1)
    assert g.cost <= (6 + eps) * opt * (1 + 1e-9), f"greedy on {name}"

    pd = parallel_primal_dual(inst, epsilon=eps, seed=1)
    assert pd.cost <= (3 * (1 + eps) + gamma_slack) * opt * (1 + 1e-9) + 3 * pd.extra["gamma"] / inst.m

    primal = solve_primal(inst)
    lr = parallel_lp_rounding(inst, primal, epsilon=eps, seed=1)
    assert lr.cost <= (4 * (1 + eps)) * primal.value * (1 + 1e-9) + primal.value / inst.m

    sg = greedy_jms(inst)
    assert sg.cost <= 1.861 * opt * (1 + 1e-9)

    sj = jv_sequential(inst)
    assert sj.cost <= 3 * opt * (1 + 1e-9)


@pytest.mark.parametrize("name,inst", fl_ratio_suite(seed=0))
def test_dual_chains_nest_under_lp(name, inst):
    """Σα from both dual-producing algorithms sits below the LP optimum,
    which sits below the integral optimum."""
    opt, _ = brute_force_facility_location(inst)
    lp = lp_lower_bound(inst)
    assert lp <= opt + 1e-7

    pd = parallel_primal_dual(inst, epsilon=0.1, seed=2)
    assert pd.alpha.sum() <= lp * (1 + 1e-7)

    jv = jv_sequential(inst)
    assert jv.alpha.sum() <= lp * (1 + 1e-7)

    d = solve_dual(inst)
    assert d.value == pytest.approx(lp, rel=1e-7)


@pytest.mark.parametrize("name,inst", clustering_ratio_suite(seed=0))
def test_all_kcenter_algorithms_agree_on_class(name, inst):
    opt, _ = brute_force_kcenter(inst, max_subsets=500_000)
    par = parallel_kcenter(inst, seed=3)
    seq = hochbaum_shmoys_kcenter(inst)
    gz = gonzalez_kcenter(inst)
    for radius in (par.cost, seq.radius, inst.kcenter_cost(gz)):
        assert radius <= 2 * opt * (1 + 1e-9), name


@pytest.mark.parametrize("name,inst", clustering_ratio_suite(seed=0))
def test_kmedian_parallel_and_sequential(name, inst):
    opt, _ = brute_force_kmedian(inst, max_subsets=500_000)
    par = parallel_kmedian(inst, epsilon=0.3, seed=3)
    seq = local_search_kmedian_seq(inst, epsilon=0.3)
    assert par.cost <= (5 + 0.3) * opt * (1 + 1e-9), name
    assert seq.cost <= (5 + 0.3) * opt * (1 + 1e-9), name


def test_thread_backend_reproduces_serial_results(small_fl, small_clustering):
    """Backends change execution, never results (same seeds)."""
    serial_g = parallel_greedy(small_fl, epsilon=0.1, machine=PramMachine(seed=4))
    thread_machine = PramMachine(backend=ThreadBackend(2, grain=8), seed=4)
    thread_g = parallel_greedy(small_fl, epsilon=0.1, machine=thread_machine)
    thread_machine.close()
    assert np.array_equal(serial_g.opened, thread_g.opened)
    assert serial_g.cost == pytest.approx(thread_g.cost)

    serial_k = parallel_kcenter(small_clustering, machine=PramMachine(seed=4))
    tm = PramMachine(backend=ThreadBackend(2, grain=8), seed=4)
    thread_k = parallel_kcenter(small_clustering, machine=tm)
    tm.close()
    assert np.array_equal(serial_k.centers, thread_k.centers)


def test_ledger_work_identical_across_backends(small_fl):
    """The model charge is a function of the algorithm, not the backend."""
    m1 = PramMachine(seed=5)
    parallel_primal_dual(small_fl, epsilon=0.1, machine=m1)
    m2 = PramMachine(backend=ThreadBackend(2, grain=8), seed=5)
    parallel_primal_dual(small_fl, epsilon=0.1, machine=m2)
    m2.close()
    assert m1.ledger.work == pytest.approx(m2.ledger.work)
    assert m1.ledger.depth == pytest.approx(m2.ledger.depth)


def test_primal_dual_usually_beats_greedy_bound(small_fl, clustered_fl):
    """Not a theorem — a sanity expectation: the (3+ε) algorithm should
    not be wildly worse than the (6+ε) one on benign inputs."""
    for inst in (small_fl, clustered_fl):
        g = parallel_greedy(inst, epsilon=0.1, seed=6)
        pd = parallel_primal_dual(inst, epsilon=0.1, seed=6)
        assert pd.cost <= 2.5 * g.cost


def test_warm_start_chain(small_clustering):
    """§7's pipeline: k-center warm start feeds local search and the
    final cost never exceeds the warm start's k-median cost."""
    kc = parallel_kcenter(small_clustering, seed=7)
    km = parallel_kmedian(small_clustering, epsilon=0.3, seed=7, initial=kc.centers)
    assert km.cost <= small_clustering.kmedian_cost(kc.centers) * (1 + 1e-12)
