"""Public API contract: the README quickstart and __all__ exports work."""

import numpy as np
import pytest

import repro


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_version_string():
    assert repro.__version__.count(".") == 2


def test_readme_quickstart():
    inst = repro.euclidean_instance(n_f=10, n_c=40, seed=0)
    sol = repro.parallel_primal_dual(inst, epsilon=0.1, seed=0)
    assert sol.cost > 0
    assert sol.opened.size >= 1
    assert sol.model_costs.work > 0


def test_clustering_quickstart():
    inst = repro.euclidean_clustering(30, 3, seed=0)
    sol = repro.parallel_kmedian(inst, seed=0)
    assert sol.centers.size <= 3


def test_speedup_projection_api():
    inst = repro.euclidean_instance(n_f=8, n_c=24, seed=1)
    sol = repro.parallel_greedy(inst, epsilon=0.2, seed=1)
    curve = repro.speedup_curve(sol.model_costs, [1, 2, 8])
    assert curve[0][1] == pytest.approx(1.0)
    assert curve[-1][1] > 1.0
    assert repro.parallelism(sol.model_costs) > 1.0


def test_instance_io_api(tmp_path):
    inst = repro.euclidean_instance(5, 10, seed=2)
    repro.save_instance(tmp_path / "i.npz", inst)
    back = repro.load_instance(tmp_path / "i.npz")
    assert np.array_equal(back.D, inst.D)


def test_errors_exported_and_raised():
    with pytest.raises(repro.InvalidParameterError):
        repro.parallel_greedy(
            repro.euclidean_instance(3, 3, seed=0), epsilon=-1.0
        )
