"""Gonzalez, sequential Hochbaum–Shmoys, and the Wang–Cheng work proxy."""

import numpy as np
import pytest

from repro.baselines.brute_force import brute_force_kcenter
from repro.baselines.gonzalez import gonzalez_kcenter
from repro.baselines.hochbaum_shmoys import greedy_dominator_set, hochbaum_shmoys_kcenter
from repro.baselines.wang_cheng import wang_cheng_kcenter
from repro.metrics.generators import euclidean_clustering
from repro.metrics.instance import ClusteringInstance
from repro.metrics.space import MetricSpace


@pytest.fixture
def line5():
    pts = np.array([[0.0], [1.0], [2.0], [3.0], [10.0]])
    return ClusteringInstance(MetricSpace.from_points(pts), 2)


class TestGonzalez:
    @pytest.mark.parametrize("fixture", ["small_clustering", "blob_clustering"])
    def test_2_approx(self, fixture, request):
        inst = request.getfixturevalue(fixture)
        opt, _ = brute_force_kcenter(inst, max_subsets=200_000)
        centers = gonzalez_kcenter(inst)
        assert inst.kcenter_cost(centers) <= 2 * opt * (1 + 1e-9)

    def test_respects_k(self, small_clustering):
        assert gonzalez_kcenter(small_clustering).size <= small_clustering.k

    def test_outlier_gets_center(self, line5):
        centers = gonzalez_kcenter(line5)
        assert 4 in centers  # the far point is always picked (farthest-first)

    def test_first_parameter(self, small_clustering):
        a = gonzalez_kcenter(small_clustering, first=0)
        b = gonzalez_kcenter(small_clustering, first=5)
        assert a.size and b.size  # both valid, possibly different

    def test_duplicate_points_collapse(self):
        pts = np.zeros((6, 1))
        inst = ClusteringInstance(MetricSpace.from_points(pts), 3)
        centers = gonzalez_kcenter(inst)
        assert inst.kcenter_cost(centers) == 0.0


class TestGreedyDominator:
    def test_empty_graph_picks_all(self):
        adj = np.zeros((4, 4), dtype=bool)
        assert greedy_dominator_set(adj).tolist() == [0, 1, 2, 3]

    def test_complete_graph_picks_one(self):
        adj = ~np.eye(4, dtype=bool)
        assert greedy_dominator_set(adj).tolist() == [0]

    def test_path_two_hop_exclusion(self):
        # Path 0-1-2-3-4: choosing 0 blocks 1 (adjacent) and 2 (shares 1).
        adj = np.zeros((5, 5), dtype=bool)
        for i in range(4):
            adj[i, i + 1] = adj[i + 1, i] = True
        assert greedy_dominator_set(adj).tolist() == [0, 3]

    def test_independence_in_square(self, rng):
        n = 25
        adj = rng.random((n, n)) < 0.15
        adj = np.triu(adj, 1)
        adj = adj | adj.T
        chosen = greedy_dominator_set(adj)
        sq = adj | (adj @ adj)
        for a in chosen:
            for b in chosen:
                if a != b:
                    assert not sq[a, b]


class TestHochbaumShmoys:
    @pytest.mark.parametrize("fixture", ["small_clustering", "blob_clustering"])
    def test_2_approx(self, fixture, request):
        inst = request.getfixturevalue(fixture)
        opt, _ = brute_force_kcenter(inst, max_subsets=200_000)
        res = hochbaum_shmoys_kcenter(inst)
        assert res.radius <= 2 * opt * (1 + 1e-9)
        assert res.centers.size <= inst.k

    def test_threshold_at_most_opt(self, small_clustering):
        opt, _ = brute_force_kcenter(small_clustering, max_subsets=200_000)
        res = hochbaum_shmoys_kcenter(small_clustering)
        assert res.threshold <= opt + 1e-9

    def test_probe_count_logarithmic(self, small_clustering):
        res = hochbaum_shmoys_kcenter(small_clustering)
        n_thresholds = np.unique(small_clustering.D).size
        assert res.probes <= int(np.ceil(np.log2(n_thresholds))) + 2

    def test_k_equals_n(self):
        inst = euclidean_clustering(8, 8, seed=0)
        res = hochbaum_shmoys_kcenter(inst)
        assert res.radius == pytest.approx(0.0)


class TestWangChengProxy:
    def test_2_approx(self, small_clustering):
        opt, _ = brute_force_kcenter(small_clustering, max_subsets=200_000)
        res = wang_cheng_kcenter(small_clustering)
        assert res.radius <= 2 * opt * (1 + 1e-9)
        assert res.centers.size <= small_clustering.k

    def test_work_is_cubic_shaped(self):
        # Probes grow with the number of distinct thresholds below the
        # answer, so work grows much faster than n².
        small = euclidean_clustering(20, 3, seed=0)
        large = euclidean_clustering(60, 3, seed=0)
        w_small = wang_cheng_kcenter(small).work
        w_large = wang_cheng_kcenter(large).work
        ratio = w_large / w_small
        assert ratio > (60 / 20) ** 2.4  # super-quadratic growth

    def test_linear_scan_probes_exceed_binary_search(self, small_clustering):
        wc = wang_cheng_kcenter(small_clustering)
        hs = hochbaum_shmoys_kcenter(small_clustering)
        assert wc.probes > hs.probes
