"""Sequential local search: quality, monotonicity, threshold semantics."""

import numpy as np
import pytest

from repro.baselines.brute_force import brute_force_kmeans, brute_force_kmedian
from repro.baselines.local_search_seq import (
    local_search_kmeans_seq,
    local_search_kmedian_seq,
)
from repro.errors import InvalidParameterError
from repro.metrics.generators import euclidean_clustering
from repro.metrics.instance import ClusteringInstance
from repro.metrics.space import MetricSpace


@pytest.mark.parametrize("fixture", ["small_clustering", "blob_clustering"])
def test_kmedian_within_5_eps(fixture, request):
    inst = request.getfixturevalue(fixture)
    opt, _ = brute_force_kmedian(inst, max_subsets=200_000)
    res = local_search_kmedian_seq(inst, epsilon=0.3)
    assert res.cost <= (5 + 0.3) * opt * (1 + 1e-9)


def test_kmedian_usually_near_optimal(blob_clustering):
    opt, _ = brute_force_kmedian(blob_clustering, max_subsets=200_000)
    res = local_search_kmedian_seq(blob_clustering, epsilon=0.1)
    assert res.cost <= 1.6 * opt  # blobs are easy; local search nails them


def test_kmeans_within_81_eps(small_clustering):
    opt, _ = brute_force_kmeans(small_clustering, max_subsets=200_000)
    res = local_search_kmeans_seq(small_clustering, epsilon=0.3)
    assert res.cost <= (81 + 0.3) * opt * (1 + 1e-9)


def test_cost_matches_instance(small_clustering):
    res = local_search_kmedian_seq(small_clustering)
    assert res.cost == pytest.approx(small_clustering.kmedian_cost(res.centers))


def test_budget_respected(small_clustering):
    res = local_search_kmedian_seq(small_clustering)
    assert res.centers.size <= small_clustering.k


def test_swap_count_bounded(small_clustering):
    res = local_search_kmedian_seq(small_clustering, epsilon=0.5)
    n, k = small_clustering.n, small_clustering.k
    beta = 0.5 / 1.5
    assert res.swaps <= np.ceil(np.log(2 * n) / -np.log(1 - beta / k)) + 1


def test_epsilon_validation(small_clustering):
    with pytest.raises(InvalidParameterError):
        local_search_kmedian_seq(small_clustering, epsilon=0.0)
    with pytest.raises(InvalidParameterError):
        local_search_kmedian_seq(small_clustering, epsilon=1.5)


def test_k_equals_n_no_swaps():
    inst = euclidean_clustering(6, 6, seed=0)
    res = local_search_kmedian_seq(inst)
    assert res.cost == pytest.approx(0.0)
    assert res.swaps == 0


def test_duplicate_points_padding():
    pts = np.vstack([np.zeros((4, 1)), np.ones((4, 1))])
    inst = ClusteringInstance(MetricSpace.from_points(pts), 3)
    res = local_search_kmedian_seq(inst)
    assert res.cost == pytest.approx(0.0)


def test_smaller_epsilon_no_worse(blob_clustering):
    hi = local_search_kmedian_seq(blob_clustering, epsilon=0.9)
    lo = local_search_kmedian_seq(blob_clustering, epsilon=0.05)
    assert lo.cost <= hi.cost * (1 + 1e-9)
