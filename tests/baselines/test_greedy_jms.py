"""Sequential JMS greedy: star mechanics and end-to-end quality."""

import numpy as np
import pytest

from repro.baselines.brute_force import brute_force_facility_location
from repro.baselines.greedy_jms import cheapest_star_prices, greedy_jms
from repro.metrics.instance import FacilityLocationInstance


class TestCheapestStarPrices:
    def test_hand_example(self):
        # f=6, sorted distances 1,2,9: prices (6+1)/1=7, (6+3)/2=4.5, (6+12)/3=6.
        D = np.array([[1.0, 2.0, 9.0]])
        prices, sizes = cheapest_star_prices(D, np.array([6.0]))
        assert prices[0] == pytest.approx(4.5)
        assert sizes[0] == 2

    def test_zero_cost_prefers_single_client(self):
        D = np.array([[1.0, 2.0, 3.0]])
        prices, sizes = cheapest_star_prices(D, np.array([0.0]))
        assert prices[0] == pytest.approx(1.0)
        assert sizes[0] == 1

    def test_matches_exhaustive_enumeration(self, rng):
        D = rng.random((4, 6)) * 5
        f = rng.random(4) * 3
        prices, _ = cheapest_star_prices(D, f)
        for i in range(4):
            ds = np.sort(D[i])
            want = min((f[i] + ds[: k + 1].sum()) / (k + 1) for k in range(6))
            assert prices[i] == pytest.approx(want)

    def test_price_satisfies_fact_42(self, rng):
        # Fact 4.2(2): Σ_j max(0, t - d(j,i)) = f_i at the maximal-star price.
        D = rng.random((3, 8))
        f = rng.random(3) + 0.5
        prices, _ = cheapest_star_prices(D, f)
        for i in range(3):
            # cheapest maximal star price t*: water level filling exactly f_i
            t = prices[i]
            assert np.maximum(0.0, t - D[i]).sum() == pytest.approx(f[i], rel=1e-9)


class TestGreedyEndToEnd:
    def test_terminates_and_serves_all(self, small_fl):
        res = greedy_jms(small_fl)
        assert res.opened.size >= 1
        assert res.iterations <= small_fl.n_clients

    def test_cost_matches_instance_eval(self, small_fl):
        res = greedy_jms(small_fl)
        assert res.cost == pytest.approx(small_fl.cost(res.opened))

    @pytest.mark.parametrize("fixture", ["tiny_fl", "small_fl", "clustered_fl", "nongeometric_fl"])
    def test_within_1861_of_opt(self, fixture, request):
        inst = request.getfixturevalue(fixture)
        res = greedy_jms(inst)
        opt, _ = brute_force_facility_location(inst)
        assert res.cost <= 1.861 * opt * (1 + 1e-9)

    def test_star_instance_opens_hub(self, star_fl):
        res = greedy_jms(star_fl)
        assert 0 in res.opened  # the hub is the whole optimum

    def test_deterministic(self, small_fl):
        a, b = greedy_jms(small_fl), greedy_jms(small_fl)
        assert np.array_equal(a.opened, b.opened)

    def test_star_prices_nondecreasing(self, small_fl):
        # Greedy picks the global cheapest star each time; the sequence
        # of chosen prices never decreases (with f zeroed on opening).
        res = greedy_jms(small_fl)
        prices = res.star_prices
        assert all(a <= b + 1e-9 for a, b in zip(prices, prices[1:]))

    def test_single_client(self):
        inst = FacilityLocationInstance(np.array([[2.0], [1.0]]), np.array([1.0, 5.0]))
        res = greedy_jms(inst)
        assert res.cost == pytest.approx(3.0)  # open facility 0: 1 + 2
