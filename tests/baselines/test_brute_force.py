"""Exact solvers: hand-checked optima, caps, and dominance properties."""

import numpy as np
import pytest

from repro.baselines.brute_force import (
    brute_force_facility_location,
    brute_force_kcenter,
    brute_force_kmeans,
    brute_force_kmedian,
)
from repro.errors import InvalidParameterError
from repro.metrics.generators import euclidean_clustering, euclidean_instance
from repro.metrics.instance import ClusteringInstance, FacilityLocationInstance
from repro.metrics.space import MetricSpace


def test_fl_hand_example():
    D = np.array([[1.0, 2.0, 3.0], [3.0, 1.0, 1.0]])
    f = np.array([5.0, 4.0])
    opt, best = brute_force_facility_location(FacilityLocationInstance(D, f))
    # {0}: 5+6=11, {1}: 4+5=9, {0,1}: 9+3=12 -> best {1}.
    assert opt == pytest.approx(9.0)
    assert best.tolist() == [1]


def test_fl_opt_not_above_any_subset(small_fl):
    opt, _ = brute_force_facility_location(small_fl)
    rng = np.random.default_rng(0)
    for _ in range(20):
        subset = np.flatnonzero(rng.random(small_fl.n_facilities) > 0.5)
        if subset.size:
            assert opt <= small_fl.cost(subset) + 1e-12


def test_fl_returns_achieving_set(small_fl):
    opt, best = brute_force_facility_location(small_fl)
    assert small_fl.cost(best) == pytest.approx(opt)


def test_fl_cap_enforced():
    inst = euclidean_instance(17, 5, seed=0)
    with pytest.raises(InvalidParameterError, match="caps"):
        brute_force_facility_location(inst, max_facilities=16)


def test_kmedian_hand_example():
    pts = np.array([[0.0], [1.0], [10.0], [11.0]])
    inst = ClusteringInstance(MetricSpace.from_points(pts), 2)
    opt, best = brute_force_kmedian(inst)
    assert opt == pytest.approx(2.0)
    assert set(best.tolist()) in ({0, 2}, {0, 3}, {1, 2}, {1, 3})


def test_kmeans_differs_from_kmedian():
    # An outlier pulls k-means harder than k-median.
    pts = np.array([[0.0], [1.0], [2.0], [30.0]])
    inst = ClusteringInstance(MetricSpace.from_points(pts), 2)
    med_opt, _ = brute_force_kmedian(inst)
    mean_opt, mean_best = brute_force_kmeans(inst)
    assert 3 in mean_best  # the outlier is always its own center
    assert mean_opt == pytest.approx(2.0)  # {1, 3}: 1+0+1+0 squared
    assert med_opt == pytest.approx(2.0)


def test_kcenter_hand_example():
    pts = np.array([[0.0], [4.0], [10.0]])
    inst = ClusteringInstance(MetricSpace.from_points(pts), 2)
    opt, _ = brute_force_kcenter(inst)
    # Any 2 centers leave one point uncovered; the best pairing groups
    # 0 with 4 (radius 4), since 4–10 costs 6 and 0–10 costs 10.
    assert opt == pytest.approx(4.0)


def test_kcenter_k_equals_n_zero(small_clustering):
    inst = ClusteringInstance(small_clustering.space, small_clustering.n)
    # C(30,30) = 1 subset: all centers, radius 0.
    opt, best = brute_force_kcenter(inst)
    assert opt == 0.0 and best.size == inst.n


def test_center_cap_enforced():
    inst = euclidean_clustering(40, 10, seed=1)
    with pytest.raises(InvalidParameterError, match="caps"):
        brute_force_kmedian(inst, max_subsets=1000)


def test_objectives_consistent_with_instance(small_clustering):
    opt, best = brute_force_kmedian(small_clustering, max_subsets=10_000)
    assert small_clustering.kmedian_cost(best) == pytest.approx(opt)
    opt2, best2 = brute_force_kcenter(small_clustering, max_subsets=10_000)
    assert small_clustering.kcenter_cost(best2) == pytest.approx(opt2)
