"""Sequential Jain–Vazirani: exact duals, feasibility, 3-approx, LMP."""

import numpy as np
import pytest

from repro.baselines.brute_force import brute_force_facility_location
from repro.baselines.jv_sequential import _facility_open_time, jv_sequential
from repro.lp.duality import check_dual_feasible
from repro.lp.solve import lp_lower_bound
from repro.metrics.instance import FacilityLocationInstance


class TestOpenTime:
    def test_no_frozen_simple(self):
        # f=2, unfrozen distances [0, 0]: paid(t) = 2t -> opens at t=1.
        t = _facility_open_time(None, 0.0, 2.0, np.array([0.0, 0.0]), 0.0)
        assert t == pytest.approx(1.0)

    def test_staggered_breakpoints(self):
        # distances [0, 1], f = 3: paid(t) = t for t<=1, then 2t-1; 2t-1=3 -> t=2.
        t = _facility_open_time(None, 0.0, 3.0, np.array([0.0, 1.0]), 0.0)
        assert t == pytest.approx(2.0)

    def test_already_paid(self):
        t = _facility_open_time(None, 5.0, 4.0, np.array([1.0]), 0.7)
        assert t == pytest.approx(0.7)

    def test_frozen_contribution_counts(self):
        # frozen already paid 1; need 1 more from one client at distance 0.
        t = _facility_open_time(None, 1.0, 2.0, np.array([0.0]), 0.0)
        assert t == pytest.approx(1.0)

    def test_unreachable_is_inf(self):
        t = _facility_open_time(None, 0.0, 5.0, np.array([]), 0.0)
        assert t == np.inf


class TestJVEndToEnd:
    @pytest.mark.parametrize("fixture", ["tiny_fl", "small_fl", "clustered_fl", "nongeometric_fl", "star_fl"])
    def test_within_3_of_opt(self, fixture, request):
        inst = request.getfixturevalue(fixture)
        res = jv_sequential(inst)
        opt, _ = brute_force_facility_location(inst)
        assert res.cost <= 3.0 * opt * (1 + 1e-9)

    def test_duals_feasible(self, small_fl):
        res = jv_sequential(small_fl)
        check_dual_feasible(small_fl, res.alpha, tol=1e-7)

    def test_dual_value_below_lp(self, small_fl):
        res = jv_sequential(small_fl)
        assert res.alpha.sum() <= lp_lower_bound(small_fl) * (1 + 1e-7)

    def test_lmp_inequality(self, small_fl):
        # Lagrangian-multiplier preserving: 3·Σf + Σd ≤ 3·Σα.
        res = jv_sequential(small_fl)
        lhs = 3 * small_fl.facility_cost(res.opened) + small_fl.connection_cost(res.opened)
        assert lhs <= 3 * res.alpha.sum() * (1 + 1e-7)

    def test_opened_subset_of_tentative(self, small_fl):
        res = jv_sequential(small_fl)
        assert set(res.opened.tolist()) <= set(res.tentatively_open.tolist())

    def test_mis_no_conflicts(self, small_fl):
        # No client strictly pays two surviving facilities.
        res = jv_sequential(small_fl)
        contrib = res.alpha[None, :] - small_fl.D > 1e-12
        kept = contrib[res.opened]
        pays = kept.sum(axis=0)
        assert np.all(pays <= 1)

    def test_deterministic(self, small_fl):
        a, b = jv_sequential(small_fl), jv_sequential(small_fl)
        assert np.array_equal(a.opened, b.opened)
        assert np.allclose(a.alpha, b.alpha)

    def test_zero_cost_facility_opens_immediately(self):
        D = np.array([[0.5, 0.5], [2.0, 2.0]])
        inst = FacilityLocationInstance(D, np.array([0.0, 10.0]))
        res = jv_sequential(inst)
        assert res.opened.tolist() == [0]
        assert np.allclose(res.alpha, 0.5)

    def test_single_client_alpha_equals_gamma(self):
        D = np.array([[2.0], [4.0]])
        inst = FacilityLocationInstance(D, np.array([3.0, 0.5]))
        res = jv_sequential(inst)
        # client raises α until cheapest (f + d) is covered: min(5, 4.5) = 4.5.
        assert res.alpha[0] == pytest.approx(4.5)
        assert res.cost == pytest.approx(4.5)
