"""PramMachine: primitive correctness + cost-charging contracts.

Every primitive must (a) return the same values NumPy would and
(b) charge the §2 model costs for its class (map/reduce/sort/...).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.errors import InvalidParameterError
from repro.pram.backends import SerialBackend, ThreadBackend
from repro.pram.machine import PramMachine, ensure_machine


@pytest.fixture
def m():
    return PramMachine(seed=5)


# -- value correctness -------------------------------------------------------

def test_map_elementwise(m, rng):
    a = rng.random((6, 7))
    assert np.allclose(m.map(lambda x: x + 1, a), a + 1)


def test_map_multiple_arrays(m, rng):
    a, b = rng.random((4, 4)), rng.random((4, 4))
    assert np.allclose(m.map(np.minimum, a, b), np.minimum(a, b))


def test_where(m, rng):
    a = rng.random((5, 5))
    out = m.where(a > 0.5, 1.0, 0.0)
    assert np.array_equal(out, np.where(a > 0.5, 1.0, 0.0))


@pytest.mark.parametrize("op,ref", [("add", np.sum), ("min", np.min), ("max", np.max)])
@pytest.mark.parametrize("axis", [0, 1, None])
def test_reduce(m, rng, op, ref, axis):
    a = rng.random((6, 9))
    assert np.allclose(m.reduce(a, op, axis=axis), ref(a, axis=axis))


def test_scan_add(m, rng):
    a = rng.random((3, 8))
    assert np.allclose(m.scan(a, "add", axis=1), np.cumsum(a, axis=1))


@pytest.mark.parametrize("axis", [0, 1, 2])
def test_reduce_3d(m, rng, axis):
    """3-D reductions back the §7 batched swap evaluation."""
    a = rng.random((4, 5, 6))
    assert np.allclose(m.reduce(a, "add", axis=axis), a.sum(axis=axis))
    assert np.allclose(m.reduce(a, "min", axis=axis), a.min(axis=axis))


def test_reduce_3d_thread_backend(rng):
    from repro.pram.backends import ThreadBackend

    tm = PramMachine(backend=ThreadBackend(2, grain=4), seed=0)
    try:
        a = rng.random((6, 7, 8))
        assert np.allclose(tm.reduce(a, "add", axis=2), a.sum(axis=2))
    finally:
        tm.close()


def test_exclusive_scan(m):
    a = np.array([[1.0, 2.0, 3.0, 4.0]])
    assert np.array_equal(m.exclusive_scan(a, "add", axis=1), [[0.0, 1.0, 3.0, 6.0]])


def test_exclusive_scan_min_identity(m):
    a = np.array([[5.0, 1.0, 2.0]])
    out = m.exclusive_scan(a, "min", axis=1)
    assert np.array_equal(out, [[np.inf, 5.0, 1.0]])


def test_argmin_argmax(m, rng):
    a = rng.random((7, 5))
    assert np.array_equal(m.argmin(a, axis=0), np.argmin(a, axis=0))
    assert np.array_equal(m.argmax(a, axis=1), np.argmax(a, axis=1))
    assert m.argmin(a) == np.argmin(a)


def test_distribute_row(m):
    v = np.array([1.0, 2.0, 3.0])
    out = m.distribute(v, (4, 3))
    assert out.shape == (4, 3) and np.array_equal(out[2], v)


def test_distribute_bad_shape(m):
    with pytest.raises(InvalidParameterError):
        m.distribute(np.ones(3), (4, 5))


def test_transpose(m, rng):
    a = rng.random((3, 6))
    assert np.array_equal(m.transpose(a), a.T)


def test_gather_rows(m, rng):
    a = rng.random((4, 6))
    order = np.argsort(a, axis=1)
    assert np.array_equal(m.gather_rows(a, order), np.sort(a, axis=1))


def test_gather_rows_shape_mismatch(m):
    with pytest.raises(InvalidParameterError):
        m.gather_rows(np.ones((3, 4)), np.zeros((2, 4), dtype=int))


def test_take_columns(m, rng):
    a = rng.random((5, 8))
    idx = np.array([7, 0, 3])
    assert np.array_equal(m.take_columns(a, idx), a[:, idx])


def test_take_columns_out_of_range(m, rng):
    """Regression: bad column indices must raise like take_rows does,
    not wrap around and silently corrupt the frontier gather."""
    a = rng.random((3, 4))
    with pytest.raises(InvalidParameterError):
        m.take_columns(a, np.array([4]))
    with pytest.raises(InvalidParameterError):
        m.take_columns(a, np.array([-1]))
    with pytest.raises(InvalidParameterError):
        m.take_columns(np.arange(5.0), np.array([0]))


def test_pack(m):
    vals = np.arange(10)
    mask = vals % 3 == 0
    assert np.array_equal(m.pack(vals, mask), [0, 3, 6, 9])


def test_pack_shape_mismatch(m):
    with pytest.raises(InvalidParameterError):
        m.pack(np.arange(4), np.ones(5, dtype=bool))


def test_take_rows(m, rng):
    a = rng.random((6, 5))
    idx = np.array([4, 0, 2])
    assert np.array_equal(m.take_rows(a, idx), a[idx])
    v = rng.random(9)
    assert np.array_equal(m.take_rows(v, idx), v[idx])


def test_take_rows_out_of_range(m):
    with pytest.raises(InvalidParameterError):
        m.take_rows(np.ones((3, 2)), np.array([3]))


def test_take_submatrix(m, rng):
    a = rng.random((7, 9))
    rows, cols = np.array([5, 1]), np.array([8, 0, 4])
    assert np.array_equal(m.take_submatrix(a, rows, cols), a[np.ix_(rows, cols)])


def test_pack_rows(m):
    vals = np.arange(12).reshape(3, 4)
    mask = np.array([[1, 0, 1, 0], [0, 1, 0, 1], [1, 1, 0, 0]], dtype=bool)
    assert np.array_equal(m.pack_rows(vals, mask), [[0, 2], [5, 7], [8, 9]])


def test_pack_rows_nonuniform_count_rejected(m):
    mask = np.array([[True, True], [True, False]])
    with pytest.raises(InvalidParameterError, match="uniform"):
        m.pack_rows(np.ones((2, 2)), mask)


def test_pack_rows_shape_mismatch(m):
    with pytest.raises(InvalidParameterError):
        m.pack_rows(np.ones((2, 3)), np.ones((3, 2), dtype=bool))


def test_count_votes(m, rng):
    labels = rng.integers(0, 7, size=200)
    assert np.array_equal(m.count_votes(labels, 7), np.bincount(labels, minlength=7))


def test_count_votes_masked(m, rng):
    labels = rng.integers(0, 5, size=100)
    mask = rng.random(100) < 0.4
    assert np.array_equal(
        m.count_votes(labels, 5, mask=mask), np.bincount(labels[mask], minlength=5)
    )


def test_count_votes_validation(m):
    with pytest.raises(InvalidParameterError):
        m.count_votes(np.array([3]), 2)
    with pytest.raises(InvalidParameterError):
        m.count_votes(np.array([-1, 1]), 2)
    with pytest.raises(InvalidParameterError):
        m.count_votes(np.array([0]), 0)  # nonempty labels need a range
    with pytest.raises(InvalidParameterError):
        m.count_votes(np.array([0, 1]), 2, mask=np.ones(3, dtype=bool))


def test_masked_axpy(m, rng):
    x = rng.random((5, 6))
    y = rng.random((5, 6))
    mask = x > 0.5
    want = np.where(mask, np.maximum(0.0, -1.0 * x + y), 9.0)
    got = m.masked_axpy(-1.0, x, y, clamp_min=0.0, mask=mask, fill=9.0)
    assert np.allclose(got, want)


def test_masked_axpy_scalar_y(m, rng):
    x = rng.random((4, 3))
    assert np.allclose(m.masked_axpy(2.0, x, 1.5), 2.0 * x + 1.5)


def test_sort_rows(m, rng):
    a = rng.random((5, 9))
    assert np.array_equal(m.sort_rows(a), np.sort(a, axis=1))


def test_sort_rows_requires_2d(m):
    with pytest.raises(InvalidParameterError):
        m.sort_rows(np.arange(5.0))


def test_argsort_rows(m, rng):
    a = rng.random((4, 7))
    got = m.argsort_rows(a)
    assert np.array_equal(np.take_along_axis(a, got, 1), np.sort(a, axis=1))


def test_sort_vector(m, rng):
    v = rng.random(20)
    assert np.array_equal(m.sort(v), np.sort(v))


def test_sort_vector_requires_1d(m):
    with pytest.raises(InvalidParameterError):
        m.sort(np.ones((2, 2)))


def test_sorted_unique_values(m, rng):
    v = rng.integers(0, 12, size=40).astype(float)
    assert np.array_equal(m.sorted_unique(v), np.unique(v))


def test_sorted_unique_requires_1d(m):
    with pytest.raises(InvalidParameterError):
        m.sorted_unique(np.ones((2, 2)))


def test_sorted_unique_empty(m):
    assert m.sorted_unique(np.array([])).size == 0


def test_sorted_unique_charges_one_sort_plus_pack(rng):
    """The ledger-honesty regression: exactly one sort charge (no
    second, uncharged sort the way ``np.unique(machine.sort(v))`` did)
    plus one pack for the adjacent-difference compaction."""
    import math

    m = PramMachine()
    v = rng.integers(0, 30, size=128).astype(float)
    m.sorted_unique(v)
    assert m.ledger.calls_by_op["sorted_unique"] == 1
    assert m.ledger.calls_by_op["pack"] == 1
    assert "sort" not in m.ledger.calls_by_op
    assert m.ledger.total_calls == 2
    # work = one m·log₂(m) sort + one m pack, nothing else
    assert m.ledger.work == pytest.approx(128 * math.log2(128) + 128)


def test_random_uniform_shape_and_range(m):
    x = m.random_uniform((10, 3))
    assert x.shape == (10, 3) and np.all((0 <= x) & (x < 1))


def test_random_priorities_distinct(m):
    p = m.random_priorities(50)
    assert sorted(p.tolist()) == list(range(50))


def test_machine_seed_determinism():
    a = PramMachine(seed=3).random_priorities(10)
    b = PramMachine(seed=3).random_priorities(10)
    assert np.array_equal(a, b)


# -- cost-charging contracts ---------------------------------------------------

def test_map_charges_unit_depth(m, rng):
    a = rng.random((8, 8))
    before = m.snapshot()
    m.map(lambda x: x, a)
    d = m.ledger.since(before)
    assert d.work == 64 and d.depth == 1


def test_reduce_charges_log_depth(m, rng):
    a = rng.random((16, 16))  # 256 elements -> depth 9
    before = m.snapshot()
    m.reduce(a, "add")
    d = m.ledger.since(before)
    assert d.work == 256 and d.depth == 9


def test_sort_rows_charges_superlinear_work(m, rng):
    a = rng.random((4, 256))
    before = m.snapshot()
    m.sort_rows(a)
    d = m.ledger.since(before)
    assert d.work == pytest.approx(4 * 256 * 8)
    assert d.depth == pytest.approx(8)


def test_calls_tracked_per_op(m, rng):
    a = rng.random((4, 4))
    m.reduce(a, "min", axis=1)
    m.reduce(a, "min", axis=0)
    m.scan(a, "add", axis=1)
    assert m.ledger.calls_by_op["reduce[min]"] == 2
    assert m.ledger.calls_by_op["scan[add]"] == 1


def test_bump_round_delegates(m):
    m.bump_round("phase")
    assert m.ledger.rounds["phase"] == 1


def test_frontier_primitives_charge(m, rng):
    a = rng.random((8, 8))
    m.take_rows(a, np.array([1, 2]))
    m.take_submatrix(a, np.array([0, 3]), np.array([1, 2]))
    m.pack_rows(a, np.tile(np.array([True, False] * 4), (8, 1)))
    m.count_votes(np.array([0, 1, 1]), 3)
    m.masked_axpy(1.0, a, 0.0)
    assert m.ledger.calls_by_op["take_rows"] == 2  # take_submatrix shares the label
    assert m.ledger.calls_by_op["pack_rows"] == 1
    assert m.ledger.calls_by_op["count_votes"] == 1
    assert m.ledger.calls_by_op["masked_axpy"] == 1
    assert m.ledger.work > 0
    # gathers are O(1)-depth parallel reads; pack/count carry log depth
    assert m.ledger.depth < m.ledger.work


# -- property-based agreement with NumPy ---------------------------------------

@settings(max_examples=40, deadline=None)
@given(
    arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(1, 8), st.integers(1, 8)),
        elements=st.floats(-100, 100, allow_nan=False),
    )
)
def test_scan_then_last_equals_reduce(a):
    m = PramMachine(seed=0)
    scanned = m.scan(a, "add", axis=1)
    assert np.allclose(scanned[:, -1], m.reduce(a, "add", axis=1))


@settings(max_examples=40, deadline=None)
@given(
    arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(1, 8), st.integers(1, 8)),
        elements=st.floats(-1e6, 1e6, allow_nan=False),
    )
)
def test_sort_rows_is_permutation_and_ordered(a):
    m = PramMachine(seed=0)
    s = m.sort_rows(a)
    assert np.all(np.diff(s, axis=1) >= 0)
    assert np.allclose(np.sort(a, axis=1), s)


# -- backend lifecycle --------------------------------------------------------

def test_machine_context_manager_closes_owned_backend(rng):
    backend = ThreadBackend(2, grain=4)
    with PramMachine(backend=backend, seed=1) as m:
        a = rng.random((16, 8))
        assert np.allclose(m.reduce(a, "add", axis=1), a.sum(axis=1))
    assert backend.closed


def test_machine_close_leaves_shared_backend_open():
    m = PramMachine(backend="serial", seed=1)
    shared = m.backend
    m.close()
    assert not shared.closed
    # a second machine on the same spec reuses the still-open instance
    assert PramMachine(backend="serial").backend is shared


def test_ensure_machine_passthrough_and_conflict():
    m = PramMachine(seed=3)
    assert ensure_machine(m) is m
    with pytest.raises(InvalidParameterError):
        ensure_machine(m, backend="serial")


def test_ensure_machine_builds_on_named_backend():
    m = ensure_machine(backend="serial", seed=9)
    assert isinstance(m.backend, SerialBackend)
    # "auto" with a tiny size hint resolves to serial on any host
    m2 = ensure_machine(backend="auto", seed=9, size=4)
    assert m2.backend.name == "serial"
