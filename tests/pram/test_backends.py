"""Backends agree with plain NumPy — serial, threaded, and process.

The pool backends are exercised with a tiny grain so the parallel code
paths actually run on test-sized arrays.
"""

import os
import threading
import time

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.pram.backends import (
    AUTO_BACKEND_MIN_SIZE,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    available_backends,
    make_backend,
    register_backend,
    resolve_backend_name,
    shared_backend,
)
from repro.pram.operators import ADD, MAX, MIN, OR


@pytest.fixture(params=["serial", "thread1", "thread3", "process2"])
def backend(request):
    if request.param == "serial":
        b = SerialBackend()
    elif request.param == "thread1":
        b = ThreadBackend(1, grain=4)
    elif request.param == "thread3":
        b = ThreadBackend(3, grain=4)
    else:
        b = ProcessBackend(2, grain=4)
    yield b
    b.close()


@pytest.fixture
def data(rng):
    return rng.random((37, 23))


def test_elementwise_matches(backend, data):
    out = backend.elementwise(lambda a, b: a * 2 + b, (data, data))
    assert np.allclose(out, data * 3)


def test_elementwise_single_array(backend, data):
    assert np.allclose(backend.elementwise(np.sqrt, (data,)), np.sqrt(data))


@pytest.mark.parametrize("op,ref", [(ADD, np.sum), (MIN, np.min), (MAX, np.max)])
@pytest.mark.parametrize("axis", [0, 1, None])
def test_reduce_matches(backend, data, op, ref, axis):
    assert np.allclose(backend.reduce(op, data, axis), ref(data, axis=axis))


def test_reduce_or(backend):
    m = np.zeros((8, 8), dtype=bool)
    m[2, 3] = m[5, 0] = True
    assert np.array_equal(backend.reduce(OR, m, 1), m.any(axis=1))
    assert np.array_equal(backend.reduce(OR, m, 0), m.any(axis=0))


@pytest.mark.parametrize("op,ref", [(ADD, np.cumsum), (MIN, np.minimum.accumulate)])
def test_scan_matches(backend, data, op, ref):
    want = ref(data, axis=1) if op is ADD else np.minimum.accumulate(data, axis=1)
    assert np.allclose(backend.scan(op, data, 1), want)


def test_sort_matches(backend, data):
    assert np.array_equal(backend.sort(data, 1), np.sort(data, axis=1))


def test_argsort_matches(backend, data):
    got = backend.argsort(data, 1)
    assert np.array_equal(np.take_along_axis(data, got, 1), np.sort(data, axis=1))


def test_thread_backend_large_array_consistency(rng):
    b = ThreadBackend(4, grain=64)
    try:
        big = rng.random((503, 101))
        assert np.allclose(b.reduce(ADD, big, 1), big.sum(axis=1))
        assert np.allclose(b.reduce(ADD, big, 0), big.sum(axis=0))
        assert np.allclose(b.reduce(ADD, big, None), big.sum())
        assert np.array_equal(b.sort(big, 1), np.sort(big, axis=1))
    finally:
        b.close()


@pytest.mark.parametrize("cls", [ThreadBackend, ProcessBackend])
def test_pool_backend_worker_validation(cls):
    with pytest.raises(InvalidParameterError):
        cls(0)


@pytest.mark.parametrize("cls", [ThreadBackend, ProcessBackend])
def test_pool_backend_small_falls_back(cls, rng):
    with cls(2, grain=1 << 20) as b:
        small = rng.random((4, 4))
        assert np.allclose(b.reduce(ADD, small, 1), small.sum(axis=1))


@pytest.mark.parametrize("cls", [ThreadBackend, ProcessBackend])
def test_pool_backend_close_idempotent(cls):
    b = cls(2)
    assert not b.closed
    b.close()
    b.close()
    assert b.closed


@pytest.mark.parametrize("cls", [ThreadBackend, ProcessBackend])
def test_use_after_close_is_serial_but_correct(cls, rng):
    """Pinned-down contract: a closed pool backend keeps computing every
    kernel correctly via the serial fallback (no exception, no pool)."""
    b = cls(2, grain=4)
    a = rng.random((64, 16))
    before = b.reduce(ADD, a, 1)
    b.close()
    assert b.closed
    assert np.array_equal(b.reduce(ADD, a, 1), before)
    assert np.array_equal(b.sort(a, 1), np.sort(a, axis=1))
    assert np.array_equal(
        b.elementwise(lambda x: x * 2, (a,)), a * 2
    )
    assert b._pool is None  # the fallback really is pool-less


@pytest.mark.parametrize("cls", [ThreadBackend, ProcessBackend])
def test_backend_context_manager(cls, rng):
    with cls(2, grain=4) as b:
        a = rng.random((32, 8))
        assert np.allclose(b.reduce(ADD, a, None), a.sum())
    assert b.closed


def test_names():
    assert SerialBackend().name == "serial"
    assert ThreadBackend(1).name == "thread"
    assert ProcessBackend(1).name == "process"


def test_elementwise_broadcasts_mixed_shapes(backend, data):
    """Column/row vectors broadcast against the matrix on every backend."""
    col = data[:, :1]
    row = data[:1, :]
    out = backend.elementwise(lambda m, c, r: m + c * r, (data, col, row))
    assert np.allclose(out, data + col * row)


def test_thread_backend_mixed_shapes_run_on_pool(rng, monkeypatch):
    """Large mixed-shape maps must hit the pool, not the serial fallback."""
    b = ThreadBackend(3, grain=4)
    try:
        big = rng.random((211, 67))
        col = rng.random((211, 1))
        calls = {"serial": 0}
        orig = b._serial.elementwise

        def spy(fn, arrays):
            calls["serial"] += 1
            return orig(fn, arrays)

        monkeypatch.setattr(b._serial, "elementwise", spy)
        out = b.elementwise(lambda m, c: m - c, (big, col))
        assert np.allclose(out, big - col)
        assert calls["serial"] == 0, "mixed-shape map fell back to serial"
    finally:
        b.close()


def test_thread_backend_nonbroadcastable_falls_back(rng):
    """Shape-incompatible args still work via the serial path (fn decides)."""
    b = ThreadBackend(2, grain=1)
    try:
        big = rng.random((64, 8))
        # fn ignores the second argument's shape entirely
        out = b.elementwise(lambda m, v: m * 2 + v.sum() * 0, (big, rng.random(5)))
        assert np.allclose(out, big * 2)
    finally:
        b.close()


def test_count_votes_matches_bincount(backend, rng):
    labels = rng.integers(0, 11, size=5000)
    got = backend.count_votes(labels, 11)
    assert np.array_equal(got, np.bincount(labels, minlength=11))


def test_count_votes_empty(backend):
    assert np.array_equal(backend.count_votes(np.zeros(0, dtype=np.intp), 4), np.zeros(4, dtype=int))


def test_fused_axpy_matches_reference(backend, rng):
    x = rng.random((57, 33))
    y = rng.random((57, 33))
    mask = rng.random((57, 33)) < 0.5
    want = np.where(mask, np.maximum(0.25, -2.0 * x + y), -1.0)
    got = backend.fused_axpy(-2.0, x, y, clamp_min=0.25, mask=mask, fill=-1.0)
    assert np.allclose(got, want)


def test_fused_axpy_scalar_y_and_broadcast(backend, rng):
    x = rng.random((41, 29))
    got = backend.fused_axpy(-1.0, x, 0.75, clamp_min=0.0)
    assert np.allclose(got, np.maximum(0.0, 0.75 - x))
    col = rng.random((41, 1))
    got2 = backend.fused_axpy(3.0, col, np.zeros((41, 29)))
    assert np.allclose(got2, np.broadcast_to(3.0 * col, (41, 29)))


# -- registry, factory, and environment default -------------------------------

def test_make_backend_names_and_passthrough():
    assert isinstance(make_backend("serial"), SerialBackend)
    with make_backend("thread", num_workers=2, grain=16) as b:
        assert isinstance(b, ThreadBackend)
        assert b.num_workers == 2 and b.grain == 16
    with make_backend("process", num_workers=2, grain=32) as b:
        assert isinstance(b, ProcessBackend)
        assert b.num_workers == 2 and b.grain == 32
    existing = SerialBackend()
    assert make_backend(existing) is existing


def test_make_backend_unknown_name_rejected():
    with pytest.raises(InvalidParameterError):
        make_backend("gpu")
    with pytest.raises(InvalidParameterError):
        resolve_backend_name("quantum")


def test_available_backends_lists_builtins():
    names = available_backends()
    assert {"serial", "thread", "process"} <= set(names)


def test_auto_policy_mirrors_compaction(monkeypatch):
    import repro.pram.backends as backends_mod

    # Multicore host: size decides.
    monkeypatch.setattr(backends_mod.os, "cpu_count", lambda: 8)
    assert resolve_backend_name("auto", AUTO_BACKEND_MIN_SIZE) == "thread"
    assert resolve_backend_name("auto", AUTO_BACKEND_MIN_SIZE - 1) == "serial"
    assert resolve_backend_name("auto", None) == "thread"
    # Single-CPU host: always serial, regardless of size.
    monkeypatch.setattr(backends_mod.os, "cpu_count", lambda: 1)
    assert resolve_backend_name("auto", 10**9) == "serial"


def test_register_backend_extension_hook():
    class NullBackend(SerialBackend):
        name = "null-test"

    register_backend("null-test", lambda num_workers, grain: NullBackend())
    try:
        assert isinstance(make_backend("null-test"), NullBackend)
        assert "null-test" in available_backends()
    finally:
        from repro.pram.backends import _BACKEND_REGISTRY

        _BACKEND_REGISTRY.pop("null-test")
    with pytest.raises(InvalidParameterError):
        register_backend("auto", lambda num_workers, grain: NullBackend())


def test_shared_backend_env_default(monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "thread")
    monkeypatch.setenv("REPRO_NUM_WORKERS", "2")
    monkeypatch.setenv("REPRO_GRAIN", "64")
    b = shared_backend()
    assert isinstance(b, ThreadBackend)
    assert b.num_workers == 2 and b.grain == 64
    # same resolved configuration -> same cached instance
    assert shared_backend() is b
    # a closed shared backend is transparently rebuilt
    b.close()
    b2 = shared_backend()
    assert b2 is not b and not b2.closed
    b2.close()


def test_shared_backend_rejects_bad_env(monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "warp-drive")
    with pytest.raises(InvalidParameterError):
        shared_backend()
    monkeypatch.setenv("REPRO_BACKEND", "thread")
    monkeypatch.setenv("REPRO_NUM_WORKERS", "lots")
    with pytest.raises(InvalidParameterError):
        shared_backend()


def test_shared_backend_instance_passthrough():
    b = SerialBackend()
    assert shared_backend(b) is b


@pytest.mark.parametrize("raw", ["", "   ", "\t\n"])
def test_shared_backend_empty_env_means_unset(monkeypatch, raw):
    # CI matrices easily materialize REPRO_BACKEND="" for the default
    # leg; that must resolve to the serial fallback, not to a backend
    # literally named "".
    monkeypatch.setenv("REPRO_BACKEND", raw)
    b = shared_backend()
    assert isinstance(b, SerialBackend)


def test_shared_backend_env_still_strips_padding(monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "  serial  ")
    assert isinstance(shared_backend(), SerialBackend)


def test_close_shared_backends_tolerates_late_registration(monkeypatch):
    # Closing one shared backend may drain work that registers *new*
    # shared backends (a serving tier flushing its queue at shutdown);
    # the atexit sweep must not die on "dict changed size during
    # iteration", must close the late arrivals too, and must tolerate
    # entries that were already closed by their owner.
    from repro.pram.backends import _SHARED_BACKENDS, _close_shared_backends

    saved = dict(_SHARED_BACKENDS)
    _SHARED_BACKENDS.clear()
    closes = []
    try:
        class Tracked(SerialBackend):
            def __init__(self, tag):
                self.tag = tag

            def close(self):
                closes.append(self.tag)
                super().close()

        late = Tracked("late")

        class RegistersOnClose(Tracked):
            def close(self):
                _SHARED_BACKENDS[("late", None, None)] = late
                super().close()

        _SHARED_BACKENDS[("first", None, None)] = RegistersOnClose("first")
        dead = ThreadBackend(1, grain=4)
        dead.close()  # already closed by its owner: the sweep re-close is a no-op
        _SHARED_BACKENDS[("dead", None, None)] = dead
        _close_shared_backends()
        assert "first" in closes and "late" in closes
        assert not _SHARED_BACKENDS
    finally:
        _SHARED_BACKENDS.clear()
        _SHARED_BACKENDS.update(saved)


# -- submit_batch: the shard-parallel task fan-out (PR 5) -------------------

def _square(x):
    return x * x


class TestSubmitBatch:
    def test_serial_runs_in_order(self):
        from repro.pram.backends import SerialBackend

        assert SerialBackend().submit_batch(_square, [1, 2, 3]) == [1, 4, 9]

    def test_thread_pool_matches_serial(self):
        from repro.pram.backends import ThreadBackend

        with ThreadBackend(num_workers=2, grain=1) as b:
            assert b.submit_batch(_square, range(10)) == [x * x for x in range(10)]

    def test_process_pool_matches_serial(self):
        from repro.pram.backends import ProcessBackend

        with ProcessBackend(num_workers=2, grain=1) as b:
            assert b.submit_batch(_square, range(6)) == [x * x for x in range(6)]

    def test_closed_backend_falls_back_to_serial(self):
        from repro.pram.backends import ThreadBackend

        b = ThreadBackend(num_workers=2, grain=1)
        b.close()
        assert b.submit_batch(_square, [4, 5]) == [16, 25]

    def test_unpicklable_fn_falls_back_on_process_pool(self):
        from repro.pram.backends import ProcessBackend

        captured = []

        def closure(x):  # locals + side effect: unpicklable for a process pool
            captured.append(x)
            return x + 1

        with ProcessBackend(num_workers=2, grain=1) as b:
            assert b.submit_batch(closure, [1, 2]) == [2, 3]
        assert captured == [1, 2]

    def test_single_item_skips_pool(self):
        from repro.pram.backends import ThreadBackend

        with ThreadBackend(num_workers=2, grain=1) as b:
            assert b.submit_batch(_square, [7]) == [49]


# -- submit_batch failure reporting + close-under-in-flight (PR 6) ----------

def _boom_on_two(x):
    if x == 2:
        raise ValueError(f"item {x} exploded")
    return x * x


def _slow_square(x):
    time.sleep(0.03)
    return x * x


class TestSubmitBatchFailures:
    """The bare ``except Exception`` fix: a failing item re-raises with
    its batch index attached (``exc.batch_index`` + ``__notes__``) after
    cancelling the outstanding futures."""

    @pytest.mark.parametrize("cls", [ThreadBackend, ProcessBackend])
    def test_failure_carries_batch_index_and_note(self, cls):
        with cls(num_workers=2, grain=1) as b:
            with pytest.raises(ValueError, match="item 2 exploded") as ei:
                b.submit_batch(_boom_on_two, [0, 1, 2, 3, 4])
        assert ei.value.batch_index == 2
        notes = getattr(ei.value, "__notes__", [])
        assert any("item 2 of 5" in n and b.name in n for n in notes)

    def test_failure_on_serial_path_also_annotated(self):
        b = ThreadBackend(num_workers=2, grain=1)
        b.close()  # forces the pool-less loop
        with pytest.raises(ValueError) as ei:
            b.submit_batch(_boom_on_two, [1, 2, 3])
        assert ei.value.batch_index == 1

    @pytest.mark.parametrize("cls", [ThreadBackend, ProcessBackend])
    def test_backend_usable_after_batch_failure(self, cls):
        with cls(num_workers=2, grain=1) as b:
            with pytest.raises(ValueError):
                b.submit_batch(_boom_on_two, [2, 3])
            assert b.submit_batch(_square, [3, 4]) == [9, 16]


class TestCloseUnderInflightBatch:
    """``close()`` racing a live ``submit_batch`` must neither deadlock
    nor lose results: cancelled tasks are re-run in the caller, so the
    batch still returns the full, correct output."""

    @pytest.mark.parametrize("cls", [ThreadBackend, ProcessBackend])
    def test_close_midbatch_drains_and_completes(self, cls):
        b = cls(num_workers=2, grain=1)
        out: dict = {}

        def run():
            out["results"] = b.submit_batch(_slow_square, list(range(12)))

        t = threading.Thread(target=run)
        t.start()
        time.sleep(0.05)  # let a few tasks start
        b.close()  # must return promptly, not deadlock
        t.join(timeout=30)
        assert not t.is_alive(), "submit_batch deadlocked against close()"
        assert out["results"] == [x * x for x in range(12)]
        assert b.closed and b._pool is None

    def test_close_midbatch_is_reentrant_safe(self):
        b = ThreadBackend(num_workers=3, grain=1)
        outs = []
        threads = [
            threading.Thread(
                target=lambda: outs.append(b.submit_batch(_slow_square, range(6)))
            )
            for _ in range(3)
        ]
        for t in threads:
            t.start()
        time.sleep(0.04)
        b.close()
        b.close()  # idempotent under fire
        for t in threads:
            t.join(timeout=30)
        assert all(not t.is_alive() for t in threads)
        assert outs == [[x * x for x in range(6)]] * 3


# -- zero-copy batch transport (PR 7) ---------------------------------------

def _sum_scaled(item):
    pts, scale = item
    return float(np.asarray(pts, dtype=float).sum()) * scale


def _writable_flags(item):
    def walk(v):
        if isinstance(v, np.ndarray):
            return [bool(v.flags.writeable)]
        if isinstance(v, (tuple, list)):
            return [f for x in v for f in walk(x)]
        if isinstance(v, dict):
            return [f for x in v.values() for f in walk(x)]
        return []
    return walk(item)


def _col_means(arr):
    return arr.mean(axis=0)  # fresh array, never a view of the segment


class TestZeroCopyTransport:
    """ProcessBackend.submit_batch ships large ndarrays by shared-memory
    name; results must be byte-identical to the pickled transport, and
    every segment must be unlinked once the batch drains."""

    @staticmethod
    def _big(seed, rows=6000):
        return np.random.default_rng(seed).normal(size=(rows, 2))

    def test_pack_replaces_only_large_arrays(self):
        from repro.pram.backends import (
            SHM_ITEM_MIN_BYTES,
            _ShmItemRef,
            pack_batch_items,
        )

        big = self._big(0)
        small = np.arange(4)
        obj = np.array([None, {"x": 1}], dtype=object)
        assert big.nbytes >= SHM_ITEM_MIN_BYTES > small.nbytes
        packed, shms = pack_batch_items([(big, small, obj, "tag", 7)])
        try:
            pb, ps, po, tag, scalar = packed[0]
            assert isinstance(pb, _ShmItemRef)
            assert ps is small and po is obj  # inline: below threshold / object
            assert tag == "tag" and scalar == 7
            assert len(shms) == 1
        finally:
            for shm in shms:
                shm.close()
                shm.unlink()

    def test_pack_unpack_round_trip_nested(self):
        from repro.pram.backends import _unpack_value, pack_batch_items

        big = self._big(1)
        item = {"blocks": [big, (big[:3000].copy(), 2.5)], "k": 3}
        packed, shms = pack_batch_items([item])
        attached: list = []
        try:
            out = _unpack_value(packed[0], attached)
            np.testing.assert_array_equal(out["blocks"][0], big)
            np.testing.assert_array_equal(out["blocks"][1][0], big[:3000])
            assert out["blocks"][1][1] == 2.5 and out["k"] == 3
            assert not out["blocks"][0].flags.writeable
        finally:
            for shm in attached:
                shm.close()
            for shm in shms:
                shm.close()
                shm.unlink()

    def test_pack_dedupes_repeated_array_object(self):
        from repro.pram.backends import pack_batch_items

        big = self._big(2)
        packed, shms = pack_batch_items([(big, 1.0), (big, 2.0), [big]])
        try:
            assert len(shms) == 1  # one segment serves all three items
            names = {packed[0][0].spec[0], packed[1][0].spec[0], packed[2][0].spec[0]}
            assert names == {shms[0].name}
        finally:
            for shm in shms:
                shm.close()
                shm.unlink()

    def test_zero_copy_matches_pickled_transport(self):
        blocks = [self._big(s) for s in range(4)]
        items = [(b, 0.5 + s) for s, b in enumerate(blocks)]
        with ProcessBackend(2, grain=1, shm_items=False) as pickled:
            want = pickled.submit_batch(_sum_scaled, items)
        with ProcessBackend(2, grain=1) as zero_copy:
            assert zero_copy._batch_shm_items
            got = zero_copy.submit_batch(_sum_scaled, items)
        assert got == want  # float equality: byte-identical transport

    def test_worker_views_are_read_only(self):
        items = [(self._big(7), {"w": self._big(8)}), (self._big(9), {"w": self._big(10)})]
        with ProcessBackend(2, grain=1) as b:
            flags = b.submit_batch(_writable_flags, items)
        assert flags == [[False, False], [False, False]]

    def test_array_results_are_safe_copies(self):
        blocks = [self._big(s) for s in (3, 4)]
        with ProcessBackend(2, grain=1) as b:
            outs = b.submit_batch(_col_means, blocks)
        for out, block in zip(outs, blocks):
            np.testing.assert_array_equal(out, block.mean(axis=0))

    def test_segments_unlinked_after_batch(self):
        from multiprocessing import shared_memory

        from repro.pram.backends import pack_batch_items

        big = self._big(5)
        packed, shms = pack_batch_items([(big, 1.0)])
        name = shms[0].name
        for shm in shms:
            shm.close()
            shm.unlink()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

        # and the real path: after submit_batch returns, nothing lingers
        before = set(os.listdir("/dev/shm")) if os.path.isdir("/dev/shm") else None
        with ProcessBackend(2, grain=1) as b:
            b.submit_batch(_sum_scaled, [(self._big(6), 1.0)] * 3)
        if before is not None:
            leaked = {
                n for n in set(os.listdir("/dev/shm")) - before if n.startswith("psm_")
            }
            assert not leaked

    def test_thread_backend_never_packs(self):
        with ThreadBackend(2, grain=1) as b:
            assert not b._batch_shm_items
            got = b.submit_batch(_sum_scaled, [(self._big(9), 2.0)])
        assert got == [pytest.approx(self._big(9).sum() * 2.0)]


class TestPicklabilityProbeCache:
    def test_probe_and_cache(self):
        from repro.pram.backends import _PICKLABLE_FNS, fn_picklable

        assert fn_picklable(_square) is True
        assert _PICKLABLE_FNS.get(_square) is True

        captured = []

        def closure(x):
            captured.append(x)
            return x

        assert fn_picklable(closure) is False
        assert _PICKLABLE_FNS.get(closure) is False
        # second call is a pure cache hit (same answer, no re-probe)
        assert fn_picklable(closure) is False

    def test_unweakrefable_callable_still_probes(self):
        from repro.pram.backends import fn_picklable

        # builtins cannot be weak-referenced; the cache must degrade to
        # a plain probe rather than raise
        assert fn_picklable(len) is True
        assert fn_picklable(len) is True

    def test_cache_entry_dies_with_function(self):
        import gc

        from repro.pram.backends import _PICKLABLE_FNS, fn_picklable

        def ephemeral(x):
            return x

        fn_picklable(ephemeral)
        assert ephemeral in _PICKLABLE_FNS
        del ephemeral
        gc.collect()
        assert not any(
            getattr(f, "__name__", "") == "ephemeral" for f in _PICKLABLE_FNS
        )
