"""Backends agree with plain NumPy — serial and threaded, all kernels.

The thread backend is exercised with a tiny grain so the parallel code
paths actually run on test-sized arrays.
"""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.pram.backends import SerialBackend, ThreadBackend
from repro.pram.operators import ADD, MAX, MIN, OR


@pytest.fixture(params=["serial", "thread1", "thread3"])
def backend(request):
    if request.param == "serial":
        b = SerialBackend()
    elif request.param == "thread1":
        b = ThreadBackend(1, grain=4)
    else:
        b = ThreadBackend(3, grain=4)
    yield b
    b.close()


@pytest.fixture
def data(rng):
    return rng.random((37, 23))


def test_elementwise_matches(backend, data):
    out = backend.elementwise(lambda a, b: a * 2 + b, (data, data))
    assert np.allclose(out, data * 3)


def test_elementwise_single_array(backend, data):
    assert np.allclose(backend.elementwise(np.sqrt, (data,)), np.sqrt(data))


@pytest.mark.parametrize("op,ref", [(ADD, np.sum), (MIN, np.min), (MAX, np.max)])
@pytest.mark.parametrize("axis", [0, 1, None])
def test_reduce_matches(backend, data, op, ref, axis):
    assert np.allclose(backend.reduce(op, data, axis), ref(data, axis=axis))


def test_reduce_or(backend):
    m = np.zeros((8, 8), dtype=bool)
    m[2, 3] = m[5, 0] = True
    assert np.array_equal(backend.reduce(OR, m, 1), m.any(axis=1))
    assert np.array_equal(backend.reduce(OR, m, 0), m.any(axis=0))


@pytest.mark.parametrize("op,ref", [(ADD, np.cumsum), (MIN, np.minimum.accumulate)])
def test_scan_matches(backend, data, op, ref):
    want = ref(data, axis=1) if op is ADD else np.minimum.accumulate(data, axis=1)
    assert np.allclose(backend.scan(op, data, 1), want)


def test_sort_matches(backend, data):
    assert np.array_equal(backend.sort(data, 1), np.sort(data, axis=1))


def test_argsort_matches(backend, data):
    got = backend.argsort(data, 1)
    assert np.array_equal(np.take_along_axis(data, got, 1), np.sort(data, axis=1))


def test_thread_backend_large_array_consistency(rng):
    b = ThreadBackend(4, grain=64)
    try:
        big = rng.random((503, 101))
        assert np.allclose(b.reduce(ADD, big, 1), big.sum(axis=1))
        assert np.allclose(b.reduce(ADD, big, 0), big.sum(axis=0))
        assert np.allclose(b.reduce(ADD, big, None), big.sum())
        assert np.array_equal(b.sort(big, 1), np.sort(big, axis=1))
    finally:
        b.close()


def test_thread_backend_worker_validation():
    with pytest.raises(InvalidParameterError):
        ThreadBackend(0)


def test_thread_backend_small_falls_back(rng):
    b = ThreadBackend(2, grain=1 << 20)
    try:
        small = rng.random((4, 4))
        assert np.allclose(b.reduce(ADD, small, 1), small.sum(axis=1))
    finally:
        b.close()


def test_thread_backend_close_idempotent():
    b = ThreadBackend(2)
    b.close()
    b.close()


def test_names():
    assert SerialBackend().name == "serial"
    assert ThreadBackend(1).name == "thread"


def test_elementwise_broadcasts_mixed_shapes(backend, data):
    """Column/row vectors broadcast against the matrix on every backend."""
    col = data[:, :1]
    row = data[:1, :]
    out = backend.elementwise(lambda m, c, r: m + c * r, (data, col, row))
    assert np.allclose(out, data + col * row)


def test_thread_backend_mixed_shapes_run_on_pool(rng, monkeypatch):
    """Large mixed-shape maps must hit the pool, not the serial fallback."""
    b = ThreadBackend(3, grain=4)
    try:
        big = rng.random((211, 67))
        col = rng.random((211, 1))
        calls = {"serial": 0}
        orig = b._serial.elementwise

        def spy(fn, arrays):
            calls["serial"] += 1
            return orig(fn, arrays)

        monkeypatch.setattr(b._serial, "elementwise", spy)
        out = b.elementwise(lambda m, c: m - c, (big, col))
        assert np.allclose(out, big - col)
        assert calls["serial"] == 0, "mixed-shape map fell back to serial"
    finally:
        b.close()


def test_thread_backend_nonbroadcastable_falls_back(rng):
    """Shape-incompatible args still work via the serial path (fn decides)."""
    b = ThreadBackend(2, grain=1)
    try:
        big = rng.random((64, 8))
        # fn ignores the second argument's shape entirely
        out = b.elementwise(lambda m, v: m * 2 + v.sum() * 0, (big, rng.random(5)))
        assert np.allclose(out, big * 2)
    finally:
        b.close()


def test_count_votes_matches_bincount(backend, rng):
    labels = rng.integers(0, 11, size=5000)
    got = backend.count_votes(labels, 11)
    assert np.array_equal(got, np.bincount(labels, minlength=11))


def test_count_votes_empty(backend):
    assert np.array_equal(backend.count_votes(np.zeros(0, dtype=np.intp), 4), np.zeros(4, dtype=int))


def test_fused_axpy_matches_reference(backend, rng):
    x = rng.random((57, 33))
    y = rng.random((57, 33))
    mask = rng.random((57, 33)) < 0.5
    want = np.where(mask, np.maximum(0.25, -2.0 * x + y), -1.0)
    got = backend.fused_axpy(-2.0, x, y, clamp_min=0.25, mask=mask, fill=-1.0)
    assert np.allclose(got, want)


def test_fused_axpy_scalar_y_and_broadcast(backend, rng):
    x = rng.random((41, 29))
    got = backend.fused_axpy(-1.0, x, 0.75, clamp_min=0.0)
    assert np.allclose(got, np.maximum(0.0, 0.75 - x))
    col = rng.random((41, 1))
    got2 = backend.fused_axpy(3.0, col, np.zeros((41, 29)))
    assert np.allclose(got2, np.broadcast_to(3.0 * col, (41, 29)))
