"""Backends agree with plain NumPy — serial and threaded, all kernels.

The thread backend is exercised with a tiny grain so the parallel code
paths actually run on test-sized arrays.
"""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.pram.backends import SerialBackend, ThreadBackend
from repro.pram.operators import ADD, MAX, MIN, OR


@pytest.fixture(params=["serial", "thread1", "thread3"])
def backend(request):
    if request.param == "serial":
        b = SerialBackend()
    elif request.param == "thread1":
        b = ThreadBackend(1, grain=4)
    else:
        b = ThreadBackend(3, grain=4)
    yield b
    b.close()


@pytest.fixture
def data(rng):
    return rng.random((37, 23))


def test_elementwise_matches(backend, data):
    out = backend.elementwise(lambda a, b: a * 2 + b, (data, data))
    assert np.allclose(out, data * 3)


def test_elementwise_single_array(backend, data):
    assert np.allclose(backend.elementwise(np.sqrt, (data,)), np.sqrt(data))


@pytest.mark.parametrize("op,ref", [(ADD, np.sum), (MIN, np.min), (MAX, np.max)])
@pytest.mark.parametrize("axis", [0, 1, None])
def test_reduce_matches(backend, data, op, ref, axis):
    assert np.allclose(backend.reduce(op, data, axis), ref(data, axis=axis))


def test_reduce_or(backend):
    m = np.zeros((8, 8), dtype=bool)
    m[2, 3] = m[5, 0] = True
    assert np.array_equal(backend.reduce(OR, m, 1), m.any(axis=1))
    assert np.array_equal(backend.reduce(OR, m, 0), m.any(axis=0))


@pytest.mark.parametrize("op,ref", [(ADD, np.cumsum), (MIN, np.minimum.accumulate)])
def test_scan_matches(backend, data, op, ref):
    want = ref(data, axis=1) if op is ADD else np.minimum.accumulate(data, axis=1)
    assert np.allclose(backend.scan(op, data, 1), want)


def test_sort_matches(backend, data):
    assert np.array_equal(backend.sort(data, 1), np.sort(data, axis=1))


def test_argsort_matches(backend, data):
    got = backend.argsort(data, 1)
    assert np.array_equal(np.take_along_axis(data, got, 1), np.sort(data, axis=1))


def test_thread_backend_large_array_consistency(rng):
    b = ThreadBackend(4, grain=64)
    try:
        big = rng.random((503, 101))
        assert np.allclose(b.reduce(ADD, big, 1), big.sum(axis=1))
        assert np.allclose(b.reduce(ADD, big, 0), big.sum(axis=0))
        assert np.allclose(b.reduce(ADD, big, None), big.sum())
        assert np.array_equal(b.sort(big, 1), np.sort(big, axis=1))
    finally:
        b.close()


def test_thread_backend_worker_validation():
    with pytest.raises(InvalidParameterError):
        ThreadBackend(0)


def test_thread_backend_small_falls_back(rng):
    b = ThreadBackend(2, grain=1 << 20)
    try:
        small = rng.random((4, 4))
        assert np.allclose(b.reduce(ADD, small, 1), small.sum(axis=1))
    finally:
        b.close()


def test_thread_backend_close_idempotent():
    b = ThreadBackend(2)
    b.close()
    b.close()


def test_names():
    assert SerialBackend().name == "serial"
    assert ThreadBackend(1).name == "thread"
