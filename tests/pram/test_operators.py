"""Associative operators: identities, reductions, scans, registry."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.pram.operators import ADD, AND, MAX, MIN, OR, get_operator

ALL_OPS = [ADD, MIN, MAX, OR, AND]


@pytest.mark.parametrize("op", ALL_OPS)
def test_identity_is_two_sided(op):
    for v in ([0.5], [2.0], [True] if op.name in ("or", "and") else [-3.0]):
        x = np.asarray(v)
        assert np.array_equal(op.ufunc(op.identity, x), x.astype(op.ufunc(op.identity, x).dtype))
        assert np.array_equal(op.ufunc(x, op.identity), op.ufunc(op.identity, x))


def test_add_reduce_matches_sum():
    a = np.arange(12.0).reshape(3, 4)
    assert np.allclose(ADD.reduce(a, axis=1), a.sum(axis=1))
    assert np.allclose(ADD.reduce(a, axis=0), a.sum(axis=0))


def test_min_max_reduce():
    a = np.array([[3.0, 1.0, 2.0], [0.0, -1.0, 5.0]])
    assert np.array_equal(MIN.reduce(a, axis=1), [1.0, -1.0])
    assert np.array_equal(MAX.reduce(a, axis=1), [3.0, 5.0])


def test_bool_reduce():
    a = np.array([[True, False], [False, False]])
    assert np.array_equal(OR.reduce(a, axis=1), [True, False])
    assert np.array_equal(AND.reduce(a, axis=1), [False, False])


def test_reduce_empty_returns_identity():
    assert ADD.reduce(np.empty(0)) == 0
    assert MIN.reduce(np.empty(0)) == np.inf
    assert MAX.reduce(np.empty(0)) == -np.inf


def test_scan_inclusive_semantics():
    a = np.array([[1.0, 2.0, 3.0]])
    assert np.array_equal(ADD.scan(a, axis=1), [[1.0, 3.0, 6.0]])
    assert np.array_equal(MIN.scan(np.array([[3.0, 1.0, 2.0]]), axis=1), [[3.0, 1.0, 1.0]])
    assert np.array_equal(MAX.scan(np.array([[1.0, 3.0, 2.0]]), axis=1), [[1.0, 3.0, 3.0]])


@pytest.mark.parametrize("name,expected", [("add", ADD), ("min", MIN), ("max", MAX), ("or", OR), ("and", AND)])
def test_registry_lookup(name, expected):
    assert get_operator(name) is expected


def test_registry_unknown_raises():
    with pytest.raises(InvalidParameterError, match="unknown associative operator"):
        get_operator("xor")


def test_operator_is_hashable_and_frozen():
    with pytest.raises(AttributeError):
        ADD.name = "other"
    assert {ADD, MIN, ADD} == {ADD, MIN}
