"""Brent's-theorem projections from cost snapshots."""

import pytest

from repro.errors import InvalidParameterError
from repro.pram.brent import brent_time, parallelism, speedup_curve
from repro.pram.ledger import CostSnapshot


def snap(work, depth):
    return CostSnapshot(work=work, depth=depth, cache=0, calls=0)


def test_brent_time_formula():
    assert brent_time(snap(1000, 10), 1) == 1010
    assert brent_time(snap(1000, 10), 10) == 110
    assert brent_time(snap(1000, 10), 1000) == 11


def test_brent_time_invalid_processors():
    with pytest.raises(InvalidParameterError):
        brent_time(snap(10, 1), 0)


def test_parallelism_ratio():
    assert parallelism(snap(1000, 10)) == 100


def test_parallelism_zero_depth():
    assert parallelism(snap(100, 0)) == float("inf")
    assert parallelism(snap(0, 0)) == 1.0


def test_speedup_curve_monotone_and_bounded():
    costs = snap(10_000, 20)
    curve = speedup_curve(costs, [1, 2, 4, 8, 1_000_000])
    speeds = [s for _, s in curve]
    assert speeds[0] == pytest.approx(1.0)
    assert all(a <= b * (1 + 1e-12) for a, b in zip(speeds, speeds[1:]))
    # asymptote: T1/D ~ parallelism + 1
    assert speeds[-1] <= parallelism(costs) + 1


def test_speedup_at_parallelism_half_efficiency():
    costs = snap(1000, 10)
    p = 100  # = W/D
    t = brent_time(costs, p)
    assert brent_time(costs, 1) / t == pytest.approx(1010 / 20)
