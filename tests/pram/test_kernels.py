"""Kernel-provider layer: registry, selection, and the parity matrix.

The provider contract is *byte-identity*: every provider must reproduce
the numpy reference bit-for-bit on every segmented primitive, on every
backend, and through every seeded solver — swapping ``REPRO_KERNELS``
may move wall-clock, never results and never ledger charges. The numba
leg of the matrix runs only where numba is installed (CI's
optional-numba job); everywhere else it skips, it does not fail.
"""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.pram.backends import ProcessBackend, SerialBackend, ThreadBackend
from repro.pram.kernels import (
    KERNELS_ENV,
    KernelProvider,
    NumbaKernels,
    NumpyKernels,
    available_kernel_providers,
    make_kernel_provider,
    numba_available,
    register_kernel_provider,
    shared_kernel_provider,
    _PROVIDER_REGISTRY,
)
from repro.pram.machine import PramMachine

from tests.pram.test_segmented import ragged_case

#: Providers constructible on this host (numpy always; numba when the
#: optional dependency is installed — the CI numba leg).
PROVIDERS = available_kernel_providers()


def reference_machine(backend=None):
    return PramMachine(backend=backend, seed=0, kernels=NumpyKernels())


class TestRegistry:
    def test_numpy_always_available(self):
        assert "numpy" in PROVIDERS

    def test_numba_listed_only_when_importable(self):
        assert ("numba" in PROVIDERS) == numba_available()

    def test_make_unknown_rejected(self):
        with pytest.raises(InvalidParameterError, match="unknown kernel provider"):
            make_kernel_provider("cuda")

    @pytest.mark.skipif(numba_available(), reason="numba installed here")
    def test_numba_unavailable_raises_with_guidance(self):
        with pytest.raises(InvalidParameterError, match="numba"):
            NumbaKernels()

    def test_instance_passes_through(self):
        prov = NumpyKernels()
        assert make_kernel_provider(prov) is prov
        assert shared_kernel_provider(prov) is prov

    def test_shared_provider_cached_per_name(self):
        assert shared_kernel_provider("numpy") is shared_kernel_provider("numpy")

    def test_env_selection(self, monkeypatch):
        monkeypatch.setenv(KERNELS_ENV, "numpy")
        assert isinstance(make_kernel_provider(), NumpyKernels)
        monkeypatch.setenv(KERNELS_ENV, "not-a-provider")
        with pytest.raises(InvalidParameterError, match="unknown kernel provider"):
            make_kernel_provider()

    def test_register_extension_hook(self):
        class Doubling(NumpyKernels):
            name = "test-doubling"

        register_kernel_provider("test-doubling", Doubling)
        try:
            assert isinstance(make_kernel_provider("test-doubling"), Doubling)
            assert "test-doubling" in available_kernel_providers()
        finally:
            _PROVIDER_REGISTRY.pop("test-doubling", None)

    def test_register_rejects_empty_name(self):
        with pytest.raises(InvalidParameterError, match="invalid kernel provider"):
            register_kernel_provider("", NumpyKernels)

    def test_machine_accepts_name_and_instance(self):
        assert isinstance(PramMachine(kernels="numpy").kernels, NumpyKernels)
        prov = NumpyKernels()
        assert PramMachine(kernels=prov).kernels is prov

    def test_abstract_interface_raises(self):
        p = KernelProvider()
        v = np.array([1.0])
        i = np.array([0], dtype=np.intp)
        for call in (
            lambda: p.scatter_min(v, i, 1),
            lambda: p.scatter_add(v, i, 1),
            lambda: p.segmented_argmin(v, np.array([0, 1])),
            lambda: p.segmented_scan_add(v, np.array([0, 1])),
        ):
            with pytest.raises(NotImplementedError):
                call()


class TestNumpyReference:
    """The reference provider is exactly the pre-extraction code paths."""

    def test_scatter_min_is_minimum_at(self):
        rng = np.random.default_rng(0)
        v = rng.random(50)
        idx = rng.integers(0, 7, 50)
        ref = np.full(7, np.inf)
        np.minimum.at(ref, idx, v)
        np.testing.assert_array_equal(NumpyKernels().scatter_min(v, idx, 7), ref)

    def test_scatter_add_is_add_at(self):
        rng = np.random.default_rng(1)
        v = rng.random(50)
        idx = rng.integers(0, 7, 50)
        ref = np.zeros(7)
        np.add.at(ref, idx, v)
        np.testing.assert_array_equal(NumpyKernels().scatter_add(v, idx, 7), ref)

    def test_segmented_argmin_first_min_and_empty(self):
        out = NumpyKernels().segmented_argmin(
            np.array([3.0, 1.0, 1.0, 9.0, 2.0]), np.array([0, 3, 3, 5], dtype=np.intp)
        )
        np.testing.assert_array_equal(out, [1, -1, 4])

    def test_segmented_scan_left_to_right(self):
        values, indptr = ragged_case(4)
        out = NumpyKernels().segmented_scan_add(values.copy(), indptr)
        ref = np.concatenate(
            [np.cumsum(values[indptr[i]:indptr[i + 1]]) for i in range(indptr.size - 1)]
        )
        np.testing.assert_array_equal(out, ref)


@pytest.mark.parametrize("provider", PROVIDERS)
class TestProviderParityMatrix:
    """{numpy, numba-if-present} × {serial, thread, process}: every
    segmented primitive byte-identical to the reference, with identical
    ledger charges (providers never touch the cost model)."""

    @pytest.fixture(scope="class")
    def backends(self):
        pool = {
            "serial": SerialBackend(),
            "thread": ThreadBackend(2, grain=4),
            "process": ProcessBackend(2, grain=8),
        }
        yield pool
        for b in pool.values():
            b.close()

    @pytest.mark.parametrize("backend_name", ["serial", "thread", "process"])
    @pytest.mark.parametrize("seed", [0, 7])
    def test_primitives_byte_identical(self, backends, provider, backend_name, seed):
        values, indptr = ragged_case(seed, n_seg=40, max_len=12)
        n_seg = indptr.size - 1
        rng = np.random.default_rng(seed)
        idx = rng.integers(0, n_seg, values.size)

        ref = reference_machine(backends["serial"])
        m = PramMachine(backend=backends[backend_name], seed=0, kernels=provider)
        pairs = [
            (ref.scatter_min(values, idx, n_seg), m.scatter_min(values, idx, n_seg)),
            (ref.scatter_add(values, idx, n_seg), m.scatter_add(values, idx, n_seg)),
            (ref.segmented_argmin(values, indptr), m.segmented_argmin(values, indptr)),
            (ref.segmented_scan(values, indptr, "add"), m.segmented_scan(values, indptr, "add")),
        ]
        for want, got in pairs:
            assert got.dtype == want.dtype
            np.testing.assert_array_equal(got, want)
        assert m.ledger.work == ref.ledger.work
        assert m.ledger.depth == ref.ledger.depth

    def test_degenerate_shapes(self, provider):
        m = PramMachine(kernels=provider)
        np.testing.assert_array_equal(
            m.scatter_min(np.array([]), np.array([], dtype=np.intp), 3),
            [np.inf, np.inf, np.inf],
        )
        np.testing.assert_array_equal(
            m.scatter_add(np.array([]), np.array([], dtype=np.intp), 2), [0.0, 0.0]
        )
        np.testing.assert_array_equal(
            m.segmented_argmin(np.array([]), np.array([0, 0])), [-1]
        )
        np.testing.assert_array_equal(
            m.segmented_scan(np.array([]), np.array([0, 0]), "add"), []
        )

    def test_scatter_ties_keep_flat_order_semantics(self, provider):
        # Equal values on one target: min keeps the value (order
        # irrelevant for min), add accumulates in flat order — the
        # ufunc.at semantics every provider must reproduce exactly.
        v = np.array([0.1, 0.1, 0.3, 0.2])
        idx = np.array([0, 0, 1, 1], dtype=np.intp)
        m = PramMachine(kernels=provider)
        np.testing.assert_array_equal(m.scatter_min(v, idx, 2), [0.1, 0.2])
        np.testing.assert_array_equal(m.scatter_add(v, idx, 2), [0.2, 0.5])

    def test_seeded_solver_outputs_byte_identical(self, provider):
        """The acceptance invariant: a seeded sparse solve is
        byte-identical whichever provider computes the kernels."""
        from repro.core.local_search import parallel_kmedian
        from repro.metrics.generators import knn_clustering_instance

        inst = knn_clustering_instance(300, 4, neighbors=32, seed=5)
        ref_m = reference_machine()
        want = parallel_kmedian(inst, machine=ref_m)
        m = PramMachine(seed=0, kernels=provider)
        got = parallel_kmedian(inst, machine=m)
        np.testing.assert_array_equal(got.centers, want.centers)
        assert got.cost == want.cost
        assert m.ledger.work == ref_m.ledger.work

    def test_sharded_solve_byte_identical(self, provider):
        from repro.shard import shard_and_solve

        rng = np.random.default_rng(2)
        pts = rng.normal(size=(600, 2))
        want = shard_and_solve(pts, 5, shards=3, seed=9, machine=reference_machine())
        got = shard_and_solve(
            pts, 5, shards=3, seed=9, machine=PramMachine(seed=0, kernels=provider)
        )
        np.testing.assert_array_equal(got.centers, want.centers)
        assert got.true_cost == want.true_cost
