"""Segmented (CSR) PRAM primitives: correctness, parity, charges.

The segmented kernels are the sparse subsystem's counterpart of the
dense row reductions: per-segment min/sum/or over a flat CSR layout,
frontier-restricted segment gathers, and scatter combines for the
column axis. Every kernel must be byte-identical across the three
backends (segments are never split), and the uniform-segment fast path
must match the dense 2-D kernels bit-for-bit.
"""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.pram.backends import (
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    _segmented_reduce_kernel,
)
from repro.pram.machine import PramMachine
from repro.pram.operators import get_operator


def ragged_case(seed=0, n_seg=23, max_len=9):
    rng = np.random.default_rng(seed)
    lens = rng.integers(0, max_len, size=n_seg)
    indptr = np.concatenate(([0], np.cumsum(lens))).astype(np.intp)
    values = rng.random(int(indptr[-1]))
    return values, indptr


def reference_reduce(values, indptr, op):
    oper = get_operator(op)
    return np.array(
        [
            oper.reduce(values[indptr[i] : indptr[i + 1]])
            for i in range(indptr.size - 1)
        ]
    )


class TestSegmentedReduceKernel:
    @pytest.mark.parametrize("op", ["add", "min", "max"])
    def test_matches_reference(self, op):
        values, indptr = ragged_case(1)
        out = _segmented_reduce_kernel(get_operator(op), values, indptr)
        np.testing.assert_allclose(out, reference_reduce(values, indptr, op))

    def test_empty_segments_get_identity(self):
        values = np.array([2.0, 5.0])
        indptr = np.array([0, 0, 1, 1, 2, 2])
        out = _segmented_reduce_kernel(get_operator("min"), values, indptr)
        np.testing.assert_array_equal(out, [np.inf, 2.0, np.inf, 5.0, np.inf])

    def test_all_empty(self):
        out = _segmented_reduce_kernel(
            get_operator("add"), np.array([]), np.array([0, 0, 0])
        )
        np.testing.assert_array_equal(out, [0.0, 0.0])

    def test_bool_or(self):
        values = np.array([False, True, False, False])
        indptr = np.array([0, 2, 2, 4])
        out = _segmented_reduce_kernel(get_operator("or"), values, indptr)
        assert out.dtype == bool
        np.testing.assert_array_equal(out, [True, False, False])


class TestBackendParity:
    @pytest.fixture(scope="class")
    def backends(self):
        pool = {
            "serial": SerialBackend(),
            "thread": ThreadBackend(2, grain=4),
            "process": ProcessBackend(2, grain=8),
        }
        yield pool
        for b in pool.values():
            b.close()

    @pytest.mark.parametrize("op", ["add", "min", "or"])
    @pytest.mark.parametrize("seed", [0, 7])
    def test_segmented_reduce_byte_identical(self, backends, op, seed):
        values, indptr = ragged_case(seed, n_seg=40, max_len=12)
        if op == "or":
            values = values < 0.3
        oper = get_operator(op)
        ref = backends["serial"].segmented_reduce(oper, values, indptr)
        for name in ("thread", "process"):
            out = backends[name].segmented_reduce(oper, values, indptr)
            assert out.dtype == ref.dtype, name
            np.testing.assert_array_equal(out, ref, err_msg=name)

    def test_closed_backend_still_reduces(self):
        b = ThreadBackend(2, grain=1)
        values, indptr = ragged_case(3)
        ref = b.segmented_reduce(get_operator("add"), values, indptr)
        b.close()
        np.testing.assert_array_equal(
            b.segmented_reduce(get_operator("add"), values, indptr), ref
        )


class TestMachineSegmented:
    @pytest.fixture
    def machine(self):
        return PramMachine(seed=0)

    def test_segmented_reduce_uniform_matches_dense(self, machine):
        rng = np.random.default_rng(5)
        M = rng.random((6, 4))
        out = machine.segmented_reduce(M.ravel(), np.arange(0, 25, 4), "add")
        # The uniform fast path must be bit-identical to the dense row
        # reduction (same backend kernel).
        np.testing.assert_array_equal(out, np.add.reduce(M, axis=1))

    def test_segmented_reduce_charges_nnz(self, machine):
        values, indptr = ragged_case(2)
        before = machine.ledger.work
        machine.segmented_reduce(values, indptr, "min")
        assert machine.ledger.work - before == values.size + indptr.size - 1

    def test_segmented_scan_uniform_matches_dense(self, machine):
        rng = np.random.default_rng(6)
        M = rng.random((5, 3))
        out = machine.segmented_scan(M.ravel(), np.arange(0, 16, 3), "add")
        np.testing.assert_array_equal(out, np.add.accumulate(M, axis=1).ravel())

    def test_segmented_scan_ragged_bit_exact(self, machine):
        """Ragged scans accumulate left-to-right per segment — results
        are bit-identical to a sequential per-segment cumsum (no
        global-cumsum cancellation)."""
        values, indptr = ragged_case(4)
        out = machine.segmented_scan(values, indptr, "add")
        ref = np.concatenate(
            [
                np.cumsum(values[indptr[i] : indptr[i + 1]])
                for i in range(indptr.size - 1)
            ]
        )
        np.testing.assert_array_equal(out, ref)

    def test_segmented_scan_ragged_no_cancellation_at_scale(self, machine):
        """Large upstream segments must not bleed rounding error into
        later segments (the global-cumsum-minus-offset failure mode)."""
        rng = np.random.default_rng(12)
        lens = rng.integers(0, 30, size=2000)
        indptr = np.concatenate(([0], np.cumsum(lens))).astype(np.intp)
        values = rng.random(int(indptr[-1])) * (
            10.0 ** rng.integers(0, 6, size=int(indptr[-1]))
        )
        out = machine.segmented_scan(values, indptr, "add")
        ref = np.concatenate(
            [
                np.cumsum(values[indptr[i] : indptr[i + 1]])
                for i in range(indptr.size - 1)
            ]
        )
        np.testing.assert_array_equal(out, ref)

    def test_segmented_scan_dtype_consistent_across_paths(self, machine):
        """Uniform and ragged structures must give the same dtype for
        the same values (int stays int, bool accumulates through int)."""
        vals = np.array([1, 2, 3, 4, 5, 6])
        uniform = machine.segmented_scan(vals, np.array([0, 3, 6]), "add")
        ragged = machine.segmented_scan(vals, np.array([0, 2, 6]), "add")
        assert uniform.dtype == ragged.dtype
        np.testing.assert_array_equal(ragged, [1, 3, 3, 7, 12, 18])
        b = np.array([True, False, True, True])
        out = machine.segmented_scan(b, np.array([0, 1, 4]), "add")
        assert out.dtype.kind == "i"  # matches np.add.accumulate on bool
        np.testing.assert_array_equal(out, [1, 0, 1, 2])

    def test_segmented_scan_ragged_rejects_min(self, machine):
        values, indptr = ragged_case(4)
        with pytest.raises(InvalidParameterError, match="add"):
            machine.segmented_scan(values, indptr, "min")

    def test_segmented_argmin(self, machine):
        values = np.array([3.0, 1.0, 1.0, 9.0, 2.0])
        indptr = np.array([0, 3, 3, 5])
        out = machine.segmented_argmin(values, indptr)
        # first minimum wins within a segment; empty segment -> -1
        np.testing.assert_array_equal(out, [1, -1, 4])

    def test_segment_positions(self, machine):
        values, indptr = ragged_case(8)
        rows = np.array([4, 0, 7])
        pos, sub = machine.segment_positions(indptr, rows)
        expected = np.concatenate(
            [np.arange(indptr[r], indptr[r + 1]) for r in rows]
        )
        np.testing.assert_array_equal(pos, expected)
        np.testing.assert_array_equal(np.diff(sub), np.diff(indptr)[rows])

    def test_segment_positions_validates(self, machine):
        with pytest.raises(InvalidParameterError, match="out of range"):
            machine.segment_positions(np.array([0, 2, 4]), np.array([2]))

    def test_segment_spread(self, machine):
        out = machine.segment_spread(np.array([5.0, 7.0]), np.array([0, 2, 3]))
        np.testing.assert_array_equal(out, [5.0, 5.0, 7.0])
        with pytest.raises(InvalidParameterError, match="one value per segment"):
            machine.segment_spread(np.array([1.0]), np.array([0, 1, 2]))

    def test_scatter_min(self, machine):
        out = machine.scatter_min(
            np.array([4.0, 2.0, 9.0, 1.0]), np.array([1, 1, 0, 3]), 5
        )
        np.testing.assert_array_equal(out, [9.0, 2.0, np.inf, 1.0, np.inf])

    def test_scatter_add(self, machine):
        out = machine.scatter_add(
            np.array([1.0, 2.0, 4.0]), np.array([2, 0, 2]), 3
        )
        np.testing.assert_array_equal(out, [2.0, 0.0, 5.0])

    def test_scatter_validates(self, machine):
        with pytest.raises(InvalidParameterError, match="out of range"):
            machine.scatter_min(np.array([1.0]), np.array([4]), 3)
        with pytest.raises(InvalidParameterError, match="shape"):
            machine.scatter_add(np.array([1.0, 2.0]), np.array([0]), 3)

    def test_argsort_segments_uniform_matches_rows(self, machine):
        rng = np.random.default_rng(9)
        M = rng.random((7, 5))
        indptr = np.arange(0, 36, 5)
        pos = machine.argsort_segments(M.ravel(), indptr)
        expected = np.argsort(M, axis=1, kind="stable") + indptr[:-1][:, None]
        np.testing.assert_array_equal(pos, expected.ravel())

    def test_argsort_segments_ragged_stable(self, machine):
        values = np.array([2.0, 2.0, 1.0, 5.0, 0.0])
        indptr = np.array([0, 3, 3, 5])
        pos = machine.argsort_segments(values, indptr)
        np.testing.assert_array_equal(pos, [2, 0, 1, 4, 3])

    def test_machine_segmented_parity_across_backends(self):
        values, indptr = ragged_case(11, n_seg=30, max_len=10)
        outs = {}
        for name, backend in (
            ("serial", SerialBackend()),
            ("thread", ThreadBackend(2, grain=4)),
        ):
            with backend:
                m = PramMachine(backend=backend, seed=1)
                outs[name] = (
                    m.segmented_reduce(values, indptr, "min"),
                    m.segmented_scan(values, indptr, "add"),
                    m.ledger.work,
                )
        np.testing.assert_array_equal(outs["serial"][0], outs["thread"][0])
        np.testing.assert_array_equal(outs["serial"][1], outs["thread"][1])
        assert outs["serial"][2] == outs["thread"][2]
