"""Cost ledger: charging rules, snapshots, rounds, model parameters."""

import math

import pytest

from repro.pram.ledger import CostLedger, CostSnapshot


def test_initial_totals_zero():
    led = CostLedger()
    assert led.work == led.depth == led.cache == 0
    assert led.total_calls == 0


def test_charge_accumulates():
    led = CostLedger()
    led.charge("op", work=10, depth=2, cache=1)
    led.charge("op", work=5, depth=3, cache=0.5)
    assert led.work == 15 and led.depth == 5 and led.cache == 1.5
    assert led.calls_by_op["op"] == 2
    assert led.work_by_op["op"] == 15


def test_charge_basic_costs():
    led = CostLedger(block_size=64)
    led.charge_basic("map", 1024)
    assert led.work == 1024
    assert led.depth == math.ceil(math.log2(1024)) + 1
    assert led.cache == 1024 / 64


def test_charge_basic_depth_override():
    led = CostLedger()
    led.charge_basic("map", 100, depth=1)
    assert led.depth == 1


def test_charge_basic_zero_size_noop():
    led = CostLedger()
    led.charge_basic("map", 0)
    assert led.work == 0 and led.total_calls == 0


def test_charge_sort_work_superlinear():
    led = CostLedger()
    led.charge_sort("sort", 1 << 12, 1 << 12)
    assert led.work == (1 << 12) * 12
    assert led.depth == 12


def test_charge_sort_cache_uses_mb_log():
    led = CostLedger(cache_size=2**20, block_size=64)
    led.charge_sort("sort", 2**16, 2**16)
    log_mb = math.log(2**16) / math.log(2**20 / 64)
    assert led.cache == pytest.approx((2**16 / 64) * max(1.0, log_mb))


def test_tall_cache_assumption_enforced():
    with pytest.raises(ValueError, match="tall-cache"):
        CostLedger(cache_size=100, block_size=64)


def test_block_size_must_exceed_one():
    with pytest.raises(ValueError, match="block_size"):
        CostLedger(block_size=1)


def test_snapshot_subtraction():
    led = CostLedger()
    led.charge("a", work=5, depth=1, cache=0.1)
    s1 = led.snapshot()
    led.charge("b", work=7, depth=2, cache=0.2)
    delta = led.since(s1)
    assert delta.work == 7 and delta.depth == 2 and delta.calls == 1
    assert isinstance(delta, CostSnapshot)


def test_rounds_counter():
    led = CostLedger()
    assert led.bump_round("outer") == 1
    assert led.bump_round("outer") == 2
    assert led.bump_round("inner") == 1
    assert led.rounds == {"outer": 2, "inner": 1}


def test_reset_clears_but_keeps_params():
    led = CostLedger(cache_size=2**18, block_size=32)
    led.charge_basic("map", 100)
    led.bump_round("r")
    led.reset()
    assert led.work == 0 and led.total_calls == 0 and not led.rounds
    assert led.cache_size == 2**18 and led.block_size == 32


def test_round_log_marks_work_and_wall():
    led = CostLedger()
    led.charge_basic("map", 10, depth=1)
    led.bump_round("phase")
    led.charge_basic("map", 20, depth=1)
    led.bump_round("phase")
    labels = [entry[0] for entry in led.round_log]
    assert labels == ["phase", "phase"]
    # marks record cumulative work at round entry, monotone wall times
    assert led.round_log[0][2] == 10.0 and led.round_log[1][2] == 30.0
    assert led.round_log[0][3] <= led.round_log[1][3]
    led.reset()
    assert led.round_log == []
