"""Cross-backend kernel parity: every pool backend vs SerialBackend.

Property sweeps over mixed broadcast shapes, fused_axpy mask/clamp
combinations, and sub-grain inputs (the serial-fallback path). Exact
equality is asserted wherever the operation sequence is associativity-
safe (elementwise maps, row-chunked axis-1 reductions, scans, sorts,
integer counts); allclose only where partial combining legitimately
reassociates float addition (axis-0 / full add-reductions).

Pool backends are module-scoped so the whole sweep shares two worker
pools instead of spawning one per test.
"""

import numpy as np
import pytest

from repro.pram.backends import ProcessBackend, SerialBackend, ThreadBackend
from repro.pram.operators import ADD, AND, MAX, MIN, OR

SERIAL = SerialBackend()


@pytest.fixture(scope="module", params=["thread", "process"])
def pool(request):
    backend = (
        ThreadBackend(3, grain=4) if request.param == "thread" else ProcessBackend(2, grain=4)
    )
    yield backend
    backend.close()


@pytest.fixture
def data(rng):
    return rng.random((43, 19))


# -- elementwise: mixed broadcast shapes --------------------------------------

SCALE = 1.5  # module-level closure target for the pickle-by-code path


@pytest.mark.parametrize(
    "shapes",
    [
        [(43, 19)],
        [(43, 19), (43, 1)],
        [(43, 19), (1, 19)],
        [(43, 1), (1, 19)],
        [(43, 19), (43, 1), (1, 19)],
        [(43, 19), ()],
        [(19,), (43, 19)],
    ],
    ids=lambda s: "x".join("v" + "_".join(map(str, sh)) for sh in s),
)
def test_elementwise_mixed_broadcast(pool, rng, shapes):
    arrays = [rng.random(sh) for sh in shapes]
    fn = lambda *vs: sum(vs) * SCALE  # noqa: E731 — lambda transport on purpose
    assert np.array_equal(
        pool.elementwise(fn, tuple(arrays)), SERIAL.elementwise(fn, tuple(arrays))
    )


def test_elementwise_closure_over_arrays(pool, rng):
    """Lambdas closing over local arrays cross the process boundary via
    pickled closure cells."""
    bias = rng.random(19)
    fn = lambda m: m + bias  # noqa: E731
    a = rng.random((43, 19))
    assert np.array_equal(pool.elementwise(fn, (a,)), a + bias)


def test_elementwise_bool_output(pool, rng):
    a = rng.random((43, 19))
    fn = lambda m: m > 0.5  # noqa: E731
    got = pool.elementwise(fn, (a,))
    assert got.dtype == bool
    assert np.array_equal(got, a > 0.5)


def test_elementwise_ufunc(pool, data):
    assert np.array_equal(pool.elementwise(np.sqrt, (data,)), np.sqrt(data))


# -- reductions / scans over every operator -----------------------------------

@pytest.mark.parametrize("op", [ADD, MIN, MAX], ids=lambda o: o.name)
@pytest.mark.parametrize("axis", [0, 1, -1, None])
def test_reduce_parity(pool, data, op, axis):
    got = pool.reduce(op, data, axis)
    want = SERIAL.reduce(op, data, axis)
    if op is ADD and axis in (0, None):
        assert np.allclose(got, want)  # partial combine may reassociate
    else:
        assert np.array_equal(got, want)


@pytest.mark.parametrize("op", [OR, AND], ids=lambda o: o.name)
@pytest.mark.parametrize("axis", [0, 1, None])
def test_reduce_bool_parity(pool, rng, op, axis):
    m = rng.random((43, 19)) < 0.3
    assert np.array_equal(pool.reduce(op, m, axis), SERIAL.reduce(op, m, axis))


@pytest.mark.parametrize("op", [ADD, MIN, MAX], ids=lambda o: o.name)
def test_scan_parity(pool, data, op):
    assert np.array_equal(pool.scan(op, data, 1), SERIAL.scan(op, data, 1))


def test_sort_argsort_parity(pool, rng):
    # Duplicate-heavy rows make argsort stability observable.
    a = rng.integers(0, 5, size=(61, 17)).astype(float)
    assert np.array_equal(pool.sort(a, 1), SERIAL.sort(a, 1))
    assert np.array_equal(pool.argsort(a, 1), SERIAL.argsort(a, 1))


def test_count_votes_parity(pool, rng):
    labels = rng.integers(0, 13, size=4097)
    assert np.array_equal(pool.count_votes(labels, 13), SERIAL.count_votes(labels, 13))


# -- fused_axpy: every clamp/mask/broadcast combination -----------------------

@pytest.mark.parametrize("clamp", [None, 0.25], ids=["noclamp", "clamp"])
@pytest.mark.parametrize("mask_kind", ["none", "full", "column"])
@pytest.mark.parametrize("y_kind", ["scalar", "full", "column"])
def test_fused_axpy_combinations(pool, rng, clamp, mask_kind, y_kind):
    x = rng.random((43, 19))
    y = {"scalar": 0.75, "full": rng.random((43, 19)), "column": rng.random((43, 1))}[y_kind]
    mask = {
        "none": None,
        "full": rng.random((43, 19)) < 0.5,
        "column": rng.random((43, 1)) < 0.5,
    }[mask_kind]
    got = pool.fused_axpy(-2.0, x, y, clamp_min=clamp, mask=mask, fill=-1.0)
    want = SERIAL.fused_axpy(-2.0, x, y, clamp_min=clamp, mask=mask, fill=-1.0)
    assert np.array_equal(got, want)


def test_fused_axpy_column_x_broadcast(pool, rng):
    x = rng.random((43, 1))
    y = rng.random((43, 19))
    got = pool.fused_axpy(3.0, x, y, clamp_min=1.0)
    assert np.array_equal(got, SERIAL.fused_axpy(3.0, x, y, clamp_min=1.0))


# -- sub-grain inputs: the serial-fallback path -------------------------------

@pytest.mark.parametrize(
    "shape", [(1, 5), (3, 2), (7,), (2, 1)], ids=lambda s: "x".join(map(str, s))
)
def test_sub_grain_inputs_fall_back_identically(pool, rng, shape):
    """Inputs below grain*workers (or with one row) must take the serial
    path and agree exactly on every kernel that accepts the shape."""
    a = rng.random(shape)
    fn = lambda v: v * 2 + 1  # noqa: E731
    assert np.array_equal(pool.elementwise(fn, (a,)), SERIAL.elementwise(fn, (a,)))
    assert np.array_equal(pool.reduce(ADD, a, None), SERIAL.reduce(ADD, a, None))
    if a.ndim == 2:
        assert np.array_equal(pool.sort(a, 1), SERIAL.sort(a, 1))
        assert np.array_equal(pool.scan(ADD, a, 1), SERIAL.scan(ADD, a, 1))


def test_empty_inputs(pool):
    empty = np.zeros((0, 4))
    assert pool.reduce(ADD, empty, None) == 0.0
    assert np.array_equal(pool.sort(empty, 1), empty)


# -- unsupported-axis fallbacks ----------------------------------------------

def test_3d_reduce_falls_back(pool, rng):
    a = rng.random((6, 7, 8))
    assert np.array_equal(pool.reduce(ADD, a, 2), SERIAL.reduce(ADD, a, 2))


def test_axis0_scan_falls_back(pool, data):
    assert np.array_equal(pool.scan(ADD, data, 0), SERIAL.scan(ADD, data, 0))
