"""Regression harness: report structure, equality flags, round traces."""

import json

from repro.bench.regressions import run_regression


def test_report_structure_and_identity():
    report = run_regression(nf=10, nc=28, seed=3, machine_seed=2, epsilon=0.2)
    assert set(report["algorithms"]) == {"parallel_greedy", "parallel_primal_dual"}
    for entry in report["algorithms"].values():
        assert entry["solutions_identical"] is True
        assert entry["speedup_wall"] > 0
        for mode in ("dense", "compacted"):
            measure = entry[mode]
            assert measure["ledger_work"] > 0
            assert len(measure["per_round"]) >= 1
            total = sum(r["ledger_work"] for r in measure["per_round"])
            # per-round deltas cover at most the run's total work
            assert total <= measure["ledger_work"] * (1 + 1e-9)
    # the committed baseline must be JSON-serializable as-is
    json.dumps(report)


def test_compacted_charges_no_more_work():
    report = run_regression(nf=16, nc=64, seed=1, machine_seed=7, epsilon=0.1)
    greedy = report["algorithms"]["parallel_greedy"]
    assert greedy["compacted"]["ledger_work"] <= greedy["dense"]["ledger_work"]
