"""Regression harness: report structure, parity flags, round traces."""

import json

from repro.bench.regressions import run_regression


def test_report_structure_and_identity():
    report = run_regression(nf=10, nc=28, seed=3, machine_seed=2, epsilon=0.2)
    assert set(report["algorithms"]) == {"parallel_greedy", "parallel_primal_dual"}
    assert report["meta"]["backends"] == ["serial"]
    for entry in report["algorithms"].values():
        assert entry["solutions_identical"] is True
        assert set(entry["backends"]) == {"serial"}
        row = entry["backends"]["serial"]
        assert row["speedup_wall"] > 0
        assert row["charges_invariant"] is True
        for mode in ("dense", "compacted"):
            measure = row[mode]
            assert measure["ledger_work"] > 0
            assert len(measure["per_round"]) >= 1
            total = sum(r["ledger_work"] for r in measure["per_round"])
            # per-round deltas cover at most the run's total work
            assert total <= measure["ledger_work"] * (1 + 1e-9)
    # the committed baseline must be JSON-serializable as-is
    json.dumps(report)


def test_compacted_charges_no_more_work():
    report = run_regression(nf=16, nc=64, seed=1, machine_seed=7, epsilon=0.1)
    greedy = report["algorithms"]["parallel_greedy"]["backends"]["serial"]
    assert greedy["compacted"]["ledger_work"] <= greedy["dense"]["ledger_work"]


def test_backend_sweep_parity_and_invariant_charges():
    """Thread/process rows must match serial bit-for-bit in solution and
    ledger — the committed BENCH_PR2.json asserts exactly this at scale."""
    report = run_regression(
        nf=12,
        nc=36,
        seed=5,
        machine_seed=3,
        epsilon=0.2,
        backends=("serial", "thread", "process"),
        num_workers=2,
        grain=8,
    )
    for entry in report["algorithms"].values():
        assert entry["solutions_identical"] is True
        assert set(entry["backends"]) == {"serial", "thread", "process"}
        work = {name: row["dense"]["ledger_work"] for name, row in entry["backends"].items()}
        assert work["serial"] == work["thread"] == work["process"]
        for row in entry["backends"].values():
            assert row["charges_invariant"] is True
    json.dumps(report)
