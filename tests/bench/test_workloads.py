"""Workload suites: determinism, brute-force compatibility, coverage."""

import numpy as np

from repro.bench.workloads import (
    clustering_ratio_suite,
    clustering_scaling_suite,
    epsilon_sweep,
    fl_lp_suite,
    fl_ratio_suite,
    fl_scaling_suite,
)


def test_fl_ratio_suite_brute_forceable():
    for name, inst in fl_ratio_suite():
        assert inst.n_facilities <= 16, name


def test_fl_ratio_suite_deterministic():
    a = fl_ratio_suite(3)
    b = fl_ratio_suite(3)
    for (na, ia), (nb, ib) in zip(a, b):
        assert na == nb and np.array_equal(ia.D, ib.D)


def test_fl_ratio_suite_covers_families():
    names = [n for n, _ in fl_ratio_suite()]
    assert any("star" in n for n in names)
    assert any("random-metric" in n for n in names)
    assert any("two-scale" in n for n in names)


def test_fl_scaling_suite_geometric_growth():
    suite = fl_scaling_suite()
    ms = [inst.m for _, inst in suite]
    assert all(b / a >= 1.5 for a, b in zip(ms, ms[1:]))
    assert len(ms) >= 4


def test_fl_lp_suite_sizes():
    for name, inst in fl_lp_suite():
        assert 500 <= inst.m <= 10_000, name


def test_clustering_ratio_suite_enumerable():
    from math import comb
    for name, inst in clustering_ratio_suite():
        assert comb(inst.n, inst.k) <= 500_000, name


def test_clustering_scaling_suite_fixed_k():
    suite = clustering_scaling_suite(k=4)
    assert all(inst.k == 4 for _, inst in suite)
    ns = [inst.n for _, inst in suite]
    assert ns == sorted(ns)


def test_epsilon_sweep_sorted_positive():
    eps = epsilon_sweep()
    assert np.all(eps > 0) and np.all(np.diff(eps) > 0)


def test_weighted_ratio_suites_are_weighted_and_seeded():
    from repro.bench.workloads import (
        weighted_clustering_ratio_suite,
        weighted_fl_ratio_suite,
    )

    wc = weighted_clustering_ratio_suite(0)
    assert all(not inst.has_unit_weights for _, inst in wc)
    assert all(name.startswith("w-") for name, _ in wc)
    again = weighted_clustering_ratio_suite(0)
    for (_, a), (_, b) in zip(wc, again):
        assert np.array_equal(a.weights, b.weights)
    wf = weighted_fl_ratio_suite(0)
    assert all(not inst.has_unit_weights for _, inst in wf)


def test_shard_scaling_suite_returns_points():
    from repro.bench.workloads import shard_scaling_suite

    suite = shard_scaling_suite(0, sizes=(1000, 2500), k=4)
    assert [pts.shape[0] for _, pts, _ in suite] == [1000, 2500]
    for name, pts, k in suite:
        assert pts.ndim == 2 and k == 4
        assert np.all(np.isfinite(pts))
    again = shard_scaling_suite(0, sizes=(1000,), k=4)
    assert np.array_equal(suite[0][1], again[0][1])
