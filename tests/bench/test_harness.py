"""Experiment tables and markdown rendering."""

from repro.bench.harness import ExperimentTable
from repro.bench.reporting import render_markdown_table


def test_table_accumulates_rows():
    t = ExperimentTable("T1", "greedy quality")
    t.add(instance="a", ratio=1.2)
    t.add(instance="b", ratio=1.5, extra="x")
    assert t.columns == ["instance", "ratio", "extra"]
    assert t.column("ratio") == [1.2, 1.5]
    assert t.column("extra") == [None, "x"]


def test_render_contains_header_and_rows():
    t = ExperimentTable("T9", "demo")
    t.add(a=1, b=2.5)
    out = t.render()
    assert "T9: demo" in out
    assert "| a" in out and "2.5" in out


def test_markdown_table_alignment():
    rows = [{"col": "x", "val": 1.0}, {"col": "longer", "val": 123456.0}]
    out = render_markdown_table(rows, ["col", "val"])
    lines = out.splitlines()
    assert len(lines) == 4
    assert len(set(len(l) for l in lines)) == 1  # aligned widths


def test_markdown_table_empty():
    assert render_markdown_table([], ["a"]) == "(no rows)"


def test_float_formatting():
    rows = [{"v": 1e-9}, {"v": 0.0}, {"v": 3.14159}, {"v": 2e7}]
    out = render_markdown_table(rows, ["v"])
    assert "1.000e-09" in out and "3.142" in out and "2.000e+07" in out


def test_emit_prints(capsys):
    t = ExperimentTable("E0", "emit")
    t.add(x=1)
    t.emit()
    assert "E0" in capsys.readouterr().out
