"""Sparse bench harness: report structure, summary capping, feasibility."""

import json

from repro.bench.regressions import run_regression
from repro.bench.reporting import summarize_rounds
from repro.bench.sparse_bench import run_sparse_bench
from repro.bench.workloads import sparse_scaling_suite


def test_sparse_scaling_suite_shapes():
    suite = sparse_scaling_suite(0, sizes=(200, 400), k=3)
    assert [name for name, _ in suite] == ["knn-20x200-k3", "knn-40x400-k3"]
    for _, inst in suite:
        assert inst.nnz == 3 * inst.n_clients
        assert inst.n_facilities == inst.n_clients // 10


def test_sparse_scaling_suite_deterministic():
    import numpy as np

    a = sparse_scaling_suite(5, sizes=(150,), k=2)[0][1]
    b = sparse_scaling_suite(5, sizes=(150,), k=2)[0][1]
    np.testing.assert_array_equal(a.data, b.data)
    np.testing.assert_array_equal(a.f, b.f)


def test_report_structure_and_feasibility_marker():
    report = run_sparse_bench(
        overlap_sizes=(150,),
        scaling_sizes=(300,),
        k=3,
        repeats=1,
        budget_gib=1e-6,  # force the infeasible marker even at test sizes
        clustering_overlap_sizes=(120,),
        clustering_scaling_sizes=(300,),
        clustering_overlap_neighbors=60,
        clustering_neighbors=48,
        shard_sizes=(500,),
        shard_k=4,
        shard_shards=2,
        shard_coreset_size=40,
        shard_store_sizes=(500,),
        shard_store_workers=2,
        kernel_micro_n=20_000,
        kernel_micro_segments=100,
        kernel_micro_repeats=1,
    )
    (overlap_entry,) = report["overlap"].values()
    for algorithm in ("parallel_greedy", "parallel_primal_dual"):
        row = overlap_entry[algorithm]
        assert row["speedup_wall"] > 0
        assert row["mem_ratio"] > 0
        assert row["dense"]["peak_mib"] > 0
        assert row["sparse"]["ledger_work"] > 0
        # the truncation error is visible: sparse solution priced densely
        assert row["sparse_solution_dense_cost"] > 0
        # raw opened index arrays never reach the report
        assert "opened_idx" not in row["dense"] and "opened_idx" not in row["sparse"]
    (scaling_entry,) = report["sparse_scaling"].values()
    assert scaling_entry["dense_feasible"] is False
    assert scaling_entry["dense_bytes"] == scaling_entry["n_f"] * scaling_entry["n_c"] * 8
    # clustering tiers (PR 4): dense-vs-sparse ratios and the
    # infeasibility marker, with no raw center arrays in the JSON
    (cluster_overlap,) = report["clustering_overlap"].values()
    assert cluster_overlap["speedup_wall_kcenter"] > 0
    assert cluster_overlap["mem_ratio_kcenter"] > 0
    assert cluster_overlap["sparse_kmedian_dense_cost"] > 0
    for side in ("dense", "sparse"):
        assert "centers_idx" not in cluster_overlap[side]["kmedian"]
        assert cluster_overlap[side]["kcenter"]["probes"] >= 1
        assert cluster_overlap[side]["kmedian"]["swap_rounds"] >= 1
    (cluster_scaling,) = report["clustering_scaling"].values()
    assert cluster_scaling["dense_feasible"] is False
    assert cluster_scaling["dense_bytes"] == cluster_scaling["n"] ** 2 * 8
    assert "centers_idx" not in cluster_scaling["sparse"]["kmedian"]
    # shard tier (PR 5): both feasibility markers plus the composed
    # accounting fields; PR 7 adds the out-of-core store entry alongside
    shard_entry, store_entry = report["shard_scaling"].values()
    assert "mode" not in shard_entry and store_entry["mode"] == "store"
    assert shard_entry["dense_feasible"] is False  # tiny budget forces it
    assert shard_entry["single_csr_feasible"] is False
    sh = shard_entry["shard"]
    assert sh["cost_true"] > 0 and sh["movement"] >= 0
    assert sh["merged_n"] <= shard_entry["shards"] * shard_entry["coreset_size"]
    assert "5" in sh["bound"]  # the (5+ε) local-search ratio composed in
    # out-of-core tier (PR 7): same seeded pipeline, so identical costs,
    # plus the residency evidence (sampled RSS + on-disk block bytes)
    st = store_entry["shard"]
    assert st["cost_true"] == sh["cost_true"]
    assert st["cost_merged"] == sh["cost_merged"]
    assert st["peak_rss_mib"] > 0
    assert st["store_bytes"] > 0 and st["workers"] == 2
    # kernel microbench (PR 7): every provider byte-identical to numpy
    micro = report["kernel_microbench"]
    assert micro["n"] == 20_000 and "numpy" in micro
    for spec, entry in micro.items():
        if spec in ("n", "segments"):
            continue
        assert set(entry) == {
            "scatter_min", "scatter_add", "segmented_argmin", "segmented_scan_add"
        }
        for kentry in entry.values():
            assert kentry["matches_numpy"] is True and kentry["wall_s"] >= 0
    # the whole report must serialize as-is (the committed BENCH_PR5.json)
    json.dumps(report)


def test_round_traces_are_summaries_not_samples():
    """Per-suite summary stats, never raw per-round sample lists."""
    report = run_sparse_bench(
        overlap_sizes=(150,),
        scaling_sizes=(300,),
        k=3,
        repeats=1,
        clustering_overlap_sizes=(120,),
        clustering_scaling_sizes=(300,),
        clustering_overlap_neighbors=60,
        clustering_neighbors=48,
        shard_sizes=(400,),
        shard_k=4,
        shard_shards=2,
        shard_coreset_size=40,
        shard_store_sizes=(400,),
        shard_store_workers=2,
        kernel_micro_n=20_000,
        kernel_micro_segments=100,
        kernel_micro_repeats=1,
    )
    for tier in ("overlap", "sparse_scaling"):
        for entry in report[tier].values():
            for algorithm in ("parallel_greedy", "parallel_primal_dual"):
                for measure in entry[algorithm].values():
                    if not isinstance(measure, dict):
                        continue
                    rounds = measure["rounds"]
                    assert set(rounds) <= {
                        "rounds",
                        "work_total",
                        "work_first",
                        "work_last",
                        "work_median",
                    }
                    assert rounds["rounds"] >= 1
                    assert rounds["work_total"] <= measure["ledger_work"] * (1 + 1e-9)


def test_summarize_rounds_empty_label():
    assert summarize_rounds([], "nope", 10.0) == {"rounds": 0}


def test_summarize_rounds_deltas():
    log = [("r", 1, 0.0, 0.0), ("r", 2, 4.0, 0.1), ("x", 1, 5.0, 0.2)]
    out = summarize_rounds(log, "r", 10.0)
    assert out["rounds"] == 2
    assert out["work_first"] == 4.0
    assert out["work_last"] == 6.0
    assert out["work_total"] == 10.0


def test_regressions_summary_flag_caps_traces():
    report = run_regression(nf=10, nc=28, seed=3, machine_seed=2, epsilon=0.2, summary=True)
    for entry in report["algorithms"].values():
        row = entry["backends"]["serial"]
        for mode in ("dense", "compacted"):
            assert "per_round" not in row[mode]
            assert row[mode]["round_summary"]["rounds"] >= 1
    json.dumps(report)
