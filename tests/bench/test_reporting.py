"""Tests for round-trace summarization shared by reporting and regressions."""

from __future__ import annotations

import pytest

from repro.bench.regressions import _per_round
from repro.bench.reporting import summarize_rounds
from repro.pram.ledger import CostLedger, RoundMark


def _mark(label, index, work, wall=0.0):
    return RoundMark(label, index, work, wall)


class TestRoundMark:
    def test_coerce_passes_marks_through(self):
        m = _mark("a", 1, 2.0, 3.0)
        assert RoundMark.coerce(m) is m

    def test_coerce_accepts_legacy_tuples(self):
        m = RoundMark.coerce(("a", 1, 2.0, 3.0))
        assert isinstance(m, RoundMark)
        assert m.label == "a"
        assert m.work == 2.0

    def test_positional_unpacking_still_works(self):
        lab, idx, work, wall = _mark("a", 1, 2.0, 3.0)
        assert (lab, idx, work, wall) == ("a", 1, 2.0, 3.0)

    def test_ledger_round_log_holds_marks(self):
        ledger = CostLedger()
        ledger.charge_basic("x", 10)
        ledger.bump_round("outer")
        ledger.bump_round("outer")
        assert all(isinstance(m, RoundMark) for m in ledger.round_log)
        assert [m.label for m in ledger.round_log] == ["outer", "outer"]
        assert ledger.round_log[0].index == 1
        assert ledger.round_log[1].index == 2


class TestSummarizeRounds:
    def test_empty_log(self):
        assert summarize_rounds([], "outer", 100.0) == {"rounds": 0}

    def test_no_matching_label(self):
        log = [_mark("other", 1, 10.0)]
        assert summarize_rounds(log, "outer", 100.0) == {"rounds": 0}

    def test_single_mark(self):
        log = [_mark("outer", 1, 10.0)]
        s = summarize_rounds(log, "outer", 25.0)
        assert s["rounds"] == 1
        assert s["work_total"] == 15.0
        assert s["work_first"] == 15.0
        assert s["work_last"] == 15.0
        assert s["work_median"] == 15.0

    def test_mixed_labels(self):
        log = [
            _mark("outer", 1, 0.0),
            _mark("inner", 1, 5.0),
            _mark("outer", 2, 10.0),
            _mark("inner", 2, 12.0),
            _mark("outer", 3, 30.0),
        ]
        s = summarize_rounds(log, "outer", 60.0)
        assert s["rounds"] == 3
        # deltas between consecutive outer marks: 10, 20, then 30 to final
        assert s["work_first"] == 10.0
        assert s["work_last"] == 30.0
        assert s["work_total"] == 60.0
        assert s["work_median"] == 20.0

    def test_accepts_legacy_tuples(self):
        log = [("outer", 1, 10.0, 0.0), ("outer", 2, 20.0, 1.0)]
        s = summarize_rounds(log, "outer", 40.0)
        assert s["rounds"] == 2
        assert s["work_total"] == 30.0


class TestPerRound:
    def test_empty_log(self):
        assert _per_round([], "outer", 100.0, 1.0) == []

    def test_single_mark_spans_to_final(self):
        log = [_mark("outer", 1, 10.0, 0.5)]
        rows = _per_round(log, "outer", 30.0, 2.5)
        assert rows == [{"round": 1, "ledger_work": 20.0, "wall_s": 2.0}]

    def test_mixed_labels(self):
        log = [
            _mark("outer", 1, 0.0, 0.0),
            _mark("inner", 1, 1.0, 0.1),
            _mark("outer", 2, 10.0, 1.0),
        ]
        rows = _per_round(log, "outer", 25.0, 3.0)
        assert [r["round"] for r in rows] == [1, 2]
        assert rows[0]["ledger_work"] == 10.0
        assert rows[0]["wall_s"] == pytest.approx(1.0)
        assert rows[1]["ledger_work"] == 15.0
        assert rows[1]["wall_s"] == pytest.approx(2.0)

    def test_accepts_legacy_tuples(self):
        log = [("outer", 1, 0.0, 0.0), ("outer", 2, 10.0, 1.0)]
        rows = _per_round(log, "outer", 20.0, 2.0)
        assert [r["ledger_work"] for r in rows] == [10.0, 10.0]
