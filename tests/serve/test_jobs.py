"""Parameter normalization and job-table lifecycle (incl. coalescing)."""

from __future__ import annotations

import pytest

from repro.errors import InvalidParameterError
from repro.serve.jobs import JobTable, normalize_params


class TestNormalizeParams:
    def test_defaults_filled(self):
        p = normalize_params({"k": 3})
        assert p["k"] == 3
        assert p["solver"] == "kmedian"
        assert p["shards"] == 2
        assert p["seed"] == 0

    def test_k_required(self):
        with pytest.raises(InvalidParameterError, match="requires 'k'"):
            normalize_params({})

    def test_unknown_key_rejected(self):
        with pytest.raises(InvalidParameterError, match="sharrds"):
            normalize_params({"k": 3, "sharrds": 2})

    def test_unknown_solver_rejected(self):
        with pytest.raises(InvalidParameterError, match="unknown solver"):
            normalize_params({"k": 3, "solver": "kmode"})

    @pytest.mark.parametrize("field", ["k", "shards", "neighbors"])
    def test_positive_int_fields(self, field):
        with pytest.raises(InvalidParameterError):
            normalize_params({"k": 3, field: 0})

    def test_malformed_value(self):
        with pytest.raises(InvalidParameterError, match="malformed"):
            normalize_params({"k": "three"})

    def test_server_defaults_override(self):
        p = normalize_params({"k": 3}, defaults={"shards": 7})
        assert p["shards"] == 7

    def test_json_roundtrip_canonical(self):
        # The normalized dict is the cache identity; equivalent requests
        # must normalize identically.
        assert normalize_params({"k": 3, "epsilon": 0.5}) == normalize_params(
            {"k": 3.0}
        )


class TestJobTable:
    def test_create_and_finish(self):
        table = JobTable()
        job, fresh = table.create("inst", {"k": 3})
        assert fresh and job.status == "queued"
        table.finish(job, result={"cost": 1.0})
        assert table.get(job.job_id).status == "done"
        assert table.counts() == {"total": 1, "done": 1}

    def test_identical_inflight_coalesces(self):
        table = JobTable()
        j1, fresh1 = table.create("inst", {"k": 3})
        j2, fresh2 = table.create("inst", {"k": 3})
        assert fresh1 and not fresh2
        assert j1.job_id == j2.job_id

    def test_different_params_do_not_coalesce(self):
        table = JobTable()
        j1, _ = table.create("inst", {"k": 3})
        j2, fresh = table.create("inst", {"k": 4})
        assert fresh and j1.job_id != j2.job_id

    def test_finished_job_frees_the_key(self):
        table = JobTable()
        j1, _ = table.create("inst", {"k": 3})
        table.finish(j1, result={})
        j2, fresh = table.create("inst", {"k": 3})
        assert fresh and j2.job_id != j1.job_id

    def test_failed_job_reports_error(self):
        table = JobTable()
        job, _ = table.create("inst", {"k": 3})
        table.finish(job, error="boom")
        view = table.get(job.job_id).to_json()
        assert view["status"] == "failed"
        assert view["error"] == "boom"
        assert "wall_s" in view

    def test_fail_queued_sweeps_only_queued(self):
        table = JobTable()
        queued, _ = table.create("inst", {"k": 3})
        done, _ = table.create("inst", {"k": 4})
        table.finish(done, result={})
        assert table.fail_queued("stopping") == 1
        assert table.get(queued.job_id).status == "failed"
        assert table.get(done.job_id).status == "done"

    def test_add_completed_marks_cached(self):
        table = JobTable()
        job = table.add_completed("inst", {"k": 3}, {"cost": 2.0})
        assert job.status == "done" and job.cached
        assert table.get(job.job_id).result == {"cost": 2.0}
