"""Content hashing, admission control, and the byte-budget LRU."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.serve.cache import (
    AdmissionController,
    AdmissionError,
    LruBytesCache,
    estimate_request_bytes,
    payload_hash,
    result_key,
    store_points,
)


class TestPayloadHash:
    def test_deterministic_across_calls(self):
        a = np.arange(12, dtype=float).reshape(4, 3)
        assert payload_hash({"points": a}) == payload_hash({"points": a.copy()})

    def test_sensitive_to_values(self):
        a = np.arange(12, dtype=float).reshape(4, 3)
        b = a.copy()
        b[0, 0] += 1e-9
        assert payload_hash({"points": a}) != payload_hash({"points": b})

    def test_sensitive_to_shape_and_dtype(self):
        a = np.arange(12, dtype=float)
        assert payload_hash({"points": a}) != payload_hash({"points": a.reshape(4, 3)})
        assert payload_hash({"points": a}) != payload_hash(
            {"points": a.astype(np.float32)}
        )

    def test_member_names_matter(self):
        a = np.arange(4, dtype=float)
        assert payload_hash({"points": a}) != payload_hash({"weights": a})

    def test_order_independent(self):
        a = np.arange(4, dtype=float)
        w = np.ones(4)
        assert payload_hash({"points": a, "weights": w}) == payload_hash(
            {"weights": w, "points": a}
        )

    def test_noncontiguous_input_matches_contiguous(self):
        a = np.arange(24, dtype=float).reshape(4, 6)
        view = a[:, ::2]
        assert payload_hash({"points": view}) == payload_hash(
            {"points": np.ascontiguousarray(view)}
        )


class TestResultKey:
    def test_param_order_canonicalized(self):
        p1 = {"k": 3, "seed": 0, "solver": "kmedian"}
        p2 = {"solver": "kmedian", "seed": 0, "k": 3}
        assert result_key("abc", p1) == result_key("abc", p2)

    def test_distinct_params_distinct_keys(self):
        assert result_key("abc", {"k": 3}) != result_key("abc", {"k": 4})
        assert result_key("abc", {"k": 3}) != result_key("abd", {"k": 3})


class TestAdmission:
    def test_instance_within_budget(self):
        ctrl = AdmissionController(budget_bytes=10_000)
        assert ctrl.admit_instance(100, 2) == 100 * 2 * 8

    def test_instance_over_budget(self):
        ctrl = AdmissionController(budget_bytes=1_000)
        with pytest.raises(AdmissionError, match="admission budget"):
            ctrl.admit_instance(100, 2)

    def test_admission_error_is_invalid_parameter(self):
        # The HTTP layer maps InvalidParameterError -> 400 and the
        # subclass first -> 413; the hierarchy is load-bearing.
        assert issubclass(AdmissionError, InvalidParameterError)

    def test_solve_estimate_monotone_in_neighbors(self):
        lo = estimate_request_bytes(1000, 2, k=4, shards=2, coreset_size=64, neighbors=8)
        hi = estimate_request_bytes(1000, 2, k=4, shards=2, coreset_size=64, neighbors=64)
        assert hi > lo

    def test_solve_estimate_capped_by_n(self):
        # merged coreset can never exceed n points
        small = estimate_request_bytes(50, 2, k=4, shards=8, coreset_size=1000, neighbors=8)
        big = estimate_request_bytes(5000, 2, k=4, shards=8, coreset_size=1000, neighbors=8)
        assert small < big

    def test_solve_over_budget(self):
        ctrl = AdmissionController(budget_bytes=10_000)
        with pytest.raises(AdmissionError):
            ctrl.admit_solve(10_000, 2, k=8, shards=4, coreset_size=512, neighbors=64)


class TestLruBytesCache:
    def test_hit_miss_accounting(self):
        cache = LruBytesCache(100)
        assert cache.get("a") is None
        cache.put("a", 1, 10)
        assert cache.get("a") == 1
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_evicts_least_recently_used(self):
        cache = LruBytesCache(30)
        cache.put("a", "A", 10)
        cache.put("b", "B", 10)
        cache.put("c", "C", 10)
        assert cache.get("a") == "A"  # refresh a
        cache.put("d", "D", 10)  # evicts b, the LRU
        assert cache.get("b") is None
        assert cache.get("a") == "A"
        assert cache.stats()["evictions"] == 1
        assert cache.stats()["bytes"] <= 30

    def test_oversize_entry_not_cached(self):
        cache = LruBytesCache(10)
        cache.put("huge", "x", 1000)
        assert cache.get("huge") is None
        assert cache.stats()["entries"] == 0

    def test_replacing_entry_updates_bytes(self):
        cache = LruBytesCache(100)
        cache.put("a", 1, 60)
        cache.put("a", 2, 30)
        assert cache.get("a") == 2
        assert cache.stats()["bytes"] == 30


class TestStorePoints:
    def test_content_id_stable(self):
        pts = np.random.default_rng(0).normal(size=(20, 2))
        s1 = store_points(pts)
        s2 = store_points(pts.copy())
        assert s1.instance_id == s2.instance_id
        assert s1.meta == {"n": 20, "dim": 2}
        assert not s1.points.flags.writeable

    def test_weights_change_the_id(self):
        pts = np.random.default_rng(0).normal(size=(20, 2))
        assert store_points(pts).instance_id != store_points(
            pts, np.full(20, 2.0)
        ).instance_id

    @pytest.mark.parametrize(
        "points",
        [np.zeros((0, 2)), np.zeros(5), np.array([[1.0, np.nan]])],
        ids=["empty", "1d", "nan"],
    )
    def test_rejects_bad_points(self, points):
        with pytest.raises(InvalidParameterError):
            store_points(points)

    def test_rejects_bad_weights(self):
        pts = np.ones((4, 2))
        with pytest.raises(InvalidParameterError):
            store_points(pts, np.ones(3))
        with pytest.raises(InvalidParameterError):
            store_points(pts, np.array([1.0, 1.0, 0.0, 1.0]))
