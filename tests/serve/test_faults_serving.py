"""Fault injection through the serving tier: crashes are invisible.

The PR 6 contract — supervised retry replays a crashed shard with the
same spawned seed, so recovery is byte-identical — must survive the
trip through the HTTP layer: a server with a fault plan injecting a
crash mid-request returns *exactly* the bytes a clean server returns.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.faults.plan import FaultPlan
from repro.serve import ServeClient, ServerConfig, serve_in_thread


def _points(n=200, dim=2, seed=0):
    return np.random.default_rng(seed).normal(size=(n, dim))


def _solve_on(config, points, **params):
    with serve_in_thread(config) as handle:
        client = ServeClient(handle.host, handle.port)
        job = client.solve_and_wait(points=points, **params)
        assert job["status"] == "done"
        return job["result"], client.metrics()["counters"]


def _solution(result: dict) -> str:
    # the solution payload; solve_s is a wall-clock measurement and the
    # one field byte-identity does not (and must not) cover
    return json.dumps(
        {k: v for k, v in result.items() if k != "solve_s"}, sort_keys=True
    )


@pytest.mark.parametrize("kind", ["crash", "raise"])
def test_injected_fault_returns_byte_identical_solution(kind):
    pts = _points()
    params = dict(k=4, shards=3, seed=11)
    clean, _ = _solve_on(
        ServerConfig(backend="thread", backend_workers=2, workers=1), pts, **params
    )
    faulty, counters = _solve_on(
        ServerConfig(
            backend="thread",
            backend_workers=2,
            workers=1,
            fault_plan=FaultPlan.single(kind, index=0),
        ),
        pts,
        **params,
    )
    assert counters["serve.jobs_completed"] == 1
    assert counters.get("serve.jobs_failed", 0) == 0
    # byte-identical, not merely numerically close: serialize both
    assert _solution(faulty) == _solution(clean)


def test_fault_on_every_attempt_fails_the_job_not_the_server():
    pts = _points(seed=1)
    config = ServerConfig(
        backend="thread",
        backend_workers=2,
        workers=1,
        fault_plan=FaultPlan.single("crash", index=0, attempt=None),  # every attempt
    )
    with serve_in_thread(config) as handle:
        client = ServeClient(handle.host, handle.port)
        job = client.solve(points=pts, k=3, shards=2, seed=2)
        from repro.serve import ServeError

        with pytest.raises(ServeError, match="failed"):
            client.wait(job["job_id"])
        assert client.metrics()["counters"]["serve.jobs_failed"] == 1
        # the server is still healthy and can serve an unfaulted shard count
        assert client.health()["status"] == "ok"


def test_process_backend_crash_recovers_byte_identical():
    # The real deployment shape: a process pool worker is crashed by the
    # plan and the supervised retry reproduces the clean answer.
    pts = _points(n=160, seed=2)
    params = dict(k=3, shards=2, seed=7)
    clean, _ = _solve_on(
        ServerConfig(backend="process", backend_workers=2, workers=1), pts, **params
    )
    faulty, counters = _solve_on(
        ServerConfig(
            backend="process",
            backend_workers=2,
            workers=1,
            fault_plan=FaultPlan.single("crash", index=0),
        ),
        pts,
        **params,
    )
    assert counters["serve.jobs_completed"] == 1
    assert _solution(faulty) == _solution(clean)
