"""End-to-end API tests against a thread-hosted server.

A module-scoped server (thread backend — fast, and crash injection in
the fault tests goes through the same supervised path) serves the
read-mostly cases; behaviors that need clean counters or a rigged
solver (backpressure, coalescing, shutdown ordering) boot their own.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.pram.backends import ThreadBackend
from repro.serve import ServeClient, ServeError, ServerConfig, serve_in_thread


def _points(seed=0, n=120, dim=2):
    return np.random.default_rng(seed).normal(size=(n, dim))


@pytest.fixture(scope="module")
def served():
    config = ServerConfig(backend="thread", backend_workers=2, workers=2)
    with serve_in_thread(config) as handle:
        yield ServeClient(handle.host, handle.port)


class TestBasicApi:
    def test_health(self, served):
        health = served.health()
        assert health["status"] == "ok"
        assert health["backend"] == "thread"
        assert health["queue_capacity"] == 64

    def test_metrics_endpoint(self, served):
        snap = served.metrics()
        assert "counters" in snap
        assert "caches" in snap

    def test_instance_dedup_by_content(self, served):
        pts = _points(seed=1)
        first = served.submit_points(pts)
        second = served.submit_points(pts.copy())
        assert first["instance_id"] == second["instance_id"]
        assert first["cached"] is False
        assert second["cached"] is True

    def test_solve_by_instance_id(self, served):
        inst = served.submit_points(_points(seed=2))
        job = served.solve_and_wait(instance_id=inst["instance_id"], k=3, seed=5)
        assert job["status"] == "done"
        result = job["result"]
        assert len(result["centers"]) == 3
        assert result["cost"] > 0
        assert result["degraded"] is False

    def test_solve_inline_points(self, served):
        job = served.solve_and_wait(points=_points(seed=3), k=2)
        assert job["status"] == "done"
        assert len(job["result"]["centers"]) == 2

    def test_repeat_request_hits_result_cache(self, served):
        inst = served.submit_points(_points(seed=4))
        first = served.solve_and_wait(instance_id=inst["instance_id"], k=3, seed=9)
        second = served.solve(instance_id=inst["instance_id"], k=3, seed=9)
        assert second["status"] == "done"
        assert second["cached"] is True
        assert second["result"] == first["result"]

    def test_unknown_instance_404(self, served):
        with pytest.raises(ServeError) as err:
            served.solve(instance_id="deadbeef", k=2)
        assert err.value.status == 404

    def test_unknown_param_400(self, served):
        inst = served.submit_points(_points(seed=5))
        with pytest.raises(ServeError) as err:
            served.solve(instance_id=inst["instance_id"], k=2, sharrds=3)
        assert err.value.status == 400

    def test_missing_source_400(self, served):
        with pytest.raises(ServeError) as err:
            served.solve(k=2)
        assert err.value.status == 400

    def test_unknown_job_404(self, served):
        with pytest.raises(ServeError) as err:
            served.poll("job-999999")
        assert err.value.status == 404

    def test_wrong_method_405(self, served):
        status, _ = served.raw_request("GET", "/solve")
        assert status == 405

    def test_unknown_route_404(self, served):
        status, _ = served.raw_request("GET", "/nope")
        assert status == 404

    def test_malformed_json_400(self, served):
        import http.client

        conn = http.client.HTTPConnection(served.host, served.port, timeout=10)
        try:
            conn.request(
                "POST", "/solve", body="{not json",
                headers={"Content-Type": "application/json", "Connection": "close"},
            )
            assert conn.getresponse().status == 400
        finally:
            conn.close()

    def test_nonfinite_points_400(self, served):
        with pytest.raises(ServeError) as err:
            served.submit_points(np.array([[1.0, float("nan")]]))
        assert err.value.status == 400


class TestConcurrency:
    def test_concurrent_identical_submits_share_one_solve(self):
        config = ServerConfig(backend="thread", backend_workers=2, workers=2)
        with serve_in_thread(config) as handle:
            client = ServeClient(handle.host, handle.port)
            inst = client.submit_points(_points(seed=7, n=200))
            results, errors = [], []

            def one():
                try:
                    c = ServeClient(handle.host, handle.port)
                    job = c.solve_and_wait(
                        instance_id=inst["instance_id"], k=4, seed=3
                    )
                    results.append(job["result"])
                except Exception as exc:  # pragma: no cover - failure detail
                    errors.append(exc)

            threads = [threading.Thread(target=one) for _ in range(6)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors
            assert len(results) == 6
            assert all(r == results[0] for r in results)
            counters = client.metrics()["counters"]
            # one real solve; everyone else coalesced or cache-served
            assert counters["serve.jobs_completed"] == 1
            shared = counters.get("serve.coalesced", 0) + counters.get(
                "serve.result_cache_hits", 0
            )
            assert shared == 5

    def test_concurrent_distinct_submits_all_solve_fresh(self):
        config = ServerConfig(backend="thread", backend_workers=2, workers=2)
        with serve_in_thread(config) as handle:
            client = ServeClient(handle.host, handle.port)
            inst = client.submit_points(_points(seed=8, n=200))
            results, errors = [], []

            def one(seed):
                try:
                    c = ServeClient(handle.host, handle.port)
                    job = c.solve_and_wait(
                        instance_id=inst["instance_id"], k=4, seed=seed
                    )
                    results.append(job["result"])
                except Exception as exc:  # pragma: no cover - failure detail
                    errors.append(exc)

            threads = [threading.Thread(target=one, args=(s,)) for s in range(5)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors
            assert len(results) == 5
            counters = client.metrics()["counters"]
            assert counters["serve.jobs_completed"] == 5
            assert counters.get("serve.result_cache_hits", 0) == 0


class TestBackpressureAndAdmission:
    def test_queue_full_is_429(self):
        release = threading.Event()

        def slow_solve(instance, params):
            release.wait(timeout=30)
            return {"cost": 0.0, "seed": params["seed"]}

        config = ServerConfig(
            backend="serial", workers=1, queue_size=1, solve_fn=slow_solve
        )
        with serve_in_thread(config) as handle:
            client = ServeClient(handle.host, handle.port)
            inst = client.submit_points(_points(seed=9))
            try:
                running = client.solve(instance_id=inst["instance_id"], k=2, seed=0)
                # give the single worker a beat to dequeue the first job
                deadline = time.perf_counter() + 5
                while (
                    client.poll(running["job_id"])["status"] == "queued"
                    and time.perf_counter() < deadline
                ):
                    time.sleep(0.01)
                queued = client.solve(instance_id=inst["instance_id"], k=2, seed=1)
                assert queued["status"] == "queued"
                with pytest.raises(ServeError) as err:
                    client.solve(instance_id=inst["instance_id"], k=2, seed=2)
                assert err.value.status == 429
                assert client.metrics()["counters"]["serve.rejected_backpressure"] == 1
            finally:
                release.set()
            done = client.wait(running["job_id"])
            assert done["result"]["seed"] == 0

    def test_over_budget_instance_413(self):
        config = ServerConfig(backend="serial", budget_bytes=1000)
        with serve_in_thread(config) as handle:
            client = ServeClient(handle.host, handle.port)
            with pytest.raises(ServeError) as err:
                client.submit_points(_points(seed=10, n=500))
            assert err.value.status == 413
            assert client.metrics()["counters"]["serve.rejected_admission"] == 1

    def test_over_budget_solve_413(self):
        # the instance fits but the solve's CSR estimate does not
        config = ServerConfig(backend="serial", budget_bytes=8000)
        with serve_in_thread(config) as handle:
            client = ServeClient(handle.host, handle.port)
            inst = client.submit_points(_points(seed=11, n=64))
            with pytest.raises(ServeError) as err:
                client.solve(
                    instance_id=inst["instance_id"], k=4, neighbors=64, shards=4
                )
            assert err.value.status == 413


class TestLifecycle:
    def test_shutdown_endpoint_stops_the_server(self):
        config = ServerConfig(backend="serial", workers=1)
        handle = serve_in_thread(config)
        client = ServeClient(handle.host, handle.port)
        assert client.shutdown() == {"status": "stopping"}
        handle._thread.join(timeout=10)
        assert not handle._thread.is_alive()
        handle.stop()  # idempotent after the fact

    def test_shutdown_drains_running_job_before_stopping(self):
        started = threading.Event()
        release = threading.Event()

        def slow_solve(instance, params):
            started.set()
            release.wait(timeout=30)
            return {"cost": 1.0}

        config = ServerConfig(backend="serial", workers=1, solve_fn=slow_solve)
        handle = serve_in_thread(config)
        client = ServeClient(handle.host, handle.port)
        inst = client.submit_points(_points(seed=12))
        job = client.solve(instance_id=inst["instance_id"], k=2)
        assert started.wait(timeout=10)
        stopper = threading.Thread(target=handle.stop)
        stopper.start()
        # shutdown must wait on the in-flight job, not abandon it
        time.sleep(0.1)
        assert stopper.is_alive()
        release.set()
        stopper.join(timeout=10)
        assert not stopper.is_alive()
        assert handle.server.jobs.get(job["job_id"]).status == "done"

    def test_borrowed_backend_stays_open(self):
        backend = ThreadBackend(2, grain=4)
        try:
            config = ServerConfig(backend=backend, workers=1)
            with serve_in_thread(config) as handle:
                client = ServeClient(handle.host, handle.port)
                job = client.solve_and_wait(points=_points(seed=13), k=2)
                assert job["status"] == "done"
            assert not backend.closed
        finally:
            backend.close()

    def test_owned_backend_closes_on_stop(self):
        config = ServerConfig(backend="thread", backend_workers=2, workers=1)
        handle = serve_in_thread(config)
        ServeClient(handle.host, handle.port).health()
        backend = handle.server.backend
        handle.stop()
        assert backend.closed


class TestObservability:
    def test_per_status_request_counters(self):
        config = ServerConfig(backend="serial", workers=1)
        with serve_in_thread(config) as handle:
            client = ServeClient(handle.host, handle.port)
            client.health()
            client.raw_request("GET", "/nope")
            counters = client.metrics()["counters"]
            assert counters['serve.requests_by_status{status="200"}'] >= 1
            assert counters['serve.requests_by_status{status="404"}'] == 1
            assert counters["serve.requests_errored"] == 1
            # the /metrics request itself is counted after its response
            # is built, so at snapshot time exactly two are recorded
            assert counters["serve.requests_total"] == 2

    def test_request_latency_histogram_has_buckets(self, served):
        served.health()
        snap = served.metrics()
        hist = snap["histograms"]["serve.request_latency_s"]
        assert hist["count"] >= 1
        assert "buckets" in hist
        assert hist["buckets"]["+Inf"] == hist["count"]

    def test_trace_id_minted_and_echoed(self, served):
        import http.client

        conn = http.client.HTTPConnection(served.host, served.port, timeout=10)
        try:
            conn.request("GET", "/health", headers={"Connection": "close"})
            resp = conn.getresponse()
            minted = resp.getheader("X-Repro-Trace-Id")
            resp.read()
        finally:
            conn.close()
        assert minted and len(minted) == 16

    def test_offered_trace_id_honored(self, served):
        import http.client

        conn = http.client.HTTPConnection(served.host, served.port, timeout=10)
        try:
            conn.request(
                "GET", "/health",
                headers={"Connection": "close", "X-Repro-Trace-Id": "my-req.01"},
            )
            resp = conn.getresponse()
            echoed = resp.getheader("X-Repro-Trace-Id")
            resp.read()
        finally:
            conn.close()
        assert echoed == "my-req.01"

    def test_invalid_offered_trace_id_replaced(self, served):
        import http.client

        conn = http.client.HTTPConnection(served.host, served.port, timeout=10)
        try:
            conn.request(
                "GET", "/health",
                headers={"Connection": "close", "X-Repro-Trace-Id": "bad id!"},
            )
            resp = conn.getresponse()
            echoed = resp.getheader("X-Repro-Trace-Id")
            resp.read()
        finally:
            conn.close()
        assert echoed != "bad id!"
        assert len(echoed) == 16

    def test_solve_response_carries_trace_id(self, served):
        job = served.solve(points=_points(seed=20), k=2, trace_id="ride-along")
        assert job["trace_id"] == "ride-along"
        polled = served.poll(job["job_id"])
        assert polled["trace_id"] == "ride-along"

    def test_prometheus_exposition_endpoint(self, served):
        import http.client

        from repro.obs import parse_prometheus_text

        served.health()
        conn = http.client.HTTPConnection(served.host, served.port, timeout=10)
        try:
            conn.request(
                "GET", "/metrics?format=prometheus",
                headers={"Connection": "close"},
            )
            resp = conn.getresponse()
            assert resp.status == 200
            assert resp.getheader("Content-Type").startswith("text/plain")
            text = resp.read().decode("utf-8")
        finally:
            conn.close()
        parsed = parse_prometheus_text(text)
        assert parsed["types"]["serve_requests_total"] == "counter"
        assert parsed["samples"]["serve_requests_total"] >= 1
        assert parsed["types"]["serve_request_latency_s"] == "histogram"

    def test_metrics_json_unchanged_by_default(self, served):
        snap = served.metrics()
        assert "counters" in snap and "gauges" in snap and "histograms" in snap

    def test_trace_endpoint_unknown_job_404(self, served):
        status, _ = served.raw_request("GET", "/trace/job-999999")
        assert status == 404

    def test_trace_endpoint_409_when_not_tracing(self, served):
        job = served.solve_and_wait(points=_points(seed=21), k=2)
        status, payload = served.raw_request("GET", f"/trace/{job['job_id']}")
        assert status == 409
        assert "tracing is not active" in payload["error"]


class TestSloHealth:
    def test_health_has_no_slo_section_by_default(self, served):
        assert "slo" not in served.health()

    def test_health_reports_insufficient_data_cold(self):
        from repro.obs import SloTarget

        config = ServerConfig(
            backend="serial", workers=1,
            slo=SloTarget(p99_latency_s=1.0, min_samples=5),
        )
        with serve_in_thread(config) as handle:
            client = ServeClient(handle.host, handle.port)
            health = client.health()
            assert health["status"] == "ok"
            assert health["slo"]["status"] == "insufficient_data"

    def test_health_ok_within_target(self):
        from repro.obs import SloTarget

        config = ServerConfig(
            backend="serial", workers=1,
            slo=SloTarget(p99_latency_s=30.0, max_error_rate=0.9, min_samples=3),
        )
        with serve_in_thread(config) as handle:
            client = ServeClient(handle.host, handle.port)
            for seed in range(4):
                client.solve_and_wait(points=_points(seed=30 + seed), k=2)
            health = client.health()
            assert health["status"] == "ok"
            assert health["slo"]["status"] == "ok"
            assert health["slo"]["measured"]["count"] >= 3

    def test_degraded_health_is_503_with_reasons(self):
        from repro.obs import SloTarget

        def failing_solve(instance, params):
            raise RuntimeError("rigged to fail")

        config = ServerConfig(
            backend="serial", workers=1, solve_fn=failing_solve,
            slo=SloTarget(max_error_rate=0.1, min_samples=3),
        )
        with serve_in_thread(config) as handle:
            client = ServeClient(handle.host, handle.port)
            inst = client.submit_points(_points(seed=40))
            for seed in range(4):
                job = client.solve(
                    instance_id=inst["instance_id"], k=2, seed=seed
                )
                deadline = time.perf_counter() + 10
                while (
                    client.poll(job["job_id"])["status"] != "failed"
                    and time.perf_counter() < deadline
                ):
                    time.sleep(0.01)
            status, payload = client.raw_request("GET", "/health")
            assert status == 503
            assert payload["status"] == "degraded"
            assert any("error rate" in r for r in payload["slo"]["reasons"])
