"""Load-generator smoke: the report is complete and honest."""

from __future__ import annotations

import json

import pytest

from repro.serve import ServeClient, ServerConfig, serve_in_thread
from repro.serve.loadgen import main as loadgen_main
from repro.serve.loadgen import run_loadgen


@pytest.fixture(scope="module")
def served():
    config = ServerConfig(backend="thread", backend_workers=2, workers=2)
    with serve_in_thread(config) as handle:
        yield handle


def test_fresh_load_completes_everything(served):
    report = run_loadgen(
        served.host, served.port, clients=4, requests=16, n=160, k=3, seed=100
    )
    assert report["clients"] == 4
    assert report["requests_sent"] == 16
    assert report["completed"] == 16
    assert report["failed"] == 0
    assert report["failure_rate"] == 0.0
    assert report["throughput_rps"] > 0
    lat = report["latency_s"]
    assert 0 < lat["min"] <= lat["p50"] <= lat["p90"] <= lat["p99"] <= lat["max"]


def test_identical_load_hits_the_result_cache(served):
    client = ServeClient(served.host, served.port)
    before = client.metrics()["counters"].get("serve.result_cache_hits", 0)
    report = run_loadgen(
        served.host,
        served.port,
        clients=2,
        requests=10,
        n=160,
        k=3,
        seed=200,
        identical=True,
    )
    assert report["completed"] == 10
    after = client.metrics()["counters"].get("serve.result_cache_hits", 0)
    # all but the first solve (and any coalesced concurrent duplicates)
    # must be served from the cache
    coalesced = client.metrics()["counters"].get("serve.coalesced", 0)
    assert (after - before) + coalesced >= 8


def test_qps_pacing_slows_the_run(served):
    report = run_loadgen(
        served.host, served.port, clients=2, requests=6, n=160, k=3, seed=300, qps=20
    )
    assert report["completed"] == 6
    # 6 requests at 20 rps occupy slots up to t=0.25s
    assert report["wall_s"] >= 0.2
    assert report["qps_target"] == 20


def test_duration_mode_stops_on_deadline(served):
    report = run_loadgen(
        served.host,
        served.port,
        clients=2,
        duration=0.5,
        requests=10**9,  # ignored in duration mode
        n=160,
        k=3,
        seed=400,
    )
    assert report["failed"] == 0
    assert report["completed"] >= 1


def test_cli_spawn_smoke(tmp_path, capsys):
    out = tmp_path / "report.json"
    loadgen_main(
        [
            "--spawn",
            "--spawn-backend",
            "thread",
            "--clients",
            "2",
            "--requests",
            "6",
            "--n",
            "120",
            "--k",
            "2",
            "--out",
            str(out),
        ]
    )
    report = json.loads(out.read_text())
    assert report["completed"] == 6
    assert report["failed"] == 0
    printed = json.loads(capsys.readouterr().out)
    assert printed == report


def test_report_scrapes_server_slo(tmp_path):
    from repro.obs import SloTarget

    config = ServerConfig(
        backend="thread", backend_workers=2, workers=2,
        slo=SloTarget(p99_latency_s=60.0, min_samples=1),
    )
    with serve_in_thread(config) as handle:
        report = run_loadgen(
            handle.host, handle.port, clients=2, requests=4, n=120, k=2, seed=500
        )
    assert report["slo"]["status"] == "ok"
    assert report["slo"]["measured"]["count"] >= 4


def test_report_has_no_slo_key_when_server_has_no_target(served):
    report = run_loadgen(
        served.host, served.port, clients=2, requests=4, n=120, k=2, seed=600
    )
    assert "slo" not in report


def test_cli_exits_zero_within_thresholds(tmp_path, capsys):
    out = tmp_path / "report.json"
    code = loadgen_main(
        [
            "--spawn", "--spawn-backend", "thread",
            "--clients", "2", "--requests", "4", "--n", "120", "--k", "2",
            "--slo-p99", "60", "--max-failure-rate", "0.5",
            "--out", str(out),
        ]
    )
    assert code == 0
    report = json.loads(out.read_text())
    assert report["breaches"] == []
    capsys.readouterr()


def test_cli_exits_nonzero_on_slo_breach(tmp_path, capsys):
    out = tmp_path / "report.json"
    code = loadgen_main(
        [
            "--spawn", "--spawn-backend", "thread",
            "--clients", "2", "--requests", "4", "--n", "120", "--k", "2",
            "--slo-p99", "0.000001",  # impossible target
            "--out", str(out),
        ]
    )
    assert code == 1
    report = json.loads(out.read_text())
    assert len(report["breaches"]) == 1
    assert "p99" in report["breaches"][0]
    assert "SLO BREACH" in capsys.readouterr().out


def test_cli_exits_nonzero_on_failure_breach(tmp_path, capsys):
    def failing_solve(instance, params):
        raise RuntimeError("rigged")

    config = ServerConfig(backend="serial", workers=1, solve_fn=failing_solve)
    with serve_in_thread(config) as handle:
        code = loadgen_main(
            [
                "--host", handle.host, "--port", str(handle.port),
                "--clients", "2", "--requests", "4", "--n", "120", "--k", "2",
                "--max-failure-rate", "0.0",
                "--out", str(tmp_path / "r.json"),
            ]
        )
    assert code == 1
    report = json.loads((tmp_path / "r.json").read_text())
    assert report["failed"] == 4
    assert any("failure rate" in b for b in report["breaches"])
    capsys.readouterr()
