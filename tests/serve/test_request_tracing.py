"""PR 10 acceptance: one HTTP request, one stitched cross-process trace.

A solve submitted over HTTP against a process-backend server with fault
injection enabled must yield a stitched trace containing spans from the
server edge, the job queue, at least one shard stage, and at least one
forked backend worker — all sharing the request's single trace id —
while the solution stays byte-identical to a tracing-off run.
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from repro.faults.plan import FaultPlan
from repro.obs import trace_to
from repro.obs.tracer import NULL_TRACER, set_tracer
from repro.serve import ServeClient, ServerConfig, serve_in_thread

N, DIM, K, SEED = 400, 2, 4, 7
PARAMS = {"k": K, "seed": SEED, "shards": 4, "coreset_size": 96, "neighbors": 24}


@pytest.fixture(autouse=True)
def _tracing_off_between_tests():
    prev = set_tracer(NULL_TRACER)
    yield
    set_tracer(prev)


def _points():
    return np.random.default_rng(SEED).normal(size=(N, DIM))


def _config():
    return ServerConfig(
        backend="process",
        backend_workers=2,
        workers=1,
        fault_plan=FaultPlan.single("crash", 1),
    )


def _strip(result):
    out = dict(result)
    out.pop("solve_s", None)
    return out


@pytest.fixture(scope="module")
def traced_solve(tmp_path_factory):
    """One traced served solve (+ its stitched trace) shared by the
    assertions below."""
    path = tmp_path_factory.mktemp("trace") / "serve.jsonl"
    with trace_to(path):
        with serve_in_thread(_config()) as handle:
            client = ServeClient(handle.host, handle.port)
            job = client.solve_and_wait(
                points=_points(), trace_id="req-accept", **PARAMS
            )
            stitched = client.trace(job["job_id"])
    set_tracer(NULL_TRACER)
    return job, stitched


def test_served_solution_byte_identical_tracing_on_off(traced_solve):
    traced_job, _ = traced_solve
    with serve_in_thread(_config()) as handle:
        untraced_job = ServeClient(handle.host, handle.port).solve_and_wait(
            points=_points(), **PARAMS
        )
    assert json.dumps(_strip(traced_job["result"]), sort_keys=True) == json.dumps(
        _strip(untraced_job["result"]), sort_keys=True
    )


def test_stitched_trace_found_under_the_offered_id(traced_solve):
    job, stitched = traced_solve
    assert job["trace_id"] == "req-accept"
    assert stitched["trace_id"] == "req-accept"
    assert stitched["found"] is True
    assert stitched["status"] == "done"
    assert stitched["events"] > 0


def test_stitched_trace_spans_every_layer(traced_solve):
    _, stitched = traced_solve
    names = set(stitched["span_names"])
    # server edge: the HTTP request span
    assert "serve.request" in names
    # job queue: submit-to-start wait + the queue-side solve span
    assert "serve.queue_wait" in names
    assert "serve.solve" in names
    # >= 1 shard pipeline stage
    assert stitched["stages"]
    assert any(s.startswith("shard.") for s in stitched["stages"])
    # >= 1 forked backend worker process lane
    assert stitched["worker_lanes"]
    assert all(lane.startswith("worker-") for lane in stitched["worker_lanes"])
    assert "exec" in names


def test_fault_injection_visible_in_the_same_trace(traced_solve):
    # the injected crash's supervisor events ride the same trace id
    _, stitched = traced_solve
    instant_names = {i["name"] for i in stitched["instants"]}
    assert any("task_" in n or "fault" in n for n in instant_names)


def test_trace_endpoint_matches_report_stitcher(traced_solve):
    # the HTTP answer is the same stitch the offline report CLI produces
    from repro.obs.report import render_request_trace

    _, stitched = traced_solve
    text = render_request_trace(stitched)
    assert "req-accept" in text
    assert "serve.request" in text


def test_distinct_requests_get_distinct_traces(tmp_path):
    path = tmp_path / "two.jsonl"
    with trace_to(path):
        with serve_in_thread(_config()) as handle:
            client = ServeClient(handle.host, handle.port)
            first = client.solve_and_wait(
                points=_points(), trace_id="req-a", **PARAMS
            )
            second_params = dict(PARAMS, seed=SEED + 1)
            second = client.solve_and_wait(
                points=_points(), trace_id="req-b", **second_params
            )
            a = client.trace(first["job_id"])
            b = client.trace(second["job_id"])
    assert a["found"] and b["found"]
    assert a["trace_id"] == "req-a" and b["trace_id"] == "req-b"
    assert a["events"] > 0 and b["events"] > 0


def test_cache_hit_poll_carries_submitters_trace_id():
    with serve_in_thread(_config()) as handle:
        client = ServeClient(handle.host, handle.port)
        client.solve_and_wait(points=_points(), **PARAMS)
        t0 = time.perf_counter()
        cached = client.solve(points=_points(), trace_id="req-cached", **PARAMS)
        assert cached["cached"] is True
        assert cached["trace_id"] == "req-cached"
        assert time.perf_counter() - t0 < 5.0
