"""Instance objects: objectives, assignment, and validation."""

import numpy as np
import pytest

from repro.errors import InvalidInstanceError, InvalidParameterError
from repro.metrics.instance import ClusteringInstance, FacilityLocationInstance
from repro.metrics.space import MetricSpace


@pytest.fixture
def hand_instance():
    """2 facilities × 3 clients with hand-checkable numbers."""
    D = np.array([[1.0, 2.0, 3.0], [3.0, 1.0, 1.0]])
    f = np.array([5.0, 4.0])
    return FacilityLocationInstance(D, f)


class TestFacilityLocationInstance:
    def test_shapes(self, hand_instance):
        assert hand_instance.n_facilities == 2
        assert hand_instance.n_clients == 3
        assert hand_instance.m == 6

    def test_cost_single_facility(self, hand_instance):
        assert hand_instance.cost([0]) == pytest.approx(5 + 1 + 2 + 3)
        assert hand_instance.cost([1]) == pytest.approx(4 + 3 + 1 + 1)

    def test_cost_both(self, hand_instance):
        assert hand_instance.cost([0, 1]) == pytest.approx(9 + 1 + 1 + 1)

    def test_cost_boolean_mask(self, hand_instance):
        assert hand_instance.cost(np.array([True, False])) == hand_instance.cost([0])

    def test_cost_components_sum(self, hand_instance):
        total = hand_instance.cost([0, 1])
        assert total == pytest.approx(
            hand_instance.facility_cost([0, 1]) + hand_instance.connection_cost([0, 1])
        )

    def test_assignment_closest(self, hand_instance):
        assert hand_instance.assignment([0, 1]).tolist() == [0, 1, 1]

    def test_assignment_restricted(self, hand_instance):
        assert hand_instance.assignment([1]).tolist() == [1, 1, 1]

    def test_connection_distances(self, hand_instance):
        assert hand_instance.connection_distances([0, 1]).tolist() == [1.0, 1.0, 1.0]

    def test_duplicate_indices_deduped(self, hand_instance):
        assert hand_instance.cost([0, 0]) == hand_instance.cost([0])

    def test_empty_open_set_rejected(self, hand_instance):
        with pytest.raises(InvalidParameterError, match="at least one"):
            hand_instance.cost([])

    def test_out_of_range_index_rejected(self, hand_instance):
        with pytest.raises(InvalidParameterError):
            hand_instance.cost([5])

    def test_bad_mask_shape_rejected(self, hand_instance):
        with pytest.raises(InvalidParameterError):
            hand_instance.cost(np.array([True, False, True]))

    def test_rejects_negative_cost(self):
        with pytest.raises(InvalidInstanceError):
            FacilityLocationInstance(np.ones((1, 2)), np.array([-1.0]))

    def test_rejects_negative_distance(self):
        with pytest.raises(InvalidInstanceError):
            FacilityLocationInstance(np.array([[-1.0, 1.0]]), np.array([1.0]))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(InvalidInstanceError):
            FacilityLocationInstance(np.ones((2, 3)), np.ones(3))

    def test_rejects_empty(self):
        with pytest.raises(InvalidInstanceError):
            FacilityLocationInstance(np.ones((0, 3)), np.ones(0))

    def test_rejects_nonfinite(self):
        with pytest.raises(InvalidInstanceError):
            FacilityLocationInstance(np.array([[np.nan, 1.0]]), np.array([1.0]))

    def test_matrices_readonly(self, hand_instance):
        with pytest.raises(ValueError):
            hand_instance.D[0, 0] = 9.0
        with pytest.raises(ValueError):
            hand_instance.f[0] = 9.0

    def test_from_metric_consistency(self):
        sp = MetricSpace.from_points(np.random.default_rng(0).random((6, 2)))
        inst = FacilityLocationInstance.from_metric(sp, [0, 1], [2, 3, 4, 5], np.ones(2))
        assert inst.D.shape == (2, 4)
        assert inst.D[0, 0] == sp.distance(0, 2)

    def test_metric_mismatch_rejected(self):
        sp = MetricSpace.from_points(np.random.default_rng(0).random((4, 2)))
        with pytest.raises(InvalidInstanceError, match="disagrees"):
            FacilityLocationInstance(
                np.zeros((2, 2)),
                np.ones(2),
                metric=sp,
                facility_ids=np.array([0, 1]),
                client_ids=np.array([2, 3]),
            )

    def test_partial_metric_args_rejected(self):
        sp = MetricSpace.from_points(np.random.default_rng(0).random((4, 2)))
        with pytest.raises(InvalidInstanceError, match="together"):
            FacilityLocationInstance(np.ones((1, 1)), np.ones(1), metric=sp)


@pytest.fixture
def line_clustering():
    """5 points on a line at 0,1,2,3,10 with k=2."""
    pts = np.array([[0.0], [1.0], [2.0], [3.0], [10.0]])
    return ClusteringInstance(MetricSpace.from_points(pts), 2)


class TestClusteringInstance:
    def test_kmedian_cost(self, line_clustering):
        # centers {1, 4}: distances 1,0,1,2,0
        assert line_clustering.kmedian_cost([1, 4]) == pytest.approx(4.0)

    def test_kmeans_cost(self, line_clustering):
        assert line_clustering.kmeans_cost([1, 4]) == pytest.approx(1 + 0 + 1 + 4 + 0)

    def test_kcenter_cost(self, line_clustering):
        assert line_clustering.kcenter_cost([1, 4]) == pytest.approx(2.0)

    def test_check_budget_enforced(self, line_clustering):
        with pytest.raises(InvalidParameterError, match="k=2"):
            line_clustering.check_budget([0, 1, 2])

    def test_check_budget_ok(self, line_clustering):
        assert line_clustering.check_budget([0, 4]).tolist() == [0, 4]

    def test_k_range_validation(self, line_clustering):
        with pytest.raises(InvalidParameterError):
            ClusteringInstance(line_clustering.space, 0)
        with pytest.raises(InvalidParameterError):
            ClusteringInstance(line_clustering.space, 6)

    def test_requires_metric_space(self):
        with pytest.raises(InvalidInstanceError):
            ClusteringInstance(np.zeros((3, 3)), 1)

    def test_n_property(self, line_clustering):
        assert line_clustering.n == 5

    def test_single_center_cost(self, line_clustering):
        assert line_clustering.kmedian_cost([2]) == pytest.approx(2 + 1 + 0 + 1 + 8)
