"""MetricSpace: construction, p-norms, queries, immutability."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidInstanceError
from repro.metrics.space import MetricSpace
from repro.metrics.validation import triangle_violation


@pytest.fixture
def square_space():
    # Unit square corners: distances known exactly.
    return MetricSpace.from_points(np.array([[0, 0], [1, 0], [0, 1], [1, 1]], dtype=float))


def test_from_points_euclidean(square_space):
    assert square_space.distance(0, 1) == pytest.approx(1.0)
    assert square_space.distance(0, 3) == pytest.approx(np.sqrt(2))


def test_from_points_l1():
    sp = MetricSpace.from_points(np.array([[0.0, 0.0], [1.0, 1.0]]), p=1.0)
    assert sp.distance(0, 1) == pytest.approx(2.0)


def test_from_points_linf():
    sp = MetricSpace.from_points(np.array([[0.0, 0.0], [1.0, 3.0]]), p=np.inf)
    assert sp.distance(0, 1) == pytest.approx(3.0)


def test_from_points_general_p():
    sp = MetricSpace.from_points(np.array([[0.0, 0.0], [1.0, 1.0]]), p=3.0)
    assert sp.distance(0, 1) == pytest.approx(2 ** (1 / 3))


def test_n_and_repr(square_space):
    assert square_space.n == 4
    assert "n=4" in repr(square_space)


def test_points_retained(square_space):
    assert square_space.points.shape == (4, 2)


def test_matrix_readonly(square_space):
    with pytest.raises(ValueError):
        square_space.D[0, 1] = 99.0


def test_distance_to_set(square_space):
    d = square_space.distance_to_set([3], [0, 1])
    assert d[0] == pytest.approx(1.0)  # corner (1,1) to (1,0)


def test_distance_to_set_empty_raises(square_space):
    with pytest.raises(InvalidInstanceError):
        square_space.distance_to_set([0], [])


def test_submatrix(square_space):
    block = square_space.submatrix([0, 1], [2, 3])
    assert block.shape == (2, 2)
    assert block[0, 0] == pytest.approx(1.0)


def test_constructor_validates():
    bad = np.array([[0, 1, 5], [1, 0, 1], [5, 1, 0]], dtype=float)
    with pytest.raises(InvalidInstanceError):
        MetricSpace(bad)


def test_constructor_validate_false_trusts():
    bad = np.array([[0, 1, 5], [1, 0, 1], [5, 1, 0]], dtype=float)
    sp = MetricSpace(bad, validate=False)
    assert sp.n == 3


def test_points_length_mismatch():
    D = np.zeros((2, 2))
    with pytest.raises(InvalidInstanceError, match="disagree"):
        MetricSpace(D, points=np.zeros((3, 2)))


@settings(max_examples=25, deadline=None)
@given(
    st.integers(2, 10),
    st.integers(1, 3),
    st.sampled_from([1.0, 2.0, np.inf]),
    st.integers(0, 1000),
)
def test_from_points_is_always_metric(n, dim, p, seed):
    pts = np.random.default_rng(seed).random((n, dim)) * 10
    sp = MetricSpace.from_points(pts, p=p)
    assert triangle_violation(sp.D) <= 1e-9
    assert np.allclose(sp.D, sp.D.T)
    assert np.all(np.diagonal(sp.D) == 0)
