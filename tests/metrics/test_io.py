"""Instance serialization round-trips."""

import numpy as np
import pytest

from repro.errors import InvalidInstanceError
from repro.metrics.generators import euclidean_clustering, euclidean_instance, knn_instance
from repro.metrics.io import load_instance, save_instance
from repro.metrics.instance import ClusteringInstance, FacilityLocationInstance
from repro.metrics.sparse import SparseFacilityLocationInstance, knn_sparsify


def test_fl_roundtrip_with_metric(tmp_path):
    inst = euclidean_instance(5, 11, seed=3)
    path = tmp_path / "fl.npz"
    save_instance(path, inst)
    back = load_instance(path)
    assert isinstance(back, FacilityLocationInstance)
    assert np.array_equal(back.D, inst.D)
    assert np.array_equal(back.f, inst.f)
    assert np.array_equal(back.metric.D, inst.metric.D)
    assert np.array_equal(back.facility_ids, inst.facility_ids)


def test_fl_roundtrip_bare(tmp_path):
    inst = FacilityLocationInstance(np.array([[1.0, 2.0]]), np.array([3.0]))
    path = tmp_path / "bare.npz"
    save_instance(path, inst)
    back = load_instance(path)
    assert back.metric is None
    assert np.array_equal(back.D, inst.D)


def test_clustering_roundtrip(tmp_path):
    inst = euclidean_clustering(12, 3, seed=5)
    path = tmp_path / "cl.npz"
    save_instance(path, inst)
    back = load_instance(path)
    assert isinstance(back, ClusteringInstance)
    assert back.k == 3
    assert np.array_equal(back.D, inst.D)


def test_costs_survive_roundtrip(tmp_path):
    inst = euclidean_instance(4, 9, seed=6)
    path = tmp_path / "x.npz"
    save_instance(path, inst)
    back = load_instance(path)
    assert back.cost([0, 2]) == pytest.approx(inst.cost([0, 2]))


def test_save_rejects_unknown_type(tmp_path):
    with pytest.raises(InvalidInstanceError, match="cannot save"):
        save_instance(tmp_path / "y.npz", object())


# -- sparse instances ---------------------------------------------------------


def test_sparse_roundtrip_preserves_csr_structure(tmp_path):
    inst = knn_instance(20, 60, k=4, seed=11)
    path = tmp_path / "sp.npz"
    save_instance(path, inst)
    back = load_instance(path)
    assert isinstance(back, SparseFacilityLocationInstance)
    assert back.n_facilities == inst.n_facilities
    assert back.n_clients == inst.n_clients
    assert back.nnz == inst.nnz
    np.testing.assert_array_equal(back.indptr, inst.indptr)
    np.testing.assert_array_equal(back.indices, inst.indices)
    np.testing.assert_array_equal(back.data, inst.data)
    np.testing.assert_array_equal(back.f, inst.f)


def test_sparse_roundtrip_preserves_fallback_including_inf(tmp_path):
    dense = euclidean_instance(6, 15, seed=2)
    full = SparseFacilityLocationInstance.from_instance(dense)  # fallback = +inf
    path = tmp_path / "full.npz"
    save_instance(path, full)
    back = load_instance(path)
    np.testing.assert_array_equal(back.fallback, full.fallback)
    assert back.is_dense_representable

    trunc = knn_sparsify(dense, 3)  # finite fallback column
    path2 = tmp_path / "trunc.npz"
    save_instance(path2, trunc)
    back2 = load_instance(path2)
    np.testing.assert_array_equal(back2.fallback, trunc.fallback)
    assert np.all(np.isfinite(back2.fallback))


def test_sparse_roundtrip_preserves_seeded_objective(tmp_path):
    inst = knn_instance(15, 50, k=3, seed=9)
    path = tmp_path / "obj.npz"
    save_instance(path, inst)
    back = load_instance(path)
    rng = np.random.default_rng(0)
    for _ in range(5):
        opened = np.flatnonzero(rng.random(15) < 0.4)
        if opened.size == 0:
            opened = np.array([1])
        assert back.cost(opened) == inst.cost(opened)
        np.testing.assert_array_equal(
            back.connection_distances(opened), inst.connection_distances(opened)
        )
