"""Instance serialization round-trips."""

import numpy as np
import pytest

from repro.errors import InvalidInstanceError
from repro.metrics.generators import euclidean_clustering, euclidean_instance, knn_instance
from repro.metrics.io import load_instance, save_instance
from repro.metrics.instance import ClusteringInstance, FacilityLocationInstance
from repro.metrics.sparse import SparseFacilityLocationInstance, knn_sparsify


def test_fl_roundtrip_with_metric(tmp_path):
    inst = euclidean_instance(5, 11, seed=3)
    path = tmp_path / "fl.npz"
    save_instance(path, inst)
    back = load_instance(path)
    assert isinstance(back, FacilityLocationInstance)
    assert np.array_equal(back.D, inst.D)
    assert np.array_equal(back.f, inst.f)
    assert np.array_equal(back.metric.D, inst.metric.D)
    assert np.array_equal(back.facility_ids, inst.facility_ids)


def test_fl_roundtrip_bare(tmp_path):
    inst = FacilityLocationInstance(np.array([[1.0, 2.0]]), np.array([3.0]))
    path = tmp_path / "bare.npz"
    save_instance(path, inst)
    back = load_instance(path)
    assert back.metric is None
    assert np.array_equal(back.D, inst.D)


def test_clustering_roundtrip(tmp_path):
    inst = euclidean_clustering(12, 3, seed=5)
    path = tmp_path / "cl.npz"
    save_instance(path, inst)
    back = load_instance(path)
    assert isinstance(back, ClusteringInstance)
    assert back.k == 3
    assert np.array_equal(back.D, inst.D)


def test_costs_survive_roundtrip(tmp_path):
    inst = euclidean_instance(4, 9, seed=6)
    path = tmp_path / "x.npz"
    save_instance(path, inst)
    back = load_instance(path)
    assert back.cost([0, 2]) == pytest.approx(inst.cost([0, 2]))


def test_save_rejects_unknown_type(tmp_path):
    with pytest.raises(InvalidInstanceError, match="cannot save"):
        save_instance(tmp_path / "y.npz", object())


# -- sparse instances ---------------------------------------------------------


def test_sparse_roundtrip_preserves_csr_structure(tmp_path):
    inst = knn_instance(20, 60, k=4, seed=11)
    path = tmp_path / "sp.npz"
    save_instance(path, inst)
    back = load_instance(path)
    assert isinstance(back, SparseFacilityLocationInstance)
    assert back.n_facilities == inst.n_facilities
    assert back.n_clients == inst.n_clients
    assert back.nnz == inst.nnz
    np.testing.assert_array_equal(back.indptr, inst.indptr)
    np.testing.assert_array_equal(back.indices, inst.indices)
    np.testing.assert_array_equal(back.data, inst.data)
    np.testing.assert_array_equal(back.f, inst.f)


def test_sparse_roundtrip_preserves_fallback_including_inf(tmp_path):
    dense = euclidean_instance(6, 15, seed=2)
    full = SparseFacilityLocationInstance.from_instance(dense)  # fallback = +inf
    path = tmp_path / "full.npz"
    save_instance(path, full)
    back = load_instance(path)
    np.testing.assert_array_equal(back.fallback, full.fallback)
    assert back.is_dense_representable

    trunc = knn_sparsify(dense, 3)  # finite fallback column
    path2 = tmp_path / "trunc.npz"
    save_instance(path2, trunc)
    back2 = load_instance(path2)
    np.testing.assert_array_equal(back2.fallback, trunc.fallback)
    assert np.all(np.isfinite(back2.fallback))


def test_sparse_roundtrip_preserves_seeded_objective(tmp_path):
    inst = knn_instance(15, 50, k=3, seed=9)
    path = tmp_path / "obj.npz"
    save_instance(path, inst)
    back = load_instance(path)
    rng = np.random.default_rng(0)
    for _ in range(5):
        opened = np.flatnonzero(rng.random(15) < 0.4)
        if opened.size == 0:
            opened = np.array([1])
        assert back.cost(opened) == inst.cost(opened)
        np.testing.assert_array_equal(
            back.connection_distances(opened), inst.connection_distances(opened)
        )


# -- schema versioning (PR 5) ----------------------------------------------

def test_archives_carry_schema_version(tmp_path):
    from repro.metrics.io import SCHEMA_VERSION

    path = tmp_path / "v.npz"
    save_instance(path, euclidean_clustering(10, 2, seed=1))
    with np.load(path) as data:
        assert int(data["version"]) == SCHEMA_VERSION


def test_weighted_clustering_roundtrip(tmp_path):
    rng = np.random.default_rng(3)
    base = euclidean_clustering(12, 3, seed=5)
    inst = ClusteringInstance(base.space, 3, weights=rng.uniform(1, 4, 12))
    path = tmp_path / "wcl.npz"
    save_instance(path, inst)
    back = load_instance(path)
    assert not back.has_unit_weights
    assert np.array_equal(back.weights, inst.weights)
    assert back.kmedian_cost([0, 4, 7]) == inst.kmedian_cost([0, 4, 7])


def test_weighted_fl_and_sparse_roundtrip(tmp_path):
    rng = np.random.default_rng(4)
    fl = euclidean_instance(5, 11, seed=3)
    wfl = FacilityLocationInstance(fl.D, fl.f, client_weights=rng.uniform(1, 2, 11))
    save_instance(tmp_path / "wfl.npz", wfl)
    back = load_instance(tmp_path / "wfl.npz")
    assert np.array_equal(back.client_weights, wfl.client_weights)

    sp = knn_sparsify(wfl, 3)
    save_instance(tmp_path / "wsp.npz", sp)
    back_sp = load_instance(tmp_path / "wsp.npz")
    assert isinstance(back_sp, SparseFacilityLocationInstance)
    assert np.array_equal(back_sp.client_weights, sp.client_weights)
    assert back_sp.cost([0, 1]) == sp.cost([0, 1])

    from repro.metrics.sparse import SparseClusteringInstance

    wcl = ClusteringInstance(
        euclidean_clustering(12, 3, seed=5).space, 3, weights=rng.uniform(1, 2, 12)
    )
    spc = SparseClusteringInstance.from_instance(wcl)
    save_instance(tmp_path / "wspc.npz", spc)
    back_c = load_instance(tmp_path / "wspc.npz")
    assert np.array_equal(back_c.weights, spc.weights)


def test_weighted_kind_fails_loudly_on_legacy_reader(tmp_path):
    """A pre-versioning reader dispatches on the kind string alone; a
    weighted archive's distinct kind must make it raise instead of
    silently loading the structure without its weights."""
    rng = np.random.default_rng(5)
    base = euclidean_clustering(10, 2, seed=7)
    inst = ClusteringInstance(base.space, 2, weights=rng.uniform(1, 3, 10))
    path = tmp_path / "wk.npz"
    save_instance(path, inst)
    legacy_kinds = {
        "facility-location", "clustering", "sparse-facility-location", "sparse-clustering",
    }
    with np.load(path) as data:
        assert str(data["kind"]) not in legacy_kinds


def test_newer_schema_rejected(tmp_path):
    path = tmp_path / "future.npz"
    base = euclidean_clustering(8, 2, seed=9)
    np.savez_compressed(
        path, kind=np.asarray("clustering"), D=base.D, k=np.asarray(2),
        version=np.asarray(99),
    )
    with pytest.raises(InvalidInstanceError, match="schema v99"):
        load_instance(path)


def test_weighted_kind_without_version_rejected(tmp_path):
    path = tmp_path / "mismatch.npz"
    base = euclidean_clustering(8, 2, seed=9)
    np.savez_compressed(
        path, kind=np.asarray("clustering-weighted"), D=base.D, k=np.asarray(2),
        weights=np.ones(8) * 2.0,
    )
    with pytest.raises(InvalidInstanceError, match="disagree"):
        load_instance(path)


def test_smuggled_weights_under_legacy_kind_rejected(tmp_path):
    path = tmp_path / "smuggle.npz"
    base = euclidean_clustering(8, 2, seed=9)
    np.savez_compressed(
        path, kind=np.asarray("clustering"), D=base.D, k=np.asarray(2),
        weights=np.ones(8) * 2.0, version=np.asarray(2),
    )
    with pytest.raises(InvalidInstanceError, match="silently"):
        load_instance(path)


def test_legacy_v1_archive_still_loads(tmp_path):
    """Pre-versioning archives (no version field) keep loading."""
    path = tmp_path / "v1.npz"
    base = euclidean_clustering(8, 2, seed=9)
    np.savez_compressed(path, kind=np.asarray("clustering"), D=base.D, k=np.asarray(2))
    back = load_instance(path)
    assert isinstance(back, ClusteringInstance)
    assert back.k == 2 and back.has_unit_weights


def test_weighted_kind_missing_weight_array_rejected(tmp_path):
    """A weighted kind with no weight payload must not load as a silent
    unit-weight instance."""
    base = euclidean_clustering(8, 2, seed=9)
    path = tmp_path / "noweights.npz"
    np.savez_compressed(
        path, kind=np.asarray("clustering-weighted"), D=base.D, k=np.asarray(2),
        version=np.asarray(2),
    )
    with pytest.raises(InvalidInstanceError, match="no 'weights'"):
        load_instance(path)


def test_weighted_kind_with_misnamed_weight_field_rejected(tmp_path):
    inst = euclidean_instance(4, 8, seed=2)
    path = tmp_path / "misnamed.npz"
    np.savez_compressed(
        path, kind=np.asarray("facility-location-weighted"), D=inst.D, f=inst.f,
        weights=np.full(8, 2.0), version=np.asarray(2),  # should be client_weights
    )
    with pytest.raises(InvalidInstanceError, match="client_weights"):
        load_instance(path)


# -- uncompressed archives + memory-mapped loading (PR 7) ---------------------


def test_uncompressed_roundtrip_byte_identical(tmp_path):
    inst = euclidean_clustering(20, 4, seed=9)
    cpath, upath = tmp_path / "c.npz", tmp_path / "u.npz"
    save_instance(cpath, inst)
    save_instance(upath, inst, compressed=False)
    a, b = load_instance(cpath), load_instance(upath)
    assert type(a) is type(b)
    assert np.array_equal(a.D, b.D)
    assert a.k == b.k
    assert a.kmedian_cost([0, 3]) == b.kmedian_cost([0, 3])


def test_mmap_roundtrip_all_kinds(tmp_path):
    from repro.metrics.generators import knn_clustering_instance
    from repro.metrics.sparse import SparseClusteringInstance

    dense = euclidean_instance(5, 11, seed=3)
    sparse = knn_clustering_instance(60, 4, neighbors=16, seed=2)
    for name, inst in (("fl", dense), ("sp", sparse)):
        path = tmp_path / f"{name}.npz"
        save_instance(path, inst, compressed=False)
        eager = load_instance(path)
        mapped = load_instance(path, mmap_mode="r")
        assert type(mapped) is type(eager)
        if isinstance(eager, SparseClusteringInstance):
            assert np.array_equal(mapped.indptr, eager.indptr)
            assert np.array_equal(mapped.indices, eager.indices)
            assert np.array_equal(mapped.data, eager.data)
        else:
            assert np.array_equal(mapped.D, eager.D)
            assert np.array_equal(mapped.f, eager.f)


def test_mmap_arrays_are_memmaps_and_read_only(tmp_path):
    inst = euclidean_instance(6, 40, seed=7)
    path = tmp_path / "m.npz"
    save_instance(path, inst, compressed=False)
    back = load_instance(path, mmap_mode="r")
    # instance constructors wrap arrays in plain ndarray views, but the
    # buffer must still be the file mapping, not a RAM copy
    assert isinstance(back.D.base, np.memmap)
    with pytest.raises(ValueError):
        back.D[0, 0] = -1.0


def test_mmap_copy_on_write_mode(tmp_path):
    inst = euclidean_instance(6, 40, seed=7)
    path = tmp_path / "cw.npz"
    save_instance(path, inst, compressed=False)
    back = load_instance(path, mmap_mode="c")
    # copy-on-write mapping underneath; the instance still freezes its
    # arrays (write refusal), and the archive is never touched
    assert isinstance(back.D.base, np.memmap)
    assert back.D.base.mode == "c"
    with pytest.raises(ValueError):
        back.D[0, 0] = -1.0
    assert np.array_equal(back.D, load_instance(path).D)


def test_mmap_rejects_compressed_archive(tmp_path):
    inst = euclidean_clustering(10, 3, seed=1)
    path = tmp_path / "z.npz"
    save_instance(path, inst)  # compressed (the default)
    with pytest.raises(InvalidInstanceError, match="compressed=False"):
        load_instance(path, mmap_mode="r")


def test_mmap_mode_validated(tmp_path):
    inst = euclidean_clustering(10, 3, seed=1)
    path = tmp_path / "v.npz"
    save_instance(path, inst, compressed=False)
    from repro.errors import InvalidParameterError

    for bad in ("r+", "w+", "rw", ""):
        with pytest.raises(InvalidParameterError, match="mmap_mode"):
            load_instance(path, mmap_mode=bad)


def test_mmap_seeded_solve_matches_eager(tmp_path):
    """The acceptance invariant: a solver fed a memory-mapped instance
    produces byte-identical seeded output to the eagerly loaded one."""
    from repro.core.local_search import parallel_kmedian
    from repro.metrics.generators import knn_clustering_instance

    inst = knn_clustering_instance(150, 4, neighbors=32, seed=11)
    path = tmp_path / "solve.npz"
    save_instance(path, inst, compressed=False)
    eager = parallel_kmedian(load_instance(path), seed=5)
    mapped = parallel_kmedian(load_instance(path, mmap_mode="r"), seed=5)
    assert np.array_equal(mapped.centers, eager.centers)
    assert mapped.cost == eager.cost


def test_uncompressed_weighted_roundtrip(tmp_path):
    rng = np.random.default_rng(0)
    base = euclidean_clustering(15, 3, seed=4)
    inst = ClusteringInstance(base.space, 3, weights=rng.uniform(1, 2, 15))
    path = tmp_path / "w.npz"
    save_instance(path, inst, compressed=False)
    for kwargs in ({}, {"mmap_mode": "r"}):
        back = load_instance(path, **kwargs)
        assert np.array_equal(np.asarray(back.weights), inst.weights)
