"""Instance serialization round-trips."""

import numpy as np
import pytest

from repro.errors import InvalidInstanceError
from repro.metrics.generators import euclidean_clustering, euclidean_instance
from repro.metrics.io import load_instance, save_instance
from repro.metrics.instance import ClusteringInstance, FacilityLocationInstance


def test_fl_roundtrip_with_metric(tmp_path):
    inst = euclidean_instance(5, 11, seed=3)
    path = tmp_path / "fl.npz"
    save_instance(path, inst)
    back = load_instance(path)
    assert isinstance(back, FacilityLocationInstance)
    assert np.array_equal(back.D, inst.D)
    assert np.array_equal(back.f, inst.f)
    assert np.array_equal(back.metric.D, inst.metric.D)
    assert np.array_equal(back.facility_ids, inst.facility_ids)


def test_fl_roundtrip_bare(tmp_path):
    inst = FacilityLocationInstance(np.array([[1.0, 2.0]]), np.array([3.0]))
    path = tmp_path / "bare.npz"
    save_instance(path, inst)
    back = load_instance(path)
    assert back.metric is None
    assert np.array_equal(back.D, inst.D)


def test_clustering_roundtrip(tmp_path):
    inst = euclidean_clustering(12, 3, seed=5)
    path = tmp_path / "cl.npz"
    save_instance(path, inst)
    back = load_instance(path)
    assert isinstance(back, ClusteringInstance)
    assert back.k == 3
    assert np.array_equal(back.D, inst.D)


def test_costs_survive_roundtrip(tmp_path):
    inst = euclidean_instance(4, 9, seed=6)
    path = tmp_path / "x.npz"
    save_instance(path, inst)
    back = load_instance(path)
    assert back.cost([0, 2]) == pytest.approx(inst.cost([0, 2]))


def test_save_rejects_unknown_type(tmp_path):
    with pytest.raises(InvalidInstanceError, match="cannot save"):
        save_instance(tmp_path / "y.npz", object())
