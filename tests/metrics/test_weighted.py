"""Weighted-instance semantics: validation, unit-weight equivalence,
and the duplicate-point ≡ weight-2 metamorphic property.

Weights are multiplicities — ``w_j`` co-located copies of point ``j``
— so every weighted objective must equal the unweighted objective of
the physically expanded instance, and unit weights must change nothing
at all (the byte-identical contract the solvers rely on).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import InvalidInstanceError
from repro.metrics.generators import euclidean_clustering, euclidean_instance
from repro.metrics.instance import ClusteringInstance, FacilityLocationInstance
from repro.metrics.space import MetricSpace
from repro.metrics.sparse import (
    SparseClusteringInstance,
    SparseFacilityLocationInstance,
    knn_sparsify,
)


@pytest.fixture
def base_clustering():
    return euclidean_clustering(24, 3, seed=11)


@pytest.fixture
def base_fl():
    return euclidean_instance(6, 15, seed=12)


# -- validation -------------------------------------------------------------

@pytest.mark.parametrize(
    "bad",
    [np.zeros(24), -np.ones(24), np.full(24, np.inf), np.ones(23), np.full(24, np.nan)],
    ids=["zero", "negative", "inf", "wrong-shape", "nan"],
)
def test_clustering_weights_validated(base_clustering, bad):
    with pytest.raises(InvalidInstanceError):
        ClusteringInstance(base_clustering.space, 3, weights=bad)


def test_fl_client_weights_validated(base_fl):
    with pytest.raises(InvalidInstanceError):
        FacilityLocationInstance(base_fl.D, base_fl.f, client_weights=np.zeros(15))
    with pytest.raises(InvalidInstanceError):
        SparseFacilityLocationInstance.from_dense(
            base_fl.D, base_fl.f, client_weights=np.ones(14)
        )


# -- unit-weight equivalence ------------------------------------------------

def test_unit_weights_equal_unweighted_objectives(base_clustering):
    explicit = ClusteringInstance(base_clustering.space, 3, weights=np.ones(24))
    assert explicit.has_unit_weights
    centers = [0, 5, 9]
    for obj in ("kmedian_cost", "kmeans_cost", "kcenter_cost"):
        assert getattr(explicit, obj)(centers) == getattr(base_clustering, obj)(centers)


def test_unit_weights_equal_unweighted_fl(base_fl):
    explicit = FacilityLocationInstance(base_fl.D, base_fl.f, client_weights=np.ones(15))
    assert explicit.has_unit_weights
    assert explicit.cost([0, 2]) == base_fl.cost([0, 2])
    assert explicit.total_weight == 15.0


def test_weights_property_defaults(base_clustering, base_fl):
    assert np.array_equal(base_clustering.weights, np.ones(24))
    assert base_clustering.has_unit_weights
    assert base_clustering.total_weight == 24.0
    assert np.array_equal(base_fl.client_weights, np.ones(15))
    sp = SparseClusteringInstance.from_instance(base_clustering)
    assert sp.has_unit_weights and sp.total_weight == 24.0


# -- duplicate-point ≡ weight-2 metamorphic property ------------------------

def _expand(instance: ClusteringInstance, w: np.ndarray):
    """Physically duplicate node ``j`` ``w_j`` times (integer weights)."""
    reps = np.repeat(np.arange(instance.n), w.astype(int))
    D = instance.D[np.ix_(reps, reps)]
    first = np.searchsorted(reps, np.arange(instance.n))
    return ClusteringInstance(MetricSpace(D, validate=False), instance.k), first


def test_duplicate_collapses_to_weight_two(base_clustering):
    w = np.ones(24)
    w[[2, 7, 19]] = 2.0
    weighted = ClusteringInstance(base_clustering.space, 3, weights=w)
    expanded, first = _expand(base_clustering, w)
    centers = np.array([1, 7, 13])
    assert weighted.kmedian_cost(centers) == pytest.approx(
        expanded.kmedian_cost(first[centers])
    )
    assert weighted.kmeans_cost(centers) == pytest.approx(
        expanded.kmeans_cost(first[centers])
    )
    assert weighted.kcenter_cost(centers) == pytest.approx(
        expanded.kcenter_cost(first[centers])
    )


def test_duplicate_collapses_fl(base_fl):
    w = np.ones(15)
    w[[0, 4]] = 3.0
    weighted = FacilityLocationInstance(base_fl.D, base_fl.f, client_weights=w)
    cols = np.repeat(np.arange(15), w.astype(int))
    expanded = FacilityLocationInstance(base_fl.D[:, cols], base_fl.f)
    for opened in ([0], [1, 3], [0, 2, 5]):
        assert weighted.cost(opened) == pytest.approx(expanded.cost(opened))


def test_sparse_weighted_objectives_match_dense(base_clustering):
    rng = np.random.default_rng(5)
    w = rng.uniform(0.5, 4.0, 24)
    weighted = ClusteringInstance(base_clustering.space, 3, weights=w)
    sp = SparseClusteringInstance.from_instance(weighted)
    assert not sp.has_unit_weights
    centers = [3, 10, 17]
    for obj in ("kmedian_cost", "kmeans_cost", "kcenter_cost"):
        assert getattr(sp, obj)(centers) == pytest.approx(getattr(weighted, obj)(centers))
    # round-trip through the dense bridge preserves the weights
    back = sp.to_dense()
    assert np.allclose(back.weights, w)


def test_sparsifiers_carry_weights(base_fl, base_clustering):
    rng = np.random.default_rng(6)
    wfl = FacilityLocationInstance(
        base_fl.D, base_fl.f, client_weights=rng.uniform(1, 3, 15)
    )
    sp = knn_sparsify(wfl, 4)
    assert not sp.has_unit_weights
    assert np.allclose(sp.client_weights, wfl.client_weights)
    wcl = ClusteringInstance(base_clustering.space, 3, weights=rng.uniform(1, 3, 24))
    spc = knn_sparsify(wcl, 8)
    assert not spc.has_unit_weights
    assert np.allclose(spc.weights, wcl.weights)
    assert spc.with_budget(5).weights is not None
    assert np.allclose(spc.with_budget(5).weights, wcl.weights)
