"""Workload generators: shape, determinism, metric validity, and the
documented structural properties of the adversarial instances."""

import networkx as nx
import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.metrics.generators import (
    clustered_clustering,
    clustered_instance,
    clustered_points,
    euclidean_clustering,
    euclidean_instance,
    euclidean_points,
    graph_instance,
    grid_points,
    random_metric_instance,
    star_instance,
    two_scale_instance,
)
from repro.metrics.validation import triangle_violation


FL_GENERATORS = [
    lambda seed: euclidean_instance(6, 15, seed=seed),
    lambda seed: clustered_instance(6, 20, n_clusters=3, seed=seed),
    lambda seed: random_metric_instance(5, 12, seed=seed),
    lambda seed: star_instance(6, seed=seed),
    lambda seed: two_scale_instance(3, 5, seed=seed),
]


@pytest.mark.parametrize("gen", FL_GENERATORS)
def test_fl_generators_deterministic(gen):
    a, b = gen(3), gen(3)
    assert np.array_equal(a.D, b.D) and np.array_equal(a.f, b.f)


@pytest.mark.parametrize("gen", FL_GENERATORS)
def test_fl_generators_seed_sensitivity(gen):
    # Star geometry is deliberately seed-independent; its seed only
    # perturbs cost tie-breaking — so compare (D, f) jointly.
    a, b = gen(1), gen(2)
    assert not (np.array_equal(a.D, b.D) and np.array_equal(a.f, b.f))


@pytest.mark.parametrize("gen", FL_GENERATORS)
def test_fl_generators_valid_instances(gen):
    inst = gen(0)
    assert np.all(inst.D >= 0) and np.all(inst.f >= 0)
    assert inst.metric is not None
    assert triangle_violation(inst.metric.D) <= 1e-9


def test_euclidean_points_space():
    sp = euclidean_points(20, dim=3, seed=0)
    assert sp.n == 20 and sp.points.shape == (20, 3)


def test_clustered_points_tighter_than_uniform():
    tight = clustered_points(60, n_clusters=3, spread=0.01, seed=0)
    loose = euclidean_points(60, seed=0)
    # Mean nearest-neighbor distance should be far smaller for blobs.
    def mean_nn(sp):
        D = sp.D + np.eye(sp.n) * 1e9
        return D.min(axis=1).mean()
    assert mean_nn(tight) < mean_nn(loose)


def test_grid_points_manhattan():
    sp = grid_points(3, 2, p=1.0)
    assert sp.n == 6
    assert sp.distance(0, 1) == pytest.approx(1.0)


def test_grid_points_square_default():
    assert grid_points(3).n == 9


def test_graph_instance_shortest_paths():
    G = nx.path_graph(10)
    inst = graph_instance(G, 3, 5, seed=0)
    assert inst.n_facilities == 3 and inst.n_clients == 5
    assert triangle_violation(inst.metric.D) <= 1e-9


def test_graph_instance_needs_enough_nodes():
    with pytest.raises(InvalidParameterError, match="nodes"):
        graph_instance(nx.path_graph(4), 3, 5)


def test_graph_instance_needs_connected():
    G = nx.Graph()
    G.add_edges_from([(0, 1), (2, 3)])
    with pytest.raises(InvalidParameterError, match="connected"):
        graph_instance(G, 2, 2)


def test_random_metric_is_metric():
    inst = random_metric_instance(6, 10, seed=4)
    assert triangle_violation(inst.metric.D) <= 1e-9


def test_star_instance_structure():
    inst = star_instance(8, hub_cost=1.0, spoke_cost=4.0, radius=1.0, seed=0)
    assert inst.n_facilities == 9 and inst.n_clients == 8
    # hub serves everyone at distance 1; spoke facilities are co-located.
    assert np.allclose(inst.D[0], 1.0)
    assert inst.D[1, 0] == pytest.approx(0.0)
    # hub-only is optimal vs. opening rim facilities
    assert inst.cost([0]) < inst.cost(np.arange(1, 9))


def test_two_scale_instance_structure():
    inst = two_scale_instance(3, 6, scale=20.0, spread=0.1, seed=0)
    assert inst.n_facilities == 6 and inst.n_clients == 18
    # opening the three cluster facilities beats any single facility
    three = inst.cost([0, 1, 2])
    singles = min(inst.cost([i]) for i in range(6))
    assert three < singles


def test_clustering_generators():
    a = euclidean_clustering(25, 4, seed=1)
    b = clustered_clustering(25, 4, seed=1)
    assert a.n == b.n == 25 and a.k == b.k == 4


def test_cost_range_validation():
    with pytest.raises(InvalidParameterError, match="cost_range"):
        euclidean_instance(3, 3, cost_range=(2.0, 1.0), seed=0)


def test_cost_scale_override():
    inst = euclidean_instance(4, 8, cost_range=(1.0, 1.0), cost_scale=7.0, seed=0)
    assert np.allclose(inst.f, 7.0)


@pytest.mark.parametrize("bad", [0, -2])
def test_size_validation(bad):
    with pytest.raises(InvalidParameterError):
        euclidean_instance(bad, 5, seed=0)
