"""Metric-matrix validation: each structural requirement individually."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidInstanceError
from repro.metrics.validation import check_metric_matrix, triangle_violation


def valid_metric():
    pts = np.random.default_rng(0).random((6, 2))
    d = np.sqrt(((pts[:, None] - pts[None, :]) ** 2).sum(-1))
    np.fill_diagonal(d, 0)
    return np.minimum(d, d.T)


def test_accepts_valid_metric():
    D = check_metric_matrix(valid_metric())
    assert D.dtype == np.float64


def test_rejects_nonsquare():
    with pytest.raises(InvalidInstanceError, match="square"):
        check_metric_matrix(np.ones((2, 3)))


def test_rejects_empty():
    with pytest.raises(InvalidInstanceError, match="non-empty"):
        check_metric_matrix(np.empty((0, 0)))


def test_rejects_negative():
    D = valid_metric()
    D[0, 1] = D[1, 0] = -0.5
    with pytest.raises(InvalidInstanceError, match="negative"):
        check_metric_matrix(D)


def test_rejects_nonzero_diagonal():
    D = valid_metric()
    D[2, 2] = 0.1
    with pytest.raises(InvalidInstanceError, match="self-distances"):
        check_metric_matrix(D)


def test_rejects_asymmetric():
    D = valid_metric()
    D[0, 1] += 0.2
    with pytest.raises(InvalidInstanceError, match="asymmetric"):
        check_metric_matrix(D)


def test_rejects_nonfinite():
    D = valid_metric()
    D[0, 1] = D[1, 0] = np.inf
    with pytest.raises(InvalidInstanceError, match="non-finite"):
        check_metric_matrix(D)


def test_rejects_triangle_violation():
    # Points on a line: 0 --1-- 1 --1-- 2; claim d(0,2)=5 breaks the triangle.
    D = np.array([[0, 1, 5], [1, 0, 1], [5, 1, 0]], dtype=float)
    with pytest.raises(InvalidInstanceError, match="triangle"):
        check_metric_matrix(D)


def test_triangle_check_can_be_skipped():
    D = np.array([[0, 1, 5], [1, 0, 1], [5, 1, 0]], dtype=float)
    out = check_metric_matrix(D, check_triangle=False)
    assert out.shape == (3, 3)


def test_triangle_violation_value():
    D = np.array([[0, 1, 5], [1, 0, 1], [5, 1, 0]], dtype=float)
    assert triangle_violation(D) == pytest.approx(3.0)  # 5 - (1+1)


def test_triangle_violation_nonpositive_for_metric():
    assert triangle_violation(valid_metric()) <= 1e-12


def test_sampled_midpoints_catch_gross_violation():
    n = 300  # beyond the exact-check limit of 256
    rng = np.random.default_rng(1)
    pts = rng.random((n, 2))
    D = np.sqrt(((pts[:, None] - pts[None, :]) ** 2).sum(-1))
    D = np.minimum(D, D.T)
    np.fill_diagonal(D, 0)
    D[0, 1] = D[1, 0] = 1e6  # violated through *every* midpoint
    assert triangle_violation(D, sample_limit=32) > 1e5


def test_clips_tiny_negatives():
    # Co-located points whose distance came out as a tiny negative
    # through floating-point arithmetic.
    D = np.array([[0.0, -1e-15, 1.0], [-1e-15, 0.0, 1.0], [1.0, 1.0, 0.0]])
    out = check_metric_matrix(D)
    assert out[0, 1] == 0.0


@settings(max_examples=25, deadline=None)
@given(st.integers(2, 12), st.integers(1, 3), st.integers(0, 10_000))
def test_euclidean_points_always_pass(n, dim, seed):
    pts = np.random.default_rng(seed).random((n, dim))
    d = np.sqrt(((pts[:, None] - pts[None, :]) ** 2).sum(-1))
    d = np.minimum(d, d.T)
    np.fill_diagonal(d, 0)
    check_metric_matrix(d, tol=1e-7)
