"""Tests for SparseFacilityLocationInstance, sparsifiers, and knn_instance."""

import numpy as np
import pytest

from repro.errors import InvalidInstanceError, InvalidParameterError
from repro.metrics.generators import euclidean_instance, knn_instance
from repro.metrics.sparse import (
    SparseFacilityLocationInstance,
    knn_sparsify,
    threshold_sparsify,
)


@pytest.fixture
def dense():
    return euclidean_instance(6, 20, seed=3)


@pytest.fixture
def full(dense):
    return SparseFacilityLocationInstance.from_instance(dense)


class TestConstruction:
    def test_from_dense_shape(self, dense, full):
        assert full.n_facilities == dense.n_facilities
        assert full.n_clients == dense.n_clients
        assert full.nnz == dense.m
        assert full.m == dense.m  # m is nnz for sparse instances
        assert full.is_dense_representable

    def test_arrays_read_only(self, full):
        with pytest.raises(ValueError):
            full.data[0] = 1.0
        with pytest.raises(ValueError):
            full.f[0] = 1.0

    def test_rejects_negative_distance(self):
        with pytest.raises(InvalidInstanceError, match="non-negative"):
            SparseFacilityLocationInstance(
                [0, 1], [0], [-1.0], [1.0], n_clients=2, fallback=[1.0, 1.0]
            )

    def test_rejects_nonfinite(self):
        with pytest.raises(InvalidInstanceError, match="finite"):
            SparseFacilityLocationInstance(
                [0, 1], [0], [np.inf], [1.0], n_clients=1
            )

    def test_rejects_bad_fallback_shape(self):
        with pytest.raises(InvalidInstanceError, match="fallback"):
            SparseFacilityLocationInstance(
                [0, 1], [0], [1.0], [1.0], n_clients=2, fallback=[1.0]
            )

    def test_rejects_uncovered_client_with_inf_fallback(self):
        # client 1 has no candidate and no finite fallback
        with pytest.raises(InvalidInstanceError, match="no candidate"):
            SparseFacilityLocationInstance([0, 1], [0], [1.0], [1.0], n_clients=2)

    def test_uncovered_client_with_finite_fallback_ok(self):
        inst = SparseFacilityLocationInstance(
            [0, 1], [0], [1.0], [1.0], n_clients=2, fallback=[np.inf, 3.0]
        )
        assert inst.cost([0]) == pytest.approx(1.0 + 1.0 + 3.0)

    def test_rejects_duplicate_candidate(self):
        with pytest.raises(InvalidInstanceError, match="duplicate"):
            SparseFacilityLocationInstance(
                [0, 2], [1, 1], [1.0, 2.0], [1.0], n_clients=2
            )

    def test_from_scipy(self, dense):
        sparse = pytest.importorskip("scipy.sparse")
        A = sparse.csr_matrix(dense.D)
        inst = SparseFacilityLocationInstance.from_scipy(A, dense.f)
        # scipy drops the (rare) exact zeros, so compare per-entry
        assert inst.n_facilities == dense.n_facilities
        assert inst.nnz == A.nnz


class TestObjective:
    @pytest.mark.parametrize("opened", [[0], [1, 3], [0, 2, 4, 5]])
    def test_dense_representable_matches_dense(self, dense, full, opened):
        assert full.cost(opened) == dense.cost(opened)
        assert full.facility_cost(opened) == dense.facility_cost(opened)
        assert full.connection_cost(opened) == dense.connection_cost(opened)
        np.testing.assert_array_equal(
            full.connection_distances(opened), dense.connection_distances(opened)
        )
        np.testing.assert_array_equal(full.assignment(opened), dense.assignment(opened))

    def test_fallback_caps_service_cost(self):
        inst = SparseFacilityLocationInstance(
            [0, 1, 2], [0, 0], [2.0, 5.0], [1.0, 1.0], n_clients=2,
            fallback=[0.5, 4.0],
        )
        d = inst.connection_distances([0])
        np.testing.assert_array_equal(d, [0.5, 4.0])
        assert inst.assignment([0]).tolist() == [-1, -1]

    def test_requires_at_least_one_open(self, full):
        with pytest.raises(InvalidParameterError):
            full.cost([])


class TestClientView:
    def test_transpose_round_trip(self, full, dense):
        ct_indptr, ct_rows, ct_entry = full.client_view
        assert ct_indptr[-1] == full.nnz
        # every client sees every facility on a full instance
        np.testing.assert_array_equal(np.diff(ct_indptr), dense.n_facilities)
        d_by_client = full.data[ct_entry].reshape(dense.n_clients, -1)
        np.testing.assert_array_equal(d_by_client, dense.D.T)

    def test_to_dense_round_trip(self, dense, full):
        back = full.to_dense()
        np.testing.assert_array_equal(back.D, dense.D)
        np.testing.assert_array_equal(back.f, dense.f)

    def test_to_dense_rejects_truncated(self, dense):
        trunc = knn_sparsify(dense, 3)
        with pytest.raises(InvalidInstanceError, match="dense-representable"):
            trunc.to_dense()


class TestKnnSparsify:
    def test_keeps_exactly_k_nearest(self, dense):
        trunc = knn_sparsify(dense, 2)
        counts = np.bincount(trunc.indices, minlength=dense.n_clients)
        assert np.all(counts == 2)
        assert trunc.nnz == 2 * dense.n_clients
        # kept distances per client are the smallest ones
        ct_indptr, ct_rows, ct_entry = trunc.client_view
        for j in range(dense.n_clients):
            kept = np.sort(trunc.data[ct_entry[ct_indptr[j] : ct_indptr[j + 1]]])
            best = np.sort(dense.D[:, j])[: kept.size]
            np.testing.assert_allclose(kept, best)

    def test_tied_metric_stays_sparse(self):
        """Fully tied distances must not defeat the truncation: exactly
        k entries per client survive, never the whole matrix."""
        from repro.metrics.instance import FacilityLocationInstance

        inst = FacilityLocationInstance(np.ones((30, 90)), np.ones(30))
        trunc = knn_sparsify(inst, 3)
        assert trunc.nnz == 3 * 90
        np.testing.assert_array_equal(
            np.bincount(trunc.indices, minlength=90), np.full(90, 3)
        )

    def test_full_k_is_dense_equal(self, dense):
        trunc = knn_sparsify(dense, dense.n_facilities, fallback_slack=1.0)
        assert trunc.nnz == dense.m
        assert np.all(np.isfinite(trunc.fallback))

    def test_rejects_bad_k(self, dense):
        with pytest.raises(InvalidParameterError):
            knn_sparsify(dense, 0)
        with pytest.raises(InvalidParameterError):
            knn_sparsify(dense, dense.n_facilities + 1)


class TestThresholdSparsify:
    def test_keeps_competitive_candidates(self, dense):
        trunc = threshold_sparsify(dense, 0.25)
        total = dense.D + dense.f[:, None]
        gamma = total.min(axis=0)
        rows = trunc.rows_flat()
        kept = trunc.f[rows] + trunc.data
        assert np.all(kept <= (1.0 + 0.25) * gamma[trunc.indices] + 1e-12)
        np.testing.assert_allclose(trunc.fallback, gamma)

    def test_every_client_keeps_its_best(self, dense):
        trunc = threshold_sparsify(dense, 0.01)
        counts = np.bincount(trunc.indices, minlength=dense.n_clients)
        assert counts.min() >= 1


class TestKnnInstance:
    def test_deterministic(self):
        a = knn_instance(30, 100, k=4, seed=7)
        b = knn_instance(30, 100, k=4, seed=7)
        np.testing.assert_array_equal(a.indptr, b.indptr)
        np.testing.assert_array_equal(a.indices, b.indices)
        np.testing.assert_array_equal(a.data, b.data)
        np.testing.assert_array_equal(a.f, b.f)
        np.testing.assert_array_equal(a.fallback, b.fallback)

    def test_shape_and_coverage(self):
        inst = knn_instance(25, 80, k=5, seed=1)
        assert inst.n_facilities == 25
        assert inst.n_clients == 80
        assert inst.nnz == 80 * 5
        counts = np.bincount(inst.indices, minlength=80)
        assert np.all(counts == 5)
        assert np.all(np.isfinite(inst.fallback))

    def test_matches_brute_force_knn(self):
        inst = knn_instance(12, 40, k=3, seed=2, dim=3)
        # rebuild the geometry with the same RNG stream
        from repro.util.rng import ensure_rng

        rng = ensure_rng(2)
        facilities = rng.random((12, 3))
        clients = rng.random((40, 3))
        D = np.linalg.norm(facilities[:, None, :] - clients[None, :, :], axis=2)
        ct_indptr, ct_rows, ct_entry = inst.client_view
        for j in range(40):
            kept = np.sort(inst.data[ct_entry[ct_indptr[j] : ct_indptr[j + 1]]])
            np.testing.assert_allclose(kept, np.sort(D[:, j])[:3])

    def test_clustered_clients(self):
        inst = knn_instance(20, 60, k=3, n_clusters=4, seed=3)
        assert inst.nnz == 180

    def test_k_one(self):
        inst = knn_instance(10, 30, k=1, seed=4)
        assert inst.nnz == 30

    def test_rejects_bad_params(self):
        with pytest.raises(InvalidParameterError):
            knn_instance(10, 30, k=11, seed=0)
        with pytest.raises(InvalidParameterError):
            knn_instance(10, 30, k=2, fallback_slack=-0.5, seed=0)


class TestBruteForceObjective:
    def test_truncated_cost_against_reference(self, dense):
        """Sparse objective = dense objective with non-candidates masked
        to +inf and the fallback column appended."""
        trunc = knn_sparsify(dense, 3)
        rng = np.random.default_rng(0)
        masked = np.full((dense.n_facilities, dense.n_clients), np.inf)
        rows = trunc.rows_flat()
        masked[rows, trunc.indices] = trunc.data
        for _ in range(10):
            opened = np.flatnonzero(rng.random(dense.n_facilities) < 0.5)
            if opened.size == 0:
                opened = np.array([0])
            ref = np.minimum(masked[opened].min(axis=0), trunc.fallback)
            expected = float(dense.f[opened].sum() + ref.sum())
            assert trunc.cost(opened) == pytest.approx(expected)


# --------------------------------------------------------------------------
# SparseClusteringInstance (PR 4)
# --------------------------------------------------------------------------

from repro.metrics.generators import (  # noqa: E402
    euclidean_clustering,
    knn_clustering_instance,
)
from repro.metrics.instance import ClusteringInstance  # noqa: E402
from repro.metrics.space import MetricSpace  # noqa: E402
from repro.metrics.sparse import SparseClusteringInstance  # noqa: E402


@pytest.fixture
def dense_clustering():
    return euclidean_clustering(18, 3, seed=7)


@pytest.fixture
def full_clustering(dense_clustering):
    return SparseClusteringInstance.from_instance(dense_clustering)


class TestSparseClusteringConstruction:
    def test_from_instance_shape(self, dense_clustering, full_clustering):
        sp = full_clustering
        assert sp.n == dense_clustering.n
        assert sp.k == dense_clustering.k
        assert sp.nnz == dense_clustering.n**2
        assert sp.m == sp.nnz
        assert sp.is_dense_representable

    def test_to_dense_round_trip(self, dense_clustering, full_clustering):
        back = full_clustering.to_dense()
        assert np.array_equal(back.D, dense_clustering.D)
        assert back.k == dense_clustering.k

    def test_truncated_not_dense_representable(self, dense_clustering):
        sp = knn_sparsify(dense_clustering, 6)
        assert not sp.is_dense_representable
        with pytest.raises(InvalidInstanceError, match="dense-representable"):
            sp.to_dense()

    def test_arrays_read_only(self, full_clustering):
        with pytest.raises(ValueError):
            full_clustering.data[0] = 1.0
        with pytest.raises(ValueError):
            full_clustering.fallback[0] = 1.0

    def test_rejects_missing_diagonal(self):
        # 2 nodes, edges (0,1)/(1,0) only — no self candidates.
        with pytest.raises(InvalidInstanceError, match="diagonal"):
            SparseClusteringInstance([0, 1, 2], [1, 0], [1.0, 1.0], 1)

    def test_rejects_nonzero_diagonal(self):
        with pytest.raises(InvalidInstanceError, match="diagonal"):
            SparseClusteringInstance([0, 1, 2], [0, 1], [0.5, 0.0], 1)

    def test_rejects_asymmetric_structure(self):
        # (0,1) stored, (1,0) absent.
        with pytest.raises(InvalidInstanceError, match="symmetric"):
            SparseClusteringInstance(
                [0, 2, 3], [0, 1, 1], [0.0, 1.0, 0.0], 1
            )

    def test_rejects_asymmetric_values(self):
        with pytest.raises(InvalidInstanceError, match="symmetric"):
            SparseClusteringInstance(
                [0, 2, 4], [0, 1, 0, 1], [0.0, 1.0, 2.0, 0.0], 1
            )

    def test_rejects_unsorted_rows(self):
        with pytest.raises(InvalidInstanceError, match="ascending"):
            SparseClusteringInstance(
                [0, 2, 4], [1, 0, 0, 1], [1.0, 0.0, 1.0, 0.0], 1
            )

    def test_rejects_bad_budget(self, dense_clustering):
        with pytest.raises(InvalidParameterError, match="k must be"):
            SparseClusteringInstance.from_dense(dense_clustering.D, 0)
        with pytest.raises(InvalidParameterError, match="k must be"):
            SparseClusteringInstance.from_dense(dense_clustering.D, dense_clustering.n + 1)

    def test_rejects_bad_fallback(self, dense_clustering):
        D = dense_clustering.D
        with pytest.raises(InvalidInstanceError, match="fallback"):
            SparseClusteringInstance.from_dense(D, 2, fallback=np.ones(3))
        with pytest.raises(InvalidInstanceError, match="non-negative"):
            SparseClusteringInstance.from_dense(D, 2, fallback=-np.ones(D.shape[0]))

    def test_with_budget(self, full_clustering):
        other = full_clustering.with_budget(5)
        assert other.k == 5
        assert other.nnz == full_clustering.nnz


class TestSparseClusteringObjectives:
    def test_match_dense_exactly(self, dense_clustering, full_clustering):
        rng = np.random.default_rng(0)
        for _ in range(5):
            centers = np.unique(rng.integers(0, dense_clustering.n, size=4))
            for obj in ("kmedian_cost", "kmeans_cost", "kcenter_cost"):
                assert getattr(full_clustering, obj)(centers) == getattr(
                    dense_clustering, obj
                )(centers)

    def test_boolean_mask_accepted(self, dense_clustering, full_clustering):
        mask = np.zeros(dense_clustering.n, dtype=bool)
        mask[[1, 4]] = True
        assert full_clustering.kmedian_cost(mask) == dense_clustering.kmedian_cost(mask)

    def test_fallback_caps_uncovered_nodes(self):
        # Two far nodes, only diagonal stored, finite fallback.
        sp = SparseClusteringInstance(
            [0, 1, 2], [0, 1], [0.0, 0.0], 1, fallback=[5.0, 7.0]
        )
        assert sp.kmedian_cost([0]) == 7.0  # node 1 pays its fallback
        assert sp.kcenter_cost([0]) == 7.0
        assert sp.kmeans_cost([0]) == 49.0

    def test_check_budget(self, full_clustering):
        with pytest.raises(InvalidParameterError, match="centers"):
            full_clustering.check_budget(np.arange(full_clustering.k + 1))


class TestClusteringSparsifiers:
    def test_knn_structure(self, dense_clustering):
        sp = knn_sparsify(dense_clustering, 6)
        n = dense_clustering.n
        assert sp.n == n and sp.k == dense_clustering.k
        # symmetrized union: at least the kNN edges, at most double.
        assert n * 6 <= sp.nnz <= n * 6 * 2
        # diagonal present: kmedian of everything is 0
        assert sp.kmedian_cost(np.arange(n)) == 0.0

    def test_knn_fallback_is_scaled_radius(self, dense_clustering):
        sp = knn_sparsify(dense_clustering, 6, fallback_slack=0.5)
        D = dense_clustering.D
        radius = np.sort(D, axis=1)[:, 5]  # 6th nearest including self
        assert np.allclose(sp.fallback, 1.5 * radius)

    def test_knn_all_neighbors_is_full(self, dense_clustering):
        sp = knn_sparsify(dense_clustering, dense_clustering.n)
        assert sp.nnz == dense_clustering.n**2

    def test_threshold_structure(self, dense_clustering):
        t = 0.4
        sp = threshold_sparsify(dense_clustering, t)
        assert np.all(sp.data <= t)
        assert np.all(sp.fallback == t)
        # every stored off-diagonal pair of D within t survives
        D = dense_clustering.D
        assert sp.nnz == int((D <= t).sum())

    def test_threshold_rejects_nonpositive(self, dense_clustering):
        with pytest.raises(InvalidParameterError, match="radius"):
            threshold_sparsify(dense_clustering, 0.0)

    def test_dispatch_returns_right_types(self, dense_clustering, dense):
        assert isinstance(knn_sparsify(dense_clustering, 4), SparseClusteringInstance)
        assert isinstance(knn_sparsify(dense, 4), SparseFacilityLocationInstance)
        assert isinstance(
            threshold_sparsify(dense_clustering, 0.5), SparseClusteringInstance
        )
        assert isinstance(
            threshold_sparsify(dense, 0.5), SparseFacilityLocationInstance
        )


class TestKnnClusteringInstance:
    def test_deterministic(self):
        a = knn_clustering_instance(200, 5, neighbors=8, seed=4)
        b = knn_clustering_instance(200, 5, neighbors=8, seed=4)
        assert np.array_equal(a.indptr, b.indptr)
        assert np.array_equal(a.indices, b.indices)
        assert np.array_equal(a.data, b.data)
        assert np.array_equal(a.fallback, b.fallback)

    def test_memory_scales_with_neighbors(self):
        sp = knn_clustering_instance(400, 5, neighbors=8, seed=0)
        assert sp.nnz <= 400 * 8 * 2  # symmetrized union, diag inside kNN
        assert sp.m == sp.nnz

    def test_blob_mode(self):
        sp = knn_clustering_instance(120, 4, neighbors=6, n_clusters=4, seed=1)
        assert sp.n == 120

    def test_matches_dense_knn_sparsify(self):
        """KD-tree-first construction == dense-then-sparsify on the
        same geometry (same points, same neighbor count)."""
        rng = np.random.default_rng(9)
        pts = rng.random((60, 2))
        dense = ClusteringInstance(MetricSpace.from_points(pts), 4)
        via_dense = knn_sparsify(dense, 7, fallback_slack=1.0)
        from scipy.spatial import cKDTree

        from repro.metrics.sparse import _symmetrized_clustering_csr

        dist, near = cKDTree(pts).query(pts, k=7)
        rows = np.repeat(np.arange(60, dtype=np.intp), 7)
        indptr, indices, data = _symmetrized_clustering_csr(
            60, rows, near.ravel().astype(np.intp), dist.ravel()
        )
        direct = SparseClusteringInstance(
            indptr, indices, data, 4, fallback=2.0 * dist[:, -1]
        )
        assert np.array_equal(direct.indptr, via_dense.indptr)
        assert np.array_equal(direct.indices, via_dense.indices)
        assert np.allclose(direct.data, via_dense.data)

    def test_io_round_trip(self, tmp_path):
        from repro.metrics.io import load_instance, save_instance

        sp = knn_clustering_instance(80, 3, neighbors=5, seed=2)
        path = tmp_path / "cluster.npz"
        save_instance(path, sp)
        back = load_instance(path)
        assert isinstance(back, SparseClusteringInstance)
        assert np.array_equal(back.indptr, sp.indptr)
        assert np.array_equal(back.indices, sp.indices)
        assert np.array_equal(back.data, sp.data)
        assert np.array_equal(back.fallback, sp.fallback)
        assert back.k == sp.k
