"""Shared fixtures: canonical instances and machines.

Instances are small enough for exact (brute-force) reference optima so
approximation claims are measured against true values, not proxies.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import PramMachine
from repro.metrics.generators import (
    clustered_clustering,
    clustered_instance,
    euclidean_clustering,
    euclidean_instance,
    random_metric_instance,
    star_instance,
    two_scale_instance,
)


@pytest.fixture
def machine() -> PramMachine:
    return PramMachine(seed=1234)


@pytest.fixture
def tiny_fl():
    """5 facilities × 12 clients — fast exact optimum."""
    return euclidean_instance(5, 12, seed=11)


@pytest.fixture
def small_fl():
    """8 facilities × 24 clients — the workhorse ratio instance."""
    return euclidean_instance(8, 24, seed=7)


@pytest.fixture
def clustered_fl():
    return clustered_instance(10, 40, n_clusters=4, seed=21)


@pytest.fixture
def nongeometric_fl():
    return random_metric_instance(9, 27, seed=31)


@pytest.fixture
def star_fl():
    return star_instance(10, seed=41)


@pytest.fixture
def two_scale_fl():
    return two_scale_instance(4, 10, seed=51)


@pytest.fixture
def medium_fl():
    """15 × 60 — too big for brute force; LP-bounded in tests."""
    return euclidean_instance(15, 60, seed=61)


@pytest.fixture
def small_clustering():
    return euclidean_clustering(30, 3, seed=71)


@pytest.fixture
def blob_clustering():
    return clustered_clustering(40, 4, seed=81)


@pytest.fixture
def rng():
    return np.random.default_rng(987)
