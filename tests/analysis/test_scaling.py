"""Work-exponent fitting: exact recovery on synthetic power laws."""

import numpy as np
import pytest

from repro.analysis.scaling import fit_work_exponent, predicted_work
from repro.errors import InvalidParameterError


def synth(sizes, p, q, C=3.0):
    m = np.asarray(sizes, dtype=float)
    return C * m**p * np.log(m) ** q


SIZES = [100, 300, 1000, 3000, 10_000]


@pytest.mark.parametrize("p", [1.0, 1.5, 2.0])
def test_recovers_pure_polynomial(p):
    fit = fit_work_exponent(SIZES, synth(SIZES, p, 0))
    assert fit.exponent == pytest.approx(p, abs=1e-9)


@pytest.mark.parametrize("q", [1.0, 2.0])
def test_recovers_exponent_with_polylog_divided_out(q):
    fit = fit_work_exponent(SIZES, synth(SIZES, 1.0, q), log_power=q)
    assert fit.exponent == pytest.approx(1.0, abs=1e-9)


def test_undivided_polylog_inflates_exponent():
    fit = fit_work_exponent(SIZES, synth(SIZES, 1.0, 2))
    assert fit.exponent > 1.05  # the log factor shows up if not removed


def test_prediction_matches_model():
    works = synth(SIZES, 1.0, 1)
    fit = fit_work_exponent(SIZES, works, log_power=1.0)
    assert predicted_work(fit, 1000) == pytest.approx(synth([1000], 1.0, 1)[0], rel=1e-9)


def test_requires_three_points():
    with pytest.raises(InvalidParameterError):
        fit_work_exponent([10, 20], [1, 2])


def test_rejects_nonpositive_work():
    with pytest.raises(InvalidParameterError):
        fit_work_exponent([10, 20, 30], [1, 0, 2])


def test_residual_zero_for_exact_model():
    fit = fit_work_exponent(SIZES, synth(SIZES, 1.25, 0))
    assert fit.residual == pytest.approx(0.0, abs=1e-18)


def test_noisy_fit_close():
    rng = np.random.default_rng(0)
    works = synth(SIZES, 1.5, 0) * np.exp(rng.normal(0, 0.02, len(SIZES)))
    fit = fit_work_exponent(SIZES, works)
    assert fit.exponent == pytest.approx(1.5, abs=0.1)
