"""Eq. (2) bounds: correctness vs brute force and chain ordering."""

import numpy as np
import pytest

from repro.analysis.bounds import eq2_bounds, verify_eq2
from repro.baselines.brute_force import brute_force_facility_location
from repro.errors import InfeasibleSolutionError
from repro.metrics.instance import FacilityLocationInstance


def test_gamma_j_hand_example():
    D = np.array([[1.0, 2.0], [3.0, 0.5]])
    f = np.array([10.0, 1.0])
    b = eq2_bounds(FacilityLocationInstance(D, f))
    # γ_0 = min(11, 4) = 4; γ_1 = min(12, 1.5) = 1.5.
    assert b.gamma_j.tolist() == [4.0, 1.5]
    assert b.gamma == 4.0
    assert b.sum_gamma_j == 5.5
    assert b.gamma_times_nc == 8.0


@pytest.mark.parametrize("fixture", ["tiny_fl", "small_fl", "clustered_fl", "star_fl"])
def test_chain_holds_around_true_opt(fixture, request):
    inst = request.getfixturevalue(fixture)
    opt, _ = brute_force_facility_location(inst)
    verify_eq2(inst, opt)


def test_verify_rejects_fake_opt_below_gamma(small_fl):
    b = eq2_bounds(small_fl)
    with pytest.raises(InfeasibleSolutionError, match="lower bound"):
        verify_eq2(small_fl, b.gamma * 0.5)


def test_verify_rejects_fake_opt_above_sum(small_fl):
    b = eq2_bounds(small_fl)
    with pytest.raises(InfeasibleSolutionError, match="upper bound"):
        verify_eq2(small_fl, b.sum_gamma_j * 2)


def test_single_client_gamma_equals_opt():
    D = np.array([[2.0], [5.0]])
    f = np.array([1.0, 1.0])
    inst = FacilityLocationInstance(D, f)
    b = eq2_bounds(inst)
    opt, _ = brute_force_facility_location(inst)
    assert b.gamma == pytest.approx(opt) == pytest.approx(3.0)
