"""Ratio harness: trial plumbing, claim flags, formatting."""

import pytest

from repro.analysis.ratios import measure_ratio
from repro.errors import InvalidParameterError


def test_measures_constant_algorithm():
    rep = measure_ratio("const", lambda rng: 15.0, 10.0, claimed_factor=2.0, trials=3)
    assert rep.worst_ratio == pytest.approx(1.5)
    assert rep.mean_ratio == pytest.approx(1.5)
    assert rep.within_claim


def test_violation_flagged():
    rep = measure_ratio("bad", lambda rng: 30.0, 10.0, claimed_factor=2.0, trials=2)
    assert not rep.within_claim
    assert "VIOLATED" in rep.row()


def test_trials_see_distinct_rngs():
    seen = []
    def run(rng):
        seen.append(rng.random())
        return 10.0
    measure_ratio("x", run, 10.0, claimed_factor=1.0, trials=4)
    assert len(set(seen)) == 4


def test_deterministic_across_calls():
    run = lambda rng: 10.0 + rng.random()
    a = measure_ratio("x", run, 10.0, claimed_factor=2.0, trials=3, seed=5)
    b = measure_ratio("x", run, 10.0, claimed_factor=2.0, trials=3, seed=5)
    assert a.worst_ratio == b.worst_ratio


def test_worst_at_least_mean():
    run = lambda rng: 10.0 + 5 * rng.random()
    rep = measure_ratio("x", run, 10.0, claimed_factor=2.0, trials=5)
    assert rep.worst_ratio >= rep.mean_ratio


def test_reference_must_be_positive():
    with pytest.raises(InvalidParameterError):
        measure_ratio("x", lambda rng: 1.0, 0.0, claimed_factor=1.0)


def test_row_contains_key_fields():
    rep = measure_ratio("algo-name", lambda rng: 12.0, 10.0, claimed_factor=3.0, trials=2)
    row = rep.row()
    assert "algo-name" in row and "1.2" in row and "ok" in row
