"""Round envelopes: monotonicity and sanity of the named bounds."""

import pytest

from repro.analysis.rounds import round_envelopes


def test_contains_all_phases():
    env = round_envelopes(1000, 0.1)
    assert set(env) == {
        "greedy_outer",
        "greedy_subselect",
        "pd_iterations",
        "rounding",
        "luby",
    }


def test_smaller_epsilon_larger_envelopes():
    a = round_envelopes(1000, 0.05)
    b = round_envelopes(1000, 0.5)
    for key in ("greedy_outer", "pd_iterations", "rounding"):
        assert a[key] > b[key]


def test_larger_m_larger_envelopes():
    a = round_envelopes(100, 0.1)
    b = round_envelopes(100_000, 0.1)
    for key, val in a.items():
        assert b[key] > val


def test_luby_independent_of_epsilon():
    assert round_envelopes(512, 0.05)["luby"] == round_envelopes(512, 1.0)["luby"]


def test_pd_formula_value():
    import math
    env = round_envelopes(1000, 0.1)
    assert env["pd_iterations"] == pytest.approx(3 * math.log(1000) / math.log(1.1) + 8)


def test_tiny_m_clamped():
    env = round_envelopes(1, 0.1)
    assert all(v > 0 for v in env.values())
