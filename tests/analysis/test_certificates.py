"""Solution certificates: provable a-posteriori ratio bounds."""

import numpy as np
import pytest

from repro.analysis.certificates import Certificate, certify_facility_location
from repro.baselines.brute_force import brute_force_facility_location
from repro.core.greedy import parallel_greedy
from repro.core.primal_dual import parallel_primal_dual
from repro.errors import InvalidParameterError
from repro.lp.solve import lp_lower_bound
from repro.metrics.instance import FacilityLocationInstance


class TestSoundness:
    """A certificate must never overstate quality: the certified bound
    must hold against the true optimum."""

    @pytest.mark.parametrize("fixture", ["tiny_fl", "small_fl", "clustered_fl", "star_fl"])
    def test_bound_valid_vs_true_opt(self, fixture, request):
        inst = request.getfixturevalue(fixture)
        opt, _ = brute_force_facility_location(inst)
        sol = parallel_primal_dual(inst, epsilon=0.1, seed=0)
        cert = certify_facility_location(inst, sol.opened, alpha=sol.alpha)
        assert cert.lower_bound <= opt + 1e-7
        assert sol.cost / opt <= cert.ratio_bound * (1 + 1e-9)

    def test_greedy_alpha_shrunk_still_sound(self, small_fl):
        opt, _ = brute_force_facility_location(small_fl)
        sol = parallel_greedy(small_fl, epsilon=0.1, seed=0, preprocess=False)
        cert = certify_facility_location(small_fl, sol.opened, alpha=sol.alpha)
        assert cert.lower_bound <= opt + 1e-7
        assert cert.source in ("dual", "dual/shrunk", "lp", "eq2")


class TestSelection:
    def test_feasible_dual_beats_eq2(self, small_fl):
        sol = parallel_primal_dual(small_fl, epsilon=0.1, seed=0)
        cert = certify_facility_location(small_fl, sol.opened, alpha=sol.alpha)
        assert cert.source == "dual"

    def test_lp_beats_everything_when_supplied(self, small_fl):
        sol = parallel_primal_dual(small_fl, epsilon=0.1, seed=0)
        lp = lp_lower_bound(small_fl)
        cert = certify_facility_location(
            small_fl, sol.opened, alpha=sol.alpha, lp_value=lp
        )
        assert cert.source == "lp"
        assert cert.lower_bound == pytest.approx(lp)

    def test_eq2_fallback_without_dual(self, small_fl):
        sol = parallel_greedy(small_fl, epsilon=0.1, seed=0)
        cert = certify_facility_location(small_fl, sol.opened)
        assert cert.source == "eq2"
        assert cert.ratio_bound >= 1.0

    def test_primal_dual_certificate_usually_tight(self, small_fl):
        """Σα lands within a few percent of LP on this workload, so the
        certified ratio should be close to the true ratio."""
        opt, _ = brute_force_facility_location(small_fl)
        sol = parallel_primal_dual(small_fl, epsilon=0.1, seed=0)
        cert = certify_facility_location(small_fl, sol.opened, alpha=sol.alpha)
        true_ratio = sol.cost / opt
        assert cert.ratio_bound <= true_ratio * 1.15


class TestValidation:
    def test_rejects_impossible_lp_value(self, small_fl):
        sol = parallel_primal_dual(small_fl, epsilon=0.1, seed=0)
        with pytest.raises(InvalidParameterError, match="never"):
            certify_facility_location(
                small_fl, sol.opened, lp_value=sol.cost * 2
            )

    def test_zero_cost_degenerate_instance(self):
        D = np.array([[0.0, 0.0]])
        inst = FacilityLocationInstance(D, np.zeros(1))
        cert = certify_facility_location(inst, [0])
        assert cert.ratio_bound == 1.0

    def test_str_render(self, small_fl):
        sol = parallel_primal_dual(small_fl, epsilon=0.1, seed=0)
        cert = certify_facility_location(small_fl, sol.opened, alpha=sol.alpha)
        text = str(cert)
        assert "certified via dual" in text and "opt ≥" in text

    def test_is_frozen(self):
        cert = Certificate(cost=1.0, lower_bound=1.0, ratio_bound=1.0, source="lp")
        with pytest.raises(AttributeError):
            cert.cost = 2.0
