"""LP solvers: optimality structure, strong duality, determinism."""

import numpy as np
import pytest

from repro.baselines.brute_force import brute_force_facility_location, brute_force_kmedian
from repro.lp.duality import check_dual_feasible, check_primal_feasible
from repro.lp.solve import lp_lower_bound, solve_dual, solve_kmedian_lp, solve_primal
from repro.metrics.generators import euclidean_clustering
from repro.metrics.instance import FacilityLocationInstance


def test_primal_solution_feasible(small_fl):
    sol = solve_primal(small_fl)
    check_primal_feasible(small_fl, sol.x, sol.y)


def test_primal_shapes(small_fl):
    sol = solve_primal(small_fl)
    assert sol.x.shape == (8, 24) and sol.y.shape == (8,)


def test_dual_solution_feasible(small_fl):
    sol = solve_dual(small_fl)
    check_dual_feasible(small_fl, sol.alpha, sol.beta)


def test_strong_duality(small_fl):
    p, d = solve_primal(small_fl), solve_dual(small_fl)
    assert p.value == pytest.approx(d.value, rel=1e-7)


def test_lp_lower_bounds_integral_opt(tiny_fl):
    opt, _ = brute_force_facility_location(tiny_fl)
    assert lp_lower_bound(tiny_fl) <= opt + 1e-7


def test_lp_value_positive(small_fl):
    assert solve_primal(small_fl).value > 0


def test_lp_objective_consistent_with_variables(small_fl):
    sol = solve_primal(small_fl)
    recomputed = float((small_fl.D * sol.x).sum() + (small_fl.f * sol.y).sum())
    assert recomputed == pytest.approx(sol.value, rel=1e-7)


def test_single_facility_lp_exact():
    # One facility: LP = integral optimum = f + Σ d.
    D = np.array([[1.0, 2.0, 3.0]])
    f = np.array([4.0])
    inst = FacilityLocationInstance(D, f)
    assert lp_lower_bound(inst) == pytest.approx(10.0)


def test_zero_cost_facilities_lp():
    D = np.array([[0.0, 1.0], [1.0, 0.0]])
    f = np.zeros(2)
    inst = FacilityLocationInstance(D, f, )
    assert lp_lower_bound(inst) == pytest.approx(0.0)


def test_kmedian_lp_lower_bounds_opt():
    inst = euclidean_clustering(12, 3, seed=2)
    opt, _ = brute_force_kmedian(inst)
    lp = solve_kmedian_lp(inst)
    assert lp <= opt + 1e-7
    assert lp > 0


def test_kmedian_lp_k_equals_n_is_zero():
    inst = euclidean_clustering(5, 5, seed=3)
    assert solve_kmedian_lp(inst) == pytest.approx(0.0, abs=1e-9)


def test_solvers_deterministic(small_fl):
    assert solve_primal(small_fl).value == solve_primal(small_fl).value
