"""Feasibility checkers and the dual-fitting slack measure."""

import numpy as np
import pytest

from repro.errors import InfeasibleSolutionError
from repro.lp.duality import (
    beta_from_alpha,
    check_dual_feasible,
    check_primal_feasible,
    dual_fitting_slack,
    duality_gap,
)
from repro.lp.solve import solve_dual, solve_primal
from repro.metrics.instance import FacilityLocationInstance


@pytest.fixture
def tiny():
    return FacilityLocationInstance(
        np.array([[1.0, 2.0], [2.0, 1.0]]), np.array([3.0, 3.0])
    )


class TestPrimalChecker:
    def test_accepts_integral_solution(self, tiny):
        x = np.array([[1.0, 0.0], [0.0, 1.0]])
        y = np.array([1.0, 1.0])
        assert check_primal_feasible(tiny, x, y)

    def test_rejects_uncovered_client(self, tiny):
        x = np.array([[1.0, 0.0], [0.0, 0.0]])
        y = np.ones(2)
        with pytest.raises(InfeasibleSolutionError, match="under-covered"):
            check_primal_feasible(tiny, x, y)

    def test_rejects_x_above_y(self, tiny):
        x = np.array([[1.0, 1.0], [0.0, 0.0]])
        y = np.array([0.5, 0.0])
        with pytest.raises(InfeasibleSolutionError, match="x_ij > y_i"):
            check_primal_feasible(tiny, x, y)

    def test_rejects_negative(self, tiny):
        x = np.array([[1.0, 1.0], [0.0, -0.1]])
        with pytest.raises(InfeasibleSolutionError, match="negative"):
            check_primal_feasible(tiny, x, np.ones(2))

    def test_soft_mode_returns_bool(self, tiny):
        bad = np.zeros((2, 2))
        assert not check_primal_feasible(tiny, bad, np.ones(2), raise_on_fail=False)


class TestDualChecker:
    def test_accepts_zero(self, tiny):
        assert check_dual_feasible(tiny, np.zeros(2))

    def test_canonical_beta(self, tiny):
        alpha = np.array([1.5, 0.5])
        beta = beta_from_alpha(tiny, alpha)
        assert beta[0, 0] == pytest.approx(0.5)  # α_0 - d(0,0) = 1.5 - 1
        assert beta[1, 0] == pytest.approx(0.0)

    def test_rejects_budget_overflow(self, tiny):
        # α = 10 each: β_00 = 9, β_01 = 8 -> Σ = 17 > f_0 = 3.
        with pytest.raises(InfeasibleSolutionError, match="budget"):
            check_dual_feasible(tiny, np.array([10.0, 10.0]))

    def test_rejects_explicit_beta_slack_violation(self, tiny):
        alpha = np.array([2.0, 0.0])
        beta = np.zeros((2, 2))  # α_0 - β_00 = 2 > d = 1
        with pytest.raises(InfeasibleSolutionError, match="α_j"):
            check_dual_feasible(tiny, alpha, beta)

    def test_lp_optimal_dual_passes(self, small_fl):
        d = solve_dual(small_fl)
        assert check_dual_feasible(small_fl, d.alpha, d.beta)


class TestDualFittingSlack:
    def test_feasible_alpha_slack_one(self, tiny):
        assert dual_fitting_slack(tiny, np.array([0.5, 0.5])) == 1.0

    def test_scaling_recovers_feasibility(self, tiny):
        alpha = np.array([10.0, 10.0])
        g = dual_fitting_slack(tiny, alpha)
        assert g > 1.0
        assert check_dual_feasible(tiny, alpha / g, raise_on_fail=False)
        # Just below the slack it must still be infeasible.
        assert not check_dual_feasible(tiny, alpha / (g * 0.98), raise_on_fail=False)

    def test_lp_dual_at_slack_one(self, small_fl):
        d = solve_dual(small_fl)
        assert dual_fitting_slack(small_fl, d.alpha) == pytest.approx(1.0)


class TestDualityGap:
    def test_zero_at_equality(self):
        assert duality_gap(10.0, 10.0) == 0.0

    def test_relative(self):
        assert duality_gap(11.0, 10.0) == pytest.approx(1 / 11)

    def test_strong_duality_gap_tiny(self, small_fl):
        p, d = solve_primal(small_fl), solve_dual(small_fl)
        assert duality_gap(p.value, d.value) < 1e-7
