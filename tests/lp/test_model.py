"""LP constructions: dimensions, coefficients, and hand-checked rows."""

import numpy as np
import pytest

from repro.lp.model import build_dual, build_kmedian_lp, build_primal
from repro.metrics.generators import euclidean_clustering
from repro.metrics.instance import FacilityLocationInstance


@pytest.fixture
def tiny():
    D = np.array([[1.0, 2.0], [3.0, 4.0]])
    f = np.array([10.0, 20.0])
    return FacilityLocationInstance(D, f)


class TestPrimal:
    def test_dimensions(self, tiny):
        lp = build_primal(tiny)
        nx = 4  # 2 facilities × 2 clients
        assert lp.n_vars == nx + 2
        assert lp.A_ub.shape == (2 + nx, nx + 2)
        assert lp.c.shape == (nx + 2,)

    def test_objective_coefficients(self, tiny):
        lp = build_primal(tiny)
        assert np.array_equal(lp.c[:4], [1.0, 2.0, 3.0, 4.0])
        assert np.array_equal(lp.c[4:], [10.0, 20.0])

    def test_cover_rows(self, tiny):
        A = build_primal(tiny).A_ub.toarray()
        # Row for client 0: -x_00 - x_10 <= -1 (x_ij at i*nc+j).
        assert np.array_equal(A[0], [-1, 0, -1, 0, 0, 0])
        assert np.array_equal(A[1], [0, -1, 0, -1, 0, 0])

    def test_link_rows(self, tiny):
        lp = build_primal(tiny)
        A = lp.A_ub.toarray()
        # Pair (i=1, j=0) -> row 2 + 2: x_10 - y_1 <= 0.
        assert np.array_equal(A[2 + 2], [0, 0, 1, 0, 0, -1])
        assert np.all(lp.b_ub[2:] == 0)

    def test_sense_and_value(self, tiny):
        lp = build_primal(tiny)
        assert lp.sense == "min"
        v = np.array([1, 0, 0, 1, 1, 1], dtype=float)
        assert lp.objective_value(v) == pytest.approx(1 + 4 + 10 + 20)


class TestDual:
    def test_dimensions(self, tiny):
        lp = build_dual(tiny)
        assert lp.n_vars == 2 + 4
        assert lp.A_ub.shape == (2 + 4, 2 + 4)

    def test_objective_negated_for_max(self, tiny):
        lp = build_dual(tiny)
        assert lp.sense == "max"
        assert np.array_equal(lp.c[:2], [-1.0, -1.0])
        assert np.all(lp.c[2:] == 0)

    def test_budget_rows(self, tiny):
        A = build_dual(tiny).A_ub.toarray()
        # Facility 0: β_00 + β_01 <= f_0 (β at nc + i*nc + j).
        assert np.array_equal(A[0], [0, 0, 1, 1, 0, 0])
        assert build_dual(tiny).b_ub[0] == 10.0

    def test_slack_rows(self, tiny):
        lp = build_dual(tiny)
        A = lp.A_ub.toarray()
        # Pair (i=0, j=1) -> row 2 + 1: α_1 - β_01 <= d(1,0)=2.
        assert np.array_equal(A[2 + 1], [0, 1, 0, -1, 0, 0])
        assert lp.b_ub[2 + 1] == 2.0

    def test_objective_value_sign(self, tiny):
        lp = build_dual(tiny)
        v = np.array([3.0, 4.0, 0, 0, 0, 0])
        assert lp.objective_value(v) == pytest.approx(7.0)


class TestKMedianLP:
    def test_dimensions(self):
        inst = euclidean_clustering(6, 2, seed=0)
        lp = build_kmedian_lp(inst)
        assert lp.n_vars == 36 + 6
        assert lp.A_ub.shape == (6 + 36 + 1, 42)

    def test_budget_row(self):
        inst = euclidean_clustering(4, 2, seed=0)
        lp = build_kmedian_lp(inst)
        A = lp.A_ub.toarray()
        last = A[-1]
        assert np.all(last[16:] == 1) and np.all(last[:16] == 0)
        assert lp.b_ub[-1] == 2.0

    def test_no_facility_cost_in_objective(self):
        inst = euclidean_clustering(5, 2, seed=1)
        lp = build_kmedian_lp(inst)
        assert np.all(lp.c[25:] == 0)
