#!/usr/bin/env bash
# CI gate: lint (when ruff is available) + tier-1 tests + end-to-end smoke.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

# Backend matrix hook: REPRO_BACKEND=serial|thread|process makes every
# default-constructed PramMachine run on that backend (see
# repro.pram.backends.shared_backend). Unset means serial.
echo "== backend: ${REPRO_BACKEND:-serial} (workers=${REPRO_NUM_WORKERS:-auto}, grain=${REPRO_GRAIN:-default}) =="

if command -v ruff >/dev/null 2>&1; then
    echo "== ruff check =="
    ruff check src tests scripts
else
    echo "== ruff not installed; skipping lint =="
fi

echo "== tier-1 pytest =="
python -m pytest -x -q

echo "== smoke =="
python scripts/smoke.py
