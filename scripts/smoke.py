"""End-to-end smoke: every core algorithm on small instances, with
invariant checks against LP bounds and brute force. Not a test file —
a fast development harness (`python scripts/smoke.py`)."""

import numpy as np

from repro import (
    euclidean_instance,
    euclidean_clustering,
    parallel_greedy,
    parallel_primal_dual,
    parallel_kcenter,
    parallel_lp_rounding,
    parallel_kmedian,
    parallel_kmeans,
    lp_lower_bound,
)
from repro.baselines import (
    brute_force_facility_location,
    brute_force_kcenter,
    brute_force_kmedian,
    greedy_jms,
    jv_sequential,
    gonzalez_kcenter,
    hochbaum_shmoys_kcenter,
    wang_cheng_kcenter,
    local_search_kmedian_seq,
)
from repro.lp import check_dual_feasible, solve_primal


def main():
    inst = euclidean_instance(8, 24, seed=7)
    opt, _ = brute_force_facility_location(inst)
    lp = lp_lower_bound(inst)
    print(f"FL instance: opt={opt:.4f} lp={lp:.4f}")

    g = parallel_greedy(inst, epsilon=0.1, seed=1)
    print(f"greedy: cost={g.cost:.4f} ratio={g.cost/opt:.3f} rounds={g.rounds}")
    check_dual_feasible(inst, g.alpha / 3.0)

    pd = parallel_primal_dual(inst, epsilon=0.1, seed=1)
    print(f"primal-dual: cost={pd.cost:.4f} ratio={pd.cost/opt:.3f} rounds={pd.rounds.get('pd_iterations')}")
    check_dual_feasible(inst, pd.alpha)
    assert np.sum(pd.alpha) <= lp * (1 + 1e-7), (np.sum(pd.alpha), lp)

    pr = solve_primal(inst)
    lr = parallel_lp_rounding(inst, pr, epsilon=0.1, seed=1)
    print(f"lp-rounding: cost={lr.cost:.4f} ratio-vs-lp={lr.cost/lp:.3f} rounds={lr.rounds}")
    assert lr.cost <= 4 * (1 + 0.1) * lp * 1.01 + lp / inst.m, lr.cost / lp

    sg = greedy_jms(inst)
    sj = jv_sequential(inst)
    print(f"seq greedy: {sg.cost:.4f} ({sg.cost/opt:.3f})  seq JV: {sj.cost:.4f} ({sj.cost/opt:.3f})")
    check_dual_feasible(inst, sj.alpha)

    cl = euclidean_clustering(40, 4, seed=3)
    kc_opt, _ = brute_force_kcenter(cl, max_subsets=200000)
    kc = parallel_kcenter(cl, seed=2)
    gz = gonzalez_kcenter(cl)
    hs = hochbaum_shmoys_kcenter(cl)
    wc = wang_cheng_kcenter(cl)
    print(f"kcenter: opt={kc_opt:.4f} par={kc.cost:.4f} ({kc.cost/kc_opt:.3f}) "
          f"gonz={cl.kcenter_cost(gz):.4f} hs={hs.radius:.4f} wc={wc.radius:.4f}")
    assert kc.cost <= 2 * kc_opt * 1.0001

    km_opt, _ = brute_force_kmedian(cl, max_subsets=200000)
    km = parallel_kmedian(cl, epsilon=0.3, seed=4)
    kms = local_search_kmedian_seq(cl, epsilon=0.3)
    print(f"kmedian: opt={km_opt:.4f} par={km.cost:.4f} ({km.cost/km_opt:.3f}) seq={kms.cost:.4f}")
    assert km.cost <= 5.5 * km_opt

    kmn = parallel_kmeans(cl, epsilon=0.3, seed=4)
    print(f"kmeans: par={kmn.cost:.4f}")
    print("work/depth greedy:", g.model_costs.work, g.model_costs.depth)
    print("ALL SMOKE CHECKS PASSED")


if __name__ == "__main__":
    main()
