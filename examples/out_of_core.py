"""Out-of-core walkthrough — the same bits, wherever they live.

Four acts, one invariant each:

1. *The shard store*: partitioned blocks spilled to disk as raw
   ``.npy`` files and streamed back as memmaps produce byte-identical
   coresets, centers, and certificates to the resident run.
2. *Memory-mapped archives*: ``save_instance(..., compressed=False)``
   plus ``load_instance(..., mmap_mode="r")`` feed a solver straight
   off the file — seeded output identical to the eager load.
3. *Zero-copy process transport*: ``ProcessBackend.submit_batch``
   ships large arrays by shared-memory name instead of pickling them;
   results match the pickled transport exactly.
4. *Kernel providers*: the segmented primitives behind
   ``REPRO_KERNELS`` — every provider must match the numpy reference
   bit-for-bit, so swapping one moves wall-clock, never results.

Run:  python examples/out_of_core.py          (~30 seconds)
      python examples/out_of_core.py --big    (adds a 2M-point spill)
"""

import os
import sys
import tempfile
import time

import numpy as np

from repro import load_instance, parallel_kmedian, save_instance, shard_and_solve
from repro.metrics.generators import knn_clustering_instance
from repro.pram.backends import ProcessBackend
from repro.pram.kernels import available_kernel_providers, make_kernel_provider
from repro.pram.machine import PramMachine
from repro.shard import ShardStore


def _blobs(n, seed=0, clusters=32):
    rng = np.random.default_rng(seed)
    centers = rng.random((clusters, 2))
    return centers[rng.integers(0, clusters, n)] + rng.normal(
        scale=0.02, size=(n, 2)
    )


def act_1_shard_store(tmp):
    print("— act 1: the shard store is the resident pipeline, on disk —")
    points = _blobs(60_000, seed=0)
    kw = dict(shards=8, coreset_size=128, neighbors=32, solver="kmedian", seed=3)

    resident = shard_and_solve(points, 16, **kw)
    spilled = shard_and_solve(
        points, 16, spill_dir=os.path.join(tmp, "spill"), **kw
    )
    assert np.array_equal(resident.centers, spilled.centers)
    assert resident.true_cost == spilled.true_cost
    print(f"  spill_dir run: identical centers, true cost {spilled.true_cost:.2f}")

    store = ShardStore.open(os.path.join(tmp, "spill"))
    reopened = shard_and_solve(store, 16, **{k: v for k, v in kw.items() if k != "shards"})
    assert np.array_equal(resident.centers, reopened.centers)
    blocks = sum(
        os.path.getsize(os.path.join(store.directory, f))
        for f in os.listdir(store.directory)
    )
    print(
        f"  reopened store ({store.shards} shards, {blocks / 2**20:.1f} MiB of "
        "blocks): still byte-identical"
    )


def act_2_mmap_archives(tmp):
    print("\n— act 2: solvers fed straight off the file —")
    inst = knn_clustering_instance(2000, 25, neighbors=64, seed=1)
    path = os.path.join(tmp, "instance.npz")
    save_instance(path, inst, compressed=False)

    eager = parallel_kmedian(load_instance(path), seed=5)
    mapped_inst = load_instance(path, mmap_mode="r")
    mapped = parallel_kmedian(mapped_inst, seed=5)
    assert np.array_equal(eager.centers, mapped.centers)
    assert isinstance(mapped_inst.data.base, np.memmap)
    print(
        f"  mmap_mode='r': CSR arrays are file mappings, seeded solve "
        f"byte-identical (cost {mapped.cost:.2f})"
    )


def _block_cost(item):
    pts, centers = item
    d = np.linalg.norm(np.asarray(pts)[:, None] - centers[None], axis=2)
    return float(d.min(axis=1).sum())


def act_3_zero_copy():
    print("\n— act 3: zero-copy process batches —")
    rng = np.random.default_rng(2)
    blocks = [rng.normal(size=(50_000, 2)) for _ in range(6)]
    centers = rng.normal(size=(8, 2))
    items = [(b, centers) for b in blocks]

    results = {}
    for label, shm_items in (("pickled", False), ("zero-copy", True)):
        with ProcessBackend(2, grain=1, shm_items=shm_items) as backend:
            t0 = time.perf_counter()
            out = backend.submit_batch(_block_cost, items)
            results[label] = (out, time.perf_counter() - t0)
    assert results["pickled"][0] == results["zero-copy"][0]
    print(
        f"  6×50k-point blocks: pickled {results['pickled'][1]:.2f}s vs "
        f"zero-copy {results['zero-copy'][1]:.2f}s — identical floats out"
    )


def act_4_kernel_providers():
    print("\n— act 4: kernel providers move wall-clock, never results —")
    inst = knn_clustering_instance(1500, 20, neighbors=64, seed=4)
    baseline = None
    for spec in available_kernel_providers():
        machine = PramMachine(seed=0, kernels=make_kernel_provider(spec))
        sol = parallel_kmedian(inst, machine=machine)
        if baseline is None:
            baseline = sol
        assert np.array_equal(sol.centers, baseline.centers)
        assert sol.cost == baseline.cost
        print(f"  {spec:>6}: cost {sol.cost:.4f}, work {machine.ledger.work:.3g}")
    if "numba" not in available_kernel_providers():
        print("  (numba not installed here — set REPRO_KERNELS=numba where it is)")


def act_5_scale(tmp):
    print("\n— act 5 (--big): 2M points through the store —")
    points = _blobs(2_000_000, seed=9, clusters=64)
    t0 = time.perf_counter()
    sol = shard_and_solve(
        points, 32, shards=16, coreset_size=512, neighbors=64,
        solver="kmedian", seed=0, spill_dir=os.path.join(tmp, "big"),
    )
    print(
        f"  2M points -> {sol.centers.size} centers in "
        f"{time.perf_counter() - t0:.1f}s, true cost {sol.true_cost:.1f}; "
        f"blocks on disk, driver streamed one shard at a time"
    )


def main():
    with tempfile.TemporaryDirectory(prefix="repro-out-of-core-") as tmp:
        act_1_shard_store(tmp)
        act_2_mmap_archives(tmp)
        act_3_zero_copy()
        act_4_kernel_providers()
        if "--big" in sys.argv[1:]:
            act_5_scale(tmp)
    print("\nevery act: identical bits — the storage/transport/kernel layers are invisible to results")


if __name__ == "__main__":
    main()
