"""Fault-tolerant execution walkthrough — surviving crashes mid-solve.

Four acts:

1. *Supervision*: a transient fault injected into a supervised batch
   is retried with deterministic backoff and never reaches the caller.
2. *Byte-identical recovery*: a worker crash mid-coreset-build is
   attributed, the shard is retried on its original seed, and the
   recovered solution equals the never-failed one byte for byte.
3. *Certified degradation*: when a shard is unrecoverable,
   ``on_shard_failure="drop"`` proceeds on the survivors, reports the
   covered demand fraction, and widens the certificate by the dropped
   movement — with a verifiable triangle-inequality sandwich.
4. *The floor*: losing too much demand weight is refused loudly.

Run:  python examples/fault_tolerance.py          (~30 seconds)
"""

import numpy as np

from repro import (
    NO_RETRY,
    FaultPlan,
    RetryPolicy,
    ShardFailedError,
    Supervisor,
    shard_and_solve,
)
from repro.pram.backends import ProcessBackend
from repro.pram.machine import PramMachine

SEED = 7
K = 8
SHARDS = 8
rng = np.random.default_rng(SEED)
POINTS = rng.normal(size=(60_000, 2)) + rng.integers(0, K, size=(60_000, 1)) * 6.0

SOLVE_KW = dict(
    shards=SHARDS, coreset_size=128, neighbors=32, seed=SEED, solver="kmedian"
)


def _square(x):
    return x * x


def act_1_supervision(backend):
    print("— act 1: transient faults are retried, not raised —")
    plan = FaultPlan.single("raise", 3)  # task 3 fails on attempt 1 only
    policy = RetryPolicy(max_attempts=3, base_delay=0.01, jitter=0.5)
    results, failures = Supervisor(backend, policy, plan).submit_batch(
        _square, list(range(8))
    )
    assert results == [x * x for x in range(8)] and failures == []
    print("  8/8 tasks succeeded; the injected fault cost one retry, "
          "with seeded jitter (no wall-clock entropy)")


def _solve(backend, **kw):
    machine = PramMachine(backend=backend, seed=SEED)
    return shard_and_solve(POINTS, K, machine=machine, **SOLVE_KW, **kw)


def act_2_recovery(backend, base):
    print("\n— act 2: crash recovery is byte-identical —")
    recovered = _solve(
        backend,
        on_shard_failure="retry",
        fault_plan=FaultPlan.single("crash", SHARDS // 2),  # attempt 1 only
        retry_policy=RetryPolicy(base_delay=0.0, jitter=0.0),
    )
    assert np.array_equal(recovered.centers, base.centers)
    assert recovered.true_cost == base.true_cost
    assert not recovered.degraded
    print(f"  worker killed mid-build of shard {SHARDS // 2}; retried on its "
          "original seed — same centers, same cost, same certificate")


def act_3_degradation(backend, base):
    print("\n— act 3: an unrecoverable shard degrades with a certificate —")
    sol = _solve(
        backend,
        on_shard_failure="drop",
        fault_plan=FaultPlan.single("crash", SHARDS // 2, attempt=None),
        retry_policy=NO_RETRY,
    )
    assert sol.degraded and sol.failed_shards.tolist() == [SHARDS // 2]
    print(f"  dropped shards {sol.failed_shards.tolist()}: "
          f"{sol.covered_weight_fraction:.1%} of demand weight survives")
    print(f"  clean bound:    {base.bound.statement}")
    print(f"  degraded bound: {sol.bound.statement}")
    rhs = (
        sol.extra["merged_cost_exact"] + sol.movement
        + sol.extra["dropped_movement"] + sol.extra["dropped_rep_service"]
    )
    assert sol.true_cost <= rhs * (1.0 + 1e-9)
    print(f"  sandwich holds: true_cost {sol.true_cost:.1f} ≤ {rhs:.1f} "
          "(merged cost + movement + dropped charges)")


def act_4_floor(backend):
    print("\n— act 4: losing too much weight is refused —")
    plan = FaultPlan(specs=tuple(
        FaultPlan.single("raise", s, attempt=None).specs[0]
        for s in range(SHARDS - 1)
    ))
    try:
        _solve(backend, on_shard_failure="drop", fault_plan=plan,
               retry_policy=NO_RETRY, coverage_floor=0.5)
    except ShardFailedError as exc:
        print(f"  ShardFailedError: {exc}")
    else:
        raise AssertionError("expected the coverage floor to refuse")


def main():
    with ProcessBackend(4, grain=1) as backend:
        act_1_supervision(backend)
        base = _solve(backend)
        act_2_recovery(backend, base)
        act_3_degradation(backend, base)
        act_4_floor(backend)
    print("\nall acts passed")


if __name__ == "__main__":
    main()
