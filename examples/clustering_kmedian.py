"""Clustering with k-median / k-means — the paper's ML motivation.

Generates Gaussian blobs with known ground-truth structure, then runs
the §7 parallel local search (warm-started by the §6.1 parallel
k-center, exactly as the paper prescribes) for both objectives, and
reports recovered-vs-true cluster quality plus the LP lower bound.

Run:  python examples/clustering_kmedian.py
"""

import numpy as np

from repro import (
    clustered_clustering,
    parallel_kcenter,
    parallel_kmeans,
    parallel_kmedian,
    solve_kmedian_lp,
)


def main():
    k = 5
    inst = clustered_clustering(n=120, k=k, spread=0.04, seed=7)
    print(f"instance: {inst.n} points in {k} Gaussian blobs; budget k={k}\n")

    kc = parallel_kcenter(inst, seed=0)
    print(f"k-center warm start : radius {kc.cost:.4f}, k-median cost {inst.kmedian_cost(kc.centers):.4f}")

    km = parallel_kmedian(inst, epsilon=0.1, seed=0)
    lp = solve_kmedian_lp(inst)
    print(f"k-median local search: cost {km.cost:.4f} (LP lower bound {lp:.4f}, ratio {km.cost / lp:.3f})")
    print(f"  swaps applied: {len(km.extra['swaps'])}, "
          f"warm-start cost {km.extra['initial_cost']:.4f} → {km.cost:.4f}")

    kmn = parallel_kmeans(inst, epsilon=0.1, seed=0)
    print(f"k-means local search : cost {kmn.cost:.4f} (centers {sorted(kmn.centers.tolist())})")

    # Cluster-recovery readout: how many distinct blobs the chosen
    # centers land in (by nearest-blob assignment of each center).
    sizes = np.bincount(np.argmin(inst.D[:, km.centers], axis=1), minlength=km.centers.size)
    print(f"\ncluster sizes under k-median assignment: {sorted(sizes.tolist(), reverse=True)}")
    print(f"model work {km.model_costs.work:.0f}, depth {km.model_costs.depth:.0f} "
          f"→ parallelism {km.model_costs.work / km.model_costs.depth:.0f}×")


if __name__ == "__main__":
    main()
