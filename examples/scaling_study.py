"""Work/depth scaling study — the measurements behind the RNC claims.

Sweeps instance sizes, records the PRAM ledger for each algorithm,
fits the work exponent (with the claimed polylog factor divided out),
and prints Brent speedup projections T₁/T_p = W/(W/p + D).

Run:  python examples/scaling_study.py
"""

from repro import (
    PramMachine,
    euclidean_clustering,
    euclidean_instance,
    parallel_greedy,
    parallel_kcenter,
    parallel_primal_dual,
    speedup_curve,
)
from repro.analysis.scaling import fit_work_exponent


def sweep_fl(run, sizes):
    ms, works, depths = [], [], []
    for nf, nc in sizes:
        inst = euclidean_instance(nf, nc, seed=nf + nc)
        machine = PramMachine(seed=0)
        run(inst, machine)
        ms.append(inst.m)
        works.append(machine.ledger.work)
        depths.append(machine.ledger.depth)
    return ms, works, depths


def main():
    sizes = [(10, 40), (14, 80), (20, 160), (28, 320), (40, 640)]

    print("— facility location: work scaling (claim: m · polylog m) —")
    algos = {
        "greedy (§4)": (lambda i, m: parallel_greedy(i, epsilon=0.2, machine=m), 2.0),
        "primal–dual (§5)": (lambda i, m: parallel_primal_dual(i, epsilon=0.2, machine=m), 1.0),
    }
    for name, (run, logpow) in algos.items():
        ms, works, depths = sweep_fl(run, sizes)
        fit = fit_work_exponent(ms, works, log_power=logpow)
        print(f"\n{name}: fitted exponent {fit.exponent:.3f} (claim 1.0, log^{logpow:.0f} removed)")
        print(f"{'m':>8}{'work':>14}{'depth':>10}{'W/D':>10}")
        for m_, w, d in zip(ms, works, depths):
            print(f"{m_:>8}{w:>14.0f}{d:>10.0f}{w / d:>10.1f}")

    print("\n— k-center (§6.1): Brent speedup projection at m = n² = 8100 —")
    inst = euclidean_clustering(90, 5, seed=1)
    machine = PramMachine(seed=0)
    parallel_kcenter(inst, machine=machine)
    costs = machine.ledger.snapshot()
    print(f"work {costs.work:.0f}, depth {costs.depth:.0f}")
    print(f"{'p':>8}{'T_p':>14}{'speedup':>10}")
    for p, s in speedup_curve(costs, [1, 2, 4, 16, 64, 256, 1024, 1 << 16]):
        print(f"{p:>8}{costs.work / p + costs.depth:>14.0f}{s:>10.2f}")


if __name__ == "__main__":
    main()
