"""Sparse-instance walkthrough — from truncation safety to 100k clients.

Four acts:

1. *Parity*: a dense instance, its full-CSR twin, and byte-identical
   seeded solutions from the dense and sparse execution paths.
2. *Truncation*: how solution quality degrades (or doesn't) as k-NN
   truncation tightens, priced in the dense objective.
3. *Scale*: k-NN instances the dense path cannot hold, with ledger
   work confirming O(nnz)-per-round execution.
4. *Clustering*: the §6.1/§7 solvers on the same CSR subsystem —
   k-center + warm-started k-median at node counts where the dense
   n×n matrix is off the table.

Run:  python examples/sparse_scaling.py
"""

import time
import tracemalloc

import numpy as np

from repro import (
    PramMachine,
    SparseFacilityLocationInstance,
    euclidean_instance,
    knn_clustering_instance,
    knn_instance,
    knn_sparsify,
    parallel_greedy,
    parallel_kcenter,
    parallel_kmedian,
    parallel_primal_dual,
)


def act_1_parity():
    print("— act 1: dense-representable parity —")
    dense = euclidean_instance(20, 80, seed=0)
    full = SparseFacilityLocationInstance.from_instance(dense)
    a = parallel_greedy(dense, epsilon=0.1, machine=PramMachine(seed=7))
    b = parallel_greedy(full, epsilon=0.1, machine=PramMachine(seed=7))
    assert np.array_equal(a.opened, b.opened) and a.cost == b.cost
    assert np.array_equal(a.alpha, b.alpha)
    print(f"  greedy: dense and sparse paths byte-identical (cost {a.cost:.4f})")
    a = parallel_primal_dual(dense, epsilon=0.1, machine=PramMachine(seed=7))
    b = parallel_primal_dual(full, epsilon=0.1, machine=PramMachine(seed=7))
    assert np.array_equal(a.opened, b.opened) and a.cost == b.cost
    print(f"  primal–dual: byte-identical too (cost {a.cost:.4f})")


def act_2_truncation():
    print("\n— act 2: how tight can k-NN truncation go? —")
    dense = euclidean_instance(30, 300, seed=1)
    ref = parallel_greedy(dense, epsilon=0.1, machine=PramMachine(seed=3))
    print(f"  {'k':>4} {'nnz':>7} {'sparse cost':>12} {'densely priced':>15}")
    for k in (30, 12, 6, 3):
        trunc = knn_sparsify(dense, k)
        sol = parallel_greedy(trunc, epsilon=0.1, machine=PramMachine(seed=3))
        densely = dense.cost(sol.opened)
        print(
            f"  {k:>4} {trunc.nnz:>7} {sol.cost:>12.4f} {densely:>15.4f}"
            f"   (dense ref {ref.cost:.4f})"
        )
    print("  guidance: once k covers the dense optimum's assignments, the")
    print("  truncated run reproduces it; the fallback column keeps every")
    print("  objective finite before that point.")


def act_3_scale():
    print("\n— act 3: client counts the dense path cannot hold —")
    for n_c in (10_000, 100_000):
        n_f = n_c // 10
        inst = knn_instance(n_f, n_c, k=8, seed=0)
        dense_gib = n_f * n_c * 8 / 2**30
        tracemalloc.start()
        t0 = time.perf_counter()
        machine = PramMachine(seed=1)
        sol = parallel_greedy(inst, epsilon=0.2, machine=machine)
        wall = time.perf_counter() - t0
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        print(
            f"  {n_f}x{n_c} (nnz {inst.nnz}): greedy {wall:.2f}s, "
            f"peak {peak / 2**20:.0f} MiB, ledger work {machine.ledger.work:.3g} "
            f"— dense matrix would need {dense_gib:.2f} GiB"
        )
    print("  per-round work scales with the live edge frontier, not n_f·n_c.")


def act_4_clustering():
    print("\n— act 4: clustering at sparse scale —")
    n, k, neighbors = 20_000, 400, 64
    inst = knn_clustering_instance(n, k, neighbors=neighbors, seed=0)
    dense_gib = n * n * 8 / 2**30
    t0 = time.perf_counter()
    kc = parallel_kcenter(inst, machine=PramMachine(seed=1))
    t1 = time.perf_counter()
    km = parallel_kmedian(
        inst, epsilon=0.5, machine=PramMachine(seed=1), initial=kc.centers
    )
    t2 = time.perf_counter()
    print(
        f"  n={n}, k={k}, nnz={inst.nnz}: k-center {t1 - t0:.2f}s "
        f"({kc.centers.size} centers, radius {kc.cost:.4f}, "
        f"{kc.extra['probes']} probes)"
    )
    print(
        f"  warm-started k-median {t2 - t1:.2f}s "
        f"({km.rounds['local_search']} swap rounds, cost {km.cost:.1f}) "
        f"— dense matrix would need {dense_gib:.1f} GiB"
    )
    print("  every swap round is O(nnz) segmented scatter work, not O(k·n²).")


if __name__ == "__main__":
    act_1_parity()
    act_2_truncation()
    act_3_scale()
    act_4_clustering()
