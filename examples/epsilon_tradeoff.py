"""The (1+ε) slack knob — the paper's central design idea, measured.

Every parallel algorithm here buys parallelism by admitting all
near-minimal choices per round ("a small slack in what can be
selected"). This example sweeps ε for the §5 primal–dual algorithm and
prints the resulting quality/rounds frontier, plus the same sweep for
the §4 greedy.

Run:  python examples/epsilon_tradeoff.py
"""

from repro import (
    clustered_instance,
    lp_lower_bound,
    parallel_greedy,
    parallel_primal_dual,
)


def main():
    inst = clustered_instance(16, 100, n_clusters=5, seed=42)
    lp = lp_lower_bound(inst)
    print(f"instance m = {inst.m}, LP lower bound = {lp:.4f}\n")

    print(f"{'ε':>6} | {'PD cost/LP':>11}{'PD iters':>10} | {'greedy cost/LP':>15}{'rounds':>8}")
    print("-" * 60)
    for eps in (0.02, 0.05, 0.1, 0.2, 0.5, 1.0):
        pd = parallel_primal_dual(inst, epsilon=eps, seed=0)
        g = parallel_greedy(inst, epsilon=eps, seed=0)
        g_rounds = g.rounds["greedy_outer"] + g.rounds["greedy_subselect"]
        print(
            f"{eps:>6.2f} | {pd.cost / lp:>11.4f}{pd.rounds['pd_iterations']:>10} | "
            f"{g.cost / lp:>15.4f}{g_rounds:>8}"
        )

    print(
        "\nReading: smaller ε tracks the sequential algorithms more closely "
        "(ratio → sequential quality) at the price of more rounds — the "
        "depth/quality tradeoff Theorems 4.9 and 5.4 quantify."
    )


if __name__ == "__main__":
    main()
