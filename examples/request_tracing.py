"""Request tracing walkthrough — one HTTP request, one stitched tree.

Four acts against an embedded traced server:

1. *A traced request*: submit a solve with our own ``X-Repro-Trace-Id``
   (via ``ServeClient.solve(trace_id=...)``) against a process-backend
   server with an injected worker crash, and read the id back from the
   job payload.
2. *The stitched trace*: ``GET /trace/<job_id>`` reassembles that one
   request across the server edge, the job queue, the shard pipeline,
   and the forked worker processes — every span sharing the trace id.
3. *SLO-aware health*: the same server grades a sliding window of
   request terminals; ``/health`` carries the verdict.
4. *Prometheus exposition*: ``GET /metrics?format=prometheus`` renders
   the labeled counters and bucketed latency histograms for scraping.

Run:  python examples/request_tracing.py          (~10 seconds)
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.faults import FaultPlan
from repro.obs import SloTarget, parse_prometheus_text, trace_to
from repro.obs.report import render_request_trace
from repro.serve import ServeClient, ServerConfig, serve_in_thread

SEED = 11
rng = np.random.default_rng(SEED)
POINTS = rng.normal(size=(400, 2)) + rng.integers(0, 4, size=(400, 1)) * 5.0
PARAMS = dict(k=4, shards=4, coreset_size=96, seed=SEED)


def act_1_traced_request(client):
    print("— act 1: a solve with our own trace id, crash included —")
    job = client.solve_and_wait(points=POINTS, trace_id="checkout-7f3a", **PARAMS)
    assert job["trace_id"] == "checkout-7f3a"
    print(f"  job {job['job_id']} done under trace id {job['trace_id']!r} "
          f"(an injected worker crash was retried on the way)")
    return job


def act_2_stitched_trace(client, job):
    print("\n— act 2: the stitched request trace —")
    stitched = client.trace(job["job_id"])
    assert stitched["found"]
    assert stitched["worker_lanes"], "expected spans from forked workers"
    assert any(s.startswith("shard.") for s in stitched["stages"])
    print(f"  {stitched['events']} events across lanes "
          f"{', '.join(stitched['lanes'].values())}")
    print(f"  shard stages touched: {', '.join(stitched['stages'])}")
    text = render_request_trace(stitched)
    for line in text.splitlines()[:12]:
        print(f"  | {line}")
    print("  | ...")


def act_3_slo_health(client):
    print("\n— act 3: SLO-aware health —")
    health = client.health()
    slo = health["slo"]
    print(f"  /health: {health['status']} — slo {slo['status']} "
          f"(window n={slo['measured']['count']}, "
          f"p99 {slo['measured'].get('p99_latency_s', 0.0):.3f}s "
          f"vs target {slo['target']['p99_latency_s']}s)")


def act_4_prometheus(client):
    print("\n— act 4: prometheus exposition —")
    # ServeClient JSON-decodes; the exposition is plain text, so go raw
    import http.client

    conn = http.client.HTTPConnection(client.host, client.port, timeout=10)
    try:
        conn.request("GET", "/metrics?format=prometheus",
                     headers={"Connection": "close"})
        text = conn.getresponse().read().decode("utf-8")
    finally:
        conn.close()
    parsed = parse_prometheus_text(text)
    latency = [s for s in parsed["samples"] if "request_latency" in s]
    print(f"  {len(parsed['samples'])} samples, "
          f"{len(parsed['types'])} families; e.g. "
          f"serve_requests_total={parsed['samples']['serve_requests_total']:.0f}, "
          f"{len(latency)} latency series")


def main():
    trace_path = Path(tempfile.mkdtemp(prefix="request-tracing-")) / "serve.jsonl"
    config = ServerConfig(
        backend="process",
        backend_workers=2,
        workers=2,
        fault_plan=FaultPlan.single("crash", 1),
        slo=SloTarget(p99_latency_s=30.0, max_error_rate=0.5, min_samples=1),
    )
    with trace_to(trace_path):
        with serve_in_thread(config) as handle:
            client = ServeClient(handle.host, handle.port)
            job = act_1_traced_request(client)
            act_2_stitched_trace(client, job)
            act_3_slo_health(client)
            act_4_prometheus(client)
    print(f"\nall acts passed — raw trace at {trace_path}")


if __name__ == "__main__":
    main()
