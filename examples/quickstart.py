"""Quickstart: solve one facility-location instance four ways.

Builds a 25×100 Euclidean instance, runs the paper's two combinatorial
parallel algorithms (§4 greedy, §5 primal–dual) plus the §6.2 LP
rounding, compares everything against the LP lower bound, and shows
the work/depth ledger that the PRAM model records for each run.

Run:  python examples/quickstart.py
"""

from repro import (
    certify_facility_location,
    euclidean_instance,
    parallel_greedy,
    parallel_lp_rounding,
    parallel_primal_dual,
    parallelism,
    solve_primal,
)


def main():
    inst = euclidean_instance(n_f=25, n_c=100, seed=2024)
    print(f"instance: {inst.n_facilities} facilities × {inst.n_clients} clients (m={inst.m})")

    primal = solve_primal(inst)
    print(f"LP lower bound: {primal.value:.4f}\n")

    runs = {
        "greedy (§4, ≤3.722+ε)": parallel_greedy(inst, epsilon=0.1, seed=0),
        "primal–dual (§5, ≤3+ε)": parallel_primal_dual(inst, epsilon=0.1, seed=0),
        "LP rounding (§6.2, ≤4+ε)": parallel_lp_rounding(inst, primal, epsilon=0.1, seed=0),
    }

    header = f"{'algorithm':<28}{'cost':>10}{'vs LP':>8}{'open':>6}{'work':>12}{'depth':>8}{'W/D':>10}"
    print(header)
    print("-" * len(header))
    for name, sol in runs.items():
        c = sol.model_costs
        print(
            f"{name:<28}{sol.cost:>10.4f}{sol.cost / primal.value:>8.3f}"
            f"{sol.opened.size:>6}{c.work:>12.0f}{c.depth:>8.0f}{parallelism(c):>10.1f}"
        )

    pd = runs["primal–dual (§5, ≤3+ε)"]
    print(
        f"\nprimal–dual dual value Σα = {pd.alpha.sum():.4f} "
        f"(≤ LP = {primal.value:.4f} by weak duality — the proof of its own quality)"
    )
    print(f"primal–dual iterations: {pd.rounds['pd_iterations']} (bound: 3·log_1.1(m) ≈ {3 * 7.38 / 0.0953:.0f})")

    # The dual vector doubles as a machine-checkable certificate: a
    # provable per-solution ratio bound without knowing the optimum.
    cert = certify_facility_location(inst, pd.opened, alpha=pd.alpha)
    print(f"certificate: {cert}")


if __name__ == "__main__":
    main()
