"""Shard-and-conquer walkthrough — clustering past a single instance.

Four acts:

1. *Identity*: ``shards=1`` on an existing instance is the direct
   solver call, byte-identical seeded solutions included.
2. *Weights are multiplicities*: a weighted instance equals its
   physically duplicated expansion, objective for objective.
3. *The pipeline*: partition → per-shard Gonzalez coresets (built
   shard-parallel over the backend, ledger charges folded in under
   parallel composition) → merged weighted kNN instance → k-median →
   centers mapped back to original point ids, with the composed
   ``cost_true ≤ c·opt + (c+1)·R`` accounting.
4. *Scale*: a point count where the dense matrix and even the single
   full-point CSR structure are off the table — only the shard
   pipeline runs.

Run:  python examples/shard_scaling.py          (~1 minute)
      python examples/shard_scaling.py --big    (adds a 1M-point solve)
"""

import sys
import time

import numpy as np

from repro import (
    ClusteringInstance,
    MetricSpace,
    knn_clustering_instance,
    parallel_kmedian,
    shard_and_solve,
)


def act_1_identity():
    print("— act 1: shards=1 is the direct solve —")
    inst = knn_clustering_instance(2000, 25, neighbors=64, seed=0)
    direct = parallel_kmedian(inst, seed=7, epsilon=0.5)
    via = shard_and_solve(inst, 25, shards=1, solver="kmedian", seed=7, epsilon=0.5)
    assert np.array_equal(np.sort(direct.centers), via.centers)
    assert direct.cost == via.cost
    print(f"  identical centers and cost ({via.cost:.4f}) through the pipeline")


def act_2_weights():
    print("\n— act 2: weights are multiplicities —")
    rng = np.random.default_rng(1)
    pts = rng.random((40, 2))
    D = np.linalg.norm(pts[:, None] - pts[None, :], axis=2)
    w = np.ones(40)
    w[[4, 11, 30]] = 3.0
    weighted = ClusteringInstance(MetricSpace(D, validate=False), 4, weights=w)
    reps = np.repeat(np.arange(40), w.astype(int))
    expanded = ClusteringInstance(
        MetricSpace(D[np.ix_(reps, reps)], validate=False), 4
    )
    first = np.searchsorted(reps, np.arange(40))
    centers = np.array([2, 11, 25, 33])
    a = weighted.kmedian_cost(centers)
    b = expanded.kmedian_cost(first[centers])
    print(f"  weighted objective {a:.5f} == duplicated-expansion objective {b:.5f}")
    assert np.isclose(a, b)


def act_3_pipeline():
    print("\n— act 3: partition → coreset → merge → solve —")
    rng = np.random.default_rng(2)
    centers = rng.random((12, 2))
    pts = centers[rng.integers(0, 12, 60_000)] + rng.normal(scale=0.02, size=(60_000, 2))
    t0 = time.perf_counter()
    sol = shard_and_solve(
        pts, 12, shards=8, coreset_size=256, partition="locality",
        coreset="gonzalez", solver="kmedian", seed=3,
    )
    wall = time.perf_counter() - t0
    print(f"  60k points → {sol.shards} shards (sizes {sol.shard_sizes.tolist()})")
    print(f"  merged instance: {sol.extra['merged_n']} weighted nodes, "
          f"{sol.extra['merged_nnz']} candidate edges")
    print(f"  true k-median cost {sol.true_cost:.1f} "
          f"(merged {sol.cost:.1f}, coreset movement {sol.movement:.1f}) in {wall:.1f}s")
    print(f"  composed guarantee: {sol.bound.statement}")
    print(f"  centers are original point ids: {sol.centers[:6].tolist()} …")


def act_4_scale(big: bool):
    n = 1_000_000 if big else 250_000
    print(f"\n— act 4: {n:,} points (dense: {n * n * 8 / 2**40:.1f} TiB — off the table) —")
    rng = np.random.default_rng(4)
    centers = rng.random((64, 2))
    pts = centers[rng.integers(0, 64, n)] + rng.normal(scale=0.02, size=(n, 2))
    t0 = time.perf_counter()
    sol = shard_and_solve(
        pts, 32, shards=16, coreset_size=512, solver="kmedian", seed=5,
    )
    wall = time.perf_counter() - t0
    print(f"  solved in {wall:.1f}s: true cost {sol.true_cost:.0f}, "
          f"{sol.centers.size} centers, merged instance {sol.extra['merged_n']} nodes")
    print(f"  ledger work {sol.model_costs.work:.3g} "
          f"(≪ the n² = {float(n) * n:.1g} a dense pass would charge)")


if __name__ == "__main__":
    act_1_identity()
    act_2_weights()
    act_3_pipeline()
    act_4_scale("--big" in sys.argv[1:])
