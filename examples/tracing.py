"""Observability walkthrough — tracing a sharded solve end to end.

Four acts:

1. *Scoped tracing*: ``trace_to`` wraps a process-pool
   ``shard_and_solve`` and writes Chrome trace-event JSONL that
   Perfetto / ``chrome://tracing`` load directly.
2. *The report*: ``repro.obs.report`` turns the raw events into
   per-stage wall-clock shares, per-primitive latency stats,
   per-worker-lane utilization, and the supervisor event stream.
3. *Faults on the record*: a transient fault is injected and retried —
   the trace shows the retry, the result doesn't.
4. *The invariant*: the traced, fault-recovered solution is
   byte-identical to an untraced clean run.

Run:  python examples/tracing.py          (~20 seconds)
"""

import os
import tempfile

import numpy as np

from repro import FaultPlan, RetryPolicy, shard_and_solve, trace_to
from repro.faults.plan import FaultSpec
from repro.obs.report import load_trace, render_summary, summarize_trace
from repro.pram.backends import ProcessBackend
from repro.pram.machine import PramMachine

SEED = 7
K = 6
SHARDS = 8
rng = np.random.default_rng(SEED)
POINTS = rng.normal(size=(40_000, 2)) + rng.integers(0, K, size=(40_000, 1)) * 6.0
SOLVE_KW = dict(shards=SHARDS, coreset_size=128, neighbors=32, seed=SEED)


def solve(machine, **extra):
    return shard_and_solve(POINTS, K, machine=machine, **SOLVE_KW, **extra)


def act_1_trace(path):
    print("— act 1: trace a process-pool sharded solve —")
    with trace_to(path) as tracer:
        with ProcessBackend(2, grain=4096) as backend:
            sol = solve(PramMachine(backend=backend, seed=SEED))
        tracer.flush()
    events = load_trace(path)
    print(f"  {len(events)} events -> {path}")
    print("  open in https://ui.perfetto.dev to see worker lanes\n")
    return sol


def act_2_report(path):
    print("— act 2: summarize it —")
    summary = summarize_trace(load_trace(path))
    print("\n".join("  " + line for line in render_summary(summary).splitlines()))
    print()


def act_3_faults(path):
    print("— act 3: a retried fault shows up in the trace —")
    plan = FaultPlan([FaultSpec("raise", 2, attempt=1)])  # task 2, first try
    policy = RetryPolicy(max_attempts=3, base_delay=0.01, jitter=0.0)
    with trace_to(path) as tracer:
        with ProcessBackend(2, grain=4096) as backend:
            sol = solve(
                PramMachine(backend=backend, seed=SEED),
                fault_plan=plan, retry_policy=policy,
            )
        tracer.flush()
    summary = summarize_trace(load_trace(path))
    print(f"  supervisor events: {summary['faults']['counts']}")
    retried = summary["counters"].get("repro.counters", {})
    print(f"  counters: tasks_retried={retried.get('supervisor.tasks_retried')}, "
          f"attempts_total={retried.get('supervisor.attempts_total')}\n")
    return sol


def act_4_invariant(traced_sol, faulted_sol):
    print("— act 4: observability never perturbs results —")
    clean = solve(PramMachine(seed=SEED))  # untraced, serial, no faults
    for name, sol in (("traced", traced_sol), ("traced+fault+retry", faulted_sol)):
        same = (
            np.array_equal(clean.centers, sol.centers)
            and clean.cost == sol.cost
            and clean.true_cost == sol.true_cost
        )
        print(f"  {name}: byte-identical to clean run = {same}")
        assert same


def main():
    with tempfile.TemporaryDirectory() as td:
        trace_path = os.path.join(td, "run.jsonl")
        fault_path = os.path.join(td, "faulted.jsonl")
        traced_sol = act_1_trace(trace_path)
        act_2_report(trace_path)
        faulted_sol = act_3_faults(fault_path)
        act_4_invariant(traced_sol, faulted_sol)
    print("\n(set REPRO_TRACE=run.jsonl to trace any run with no code changes)")


if __name__ == "__main__":
    main()
