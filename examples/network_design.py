"""Server placement on a network — the paper's network-design motivation.

Builds a random geometric communication graph (networkx), derives the
shortest-path metric, and places servers (facilities) to minimize
opening cost plus client latency (Eq. 1), comparing the §4 greedy and
§5 primal–dual algorithms against the LP bound and the sequential
Jain–Vazirani baseline.

Run:  python examples/network_design.py
"""

import networkx as nx

from repro import graph_instance, parallel_greedy, parallel_primal_dual, solve_primal
from repro.baselines import jv_sequential


def build_network(n=150, radius=0.16, seed=5):
    """Connected random geometric graph with Euclidean edge latencies."""
    rng_seed = seed
    while True:
        G = nx.random_geometric_graph(n, radius, seed=rng_seed)
        if nx.is_connected(G):
            break
        rng_seed += 1
    pos = nx.get_node_attributes(G, "pos")
    for u, v in G.edges:
        G.edges[u, v]["weight"] = float(
            ((pos[u][0] - pos[v][0]) ** 2 + (pos[u][1] - pos[v][1]) ** 2) ** 0.5
        )
    return G


def main():
    G = build_network()
    print(f"network: {G.number_of_nodes()} routers, {G.number_of_edges()} links")

    inst = graph_instance(G, n_f=20, n_c=100, seed=3)
    print(f"candidate server sites: {inst.n_facilities}, clients: {inst.n_clients}\n")

    lp = solve_primal(inst).value
    g = parallel_greedy(inst, epsilon=0.1, seed=0)
    pd = parallel_primal_dual(inst, epsilon=0.1, seed=0)
    jv = jv_sequential(inst)

    print(f"{'method':<26}{'cost':>10}{'vs LP':>8}{'servers':>9}")
    print("-" * 53)
    for name, cost, n_open in (
        ("LP lower bound", lp, float("nan")),
        ("parallel greedy (§4)", g.cost, g.opened.size),
        ("parallel primal–dual (§5)", pd.cost, pd.opened.size),
        ("sequential Jain–Vazirani", jv.cost, jv.opened.size),
    ):
        servers = "-" if n_open != n_open else str(int(n_open))
        print(f"{name:<26}{cost:>10.4f}{cost / lp:>8.3f}{servers:>9}")

    worst = inst.connection_distances(pd.opened).max()
    mean = inst.connection_distances(pd.opened).mean()
    print(f"\nprimal–dual latencies: mean {mean:.4f}, worst {worst:.4f}")
    print(f"rounds: greedy outer={g.rounds['greedy_outer']}, "
          f"subselect={g.rounds['greedy_subselect']}, primal–dual={pd.rounds['pd_iterations']}")


if __name__ == "__main__":
    main()
