"""Serving walkthrough — the batch solver as an always-on service.

Five acts against an embedded server (``serve_in_thread``):

1. *Submit and solve*: upload points, solve by ``instance_id``, poll to
   the result. Instances are content-addressed — uploading the same
   payload twice yields the same id.
2. *The result cache*: an identical request is answered immediately
   (``cached: true``), without touching the queue.
3. *Coalescing*: concurrent identical requests share one solve — every
   client reads the same job.
4. *Byte-identical crash recovery over HTTP*: a server with an injected
   worker crash returns exactly the solution a clean server returns.
5. *Load*: the loadgen drives concurrent clients and reports
   throughput, failure rate, and p50/p99 latency.

Run:  python examples/serving.py          (~15 seconds)
"""

import json
import threading

import numpy as np

from repro.faults import FaultPlan
from repro.serve import ServeClient, ServerConfig, serve_in_thread
from repro.serve.loadgen import run_loadgen

SEED = 3
rng = np.random.default_rng(SEED)
POINTS = rng.normal(size=(400, 2)) + rng.integers(0, 4, size=(400, 1)) * 5.0
PARAMS = dict(k=4, shards=3, coreset_size=96, seed=SEED)


def act_1_submit_and_solve(client):
    print("— act 1: submit, solve, poll —")
    first = client.submit_points(POINTS)
    again = client.submit_points(POINTS.copy())
    assert first["instance_id"] == again["instance_id"] and again["cached"]
    print(f"  instance {first['instance_id']} ({first['n']} points); "
          "re-upload deduped by content hash")
    job = client.solve_and_wait(instance_id=first["instance_id"], **PARAMS)
    result = job["result"]
    print(f"  solved: {len(result['centers'])} centers, "
          f"true cost {result['true_cost']:.1f}, {result['solve_s'] * 1e3:.0f}ms")
    return first["instance_id"], result


def act_2_result_cache(client, instance_id, result):
    print("\n— act 2: an identical request is served from the cache —")
    job = client.solve(instance_id=instance_id, **PARAMS)
    assert job["status"] == "done" and job["cached"]
    assert job["result"] == result
    hits = client.metrics()["counters"]["serve.result_cache_hits"]
    print(f"  answered immediately (cached=true, {hits} cache hit(s)) — "
          "same bits, no queue")


def act_3_coalescing(client, handle, instance_id):
    print("\n— act 3: concurrent identical requests share one solve —")
    params = dict(PARAMS, seed=SEED + 1)  # a key the cache has not seen
    before = client.metrics()["counters"]
    results = []

    def one():
        c = ServeClient(handle.host, handle.port)
        results.append(
            c.solve_and_wait(instance_id=instance_id, **params)["result"]
        )

    threads = [threading.Thread(target=one) for _ in range(5)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert all(r == results[0] for r in results)
    counters = client.metrics()["counters"]
    shared = sum(
        counters.get(key, 0) - before.get(key, 0)
        for key in ("serve.coalesced", "serve.result_cache_hits")
    )
    print(f"  5 clients, identical request: every response equal; "
          f"{shared} request(s) rode an existing solve or the cache")


def _served_solution(config):
    with serve_in_thread(config) as handle:
        job = ServeClient(handle.host, handle.port).solve_and_wait(
            points=POINTS, **PARAMS
        )
    result = dict(job["result"])
    result.pop("solve_s")  # wall clock sits outside the identity claim
    return result


def act_4_crash_identity():
    print("\n— act 4: a crashed worker is invisible, byte for byte —")
    clean = _served_solution(ServerConfig(backend="process", workers=1))
    crashed = _served_solution(
        ServerConfig(
            backend="process",
            workers=1,
            fault_plan=FaultPlan.single("crash", 1),  # shard 1, attempt 1
        )
    )
    assert json.dumps(clean, sort_keys=True) == json.dumps(crashed, sort_keys=True)
    print("  injected crash mid-request; supervised retry replayed the shard "
          "seed — the HTTP response is bit-for-bit the clean one")


def act_5_load(handle):
    print("\n— act 5: the load generator —")
    report = run_loadgen(
        handle.host, handle.port, clients=4, requests=24, n=240, k=4, seed=50,
    )
    assert report["failed"] == 0
    lat = report["latency_s"]
    print(f"  {report['completed']}/{report['requests_sent']} solves over "
          f"{report['clients']} clients: {report['throughput_rps']:.0f} req/s, "
          f"p50 {lat['p50'] * 1e3:.0f}ms, p99 {lat['p99'] * 1e3:.0f}ms")


def main():
    config = ServerConfig(backend="process", backend_workers=2, workers=2)
    with serve_in_thread(config) as handle:
        client = ServeClient(handle.host, handle.port)
        instance_id, result = act_1_submit_and_solve(client)
        act_2_result_cache(client, instance_id, result)
        act_3_coalescing(client, handle, instance_id)
        act_5_handle = handle  # reuse the live server for the load act
        act_4_crash_identity()
        act_5_load(act_5_handle)
    print("\nall acts passed")


if __name__ == "__main__":
    main()
