"""Summarize a trace: ``python -m repro.obs.report trace.jsonl``.

Turns raw trace-event JSONL into the answers the bench questions ask:
where the wall time went per shard-pipeline stage, which PRAM
primitives dominate and with what latency distribution, how busy each
backend lane was and who straggled, and what the supervisor had to do
(retries, timeouts, crashes, respawns). The same summary dict is
attached to bench JSON by ``repro.bench.sparse_bench`` when a run was
traced.

The module reads only JSON + numpy — it deliberately imports nothing
from the solver stack, so a trace from any run (or machine) can be
inspected anywhere the package is installed.
"""

from __future__ import annotations

import argparse
import json

import numpy as np

#: Phases this toolchain emits; anything else fails validation.
_KNOWN_PHASES = {"X", "i", "C", "M"}


def load_trace(path) -> list:
    """Parse trace-event JSONL into a list of event dicts.

    Blank lines are skipped; a malformed line raises ``ValueError``
    naming the line number (truncated tails from a crashed run should
    be repaired explicitly, not silently dropped).
    """
    events = []
    with open(path) as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: invalid trace JSON: {exc}") from None
            if not isinstance(event, dict):
                raise ValueError(f"{path}:{lineno}: trace event is not an object")
            events.append(event)
    return events


def validate_events(events) -> list:
    """Check events against the trace-event schema; return error strings.

    An empty list means every event carries the required fields with
    the right types: ``name``/``ph`` strings, ``ph`` a known phase,
    integer ``pid``/``tid``, non-negative integer ``ts`` (and ``dur``
    for complete events; metadata events have no timestamp).
    """
    errors = []
    for i, event in enumerate(events):
        where = f"event {i}"
        if not isinstance(event.get("name"), str) or not event["name"]:
            errors.append(f"{where}: missing or empty 'name'")
            continue
        ph = event.get("ph")
        if ph not in _KNOWN_PHASES:
            errors.append(f"{where} ({event['name']}): unknown phase {ph!r}")
            continue
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                errors.append(f"{where} ({event['name']}): non-integer {key!r}")
        if ph == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, int) or ts < 0:
            errors.append(f"{where} ({event['name']}): bad 'ts' {ts!r}")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, int) or dur < 0:
                errors.append(f"{where} ({event['name']}): bad 'dur' {dur!r}")
        if ph == "C" and not isinstance(event.get("args"), dict):
            errors.append(f"{where} ({event['name']}): counter without args")
    return errors


def _percentile(durs: "np.ndarray", q: float) -> float:
    return float(np.percentile(durs, q)) if durs.size else 0.0


def summarize_trace(events) -> dict:
    """Aggregate a trace into per-stage / per-primitive / per-lane stats."""
    lanes = {}
    for event in events:
        if event.get("ph") == "M" and event.get("name") == "thread_name":
            lanes[event["tid"]] = event.get("args", {}).get("name", str(event["tid"]))

    timed = [e for e in events if e.get("ph") in ("X", "i")]
    if timed:
        t0 = min(e["ts"] for e in timed)
        t1 = max(e["ts"] + e.get("dur", 0) for e in timed)
        wall_s = (t1 - t0) / 1e6
    else:
        wall_s = 0.0

    # Shard-pipeline stages: one row per span, ordered by start time.
    stages = []
    for event in timed:
        if event.get("cat") == "shard" and event["ph"] == "X":
            stages.append(
                {
                    "stage": event["name"],
                    "wall_s": event["dur"] / 1e6,
                    "share": (event["dur"] / 1e6 / wall_s) if wall_s else 0.0,
                    "args": event.get("args", {}),
                    "ts": event["ts"],
                }
            )
    stages.sort(key=lambda s: s["ts"])
    for stage in stages:
        del stage["ts"]

    # PRAM primitives: latency histogram + ledger correlation per name.
    prim_durs: dict = {}
    prim_work: dict = {}
    for event in timed:
        if event.get("cat") == "pram" and event["ph"] == "X":
            prim_durs.setdefault(event["name"], []).append(event["dur"])
            work = event.get("args", {}).get("work", 0)
            prim_work[event["name"]] = prim_work.get(event["name"], 0.0) + work
    primitives = {}
    for name, durs in prim_durs.items():
        arr = np.asarray(durs, dtype=np.float64)
        primitives[name] = {
            "count": int(arr.size),
            "total_ms": float(arr.sum() / 1e3),
            "mean_us": float(arr.mean()),
            "p50_us": _percentile(arr, 50),
            "p95_us": _percentile(arr, 95),
            "max_us": float(arr.max()),
            "ledger_work": float(prim_work[name]),
        }

    # Backend lanes: busy time, queue wait, utilization, straggler.
    lane_busy: dict = {}
    lane_wait: dict = {}
    lane_tasks: dict = {}
    window_lo, window_hi = None, None
    straggler = None
    for event in timed:
        if event.get("cat") != "backend" or event["ph"] != "X":
            continue
        tid = event["tid"]
        if event["name"] == "exec":
            lane_busy[tid] = lane_busy.get(tid, 0) + event["dur"]
            lane_tasks[tid] = lane_tasks.get(tid, 0) + 1
            lo, hi = event["ts"], event["ts"] + event["dur"]
            window_lo = lo if window_lo is None else min(window_lo, lo)
            window_hi = hi if window_hi is None else max(window_hi, hi)
            if straggler is None or event["dur"] > straggler["dur_us"]:
                straggler = {
                    "lane": lanes.get(tid, str(tid)),
                    "dur_us": event["dur"],
                    "args": event.get("args", {}),
                }
        elif event["name"] == "queue_wait":
            lane_wait[tid] = lane_wait.get(tid, 0) + event["dur"]
    backend = {"lanes": {}, "straggler": straggler}
    window_us = (window_hi - window_lo) if window_lo is not None else 0
    for tid in sorted(lane_busy):
        backend["lanes"][lanes.get(tid, str(tid))] = {
            "tasks": lane_tasks[tid],
            "busy_s": lane_busy[tid] / 1e6,
            "queue_wait_s": lane_wait.get(tid, 0) / 1e6,
            "utilization": (lane_busy[tid] / window_us) if window_us else 0.0,
        }

    # Supervisor/fault stream: event counts + a row per occurrence.
    fault_counts: dict = {}
    fault_rows = []
    for event in timed:
        if event.get("cat") == "fault":
            fault_counts[event["name"]] = fault_counts.get(event["name"], 0) + 1
            fault_rows.append({"event": event["name"], **event.get("args", {})})

    counters = {}
    for event in events:
        if event.get("ph") == "C":
            counters.setdefault(event["name"], {}).update(event.get("args", {}))

    return {
        "wall_s": wall_s,
        "events": len(events),
        "lanes": {str(tid): name for tid, name in sorted(lanes.items())},
        "stages": stages,
        "primitives": primitives,
        "backend": backend,
        "faults": {"counts": fault_counts, "rows": fault_rows[:200]},
        "counters": counters,
    }


def stitch_request_trace(events, trace_id) -> dict:
    """Stitch one request's spans — across processes — into one tree.

    Selects every span/instant whose ``args.trace_id`` matches, then
    nests spans per lane by interval containment (a span is a child of
    the innermost same-lane span that encloses it). Spans timed inside
    forked worker processes share the machine-wide monotonic clock with
    driver spans (see :mod:`repro.obs.tracer`), so containment across
    the process boundary is plain interval arithmetic — the worker's
    ``exec`` span lands under nothing on its own lane but is still part
    of the request's tree via the shared trace id.

    Returns a dict with the request ``roots`` (one tree per outermost
    span, ordered by start time), the lanes touched (worker lanes keep
    their ``worker-<pid>`` labels so "which processes served this
    request" is readable), plus flat ``span_names`` / ``categories`` /
    ``stages`` indexes for assertions and quick scanning. ``found`` is
    False when the trace holds nothing for that id (e.g. a request
    served before tracing was enabled).
    """
    trace_id = str(trace_id)
    lanes = {}
    for event in events:
        if event.get("ph") == "M" and event.get("name") == "thread_name":
            lanes[event["tid"]] = event.get("args", {}).get("name", str(event["tid"]))

    def _matches(event):
        return event.get("args", {}).get("trace_id") == trace_id

    spans = [e for e in events if e.get("ph") == "X" and _matches(e)]
    instants = [e for e in events if e.get("ph") == "i" and _matches(e)]
    if not spans and not instants:
        return {
            "trace_id": trace_id,
            "found": False,
            "events": 0,
            "wall_s": 0.0,
            "roots": [],
            "lanes": {},
            "worker_lanes": [],
            "span_names": [],
            "categories": [],
            "stages": [],
            "instants": [],
        }

    t0 = min(e["ts"] for e in spans + instants)
    t1 = max(e["ts"] + e.get("dur", 0) for e in spans + instants)

    def _node(event):
        args = {k: v for k, v in event.get("args", {}).items() if k != "trace_id"}
        return {
            "name": event["name"],
            "cat": event.get("cat", ""),
            "lane": lanes.get(event["tid"], str(event["tid"])),
            "start_ms": (event["ts"] - t0) / 1e3,
            "dur_ms": event.get("dur", 0) / 1e3,
            "args": args,
            "children": [],
        }

    # Per-lane containment nesting: sort by (start, -dur) so an
    # enclosing span precedes its children, then keep a stack of open
    # ancestors. A 2µs slack absorbs integer-microsecond rounding at
    # span edges.
    slack = 2
    roots = []
    by_lane: dict = {}
    for event in spans:
        by_lane.setdefault(event["tid"], []).append(event)
    for tid in sorted(by_lane):
        stack: list = []  # (end_ts, node)
        for event in sorted(by_lane[tid], key=lambda e: (e["ts"], -e.get("dur", 0))):
            node = _node(event)
            end = event["ts"] + event.get("dur", 0)
            while stack and event["ts"] + slack >= stack[-1][0]:
                stack.pop()
            if stack:
                stack[-1][1]["children"].append(node)
            else:
                roots.append((event["ts"], node))
            stack.append((end + slack, node))
    roots.sort(key=lambda pair: pair[0])

    span_names = sorted({e["name"] for e in spans})
    categories = sorted({e.get("cat", "") for e in spans + instants} - {""})
    worker_lanes = sorted(
        {
            lanes.get(e["tid"], str(e["tid"]))
            for e in spans
            if str(lanes.get(e["tid"], "")).startswith("worker-")
        }
    )
    stages = [
        e["name"]
        for e in sorted(spans, key=lambda e: e["ts"])
        if e.get("cat") == "shard"
    ]
    return {
        "trace_id": trace_id,
        "found": True,
        "events": len(spans) + len(instants),
        "wall_s": (t1 - t0) / 1e6,
        "roots": [node for _, node in roots],
        "lanes": {
            str(tid): lanes.get(tid, str(tid))
            for tid in sorted({e["tid"] for e in spans + instants})
        },
        "worker_lanes": worker_lanes,
        "span_names": span_names,
        "categories": categories,
        "stages": stages,
        "instants": [
            {
                "name": e["name"],
                "cat": e.get("cat", ""),
                "lane": lanes.get(e["tid"], str(e["tid"])),
                "at_ms": (e["ts"] - t0) / 1e3,
                "args": {
                    k: v for k, v in e.get("args", {}).items() if k != "trace_id"
                },
            }
            for e in sorted(instants, key=lambda e: e["ts"])
        ],
    }


def render_request_trace(stitched: dict) -> str:
    """Text rendering of :func:`stitch_request_trace` output."""
    if not stitched["found"]:
        return f"trace {stitched['trace_id']}: no events found"
    lines = [
        f"request {stitched['trace_id']}: {stitched['events']} events, "
        f"wall {stitched['wall_s'] * 1e3:.1f}ms, "
        f"lanes {', '.join(stitched['lanes'].values())}"
    ]

    def _walk(node, depth):
        args = f"  {node['args']}" if node["args"] else ""
        lines.append(
            f"  {'  ' * depth}{node['name']} [{node['cat']}] "
            f"@{node['start_ms']:.2f}ms +{node['dur_ms']:.2f}ms "
            f"({node['lane']}){args}"
        )
        for child in node["children"]:
            _walk(child, depth + 1)

    for root in stitched["roots"]:
        _walk(root, 0)
    for mark in stitched["instants"]:
        lines.append(
            f"  * {mark['name']} [{mark['cat']}] @{mark['at_ms']:.2f}ms "
            f"({mark['lane']}) {mark['args']}"
        )
    return "\n".join(lines)


def render_summary(summary: dict) -> str:
    """Human-readable text rendering of :func:`summarize_trace` output."""
    lines = []
    lines.append(f"trace: {summary['events']} events, wall {summary['wall_s']:.3f}s, "
                 f"{len(summary['lanes'])} lanes")

    if summary["stages"]:
        lines.append("")
        lines.append("shard pipeline stages:")
        lines.append(f"  {'stage':<24}{'wall_s':>10}{'share':>8}")
        for stage in summary["stages"]:
            lines.append(
                f"  {stage['stage']:<24}{stage['wall_s']:>10.3f}{stage['share']:>7.1%}"
            )

    if summary["primitives"]:
        lines.append("")
        lines.append("pram primitives (by total time):")
        lines.append(
            f"  {'primitive':<20}{'count':>7}{'total_ms':>10}{'p50_us':>9}"
            f"{'p95_us':>9}{'max_us':>9}{'work':>12}"
        )
        ranked = sorted(
            summary["primitives"].items(), key=lambda kv: -kv[1]["total_ms"]
        )
        for name, st in ranked:
            lines.append(
                f"  {name:<20}{st['count']:>7}{st['total_ms']:>10.2f}"
                f"{st['p50_us']:>9.0f}{st['p95_us']:>9.0f}{st['max_us']:>9.0f}"
                f"{st['ledger_work']:>12.3g}"
            )

    if summary["backend"]["lanes"]:
        lines.append("")
        lines.append("backend lanes:")
        lines.append(f"  {'lane':<20}{'tasks':>7}{'busy_s':>9}{'wait_s':>9}{'util':>7}")
        for lane, st in summary["backend"]["lanes"].items():
            lines.append(
                f"  {lane:<20}{st['tasks']:>7}{st['busy_s']:>9.3f}"
                f"{st['queue_wait_s']:>9.3f}{st['utilization']:>6.1%}"
            )
        straggler = summary["backend"]["straggler"]
        if straggler:
            lines.append(
                f"  straggler: {straggler['lane']} "
                f"({straggler['dur_us'] / 1e3:.1f} ms, {straggler['args']})"
            )

    if summary["faults"]["counts"]:
        lines.append("")
        lines.append("supervisor events:")
        for name, count in sorted(summary["faults"]["counts"].items()):
            lines.append(f"  {name:<20}{count:>7}")

    if summary["counters"]:
        lines.append("")
        lines.append("counters:")
        for name, values in sorted(summary["counters"].items()):
            lines.append(f"  {name}: {json.dumps(values, sort_keys=True)}")

    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Summarize a repro trace-event JSONL file.",
    )
    parser.add_argument("trace", help="path to a trace .jsonl written under REPRO_TRACE")
    parser.add_argument(
        "--json", action="store_true", help="emit the summary as JSON instead of text"
    )
    parser.add_argument(
        "--validate",
        action="store_true",
        help="also check every event against the trace-event schema",
    )
    parser.add_argument(
        "--trace-id",
        default=None,
        help="stitch and print one request's cross-process trace tree "
        "instead of the whole-trace summary",
    )
    ns = parser.parse_args(argv)

    events = load_trace(ns.trace)
    if ns.validate:
        errors = validate_events(events)
        if errors:
            for err in errors[:50]:
                print(f"schema: {err}")
            return 1
    if ns.trace_id is not None:
        stitched = stitch_request_trace(events, ns.trace_id)
        if ns.json:
            print(json.dumps(stitched, indent=2, sort_keys=True, default=float))
        else:
            print(render_request_trace(stitched))
        return 0 if stitched["found"] else 1
    summary = summarize_trace(events)
    if ns.json:
        print(json.dumps(summary, indent=2, sort_keys=True, default=float))
    else:
        print(render_summary(summary))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
