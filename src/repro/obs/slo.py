"""SLO evaluation: sliding-window latency/error-rate targets.

A serving tier needs a yes/no answer to "are we meeting our targets
*right now*?" — not over the process lifetime (a morning incident would
poison the error rate all day) and not over the last N requests (a
quiet service would hold stale samples forever). So the evaluator keeps
request-terminal records ``(when, latency_s, error)`` in a sliding
**time** window and grades the window against a :class:`SloTarget`:

- ``p99_latency_s``: the windowed p99 latency must not exceed it;
- ``max_error_rate``: the windowed error fraction must not exceed it.

:meth:`SloEvaluator.evaluate` returns a :class:`SloStatus` whose
``status`` is ``"ok"``, ``"degraded"`` (with human-readable reasons),
or ``"insufficient_data"`` when fewer than ``min_samples`` requests
landed in the window — a cold service is not a degraded service. The
serving tier surfaces this in ``/health`` (degraded → HTTP 503) so load
balancers can drain a struggling instance, and the load generator
grades its own client-side report against the same targets.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field


@dataclass(frozen=True)
class SloTarget:
    """Service-level objective targets; ``None`` disables a check."""

    p99_latency_s: float | None = None
    max_error_rate: float | None = None
    window_s: float = 60.0
    min_samples: int = 20

    def __post_init__(self):
        if self.p99_latency_s is not None and self.p99_latency_s <= 0:
            raise ValueError("p99_latency_s must be positive")
        if self.max_error_rate is not None and not 0 <= self.max_error_rate <= 1:
            raise ValueError("max_error_rate must be in [0, 1]")
        if self.window_s <= 0:
            raise ValueError("window_s must be positive")
        if self.min_samples < 1:
            raise ValueError("min_samples must be >= 1")

    def to_json(self) -> dict:
        return {
            "p99_latency_s": self.p99_latency_s,
            "max_error_rate": self.max_error_rate,
            "window_s": self.window_s,
            "min_samples": self.min_samples,
        }


@dataclass
class SloStatus:
    """One evaluation verdict: status, reasons, and the measured window."""

    status: str  # "ok" | "degraded" | "insufficient_data"
    reasons: list = field(default_factory=list)
    measured: dict = field(default_factory=dict)
    target: dict = field(default_factory=dict)

    @property
    def degraded(self) -> bool:
        return self.status == "degraded"

    def to_json(self) -> dict:
        return {
            "status": self.status,
            "reasons": list(self.reasons),
            "measured": dict(self.measured),
            "target": dict(self.target),
        }


def _pct(sorted_values: list, q: float) -> float:
    """Nearest-rank percentile over a sorted list (same estimator as
    :meth:`repro.obs.metrics.Histogram.summary`)."""
    return sorted_values[min(int(q * len(sorted_values)), len(sorted_values) - 1)]


class SloEvaluator:
    """Thread-safe sliding-window recorder + grader for one target."""

    #: Hard cap on retained records — a window misconfigured to hours
    #: under heavy load must not grow without bound.
    MAX_RECORDS = 65536

    def __init__(self, target: SloTarget):
        self.target = target
        self._records: deque = deque()  # (monotonic_s, latency_s, error)
        self._lock = threading.Lock()

    def record(self, latency_s: float, *, error: bool = False, now=None) -> None:
        """Record one request-terminal observation."""
        now = time.monotonic() if now is None else float(now)
        with self._lock:
            self._records.append((now, float(latency_s), bool(error)))
            self._trim(now)

    def _trim(self, now: float) -> None:
        cutoff = now - self.target.window_s
        records = self._records
        while records and records[0][0] < cutoff:
            records.popleft()
        while len(records) > self.MAX_RECORDS:
            records.popleft()

    def window(self, now=None) -> dict:
        """Measured stats over the current window (count may be 0)."""
        now = time.monotonic() if now is None else float(now)
        with self._lock:
            self._trim(now)
            records = list(self._records)
        count = len(records)
        errors = sum(1 for r in records if r[2])
        out = {
            "count": count,
            "errors": errors,
            "error_rate": (errors / count) if count else 0.0,
            "window_s": self.target.window_s,
        }
        if count:
            latencies = sorted(r[1] for r in records)
            out["p50_latency_s"] = _pct(latencies, 0.50)
            out["p99_latency_s"] = _pct(latencies, 0.99)
        return out

    def evaluate(self, now=None) -> SloStatus:
        """Grade the current window against the target."""
        measured = self.window(now)
        target = self.target.to_json()
        if measured["count"] < self.target.min_samples:
            return SloStatus("insufficient_data", [], measured, target)
        reasons = []
        if (
            self.target.p99_latency_s is not None
            and measured["p99_latency_s"] > self.target.p99_latency_s
        ):
            reasons.append(
                f"p99 latency {measured['p99_latency_s']:.3f}s > target "
                f"{self.target.p99_latency_s:.3f}s over last "
                f"{self.target.window_s:.0f}s (n={measured['count']})"
            )
        if (
            self.target.max_error_rate is not None
            and measured["error_rate"] > self.target.max_error_rate
        ):
            reasons.append(
                f"error rate {measured['error_rate']:.3f} > target "
                f"{self.target.max_error_rate:.3f} over last "
                f"{self.target.window_s:.0f}s "
                f"({measured['errors']}/{measured['count']})"
            )
        return SloStatus("degraded" if reasons else "ok", reasons, measured, target)


def grade_report(report: dict, *, p99_latency_s=None, max_failure_rate=None) -> list:
    """Grade a loadgen report dict against client-side thresholds.

    Returns a list of breach reasons (empty == within targets). Used by
    ``python -m repro.serve.loadgen`` to exit non-zero in CI when the
    measured run violates its SLO.
    """
    reasons = []
    if p99_latency_s is not None:
        p99 = report.get("latency_s", {}).get("p99", 0.0)
        if p99 > p99_latency_s:
            reasons.append(
                f"client-side p99 latency {p99:.3f}s > target {p99_latency_s:.3f}s"
            )
    if max_failure_rate is not None:
        rate = report.get("failure_rate", 0.0)
        if rate > max_failure_rate:
            reasons.append(
                f"failure rate {rate:.4f} > target {max_failure_rate:.4f} "
                f"({report.get('failed', 0)}/{report.get('requests_sent', 0)})"
            )
    return reasons
