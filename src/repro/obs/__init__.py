"""`repro.obs`: tracing, metrics, and profiling for the solver stack.

Three pieces:

- :mod:`repro.obs.tracer` — span tracer emitting Chrome trace-event
  JSONL (Perfetto / ``chrome://tracing`` loadable), activated by
  ``REPRO_TRACE=<path>``, ``tracer=`` kwargs, or :func:`trace_to`;
  a shared no-op singleton when off.
- :mod:`repro.obs.metrics` — counters / gauges / histograms, one
  registry per tracer.
- :mod:`repro.obs.report` — ``python -m repro.obs.report trace.jsonl``
  turns a trace into per-stage, per-primitive, per-lane, and
  per-fault summaries; the bench harness attaches the same summary
  to bench JSON.

Plus :mod:`repro.obs.rss`, the peak-RSS sampler the bench tiers use.

The load-bearing invariant (tested): observability never perturbs
results. Seeded solver and shard outputs are byte-identical with
tracing on, off, and under fault injection — instrumentation observes
timing, never touches data or randomness.
"""

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.rss import rss_mib, run_with_peak_rss
from repro.obs.tracer import (
    NULL_TRACER,
    TRACE_ENV,
    NullTracer,
    Tracer,
    current_tracer,
    set_tracer,
    trace_to,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "TRACE_ENV",
    "Tracer",
    "current_tracer",
    "rss_mib",
    "run_with_peak_rss",
    "set_tracer",
    "trace_to",
]
