"""`repro.obs`: tracing, metrics, logs, and SLOs for the solver stack.

Five pieces:

- :mod:`repro.obs.tracer` — span tracer emitting Chrome trace-event
  JSONL (Perfetto / ``chrome://tracing`` loadable), activated by
  ``REPRO_TRACE=<path>``, ``tracer=`` kwargs, or :func:`trace_to`;
  a shared no-op singleton when off. Request-scoped trace ids ride a
  contextvar (:func:`trace_context`) and are stamped into every span,
  so one served request is traceable across the HTTP edge, the job
  queue, shard stages, and forked backend workers.
- :mod:`repro.obs.metrics` — counters / gauges / histograms (labels
  and fixed buckets optional), one registry per tracer, renderable in
  the Prometheus text exposition format.
- :mod:`repro.obs.log` — structured JSONL event log with trace-id
  correlation, activated by ``REPRO_LOG=<path>`` / :func:`log_to`.
- :mod:`repro.obs.slo` — sliding-window p99-latency / error-rate
  targets; the serving tier's ``/health`` turns degraded verdicts into
  HTTP 503.
- :mod:`repro.obs.report` — ``python -m repro.obs.report trace.jsonl``
  turns a trace into per-stage, per-primitive, per-lane, and
  per-fault summaries (``--trace-id`` stitches one request's
  cross-process tree); the bench harness attaches the same summary
  to bench JSON.

Plus :mod:`repro.obs.rss`, the peak-RSS sampler the bench tiers use.

The load-bearing invariant (tested): observability never perturbs
results. Seeded solver and shard outputs are byte-identical with
tracing on, off, and under fault injection — instrumentation observes
timing, never touches data or randomness.
"""

from repro.obs.log import (
    LOG_ENV,
    NULL_LOG,
    EventLog,
    NullLog,
    current_log,
    log_to,
    read_log,
    set_log,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_prometheus_text,
    render_prometheus,
)
from repro.obs.rss import rss_mib, run_with_peak_rss
from repro.obs.slo import SloEvaluator, SloStatus, SloTarget, grade_report
from repro.obs.tracer import (
    NULL_TRACER,
    TRACE_ENV,
    NullTracer,
    Tracer,
    current_trace_id,
    current_tracer,
    new_trace_id,
    set_trace_id,
    set_tracer,
    trace_context,
    trace_to,
)

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS_S",
    "EventLog",
    "Gauge",
    "Histogram",
    "LOG_ENV",
    "MetricsRegistry",
    "NULL_LOG",
    "NULL_TRACER",
    "NullLog",
    "NullTracer",
    "SloEvaluator",
    "SloStatus",
    "SloTarget",
    "TRACE_ENV",
    "Tracer",
    "current_log",
    "current_trace_id",
    "current_tracer",
    "grade_report",
    "log_to",
    "new_trace_id",
    "parse_prometheus_text",
    "read_log",
    "render_prometheus",
    "rss_mib",
    "run_with_peak_rss",
    "set_log",
    "set_trace_id",
    "set_tracer",
    "trace_context",
    "trace_to",
]
