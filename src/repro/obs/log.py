"""Structured event log: JSONL records with trace-id correlation.

Where the tracer answers *when inside the request* and the registry
answers *how many*, the event log answers *what happened*: jobs
submitted, retries fired, pools respawned, requests rejected — one JSON
object per line, each stamped with the wall-clock time, the pid, and
(when a request :func:`~repro.obs.tracer.trace_context` is active) the
request's ``trace_id``, so ``grep trace_id log.jsonl`` reconstructs one
request's story across server, job queue, and supervisor.

Activation mirrors the tracer, cheapest-first:

- off (default): every call site sees :data:`NULL_LOG` whose
  ``enabled`` is ``False`` — the disabled path is a guard on that flag,
  not a formatting call.
- ``REPRO_LOG=/path/to/log.jsonl``: a process-wide log, closed at
  interpreter exit.
- explicit: :func:`set_log` / the :func:`log_to` context manager;
  explicit wins over the environment.

The file opens in append mode (logs from successive runs accumulate,
unlike traces which are one-run artifacts) and the same pid guard as
the tracer applies: forked workers inherit the object but never write.
"""

from __future__ import annotations

import atexit
import json
import os
import threading
import time
from contextlib import contextmanager

from repro.obs.tracer import current_trace_id

#: Environment variable holding the structured-log output path.
LOG_ENV = "REPRO_LOG"


class NullLog:
    """Disabled log: ``event`` is a no-op, ``enabled`` is False."""

    enabled = False
    path = None

    def event(self, event: str, **fields) -> None:
        pass

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


#: Shared disabled log, returned by :func:`current_log` when nothing is
#: configured.
NULL_LOG = NullLog()


class EventLog:
    """Enabled structured log writing JSONL records to ``path``.

    ``path=None`` is an enabled drop sink (records are built then
    discarded) — used by tests to exercise the enabled path without
    touching disk. Thread-safe; lazily opens the file on first event.
    """

    enabled = True

    def __init__(self, path=None, *, stream=None):
        self.path = os.fspath(path) if path is not None else None
        self._stream = stream
        self._pid = os.getpid()
        self._lock = threading.Lock()
        self._fh = None

    def event(self, event: str, **fields) -> None:
        """Record one event; keyword fields become JSON keys.

        ``ts`` (epoch seconds), ``pid``, and the ambient ``trace_id``
        (if any) are stamped automatically; an explicit non-``None``
        ``trace_id`` keyword wins over the ambient one. ``None``-valued
        fields are omitted (absence, not ``null``, encodes "no value").
        """
        if os.getpid() != self._pid:
            return
        record = {"ts": round(time.time(), 6), "event": str(event),
                  "pid": self._pid}
        trace_id = current_trace_id()
        if trace_id is not None:
            record["trace_id"] = trace_id
        record.update({k: v for k, v in fields.items() if v is not None})
        line = json.dumps(record, separators=(",", ":"), default=str)
        with self._lock:
            if self._stream is not None:
                self._stream.write(line + "\n")
                return
            if self.path is None:
                return
            if self._fh is None:
                self._fh = open(self.path, "a")
            self._fh.write(line + "\n")

    def flush(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.flush()

    def close(self) -> None:
        if os.getpid() != self._pid:
            return
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None


def read_log(path) -> list:
    """Load a JSONL event log into a list of dicts (blank lines skipped)."""
    records = []
    with open(path) as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: bad JSON: {exc}") from exc
            if not isinstance(record, dict):
                raise ValueError(f"{path}:{lineno}: record is not an object")
            records.append(record)
    return records


# -- process-wide log selection ------------------------------------------

_explicit: "EventLog | NullLog | None" = None
_env_log: "EventLog | None" = None
_env_path: "str | None" = None
_env_lock = threading.Lock()


def set_log(log) -> "EventLog | NullLog | None":
    """Install ``log`` process-wide; returns the previous. ``None``
    falls back to ``REPRO_LOG`` / disabled. Caller keeps ownership."""
    global _explicit
    previous = _explicit
    _explicit = log
    return previous


def current_log():
    """The active event log: explicit > ``REPRO_LOG`` env > disabled."""
    if _explicit is not None:
        return _explicit
    path = os.environ.get(LOG_ENV, "").strip()
    if not path:
        return NULL_LOG
    global _env_log, _env_path
    with _env_lock:
        if _env_log is None or _env_path != path:
            _env_log = EventLog(path)
            _env_path = path
        return _env_log


@contextmanager
def log_to(path):
    """Scoped logging: install an :class:`EventLog` for the block."""
    log = EventLog(path)
    previous = set_log(log)
    try:
        yield log
    finally:
        set_log(previous)
        log.close()


@atexit.register
def _close_env_log() -> None:
    with _env_lock:
        if _env_log is not None:
            _env_log.close()
