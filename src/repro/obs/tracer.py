"""Span-based tracer emitting Chrome trace-event JSONL.

One line per event, in the trace-event format that Perfetto and
``chrome://tracing`` load directly (the JSON-array wrapper is optional
in both viewers, so JSONL — append-only, crash-tolerant — is the file
format). Four event phases are used:

- ``"X"`` complete events: spans with ``ts``/``dur`` in microseconds
  (PRAM primitives, backend task exec, shard-pipeline stages);
- ``"i"`` instant events: point-in-time marks (supervisor retries,
  crashes, round boundaries);
- ``"C"`` counter events: numeric series (shm bytes shipped, metrics
  snapshots at flush);
- ``"M"`` metadata: lane names, so worker processes render as labelled
  rows.

Timestamps come from ``time.perf_counter_ns()``, which on Linux is
``CLOCK_MONOTONIC`` — shared by every process on the machine, so spans
timed *inside* pool workers land on the same axis as driver spans and
queue-wait is a plain subtraction across the process boundary.

Activation, cheapest-first:

- off (the default): every instrumented call site sees
  :data:`NULL_TRACER`, whose ``enabled`` is ``False``. Call sites guard
  on that flag and skip instrumentation entirely — the disabled path
  is the uninstrumented code, not a stack of no-op calls.
- ``REPRO_TRACE=/path/to/trace.jsonl``: a process-wide tracer writing
  to that path, closed at interpreter exit.
- explicit: ``set_tracer(Tracer(path))`` or the :func:`trace_to`
  context manager; explicit wins over the environment.

Safety property: a :class:`Tracer` records the pid that created it and
refuses to write from any other process. Forked pool workers inherit
the parent's tracer object but must never interleave writes into the
parent's file — worker-side timing instead rides back to the driver
inside task results (see ``repro.pram.backends``) and is emitted from
the driver on per-worker lanes.
"""

from __future__ import annotations

import atexit
import contextvars
import json
import os
import threading
import time
from contextlib import contextmanager

from repro.obs.metrics import MetricsRegistry

#: Environment variable holding the trace output path.
TRACE_ENV = "REPRO_TRACE"


def _now_us() -> int:
    """Microseconds on the machine-wide monotonic clock."""
    return time.perf_counter_ns() // 1000


# -- request trace context ----------------------------------------------
#
# A request-scoped trace id rides a ContextVar: the serving tier sets it
# around each request (HTTP edge, async worker task, executor thread)
# and every span/instant the tracer emits while it is set gets a
# ``trace_id`` arg stamped in. Because all driver-side emission for a
# solve (pram primitives, backend unwrap, shard stages, fault marks)
# happens in the thread running that solve, one ``trace_context`` around
# the solve correlates the whole pipeline. Worker-process envelopes
# additionally carry the id explicitly (see ``_TracedTask``) so spans
# timed inside forked workers ride back already attributed.

_TRACE_ID: contextvars.ContextVar = contextvars.ContextVar(
    "repro_trace_id", default=None
)


def new_trace_id() -> str:
    """Mint a 16-hex-char trace id.

    Uses :func:`os.urandom`, not numpy/random — minting ids must never
    perturb the RNG streams the solvers' byte-identity rests on.
    """
    return os.urandom(8).hex()


def current_trace_id() -> "str | None":
    """The ambient request trace id, or ``None`` outside any request."""
    return _TRACE_ID.get()


def set_trace_id(trace_id):
    """Set the ambient trace id; returns the previous value.

    Prefer :func:`trace_context` — this exists for call sites that
    cannot use a ``with`` block (e.g. long-lived worker loops).
    """
    previous = _TRACE_ID.get()
    _TRACE_ID.set(str(trace_id) if trace_id is not None else None)
    return previous


@contextmanager
def trace_context(trace_id):
    """Scope the ambient trace id to a block (``None`` clears it)."""
    token = _TRACE_ID.set(str(trace_id) if trace_id is not None else None)
    try:
        yield trace_id
    finally:
        _TRACE_ID.reset(token)


def _stamp_trace(args):
    """Return ``args`` with the ambient trace id added (copy, not mutate).

    An explicit ``trace_id`` already in ``args`` wins — envelopes from
    worker processes carry the id they were dispatched under, which is
    authoritative even if the unwrapping thread's context moved on.
    """
    trace_id = _TRACE_ID.get()
    if trace_id is None:
        return args
    if args is None:
        return {"trace_id": trace_id}
    if "trace_id" in args:
        return args
    out = dict(args)
    out["trace_id"] = trace_id
    return out


class _NullSpan:
    """Reusable no-op context manager for :class:`NullTracer` spans."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracer: every method is a no-op, ``enabled`` is False.

    A single shared instance (:data:`NULL_TRACER`) is handed to every
    call site when tracing is off, so the off path allocates nothing.
    The registry exists (API compatibility) but is never populated —
    instrumented code guards recording on ``enabled``.
    """

    enabled = False
    path = None

    def __init__(self):
        self.metrics = MetricsRegistry()

    def now(self) -> int:
        return _now_us()

    def emit(self, event) -> None:
        pass

    def complete(self, name, cat, ts, dur, *, tid=None, args=None) -> None:
        pass

    def instant(self, name, cat, *, ts=None, tid=None, args=None) -> None:
        pass

    def counter_event(self, name, values, *, ts=None) -> None:
        pass

    def worker_lane(self, pid, tid) -> int:
        return int(tid)

    def bump_lane_epoch(self) -> None:
        pass

    def span(self, name, cat="app", args=None):
        return _NULL_SPAN

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


#: The shared disabled tracer. ``current_tracer()`` returns this when no
#: tracer is configured; identity checks against it are allowed.
NULL_TRACER = NullTracer()


class Tracer:
    """Enabled tracer writing trace-event JSONL to ``path``.

    ``path=None`` is an enabled *drop sink*: instrumentation runs and
    metrics accumulate, but events are discarded instead of written.
    The bench harness uses it to measure the wrapper overhead ceiling
    without I/O in the loop.

    Thread-safe (one lock around the line write); the file opens
    lazily on first emit so constructing a tracer never touches disk.
    """

    enabled = True

    def __init__(self, path=None):
        self.path = os.fspath(path) if path is not None else None
        self.metrics = MetricsRegistry()
        self._pid = os.getpid()
        self._lock = threading.Lock()
        self._fh = None
        # Lane bookkeeping has its own lock: ``worker_lane`` must not
        # hold the emit lock (not reentrant) while writing metadata.
        self._lane_lock = threading.Lock()
        self._lanes: dict = {}  # lane key -> lane int
        self._lane_taken: set = set()  # lane ints already assigned
        self._lane_epoch = 0

    def now(self) -> int:
        return _now_us()

    # -- event emission -------------------------------------------------

    def emit(self, event: dict) -> None:
        """Write one raw trace event (a dict) as a JSONL line.

        Silently drops events from processes other than the creator —
        forked workers share this object but must not interleave writes
        into the driver's file.
        """
        if self.path is None or os.getpid() != self._pid:
            return
        line = json.dumps(event, separators=(",", ":"), default=str)
        with self._lock:
            if self._fh is None:
                self._fh = open(self.path, "w")
                self._fh.write(
                    json.dumps(
                        {
                            "name": "process_name",
                            "ph": "M",
                            "pid": self._pid,
                            "tid": 0,
                            "args": {"name": "repro-driver"},
                        },
                        separators=(",", ":"),
                    )
                    + "\n"
                )
            self._fh.write(line + "\n")

    def complete(self, name, cat, ts, dur, *, tid=None, args=None) -> None:
        """Span: ``ts``/``dur`` in microseconds on the monotonic clock.

        When a request :func:`trace_context` is active its trace id is
        stamped into ``args`` (into a copy — the caller's dict is never
        mutated); an explicit ``trace_id`` key in ``args`` wins.
        """
        event = {
            "name": str(name),
            "cat": str(cat),
            "ph": "X",
            "ts": int(ts),
            "dur": max(int(dur), 0),
            "pid": self._pid,
            "tid": int(tid) if tid is not None else threading.get_native_id(),
        }
        args = _stamp_trace(args)
        if args:
            event["args"] = args
        self.emit(event)

    def instant(self, name, cat, *, ts=None, tid=None, args=None) -> None:
        """Point event (thread-scoped) — retries, crashes, round marks."""
        event = {
            "name": str(name),
            "cat": str(cat),
            "ph": "i",
            "s": "t",
            "ts": int(ts) if ts is not None else self.now(),
            "pid": self._pid,
            "tid": int(tid) if tid is not None else threading.get_native_id(),
        }
        args = _stamp_trace(args)
        if args:
            event["args"] = args
        self.emit(event)

    def counter_event(self, name, values: dict, *, ts=None) -> None:
        """Counter series sample; ``values`` maps series name -> number."""
        self.emit(
            {
                "name": str(name),
                "cat": "metrics",
                "ph": "C",
                "ts": int(ts) if ts is not None else self.now(),
                "pid": self._pid,
                "tid": 0,
                "args": values,
            }
        )

    def worker_lane(self, pid: int, tid: int) -> int:
        """Resolve a (pid, tid) observed in a task result to a trace lane.

        Work executed in a pool process gets a lane per worker pid; work
        executed in-driver (serial fallback, thread pool) gets a lane
        per native thread id. The first sighting of a lane emits its
        ``thread_name`` metadata so viewers label the row.

        Lane assignment is lock-guarded (concurrent first sightings of
        one lane must emit exactly one metadata line) and worker lanes
        are keyed by pool epoch: after the supervisor respawns a pool
        (:meth:`bump_lane_epoch`) a recycled OS pid gets a *fresh* lane
        instead of silently interleaving two workers' spans on one row.
        """
        pid, tid = int(pid), int(tid)
        if pid == self._pid:
            key = ("driver", tid)
            lane, label = tid, f"driver-thread-{tid}"
        else:
            with self._lane_lock:
                epoch = self._lane_epoch
            key = ("worker", epoch, pid)
            lane = pid
            label = f"worker-{pid}" if epoch == 0 else f"worker-{pid}-g{epoch}"
        with self._lane_lock:
            existing = self._lanes.get(key)
            if existing is not None:
                return existing
            # Collision: the natural lane int is already another row
            # (pid reuse across epochs, or a driver tid matching a dead
            # worker pid) — shift to a free synthetic lane id.
            while lane in self._lane_taken:
                lane += 1_000_000
            self._lanes[key] = lane
            self._lane_taken.add(lane)
        self.emit(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": self._pid,
                "tid": lane,
                "args": {"name": label},
            }
        )
        return lane

    def bump_lane_epoch(self) -> None:
        """Advance the worker-lane epoch (call after a pool respawn).

        Subsequent worker pids map to fresh lanes even when the OS
        recycles a pid from the torn-down pool.
        """
        with self._lane_lock:
            self._lane_epoch += 1

    @contextmanager
    def span(self, name, cat="app", args=None):
        """Context manager emitting a complete event around the block.

        ``args`` may be a dict the caller mutates inside the block —
        it is serialized at exit, so late-filled fields (sizes known
        only after the stage ran) are captured.
        """
        ts = self.now()
        try:
            yield self
        finally:
            self.complete(name, cat, ts, self.now() - ts, args=args)

    # -- lifecycle -------------------------------------------------------

    def flush(self) -> None:
        """Emit a metrics snapshot as counter events and flush the file."""
        snap = self.metrics.snapshot()
        if snap["counters"]:
            self.counter_event("repro.counters", snap["counters"])
        if snap["gauges"]:
            self.counter_event("repro.gauges", snap["gauges"])
        with self._lock:
            if self._fh is not None:
                self._fh.flush()

    def close(self) -> None:
        if os.getpid() != self._pid:
            return
        self.flush()
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None


# -- process-wide tracer selection --------------------------------------

_explicit: "Tracer | NullTracer | None" = None
_env_tracer: "Tracer | None" = None
_env_path: "str | None" = None
_env_lock = threading.Lock()


def set_tracer(tracer) -> "Tracer | NullTracer | None":
    """Install ``tracer`` as the process-wide tracer; returns the previous.

    Pass ``None`` to fall back to the environment (``REPRO_TRACE``) or
    the shared null tracer. The caller keeps ownership: ``set_tracer``
    never closes anything.
    """
    global _explicit
    previous = _explicit
    _explicit = tracer
    return previous


def current_tracer():
    """The active tracer: explicit > ``REPRO_TRACE`` env > disabled.

    The environment is consulted on every call (cheap dict lookup), so
    setting ``REPRO_TRACE`` before the first solve is enough — no
    import-order dance. The env-derived tracer is cached per path and
    closed at interpreter exit.
    """
    if _explicit is not None:
        return _explicit
    path = os.environ.get(TRACE_ENV, "").strip()
    if not path:
        return NULL_TRACER
    global _env_tracer, _env_path
    with _env_lock:
        if _env_tracer is None or _env_path != path:
            _env_tracer = Tracer(path)
            _env_path = path
        return _env_tracer


@contextmanager
def trace_to(path):
    """Scoped tracing: install a tracer for the block, close it after.

    >>> with trace_to("run.jsonl") as tracer:
    ...     shard_and_solve(points, k, ...)
    """
    tracer = Tracer(path)
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
        tracer.close()


@atexit.register
def _close_env_tracer() -> None:
    with _env_lock:
        if _env_tracer is not None:
            _env_tracer.close()
