"""Resident-set-size sampling (moved out of ``repro.bench.sparse_bench``).

The out-of-core story (PR 7) is a memory claim, so peak RSS is a
first-class measurement: :func:`run_with_peak_rss` runs a callable
while a daemon thread samples ``/proc/self/status`` and returns the
observed peak alongside the wall time. Linux-only by way of procfs;
on platforms without it :func:`rss_mib` returns 0.0 and the peak
degrades to "whatever the main thread saw" (still monotone, just
coarser).
"""

from __future__ import annotations

import threading
import time

#: Default sampling interval in seconds — fine enough to catch the
#: transient allocation peaks inside a solve, coarse enough that the
#: sampler thread is invisible in the measurement itself.
DEFAULT_RSS_INTERVAL_S = 0.02


def rss_mib() -> float:
    """Current resident set size in MiB (0.0 where procfs is absent)."""
    try:
        with open("/proc/self/status") as fh:
            for line in fh:
                if line.startswith("VmRSS:"):
                    return float(line.split()[1]) / 1024.0
    except OSError:
        pass
    return 0.0


def run_with_peak_rss(fn, interval: float = DEFAULT_RSS_INTERVAL_S):
    """Run ``fn()``, sampling RSS concurrently.

    Returns ``(result, wall_s, peak_rss_mib)``. The sampler thread is
    shut down deterministically (event + join) so no sampling outlives
    the measurement and leaks into the next one.
    """
    peak = [rss_mib()]
    stop = threading.Event()

    def _sample():
        while not stop.is_set():
            peak[0] = max(peak[0], rss_mib())
            stop.wait(interval)

    sampler = threading.Thread(target=_sample, daemon=True)
    sampler.start()
    t0 = time.perf_counter()
    try:
        result = fn()
    finally:
        stop.set()
        sampler.join()
    wall = time.perf_counter() - t0
    peak[0] = max(peak[0], rss_mib())
    return result, wall, peak[0]
