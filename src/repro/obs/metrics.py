"""Metrics registry: counters, gauges, and latency histograms.

The numeric side of :mod:`repro.obs` — where the tracer answers *when*
something happened, the registry answers *how often* and *how much*:
tasks retried, shm bytes shipped, per-primitive latency distributions.
Every :class:`~repro.obs.tracer.Tracer` owns one registry
(``tracer.metrics``); instrumented layers record into whichever tracer
is active, so a disabled run records nothing and pays nothing (call
sites guard on ``tracer.enabled``).

All instruments are thread-safe: a lone :class:`threading.Lock` per
instrument keeps increments exact when the thread backend's pool and
the driver both record at once. Nothing here is wait-free fancy — the
recording rate is per-task / per-primitive, not per-element.
"""

from __future__ import annotations

import bisect
import random
import re
import threading
import zlib

#: Histograms keep at most this many raw observations for percentile
#: estimates. Past the cap the sample becomes a *reservoir* (Vitter's
#: Algorithm R): every observation — first or ten-millionth — is
#: retained with equal probability, so percentiles reflect the whole
#: run. A frozen prefix would bias a long-running (serving) process's
#: p50/p99 toward startup/JIT-era latencies forever.
HISTOGRAM_SAMPLE_CAP = 8192

#: Default latency buckets (seconds) for fixed-bucket histograms —
#: Prometheus-style upper bounds covering sub-ms primitives through
#: multi-second served solves.
DEFAULT_LATENCY_BUCKETS_S = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def _normalize_labels(labels) -> tuple:
    """Sorted ``(key, value)`` string pairs — the canonical label form."""
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _sample_name(name: str, label_items: tuple) -> str:
    """``name{k="v",...}`` — the snapshot/exposition sample name.

    Unlabeled instruments keep their bare name, so snapshots of code
    that never uses labels are byte-identical to the historical format.
    """
    if not label_items:
        return name
    inner = ",".join(f'{k}="{_escape_label(v)}"' for k, v in label_items)
    return f"{name}{{{inner}}}"


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


class Counter:
    """Monotonically increasing count (tasks run, bytes shipped)."""

    __slots__ = ("name", "labels", "sample_name", "_value", "_lock")

    def __init__(self, name: str, labels: dict | None = None):
        self.name = name
        self.labels = dict(labels or {})
        self.sample_name = _sample_name(name, _normalize_labels(labels))
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """Last-write-wins scalar (current pool size, live frontier)."""

    __slots__ = ("name", "labels", "sample_name", "_value", "_lock")

    def __init__(self, name: str, labels: dict | None = None):
        self.name = name
        self.labels = dict(labels or {})
        self.sample_name = _sample_name(name, _normalize_labels(labels))
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Latency/size distribution with O(1) totals and a reservoir sample.

    ``observe`` is cheap (append/replace + running totals); ``summary``
    computes count/total/min/max/mean — always exact — plus p50/p95/p99
    over the retained sample. Below :data:`HISTOGRAM_SAMPLE_CAP` the
    sample is every observation (percentiles exact); past it the sample
    is a uniform reservoir over the *entire* stream (Algorithm R), so a
    long-running process's percentiles track the whole run rather than
    its startup era.

    The reservoir's RNG is a private :class:`random.Random` seeded from
    the instrument name (CRC32 — stable across processes and runs, no
    ``PYTHONHASHSEED`` dependence): identical observation sequences
    yield identical summaries, and nothing here ever touches the global
    RNG streams the solvers' byte-identity invariant rests on.
    """

    __slots__ = (
        "name", "labels", "sample_name", "buckets", "_bucket_counts",
        "_count", "_total", "_min", "_max", "_sample", "_rng", "_lock",
    )

    def __init__(self, name: str, labels: dict | None = None, buckets=None):
        self.name = name
        self.labels = dict(labels or {})
        self.sample_name = _sample_name(name, _normalize_labels(labels))
        #: Optional fixed upper bounds (sorted, seconds or whatever the
        #: unit is). When set, ``observe`` also maintains cumulative
        #: bucket counts — exact, Prometheus-ready — alongside the
        #: reservoir; when ``None`` nothing changes vs. the historical
        #: histogram (and the summary stays byte-compatible).
        self.buckets = tuple(sorted(float(b) for b in buckets)) if buckets else None
        self._bucket_counts = [0] * len(self.buckets) if self.buckets else None
        self._count = 0
        self._total = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._sample: list = []
        self._rng = random.Random(zlib.crc32(str(name).encode("utf-8")))
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._count += 1
            self._total += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
            if self._bucket_counts is not None:
                # le semantics: value lands in the first bucket whose
                # upper bound is >= value; above all bounds only the
                # implicit +Inf bucket (== _count) sees it.
                i = bisect.bisect_left(self.buckets, value)
                if i < len(self._bucket_counts):
                    self._bucket_counts[i] += 1
            if len(self._sample) < HISTOGRAM_SAMPLE_CAP:
                self._sample.append(value)
            else:
                # Algorithm R: the i-th observation displaces a uniform
                # slot with probability cap/i — every element of the
                # stream is retained equiprobably.
                j = self._rng.randrange(self._count)
                if j < HISTOGRAM_SAMPLE_CAP:
                    self._sample[j] = value

    @property
    def count(self) -> int:
        return self._count

    def bucket_counts(self) -> "dict | None":
        """Cumulative ``{upper_bound: count}`` (``inf`` bound == count),
        or ``None`` when no fixed buckets were configured."""
        if self.buckets is None:
            return None
        with self._lock:
            per_bucket = list(self._bucket_counts)
            count = self._count
        out, cum = {}, 0
        for bound, n in zip(self.buckets, per_bucket):
            cum += n
            out[bound] = cum
        out[float("inf")] = count
        return out

    def summary(self) -> dict:
        # Snapshot every field inside the lock: reading count/total/
        # min/max after releasing it could pair a sorted sample with
        # totals from later concurrent observes — a torn summary whose
        # mean or max disagrees with its own percentiles.
        with self._lock:
            if not self._count:
                return {"count": 0}
            sample = sorted(self._sample)
            count, total = self._count, self._total
            lo, hi = self._min, self._max
            per_bucket = (
                list(self._bucket_counts)
                if self._bucket_counts is not None
                else None
            )

        def _pct(q: float) -> float:
            return sample[min(int(q * len(sample)), len(sample) - 1)]

        out = {
            "count": count,
            "total": total,
            "min": lo,
            "max": hi,
            "mean": total / count,
            "p50": _pct(0.50),
            "p95": _pct(0.95),
            "p99": _pct(0.99),
        }
        if per_bucket is not None:
            cum, buckets = 0, {}
            for bound, n in zip(self.buckets, per_bucket):
                cum += n
                buckets[repr(bound)] = cum
            buckets["+Inf"] = count
            out["buckets"] = buckets
        return out


class MetricsRegistry:
    """Get-or-create home for named instruments.

    ``registry.counter("tasks_retried").inc()`` — one line at the call
    site, idempotent creation, and a :meth:`snapshot` that serializes
    every instrument for attaching to bench JSON or emitting as trace
    counter events.
    """

    def __init__(self):
        self._instruments: dict = {}
        self._lock = threading.Lock()

    def _get(self, cls, name: str, labels=None, **kwargs):
        label_items = _normalize_labels(labels)
        key = (cls.__name__, str(name), label_items)
        with self._lock:
            inst = self._instruments.get(key)
            if inst is None:
                inst = cls(str(name), labels=dict(label_items), **kwargs)
                self._instruments[key] = inst
            return inst

    def counter(self, name: str, labels: dict | None = None) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, labels: dict | None = None) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self, name: str, labels: dict | None = None, buckets=None
    ) -> Histogram:
        """Get-or-create; ``buckets`` applies only on first creation (an
        existing instrument's buckets are never rewired)."""
        return self._get(Histogram, name, labels, buckets=buckets)

    def instruments(self) -> list:
        """A stable-order snapshot of every registered instrument."""
        with self._lock:
            return list(self._instruments.values())

    def snapshot(self) -> dict:
        """JSON-ready ``{counters, gauges, histograms}`` view.

        Unlabeled instruments appear under their bare name (the
        historical, byte-compatible format); labeled ones under
        ``name{k="v",...}``. The instrument list is copied under the
        registry lock, so a snapshot taken while another thread is
        registering metrics sees a consistent prefix — never a dict
        mutated mid-iteration.
        """
        instruments = self.instruments()
        out: dict = {"counters": {}, "gauges": {}, "histograms": {}}
        for inst in instruments:
            if isinstance(inst, Counter):
                out["counters"][inst.sample_name] = inst.value
            elif isinstance(inst, Gauge):
                out["gauges"][inst.sample_name] = inst.value
            elif isinstance(inst, Histogram):
                out["histograms"][inst.sample_name] = inst.summary()
        return out

    def reset(self) -> None:
        with self._lock:
            self._instruments.clear()


# -- Prometheus text exposition ------------------------------------------

_PROM_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    """Sanitize a metric name for Prometheus (dots → underscores)."""
    out = _PROM_NAME_RE.sub("_", str(name))
    if out and out[0].isdigit():
        out = "_" + out
    return out


def _prom_labels(labels: dict, extra: "tuple | None" = None) -> str:
    items = [(str(k), str(v)) for k, v in sorted(labels.items())]
    if extra:
        items.append(extra)
    if not items:
        return ""
    inner = ",".join(f'{k}="{_escape_label(v)}"' for k, v in items)
    return "{" + inner + "}"


def _prom_num(value: float) -> str:
    value = float(value)
    if value == float("inf"):
        return "+Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def render_prometheus(registry: MetricsRegistry) -> str:
    """Render a registry in the Prometheus text exposition format.

    Counters/gauges map directly; histograms with fixed buckets emit
    ``_bucket{le=...}``/``_sum``/``_count`` series, reservoir-only
    histograms emit a summary (``{quantile=...}`` + ``_sum``/``_count``).
    One ``# TYPE`` line per family, families sorted by name.
    """
    families: dict = {}
    for inst in registry.instruments():
        families.setdefault((_prom_name(inst.name), type(inst).__name__), []).append(
            inst
        )
    lines = []
    for (name, kind), insts in sorted(families.items()):
        if kind == "Counter":
            lines.append(f"# TYPE {name} counter")
            for inst in insts:
                lines.append(f"{name}{_prom_labels(inst.labels)} {_prom_num(inst.value)}")
        elif kind == "Gauge":
            lines.append(f"# TYPE {name} gauge")
            for inst in insts:
                lines.append(f"{name}{_prom_labels(inst.labels)} {_prom_num(inst.value)}")
        else:  # Histogram
            bucketed = any(inst.buckets is not None for inst in insts)
            lines.append(f"# TYPE {name} {'histogram' if bucketed else 'summary'}")
            for inst in insts:
                summary = inst.summary()
                count = summary.get("count", 0)
                total = summary.get("total", 0.0)
                if inst.buckets is not None:
                    for bound, cum in (inst.bucket_counts() or {}).items():
                        le = ("le", _prom_num(bound))
                        lines.append(
                            f"{name}_bucket{_prom_labels(inst.labels, le)} {cum}"
                        )
                else:
                    for q in ("p50", "p95", "p99"):
                        if q in summary:
                            quantile = ("quantile", f"0.{q[1:]}")
                            lines.append(
                                f"{name}{_prom_labels(inst.labels, quantile)} "
                                f"{_prom_num(summary[q])}"
                            )
                lines.append(f"{name}_sum{_prom_labels(inst.labels)} {_prom_num(total)}")
                lines.append(f"{name}_count{_prom_labels(inst.labels)} {count}")
    return "\n".join(lines) + "\n" if lines else ""


def parse_prometheus_text(text: str) -> dict:
    """Parse the exposition format back into ``{types, samples}``.

    ``types`` maps family name -> declared type; ``samples`` maps the
    full sample name (labels included, verbatim) -> float value. This
    is the validation half of the round-trip the CI serve leg runs —
    a deliberately small parser, not a full openmetrics implementation.
    """
    types: dict = {}
    samples: dict = {}
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                types[parts[2]] = parts[3]
            continue
        # sample: name{labels} value  |  name value
        idx = line.rfind(" ")
        if idx < 0:
            raise ValueError(f"prometheus text:{lineno}: no value in {line!r}")
        sample_name, value = line[:idx].strip(), line[idx + 1 :]
        try:
            samples[sample_name] = float(value)
        except ValueError as exc:
            raise ValueError(
                f"prometheus text:{lineno}: bad value {value!r}"
            ) from exc
        base = sample_name.partition("{")[0]
        base_family = re.sub(r"_(bucket|sum|count)$", "", base)
        if base not in types and base_family not in types:
            raise ValueError(
                f"prometheus text:{lineno}: sample {base!r} missing # TYPE"
            )
    return {"types": types, "samples": samples}
