"""Metrics registry: counters, gauges, and latency histograms.

The numeric side of :mod:`repro.obs` — where the tracer answers *when*
something happened, the registry answers *how often* and *how much*:
tasks retried, shm bytes shipped, per-primitive latency distributions.
Every :class:`~repro.obs.tracer.Tracer` owns one registry
(``tracer.metrics``); instrumented layers record into whichever tracer
is active, so a disabled run records nothing and pays nothing (call
sites guard on ``tracer.enabled``).

All instruments are thread-safe: a lone :class:`threading.Lock` per
instrument keeps increments exact when the thread backend's pool and
the driver both record at once. Nothing here is wait-free fancy — the
recording rate is per-task / per-primitive, not per-element.
"""

from __future__ import annotations

import random
import threading
import zlib

#: Histograms keep at most this many raw observations for percentile
#: estimates. Past the cap the sample becomes a *reservoir* (Vitter's
#: Algorithm R): every observation — first or ten-millionth — is
#: retained with equal probability, so percentiles reflect the whole
#: run. A frozen prefix would bias a long-running (serving) process's
#: p50/p99 toward startup/JIT-era latencies forever.
HISTOGRAM_SAMPLE_CAP = 8192


class Counter:
    """Monotonically increasing count (tasks run, bytes shipped)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """Last-write-wins scalar (current pool size, live frontier)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Latency/size distribution with O(1) totals and a reservoir sample.

    ``observe`` is cheap (append/replace + running totals); ``summary``
    computes count/total/min/max/mean — always exact — plus p50/p95/p99
    over the retained sample. Below :data:`HISTOGRAM_SAMPLE_CAP` the
    sample is every observation (percentiles exact); past it the sample
    is a uniform reservoir over the *entire* stream (Algorithm R), so a
    long-running process's percentiles track the whole run rather than
    its startup era.

    The reservoir's RNG is a private :class:`random.Random` seeded from
    the instrument name (CRC32 — stable across processes and runs, no
    ``PYTHONHASHSEED`` dependence): identical observation sequences
    yield identical summaries, and nothing here ever touches the global
    RNG streams the solvers' byte-identity invariant rests on.
    """

    __slots__ = ("name", "_count", "_total", "_min", "_max", "_sample", "_rng", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._count = 0
        self._total = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._sample: list = []
        self._rng = random.Random(zlib.crc32(str(name).encode("utf-8")))
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._count += 1
            self._total += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
            if len(self._sample) < HISTOGRAM_SAMPLE_CAP:
                self._sample.append(value)
            else:
                # Algorithm R: the i-th observation displaces a uniform
                # slot with probability cap/i — every element of the
                # stream is retained equiprobably.
                j = self._rng.randrange(self._count)
                if j < HISTOGRAM_SAMPLE_CAP:
                    self._sample[j] = value

    @property
    def count(self) -> int:
        return self._count

    def summary(self) -> dict:
        with self._lock:
            if not self._count:
                return {"count": 0}
            sample = sorted(self._sample)

        def _pct(q: float) -> float:
            return sample[min(int(q * len(sample)), len(sample) - 1)]

        return {
            "count": self._count,
            "total": self._total,
            "min": self._min,
            "max": self._max,
            "mean": self._total / self._count,
            "p50": _pct(0.50),
            "p95": _pct(0.95),
            "p99": _pct(0.99),
        }


class MetricsRegistry:
    """Get-or-create home for named instruments.

    ``registry.counter("tasks_retried").inc()`` — one line at the call
    site, idempotent creation, and a :meth:`snapshot` that serializes
    every instrument for attaching to bench JSON or emitting as trace
    counter events.
    """

    def __init__(self):
        self._instruments: dict = {}
        self._lock = threading.Lock()

    def _get(self, cls, name: str):
        key = (cls.__name__, str(name))
        with self._lock:
            inst = self._instruments.get(key)
            if inst is None:
                inst = cls(str(name))
                self._instruments[key] = inst
            return inst

    def counter(self, name: str) -> Counter:
        return self._get(Counter, name)

    def gauge(self, name: str) -> Gauge:
        return self._get(Gauge, name)

    def histogram(self, name: str) -> Histogram:
        return self._get(Histogram, name)

    def snapshot(self) -> dict:
        """JSON-ready ``{counters, gauges, histograms}`` view."""
        with self._lock:
            instruments = list(self._instruments.values())
        out: dict = {"counters": {}, "gauges": {}, "histograms": {}}
        for inst in instruments:
            if isinstance(inst, Counter):
                out["counters"][inst.name] = inst.value
            elif isinstance(inst, Gauge):
                out["gauges"][inst.name] = inst.value
            elif isinstance(inst, Histogram):
                out["histograms"][inst.name] = inst.summary()
        return out

    def reset(self) -> None:
        with self._lock:
            self._instruments.clear()
