"""Sparse facility-location instances (CSR candidate structure).

Every dense solver materializes the full ``n_f × n_c`` distance matrix,
so the reproduction stops where memory does. The paper's work bounds
are stated against the input size ``m``, and the Lemma 3.1 remark
explicitly invites ``O(|E| log |V|)`` sparse execution — this module is
the instance shape that makes ``m = nnz`` real.

A :class:`SparseFacilityLocationInstance` stores a facility-major CSR
structure over the *candidate* connections: entry ``(i, j)`` present
means facility ``i`` may serve client ``j`` at distance ``data``;
absent means **not a candidate connection** (not "distance zero", and
not "infinitely far in the metric" — merely outside the truncated
neighborhood the instance was built with).

Because a client's candidates might all stay closed, every instance
carries an explicit **fallback cost column**: client ``j`` can always
be served at cost ``fallback[j]`` (think: a depot/ship-direct option).
The objective is therefore always well-defined::

    cost(S) = Σ_{i∈S} f_i + Σ_j min( min_{i∈S, (i,j) candidate} d(i,j),
                                      fallback_j )

A *dense-representable* instance (every facility–client pair present,
``fallback ≡ +inf``) evaluates the exact Eq. (1) objective, which is
what the sparse-vs-dense equivalence suite compares against.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidInstanceError, InvalidParameterError
from repro.metrics.instance import (
    ClusteringInstance,
    FacilityLocationInstance,
    _as_open_indices,
    _check_weights,
)
from repro.metrics.space import MetricSpace
from repro.util.csr import csr_transpose, rows_are_uniform, validate_csr


class _CsrCandidateShape:
    """Shared CSR-shape members of the sparse instance classes.

    Both sparse instance shapes store their candidate structure as
    ``_indptr``/``_indices``/``_fallback``; the row-expansion and
    dense-representability semantics are defined once here so the two
    classes cannot drift. Subclasses provide ``_n_cols`` — the full
    column count a dense-representable row must reach.
    """

    __slots__ = ()

    @property
    def row_lengths(self) -> np.ndarray:
        """Candidate count per row."""
        return np.diff(self._indptr)

    @property
    def is_dense_representable(self) -> bool:
        """Every candidate pair present and no finite fallback."""
        uniform, k = rows_are_uniform(self._indptr)
        return uniform and k == self._n_cols and not np.any(np.isfinite(self._fallback))

    def rows_flat(self) -> np.ndarray:
        """Row id per candidate entry (the CSR row expansion)."""
        return np.repeat(np.arange(self._indptr.size - 1), self.row_lengths)


class SparseFacilityLocationInstance(_CsrCandidateShape):
    """A facility-location instance over sparse candidate connections.

    Parameters
    ----------
    indptr, indices, data:
        Facility-major CSR structure: facility ``i``'s candidate
        clients are ``indices[indptr[i]:indptr[i+1]]`` at distances
        ``data[indptr[i]:indptr[i+1]]``. Column indices must be unique
        per row (any order).
    f:
        Length-``n_f`` non-negative opening costs.
    n_clients:
        Number of clients ``|C|`` (columns).
    fallback:
        Length-``n_c`` per-client fallback connection cost (``+inf``
        allowed; the default). A client with no candidate entry **and**
        an infinite fallback would make every objective infinite, so
        that combination is rejected.
    client_weights:
        Optional length-``n_c`` strictly positive multiplicities
        (client ``j`` stands for ``w_j`` co-located demand points);
        ``None`` means unit weights and keeps solvers on the exact
        unweighted code path.
    """

    __slots__ = (
        "_indptr", "_indices", "_data", "_f", "_fallback", "_n_clients", "_ct",
        "_client_weights", "_unit_weights",
    )

    def __init__(
        self, indptr, indices, data, f, *, n_clients: int, fallback=None,
        client_weights=None,
    ):
        n_clients = int(n_clients)
        if n_clients <= 0:
            raise InvalidInstanceError(f"instance needs >= 1 client, got {n_clients}")
        indptr, indices = validate_csr(indptr, indices, n_clients, name="sparse instance")
        data = np.asarray(data, dtype=float)
        f = np.asarray(f, dtype=float)
        n_f = indptr.size - 1
        if n_f == 0:
            raise InvalidInstanceError("instance needs >= 1 facility")
        if data.shape != (indices.size,):
            raise InvalidInstanceError(
                f"data must have one value per index, got {data.shape} for nnz={indices.size}"
            )
        if f.shape != (n_f,):
            raise InvalidInstanceError(f"f must have shape ({n_f},), got {f.shape}")
        if not (np.all(np.isfinite(data)) and np.all(np.isfinite(f))):
            raise InvalidInstanceError("distances and costs must be finite")
        if (data.size and data.min() < 0) or (f.size and f.min() < 0):
            raise InvalidInstanceError("distances and opening costs must be non-negative")
        if fallback is None:
            fallback = np.full(n_clients, np.inf)
        else:
            fallback = np.asarray(fallback, dtype=float)
            if fallback.shape != (n_clients,):
                raise InvalidInstanceError(
                    f"fallback must have shape ({n_clients},), got {fallback.shape}"
                )
            if fallback.size and fallback.min() < 0:
                raise InvalidInstanceError("fallback costs must be non-negative")
            if np.any(np.isnan(fallback)):
                raise InvalidInstanceError("fallback costs must not be NaN")
        covered = np.zeros(n_clients, dtype=bool)
        covered[indices] = True
        uncovered_inf = ~covered & ~np.isfinite(fallback)
        if np.any(uncovered_inf):
            raise InvalidInstanceError(
                f"{int(uncovered_inf.sum())} client(s) have no candidate facility "
                "and an infinite fallback; the objective would be infinite"
            )
        self._indptr = indptr
        self._indices = indices
        self._data = data
        self._f = f
        self._fallback = fallback
        self._n_clients = n_clients
        self._client_weights, self._unit_weights = _check_weights(
            client_weights, n_clients, name="client_weights"
        )
        for arr in (self._data, self._f, self._fallback):
            arr.setflags(write=False)
        self._ct = None  # lazy client-major transpose

    # -- construction ------------------------------------------------------

    @classmethod
    def from_dense(cls, D, f, *, fallback=None, client_weights=None) -> "SparseFacilityLocationInstance":
        """Full CSR over a dense matrix (dense-representable instance)."""
        D = np.asarray(D, dtype=float)
        if D.ndim != 2:
            raise InvalidInstanceError(f"D must be 2-D, got ndim={D.ndim}")
        n_f, n_c = D.shape
        indptr = np.arange(0, n_f * n_c + 1, n_c, dtype=np.intp)
        indices = np.tile(np.arange(n_c, dtype=np.intp), n_f)
        return cls(
            indptr, indices, D.ravel(), f, n_clients=n_c, fallback=fallback,
            client_weights=client_weights,
        )

    @classmethod
    def from_instance(cls, instance: FacilityLocationInstance) -> "SparseFacilityLocationInstance":
        """Dense-representable copy of a dense instance (``fallback ≡ +inf``)."""
        return cls.from_dense(
            instance.D,
            instance.f,
            client_weights=None if instance.has_unit_weights else instance.client_weights,
        )

    @classmethod
    def from_scipy(cls, A, f, *, fallback=None) -> "SparseFacilityLocationInstance":
        """Wrap a ``scipy.sparse`` facility×client matrix of distances.

        Stored zeros are legal candidate connections at distance 0;
        *absent* entries are non-candidates (the scipy convention of
        eliminating zeros would conflate the two, so pass matrices with
        explicit zeros retained if distance-0 candidates matter).
        """
        A = A.tocsr()
        return cls(
            A.indptr, A.indices, A.data, f, n_clients=A.shape[1], fallback=fallback
        )

    # -- shape -------------------------------------------------------------

    @property
    def indptr(self) -> np.ndarray:
        """CSR segment boundaries, length ``n_f + 1`` (read-only view)."""
        return self._indptr

    @property
    def indices(self) -> np.ndarray:
        """Client id per candidate entry, length ``nnz``."""
        return self._indices

    @property
    def data(self) -> np.ndarray:
        """Distance per candidate entry, length ``nnz``."""
        return self._data

    @property
    def f(self) -> np.ndarray:
        """Opening costs, shape ``(n_f,)``."""
        return self._f

    @property
    def fallback(self) -> np.ndarray:
        """Per-client fallback connection cost, shape ``(n_c,)``."""
        return self._fallback

    @property
    def client_weights(self) -> np.ndarray:
        """Per-client multiplicities, shape ``(n_c,)`` (ones if unset)."""
        if self._client_weights is None:
            return np.ones(self._n_clients)
        return self._client_weights

    @property
    def has_unit_weights(self) -> bool:
        """True when every client weight is 1 (solvers then take the
        exact unweighted code path)."""
        return self._unit_weights

    @property
    def total_weight(self) -> float:
        """``Σ_j w_j`` — the represented demand (``n_c`` when unit)."""
        if self._client_weights is None:
            return float(self._n_clients)
        return float(self._client_weights.sum())

    @property
    def n_facilities(self) -> int:
        """Number of candidate facilities ``|F|`` (CSR rows)."""
        return self._indptr.size - 1

    @property
    def n_clients(self) -> int:
        """Number of clients ``|C|`` (CSR columns)."""
        return self._n_clients

    @property
    def nnz(self) -> int:
        """Number of candidate connections ``|E|``."""
        return self._indices.size

    @property
    def m(self) -> int:
        """The paper's input-size parameter — ``nnz`` for sparse instances."""
        return self.nnz

    @property
    def _n_cols(self) -> int:
        return self._n_clients

    # -- client-major transpose -------------------------------------------

    @property
    def client_view(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Lazy client-major transpose ``(ct_indptr, ct_facilities, ct_entry)``.

        ``ct_facilities`` holds the facility id of each edge grouped by
        client; ``ct_entry`` maps each transposed edge back to its
        position in the facility-major flat arrays (so any per-edge
        payload transposes by ``payload[ct_entry]``). Built once,
        ``O(nnz)``.
        """
        if self._ct is None:
            self._ct = csr_transpose(self._indptr, self._indices, self._n_clients)
        return self._ct

    # -- dense bridge ------------------------------------------------------

    def to_dense(self) -> FacilityLocationInstance:
        """Convert a dense-representable instance back to the dense shape.

        Raises for truncated instances: a missing candidate pair has no
        faithful dense distance (absent ≠ any finite value), so the
        bridge exists exactly on the overlap where the equivalence
        suite compares solvers.
        """
        if not self.is_dense_representable:
            raise InvalidInstanceError(
                "only dense-representable instances (all pairs present, "
                "no finite fallback) can convert to a dense instance"
            )
        n_f, n_c = self.n_facilities, self.n_clients
        D = np.empty((n_f, n_c))
        rows = self.rows_flat()
        D[rows, self._indices] = self._data
        return FacilityLocationInstance(
            D, self._f,
            client_weights=None if self._unit_weights else self._client_weights,
        )

    # -- objective ---------------------------------------------------------

    def connection_distances(self, opened) -> np.ndarray:
        """Per-client service cost under open set ``opened``: the
        minimum candidate distance to an open facility, floored at
        ``+inf`` and capped by the fallback column."""
        idx = _as_open_indices(opened, self.n_facilities)
        open_mask = np.zeros(self.n_facilities, dtype=bool)
        open_mask[idx] = True
        rows = self.rows_flat()
        best = np.full(self._n_clients, np.inf)
        sel = open_mask[rows]
        np.minimum.at(best, self._indices[sel], self._data[sel])
        return np.minimum(best, self._fallback)

    def assignment(self, opened) -> np.ndarray:
        """Closest-open-candidate assignment; ``-1`` marks clients
        served by their fallback."""
        idx = _as_open_indices(opened, self.n_facilities)
        open_mask = np.zeros(self.n_facilities, dtype=bool)
        open_mask[idx] = True
        rows = self.rows_flat()
        sel = open_mask[rows]
        best = np.full(self._n_clients, np.inf)
        np.minimum.at(best, self._indices[sel], self._data[sel])
        out = np.full(self._n_clients, -1, dtype=np.intp)
        use_facility = best <= self._fallback
        # first entry attaining the minimum, in row-major order
        cols = self._indices[sel]
        hit = (self._data[sel] == best[cols]) & use_facility[cols]
        # reversed scatter keeps the first (lowest facility id) winner
        out[cols[hit][::-1]] = rows[sel][hit][::-1]
        return out

    def facility_cost(self, opened) -> float:
        """Opening-cost part of the objective: ``Σ_{i∈S} f_i``."""
        idx = _as_open_indices(opened, self.n_facilities)
        return float(np.sum(self._f[idx]))

    def connection_cost(self, opened) -> float:
        """Connection part: ``Σ_j w_j · min(d(j, S ∩ candidates), fallback_j)``."""
        d = self.connection_distances(opened)
        if self._unit_weights:
            return float(np.sum(d))
        return float(np.sum(self._client_weights * d))

    def cost(self, opened) -> float:
        """``Σ f_i + Σ_j min(d(j, S ∩ candidates), fallback_j)``."""
        return self.facility_cost(opened) + self.connection_cost(opened)

    def __repr__(self) -> str:
        return (
            f"SparseFacilityLocationInstance(n_f={self.n_facilities}, "
            f"n_c={self.n_clients}, nnz={self.nnz})"
        )


# --------------------------------------------------------------------------
# Sparse clustering instances (§6.1 / §7 over CSR candidate structures)
# --------------------------------------------------------------------------

class SparseClusteringInstance(_CsrCandidateShape):
    """A k-median / k-means / k-center instance over sparse candidates.

    Every node is simultaneously a client and a candidate center (the
    paper's §2 convention), but only the *stored* node pairs are
    candidate assignments: entry ``(j, i)`` present means node ``j``
    may be served by center ``i`` at distance ``data``; absent means
    "not a candidate assignment" (outside the truncated neighborhood,
    not "distance zero").

    Structure requirements, validated on construction:

    * **node-major CSR**, square, column ids strictly ascending per row
      (so segmented argmins break ties exactly like the dense kernels);
    * **symmetric** in both structure and values — a candidate pair is
      a candidate pair from both ends, as in a metric;
    * the **diagonal is always stored at distance 0** — a node is
      always a candidate center of itself, which keeps every objective
      well-defined without a coverage precondition.

    Because a node's stored candidates might all stay closed, every
    instance carries an explicit **fallback cost column**: node ``j``
    can always be served at cost ``fallback[j]`` (``+inf`` on
    dense-representable instances). Objectives are therefore total::

        service(j, S) = min( min_{i∈S, (j,i) stored} d(j, i),
                             fallback_j )

    A *dense-representable* instance (every pair present, ``fallback ≡
    +inf``) evaluates the exact §2 objectives, which is what the
    sparse-vs-dense equivalence suite compares against.
    """

    __slots__ = ("_indptr", "_indices", "_data", "_fallback", "_k", "_n", "_weights", "_unit_weights")

    def __init__(self, indptr, indices, data, k, *, fallback=None, weights=None):
        indptr = np.asarray(indptr, dtype=np.intp)
        n = indptr.size - 1
        if n <= 0:
            raise InvalidInstanceError("instance needs >= 1 node")
        indptr, indices = validate_csr(
            indptr, indices, n, name="sparse clustering instance", require_sorted=True
        )
        data = np.asarray(data, dtype=float)
        if data.shape != (indices.size,):
            raise InvalidInstanceError(
                f"data must have one value per index, got {data.shape} for nnz={indices.size}"
            )
        if not np.all(np.isfinite(data)):
            raise InvalidInstanceError("distances must be finite")
        if data.size and data.min() < 0:
            raise InvalidInstanceError("distances must be non-negative")
        k = int(k)
        if not 1 <= k <= n:
            raise InvalidParameterError(f"k must be in [1, {n}], got {k}")
        if fallback is None:
            fallback = np.full(n, np.inf)
        else:
            fallback = np.asarray(fallback, dtype=float)
            if fallback.shape != (n,):
                raise InvalidInstanceError(
                    f"fallback must have shape ({n},), got {fallback.shape}"
                )
            if np.any(np.isnan(fallback)):
                raise InvalidInstanceError("fallback costs must not be NaN")
            if fallback.size and fallback.min() < 0:
                raise InvalidInstanceError("fallback costs must be non-negative")
        rows = np.repeat(np.arange(n), np.diff(indptr))
        diag = indices == rows
        diag_count = np.bincount(rows[diag], minlength=n)
        if not np.all(diag_count == 1):
            missing = int(np.flatnonzero(diag_count == 0)[0]) if np.any(diag_count == 0) else -1
            raise InvalidInstanceError(
                "every node must store itself as a candidate center "
                f"(diagonal entry missing for node {missing})"
            )
        if np.any(data[diag] != 0.0):
            raise InvalidInstanceError("diagonal candidate distances must be 0")
        # Symmetry of structure *and* values. The +1 shift keeps stored
        # zeros (the diagonal) distinguishable from absent entries under
        # scipy's sparse comparison.
        from scipy import sparse as _sp

        M = _sp.csr_matrix((data + 1.0, indices.copy(), indptr.copy()), shape=(n, n))
        if (M != M.T).nnz != 0:
            raise InvalidInstanceError(
                "candidate structure must be symmetric (same pairs and "
                "distances from both ends)"
            )
        self._indptr = indptr
        self._indices = indices
        self._data = data
        self._fallback = fallback
        self._k = k
        self._n = n
        self._weights, self._unit_weights = _check_weights(weights, n)
        for arr in (self._data, self._fallback):
            arr.setflags(write=False)

    # -- construction ------------------------------------------------------

    @classmethod
    def from_dense(cls, D, k, *, fallback=None, weights=None) -> "SparseClusteringInstance":
        """Full CSR over a dense ``n × n`` matrix (dense-representable)."""
        D = np.asarray(D, dtype=float)
        if D.ndim != 2 or D.shape[0] != D.shape[1]:
            raise InvalidInstanceError(f"D must be square, got shape {D.shape}")
        n = D.shape[0]
        indptr = np.arange(0, n * n + 1, n, dtype=np.intp)
        indices = np.tile(np.arange(n, dtype=np.intp), n)
        return cls(indptr, indices, D.ravel(), k, fallback=fallback, weights=weights)

    @classmethod
    def from_instance(cls, instance: ClusteringInstance) -> "SparseClusteringInstance":
        """Dense-representable copy of a dense instance (``fallback ≡ +inf``)."""
        return cls.from_dense(
            instance.D, instance.k,
            weights=None if instance.has_unit_weights else instance.weights,
        )

    # -- shape -------------------------------------------------------------

    @property
    def indptr(self) -> np.ndarray:
        """CSR segment boundaries, length ``n + 1`` (read-only view)."""
        return self._indptr

    @property
    def indices(self) -> np.ndarray:
        """Candidate center id per entry, length ``nnz``."""
        return self._indices

    @property
    def data(self) -> np.ndarray:
        """Distance per candidate entry, length ``nnz``."""
        return self._data

    @property
    def fallback(self) -> np.ndarray:
        """Per-node fallback service cost, shape ``(n,)``."""
        return self._fallback

    @property
    def weights(self) -> np.ndarray:
        """Per-node multiplicities, shape ``(n,)`` (ones if unset)."""
        if self._weights is None:
            return np.ones(self._n)
        return self._weights

    @property
    def has_unit_weights(self) -> bool:
        """True when every node weight is 1 (solvers then take the
        exact unweighted code path)."""
        return self._unit_weights

    @property
    def total_weight(self) -> float:
        """``Σ_j w_j`` — the represented demand (``n`` when unit)."""
        if self._weights is None:
            return float(self._n)
        return float(self._weights.sum())

    @property
    def k(self) -> int:
        """Center budget."""
        return self._k

    @property
    def n(self) -> int:
        """Number of nodes (each a client and a candidate center)."""
        return self._n

    @property
    def nnz(self) -> int:
        """Number of stored candidate pairs ``|E|`` (diagonal included)."""
        return self._indices.size

    @property
    def m(self) -> int:
        """The paper's input-size parameter — ``nnz`` for sparse instances."""
        return self.nnz

    @property
    def _n_cols(self) -> int:
        return self._n

    def with_budget(self, k: int) -> "SparseClusteringInstance":
        """Same candidate structure with a different center budget."""
        return SparseClusteringInstance(
            self._indptr, self._indices, self._data, k, fallback=self._fallback,
            weights=self._weights,
        )

    # -- dense bridge ------------------------------------------------------

    def to_dense(self) -> ClusteringInstance:
        """Convert a dense-representable instance back to the dense shape.

        Raises for truncated instances: an absent candidate pair has no
        faithful dense distance, so the bridge exists exactly on the
        overlap where the equivalence suite compares solvers.
        """
        if not self.is_dense_representable:
            raise InvalidInstanceError(
                "only dense-representable instances (all pairs present, "
                "no finite fallback) can convert to a dense instance"
            )
        D = np.empty((self._n, self._n))
        D[self.rows_flat(), self._indices] = self._data
        return ClusteringInstance(
            MetricSpace(D, validate=False), self._k, weights=self._weights
        )

    # -- objectives --------------------------------------------------------

    def _center_distances(self, centers) -> np.ndarray:
        idx = _as_open_indices(centers, self._n)
        open_mask = np.zeros(self._n, dtype=bool)
        open_mask[idx] = True
        sel = open_mask[self._indices]
        best = np.full(self._n, np.inf)
        np.minimum.at(best, self.rows_flat()[sel], self._data[sel])
        return np.minimum(best, self._fallback)

    def check_budget(self, centers) -> np.ndarray:
        """Validate ``|centers| ≤ k``; return the center index array."""
        idx = _as_open_indices(centers, self._n)
        if idx.size > self._k:
            raise InvalidParameterError(
                f"solution opens {idx.size} centers but k={self._k}"
            )
        return idx

    def kmedian_cost(self, centers) -> float:
        """``Σ_j w_j · service(j, S)`` — the k-median objective (fallback-capped)."""
        d = self._center_distances(centers)
        if self._unit_weights:
            return float(np.sum(d))
        return float(np.sum(self._weights * d))

    def kmeans_cost(self, centers) -> float:
        """``Σ_j w_j · service(j, S)²`` — the k-means objective (fallback-capped)."""
        d = self._center_distances(centers)
        if self._unit_weights:
            return float(np.sum(d * d))
        return float(np.sum(self._weights * d * d))

    def kcenter_cost(self, centers) -> float:
        """``max_j service(j, S)`` — the bottleneck objective
        (fallback-capped, weight-invariant: multiplicities duplicate
        points in place)."""
        return float(np.max(self._center_distances(centers)))

    def __repr__(self) -> str:
        return (
            f"SparseClusteringInstance(n={self._n}, k={self._k}, nnz={self.nnz})"
        )


def _symmetrized_clustering_csr(
    n: int, rows: np.ndarray, cols: np.ndarray, vals: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Union the edge list with its transpose and the zero diagonal,
    dedupe, and return a sorted node-major CSR — the shared tail of
    every clustering sparsifier. ``O(nnz log nnz)``."""
    diag = np.arange(n, dtype=np.intp)
    r = np.concatenate([rows, cols, diag])
    c = np.concatenate([cols, rows, diag])
    v = np.concatenate([vals, vals, np.zeros(n)])
    order = np.lexsort((c, r))
    r, c, v = r[order], c[order], v[order]
    keep = np.concatenate(([True], (np.diff(r) != 0) | (np.diff(c) != 0)))
    r, c, v = r[keep], c[keep], v[keep]
    indptr = np.concatenate(([0], np.cumsum(np.bincount(r, minlength=n)))).astype(np.intp)
    return indptr, c.astype(np.intp), v


def _knn_sparsify_clustering(
    instance: ClusteringInstance, neighbors: int, slack: float
) -> SparseClusteringInstance:
    """Clustering branch of :func:`knn_sparsify` (see its docstring)."""
    n = instance.n
    if not 1 <= int(neighbors) <= n:
        raise InvalidParameterError(f"k must be in [1, {n}], got {neighbors}")
    neighbors = int(neighbors)
    D = instance.D
    near = np.argpartition(D, neighbors - 1, axis=1)[:, :neighbors]
    dist = np.take_along_axis(D, near, axis=1)
    radius = dist.max(axis=1)
    rows = np.repeat(np.arange(n, dtype=np.intp), neighbors)
    indptr, indices, data = _symmetrized_clustering_csr(
        n, rows, near.ravel().astype(np.intp), dist.ravel()
    )
    return SparseClusteringInstance(
        indptr, indices, data, instance.k, fallback=(1.0 + slack) * radius,
        weights=None if instance.has_unit_weights else instance.weights,
    )


def _threshold_sparsify_clustering(
    instance: ClusteringInstance, radius: float
) -> SparseClusteringInstance:
    """Clustering branch of :func:`threshold_sparsify` (see its docstring)."""
    t = float(radius)
    if t <= 0:
        raise InvalidParameterError(f"radius must be > 0, got {radius}")
    D = instance.D
    n = instance.n
    keep = D <= t
    rows, cols = np.nonzero(keep)
    indptr, indices, data = _symmetrized_clustering_csr(
        n, rows.astype(np.intp), cols.astype(np.intp), D[keep]
    )
    return SparseClusteringInstance(
        indptr, indices, data, instance.k, fallback=np.full(n, t),
        weights=None if instance.has_unit_weights else instance.weights,
    )


# --------------------------------------------------------------------------
# Sparsifiers: dense instance -> sparse candidate structure
# --------------------------------------------------------------------------

def knn_sparsify(
    instance: FacilityLocationInstance,
    k: int,
    *,
    fallback_slack: float = 1.0,
) -> SparseFacilityLocationInstance:
    """Keep each client's ``k`` nearest facilities as its candidates.

    The fallback is ``(1 + fallback_slack) ×`` the client's truncation
    radius (its ``k``-th nearest distance): any solution the sparse
    model charges a fallback for could have been served at roughly that
    radius in the dense instance, which keeps sparse and dense optima
    comparable when ``k`` covers the dense optimum's assignments (see
    README, "Sparse instances").

    A :class:`~repro.metrics.instance.ClusteringInstance` is accepted
    too: ``k`` is then the number of nearest *nodes* kept per node, the
    edge set is symmetrized (a candidate pair is kept if either end
    keeps it) with the zero diagonal always present, and the result is
    a :class:`SparseClusteringInstance` with the same center budget.
    """
    slack = float(fallback_slack)
    if slack < 0:
        raise InvalidParameterError(f"fallback_slack must be >= 0, got {fallback_slack}")
    if isinstance(instance, ClusteringInstance):
        return _knn_sparsify_clustering(instance, k, slack)
    if not 1 <= int(k) <= instance.n_facilities:
        raise InvalidParameterError(
            f"k must be in [1, {instance.n_facilities}], got {k}"
        )
    k = int(k)
    D = instance.D
    n_f, n_c = D.shape
    # Exactly k candidates per client (argpartition breaks distance ties
    # deterministically), so nnz = k·n_c even on fully tied metrics — a
    # radius-threshold mask would keep every tied entry instead.
    near = np.argpartition(D, k - 1, axis=0)[:k, :]  # (k, n_c) facility ids
    dist = np.take_along_axis(D, near, axis=0)
    radius = dist.max(axis=0)
    # Transpose the client-major k-NN lists into facility-major CSR.
    c_indptr = np.arange(0, n_c * k + 1, k, dtype=np.intp)
    t_indptr, t_clients, entry = csr_transpose(c_indptr, near.T.ravel(), n_f)
    return SparseFacilityLocationInstance(
        t_indptr,
        t_clients,
        dist.T.ravel()[entry],
        instance.f,
        n_clients=n_c,
        fallback=(1.0 + slack) * radius,
        client_weights=None if instance.has_unit_weights else instance.client_weights,
    )


def threshold_sparsify(
    instance: FacilityLocationInstance,
    epsilon: float,
) -> SparseFacilityLocationInstance:
    """Keep the ``(1+ε)``-competitive candidates of each client.

    Entry ``(i, j)`` survives iff ``f_i + d(i, j) ≤ (1+ε) · γ_j`` where
    ``γ_j = min_i (f_i + d(i, j))`` is the cheapest way to serve ``j``
    alone (the Eq. (2) quantity). The fallback is ``γ_j`` itself — the
    cost of privately opening ``j``'s best facility — so the sparse
    objective of any solution is at most a ``(1+ε)``-factor plus the
    singleton bound away from its dense value.

    A :class:`~repro.metrics.instance.ClusteringInstance` is accepted
    too (clustering has no opening costs, so no competitiveness ratio):
    the second argument is then an absolute distance **radius** — node
    pairs with ``d ≤ radius`` survive (plus the zero diagonal), and the
    fallback is the radius itself, the floor on any absent assignment's
    cost. Returns a :class:`SparseClusteringInstance`.
    """
    if isinstance(instance, ClusteringInstance):
        return _threshold_sparsify_clustering(instance, epsilon)
    eps = float(epsilon)
    if eps <= 0:
        raise InvalidParameterError(f"epsilon must be > 0, got {epsilon}")
    D = instance.D
    total = D + instance.f[:, None]
    gamma_j = total.min(axis=0)
    keep = total <= (1.0 + eps) * gamma_j[None, :]
    counts = keep.sum(axis=1)
    indptr = np.concatenate(([0], np.cumsum(counts))).astype(np.intp)
    cols = np.broadcast_to(np.arange(instance.n_clients), D.shape)
    return SparseFacilityLocationInstance(
        indptr, cols[keep], D[keep], instance.f, n_clients=instance.n_clients,
        fallback=gamma_j.copy(),
        client_weights=None if instance.has_unit_weights else instance.client_weights,
    )
