"""Instance (de)serialization.

Instances round-trip through NumPy ``.npz`` archives so benchmark
workloads can be frozen to disk and examples can ship reproducible
inputs. The format stores only validated payloads, so loading skips
re-validation of the (possibly large) triangle-inequality check.

**Schema versioning.** Every archive carries a ``version`` field
(:data:`SCHEMA_VERSION` at write time). Weighted instances additionally
write *distinct kind tags* (``…-weighted``): a pre-versioning reader
dispatching on the kind string then fails loudly with "unrecognized
instance kind" instead of silently loading the structure and dropping
the weights — which would mis-evaluate every objective. Readers here
reject archives from a newer schema, and reject kind/version
mismatches (a weighted kind without a ``version ≥ 2`` stamp, or a
legacy kind smuggling weight arrays) explicitly.

**Large instances.** ``save_instance(..., compressed=False)`` writes an
uncompressed archive — same schema, same member names, just ``ZIP_STORED``
entries — because deflate dominates save time at 1M+ points. Uncompressed
archives can additionally be *memory-mapped*: ``load_instance(path,
mmap_mode="r")`` parses each member's position inside the zip and hands
the instance ``np.memmap`` views of the raw ``.npy`` payload bytes, so
loading touches no array data until a solver reads it (the out-of-core
entry point of the shard pipeline).
"""

from __future__ import annotations

import os
import struct
import zipfile

import numpy as np
from numpy.lib import format as _npy_format

from repro.errors import InvalidInstanceError, InvalidParameterError
from repro.metrics.instance import ClusteringInstance, FacilityLocationInstance
from repro.metrics.space import MetricSpace
from repro.metrics.sparse import SparseClusteringInstance, SparseFacilityLocationInstance

#: Archive schema generation this module writes. v1: unweighted
#: instances, no version field. v2: explicit version field + weighted
#: variants under ``…-weighted`` kind tags.
SCHEMA_VERSION = 2

_KIND_FL = "facility-location"
_KIND_CLUSTER = "clustering"
_KIND_SPARSE_FL = "sparse-facility-location"
_KIND_SPARSE_CLUSTER = "sparse-clustering"
_WEIGHTED_SUFFIX = "-weighted"
#: Kinds whose payload carries a weight vector; they require v ≥ 2.
_WEIGHTED_KINDS = frozenset(
    kind + _WEIGHTED_SUFFIX
    for kind in (_KIND_FL, _KIND_CLUSTER, _KIND_SPARSE_FL, _KIND_SPARSE_CLUSTER)
)
_WEIGHT_FIELDS = ("weights", "client_weights")


def save_instance(path, instance, *, compressed: bool = True) -> None:
    """Write an instance to ``path`` as an ``.npz`` archive.

    ``compressed=False`` writes ``ZIP_STORED`` members instead of
    deflated ones — identical schema and member names, so every reader
    works on both — trading disk size for save speed (compression
    dominates wall-clock at 1M+ points) and enabling memory-mapped
    loading via ``load_instance(path, mmap_mode=...)``.
    """
    if isinstance(instance, FacilityLocationInstance):
        payload = {
            "kind": np.asarray(_KIND_FL),
            "D": instance.D,
            "f": instance.f,
        }
        if instance.metric is not None:
            payload["metric_D"] = instance.metric.D
            payload["facility_ids"] = instance.facility_ids
            payload["client_ids"] = instance.client_ids
        if not instance.has_unit_weights:
            payload["kind"] = np.asarray(_KIND_FL + _WEIGHTED_SUFFIX)
            payload["client_weights"] = instance.client_weights
    elif isinstance(instance, SparseFacilityLocationInstance):
        payload = {
            "kind": np.asarray(_KIND_SPARSE_FL),
            "indptr": instance.indptr,
            "indices": instance.indices,
            "data": instance.data,
            "f": instance.f,
            "fallback": instance.fallback,
            "n_clients": np.asarray(instance.n_clients),
        }
        if not instance.has_unit_weights:
            payload["kind"] = np.asarray(_KIND_SPARSE_FL + _WEIGHTED_SUFFIX)
            payload["client_weights"] = instance.client_weights
    elif isinstance(instance, SparseClusteringInstance):
        payload = {
            "kind": np.asarray(_KIND_SPARSE_CLUSTER),
            "indptr": instance.indptr,
            "indices": instance.indices,
            "data": instance.data,
            "fallback": instance.fallback,
            "k": np.asarray(instance.k),
        }
        if not instance.has_unit_weights:
            payload["kind"] = np.asarray(_KIND_SPARSE_CLUSTER + _WEIGHTED_SUFFIX)
            payload["weights"] = instance.weights
    elif isinstance(instance, ClusteringInstance):
        payload = {
            "kind": np.asarray(_KIND_CLUSTER),
            "D": instance.space.D,
            "k": np.asarray(instance.k),
        }
        if not instance.has_unit_weights:
            payload["kind"] = np.asarray(_KIND_CLUSTER + _WEIGHTED_SUFFIX)
            payload["weights"] = instance.weights
    else:
        raise InvalidInstanceError(f"cannot save object of type {type(instance).__name__}")
    payload["version"] = np.asarray(SCHEMA_VERSION)
    if compressed:
        np.savez_compressed(path, **payload)
    else:
        np.savez(path, **payload)


def _check_schema(data, kind: str, path) -> None:
    """Reject version-tag mismatches before any payload is touched."""
    version = int(data["version"]) if "version" in data else 1
    if version > SCHEMA_VERSION:
        raise InvalidInstanceError(
            f"{path} was written by archive schema v{version}; this reader "
            f"supports ≤ v{SCHEMA_VERSION} — upgrade repro to load it"
        )
    weighted_kind = kind in _WEIGHTED_KINDS
    if weighted_kind and version < 2:
        raise InvalidInstanceError(
            f"{path} declares weighted kind {kind!r} but schema v{version} "
            "(< 2) has no weighted payloads: the version tag and the kind "
            "tag disagree — the archive is corrupt or hand-edited"
        )
    if weighted_kind:
        base = kind[: -len(_WEIGHTED_SUFFIX)]
        expected = "client_weights" if base in (_KIND_FL, _KIND_SPARSE_FL) else "weights"
        if expected not in data:
            raise InvalidInstanceError(
                f"{path} declares weighted kind {kind!r} but carries no "
                f"{expected!r} array: loading it would silently produce a "
                "unit-weight instance (kind/payload mismatch)"
            )
        stray = [f for f in _WEIGHT_FIELDS if f != expected and f in data]
        if stray:
            raise InvalidInstanceError(
                f"{path} carries {stray[0]!r} under kind {kind!r}, which "
                f"stores its weights as {expected!r}; refusing to load an "
                "archive whose weights would be silently dropped"
            )
    elif any(fld in data for fld in _WEIGHT_FIELDS):
        raise InvalidInstanceError(
            f"{path} carries a weight vector under unweighted kind {kind!r}; "
            "refusing to load an archive whose weights would be silently "
            "dropped (kind/payload mismatch)"
        )


#: ``mmap_mode`` values accepted by :func:`load_instance`. ``r+`` is
#: deliberately rejected: the maps point *into the archive file*, so a
#: writable map would corrupt the zip structure around the payload.
_MMAP_MODES = ("r", "c")


def _read_npy_header(fh):
    """``(shape, fortran, dtype, header_size)`` of the ``.npy`` stream
    at ``fh``'s current position (consumes exactly the header)."""
    version = _npy_format.read_magic(fh)
    if version == (1, 0):
        shape, fortran, dtype = _npy_format.read_array_header_1_0(fh)
    elif version == (2, 0):
        shape, fortran, dtype = _npy_format.read_array_header_2_0(fh)
    else:  # pragma: no cover - numpy writes 1.0/2.0 for plain arrays
        raise InvalidInstanceError(
            f"unsupported .npy format version {version} for memory-mapping"
        )
    return shape, fortran, dtype, fh.tell()


def _mmap_npz_members(path, mmap_mode: str) -> dict:
    """Memory-map every array member of an *uncompressed* ``.npz``.

    ``np.load``'s ``mmap_mode`` silently ignores zip archives, so this
    walks the archive itself: for each ``ZIP_STORED`` member, the
    payload's absolute file offset is the member's local-header offset
    plus the (30-byte fixed + variable name/extra) local header — read
    from the *local* header, whose extra field legitimately differs
    from the central directory's — plus the ``.npy`` header; the array
    is then an ``np.memmap`` straight into the archive file. 0-d
    members (kind/version/scalars) are read eagerly — there is nothing
    to stream.
    """
    out: dict = {}
    with zipfile.ZipFile(path) as zf, open(path, "rb") as raw:
        for info in zf.infolist():
            if not info.filename.endswith(".npy"):  # pragma: no cover - defensive
                continue
            name = info.filename[: -len(".npy")]
            if info.compress_type != zipfile.ZIP_STORED:
                raise InvalidInstanceError(
                    f"{path} member {info.filename!r} is compressed and cannot "
                    "be memory-mapped; rewrite the archive with "
                    "save_instance(..., compressed=False) or load without "
                    "mmap_mode"
                )
            with zf.open(info) as fh:
                shape, fortran, dtype, header_size = _read_npy_header(fh)
            if dtype.hasobject:  # pragma: no cover - schema stores no objects
                raise InvalidInstanceError(
                    f"{path} member {info.filename!r} holds objects; refusing "
                    "to memory-map"
                )
            if shape == ():
                with zf.open(info) as fh:
                    out[name] = _npy_format.read_array(fh, allow_pickle=False)
                continue
            raw.seek(info.header_offset + 26)
            fname_len, extra_len = struct.unpack("<HH", raw.read(4))
            data_offset = (
                info.header_offset + 30 + fname_len + extra_len + header_size
            )
            out[name] = np.memmap(
                path,
                dtype=dtype,
                shape=shape,
                order="F" if fortran else "C",
                mode=mmap_mode,
                offset=data_offset,
            )
    return out


def load_instance(path, *, mmap_mode: str | None = None):
    """Read an instance previously written by :func:`save_instance`.

    ``mmap_mode`` (``"r"`` read-only or ``"c"`` copy-on-write) hands
    the instance ``np.memmap`` views into the archive instead of
    resident arrays — no array data is read until used. Requires an
    uncompressed archive (``save_instance(..., compressed=False)``);
    a compressed one is rejected with instructions, never silently
    loaded resident.
    """
    if mmap_mode is not None:
        if mmap_mode not in _MMAP_MODES:
            raise InvalidParameterError(
                f"mmap_mode must be one of {_MMAP_MODES} (or None), "
                f"got {mmap_mode!r}"
            )
        if not isinstance(path, (str, os.PathLike)):
            raise InvalidParameterError(
                "mmap_mode requires a filesystem path, not a file object"
            )
        return _build_instance(_mmap_npz_members(path, mmap_mode), path)
    with np.load(path, allow_pickle=False) as data:
        return _build_instance(data, path)


def _build_instance(data, path):
    """Shared kind dispatch over a mapping of payload arrays (an open
    ``NpzFile`` or the memmap-member dict)."""
    kind = str(data["kind"])
    _check_schema(data, kind, path)
    base_kind = kind[: -len(_WEIGHTED_SUFFIX)] if kind in _WEIGHTED_KINDS else kind
    weights = data["weights"] if "weights" in data else None
    client_weights = data["client_weights"] if "client_weights" in data else None
    if base_kind == _KIND_FL:
        if "metric_D" in data:
            metric = MetricSpace(data["metric_D"], validate=False)
            return FacilityLocationInstance(
                data["D"],
                data["f"],
                metric=metric,
                facility_ids=data["facility_ids"],
                client_ids=data["client_ids"],
                client_weights=client_weights,
            )
        return FacilityLocationInstance(
            data["D"], data["f"], client_weights=client_weights
        )
    if base_kind == _KIND_SPARSE_FL:
        return SparseFacilityLocationInstance(
            data["indptr"],
            data["indices"],
            data["data"],
            data["f"],
            n_clients=int(data["n_clients"]),
            fallback=data["fallback"],
            client_weights=client_weights,
        )
    if base_kind == _KIND_SPARSE_CLUSTER:
        return SparseClusteringInstance(
            data["indptr"],
            data["indices"],
            data["data"],
            int(data["k"]),
            fallback=data["fallback"],
            weights=weights,
        )
    if base_kind == _KIND_CLUSTER:
        return ClusteringInstance(
            MetricSpace(data["D"], validate=False), int(data["k"]), weights=weights
        )
    raise InvalidInstanceError(f"unrecognized instance kind {kind!r} in {path}")
