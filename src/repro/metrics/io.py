"""Instance (de)serialization.

Instances round-trip through NumPy ``.npz`` archives so benchmark
workloads can be frozen to disk and examples can ship reproducible
inputs. The format stores only validated payloads, so loading skips
re-validation of the (possibly large) triangle-inequality check.

**Schema versioning.** Every archive carries a ``version`` field
(:data:`SCHEMA_VERSION` at write time). Weighted instances additionally
write *distinct kind tags* (``…-weighted``): a pre-versioning reader
dispatching on the kind string then fails loudly with "unrecognized
instance kind" instead of silently loading the structure and dropping
the weights — which would mis-evaluate every objective. Readers here
reject archives from a newer schema, and reject kind/version
mismatches (a weighted kind without a ``version ≥ 2`` stamp, or a
legacy kind smuggling weight arrays) explicitly.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidInstanceError
from repro.metrics.instance import ClusteringInstance, FacilityLocationInstance
from repro.metrics.space import MetricSpace
from repro.metrics.sparse import SparseClusteringInstance, SparseFacilityLocationInstance

#: Archive schema generation this module writes. v1: unweighted
#: instances, no version field. v2: explicit version field + weighted
#: variants under ``…-weighted`` kind tags.
SCHEMA_VERSION = 2

_KIND_FL = "facility-location"
_KIND_CLUSTER = "clustering"
_KIND_SPARSE_FL = "sparse-facility-location"
_KIND_SPARSE_CLUSTER = "sparse-clustering"
_WEIGHTED_SUFFIX = "-weighted"
#: Kinds whose payload carries a weight vector; they require v ≥ 2.
_WEIGHTED_KINDS = frozenset(
    kind + _WEIGHTED_SUFFIX
    for kind in (_KIND_FL, _KIND_CLUSTER, _KIND_SPARSE_FL, _KIND_SPARSE_CLUSTER)
)
_WEIGHT_FIELDS = ("weights", "client_weights")


def save_instance(path, instance) -> None:
    """Write an instance to ``path`` as an ``.npz`` archive."""
    if isinstance(instance, FacilityLocationInstance):
        payload = {
            "kind": np.asarray(_KIND_FL),
            "D": instance.D,
            "f": instance.f,
        }
        if instance.metric is not None:
            payload["metric_D"] = instance.metric.D
            payload["facility_ids"] = instance.facility_ids
            payload["client_ids"] = instance.client_ids
        if not instance.has_unit_weights:
            payload["kind"] = np.asarray(_KIND_FL + _WEIGHTED_SUFFIX)
            payload["client_weights"] = instance.client_weights
    elif isinstance(instance, SparseFacilityLocationInstance):
        payload = {
            "kind": np.asarray(_KIND_SPARSE_FL),
            "indptr": instance.indptr,
            "indices": instance.indices,
            "data": instance.data,
            "f": instance.f,
            "fallback": instance.fallback,
            "n_clients": np.asarray(instance.n_clients),
        }
        if not instance.has_unit_weights:
            payload["kind"] = np.asarray(_KIND_SPARSE_FL + _WEIGHTED_SUFFIX)
            payload["client_weights"] = instance.client_weights
    elif isinstance(instance, SparseClusteringInstance):
        payload = {
            "kind": np.asarray(_KIND_SPARSE_CLUSTER),
            "indptr": instance.indptr,
            "indices": instance.indices,
            "data": instance.data,
            "fallback": instance.fallback,
            "k": np.asarray(instance.k),
        }
        if not instance.has_unit_weights:
            payload["kind"] = np.asarray(_KIND_SPARSE_CLUSTER + _WEIGHTED_SUFFIX)
            payload["weights"] = instance.weights
    elif isinstance(instance, ClusteringInstance):
        payload = {
            "kind": np.asarray(_KIND_CLUSTER),
            "D": instance.space.D,
            "k": np.asarray(instance.k),
        }
        if not instance.has_unit_weights:
            payload["kind"] = np.asarray(_KIND_CLUSTER + _WEIGHTED_SUFFIX)
            payload["weights"] = instance.weights
    else:
        raise InvalidInstanceError(f"cannot save object of type {type(instance).__name__}")
    payload["version"] = np.asarray(SCHEMA_VERSION)
    np.savez_compressed(path, **payload)


def _check_schema(data, kind: str, path) -> None:
    """Reject version-tag mismatches before any payload is touched."""
    version = int(data["version"]) if "version" in data else 1
    if version > SCHEMA_VERSION:
        raise InvalidInstanceError(
            f"{path} was written by archive schema v{version}; this reader "
            f"supports ≤ v{SCHEMA_VERSION} — upgrade repro to load it"
        )
    weighted_kind = kind in _WEIGHTED_KINDS
    if weighted_kind and version < 2:
        raise InvalidInstanceError(
            f"{path} declares weighted kind {kind!r} but schema v{version} "
            "(< 2) has no weighted payloads: the version tag and the kind "
            "tag disagree — the archive is corrupt or hand-edited"
        )
    if weighted_kind:
        base = kind[: -len(_WEIGHTED_SUFFIX)]
        expected = "client_weights" if base in (_KIND_FL, _KIND_SPARSE_FL) else "weights"
        if expected not in data:
            raise InvalidInstanceError(
                f"{path} declares weighted kind {kind!r} but carries no "
                f"{expected!r} array: loading it would silently produce a "
                "unit-weight instance (kind/payload mismatch)"
            )
        stray = [f for f in _WEIGHT_FIELDS if f != expected and f in data]
        if stray:
            raise InvalidInstanceError(
                f"{path} carries {stray[0]!r} under kind {kind!r}, which "
                f"stores its weights as {expected!r}; refusing to load an "
                "archive whose weights would be silently dropped"
            )
    elif any(fld in data for fld in _WEIGHT_FIELDS):
        raise InvalidInstanceError(
            f"{path} carries a weight vector under unweighted kind {kind!r}; "
            "refusing to load an archive whose weights would be silently "
            "dropped (kind/payload mismatch)"
        )


def load_instance(path):
    """Read an instance previously written by :func:`save_instance`."""
    with np.load(path, allow_pickle=False) as data:
        kind = str(data["kind"])
        _check_schema(data, kind, path)
        base_kind = kind[: -len(_WEIGHTED_SUFFIX)] if kind in _WEIGHTED_KINDS else kind
        weights = data["weights"] if "weights" in data else None
        client_weights = data["client_weights"] if "client_weights" in data else None
        if base_kind == _KIND_FL:
            if "metric_D" in data:
                metric = MetricSpace(data["metric_D"], validate=False)
                return FacilityLocationInstance(
                    data["D"],
                    data["f"],
                    metric=metric,
                    facility_ids=data["facility_ids"],
                    client_ids=data["client_ids"],
                    client_weights=client_weights,
                )
            return FacilityLocationInstance(
                data["D"], data["f"], client_weights=client_weights
            )
        if base_kind == _KIND_SPARSE_FL:
            return SparseFacilityLocationInstance(
                data["indptr"],
                data["indices"],
                data["data"],
                data["f"],
                n_clients=int(data["n_clients"]),
                fallback=data["fallback"],
                client_weights=client_weights,
            )
        if base_kind == _KIND_SPARSE_CLUSTER:
            return SparseClusteringInstance(
                data["indptr"],
                data["indices"],
                data["data"],
                int(data["k"]),
                fallback=data["fallback"],
                weights=weights,
            )
        if base_kind == _KIND_CLUSTER:
            return ClusteringInstance(
                MetricSpace(data["D"], validate=False), int(data["k"]), weights=weights
            )
    raise InvalidInstanceError(f"unrecognized instance kind {kind!r} in {path}")
