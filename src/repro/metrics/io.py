"""Instance (de)serialization.

Instances round-trip through NumPy ``.npz`` archives so benchmark
workloads can be frozen to disk and examples can ship reproducible
inputs. The format stores only validated payloads, so loading skips
re-validation of the (possibly large) triangle-inequality check.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidInstanceError
from repro.metrics.instance import ClusteringInstance, FacilityLocationInstance
from repro.metrics.space import MetricSpace
from repro.metrics.sparse import SparseClusteringInstance, SparseFacilityLocationInstance

_KIND_FL = "facility-location"
_KIND_CLUSTER = "clustering"
_KIND_SPARSE_FL = "sparse-facility-location"
_KIND_SPARSE_CLUSTER = "sparse-clustering"


def save_instance(path, instance) -> None:
    """Write an instance to ``path`` as an ``.npz`` archive."""
    if isinstance(instance, FacilityLocationInstance):
        payload = {
            "kind": np.asarray(_KIND_FL),
            "D": instance.D,
            "f": instance.f,
        }
        if instance.metric is not None:
            payload["metric_D"] = instance.metric.D
            payload["facility_ids"] = instance.facility_ids
            payload["client_ids"] = instance.client_ids
        np.savez_compressed(path, **payload)
    elif isinstance(instance, SparseFacilityLocationInstance):
        np.savez_compressed(
            path,
            kind=np.asarray(_KIND_SPARSE_FL),
            indptr=instance.indptr,
            indices=instance.indices,
            data=instance.data,
            f=instance.f,
            fallback=instance.fallback,
            n_clients=np.asarray(instance.n_clients),
        )
    elif isinstance(instance, SparseClusteringInstance):
        np.savez_compressed(
            path,
            kind=np.asarray(_KIND_SPARSE_CLUSTER),
            indptr=instance.indptr,
            indices=instance.indices,
            data=instance.data,
            fallback=instance.fallback,
            k=np.asarray(instance.k),
        )
    elif isinstance(instance, ClusteringInstance):
        np.savez_compressed(
            path,
            kind=np.asarray(_KIND_CLUSTER),
            D=instance.space.D,
            k=np.asarray(instance.k),
        )
    else:
        raise InvalidInstanceError(f"cannot save object of type {type(instance).__name__}")


def load_instance(path):
    """Read an instance previously written by :func:`save_instance`."""
    with np.load(path, allow_pickle=False) as data:
        kind = str(data["kind"])
        if kind == _KIND_FL:
            if "metric_D" in data:
                metric = MetricSpace(data["metric_D"], validate=False)
                return FacilityLocationInstance(
                    data["D"],
                    data["f"],
                    metric=metric,
                    facility_ids=data["facility_ids"],
                    client_ids=data["client_ids"],
                )
            return FacilityLocationInstance(data["D"], data["f"])
        if kind == _KIND_SPARSE_FL:
            return SparseFacilityLocationInstance(
                data["indptr"],
                data["indices"],
                data["data"],
                data["f"],
                n_clients=int(data["n_clients"]),
                fallback=data["fallback"],
            )
        if kind == _KIND_SPARSE_CLUSTER:
            return SparseClusteringInstance(
                data["indptr"],
                data["indices"],
                data["data"],
                int(data["k"]),
                fallback=data["fallback"],
            )
        if kind == _KIND_CLUSTER:
            return ClusteringInstance(MetricSpace(data["D"], validate=False), int(data["k"]))
    raise InvalidInstanceError(f"unrecognized instance kind {kind!r} in {path}")
