"""Problem-instance objects for the four facility-location problems.

Two instance shapes cover the whole paper:

* :class:`FacilityLocationInstance` — facilities with opening costs and
  clients, for (metric) uncapacitated facility location (§4, §5, §6.2).
  The core data is the ``n_f × n_c`` distance matrix ``D[i, j] = d(i, j)``
  and cost vector ``f``; ``m = n_f · n_c`` is the paper's input size.
* :class:`ClusteringInstance` — a node set where every node is a client
  and a candidate center, plus the budget ``k``, for k-median, k-means,
  and k-center (§6.1, §7).

Both evaluate their own objectives (Eq. 1 and the §2 definitions), so a
"solution" anywhere in this library is simply a set of open facilities
or centers — assignments are always implied (closest open facility).
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidInstanceError, InvalidParameterError
from repro.metrics.space import MetricSpace


def _as_open_indices(opened, n: int) -> np.ndarray:
    """Normalize a facility set given as indices or boolean mask."""
    arr = np.asarray(opened)
    if arr.dtype == bool:
        if arr.shape != (n,):
            raise InvalidParameterError(f"boolean facility mask must have shape ({n},), got {arr.shape}")
        idx = np.flatnonzero(arr)
    else:
        idx = np.unique(arr.astype(int))
        if idx.size and (idx.min() < 0 or idx.max() >= n):
            raise InvalidParameterError(f"facility index out of range [0, {n}): {idx}")
    if idx.size == 0:
        raise InvalidParameterError("a solution must open at least one facility")
    return idx


class FacilityLocationInstance:
    """A metric uncapacitated facility-location instance.

    Parameters
    ----------
    D:
        ``n_f × n_c`` matrix of facility-to-client distances.
    f:
        Length-``n_f`` vector of non-negative opening costs.
    metric / facility_ids / client_ids:
        Optional underlying :class:`MetricSpace` with the index sets
        ``F`` and ``C``, for analyses needing client–client or
        facility–facility distances. ``D`` must equal the corresponding
        block of the metric.
    """

    __slots__ = ("_D", "_f", "metric", "facility_ids", "client_ids")

    def __init__(
        self,
        D: np.ndarray,
        f: np.ndarray,
        *,
        metric: MetricSpace | None = None,
        facility_ids: np.ndarray | None = None,
        client_ids: np.ndarray | None = None,
    ):
        D = np.asarray(D, dtype=float)
        f = np.asarray(f, dtype=float)
        if D.ndim != 2:
            raise InvalidInstanceError(f"D must be 2-D (facilities × clients), got ndim={D.ndim}")
        if D.shape[0] == 0 or D.shape[1] == 0:
            raise InvalidInstanceError(f"instance needs ≥1 facility and ≥1 client, got D shape {D.shape}")
        if f.shape != (D.shape[0],):
            raise InvalidInstanceError(f"f must have shape ({D.shape[0]},), got {f.shape}")
        if not (np.all(np.isfinite(D)) and np.all(np.isfinite(f))):
            raise InvalidInstanceError("distances and costs must be finite")
        if np.any(D < 0) or np.any(f < 0):
            raise InvalidInstanceError("distances and opening costs must be non-negative")
        if (metric is None) != (facility_ids is None) or (metric is None) != (client_ids is None):
            raise InvalidInstanceError("metric, facility_ids, client_ids must be given together")
        if metric is not None:
            facility_ids = np.asarray(facility_ids, dtype=int)
            client_ids = np.asarray(client_ids, dtype=int)
            block = metric.submatrix(facility_ids, client_ids)
            if block.shape != D.shape or np.max(np.abs(block - D)) > 1e-9:
                raise InvalidInstanceError("D disagrees with the underlying metric block")
        self._D = D
        self._f = f
        self._D.setflags(write=False)
        self._f.setflags(write=False)
        self.metric = metric
        self.facility_ids = facility_ids
        self.client_ids = client_ids

    @classmethod
    def from_metric(cls, metric: MetricSpace, facility_ids, client_ids, f) -> "FacilityLocationInstance":
        """Carve an instance out of a metric space by index sets."""
        facility_ids = np.asarray(facility_ids, dtype=int)
        client_ids = np.asarray(client_ids, dtype=int)
        D = metric.submatrix(facility_ids, client_ids)
        return cls(D, f, metric=metric, facility_ids=facility_ids, client_ids=client_ids)

    # -- shape ------------------------------------------------------------

    @property
    def D(self) -> np.ndarray:
        """Facility-to-client distances, shape ``(n_f, n_c)`` (read-only)."""
        return self._D

    @property
    def f(self) -> np.ndarray:
        """Opening costs, shape ``(n_f,)`` (read-only)."""
        return self._f

    @property
    def n_facilities(self) -> int:
        """Number of candidate facilities ``|F|``."""
        return self._D.shape[0]

    @property
    def n_clients(self) -> int:
        """Number of clients ``|C|``."""
        return self._D.shape[1]

    @property
    def m(self) -> int:
        """The paper's input-size parameter ``m = n_f · n_c``."""
        return self._D.size

    # -- objective (Eq. 1) ---------------------------------------------------

    def connection_distances(self, opened) -> np.ndarray:
        """``d(j, F_S)`` for every client ``j`` given open set ``F_S``."""
        idx = _as_open_indices(opened, self.n_facilities)
        return np.min(self._D[idx, :], axis=0)

    def assignment(self, opened) -> np.ndarray:
        """Closest-open-facility assignment (facility index per client)."""
        idx = _as_open_indices(opened, self.n_facilities)
        return idx[np.argmin(self._D[idx, :], axis=0)]

    def facility_cost(self, opened) -> float:
        """Opening-cost part of Eq. (1): ``Σ_{i∈F_S} f_i``."""
        idx = _as_open_indices(opened, self.n_facilities)
        return float(np.sum(self._f[idx]))

    def connection_cost(self, opened) -> float:
        """Connection part of Eq. (1): ``Σ_j d(j, F_S)``."""
        return float(np.sum(self.connection_distances(opened)))

    def cost(self, opened) -> float:
        """The facility-location objective ``Σ f_i + Σ_j d(j, F_S)``."""
        return self.facility_cost(opened) + self.connection_cost(opened)

    def __repr__(self) -> str:
        return f"FacilityLocationInstance(n_f={self.n_facilities}, n_c={self.n_clients})"


class ClusteringInstance:
    """A k-median / k-means / k-center instance over a metric space.

    Every node is simultaneously a client and a candidate center, per
    the paper's §2 conventions for these problems.
    """

    __slots__ = ("space", "k")

    def __init__(self, space: MetricSpace, k: int):
        if not isinstance(space, MetricSpace):
            raise InvalidInstanceError("ClusteringInstance requires a MetricSpace")
        k = int(k)
        if not 1 <= k <= space.n:
            raise InvalidParameterError(f"k must be in [1, {space.n}], got {k}")
        self.space = space
        self.k = k

    @property
    def n(self) -> int:
        """Number of nodes (each is a client and a candidate center)."""
        return self.space.n

    @property
    def D(self) -> np.ndarray:
        """Full ``n × n`` distance matrix (read-only)."""
        return self.space.D

    # -- objectives -----------------------------------------------------------

    def _center_distances(self, centers) -> np.ndarray:
        centers = _as_open_indices(centers, self.n)
        return np.min(self.space.D[:, centers], axis=1)

    def check_budget(self, centers) -> np.ndarray:
        """Validate ``|centers| ≤ k``; return the center index array."""
        idx = _as_open_indices(centers, self.n)
        if idx.size > self.k:
            raise InvalidParameterError(f"solution opens {idx.size} centers but k={self.k}")
        return idx

    def kmedian_cost(self, centers) -> float:
        """``Σ_j d(j, F_S)`` — the k-median objective."""
        return float(np.sum(self._center_distances(centers)))

    def kmeans_cost(self, centers) -> float:
        """``Σ_j d²(j, F_S)`` — the k-means objective (general metric)."""
        d = self._center_distances(centers)
        return float(np.sum(d * d))

    def kcenter_cost(self, centers) -> float:
        """``max_j d(j, F_S)`` — the k-center (bottleneck) objective."""
        return float(np.max(self._center_distances(centers)))

    def __repr__(self) -> str:
        return f"ClusteringInstance(n={self.n}, k={self.k})"
