"""Problem-instance objects for the four facility-location problems.

Two instance shapes cover the whole paper:

* :class:`FacilityLocationInstance` — facilities with opening costs and
  clients, for (metric) uncapacitated facility location (§4, §5, §6.2).
  The core data is the ``n_f × n_c`` distance matrix ``D[i, j] = d(i, j)``
  and cost vector ``f``; ``m = n_f · n_c`` is the paper's input size.
* :class:`ClusteringInstance` — a node set where every node is a client
  and a candidate center, plus the budget ``k``, for k-median, k-means,
  and k-center (§6.1, §7).

Both evaluate their own objectives (Eq. 1 and the §2 definitions), so a
"solution" anywhere in this library is simply a set of open facilities
or centers — assignments are always implied (closest open facility).
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidInstanceError, InvalidParameterError
from repro.metrics.space import MetricSpace


def _check_weights(weights, n: int, *, name: str = "weights") -> tuple:
    """Validate a point/client weight vector.

    Returns ``(weights_or_None, is_unit)``. ``None`` means "unit
    weights" (the default); an explicit all-ones vector is stored but
    flagged unit so solvers can take the exact unweighted code path —
    the byte-identical guarantee the weighted subsystem rests on.
    Weights are multiplicities: ``w_j`` co-located copies of point
    ``j`` (possibly fractional, from coreset aggregation), so they must
    be strictly positive and finite.
    """
    if weights is None:
        return None, True
    weights = np.asarray(weights, dtype=float)
    if weights.shape != (n,):
        raise InvalidInstanceError(f"{name} must have shape ({n},), got {weights.shape}")
    if not np.all(np.isfinite(weights)):
        raise InvalidInstanceError(f"{name} must be finite")
    if weights.size and weights.min() <= 0:
        raise InvalidInstanceError(f"{name} must be strictly positive")
    weights.setflags(write=False)
    return weights, bool(np.all(weights == 1.0))


def _as_open_indices(opened, n: int) -> np.ndarray:
    """Normalize a facility set given as indices or boolean mask."""
    arr = np.asarray(opened)
    if arr.dtype == bool:
        if arr.shape != (n,):
            raise InvalidParameterError(f"boolean facility mask must have shape ({n},), got {arr.shape}")
        idx = np.flatnonzero(arr)
    else:
        idx = np.unique(arr.astype(int))
        if idx.size and (idx.min() < 0 or idx.max() >= n):
            raise InvalidParameterError(f"facility index out of range [0, {n}): {idx}")
    if idx.size == 0:
        raise InvalidParameterError("a solution must open at least one facility")
    return idx


class FacilityLocationInstance:
    """A metric uncapacitated facility-location instance.

    Parameters
    ----------
    D:
        ``n_f × n_c`` matrix of facility-to-client distances.
    f:
        Length-``n_f`` vector of non-negative opening costs.
    metric / facility_ids / client_ids:
        Optional underlying :class:`MetricSpace` with the index sets
        ``F`` and ``C``, for analyses needing client–client or
        facility–facility distances. ``D`` must equal the corresponding
        block of the metric.
    client_weights:
        Optional length-``n_c`` strictly positive multiplicities:
        client ``j`` stands for ``w_j`` co-located demand points (the
        shard-and-conquer coreset representation). ``None`` (default)
        means unit weights; solvers then take the exact unweighted code
        path, byte-identical to instances built without the parameter.
    """

    __slots__ = ("_D", "_f", "metric", "facility_ids", "client_ids", "_client_weights", "_unit_weights")

    def __init__(
        self,
        D: np.ndarray,
        f: np.ndarray,
        *,
        metric: MetricSpace | None = None,
        facility_ids: np.ndarray | None = None,
        client_ids: np.ndarray | None = None,
        client_weights: np.ndarray | None = None,
    ):
        D = np.asarray(D, dtype=float)
        f = np.asarray(f, dtype=float)
        if D.ndim != 2:
            raise InvalidInstanceError(f"D must be 2-D (facilities × clients), got ndim={D.ndim}")
        if D.shape[0] == 0 or D.shape[1] == 0:
            raise InvalidInstanceError(f"instance needs ≥1 facility and ≥1 client, got D shape {D.shape}")
        if f.shape != (D.shape[0],):
            raise InvalidInstanceError(f"f must have shape ({D.shape[0]},), got {f.shape}")
        if not (np.all(np.isfinite(D)) and np.all(np.isfinite(f))):
            raise InvalidInstanceError("distances and costs must be finite")
        if np.any(D < 0) or np.any(f < 0):
            raise InvalidInstanceError("distances and opening costs must be non-negative")
        if (metric is None) != (facility_ids is None) or (metric is None) != (client_ids is None):
            raise InvalidInstanceError("metric, facility_ids, client_ids must be given together")
        if metric is not None:
            facility_ids = np.asarray(facility_ids, dtype=int)
            client_ids = np.asarray(client_ids, dtype=int)
            block = metric.submatrix(facility_ids, client_ids)
            if block.shape != D.shape or np.max(np.abs(block - D)) > 1e-9:
                raise InvalidInstanceError("D disagrees with the underlying metric block")
        self._D = D
        self._f = f
        self._D.setflags(write=False)
        self._f.setflags(write=False)
        self.metric = metric
        self.facility_ids = facility_ids
        self.client_ids = client_ids
        self._client_weights, self._unit_weights = _check_weights(
            client_weights, D.shape[1], name="client_weights"
        )

    @classmethod
    def from_metric(
        cls, metric: MetricSpace, facility_ids, client_ids, f, *, client_weights=None
    ) -> "FacilityLocationInstance":
        """Carve an instance out of a metric space by index sets."""
        facility_ids = np.asarray(facility_ids, dtype=int)
        client_ids = np.asarray(client_ids, dtype=int)
        D = metric.submatrix(facility_ids, client_ids)
        return cls(
            D, f, metric=metric, facility_ids=facility_ids, client_ids=client_ids,
            client_weights=client_weights,
        )

    # -- shape ------------------------------------------------------------

    @property
    def D(self) -> np.ndarray:
        """Facility-to-client distances, shape ``(n_f, n_c)`` (read-only)."""
        return self._D

    @property
    def f(self) -> np.ndarray:
        """Opening costs, shape ``(n_f,)`` (read-only)."""
        return self._f

    @property
    def n_facilities(self) -> int:
        """Number of candidate facilities ``|F|``."""
        return self._D.shape[0]

    @property
    def n_clients(self) -> int:
        """Number of clients ``|C|``."""
        return self._D.shape[1]

    @property
    def m(self) -> int:
        """The paper's input-size parameter ``m = n_f · n_c``."""
        return self._D.size

    @property
    def client_weights(self) -> np.ndarray:
        """Per-client multiplicities, shape ``(n_c,)`` (ones if unset)."""
        if self._client_weights is None:
            return np.ones(self.n_clients)
        return self._client_weights

    @property
    def has_unit_weights(self) -> bool:
        """True when every client weight is 1 (solvers then take the
        exact unweighted code path)."""
        return self._unit_weights

    @property
    def total_weight(self) -> float:
        """``Σ_j w_j`` — the represented demand (``n_c`` when unit)."""
        if self._client_weights is None:
            return float(self.n_clients)
        return float(self._client_weights.sum())

    # -- objective (Eq. 1) ---------------------------------------------------

    def connection_distances(self, opened) -> np.ndarray:
        """``d(j, F_S)`` for every client ``j`` given open set ``F_S``."""
        idx = _as_open_indices(opened, self.n_facilities)
        return np.min(self._D[idx, :], axis=0)

    def assignment(self, opened) -> np.ndarray:
        """Closest-open-facility assignment (facility index per client)."""
        idx = _as_open_indices(opened, self.n_facilities)
        return idx[np.argmin(self._D[idx, :], axis=0)]

    def facility_cost(self, opened) -> float:
        """Opening-cost part of Eq. (1): ``Σ_{i∈F_S} f_i``."""
        idx = _as_open_indices(opened, self.n_facilities)
        return float(np.sum(self._f[idx]))

    def connection_cost(self, opened) -> float:
        """Connection part of Eq. (1): ``Σ_j w_j · d(j, F_S)``."""
        d = self.connection_distances(opened)
        if self._unit_weights:
            return float(np.sum(d))
        return float(np.sum(self._client_weights * d))

    def cost(self, opened) -> float:
        """The facility-location objective ``Σ f_i + Σ_j w_j d(j, F_S)``."""
        return self.facility_cost(opened) + self.connection_cost(opened)

    def __repr__(self) -> str:
        return f"FacilityLocationInstance(n_f={self.n_facilities}, n_c={self.n_clients})"


class ClusteringInstance:
    """A k-median / k-means / k-center instance over a metric space.

    Every node is simultaneously a client and a candidate center, per
    the paper's §2 conventions for these problems.

    ``weights`` (optional, strictly positive) are node multiplicities:
    node ``j`` stands for ``w_j`` co-located demand points, the
    representation shard-and-conquer coresets merge into. They scale
    the k-median/k-means objectives (``Σ w_j d^p``) and leave the
    bottleneck k-center objective unchanged (the farthest of ``w_j``
    co-located copies is the copy itself). ``None`` means unit weights,
    and solvers then run the exact unweighted code path.
    """

    __slots__ = ("space", "k", "_weights", "_unit_weights")

    def __init__(self, space: MetricSpace, k: int, *, weights=None):
        if not isinstance(space, MetricSpace):
            raise InvalidInstanceError("ClusteringInstance requires a MetricSpace")
        k = int(k)
        if not 1 <= k <= space.n:
            raise InvalidParameterError(f"k must be in [1, {space.n}], got {k}")
        self.space = space
        self.k = k
        self._weights, self._unit_weights = _check_weights(weights, space.n)

    @property
    def n(self) -> int:
        """Number of nodes (each is a client and a candidate center)."""
        return self.space.n

    @property
    def D(self) -> np.ndarray:
        """Full ``n × n`` distance matrix (read-only)."""
        return self.space.D

    @property
    def weights(self) -> np.ndarray:
        """Per-node multiplicities, shape ``(n,)`` (ones if unset)."""
        if self._weights is None:
            return np.ones(self.n)
        return self._weights

    @property
    def has_unit_weights(self) -> bool:
        """True when every node weight is 1 (solvers then take the
        exact unweighted code path)."""
        return self._unit_weights

    @property
    def total_weight(self) -> float:
        """``Σ_j w_j`` — the represented demand (``n`` when unit)."""
        if self._weights is None:
            return float(self.n)
        return float(self._weights.sum())

    # -- objectives -----------------------------------------------------------

    def _center_distances(self, centers) -> np.ndarray:
        centers = _as_open_indices(centers, self.n)
        return np.min(self.space.D[:, centers], axis=1)

    def check_budget(self, centers) -> np.ndarray:
        """Validate ``|centers| ≤ k``; return the center index array."""
        idx = _as_open_indices(centers, self.n)
        if idx.size > self.k:
            raise InvalidParameterError(f"solution opens {idx.size} centers but k={self.k}")
        return idx

    def kmedian_cost(self, centers) -> float:
        """``Σ_j w_j · d(j, F_S)`` — the k-median objective."""
        d = self._center_distances(centers)
        if self._unit_weights:
            return float(np.sum(d))
        return float(np.sum(self._weights * d))

    def kmeans_cost(self, centers) -> float:
        """``Σ_j w_j · d²(j, F_S)`` — the k-means objective (general metric)."""
        d = self._center_distances(centers)
        if self._unit_weights:
            return float(np.sum(d * d))
        return float(np.sum(self._weights * d * d))

    def kcenter_cost(self, centers) -> float:
        """``max_j d(j, F_S)`` — the k-center (bottleneck) objective.

        Weight-invariant: multiplicities duplicate points in place, and
        the max over co-located copies is the copy itself.
        """
        return float(np.max(self._center_distances(centers)))

    def __repr__(self) -> str:
        return f"ClusteringInstance(n={self.n}, k={self.k})"
