"""Workload generators for benchmarks, tests, and examples.

The paper proves worst-case guarantees over *all* metric instances and
defers experiments; these generators provide the synthetic workloads the
reproduction measures on. They cover the motivating domains from the
paper's introduction (clustering for machine learning, graph metrics for
network design) plus adversarial shapes that stress the ``(1+ε)``-slack
mechanism (many near-tied stars).

All generators take a ``seed`` and are fully deterministic given one.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError
from repro.metrics.instance import ClusteringInstance, FacilityLocationInstance
from repro.metrics.space import MetricSpace
from repro.util.rng import ensure_rng
from repro.util.validation import check_k, check_positive_int


# --------------------------------------------------------------------------
# Point-set metric spaces (for clustering problems)
# --------------------------------------------------------------------------

def euclidean_points(n: int, *, dim: int = 2, seed=None) -> MetricSpace:
    """Uniform random points in the unit cube with the Euclidean metric."""
    check_positive_int(n, name="n")
    check_positive_int(dim, name="dim")
    rng = ensure_rng(seed)
    return MetricSpace.from_points(rng.random((n, dim)))


def clustered_points(
    n: int,
    *,
    n_clusters: int = 4,
    dim: int = 2,
    spread: float = 0.05,
    seed=None,
) -> MetricSpace:
    """Gaussian blobs: ``n_clusters`` centers in the unit cube, points
    scattered around them with standard deviation ``spread``.

    The classic k-means/k-median workload: well-separated ground-truth
    clusters make the optimal objective predictable.
    """
    check_positive_int(n, name="n")
    check_k(n_clusters, n, name="n_clusters")
    rng = ensure_rng(seed)
    centers = rng.random((n_clusters, dim))
    labels = rng.integers(0, n_clusters, size=n)
    pts = centers[labels] + rng.normal(scale=spread, size=(n, dim))
    return MetricSpace.from_points(pts)


def grid_points(width: int, height: int | None = None, *, p: float = 1.0) -> MetricSpace:
    """All integer grid points of a ``width × height`` rectangle.

    ``p=1`` (Manhattan) mirrors street networks; distances take few
    distinct values, which stresses tie-breaking in every algorithm.
    """
    check_positive_int(width, name="width")
    height = width if height is None else check_positive_int(height, name="height")
    xs, ys = np.meshgrid(np.arange(width), np.arange(height), indexing="ij")
    pts = np.column_stack([xs.ravel(), ys.ravel()]).astype(float)
    return MetricSpace.from_points(pts, p=p)


# --------------------------------------------------------------------------
# Facility-location instances
# --------------------------------------------------------------------------

def _split_instance(
    space: MetricSpace,
    n_f: int,
    n_c: int,
    rng: np.random.Generator,
    cost_range: tuple[float, float],
    cost_scale: float | None,
) -> FacilityLocationInstance:
    """Designate the first ``n_f`` points facilities, the rest clients,
    and draw opening costs.

    Costs default to ``uniform(cost_range) × median-distance × √n_c`` —
    scaled so the facility/connection tradeoff is genuinely contested
    (opening everything and opening one facility are both suboptimal).
    """
    facility_ids = np.arange(n_f)
    client_ids = np.arange(n_f, n_f + n_c)
    D = space.submatrix(facility_ids, client_ids)
    if cost_scale is None:
        base = float(np.median(D)) if D.size else 1.0
        cost_scale = max(base, 1e-12) * np.sqrt(n_c)
    lo, hi = cost_range
    if not 0 <= lo <= hi:
        raise InvalidParameterError(f"cost_range must satisfy 0 <= lo <= hi, got {cost_range}")
    f = rng.uniform(lo, hi, size=n_f) * cost_scale
    return FacilityLocationInstance(
        D, f, metric=space, facility_ids=facility_ids, client_ids=client_ids
    )


def euclidean_instance(
    n_f: int,
    n_c: int,
    *,
    dim: int = 2,
    cost_range: tuple[float, float] = (0.5, 1.5),
    cost_scale: float | None = None,
    seed=None,
) -> FacilityLocationInstance:
    """Facilities and clients uniform in the unit cube (Euclidean metric)."""
    check_positive_int(n_f, name="n_f")
    check_positive_int(n_c, name="n_c")
    rng = ensure_rng(seed)
    space = MetricSpace.from_points(rng.random((n_f + n_c, dim)))
    return _split_instance(space, n_f, n_c, rng, cost_range, cost_scale)


def clustered_instance(
    n_f: int,
    n_c: int,
    *,
    n_clusters: int = 4,
    dim: int = 2,
    spread: float = 0.05,
    cost_range: tuple[float, float] = (0.5, 1.5),
    cost_scale: float | None = None,
    seed=None,
) -> FacilityLocationInstance:
    """Clients in Gaussian blobs; facilities near blob centers and at
    random fill-in locations — the "warehouse placement" shape."""
    check_positive_int(n_f, name="n_f")
    check_positive_int(n_c, name="n_c")
    rng = ensure_rng(seed)
    centers = rng.random((n_clusters, dim))
    labels = rng.integers(0, n_clusters, size=n_c)
    clients = centers[labels] + rng.normal(scale=spread, size=(n_c, dim))
    n_near = min(n_clusters, n_f)
    near = centers[:n_near] + rng.normal(scale=spread, size=(n_near, dim))
    fill = rng.random((n_f - n_near, dim))
    pts = np.vstack([near, fill, clients])
    space = MetricSpace.from_points(pts)
    return _split_instance(space, n_f, n_c, rng, cost_range, cost_scale)


def graph_instance(
    G,
    n_f: int,
    n_c: int,
    *,
    weight: str = "weight",
    cost_range: tuple[float, float] = (0.5, 1.5),
    cost_scale: float | None = None,
    seed=None,
) -> FacilityLocationInstance:
    """Shortest-path metric over a (connected) networkx graph.

    Facility/client roles are assigned to distinct random nodes; the
    graph must have at least ``n_f + n_c`` nodes. Models placing servers
    in a network (the paper's network-design motivation).
    """
    import networkx as nx
    from scipy.sparse.csgraph import shortest_path

    check_positive_int(n_f, name="n_f")
    check_positive_int(n_c, name="n_c")
    n = G.number_of_nodes()
    if n < n_f + n_c:
        raise InvalidParameterError(f"graph has {n} nodes; need n_f+n_c={n_f + n_c}")
    if not nx.is_connected(G):
        raise InvalidParameterError("graph metric requires a connected graph")
    rng = ensure_rng(seed)
    adj = nx.to_scipy_sparse_array(G, weight=weight, format="csr")
    full = shortest_path(adj, method="D", directed=False)
    chosen = rng.choice(n, size=n_f + n_c, replace=False)
    D_all = full[np.ix_(chosen, chosen)]
    space = MetricSpace(D_all, validate=False)
    return _split_instance(space, n_f, n_c, rng, cost_range, cost_scale)


def random_metric_instance(
    n_f: int,
    n_c: int,
    *,
    cost_range: tuple[float, float] = (0.5, 1.5),
    cost_scale: float | None = None,
    seed=None,
) -> FacilityLocationInstance:
    """A non-geometric metric: random symmetric weights repaired into a
    metric by shortest-path closure. Exercises code paths that Euclidean
    inputs never reach (e.g., highly non-uniform neighborhood sizes)."""
    from scipy.sparse.csgraph import shortest_path

    check_positive_int(n_f, name="n_f")
    check_positive_int(n_c, name="n_c")
    rng = ensure_rng(seed)
    n = n_f + n_c
    W = rng.uniform(0.1, 1.0, size=(n, n))
    W = (W + W.T) / 2.0
    np.fill_diagonal(W, 0.0)
    D = shortest_path(W, method="FW", directed=False)
    space = MetricSpace(D, validate=False)
    return _split_instance(space, n_f, n_c, rng, cost_range, cost_scale)


def star_instance(
    n_c: int,
    *,
    hub_cost: float = 1.0,
    spoke_cost: float = 4.0,
    radius: float = 1.0,
    seed=None,
) -> FacilityLocationInstance:
    """Adversarial star: one cheap hub facility at the center plus one
    expensive co-located facility per client on the rim.

    The optimal solution opens only the hub; greedy/primal–dual must
    resist opening rim facilities. All rim stars are exactly tied, the
    worst case for the ``(1+ε)``-slack selection (everything enters
    ``I`` simultaneously and subselection must thin it)."""
    check_positive_int(n_c, name="n_c")
    rng = ensure_rng(seed)
    angles = np.linspace(0.0, 2 * np.pi, n_c, endpoint=False)
    rim = radius * np.column_stack([np.cos(angles), np.sin(angles)])
    pts = np.vstack([[0.0, 0.0], rim, rim])  # hub facility, rim facilities, clients
    space = MetricSpace.from_points(pts)
    facility_ids = np.arange(1 + n_c)
    client_ids = np.arange(1 + n_c, 1 + 2 * n_c)
    f = np.full(1 + n_c, float(spoke_cost))
    f[0] = float(hub_cost)
    # tiny jitter on rim costs so "exactly tied" vs "nearly tied" is seed-controlled
    f[1:] += rng.uniform(0.0, 1e-9, size=n_c)
    return FacilityLocationInstance.from_metric(space, facility_ids, client_ids, f)


def two_scale_instance(
    n_clusters: int = 5,
    per_cluster: int = 10,
    *,
    scale: float = 20.0,
    spread: float = 0.2,
    cost: float = 1.0,
    seed=None,
) -> FacilityLocationInstance:
    """Tight client clusters separated by a much larger scale, one
    candidate facility per cluster plus decoys between clusters.

    The optimum is transparent (open each cluster facility), and the two
    distance scales force the geometric ``(1+ε)^ℓ`` schedule in the
    primal–dual algorithm through many idle iterations — the shape that
    made the ``γ/m²`` preprocessing necessary."""
    check_positive_int(n_clusters, name="n_clusters")
    check_positive_int(per_cluster, name="per_cluster")
    rng = ensure_rng(seed)
    centers = scale * rng.random((n_clusters, 2))
    clients = (centers[:, None, :] + rng.normal(scale=spread, size=(n_clusters, per_cluster, 2))).reshape(-1, 2)
    decoys = scale * rng.random((n_clusters, 2))
    pts = np.vstack([centers, decoys, clients])
    space = MetricSpace.from_points(pts)
    n_f = 2 * n_clusters
    facility_ids = np.arange(n_f)
    client_ids = np.arange(n_f, n_f + clients.shape[0])
    f = np.full(n_f, float(cost))
    return FacilityLocationInstance.from_metric(space, facility_ids, client_ids, f)


def line_instance(
    n_f: int,
    n_c: int,
    *,
    spacing: float = 1.0,
    cost_range: tuple[float, float] = (0.5, 1.5),
    cost_scale: float | None = None,
    seed=None,
) -> FacilityLocationInstance:
    """Evenly spaced points on a line (1-D metric).

    Massive distance degeneracy: all consecutive gaps are equal, so
    star prices and primal–dual opening events tie in large groups —
    a targeted stress for the ``(1+ε)``-slack selection and for
    threshold-comparison float bugs."""
    check_positive_int(n_f, name="n_f")
    check_positive_int(n_c, name="n_c")
    rng = ensure_rng(seed)
    pts = (spacing * np.arange(n_f + n_c, dtype=float))[:, None]
    # interleave roles so facilities aren't all on one end
    order = rng.permutation(n_f + n_c)
    space = MetricSpace.from_points(pts[np.argsort(np.argsort(order))])
    return _split_instance(space, n_f, n_c, rng, cost_range, cost_scale)


def powerlaw_cluster_instance(
    n_f: int,
    n_c: int,
    *,
    n_clusters: int = 6,
    alpha: float = 1.5,
    dim: int = 2,
    spread: float = 0.03,
    cost_range: tuple[float, float] = (0.5, 1.5),
    cost_scale: float | None = None,
    seed=None,
) -> FacilityLocationInstance:
    """Clients in clusters with power-law sizes (Zipf-ish exponent
    ``alpha``): a few huge demand centers and a long tail of tiny ones
    — the realistic "city sizes" shape that makes facility/connection
    tradeoffs vary wildly across the same instance."""
    check_positive_int(n_f, name="n_f")
    check_positive_int(n_c, name="n_c")
    check_k(n_clusters, n_c, name="n_clusters")
    rng = ensure_rng(seed)
    weights = (1.0 + np.arange(n_clusters)) ** (-float(alpha))
    weights /= weights.sum()
    labels = rng.choice(n_clusters, size=n_c, p=weights)
    centers = rng.random((n_clusters, dim))
    clients = centers[labels] + rng.normal(scale=spread, size=(n_c, dim))
    facilities = rng.random((n_f, dim))
    space = MetricSpace.from_points(np.vstack([facilities, clients]))
    return _split_instance(space, n_f, n_c, rng, cost_range, cost_scale)


# --------------------------------------------------------------------------
# Sparse facility-location instances
# --------------------------------------------------------------------------

def knn_instance(
    n_f: int,
    n_c: int,
    *,
    k: int = 8,
    dim: int = 2,
    n_clusters: int | None = None,
    spread: float = 0.05,
    cost_range: tuple[float, float] = (0.5, 1.5),
    cost_scale: float | None = None,
    fallback_slack: float = 1.0,
    seed=None,
):
    """k-NN-truncated Euclidean instance, built without the dense matrix.

    Each client's candidates are its ``k`` nearest facilities (KD-tree
    query), so the instance costs ``O(k · n_c)`` memory instead of
    ``n_f · n_c`` — the construction that takes the sparse solvers to
    client counts the dense path cannot touch. Clients are uniform in
    the unit cube, or Gaussian blobs when ``n_clusters`` is given.

    The fallback column is ``(1 + fallback_slack) ×`` each client's
    truncation radius (its ``k``-th nearest distance); see
    :func:`repro.metrics.sparse.knn_sparsify` for why that keeps
    objectives comparable.

    Returns a :class:`~repro.metrics.sparse.SparseFacilityLocationInstance`.
    """
    from scipy.spatial import cKDTree

    from repro.metrics.sparse import SparseFacilityLocationInstance
    from repro.util.csr import csr_transpose

    check_positive_int(n_f, name="n_f")
    check_positive_int(n_c, name="n_c")
    check_positive_int(dim, name="dim")
    k = check_k(k, n_f, name="k")
    slack = float(fallback_slack)
    if slack < 0:
        raise InvalidParameterError(f"fallback_slack must be >= 0, got {fallback_slack}")
    rng = ensure_rng(seed)
    facilities = rng.random((n_f, dim))
    if n_clusters is None:
        clients = rng.random((n_c, dim))
    else:
        check_k(n_clusters, n_c, name="n_clusters")
        centers = rng.random((n_clusters, dim))
        labels = rng.integers(0, n_clusters, size=n_c)
        clients = centers[labels] + rng.normal(scale=spread, size=(n_c, dim))
    dist, near = cKDTree(facilities).query(clients, k=k)
    dist = np.atleast_2d(np.asarray(dist, dtype=float).reshape(n_c, k))
    near = np.asarray(near, dtype=np.intp).reshape(n_c, k)
    # Transpose the client-major k-NN lists into the facility-major CSR
    # layout (clients ascend within each facility row).
    c_indptr = np.arange(0, n_c * k + 1, k, dtype=np.intp)
    t_indptr, t_clients, entry = csr_transpose(c_indptr, near.ravel(), n_f)
    if cost_scale is None:
        base = float(np.median(dist)) if dist.size else 1.0
        cost_scale = max(base, 1e-12) * np.sqrt(n_c)
    lo, hi = cost_range
    if not 0 <= lo <= hi:
        raise InvalidParameterError(f"cost_range must satisfy 0 <= lo <= hi, got {cost_range}")
    f = rng.uniform(lo, hi, size=n_f) * cost_scale
    return SparseFacilityLocationInstance(
        t_indptr,
        t_clients,
        dist.ravel()[entry],
        f,
        n_clients=n_c,
        fallback=(1.0 + slack) * dist[:, -1],
    )


def knn_clustering_instance(
    n: int,
    k: int,
    *,
    neighbors: int = 16,
    dim: int = 2,
    n_clusters: int | None = None,
    spread: float = 0.05,
    fallback_slack: float = 1.0,
    seed=None,
):
    """k-NN-truncated clustering instance, built without the dense matrix.

    Each node's candidate centers are its ``neighbors`` nearest nodes
    (KD-tree query, self included at distance 0), symmetrized, so the
    instance costs ``O(neighbors · n)`` memory instead of ``n²`` — the
    construction that takes the §6.1/§7 clustering solvers to node
    counts the dense path cannot touch. Nodes are uniform in the unit
    cube, or Gaussian blobs when ``n_clusters`` is given.

    The fallback column is ``(1 + fallback_slack) ×`` each node's
    truncation radius (its ``neighbors``-th nearest distance); see
    :func:`repro.metrics.sparse.knn_sparsify` for why that keeps
    objectives comparable.

    Returns a :class:`~repro.metrics.sparse.SparseClusteringInstance`
    with center budget ``k``.
    """
    check_positive_int(n, name="n")
    check_k(k, n, name="k")
    check_positive_int(dim, name="dim")
    rng = ensure_rng(seed)
    if n_clusters is None:
        pts = rng.random((n, dim))
    else:
        check_k(n_clusters, n, name="n_clusters")
        centers = rng.random((n_clusters, dim))
        labels = rng.integers(0, n_clusters, size=n)
        pts = centers[labels] + rng.normal(scale=spread, size=(n, dim))
    return knn_clustering_from_points(
        pts, k, neighbors=neighbors, fallback_slack=fallback_slack
    )


def knn_clustering_from_points(
    points,
    k: int,
    *,
    neighbors: int = 16,
    fallback_slack: float = 1.0,
    weights=None,
):
    """kNN-truncated clustering instance over *given* coordinates.

    The KD-tree-first construction behind
    :func:`knn_clustering_instance`, factored out so callers with their
    own point sets — notably the shard-and-conquer merge step, whose
    points are coreset representatives carrying aggregated ``weights``
    — can build the candidate structure without a dense intermediate.

    Returns a (possibly weighted)
    :class:`~repro.metrics.sparse.SparseClusteringInstance`.
    """
    from scipy.spatial import cKDTree

    from repro.metrics.sparse import (
        SparseClusteringInstance,
        _symmetrized_clustering_csr,
    )

    points = np.asarray(points, dtype=float)
    if points.ndim != 2 or points.shape[0] == 0:
        raise InvalidParameterError(
            f"points must be a non-empty (n, dim) array, got shape {points.shape}"
        )
    n = points.shape[0]
    check_k(k, n, name="k")
    neighbors = check_k(neighbors, n, name="neighbors")
    slack = float(fallback_slack)
    if slack < 0:
        raise InvalidParameterError(f"fallback_slack must be >= 0, got {fallback_slack}")
    dist, near = cKDTree(points).query(points, k=neighbors)
    dist = np.asarray(dist, dtype=float).reshape(n, neighbors)
    near = np.asarray(near, dtype=np.intp).reshape(n, neighbors)
    rows = np.repeat(np.arange(n, dtype=np.intp), neighbors)
    indptr, indices, data = _symmetrized_clustering_csr(
        n, rows, near.ravel(), dist.ravel()
    )
    return SparseClusteringInstance(
        indptr, indices, data, k, fallback=(1.0 + slack) * dist[:, -1],
        weights=weights,
    )


# --------------------------------------------------------------------------
# Clustering instances
# --------------------------------------------------------------------------

def euclidean_clustering(n: int, k: int, *, dim: int = 2, seed=None) -> ClusteringInstance:
    """Uniform points with budget ``k`` (k-median/k-means/k-center)."""
    return ClusteringInstance(euclidean_points(n, dim=dim, seed=seed), k)


def clustered_clustering(
    n: int,
    k: int,
    *,
    n_clusters: int | None = None,
    dim: int = 2,
    spread: float = 0.05,
    seed=None,
) -> ClusteringInstance:
    """Gaussian blobs with budget ``k`` (defaults to ``n_clusters = k``)."""
    n_clusters = k if n_clusters is None else n_clusters
    return ClusteringInstance(
        clustered_points(n, n_clusters=n_clusters, dim=dim, spread=spread, seed=seed), k
    )
