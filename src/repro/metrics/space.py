"""Metric spaces ``(X, d)`` backed by dense distance matrices.

The paper assumes a metric space with ``F ∪ C ⊆ X`` underlying every
instance; :class:`MetricSpace` is that object. Distances are stored as
a dense ``n × n`` float matrix — the paper's algorithms are built on
dense-matrix primitives (§2), so this is the natural representation.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidInstanceError
from repro.metrics.validation import check_metric_matrix


class MetricSpace:
    """An immutable finite metric space.

    Parameters
    ----------
    D:
        Dense ``n × n`` symmetric distance matrix with zero diagonal
        satisfying the triangle inequality.
    points:
        Optional ``n × dim`` coordinates (kept for plotting/debugging;
        distances are always read from ``D``).
    validate:
        Set ``False`` only for matrices already validated (e.g., loaded
        from a file this library wrote).
    """

    __slots__ = ("_D", "_points")

    def __init__(self, D: np.ndarray, *, points: np.ndarray | None = None, validate: bool = True):
        if validate:
            D = check_metric_matrix(D)
        else:
            D = np.asarray(D, dtype=float)
        self._D = D
        self._D.setflags(write=False)
        if points is not None:
            points = np.asarray(points, dtype=float)
            if points.shape[0] != D.shape[0]:
                raise InvalidInstanceError(
                    f"points ({points.shape[0]}) and distances ({D.shape[0]}) disagree on n"
                )
            points.setflags(write=False)
        self._points = points

    @classmethod
    def from_points(cls, points: np.ndarray, *, p: float = 2.0) -> "MetricSpace":
        """Build the ``ℓ_p`` metric over a point set (``n × dim``)."""
        points = np.atleast_2d(np.asarray(points, dtype=float))
        diff = points[:, None, :] - points[None, :, :]
        if p == 2.0:
            D = np.sqrt(np.sum(diff * diff, axis=2))
        elif p == 1.0:
            D = np.sum(np.abs(diff), axis=2)
        elif np.isinf(p):
            D = np.max(np.abs(diff), axis=2)
        else:
            D = np.sum(np.abs(diff) ** p, axis=2) ** (1.0 / p)
        # exact zeros on the diagonal despite floating-point arithmetic
        np.fill_diagonal(D, 0.0)
        D = np.minimum(D, D.T)
        return cls(D, points=points, validate=False)

    @property
    def n(self) -> int:
        """Number of points in the space."""
        return self._D.shape[0]

    @property
    def D(self) -> np.ndarray:
        """The (read-only) full distance matrix."""
        return self._D

    @property
    def points(self) -> np.ndarray | None:
        """Coordinates if the space came from a point set, else ``None``."""
        return self._points

    def distance(self, i: int, j: int) -> float:
        """Distance between points ``i`` and ``j``."""
        return float(self._D[i, j])

    def distance_to_set(self, j, S) -> np.ndarray:
        """``d(j, S) = min_{w ∈ S} d(j, w)`` (vectorized over ``j``)."""
        S = np.asarray(S, dtype=int)
        if S.size == 0:
            raise InvalidInstanceError("distance_to_set requires a non-empty set")
        return np.min(self._D[np.atleast_1d(j)][:, S], axis=1)

    def submatrix(self, rows, cols) -> np.ndarray:
        """Rectangular distance block ``d(rows × cols)`` (copy)."""
        rows = np.asarray(rows, dtype=int)
        cols = np.asarray(cols, dtype=int)
        return self._D[np.ix_(rows, cols)]

    def __repr__(self) -> str:
        return f"MetricSpace(n={self.n})"
