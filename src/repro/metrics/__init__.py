"""Metric spaces, problem instances, and workload generators.

Everything the paper's problems are *about* lives here: metric spaces
``(X, d)`` with validated triangle inequality, facility-location
instances (facility set ``F``, client set ``C``, opening costs ``f_i``,
distance matrix ``d(j, i)``), clustering instances (every node both a
client and a candidate center, plus the budget ``k``), and generators
that produce the synthetic workloads used throughout the benchmarks.
"""

from repro.metrics.space import MetricSpace
from repro.metrics.instance import ClusteringInstance, FacilityLocationInstance
from repro.metrics.validation import check_metric_matrix, triangle_violation
from repro.metrics.sparse import (
    SparseClusteringInstance,
    SparseFacilityLocationInstance,
    knn_sparsify,
    threshold_sparsify,
)
from repro.metrics.generators import (
    clustered_clustering,
    clustered_instance,
    clustered_points,
    euclidean_clustering,
    euclidean_instance,
    euclidean_points,
    graph_instance,
    grid_points,
    knn_clustering_instance,
    knn_instance,
    line_instance,
    powerlaw_cluster_instance,
    random_metric_instance,
    star_instance,
    two_scale_instance,
)
from repro.metrics.io import load_instance, save_instance

__all__ = [
    "MetricSpace",
    "FacilityLocationInstance",
    "ClusteringInstance",
    "SparseClusteringInstance",
    "SparseFacilityLocationInstance",
    "knn_sparsify",
    "threshold_sparsify",
    "knn_instance",
    "knn_clustering_instance",
    "check_metric_matrix",
    "triangle_violation",
    "euclidean_instance",
    "clustered_instance",
    "euclidean_points",
    "clustered_points",
    "euclidean_clustering",
    "clustered_clustering",
    "grid_points",
    "graph_instance",
    "line_instance",
    "powerlaw_cluster_instance",
    "random_metric_instance",
    "star_instance",
    "two_scale_instance",
    "load_instance",
    "save_instance",
]
