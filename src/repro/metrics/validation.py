"""Structural validation for metric distance matrices.

The paper's guarantees hold only on metric instances (symmetric ``d``
satisfying the triangle inequality, §2); these checkers enforce that at
instance-construction time so algorithm bugs are never masked by
invalid inputs.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidInstanceError
from repro.util.rng import ensure_rng


def triangle_violation(D: np.ndarray, *, sample_limit: int = 256, seed=0) -> float:
    """Worst triangle-inequality violation ``max(d(i,j) − d(i,k) − d(k,j))``.

    Exact (all ``n³`` triples, vectorized) for ``n ≤ sample_limit``;
    otherwise checks all triples through a random sample of
    ``sample_limit`` midpoints ``k``, which still catches any midpoint
    involved in a violation with high probability on random inputs.
    Returns a non-positive number for valid metrics.
    """
    D = np.asarray(D, dtype=float)
    n = D.shape[0]
    if n <= sample_limit:
        mids = np.arange(n)
    else:
        mids = ensure_rng(seed).choice(n, size=sample_limit, replace=False)
    # best[i, j] = min_k (d(i,k) + d(k,j)) over the midpoint sample
    best = np.min(D[:, mids, None] + D[None, mids, :], axis=1)
    return float(np.max(D - best))


def check_metric_matrix(
    D: np.ndarray,
    *,
    tol: float = 1e-9,
    check_triangle: bool = True,
    sample_limit: int = 256,
) -> np.ndarray:
    """Validate ``D`` as a metric distance matrix; return it as float64.

    Raises
    ------
    InvalidInstanceError
        If ``D`` is not square, has negative entries or a nonzero
        diagonal, is asymmetric, or (when ``check_triangle``) violates
        the triangle inequality by more than ``tol``.
    """
    D = np.asarray(D, dtype=float)
    if D.ndim != 2 or D.shape[0] != D.shape[1]:
        raise InvalidInstanceError(f"distance matrix must be square, got shape {D.shape}")
    if D.shape[0] == 0:
        raise InvalidInstanceError("distance matrix must be non-empty")
    if not np.all(np.isfinite(D)):
        raise InvalidInstanceError("distance matrix contains non-finite entries")
    if np.any(D < -tol):
        raise InvalidInstanceError(f"negative distance: min={D.min()}")
    if np.any(np.abs(np.diagonal(D)) > tol):
        raise InvalidInstanceError("self-distances must be zero")
    if np.max(np.abs(D - D.T)) > tol:
        raise InvalidInstanceError(
            f"distance matrix asymmetric (max deviation {np.max(np.abs(D - D.T))})"
        )
    if check_triangle:
        viol = triangle_violation(D, sample_limit=sample_limit)
        if viol > tol:
            raise InvalidInstanceError(f"triangle inequality violated by {viol}")
    return np.clip(D, 0.0, None)
