"""Sparse constructions of the Figure 1 LPs.

Variable layouts (documented here once; solvers and checkers rely on
them):

Primal (minimize)::

    vars  = [x_00 … x_{ij} … x_{n_f-1,n_c-1}, y_0 … y_{n_f-1}]
    x_ij at index i·n_c + j;  y_i at index n_f·n_c + i
    min   Σ_ij d(j,i)·x_ij + Σ_i f_i·y_i
    s.t.  Σ_i x_ij ≥ 1            for each client j
          y_i − x_ij ≥ 0          for each pair (i, j)
          x, y ≥ 0

Dual (maximize)::

    vars  = [α_0 … α_{n_c-1}, β_00 … β_{ij} …]
    α_j at index j;  β_ij at index n_c + i·n_c + j
    max   Σ_j α_j
    s.t.  Σ_j β_ij ≤ f_i          for each facility i
          α_j − β_ij ≤ d(j,i)     for each pair (i, j)
          α, β ≥ 0

k-median LP (for §7 lower bounds)::

    vars  = [x_ij …, y_i …] over the n × n clustering instance
    min   Σ_ij d(j,i)·x_ij
    s.t.  Σ_i x_ij ≥ 1, y_i − x_ij ≥ 0, Σ_i y_i ≤ k, x, y ≥ 0
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.metrics.instance import ClusteringInstance, FacilityLocationInstance


@dataclass(frozen=True)
class LinearProgram:
    """A linear program in ``scipy.optimize.linprog`` form.

    Minimize ``c @ v`` subject to ``A_ub @ v <= b_ub`` and ``v >= 0``.
    ``sense`` records whether the *modelled* problem was a min or max
    (max problems are stored negated, as linprog requires).
    """

    c: np.ndarray
    A_ub: sparse.csr_matrix
    b_ub: np.ndarray
    sense: str  # "min" | "max"
    n_vars: int

    def objective_value(self, v: np.ndarray) -> float:
        """Modelled objective at ``v`` (sign-corrected for max problems)."""
        raw = float(self.c @ v)
        return -raw if self.sense == "max" else raw


def build_primal(instance: FacilityLocationInstance) -> LinearProgram:
    """The facility-location LP relaxation (Figure 1, left)."""
    nf, nc = instance.n_facilities, instance.n_clients
    nx = nf * nc
    c = np.concatenate([instance.D.reshape(-1), instance.f])

    # -Σ_i x_ij <= -1  (one row per client)
    cover_rows = np.repeat(np.arange(nc), nf)
    cover_cols = (np.tile(np.arange(nf), nc) * nc) + np.repeat(np.arange(nc), nf)
    cover_vals = -np.ones(nf * nc)

    # x_ij - y_i <= 0  (one row per pair)
    pair = np.arange(nx)
    link_rows = nc + np.concatenate([pair, pair])
    link_cols = np.concatenate([pair, nx + pair // nc])
    link_vals = np.concatenate([np.ones(nx), -np.ones(nx)])

    A = sparse.coo_matrix(
        (
            np.concatenate([cover_vals, link_vals]),
            (np.concatenate([cover_rows, link_rows]), np.concatenate([cover_cols, link_cols])),
        ),
        shape=(nc + nx, nx + nf),
    ).tocsr()
    b = np.concatenate([-np.ones(nc), np.zeros(nx)])
    return LinearProgram(c=c, A_ub=A, b_ub=b, sense="min", n_vars=nx + nf)


def build_dual(instance: FacilityLocationInstance) -> LinearProgram:
    """The facility-location dual LP (Figure 1, right), stored negated."""
    nf, nc = instance.n_facilities, instance.n_clients
    nx = nf * nc
    # maximize Σ α_j  →  minimize −Σ α_j
    c = np.concatenate([-np.ones(nc), np.zeros(nx)])

    # Σ_j β_ij <= f_i  (one row per facility)
    budget_rows = np.repeat(np.arange(nf), nc)
    budget_cols = nc + np.arange(nx)
    budget_vals = np.ones(nx)

    # α_j − β_ij <= d(j, i)  (one row per pair)
    pair = np.arange(nx)
    slack_rows = nf + np.concatenate([pair, pair])
    slack_cols = np.concatenate([pair % nc, nc + pair])
    slack_vals = np.concatenate([np.ones(nx), -np.ones(nx)])

    A = sparse.coo_matrix(
        (
            np.concatenate([budget_vals, slack_vals]),
            (np.concatenate([budget_rows, slack_rows]), np.concatenate([budget_cols, slack_cols])),
        ),
        shape=(nf + nx, nc + nx),
    ).tocsr()
    b = np.concatenate([instance.f, instance.D.reshape(-1)])
    return LinearProgram(c=c, A_ub=A, b_ub=b, sense="max", n_vars=nc + nx)


def build_kmedian_lp(instance: ClusteringInstance) -> LinearProgram:
    """LP relaxation of k-median over an ``n × n`` clustering instance."""
    n = instance.n
    k = instance.k
    nx = n * n
    c = np.concatenate([instance.D.T.reshape(-1), np.zeros(n)])  # D[j,i] indexed x_ij = (center i, client j)

    cover_rows = np.repeat(np.arange(n), n)
    cover_cols = (np.tile(np.arange(n), n) * n) + np.repeat(np.arange(n), n)
    cover_vals = -np.ones(nx)

    pair = np.arange(nx)
    link_rows = n + np.concatenate([pair, pair])
    link_cols = np.concatenate([pair, nx + pair // n])
    link_vals = np.concatenate([np.ones(nx), -np.ones(nx)])

    # Σ_i y_i <= k
    budget_rows = np.full(n, n + nx)
    budget_cols = nx + np.arange(n)
    budget_vals = np.ones(n)

    A = sparse.coo_matrix(
        (
            np.concatenate([cover_vals, link_vals, budget_vals]),
            (
                np.concatenate([cover_rows, link_rows, budget_rows]),
                np.concatenate([cover_cols, link_cols, budget_cols]),
            ),
        ),
        shape=(n + nx + 1, nx + n),
    ).tocsr()
    b = np.concatenate([-np.ones(n), np.zeros(nx), [float(k)]])
    return LinearProgram(c=c, A_ub=A, b_ub=b, sense="min", n_vars=nx + n)
