"""Linear-programming substrate: the Figure 1 primal/dual pair.

The paper's Figure 1 gives the LP relaxation of metric uncapacitated
facility location and its dual. This package constructs both as sparse
LPs, solves them with ``scipy.optimize.linprog`` (HiGHS), and provides
feasibility / duality checkers used throughout the analyses:

* the LP-rounding algorithm (§6.2) consumes an optimal primal solution;
* the greedy (§4) and primal–dual (§5) analyses are *dual-fitting*
  arguments, whose invariants (Claim 5.1, Lemma 4.7) are checked here;
* LP optima are the standard lower bounds for measuring approximation
  ratios on instances too large for brute force.

A k-median LP is included for lower-bounding §7's local search.
"""

from repro.lp.model import build_dual, build_kmedian_lp, build_primal
from repro.lp.solve import (
    DualSolution,
    PrimalSolution,
    lp_lower_bound,
    solve_dual,
    solve_kmedian_lp,
    solve_primal,
)
from repro.lp.duality import (
    beta_from_alpha,
    check_dual_feasible,
    check_primal_feasible,
    dual_fitting_slack,
    duality_gap,
)

__all__ = [
    "build_primal",
    "build_dual",
    "build_kmedian_lp",
    "PrimalSolution",
    "DualSolution",
    "solve_primal",
    "solve_dual",
    "solve_kmedian_lp",
    "lp_lower_bound",
    "check_primal_feasible",
    "check_dual_feasible",
    "beta_from_alpha",
    "dual_fitting_slack",
    "duality_gap",
]
