"""HiGHS-backed solvers for the Figure 1 LPs.

These are *substrate*, not contribution: the paper assumes an optimal
LP solution is available to the §6.2 rounding algorithm and uses LP
optima implicitly as lower bounds (weak duality) in the analyses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import linprog

from repro.errors import LPSolveError
from repro.lp.model import build_dual, build_kmedian_lp, build_primal
from repro.metrics.instance import ClusteringInstance, FacilityLocationInstance


@dataclass(frozen=True)
class PrimalSolution:
    """Optimal primal solution: ``x[i, j]`` fractional assignment,
    ``y[i]`` fractional opening, and the objective ``value``."""

    x: np.ndarray
    y: np.ndarray
    value: float


@dataclass(frozen=True)
class DualSolution:
    """Optimal dual solution: client potentials ``alpha[j]``, payments
    ``beta[i, j]``, and the objective ``value``."""

    alpha: np.ndarray
    beta: np.ndarray
    value: float


def _run(lp, what: str):
    res = linprog(lp.c, A_ub=lp.A_ub, b_ub=lp.b_ub, bounds=(0, None), method="highs")
    if not res.success:
        raise LPSolveError(f"{what} LP failed: {res.message}")
    return res


def solve_primal(instance: FacilityLocationInstance) -> PrimalSolution:
    """Solve the facility-location LP relaxation to optimality."""
    nf, nc = instance.n_facilities, instance.n_clients
    lp = build_primal(instance)
    res = _run(lp, "primal facility-location")
    x = res.x[: nf * nc].reshape(nf, nc)
    y = res.x[nf * nc :]
    return PrimalSolution(x=x, y=y, value=float(res.fun))


def solve_dual(instance: FacilityLocationInstance) -> DualSolution:
    """Solve the facility-location dual LP to optimality."""
    nf, nc = instance.n_facilities, instance.n_clients
    lp = build_dual(instance)
    res = _run(lp, "dual facility-location")
    alpha = res.x[:nc]
    beta = res.x[nc:].reshape(nf, nc)
    return DualSolution(alpha=alpha, beta=beta, value=-float(res.fun))


def lp_lower_bound(instance: FacilityLocationInstance) -> float:
    """The LP optimum — a lower bound on the integral optimum ``opt``."""
    return solve_primal(instance).value


def solve_kmedian_lp(instance: ClusteringInstance) -> float:
    """k-median LP optimum (lower bound on the k-median optimum)."""
    lp = build_kmedian_lp(instance)
    res = _run(lp, "k-median")
    return float(res.fun)
