"""Feasibility and duality checkers for the Figure 1 LPs.

The paper's greedy and primal–dual analyses are dual-fitting proofs:
they manufacture an ``α`` vector and claim that ``β_ij = max(0, α_j −
d(j,i))`` is dual feasible (Lemma 4.7, Claim 5.1), whence ``Σ α_j ≤
opt`` by weak duality. These helpers turn those claims into executable
assertions used by the test suite and the T1/T2 benchmarks.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InfeasibleSolutionError
from repro.metrics.instance import FacilityLocationInstance


def check_primal_feasible(
    instance: FacilityLocationInstance,
    x: np.ndarray,
    y: np.ndarray,
    *,
    tol: float = 1e-7,
    raise_on_fail: bool = True,
) -> bool:
    """Verify ``(x, y)`` satisfies the primal constraints of Figure 1."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    problems = []
    if np.any(x < -tol) or np.any(y < -tol):
        problems.append("negative variable")
    cover = x.sum(axis=0)
    if np.any(cover < 1.0 - tol):
        problems.append(f"client under-covered: min Σ_i x_ij = {cover.min():.6g}")
    slack = y[:, None] - x
    if np.any(slack < -tol):
        problems.append(f"x_ij > y_i by {-slack.min():.6g}")
    if problems and raise_on_fail:
        raise InfeasibleSolutionError("; ".join(problems))
    return not problems


def beta_from_alpha(instance: FacilityLocationInstance, alpha: np.ndarray) -> np.ndarray:
    """The canonical dual completion ``β_ij = max(0, α_j − d(j, i))``."""
    alpha = np.asarray(alpha, dtype=float)
    return np.maximum(0.0, alpha[None, :] - instance.D)


def check_dual_feasible(
    instance: FacilityLocationInstance,
    alpha: np.ndarray,
    beta: np.ndarray | None = None,
    *,
    tol: float = 1e-7,
    raise_on_fail: bool = True,
) -> bool:
    """Verify ``(α, β)`` satisfies the dual constraints of Figure 1.

    With ``beta=None`` the canonical completion is used, which is the
    exact form of the paper's dual-fitting claims.
    """
    alpha = np.asarray(alpha, dtype=float)
    beta = beta_from_alpha(instance, alpha) if beta is None else np.asarray(beta, dtype=float)
    problems = []
    if np.any(alpha < -tol) or np.any(beta < -tol):
        problems.append("negative dual variable")
    budget = beta.sum(axis=1) - instance.f
    if np.any(budget > tol):
        problems.append(f"facility budget overshot by {budget.max():.6g}")
    slack = alpha[None, :] - beta - instance.D
    if np.any(slack > tol):
        problems.append(f"α_j − β_ij > d(j,i) by {slack.max():.6g}")
    if problems and raise_on_fail:
        raise InfeasibleSolutionError("; ".join(problems))
    return not problems


def dual_fitting_slack(instance: FacilityLocationInstance, alpha: np.ndarray) -> float:
    """Smallest ``γ ≥ 1`` making ``α/γ`` (canonically completed) feasible.

    This is the measured analogue of the paper's shrink factors —
    ``γ = 1.861`` (Lemma 4.6) or ``3`` (Lemma 4.7) for greedy, ``1`` for
    the primal–dual algorithm (Claim 5.1 asserts feasibility unshrunk).
    Binary search over γ; the feasibility region is monotone in γ.
    """
    alpha = np.asarray(alpha, dtype=float)
    if check_dual_feasible(instance, alpha, raise_on_fail=False):
        return 1.0
    lo, hi = 1.0, 2.0
    while not check_dual_feasible(instance, alpha / hi, raise_on_fail=False):
        hi *= 2.0
        if hi > 1e9:
            raise InfeasibleSolutionError("alpha cannot be shrunk into feasibility")
    for _ in range(60):
        mid = 0.5 * (lo + hi)
        if check_dual_feasible(instance, alpha / mid, raise_on_fail=False):
            hi = mid
        else:
            lo = mid
    return hi


def duality_gap(primal_value: float, dual_value: float) -> float:
    """Relative primal–dual gap (0 at strong duality)."""
    denom = max(abs(primal_value), abs(dual_value), 1e-30)
    return abs(primal_value - dual_value) / denom
