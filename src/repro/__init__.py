"""repro — Parallel approximation algorithms for facility-location problems.

A full reproduction of Blelloch & Tangwongsan, *Parallel Approximation
Algorithms for Facility-Location Problems* (SPAA 2010): the §3–§7
parallel algorithms expressed over the paper's §2 work–depth machine
model, the sequential baselines they are measured against, the Figure 1
LP substrate, and the workload/analysis toolkit that performs the
experimental evaluation the paper left open.

Quickstart::

    from repro import euclidean_instance, parallel_primal_dual
    inst = euclidean_instance(n_f=30, n_c=120, seed=0)
    sol = parallel_primal_dual(inst, epsilon=0.1, seed=0)
    print(sol.cost, sol.opened, sol.model_costs.work)

See README.md for the architecture overview and EXPERIMENTS.md for the
paper-claim vs. measured results.
"""

from repro.errors import (
    ConvergenceError,
    ExecutionError,
    InfeasibleSolutionError,
    InvalidInstanceError,
    InvalidParameterError,
    LPSolveError,
    ReproError,
    ShardFailedError,
    TaskTimeoutError,
    WorkerCrashError,
)
from repro.faults import (
    NO_RETRY,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    Supervisor,
    TaskAttempt,
    TaskFailure,
    supervised_submit_batch,
)
from repro.obs import (
    EventLog,
    MetricsRegistry,
    NullTracer,
    SloEvaluator,
    SloTarget,
    Tracer,
    current_log,
    current_trace_id,
    current_tracer,
    log_to,
    new_trace_id,
    run_with_peak_rss,
    set_log,
    set_tracer,
    trace_context,
    trace_to,
)
from repro.metrics import (
    ClusteringInstance,
    FacilityLocationInstance,
    MetricSpace,
    SparseClusteringInstance,
    SparseFacilityLocationInstance,
    clustered_clustering,
    clustered_instance,
    euclidean_clustering,
    euclidean_instance,
    graph_instance,
    knn_clustering_instance,
    knn_instance,
    knn_sparsify,
    load_instance,
    random_metric_instance,
    save_instance,
    star_instance,
    threshold_sparsify,
    two_scale_instance,
)
from repro.pram import (
    CostLedger,
    CostSnapshot,
    PramMachine,
    RoundMark,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    available_backends,
    brent_time,
    make_backend,
    parallelism,
    register_backend,
    speedup_curve,
)
from repro.core import (
    ClusteringSolution,
    FacilityLocationSolution,
    max_dominator_set,
    max_dominator_set_sparse,
    max_u_dominator_set,
    max_u_dominator_set_sparse,
    parallel_fl_local_search,
    parallel_greedy,
    parallel_kcenter,
    parallel_kmeans,
    parallel_kmedian,
    parallel_kmedian_lagrangian,
    parallel_local_search,
    parallel_lp_rounding,
    parallel_primal_dual,
)
from repro.lp import (
    lp_lower_bound,
    solve_dual,
    solve_kmedian_lp,
    solve_primal,
)
from repro.analysis import Certificate, certify_facility_location
from repro.shard import (
    ShardCoreset,
    ShardSolution,
    build_coreset,
    build_shard_coresets,
    grid_partition,
    kdtree_partition,
    make_partition,
    merge_coresets,
    random_partition,
    shard_and_solve,
    supervised_shard_coresets,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "InvalidInstanceError",
    "InvalidParameterError",
    "ConvergenceError",
    "LPSolveError",
    "InfeasibleSolutionError",
    "ExecutionError",
    "WorkerCrashError",
    "TaskTimeoutError",
    "ShardFailedError",
    # faults
    "FaultPlan",
    "FaultSpec",
    "RetryPolicy",
    "NO_RETRY",
    "Supervisor",
    "TaskAttempt",
    "TaskFailure",
    "supervised_submit_batch",
    # obs
    "EventLog",
    "MetricsRegistry",
    "NullTracer",
    "SloEvaluator",
    "SloTarget",
    "Tracer",
    "current_log",
    "current_trace_id",
    "current_tracer",
    "log_to",
    "new_trace_id",
    "run_with_peak_rss",
    "set_log",
    "set_tracer",
    "trace_context",
    "trace_to",
    # metrics
    "MetricSpace",
    "FacilityLocationInstance",
    "ClusteringInstance",
    "SparseFacilityLocationInstance",
    "SparseClusteringInstance",
    "euclidean_instance",
    "clustered_instance",
    "graph_instance",
    "knn_instance",
    "knn_clustering_instance",
    "knn_sparsify",
    "threshold_sparsify",
    "random_metric_instance",
    "star_instance",
    "two_scale_instance",
    "euclidean_clustering",
    "clustered_clustering",
    "save_instance",
    "load_instance",
    # pram
    "PramMachine",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "make_backend",
    "register_backend",
    "available_backends",
    "CostLedger",
    "CostSnapshot",
    "RoundMark",
    "brent_time",
    "parallelism",
    "speedup_curve",
    # core
    "FacilityLocationSolution",
    "ClusteringSolution",
    "max_dominator_set",
    "max_u_dominator_set",
    "max_dominator_set_sparse",
    "max_u_dominator_set_sparse",
    "parallel_greedy",
    "parallel_primal_dual",
    "parallel_kcenter",
    "parallel_lp_rounding",
    "parallel_local_search",
    "parallel_kmedian",
    "parallel_kmeans",
    "parallel_fl_local_search",
    "parallel_kmedian_lagrangian",
    # lp
    "solve_primal",
    "solve_dual",
    "solve_kmedian_lp",
    "lp_lower_bound",
    # analysis
    "Certificate",
    "certify_facility_location",
    # shard
    "ShardCoreset",
    "ShardSolution",
    "build_coreset",
    "build_shard_coresets",
    "grid_partition",
    "kdtree_partition",
    "make_partition",
    "merge_coresets",
    "random_partition",
    "shard_and_solve",
    "supervised_shard_coresets",
]
