"""The shard-and-conquer driver: partition → coreset → merge → solve.

:func:`shard_and_solve` is the one-call entry point that takes
clustering from "fits in one CSR instance" to millions of points:

1. **partition** the raw coordinates into shards
   (:mod:`repro.shard.partition`);
2. **summarize** each shard into a weighted coreset, shard-parallel
   over the execution backend, per-shard PRAM charges folded into the
   global ledger (:mod:`repro.shard.coreset`);
3. **merge** the coresets into one weighted kNN
   :class:`~repro.metrics.sparse.SparseClusteringInstance`
   (:mod:`repro.shard.merge`);
4. **solve** the merged instance with any existing clustering solver
   (k-center, §7 local-search k-median/k-means, Lagrangian k-median) on
   the same machine/ledger;
5. **map back**: centers are actual input points (coreset
   representatives are never synthetic), so the answer is a set of
   original point ids, and the *true* objective over all input points
   is evaluated exactly with one KD-tree query;
6. **account**: the composed guarantee ``cost_true ≤ c·opt + (c+1)·R``
   (``R`` = total coreset movement) is reported via
   :func:`repro.analysis.composed_coreset_bound` for the k-median
   objective.

Passing an existing instance with ``shards=1`` runs the identity
pipeline — the solver executes directly on it, byte-identical to
calling it yourself with the same seed/backend (the regression anchor).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.bounds import (
    CoresetBound,
    composed_coreset_bound,
    degraded_coreset_bound,
)
from repro.core.kcenter import parallel_kcenter
from repro.core.kmedian_lagrangian import parallel_kmedian_lagrangian
from repro.core.local_search import parallel_kmeans, parallel_kmedian
from repro.core.result import ClusteringSolution
from repro.errors import InvalidParameterError, ShardFailedError
from repro.faults.plan import FaultPlan
from repro.faults.supervisor import NO_RETRY, RetryPolicy
from repro.metrics.instance import ClusteringInstance
from repro.metrics.sparse import SparseClusteringInstance
from repro.pram.ledger import CostSnapshot
from repro.pram.machine import PramMachine, ensure_machine
from repro.shard.coreset import (
    build_shard_coresets,
    farthest_point_seeds,
    supervised_shard_coresets,
)
from repro.shard.merge import merge_coresets
from repro.shard.partition import make_partition, shard_sizes
from repro.shard.store import ShardStore
from repro.util.validation import check_unit_fraction

#: Accepted ``on_shard_failure`` modes for :func:`shard_and_solve`.
_FAILURE_MODES = ("raise", "retry", "drop")


def _solve_kmedian(instance, machine, epsilon, **kw):
    return parallel_kmedian(instance, machine=machine, epsilon=epsilon, **kw)


def _solve_kmeans(instance, machine, epsilon, **kw):
    return parallel_kmeans(instance, machine=machine, epsilon=epsilon, **kw)


def _solve_kcenter(instance, machine, epsilon, **kw):
    return parallel_kcenter(instance, machine=machine, **kw)


def _solve_lagrangian(instance, machine, epsilon, **kw):
    return parallel_kmedian_lagrangian(instance, machine=machine, epsilon=epsilon, **kw)


#: solver name -> (runner, nominal approximation ratio as f(ε) for the
#: composed accounting; None where the additive coreset composition
#: does not apply to the objective).
_SOLVERS = {
    "kmedian": (_solve_kmedian, lambda eps: 5.0 + eps),
    "kmeans": (_solve_kmeans, None),  # squared distances: no additive composition
    "kcenter": (_solve_kcenter, None),  # bottleneck: bound is radius-wise, not Σ-movement
    "kmedian_lagrangian": (_solve_lagrangian, lambda eps: 6.0),
}


@dataclass
class ShardSolution:
    """Result of a shard-and-conquer solve.

    ``centers`` are **original point ids** (coreset representatives are
    actual input points). ``cost`` is the solver's objective on the
    merged weighted instance; ``true_cost`` is the exact objective of
    the same centers over *all* input points (equal for the identity
    pipeline). ``bound`` composes the solver's nominal ratio with the
    coreset movement (k-median family only).
    """

    centers: np.ndarray
    merged_centers: np.ndarray
    cost: float
    true_cost: float
    objective: str
    solution: ClusteringSolution
    shards: int
    shard_sizes: np.ndarray
    coreset_sizes: np.ndarray
    movement: float
    bound: CoresetBound | None
    rounds: dict = field(default_factory=dict)
    model_costs: CostSnapshot | None = None
    extra: dict = field(default_factory=dict)
    #: Fault-tolerance accounting (defaults describe a clean run).
    #: ``degraded`` flags a solve that dropped failed shards and
    #: proceeded on survivors; ``failed_shards`` lists them,
    #: ``covered_weight_fraction`` is the demand weight the surviving
    #: shards represent, and ``failures`` carries the structured
    #: :class:`repro.faults.TaskFailure` records.
    degraded: bool = False
    failed_shards: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=int))
    covered_weight_fraction: float = 1.0
    failures: list = field(default_factory=list)

    def __post_init__(self):
        self.centers = np.asarray(self.centers, dtype=int)
        self.merged_centers = np.asarray(self.merged_centers, dtype=int)
        self.failed_shards = np.asarray(self.failed_shards, dtype=int)


def _gonzalez_warm_start(points: np.ndarray, k: int) -> np.ndarray:
    """Farthest-point k-center seeds over coordinates.

    The §7 local search warm-starts from the sparse parallel k-center,
    which needs the kNN candidate graph to be dominable by ``k`` nodes
    — often false on a merged coreset (``k ≪ merged_n / neighbors``).
    Coreset representatives carry coordinates, so the driver substitutes
    the geometric Gonzalez 2-approximation instead (the shared
    :func:`~repro.shard.coreset.farthest_point_seeds` kernel): same
    guarantee, no graph-coverage precondition, deterministic (seeded
    from the point farthest from the centroid — a label-free rule).
    """
    start = int(np.argmax(np.linalg.norm(points - points.mean(axis=0), axis=1)))
    return np.unique(farthest_point_seeds(points, k, start))


def _true_cost(points, weights, center_points, objective: str, machine: PramMachine) -> float:
    """Exact objective of the chosen centers over every input point:
    one KD-tree query over the full dataset (the only full-data pass
    after partitioning)."""
    from scipy.spatial import cKDTree

    dist, _ = cKDTree(center_points).query(points)
    n = points.shape[0]
    machine.ledger.charge_basic(
        "shard_true_cost", n * int(np.ceil(np.log2(max(center_points.shape[0], 2))))
    )
    if objective == "kcenter":
        return float(dist.max())
    d = dist if objective != "kmeans" else dist * dist
    if weights is None:
        return float(d.sum())
    return float(np.sum(weights * d))


def _true_cost_store(
    store: ShardStore, center_points, objective: str, machine: PramMachine
) -> float:
    """Streamed :func:`_true_cost` over a shard store.

    One shard is resident at a time; each block's nearest-center
    distances are scattered into an ``(n,)`` array at their original
    positions, and the objective reduces over that array in original
    point order. Because the KD query computes each point independently
    and the reduction order matches the single-pass query exactly, the
    result is **byte-identical** to the resident evaluation — the store
    parity suite pins it.
    """
    from scipy.spatial import cKDTree

    tree = cKDTree(center_points)
    d_full = np.empty(store.n)
    w_full = np.empty(store.n) if store.has_weights else None
    for _, pts, w, origin in store.iter_shards():
        dist, _ = tree.query(np.asarray(pts))
        d_full[origin] = dist
        if w_full is not None:
            w_full[origin] = w
    machine.ledger.charge_basic(
        "shard_true_cost",
        store.n * int(np.ceil(np.log2(max(center_points.shape[0], 2)))),
    )
    if objective == "kcenter":
        return float(d_full.max())
    d = d_full if objective != "kmeans" else d_full * d_full
    if w_full is None:
        return float(d.sum())
    return float(np.sum(w_full * d))


def shard_and_solve(
    source,
    k: int,
    *,
    shards: int = 8,
    partition: str = "locality",
    coreset: str = "gonzalez",
    coreset_size: int | None = None,
    solver: str = "kmedian",
    neighbors: int = 64,
    fallback_slack: float = 1.0,
    epsilon: float = 0.5,
    weights=None,
    seed=None,
    backend=None,
    machine: PramMachine | None = None,
    tracer=None,
    on_shard_failure: str = "raise",
    retry_policy: RetryPolicy | None = None,
    coverage_floor: float = 0.5,
    fault_plan: FaultPlan | None = None,
    spill_dir: str | None = None,
    **solver_kwargs,
) -> ShardSolution:
    """Partition → coreset → merge → solve → map back, in one call.

    Parameters
    ----------
    source:
        Either an ``(n, dim)`` coordinate array (the scale path), a
        :class:`~repro.shard.store.ShardStore` (the out-of-core path:
        blocks stream from disk one shard at a time, ``shards`` /
        ``partition`` / ``weights`` come from the store itself), or an
        existing :class:`~repro.metrics.instance.ClusteringInstance` /
        :class:`~repro.metrics.sparse.SparseClusteringInstance` — then
        ``shards`` must be 1 (instances carry no coordinates to
        partition) and the solver runs directly on it, byte-identical
        to a direct seeded call.
    k:
        Center budget of the final solution.
    shards / partition:
        Shard count and partitioner (``random``/``grid``/``locality``).
    coreset / coreset_size:
        Per-shard summarizer (``gonzalez``/``sample``/``none``) and its
        representative budget (default ``max(16·k, 128)``; ``none``
        keeps every point at its own weight).
    solver:
        ``kmedian`` (§7 local search, default), ``kmeans``,
        ``kcenter``, or ``kmedian_lagrangian`` — run on the merged
        weighted instance via the existing entry points.
    neighbors / fallback_slack:
        kNN candidate structure of the merged instance. The default is
        deliberately richer than the raw-instance builders' (64): the
        merged coreset is small by construction, and a tight truncation
        would cap most service costs at the fallback, blinding the swap
        loop (measured: 3× worse true cost at 16 neighbors on blob
        workloads, for <25% of the wall-clock back at 64).
    weights:
        Optional per-point input weights (the pipeline composes: a
        weighted input yields weight-aggregated coresets).
    seed / backend / machine:
        Standard execution controls; coreset seeding derives from
        ``seed`` through a SeedSequence spawn, so results do not depend
        on how the backend schedules the shard builds.
    on_shard_failure:
        What to do when a shard's coreset build terminally fails.
        ``"raise"`` (default) surfaces the failure as
        :class:`~repro.errors.ShardFailedError`; ``"retry"`` supervises
        the builds under ``retry_policy`` (default
        :class:`~repro.faults.RetryPolicy`) and raises only once the
        budget is exhausted — because a retried shard reuses its own
        seed, a recovered run is byte-identical to one that never
        failed; ``"drop"`` proceeds on surviving shards with a widened,
        coverage-aware certificate (``degraded=True`` on the result).
    retry_policy:
        The :class:`~repro.faults.RetryPolicy` for supervised builds
        (timeouts, backoff, attempt budget). ``None`` means a default
        policy for ``"retry"``, fail-fast for the other modes.
    coverage_floor:
        Refuse to degrade below this fraction of the total demand
        weight (in ``(0, 1]``): if surviving shards cover less,
        ``"drop"`` raises instead of returning garbage.
    fault_plan:
        Test/CI hook: a :class:`~repro.faults.FaultPlan` injected into
        the supervised builds. ``None`` consults ``REPRO_FAULT_PLAN``
        in the environment (unset = no injection). Any fault plan or
        retry policy forces the supervised path even for ``"raise"``.
    spill_dir:
        Raw-points sources only: spill the partitioned blocks to this
        directory as a :class:`~repro.shard.store.ShardStore` and run
        the rest of the pipeline out of core (streamed coreset builds
        and true-cost evaluation). Byte-identical to the resident run —
        the blocks carry the same bits in the same order — while the
        points array is no longer touched after the spill.
    solver_kwargs:
        Forwarded to the solver entry point (e.g. ``max_rounds``,
        ``initial``, ``max_probes``).
    """
    if solver not in _SOLVERS:
        raise InvalidParameterError(
            f"unknown solver {solver!r}; expected one of {sorted(_SOLVERS)}"
        )
    run, ratio_fn = _SOLVERS[solver]
    shards = int(shards)
    if shards < 1:
        raise InvalidParameterError(f"shards must be >= 1, got {shards}")
    if on_shard_failure not in _FAILURE_MODES:
        raise InvalidParameterError(
            f"unknown on_shard_failure {on_shard_failure!r}; "
            f"expected one of {_FAILURE_MODES}"
        )
    check_unit_fraction(coverage_floor, name="coverage_floor")
    if retry_policy is not None and not isinstance(retry_policy, RetryPolicy):
        raise InvalidParameterError(
            f"retry_policy must be a RetryPolicy, got {type(retry_policy).__name__}"
        )
    if fault_plan is None:
        fault_plan = FaultPlan.from_env()

    # -- identity pipeline: an instance passed straight through --------
    if isinstance(source, (ClusteringInstance, SparseClusteringInstance)):
        if shards != 1:
            raise InvalidParameterError(
                "instance sources carry no coordinates to partition; pass "
                "shards=1 (identity pipeline) or raw points"
            )
        if weights is not None:
            raise InvalidParameterError(
                "instance sources carry their own weights; pass weights only "
                "with raw points"
            )
        if spill_dir is not None:
            raise InvalidParameterError(
                "spill_dir applies to raw-points sources; instances carry "
                "no coordinate blocks to spill"
            )
        instance = source if int(k) == source.k else _rebudget(source, int(k))
        size = instance.m if isinstance(instance, SparseClusteringInstance) else instance.D.size
        machine = ensure_machine(
            machine, backend=backend, seed=seed, size=size, tracer=tracer
        )
        with machine.tracer.span(
            "shard.solve", "shard", {"solver": solver, "identity": True, "n": int(instance.n)}
        ):
            sol = run(instance, machine, epsilon, **solver_kwargs)
        centers = np.sort(sol.centers)
        return ShardSolution(
            centers=centers,
            merged_centers=centers,
            cost=sol.cost,
            true_cost=sol.cost,
            objective=sol.objective,
            solution=sol,
            shards=1,
            shard_sizes=np.asarray([instance.n]),
            coreset_sizes=np.asarray([instance.n]),
            movement=0.0,
            bound=composed_coreset_bound(ratio_fn(epsilon), 0.0) if ratio_fn else None,
            rounds=dict(sol.rounds),
            model_costs=sol.model_costs,
            extra={"identity": True, "solver": solver},
        )

    # -- the scale path: raw coordinates or an out-of-core store --------
    store: ShardStore | None = None
    points = None
    labels = None
    if isinstance(source, ShardStore):
        store = source
        if weights is not None:
            raise InvalidParameterError(
                "a ShardStore carries its own weights; pass weights only "
                "with raw points"
            )
        if spill_dir is not None:
            raise InvalidParameterError(
                "spill_dir applies to raw-points sources; the store is "
                "already on disk"
            )
        shards = store.shards
        n = store.n
    else:
        points = np.asarray(source, dtype=float)
        if points.ndim != 2 or points.shape[0] == 0:
            raise InvalidParameterError(
                "source must be an (n, dim) point array, a ShardStore, or a "
                f"clustering instance; got shape {getattr(points, 'shape', None)}"
            )
        n = points.shape[0]
    k = int(k)
    if not 1 <= k <= n:
        raise InvalidParameterError(f"k must be in [1, {n}], got {k}")
    per_shard = int(coreset_size) if coreset_size is not None else max(16 * k, 128)
    machine = ensure_machine(
        machine, backend=backend, seed=seed,
        size=2 * int(neighbors) * min(n, per_shard * shards),
        tracer=tracer,
    )
    obs = machine.tracer

    weights_input = weights
    if store is None:
        part_args = {"shards": int(shards), "n": int(n), "partition": partition}
        with obs.span("shard.partition", "shard", part_args):
            labels = make_partition(points, shards, partition, seed=seed)
            sizes = shard_sizes(labels, shards)
            machine.ledger.charge_basic("shard_partition", n)
            machine.bump_round("shard_partition")
            part_args["sizes"] = [int(s) for s in sizes]
        if spill_dir is not None:
            # Spill the blocks and stream everything downstream from
            # disk: identical bits in identical order, so the result is
            # byte-for-byte the resident run's.
            with obs.span(
                "shard.spill", "shard",
                {"bytes": int(points.nbytes), "shards": int(shards)},
            ):
                store = ShardStore.create(
                    spill_dir, points, labels, shards, weights=weights
                )
            points = None
            labels = None
            weights_input = None
    else:
        sizes = np.asarray(store.sizes)

    # Supervision is opt-in: the unsupervised path below is byte-for-byte
    # the historical one, and the supervised path with zero failures runs
    # the *same* per-shard payloads with the same seeds, so both agree.
    supervise = (
        on_shard_failure != "raise"
        or retry_policy is not None
        or fault_plan is not None
    )
    failed: list[int] = []
    failures: list = []
    weights_arr = (
        None if weights_input is None else np.asarray(weights_input, dtype=float)
    )
    src = store if store is not None else points
    src_labels = None if store is not None else labels
    src_shards = None if store is not None else shards
    core_args = {
        "shards": int(shards), "size": int(per_shard), "method": coreset,
        "supervised": supervise,
    }
    with obs.span("shard.coreset", "shard", core_args):
        if supervise:
            policy = retry_policy if retry_policy is not None else (
                RetryPolicy() if on_shard_failure == "retry" else NO_RETRY
            )
            coresets, failures = supervised_shard_coresets(
                src, src_labels, src_shards, per_shard,
                weights=weights_input, method=coreset, seed=seed, machine=machine,
                policy=policy, fault_plan=fault_plan, tracer=obs,
            )
            failed = [s for s, c in enumerate(coresets) if c is None]
            core_args["failed"] = len(failed)
            if failed and on_shard_failure != "drop":
                raise ShardFailedError(
                    f"{len(failed)} of {shards} shard coreset build(s) failed "
                    f"terminally (shards {failed}); first failure: "
                    f"{failures[0].error}"
                ) from failures[0].error
        else:
            coresets = build_shard_coresets(
                src, src_labels, src_shards, per_shard,
                weights=weights_input, method=coreset, seed=seed, machine=machine,
            )

    covered_frac = 1.0
    failed_mask = None
    if failed:
        if len(failed) == shards:
            raise ShardFailedError(
                f"every shard failed ({shards}/{shards}); nothing to degrade "
                f"onto. First failure: {failures[0].error}"
            ) from failures[0].error
        if store is not None:
            total_w = store.total_weight
            dropped_w = float(store.weight_totals[np.asarray(failed, dtype=int)].sum())
        else:
            failed_mask = np.isin(labels, np.asarray(failed, dtype=np.intp))
            if weights_arr is None:
                total_w = float(n)
                dropped_w = float(np.count_nonzero(failed_mask))
            else:
                total_w = float(weights_arr.sum())
                dropped_w = float(weights_arr[failed_mask].sum())
        covered_frac = 1.0 - dropped_w / total_w
        if covered_frac < float(coverage_floor):
            raise ShardFailedError(
                f"refusing to degrade: surviving shards cover "
                f"{covered_frac:.4f} of the demand weight, below "
                f"coverage_floor={float(coverage_floor):g}"
            ) from failures[0].error

    survivors = [c for c in coresets if c is not None]
    movement = float(sum(c.movement for c in survivors))

    merged_n = int(sum(c.size for c in survivors))
    neighbors_eff = int(neighbors)
    if solver == "kcenter":
        # The §6.1 bottleneck search needs the stored graph dominable by
        # ≤ k nodes; a kNN graph's dominator count is ≈ merged_n /
        # neighbors, so widen the candidate structure accordingly (the
        # merged instance is the *reduced* one — the extra edges are
        # cheap by construction).
        neighbors_eff = max(neighbors_eff, int(np.ceil(2.0 * merged_n / max(k, 1))) + 1)
    merge_args = {"survivors": len(survivors), "neighbors": neighbors_eff}
    with obs.span("shard.merge", "shard", merge_args):
        merged, origin, merged_points = merge_coresets(
            survivors, k, neighbors=neighbors_eff, fallback_slack=fallback_slack
        )
        machine.ledger.charge_basic(
            "shard_merge", merged.nnz * int(np.ceil(np.log2(max(merged.nnz, 2))))
        )
        machine.bump_round("shard_merge")
        merge_args["merged_n"] = int(merged.n)
        merge_args["merged_nnz"] = int(merged.nnz)

    if solver in ("kmedian", "kmeans") and "initial" not in solver_kwargs:
        solver_kwargs = {**solver_kwargs, "initial": _gonzalez_warm_start(merged_points, k)}
    with obs.span(
        "shard.solve", "shard", {"solver": solver, "merged_n": int(merged.n)}
    ):
        sol = run(merged, machine, epsilon, **solver_kwargs)
    merged_centers = np.sort(sol.centers)
    centers = np.sort(origin[merged_centers])
    with obs.span(
        "shard.true_cost", "shard", {"store": store is not None, "n": int(n)}
    ):
        if store is not None:
            true_cost = _true_cost_store(
                store, merged_points[merged_centers], sol.objective, machine
            )
        else:
            true_cost = _true_cost(
                points, weights_arr, merged_points[merged_centers], sol.objective,
                machine,
            )
        # The solver's reported cost is the *fallback-capped* truncated
        # objective; the movement bound composes against the exact coreset
        # cost, so evaluate that too (one tiny KD query over the merged
        # points): true_cost ≤ merged_cost_exact + movement for k-median.
        merged_cost_exact = _true_cost(
            merged_points, merged.weights, merged_points[merged_centers],
            sol.objective, machine,
        )
    extra = {
        "identity": False,
        "solver": solver,
        "partition": partition,
        "store": store is not None,
        "coreset": coreset,
        "coreset_size": per_shard,
        "neighbors": neighbors_eff,
        "merged_n": merged.n,
        "merged_nnz": merged.nnz,
        "merged_cost_exact": merged_cost_exact,
    }
    if failed:
        # Degraded accounting: charge each dropped point to its nearest
        # *surviving* representative. The triangle inequality then gives
        # the verifiable sandwich (linear distances, k-median family)
        #   true_cost ≤ merged_cost_exact + movement
        #               + dropped_movement + dropped_rep_service
        # where dropped_movement = Σ w_j·d(j, rep(j)) widens the
        # certificate and dropped_rep_service = Σ w_j·d(rep(j), S) is
        # already (approximately) paid inside the solved objective.
        from scipy.spatial import cKDTree

        with obs.span(
            "shard.degraded_account", "shard",
            {"failed": len(failed), "covered_frac": covered_frac},
        ):
            if store is not None:
                # Gather the failed shards' blocks and restore global point
                # order (each block's origin is ascending; a stable argsort
                # over the concatenation is the merge) — the same rows, in
                # the same order, a resident ``points[failed_mask]`` yields.
                blocks = [store.load_shard(s) for s in failed]
                forder = np.argsort(
                    np.concatenate([o for _, _, o in blocks]), kind="stable"
                )
                fp = np.concatenate([np.asarray(p) for p, _, _ in blocks])[forder]
                fw = (
                    np.concatenate([np.asarray(w) for _, w, _ in blocks])[forder]
                    if store.has_weights
                    else np.ones(fp.shape[0])
                )
            else:
                fp = points[failed_mask]
                fw = (
                    np.ones(fp.shape[0])
                    if weights_arr is None
                    else weights_arr[failed_mask]
                )
            dist_rep, rep_idx = cKDTree(merged_points).query(fp)
            dropped_movement = float(np.sum(fw * dist_rep))
            rep_to_center, _ = cKDTree(merged_points[merged_centers]).query(
                merged_points[rep_idx]
            )
            dropped_rep_service = float(np.sum(fw * rep_to_center))
            machine.ledger.charge_basic(
                "shard_degraded_account",
                2 * fp.shape[0]
                * int(np.ceil(np.log2(max(merged_points.shape[0], 2)))),
            )
            machine.bump_round("shard_degraded_account")
        extra.update(
            dropped_movement=dropped_movement,
            dropped_rep_service=dropped_rep_service,
            dropped_weight=float(np.sum(fw)),
        )
        bound = (
            degraded_coreset_bound(
                ratio_fn(epsilon), movement, dropped_movement, covered_frac
            )
            if ratio_fn
            else None
        )
    else:
        bound = composed_coreset_bound(ratio_fn(epsilon), movement) if ratio_fn else None
    return ShardSolution(
        centers=centers,
        merged_centers=merged_centers,
        cost=sol.cost,
        true_cost=true_cost,
        objective=sol.objective,
        solution=sol,
        shards=shards,
        shard_sizes=sizes,
        coreset_sizes=np.asarray([0 if c is None else c.size for c in coresets]),
        movement=movement,
        bound=bound,
        rounds=dict(machine.ledger.rounds),
        model_costs=machine.ledger.snapshot(),
        extra=extra,
        degraded=bool(failed),
        failed_shards=np.asarray(failed, dtype=int),
        covered_weight_fraction=covered_frac,
        failures=failures,
    )


def _rebudget(instance, k: int):
    """Same candidate structure with budget ``k`` (both instance shapes)."""
    if isinstance(instance, SparseClusteringInstance):
        return instance.with_budget(k)
    return ClusteringInstance(
        instance.space, k,
        weights=None if instance.has_unit_weights else instance.weights,
    )
