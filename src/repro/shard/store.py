"""Out-of-core shard storage: partitioned point blocks on disk.

The shard pipeline (PR 5) holds every input point in one process's RAM
and slices shard blocks out of the resident array. That caps the
reachable scale at "fits in memory with headroom for temporaries". A
:class:`ShardStore` removes the cap: the partitioned blocks are spilled
to disk as raw ``.npy`` files — one points/origin(/weights) triple per
shard, written in the exact order the in-RAM pipeline slices them — and
read back as ``np.memmap`` views, so the driver streams one shard at a
time instead of keeping the dataset resident.

Layout of a store directory::

    manifest.json             # schema, shard count, sizes, weight totals
    shard_00000.points.npy    # (n_s, dim) float64 block
    shard_00000.origin.npy    # (n_s,) intp global point ids
    shard_00000.weights.npy   # (n_s,) float64 (only for weighted stores)
    ...

**Byte-identity invariant**: ``ShardStore.create(points, labels, ...)``
writes shard ``s`` as ``points[np.flatnonzero(labels == s)]`` — the same
expression the in-RAM payload builder uses — so a coreset built from a
stored block is byte-identical to one built from the resident slice,
and the whole shard-and-conquer result is invariant to where the blocks
live (pinned by the store parity suite).

Workers receive a :class:`StoredShard` — a few paths and integers, a
trivially picklable ref — and open the memmaps *inside* the worker, so
the zero-copy batch transport never ships a point block at all: the OS
page cache is the shared medium.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidInstanceError, InvalidParameterError

#: Manifest schema version; bump on incompatible layout changes.
STORE_VERSION = 1

_MANIFEST = "manifest.json"
_FORMAT = "repro-shard-store"


def _block_name(shard: int, part: str) -> str:
    return f"shard_{shard:05d}.{part}.npy"


@dataclass(frozen=True)
class StoredShard:
    """Picklable reference to one shard's on-disk block.

    Carries paths and sizes only; :meth:`load` opens the arrays — as
    read-only memory maps by default — wherever the ref lands (driver
    or worker process).
    """

    points_path: str
    origin_path: str
    weights_path: str | None
    size: int
    dim: int

    def load(self, mmap_mode: str | None = "r"):
        """``(points, weights_or_None, origin)`` views of the block."""
        points = np.load(self.points_path, mmap_mode=mmap_mode)
        origin = np.load(self.origin_path, mmap_mode=mmap_mode)
        weights = (
            None
            if self.weights_path is None
            else np.load(self.weights_path, mmap_mode=mmap_mode)
        )
        return points, weights, origin


class ShardStore:
    """A directory of partitioned point blocks with memory-mapped reads.

    Build one with :meth:`create` (from resident points + labels) or
    :func:`partition_to_store` (partition and spill in one call), reopen
    with :meth:`open`. Instances are cheap handles — all state is the
    manifest plus lazily opened memmaps.
    """

    def __init__(self, directory: str, manifest: dict):
        self.directory = str(directory)
        self._manifest = manifest
        self.shards = int(manifest["shards"])
        self.n = int(manifest["n"])
        self.dim = int(manifest["dim"])
        self.has_weights = bool(manifest["has_weights"])
        self.sizes = np.asarray(manifest["sizes"], dtype=np.intp)
        self.weight_totals = np.asarray(manifest["weight_totals"], dtype=float)

    # -- construction -------------------------------------------------------

    @classmethod
    def create(
        cls,
        directory: str,
        points,
        labels,
        shards: int,
        *,
        weights=None,
    ) -> "ShardStore":
        """Spill ``points`` to ``directory`` as per-shard blocks.

        Validation mirrors the in-RAM payload builder exactly (label
        range, no empty shard, strictly positive weights) so a store
        accepts precisely the inputs the resident pipeline would.
        ``points`` may itself be a memmap — blocks are gathered shard
        by shard, so residency stays one shard at a time.
        """
        points = np.asarray(points, dtype=float)
        if points.ndim != 2 or points.shape[0] == 0:
            raise InvalidParameterError(
                f"points must be a non-empty (n, dim) array, got shape {points.shape}"
            )
        n, dim = points.shape
        labels = np.asarray(labels, dtype=np.intp)
        if labels.shape != (n,):
            raise InvalidParameterError(
                f"labels must have shape ({n},), got {labels.shape}"
            )
        shards = int(shards)
        if shards < 1:
            raise InvalidParameterError(f"shards must be >= 1, got {shards}")
        if labels.min() < 0 or labels.max() >= shards:
            raise InvalidParameterError(
                f"labels must lie in [0, {shards}); got range "
                f"[{int(labels.min())}, {int(labels.max())}]"
            )
        weights_arr = None
        if weights is not None:
            weights_arr = np.asarray(weights, dtype=float)
            if weights_arr.shape != (n,) or (
                weights_arr.size and weights_arr.min() <= 0
            ):
                raise InvalidParameterError(
                    "weights must be strictly positive, one per point"
                )
        os.makedirs(directory, exist_ok=True)
        sizes = []
        weight_totals = []
        for s in range(shards):
            idx = np.flatnonzero(labels == s)
            if idx.size == 0:
                raise InvalidParameterError(
                    f"shard {s} is empty; labels must cover every shard"
                )
            sizes.append(int(idx.size))
            np.save(os.path.join(directory, _block_name(s, "points")), points[idx])
            np.save(
                os.path.join(directory, _block_name(s, "origin")),
                idx.astype(np.intp),
            )
            if weights_arr is not None:
                block_w = weights_arr[idx]
                np.save(os.path.join(directory, _block_name(s, "weights")), block_w)
                weight_totals.append(float(block_w.sum()))
            else:
                weight_totals.append(float(idx.size))
        manifest = {
            "format": _FORMAT,
            "version": STORE_VERSION,
            "shards": shards,
            "n": int(n),
            "dim": int(dim),
            "has_weights": weights_arr is not None,
            "sizes": sizes,
            "weight_totals": weight_totals,
        }
        with open(os.path.join(directory, _MANIFEST), "w") as fh:
            json.dump(manifest, fh, indent=1)
        return cls(directory, manifest)

    @classmethod
    def open(cls, directory: str) -> "ShardStore":
        """Reopen an existing store, verifying manifest and blocks."""
        path = os.path.join(directory, _MANIFEST)
        if not os.path.isfile(path):
            raise InvalidInstanceError(
                f"{directory!r} is not a shard store (no {_MANIFEST})"
            )
        with open(path) as fh:
            manifest = json.load(fh)
        if manifest.get("format") != _FORMAT:
            raise InvalidInstanceError(
                f"{directory!r} manifest has format "
                f"{manifest.get('format')!r}, expected {_FORMAT!r}"
            )
        if int(manifest.get("version", -1)) > STORE_VERSION:
            raise InvalidInstanceError(
                f"shard store {directory!r} has schema version "
                f"{manifest['version']}, newer than supported {STORE_VERSION}"
            )
        store = cls(directory, manifest)
        for s in range(store.shards):
            ref = store.shard_ref(s)
            for p in (ref.points_path, ref.origin_path, ref.weights_path):
                if p is not None and not os.path.isfile(p):
                    raise InvalidInstanceError(
                        f"shard store {directory!r} is missing block file {p!r}"
                    )
        return store

    # -- access -------------------------------------------------------------

    def _check_shard(self, s: int) -> int:
        s = int(s)
        if not 0 <= s < self.shards:
            raise InvalidParameterError(
                f"shard index must be in [0, {self.shards}), got {s}"
            )
        return s

    def shard_ref(self, s: int) -> StoredShard:
        """Picklable on-disk ref for shard ``s`` (what workers receive)."""
        s = self._check_shard(s)
        return StoredShard(
            points_path=os.path.join(self.directory, _block_name(s, "points")),
            origin_path=os.path.join(self.directory, _block_name(s, "origin")),
            weights_path=(
                os.path.join(self.directory, _block_name(s, "weights"))
                if self.has_weights
                else None
            ),
            size=int(self.sizes[s]),
            dim=self.dim,
        )

    def load_shard(self, s: int, mmap_mode: str | None = "r"):
        """``(points, weights_or_None, origin)`` for shard ``s`` —
        read-only memmap views by default."""
        return self.shard_ref(s).load(mmap_mode=mmap_mode)

    def iter_shards(self, mmap_mode: str | None = "r"):
        """Yield ``(s, points, weights_or_None, origin)`` one shard at a
        time — the streaming access pattern; residency is one block."""
        for s in range(self.shards):
            points, weights, origin = self.load_shard(s, mmap_mode=mmap_mode)
            yield s, points, weights, origin

    @property
    def total_weight(self) -> float:
        return float(self.weight_totals.sum())

    def __repr__(self) -> str:  # pragma: no cover - repr convenience
        return (
            f"ShardStore({self.directory!r}, shards={self.shards}, "
            f"n={self.n}, dim={self.dim}, weighted={self.has_weights})"
        )


def partition_to_store(
    points,
    shards: int,
    directory: str,
    *,
    partition: str = "locality",
    weights=None,
    seed=None,
    machine=None,
) -> ShardStore:
    """Partition ``points`` and spill the blocks in one call.

    The labels come from the same :func:`repro.shard.partition
    .make_partition` the resident driver uses (identical partitioner,
    identical seed handling), so a store built here and a resident run
    with the same arguments shard the data identically. When a
    ``machine`` is given the partition pass is charged to its ledger —
    the same ``shard_partition`` charge the driver makes — so model
    accounting is independent of where the blocks end up.
    """
    from repro.shard.partition import make_partition

    points = np.asarray(points, dtype=float)
    labels = make_partition(points, shards, partition, seed=seed)
    store = ShardStore.create(
        directory, points, labels, int(shards), weights=weights
    )
    if machine is not None:
        machine.ledger.charge_basic("shard_partition", points.shape[0])
        machine.bump_round("shard_partition")
    return store
