"""Shard-and-conquer: clustering beyond a single instance's memory.

The sparse subsystem (PRs 3–4) takes the §6.1/§7 solvers to 100k-node
CSR instances; the ROADMAP's production scale — millions of points —
does not fit even one CSR candidate structure comfortably, let alone a
dense matrix. The standard distributed-clustering route (Cohen-Addad et
al.'s MPC k-means, arXiv:2507.14089; Garimella et al.'s Pregel facility
location, arXiv:1503.03635) is::

    partition → per-shard weighted coreset → merge → solve → map back

This package implements that pipeline on top of the existing machinery:

* :mod:`repro.shard.partition` — random / balanced-grid / locality
  (KD-median) shard assignment over raw point coordinates;
* :mod:`repro.shard.coreset` — Gonzalez-seeded and sampling-based
  weighted coresets per shard, executed shard-parallel over the
  serial/thread/process backends with per-shard PRAM ledger charges
  folded into the global ledger under parallel composition;
* :mod:`repro.shard.merge` — concatenate the shard coresets into one
  *weighted* :class:`~repro.metrics.sparse.SparseClusteringInstance`
  (kNN candidate structure, KD-tree-first);
* :mod:`repro.shard.solve` — the driver
  :func:`~repro.shard.solve.shard_and_solve`, which runs any existing
  clustering solver on the merged instance, maps centers back to
  original point ids, evaluates the true objective over all points,
  and reports the composed approximation accounting via
  :func:`repro.analysis.composed_coreset_bound`.

With ``shards=1`` and ``coreset="none"`` the pipeline is the identity:
an instance passed straight through produces byte-identical seeded
solutions to calling the solver directly — the regression anchor the
test suite pins.
"""

from repro.shard.coreset import (
    ShardCoreset,
    build_coreset,
    build_shard_coresets,
    supervised_shard_coresets,
)
from repro.shard.merge import merge_coresets
from repro.shard.partition import (
    grid_partition,
    kdtree_partition,
    make_partition,
    random_partition,
    shard_sizes,
)
from repro.shard.solve import ShardSolution, shard_and_solve
from repro.shard.store import (
    STORE_VERSION,
    ShardStore,
    StoredShard,
    partition_to_store,
)

__all__ = [
    "STORE_VERSION",
    "ShardStore",
    "StoredShard",
    "partition_to_store",
    "ShardCoreset",
    "build_coreset",
    "build_shard_coresets",
    "supervised_shard_coresets",
    "merge_coresets",
    "random_partition",
    "grid_partition",
    "kdtree_partition",
    "make_partition",
    "shard_sizes",
    "ShardSolution",
    "shard_and_solve",
]
