"""Per-shard weighted coresets, built shard-parallel over the backends.

A *coreset* here is an assignment-based summary: pick ``size``
representatives inside the shard, snap every shard point to its nearest
representative, and give each representative the **sum of the weights**
it absorbed. Two seeding rules share that aggregation:

* ``"gonzalez"`` — farthest-point traversal (the §6.1 baseline's
  seeding): the representative set is a 2-approximate ``size``-center
  solution of the shard, so the movement ``Σ w_j d(j, rep(j))`` is
  within ``2·size``-center optimum per shard — the classical
  deterministic coreset.
* ``"sample"`` — weight-proportional sampling without replacement
  (Gumbel top-k), the cheap randomized alternative.

Both preserve total weight exactly (``Σ coreset weights = Σ shard
weights``) and report their *movement* — the quantity the composed
approximation bound (:func:`repro.analysis.composed_coreset_bound`)
charges.

Every shard build runs on its own fresh :class:`~repro.pram.ledger`
and returns the accrued interval; :func:`build_shard_coresets` fans the
builds across the backend's worker pool
(:meth:`~repro.pram.backends.Backend.submit_batch`) and folds the
per-shard charges into the caller's global ledger under **parallel
composition** (work adds, depth maxes) via
:meth:`~repro.pram.ledger.CostLedger.charge_parallel` — so the global
ledger charges exactly the sum of the per-shard work, with no
double-charging at the aggregation seam (pinned by a regression test).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidParameterError
from repro.pram.ledger import CostLedger, CostSnapshot
from repro.pram.machine import PramMachine
from repro.shard.store import ShardStore, StoredShard

_METHODS = ("gonzalez", "sample", "none")


@dataclass
class ShardCoreset:
    """One shard's weighted summary.

    Attributes
    ----------
    points:
        ``(t, dim)`` representative coordinates.
    weights:
        ``(t,)`` aggregated weights (``Σ = Σ`` of the shard's weights).
    origin:
        ``(t,)`` original (global) point id of each representative.
    movement:
        ``Σ_j w_j · d(j, rep(j))`` over the shard — the weighted
        distance the summarization moved the demand.
    costs:
        PRAM ledger interval accrued building this shard.
    """

    points: np.ndarray
    weights: np.ndarray
    origin: np.ndarray
    movement: float
    costs: CostSnapshot

    @property
    def size(self) -> int:
        return self.points.shape[0]


def farthest_point_seeds(
    points: np.ndarray, size: int, start: int, ledger: CostLedger | None = None
) -> np.ndarray:
    """Farthest-point traversal from ``start`` — the shared Gonzalez
    kernel behind the coreset seeder and the driver's merged-instance
    warm start. ``O(size · n)``; charged to ``ledger`` when given."""
    n = points.shape[0]
    seeds = np.empty(size, dtype=np.intp)
    seeds[0] = int(start)
    d = np.linalg.norm(points - points[seeds[0]], axis=1)
    for t in range(1, size):
        seeds[t] = int(np.argmax(d))
        np.minimum(d, np.linalg.norm(points - points[seeds[t]], axis=1), out=d)
    if ledger is not None:
        ledger.charge_basic("coreset_seed[gonzalez]", size * n)
    return seeds


def _gonzalez_seeds(points: np.ndarray, size: int, rng, ledger: CostLedger) -> np.ndarray:
    """Farthest-point representative indices (seeded start)."""
    return farthest_point_seeds(points, size, int(rng.integers(points.shape[0])), ledger)


def _sample_seeds(
    points: np.ndarray, weights: np.ndarray, size: int, rng, ledger: CostLedger
) -> np.ndarray:
    """Weight-proportional sample without replacement (Gumbel top-k)."""
    n = points.shape[0]
    keys = np.log(weights) + rng.gumbel(size=n)
    ledger.charge_sort("coreset_seed[sample]", n, n)
    return np.argpartition(keys, n - size)[n - size:]


def build_coreset(
    points,
    size: int,
    *,
    weights=None,
    origin=None,
    method: str = "gonzalez",
    seed=None,
    ledger: CostLedger | None = None,
) -> ShardCoreset:
    """Summarize one shard into ``≤ size`` weighted representatives.

    ``size ≥ n`` (or ``method="none"``) returns the identity coreset:
    every point its own representative, movement 0 — the pass-through
    that makes a ``shards=1`` pipeline equal the direct solve.
    """
    points = np.asarray(points, dtype=float)
    if points.ndim != 2 or points.shape[0] == 0:
        raise InvalidParameterError(
            f"shard points must be a non-empty (n, dim) array, got shape {points.shape}"
        )
    n = points.shape[0]
    if method not in _METHODS:
        raise InvalidParameterError(
            f"unknown coreset method {method!r}; expected one of {_METHODS}"
        )
    size = int(size)
    if size < 1:
        raise InvalidParameterError(f"coreset size must be >= 1, got {size}")
    weights = (
        np.ones(n) if weights is None else np.asarray(weights, dtype=float).copy()
    )
    if weights.shape != (n,) or (weights.size and weights.min() <= 0):
        raise InvalidParameterError("shard weights must be strictly positive, one per point")
    origin = (
        np.arange(n, dtype=np.intp)
        if origin is None
        else np.asarray(origin, dtype=np.intp)
    )
    if origin.shape != (n,):
        raise InvalidParameterError(f"origin must have shape ({n},), got {origin.shape}")
    ledger = ledger if ledger is not None else CostLedger()
    start = ledger.snapshot()

    if method == "none" or size >= n:
        ledger.charge_basic("coreset_identity", n, depth=1)
        return ShardCoreset(
            points=points.copy(),
            weights=weights,
            origin=origin.copy(),
            movement=0.0,
            costs=ledger.since(start),
        )

    rng = np.random.default_rng(seed)
    if method == "gonzalez":
        reps = _gonzalez_seeds(points, size, rng, ledger)
    else:
        reps = _sample_seeds(points, weights, size, rng, ledger)
    reps = np.sort(reps)

    from scipy.spatial import cKDTree

    dist, assign = cKDTree(points[reps]).query(points)
    ledger.charge_basic("coreset_assign", n * int(np.ceil(np.log2(max(size, 2)))))
    agg = np.bincount(assign, weights=weights, minlength=reps.size)
    movement = float(np.sum(weights * dist))
    ledger.charge_basic("coreset_aggregate", n, depth=1)
    # Duplicate coordinates can leave a representative with nothing
    # assigned (both seeders may pick coincident points; the KD query
    # then routes every twin to one of them). A zero-weight entry would
    # be rejected by the merged instance's weight validation, so drop
    # it here — no point referenced it, so assignments, movement, and
    # total weight are untouched.
    occupied = agg > 0
    return ShardCoreset(
        points=points[reps[occupied]].copy(),
        weights=agg[occupied],
        origin=origin[reps[occupied]].copy(),
        movement=movement,
        costs=ledger.since(start),
    )


def _coreset_task(payload) -> ShardCoreset:
    """Module-level worker (picklable for the process pool).

    A payload's points slot may hold a
    :class:`~repro.shard.store.StoredShard` instead of a resident
    block: the ref is resolved to read-only memmap views *here*, inside
    whichever process runs the task — the out-of-core path ships paths,
    not points, and the OS page cache is the shared medium."""
    points, weights, origin, size, method, seed = payload
    if isinstance(points, StoredShard):
        points, weights, origin = points.load()
    return build_coreset(
        points, size, weights=weights, origin=origin, method=method, seed=seed
    )


def _shard_payloads(points, labels, shards, size, weights, method, seed) -> list:
    """Validated per-shard task payloads, seeds spawned from one
    :class:`numpy.random.SeedSequence` — the determinism anchor: a
    shard's payload (and therefore its coreset, on any attempt of any
    backend) depends only on ``(seed, shard index)``, never on
    scheduling or on which other shards failed."""
    points = np.asarray(points, dtype=float)
    labels = np.asarray(labels, dtype=np.intp)
    n = points.shape[0]
    if labels.shape != (n,):
        raise InvalidParameterError(f"labels must have shape ({n},), got {labels.shape}")
    shards = int(shards)
    if labels.size and (labels.min() < 0 or labels.max() >= shards):
        # An out-of-range label would silently drop its points from
        # every shard, breaking the weight-conservation invariant.
        raise InvalidParameterError(
            f"labels must lie in [0, {shards}); got range "
            f"[{int(labels.min())}, {int(labels.max())}]"
        )
    weights_arr = None if weights is None else np.asarray(weights, dtype=float)
    child_seeds = np.random.SeedSequence(seed).spawn(shards)
    payloads = []
    for s in range(shards):
        idx = np.flatnonzero(labels == s)
        if idx.size == 0:
            raise InvalidParameterError(f"shard {s} is empty; labels must cover every shard")
        payloads.append(
            (
                points[idx],
                None if weights_arr is None else weights_arr[idx],
                idx,
                size,
                method,
                child_seeds[s],
            )
        )
    return payloads


def _store_payloads(store: ShardStore, size, method, seed) -> list:
    """Per-shard task payloads over a :class:`ShardStore` — the same
    tuple shape as :func:`_shard_payloads` with the points slot holding
    a picklable :class:`StoredShard` ref, and seeds spawned from the
    same :class:`numpy.random.SeedSequence` rule. A store written from
    ``(points, labels)`` therefore produces byte-identical coresets to
    the resident payloads for the same ``(seed, shard index)``."""
    child_seeds = np.random.SeedSequence(seed).spawn(store.shards)
    return [
        (store.shard_ref(s), None, None, size, method, child_seeds[s])
        for s in range(store.shards)
    ]


def build_shard_coresets(
    points,
    labels=None,
    shards: int | None = None,
    size: int = 128,
    *,
    weights=None,
    method: str = "gonzalez",
    seed=None,
    machine: PramMachine | None = None,
) -> list[ShardCoreset]:
    """Build every shard's coreset, shard-parallel over the backend.

    ``points`` is either a resident ``(n, dim)`` array accompanied by
    ``labels``/``shards``, or a :class:`~repro.shard.store.ShardStore`
    — then ``labels``/``shards``/``weights`` stay ``None`` (the store
    carries its own partition and weights) and each task streams its
    block from disk inside the worker.

    Shard seeds derive from one :class:`numpy.random.SeedSequence`
    spawn, so results are identical however the backend schedules the
    tasks (serial loop, thread pool, or process pool) and wherever the
    blocks live (resident or stored). When ``machine`` is given, the
    per-shard ledger intervals are folded into its global ledger as a
    single parallel-composition charge.

    Failures propagate raw (first one wins); for supervised execution
    with retries, timeouts, and structured failure records use
    :func:`supervised_shard_coresets`.
    """
    if isinstance(points, ShardStore):
        if labels is not None or weights is not None:
            raise InvalidParameterError(
                "a ShardStore carries its own partition and weights; "
                "pass labels/weights only with resident points"
            )
        payloads = _store_payloads(points, size, method, seed)
    else:
        payloads = _shard_payloads(points, labels, shards, size, weights, method, seed)
    if machine is not None and not machine.backend.closed:
        results = machine.backend.submit_batch(_coreset_task, payloads)
    else:
        results = [_coreset_task(p) for p in payloads]
    if machine is not None:
        machine.ledger.charge_parallel("shard_coreset", [c.costs for c in results])
        machine.bump_round("shard_coreset")
    return results


def _coreset_validator(expected_weight: np.ndarray):
    """Result validation for supervised builds: a returned coreset must
    be a :class:`ShardCoreset` with finite, strictly positive weights
    conserving the shard's total — the contract a corrupted result
    (injected or real) breaks."""
    from repro.errors import InvalidInstanceError

    def validate(index: int, coreset) -> None:
        if not isinstance(coreset, ShardCoreset):
            raise InvalidInstanceError(
                f"shard {index} returned {type(coreset).__name__}, not a ShardCoreset"
            )
        w = np.asarray(coreset.weights, dtype=float)
        if w.size == 0 or not np.all(np.isfinite(w)) or float(w.min()) <= 0.0:
            raise InvalidInstanceError(
                f"shard {index} coreset weights are not finite and strictly "
                f"positive (corrupt result?)"
            )
        want = float(expected_weight[index])
        if abs(float(w.sum()) - want) > 1e-6 * max(want, 1.0):
            raise InvalidInstanceError(
                f"shard {index} coreset does not conserve weight: "
                f"{float(w.sum())!r} != {want!r}"
            )

    return validate


def supervised_shard_coresets(
    points,
    labels=None,
    shards: int | None = None,
    size: int = 128,
    *,
    weights=None,
    method: str = "gonzalez",
    seed=None,
    machine: PramMachine | None = None,
    policy=None,
    fault_plan=None,
    tracer=None,
):
    """Fault-tolerant :func:`build_shard_coresets`.

    Runs the same per-shard tasks — identical payloads, identical
    seeds — under a :class:`repro.faults.Supervisor`: per-task
    timeouts, retries with backoff per ``policy``, crash recovery with
    pool respawn, and result validation that rejects corrupted coresets
    (non-finite/non-positive weights, broken weight conservation).

    Returns ``(coresets, failures)`` where ``coresets[s]`` is shard
    ``s``'s :class:`ShardCoreset` or ``None`` if it terminally failed,
    and ``failures`` the :class:`repro.faults.TaskFailure` records.
    Because a retried shard reuses its own ``SeedSequence`` child, a
    recovered run is **byte-identical** to one that never failed — the
    property the fault test matrix pins.

    Only surviving shards' ledger intervals are folded into the
    machine's global ledger (work that died with a worker was model
    work never completed).
    """
    from repro.faults.supervisor import Supervisor
    from repro.pram.backends import SerialBackend

    if isinstance(points, ShardStore):
        if labels is not None or weights is not None:
            raise InvalidParameterError(
                "a ShardStore carries its own partition and weights; "
                "pass labels/weights only with resident points"
            )
        payloads = _store_payloads(points, size, method, seed)
        expected = np.asarray(points.weight_totals, dtype=float)
    else:
        payloads = _shard_payloads(points, labels, shards, size, weights, method, seed)
        labels_arr = np.asarray(labels, dtype=np.intp)
        if weights is None:
            expected = np.bincount(labels_arr, minlength=int(shards)).astype(float)
        else:
            expected = np.bincount(
                labels_arr,
                weights=np.asarray(weights, dtype=float),
                minlength=int(shards),
            )
    backend = (
        machine.backend
        if machine is not None and not machine.backend.closed
        else SerialBackend()
    )
    supervisor = Supervisor(backend, policy, fault_plan, tracer=tracer)
    results, failures = supervisor.submit_batch(
        _coreset_task, payloads, validate=_coreset_validator(expected)
    )
    if machine is not None:
        survived = [c.costs for c in results if c is not None]
        if survived:
            machine.ledger.charge_parallel("shard_coreset", survived)
        machine.bump_round("shard_coreset")
    return results, failures
