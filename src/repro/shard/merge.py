"""Merge shard coresets into one weighted sparse clustering instance.

The reduce step of shard-and-conquer: concatenate every shard's
representatives (points, aggregated weights, original ids) and build a
weighted kNN :class:`~repro.metrics.sparse.SparseClusteringInstance`
over them — KD-tree-first, so no dense matrix over the merged coreset
ever exists. The merged instance's node ``i`` *is* representative
``i``; the returned ``origin`` array maps merged node ids back to
original point ids, which is how the driver translates solved centers
into answers about the full dataset.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError
from repro.metrics.generators import knn_clustering_from_points
from repro.metrics.sparse import SparseClusteringInstance
from repro.shard.coreset import ShardCoreset


def merge_coresets(
    coresets,
    k: int,
    *,
    neighbors: int = 16,
    fallback_slack: float = 1.0,
) -> tuple[SparseClusteringInstance, np.ndarray, np.ndarray]:
    """Concatenate shard coresets and build the merged weighted instance.

    Parameters
    ----------
    coresets:
        Iterable of :class:`~repro.shard.coreset.ShardCoreset`.
    k:
        Center budget of the merged instance.
    neighbors:
        kNN candidates per merged node (clipped to the merged size).
    fallback_slack:
        Passed through to the kNN builder's fallback column.

    Returns
    -------
    (instance, origin, points):
        The weighted :class:`SparseClusteringInstance`, the original
        point id of each merged node, and the merged coordinates
        (``(t, dim)``) — kept so the driver can evaluate the true
        objective over all original points.
    """
    coresets = list(coresets)
    if not coresets:
        raise InvalidParameterError("merge_coresets needs at least one coreset")
    for c in coresets:
        if not isinstance(c, ShardCoreset):
            raise InvalidParameterError(
                f"expected ShardCoreset entries, got {type(c).__name__}"
            )
    points = np.concatenate([c.points for c in coresets], axis=0)
    weights = np.concatenate([c.weights for c in coresets])
    origin = np.concatenate([c.origin for c in coresets])
    t = points.shape[0]
    if t < int(k):
        raise InvalidParameterError(
            f"merged coreset has {t} representatives but k={k}: raise "
            "coreset_size (or lower k) so the reduced instance can hold "
            "a feasible solution"
        )
    unit = bool(np.all(weights == 1.0))
    instance = knn_clustering_from_points(
        points,
        int(k),
        neighbors=min(int(neighbors), t),
        fallback_slack=fallback_slack,
        weights=None if unit else weights,
    )
    return instance, origin, points
