"""Shard assignment over raw point coordinates.

Three partitioners, one contract: given ``n`` points (and a shard
count), return an ``intp`` label vector in ``[0, shards)``. They trade
balance against locality:

* :func:`random_partition` — balanced by construction, zero locality.
  The baseline every distributed-clustering paper compares against:
  coresets then summarize *global* structure per shard, which is fine
  for k-median (each shard sees an iid thinning of the data).
* :func:`grid_partition` — balanced-grid: per-axis quantile cuts give
  equal-mass stripes whose product cells are folded onto shards in
  cell-rank order. Locality within a cell, balance from the quantiles.
* :func:`kdtree_partition` — locality: recursively split the largest
  cell at the median of its widest axis (exactly the KD-tree
  construction the kNN builders use) until there are ``shards``
  leaves. Best locality, balanced to within the median splits.

All three are deterministic given their inputs (``random_partition``
given its seed).
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError
from repro.util.rng import ensure_rng


def _check_points(points) -> np.ndarray:
    points = np.asarray(points, dtype=float)
    if points.ndim != 2 or points.shape[0] == 0:
        raise InvalidParameterError(
            f"points must be a non-empty (n, dim) array, got shape {points.shape}"
        )
    if not np.all(np.isfinite(points)):
        raise InvalidParameterError("points must be finite")
    return points


def _check_shards(shards: int, n: int) -> int:
    shards = int(shards)
    if not 1 <= shards <= n:
        raise InvalidParameterError(f"shards must be in [1, {n}], got {shards}")
    return shards


def random_partition(n: int, shards: int, *, seed=None) -> np.ndarray:
    """Balanced random assignment: a seeded permutation folded onto
    ``[0, shards)``, so shard sizes differ by at most one."""
    n = int(n)
    if n <= 0:
        raise InvalidParameterError(f"n must be positive, got {n}")
    shards = _check_shards(shards, n)
    rng = ensure_rng(seed)
    labels = np.empty(n, dtype=np.intp)
    labels[rng.permutation(n)] = np.arange(n, dtype=np.intp) % shards
    return labels


def grid_partition(points, shards: int) -> np.ndarray:
    """Balanced-grid assignment via per-axis quantile cuts.

    Each axis is cut into ``g = ceil(shards^(1/dim))`` equal-mass
    stripes (empirical quantiles), the product cells are ranked in
    row-major order, and cell rank is folded onto ``[0, shards)`` so
    every shard receives whole cells of nearby points.
    """
    points = _check_points(points)
    n, dim = points.shape
    shards = _check_shards(shards, n)
    if shards == 1:
        return np.zeros(n, dtype=np.intp)
    g = int(np.ceil(shards ** (1.0 / dim)))
    cell = np.zeros(n, dtype=np.intp)
    for axis in range(dim):
        cuts = np.quantile(points[:, axis], np.linspace(0, 1, g + 1)[1:-1])
        cell = cell * g + np.searchsorted(cuts, points[:, axis], side="right")
    # Equal-size contiguous runs of the cell-sorted order: whole cells
    # stay together except at the ~shards seam points, and every shard
    # gets n/shards ± 1 points even on degenerate (all-duplicate) data.
    order = np.lexsort((np.arange(n), cell))
    labels = np.empty(n, dtype=np.intp)
    labels[order] = (np.arange(n, dtype=np.int64) * shards // n).astype(np.intp)
    return labels


def kdtree_partition(points, shards: int) -> np.ndarray:
    """Locality assignment: KD-median splits until ``shards`` leaves.

    Repeatedly splits the largest remaining cell at the median of its
    widest axis — each split halves the cell, so the final leaves are
    spatially compact and balanced to within the rounding of the
    median. ``O(n log shards)``.
    """
    points = _check_points(points)
    n, _ = points.shape
    shards = _check_shards(shards, n)
    cells = [np.arange(n, dtype=np.intp)]
    while len(cells) < shards:
        big = max(range(len(cells)), key=lambda i: cells[i].size)
        idx = cells.pop(big)
        sub = points[idx]
        axis = int(np.argmax(sub.max(axis=0) - sub.min(axis=0)))
        order = np.argsort(sub[:, axis], kind="stable")
        half = idx.size // 2
        cells.append(idx[order[:half]])
        cells.append(idx[order[half:]])
    labels = np.empty(n, dtype=np.intp)
    for s, idx in enumerate(cells):
        labels[idx] = s
    return labels


_PARTITIONERS = ("random", "grid", "locality")


def make_partition(points, shards: int, method: str = "locality", *, seed=None) -> np.ndarray:
    """Dispatch on the partitioner name (``random``/``grid``/``locality``)."""
    if method == "random":
        return random_partition(np.asarray(points).shape[0], shards, seed=seed)
    if method == "grid":
        return grid_partition(points, shards)
    if method == "locality":
        return kdtree_partition(points, shards)
    raise InvalidParameterError(
        f"unknown partition method {method!r}; expected one of {_PARTITIONERS}"
    )


def shard_sizes(labels: np.ndarray, shards: int) -> np.ndarray:
    """Points per shard (validates that every shard is non-empty)."""
    sizes = np.bincount(np.asarray(labels, dtype=np.intp), minlength=int(shards))
    if sizes.size > int(shards) or np.any(sizes == 0):
        raise InvalidParameterError(
            f"labels do not form a partition into {shards} non-empty shards"
        )
    return sizes
