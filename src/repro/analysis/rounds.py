"""Round-count envelopes for the E2 experiments.

Each iterative phase in the paper carries an explicit high-probability
round bound; this module centralizes those envelopes so tests and
benches compare measured counters against named formulas rather than
magic numbers.
"""

from __future__ import annotations

import math


def round_envelopes(m: int, epsilon: float) -> dict:
    """The paper's round bounds for input size ``m`` and slack ``ε``.

    Returns a dict of phase name → bound:

    * ``greedy_outer`` — ``log_{1+ε}(m³)`` (§4, preprocessing argument);
    * ``greedy_subselect`` — ``O(log_{1+ε} m)`` per outer round
      (Lemma 4.8); reported with constant 4 + additive headroom;
    * ``pd_iterations`` — ``3·log_{1+ε} m + O(1)`` (§5 running time);
    * ``rounding`` — ``O(log_{1+ε} m)`` (§6.2 running time);
    * ``luby`` — ``O(log m)`` dominator-set rounds (Lemma 3.1),
      reported with constant 4 + additive headroom.
    """
    m = max(int(m), 2)
    log1pe = math.log1p(epsilon)
    return {
        "greedy_outer": 3.0 * math.log(m) / log1pe + 2,
        "greedy_subselect": 4.0 * math.log(m) / log1pe + 16,
        "pd_iterations": 3.0 * math.log(m) / log1pe + 8,
        "rounding": math.log(m) / log1pe + 8,
        "luby": 4.0 * math.log2(m) + 8,
    }
