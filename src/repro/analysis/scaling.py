"""Work-exponent fitting for the E1 work-efficiency experiments.

The paper's work bounds have the form ``O(m^p · polylog m)``. Fitting a
straight line to ``(log m, log(work / log^q m))`` over a size sweep
recovers the polynomial exponent ``p``; the benches assert the fitted
exponent is near the claim (the polylog factor is divided out first, so
it cannot masquerade as polynomial growth over a small sweep).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidParameterError


@dataclass(frozen=True)
class WorkFit:
    """Least-squares fit of ``log work ~ p·log m + c`` (polylog removed)."""

    exponent: float
    constant: float
    log_power: float
    residual: float
    sizes: tuple
    works: tuple


def fit_work_exponent(sizes, works, *, log_power: float = 0.0) -> WorkFit:
    """Fit the polynomial exponent of ``works ≈ C·m^p·(log m)^q``.

    Parameters
    ----------
    sizes, works:
        Matched sequences from a size sweep (≥ 3 points).
    log_power:
        The claimed polylog power ``q`` to divide out before fitting.
    """
    m = np.asarray(sizes, dtype=float)
    w = np.asarray(works, dtype=float)
    if m.size != w.size or m.size < 3:
        raise InvalidParameterError("need >= 3 matched (size, work) points")
    if np.any(m <= 1) or np.any(w <= 0):
        raise InvalidParameterError("sizes must exceed 1 and works be positive")
    y = np.log(w) - log_power * np.log(np.log(m))
    x = np.log(m)
    A = np.column_stack([x, np.ones_like(x)])
    coef, res, _, _ = np.linalg.lstsq(A, y, rcond=None)
    residual = float(res[0]) if res.size else 0.0
    return WorkFit(
        exponent=float(coef[0]),
        constant=float(coef[1]),
        log_power=log_power,
        residual=residual,
        sizes=tuple(float(v) for v in m),
        works=tuple(float(v) for v in w),
    )


def predicted_work(fit: WorkFit, size: float) -> float:
    """Evaluate the fitted model at ``size``."""
    return float(
        np.exp(fit.constant) * size**fit.exponent * np.log(size) ** fit.log_power
    )
