"""Analysis toolkit: the measurement side of the reproduction.

Turns the paper's claims into measured quantities: Eq. (2) bounds,
approximation ratios against exact/LP references, work-exponent fits on
ledger data (for the work-efficiency claims), and round-count envelopes
(for the ``O(log_{1+ε} m)`` claims).
"""

from repro.analysis.bounds import (
    CoresetBound,
    DegradedCoresetBound,
    composed_coreset_bound,
    degraded_coreset_bound,
    eq2_bounds,
    verify_eq2,
)
from repro.analysis.certificates import Certificate, certify_facility_location
from repro.analysis.ratios import RatioReport, measure_ratio
from repro.analysis.scaling import fit_work_exponent, predicted_work
from repro.analysis.rounds import round_envelopes

__all__ = [
    "eq2_bounds",
    "verify_eq2",
    "CoresetBound",
    "composed_coreset_bound",
    "DegradedCoresetBound",
    "degraded_coreset_bound",
    "Certificate",
    "certify_facility_location",
    "RatioReport",
    "measure_ratio",
    "fit_work_exponent",
    "predicted_work",
    "round_envelopes",
]
