"""A-posteriori quality certificates for facility-location solutions.

The deepest practical payoff of the paper's dual-fitting analyses is
that its algorithms emit *certificates*: a dual vector α whose
(canonically completed) feasibility proves ``Σα ≤ opt`` by weak
duality, so ``cost / Σα`` is a **machine-checkable upper bound on the
true approximation ratio of this particular solution** — usually far
tighter than the worst-case factor, and available without knowing
``opt``.

:func:`certify_facility_location` packages that logic: given a
solution (and optionally its dual vector and/or the LP optimum), it
returns the best provable ratio bound and which certificate produced
it. The primal–dual algorithm's α is feasible as-is; the greedy's
needs shrinking (Lemma 4.6/4.7) — the certificate shrinks by the
measured :func:`repro.lp.duality.dual_fitting_slack` so the bound stays
*valid*, just weaker.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.bounds import eq2_bounds
from repro.errors import InvalidParameterError
from repro.lp.duality import check_dual_feasible, dual_fitting_slack
from repro.metrics.instance import FacilityLocationInstance


@dataclass(frozen=True)
class Certificate:
    """A provable quality statement about one concrete solution.

    Attributes
    ----------
    cost:
        The solution's Eq. (1) objective.
    lower_bound:
        The largest *certified* lower bound on ``opt`` available.
    ratio_bound:
        ``cost / lower_bound`` — a proof that this solution is within
        that factor of optimal.
    source:
        Which certificate produced the bound: ``"dual"`` (feasible α),
        ``"dual/shrunk"`` (α scaled into feasibility), ``"lp"``
        (LP optimum supplied by the caller), or ``"eq2"`` (the γ bound,
        always available but weak).
    """

    cost: float
    lower_bound: float
    ratio_bound: float
    source: str

    def __str__(self) -> str:
        return (
            f"cost {self.cost:.6g} ≤ {self.ratio_bound:.4f} × opt "
            f"(certified via {self.source}: opt ≥ {self.lower_bound:.6g})"
        )


def certify_facility_location(
    instance: FacilityLocationInstance,
    opened,
    *,
    alpha: np.ndarray | None = None,
    lp_value: float | None = None,
    tol: float = 1e-7,
) -> Certificate:
    """Best provable approximation bound for ``opened`` on ``instance``.

    Candidate lower bounds on ``opt`` (largest certified one wins):

    1. ``Σα`` when ``alpha`` (canonically completed) is dual feasible —
       weak duality;
    2. ``Σα / g`` otherwise, with ``g`` the measured dual-fitting
       slack — ``α/g`` is feasible by construction, so this is still a
       certificate;
    3. ``lp_value`` when the caller solved the LP;
    4. the Eq. (2) lower bound ``γ`` (always available).

    Raises
    ------
    InvalidParameterError
        If an ``lp_value`` is supplied that exceeds the solution cost
        (an LP optimum can never exceed any feasible integral cost —
        the caller passed the wrong number).
    """
    cost = instance.cost(opened)
    candidates: list[tuple[float, str]] = []

    b = eq2_bounds(instance)
    if b.gamma > 0:
        candidates.append((b.gamma, "eq2"))

    if alpha is not None:
        alpha = np.asarray(alpha, dtype=float)
        total = float(alpha.sum())
        if total > 0:
            if check_dual_feasible(instance, alpha, tol=tol, raise_on_fail=False):
                candidates.append((total, "dual"))
            else:
                g = dual_fitting_slack(instance, alpha)
                candidates.append((total / g, "dual/shrunk"))

    if lp_value is not None:
        if lp_value > cost * (1 + 1e-9):
            raise InvalidParameterError(
                f"claimed LP optimum {lp_value} exceeds the integral cost {cost}; "
                "an LP relaxation can never do that"
            )
        if lp_value > 0:
            candidates.append((float(lp_value), "lp"))

    if not candidates:
        # Degenerate: γ = 0 and nothing else — the optimum is 0-cost
        # territory; the only honest statement is ratio 1 if cost is 0.
        if cost <= tol:
            return Certificate(cost=cost, lower_bound=0.0, ratio_bound=1.0, source="eq2")
        raise InvalidParameterError(
            "no positive lower bound available (γ = 0, no duals, no LP value)"
        )

    lower, source = max(candidates)
    return Certificate(
        cost=cost, lower_bound=lower, ratio_bound=cost / lower, source=source
    )
