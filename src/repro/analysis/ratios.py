"""Approximation-ratio measurement harness.

Given an algorithm under test and a reference lower bound (exact
optimum or LP value), runs repeated seeded trials and reports the
worst/mean ratio — the row format used throughout EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidParameterError
from repro.util.rng import spawn_rngs


@dataclass(frozen=True)
class RatioReport:
    """Measured approximation quality of one algorithm on one workload."""

    name: str
    claimed_factor: float
    reference: float
    worst_ratio: float
    mean_ratio: float
    trials: int

    @property
    def within_claim(self) -> bool:
        """Whether the worst measured ratio respects the claimed factor
        (with a 0.1% numeric allowance)."""
        return self.worst_ratio <= self.claimed_factor * 1.001

    def row(self) -> str:
        """One formatted report row (EXPERIMENTS.md table format)."""
        flag = "ok" if self.within_claim else "VIOLATED"
        return (
            f"{self.name:<28s} claim≤{self.claimed_factor:<7.3f} "
            f"worst={self.worst_ratio:.4f} mean={self.mean_ratio:.4f} "
            f"trials={self.trials} [{flag}]"
        )


def measure_ratio(
    name: str,
    run,
    reference: float,
    *,
    claimed_factor: float,
    trials: int = 5,
    seed=0,
) -> RatioReport:
    """Run ``run(rng) -> cost`` for ``trials`` seeded trials and compare
    each cost against ``reference`` (a lower bound on the optimum)."""
    if reference <= 0:
        raise InvalidParameterError(f"reference must be positive, got {reference}")
    rngs = spawn_rngs(seed, trials)
    ratios = np.array([float(run(rng)) / reference for rng in rngs])
    return RatioReport(
        name=name,
        claimed_factor=float(claimed_factor),
        reference=float(reference),
        worst_ratio=float(ratios.max()),
        mean_ratio=float(ratios.mean()),
        trials=trials,
    )
