"""Eq. (2) — the paper's cheap upper/lower bounds on ``opt``.

For ``γ_j = min_i (f_i + d(j, i))`` and ``γ = max_j γ_j``::

    γ ≤ opt ≤ Σ_j γ_j ≤ γ·n_c

These bounds gate both preprocessing steps (§4, §5) and the iteration
bounds, so they get their own verified implementation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InfeasibleSolutionError
from repro.metrics.instance import FacilityLocationInstance


@dataclass(frozen=True)
class Eq2Bounds:
    """The four quantities of Eq. (2), in order."""

    gamma: float
    sum_gamma_j: float
    gamma_times_nc: float
    gamma_j: np.ndarray


def eq2_bounds(instance: FacilityLocationInstance) -> Eq2Bounds:
    """Compute ``γ_j``, ``γ``, ``Σ γ_j``, and ``γ·n_c``."""
    gamma_j = np.min(instance.D + instance.f[:, None], axis=0)
    gamma = float(gamma_j.max())
    return Eq2Bounds(
        gamma=gamma,
        sum_gamma_j=float(gamma_j.sum()),
        gamma_times_nc=gamma * instance.n_clients,
        gamma_j=gamma_j,
    )


def verify_eq2(instance: FacilityLocationInstance, opt: float, *, tol: float = 1e-9) -> Eq2Bounds:
    """Assert ``γ ≤ opt ≤ Σ γ_j ≤ γ n_c`` for a known optimum ``opt``."""
    b = eq2_bounds(instance)
    if not (b.gamma <= opt + tol):
        raise InfeasibleSolutionError(f"Eq.(2) lower bound broken: γ={b.gamma} > opt={opt}")
    if not (opt <= b.sum_gamma_j + tol):
        raise InfeasibleSolutionError(
            f"Eq.(2) upper bound broken: opt={opt} > Σγ_j={b.sum_gamma_j}"
        )
    if not (b.sum_gamma_j <= b.gamma_times_nc + tol):
        raise InfeasibleSolutionError(
            f"Eq.(2) chain broken: Σγ_j={b.sum_gamma_j} > γ·n_c={b.gamma_times_nc}"
        )
    return b


# --------------------------------------------------------------------------
# Shard-and-conquer composition (coreset → solver) accounting
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class CoresetBound:
    """Composed approximation accounting for a coreset-then-solve run.

    For a movement-``R`` coreset (``R = Σ_j w_j · d(j, rep(j))``, the
    total weighted distance the summarization moved the demand) and a
    ``c``-approximate solver run on the summarized instance, the
    triangle inequality gives, for the k-median objective::

        |cost_true(S) − cost_coreset(S)| ≤ R        for every S
        cost_true(ALG) ≤ c · opt_true + (c + 1) · R

    ``additive_term`` is ``(c+1)·R``. On kNN-truncated merged
    instances the solver's ``c`` is itself conditional on the
    truncation retaining the relevant candidate edges (see the sparse
    module docstrings); the bound composes whatever ratio is supplied.
    """

    solver_ratio: float
    movement: float
    additive_term: float
    statement: str


def composed_coreset_bound(solver_ratio: float, movement: float) -> CoresetBound:
    """The shard-and-conquer guarantee: solving a movement-``R``
    coreset with a ``c``-approximation is a ``(c, (c+1)·R)``-
    approximation to the original k-median instance (see
    :class:`CoresetBound`)."""
    c = float(solver_ratio)
    r = float(movement)
    if c < 1.0:
        raise InfeasibleSolutionError(f"solver ratio must be ≥ 1, got {c}")
    if r < 0.0:
        raise InfeasibleSolutionError(f"coreset movement must be ≥ 0, got {r}")
    add = (c + 1.0) * r
    return CoresetBound(
        solver_ratio=c,
        movement=r,
        additive_term=add,
        statement=f"cost_true(ALG) ≤ {c:g}·opt_true + {add:g}",
    )


@dataclass(frozen=True)
class DegradedCoresetBound(CoresetBound):
    """The widened certificate for a degraded (shards-dropped) solve.

    When a shard's coreset is lost and the solve proceeds on survivors
    (``on_shard_failure="drop"``), the dropped demand is charged to its
    nearest *surviving* representative: for a dropped point ``j`` with
    nearest surviving representative ``rep(j)``,

        d(j, S) ≤ d(j, rep(j)) + d(rep(j), S)

    so the extra additive damage is ``R_drop = Σ_dropped w_j ·
    d(j, rep(j))`` — the movement the failed shards *would* have paid
    had their points been summarized by the surviving representatives —
    and the composed bound widens from ``(c+1)·R`` to
    ``(c+1)·(R + R_drop)``. ``covered_weight_fraction`` reports how much
    of the total demand weight the surviving shards actually represent;
    the ratio ``c`` is now conditional on the dropped demand not hiding
    structure the solver needed (the same caveat as kNN truncation,
    recorded in the statement rather than silently absorbed).

    The directly checkable consequence (pinned by the fault tests) is
    the sandwich::

        cost_true(S) ≤ cost_coreset_exact(S) + R + R_drop + Σ_dropped w_j·d(rep(j), S)
    """

    dropped_movement: float = 0.0
    covered_weight_fraction: float = 1.0


def degraded_coreset_bound(
    solver_ratio: float,
    movement: float,
    dropped_movement: float,
    covered_weight_fraction: float,
) -> DegradedCoresetBound:
    """Compose the coreset guarantee after dropping failed shards: the
    surviving-shard movement ``R`` widens by ``R_drop`` (dropped demand
    charged at its nearest surviving representative) to a
    ``(c, (c+1)·(R + R_drop))`` statement over the *full* input (see
    :class:`DegradedCoresetBound`)."""
    c = float(solver_ratio)
    r = float(movement)
    r_drop = float(dropped_movement)
    frac = float(covered_weight_fraction)
    if c < 1.0:
        raise InfeasibleSolutionError(f"solver ratio must be ≥ 1, got {c}")
    if r < 0.0:
        raise InfeasibleSolutionError(f"coreset movement must be ≥ 0, got {r}")
    if r_drop < 0.0:
        raise InfeasibleSolutionError(f"dropped movement must be ≥ 0, got {r_drop}")
    if not 0.0 < frac <= 1.0:
        raise InfeasibleSolutionError(
            f"covered weight fraction must be in (0, 1], got {frac}"
        )
    add = (c + 1.0) * (r + r_drop)
    return DegradedCoresetBound(
        solver_ratio=c,
        movement=r,
        additive_term=add,
        statement=(
            f"degraded ({frac:.1%} of demand weight covered): "
            f"cost_true(ALG) ≤ {c:g}·opt_true + {add:g} "
            f"(dropped demand charged at nearest surviving representative)"
        ),
        dropped_movement=r_drop,
        covered_weight_fraction=frac,
    )
