"""Eq. (2) — the paper's cheap upper/lower bounds on ``opt``.

For ``γ_j = min_i (f_i + d(j, i))`` and ``γ = max_j γ_j``::

    γ ≤ opt ≤ Σ_j γ_j ≤ γ·n_c

These bounds gate both preprocessing steps (§4, §5) and the iteration
bounds, so they get their own verified implementation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InfeasibleSolutionError
from repro.metrics.instance import FacilityLocationInstance


@dataclass(frozen=True)
class Eq2Bounds:
    """The four quantities of Eq. (2), in order."""

    gamma: float
    sum_gamma_j: float
    gamma_times_nc: float
    gamma_j: np.ndarray


def eq2_bounds(instance: FacilityLocationInstance) -> Eq2Bounds:
    """Compute ``γ_j``, ``γ``, ``Σ γ_j``, and ``γ·n_c``."""
    gamma_j = np.min(instance.D + instance.f[:, None], axis=0)
    gamma = float(gamma_j.max())
    return Eq2Bounds(
        gamma=gamma,
        sum_gamma_j=float(gamma_j.sum()),
        gamma_times_nc=gamma * instance.n_clients,
        gamma_j=gamma_j,
    )


def verify_eq2(instance: FacilityLocationInstance, opt: float, *, tol: float = 1e-9) -> Eq2Bounds:
    """Assert ``γ ≤ opt ≤ Σ γ_j ≤ γ n_c`` for a known optimum ``opt``."""
    b = eq2_bounds(instance)
    if not (b.gamma <= opt + tol):
        raise InfeasibleSolutionError(f"Eq.(2) lower bound broken: γ={b.gamma} > opt={opt}")
    if not (opt <= b.sum_gamma_j + tol):
        raise InfeasibleSolutionError(
            f"Eq.(2) upper bound broken: opt={opt} > Σγ_j={b.sum_gamma_j}"
        )
    if not (b.sum_gamma_j <= b.gamma_times_nc + tol):
        raise InfeasibleSolutionError(
            f"Eq.(2) chain broken: Σγ_j={b.sum_gamma_j} > γ·n_c={b.gamma_times_nc}"
        )
    return b
