"""Sequential Hochbaum–Shmoys k-center (Math. OR 1985).

The bottleneck method §6.1 parallelizes: binary search over the sorted
distinct distances; at threshold ``t``, greedily build a maximal
dominator set of the threshold graph ``H_t`` (no two chosen nodes
within two hops); the smallest ``t`` whose dominator set has ≤ k nodes
yields a 2-approximation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.metrics.instance import ClusteringInstance


@dataclass
class HSResult:
    """Centers, achieved radius, the selected threshold, and probe count."""

    centers: np.ndarray
    radius: float
    threshold: float
    probes: int


def greedy_dominator_set(adjacency: np.ndarray) -> np.ndarray:
    """Sequential maximal dominator set: scan nodes in index order,
    keep any node not within two hops of an already-kept node."""
    n = adjacency.shape[0]
    blocked = np.zeros(n, dtype=bool)
    chosen: list[int] = []
    for v in range(n):
        if blocked[v]:
            continue
        chosen.append(v)
        nbrs = adjacency[v]
        blocked |= nbrs
        blocked |= adjacency[nbrs].any(axis=0)
        blocked[v] = True
    return np.asarray(chosen, dtype=int)


def hochbaum_shmoys_kcenter(instance: ClusteringInstance) -> HSResult:
    """Binary-search bottleneck 2-approximation for k-center."""
    D, k = instance.D, instance.k
    thresholds = np.unique(D)
    lo, hi = 0, thresholds.size - 1
    probes = 0
    best_centers = None
    best_t = thresholds[-1]
    # Invariant: H at thresholds[hi] passes (≤ k dominators); at the top
    # threshold everything is one hop apart, so a single center suffices.
    while lo <= hi:
        mid = (lo + hi) // 2
        t = thresholds[mid]
        probes += 1
        dom = greedy_dominator_set(D <= t)
        if dom.size <= k:
            best_centers, best_t = dom, t
            hi = mid - 1
        else:
            lo = mid + 1
    assert best_centers is not None  # the largest threshold always passes
    return HSResult(
        centers=best_centers,
        radius=instance.kcenter_cost(best_centers),
        threshold=float(best_t),
        probes=probes,
    )
