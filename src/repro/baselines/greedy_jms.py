"""Sequential greedy facility location of Jain et al. (JACM 2003).

The algorithm §4 parallelizes: repeatedly pick the globally cheapest
star ``(i, C′)`` (facility plus client subset minimizing ``(f_i +
Σ d)/|C′|``), open the facility, zero its cost, and remove the star's
clients. Approximation factor 1.861 (via factor-revealing LP).

This implementation recomputes the cheapest star per iteration in
``O(m log m)`` vectorized time — ``O(n_c · m log m)`` total, which is a
perfectly serviceable baseline at benchmark sizes (the authors' refined
bookkeeping reaches ``O(m log m)`` total but changes no output).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.metrics.instance import FacilityLocationInstance


@dataclass
class GreedyJMSResult:
    """Output of the sequential greedy: open set, cost, and per-iteration
    trace (star prices), used by tests to cross-validate the parallel
    algorithm's behaviour."""

    opened: np.ndarray
    cost: float
    iterations: int
    star_prices: list[float] = field(default_factory=list)


def cheapest_star_prices(D_active: np.ndarray, f_current: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Price and size of the cheapest star at every facility.

    For facility ``i`` with active-client distances sorted ascending,
    the cheapest star over ``k`` clients has price ``(f_i + Σ_{t≤k}
    d_t)/k``; the best ``k`` is where the running price stops
    decreasing (Fact 4.2 / §4 step 1). Returns ``(prices, sizes)``.
    """
    nf, nc = D_active.shape
    order = np.sort(D_active, axis=1)
    prefix = np.cumsum(order, axis=1)
    ks = np.arange(1, nc + 1, dtype=float)
    prices = (f_current[:, None] + prefix) / ks
    best_k = np.argmin(prices, axis=1)
    return prices[np.arange(nf), best_k], best_k + 1


def greedy_jms(instance: FacilityLocationInstance) -> GreedyJMSResult:
    """Run the sequential greedy to completion; returns the open set."""
    D, f = instance.D, instance.f.copy()
    nf, nc = D.shape
    active = np.ones(nc, dtype=bool)
    opened = np.zeros(nf, dtype=bool)
    prices_trace: list[float] = []
    iterations = 0

    while active.any():
        iterations += 1
        D_act = D[:, active]
        prices, sizes = cheapest_star_prices(D_act, f)
        i = int(np.argmin(prices))
        price = float(prices[i])
        k = int(sizes[i])
        prices_trace.append(price)
        # The star's clients are the k closest active clients of i.
        act_idx = np.flatnonzero(active)
        chosen = act_idx[np.argsort(D_act[i], kind="stable")[:k]]
        opened[i] = True
        f[i] = 0.0
        active[chosen] = False

    opened_idx = np.flatnonzero(opened)
    return GreedyJMSResult(
        opened=opened_idx,
        cost=instance.cost(opened_idx),
        iterations=iterations,
        star_prices=prices_trace,
    )
