"""Sequential baselines and exact solvers.

The paper positions each parallel algorithm against a sequential
counterpart ("within a logarithmic factor of the serial algorithm");
this package implements those counterparts from scratch, plus exact
brute-force solvers used to *measure* approximation ratios on small
instances:

* :mod:`greedy_jms` — Jain et al. (JACM 2003) greedy, the 1.861-approx
  sequential algorithm that §4 parallelizes.
* :mod:`jv_sequential` — Jain–Vazirani (JACM 2001) primal–dual
  3-approximation that §5 parallelizes (event-driven exact raising).
* :mod:`gonzalez` — farthest-point 2-approx k-center (Gonzalez 1985).
* :mod:`hochbaum_shmoys` — sequential bottleneck binary search that
  §6.1 parallelizes.
* :mod:`wang_cheng` — an O(n³)-work proxy for the prior parallel
  k-center algorithm the paper improves upon (Wang & Cheng 1990).
* :mod:`local_search_seq` — sequential single-swap local search for
  k-median/k-means (Arya et al. 2004) that §7 parallelizes.
* :mod:`brute_force` — exact optima by enumeration, for ratio
  measurement on small instances.
"""

from repro.baselines.brute_force import (
    brute_force_facility_location,
    brute_force_kcenter,
    brute_force_kmeans,
    brute_force_kmedian,
)
from repro.baselines.greedy_jms import greedy_jms
from repro.baselines.jv_sequential import jv_sequential
from repro.baselines.gonzalez import gonzalez_kcenter
from repro.baselines.hochbaum_shmoys import hochbaum_shmoys_kcenter
from repro.baselines.wang_cheng import wang_cheng_kcenter
from repro.baselines.local_search_seq import local_search_kmeans_seq, local_search_kmedian_seq

__all__ = [
    "brute_force_facility_location",
    "brute_force_kmedian",
    "brute_force_kmeans",
    "brute_force_kcenter",
    "greedy_jms",
    "jv_sequential",
    "gonzalez_kcenter",
    "hochbaum_shmoys_kcenter",
    "wang_cheng_kcenter",
    "local_search_kmedian_seq",
    "local_search_kmeans_seq",
]
