"""Gonzalez's farthest-point k-center 2-approximation (TCS 1985).

The simplest optimal-factor sequential algorithm for k-center:
repeatedly add the point farthest from the current center set. Used as
a baseline for §6.1 and as the classical warm start it competes with.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.instance import ClusteringInstance
from repro.util.validation import check_k


def gonzalez_kcenter(instance: ClusteringInstance, *, first: int = 0) -> np.ndarray:
    """Return ``k`` center indices by farthest-point traversal.

    Deterministic given ``first`` (the seed center). Guarantees
    ``kcenter_cost ≤ 2·opt``.
    """
    D = instance.D
    n, k = instance.n, check_k(instance.k, instance.n)
    centers = np.empty(k, dtype=int)
    centers[0] = int(first) % n
    dist = D[:, centers[0]].copy()
    for t in range(1, k):
        centers[t] = int(np.argmax(dist))
        np.minimum(dist, D[:, centers[t]], out=dist)
    return np.unique(centers)
