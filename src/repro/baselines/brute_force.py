"""Exact solvers by enumeration, for measuring approximation ratios.

These deliberately refuse instances whose enumeration space is large:
they exist to certify optima on test instances, not to compete.
"""

from __future__ import annotations

from itertools import combinations
from math import comb

import numpy as np

from repro.errors import InvalidParameterError
from repro.metrics.instance import ClusteringInstance, FacilityLocationInstance


def brute_force_facility_location(
    instance: FacilityLocationInstance, *, max_facilities: int = 16
) -> tuple[float, np.ndarray]:
    """Exact facility-location optimum over all non-empty facility subsets.

    Returns ``(opt_cost, best_facility_indices)``. Enumerates ``2^{n_f}−1``
    subsets; refuses ``n_f > max_facilities``.
    """
    nf = instance.n_facilities
    if nf > max_facilities:
        raise InvalidParameterError(
            f"brute force caps at {max_facilities} facilities, instance has {nf}"
        )
    D, f = instance.D, instance.f
    w = None if instance.has_unit_weights else instance.client_weights
    best_cost = np.inf
    best: np.ndarray | None = None
    # Grow subsets in Gray-code-free simple order; vectorized min over rows.
    for mask in range(1, 1 << nf):
        idx = np.flatnonzero([(mask >> i) & 1 for i in range(nf)])
        conn = D[idx].min(axis=0)
        cost = f[idx].sum() + (conn.sum() if w is None else (w * conn).sum())
        if cost < best_cost:
            best_cost = cost
            best = idx
    assert best is not None
    return float(best_cost), best


def _brute_force_centers(instance: ClusteringInstance, objective, *, max_subsets: int):
    n, k = instance.n, instance.k
    if comb(n, k) > max_subsets:
        raise InvalidParameterError(
            f"brute force caps at {max_subsets} subsets, C({n},{k})={comb(n, k)}"
        )
    D = instance.D
    w = None if instance.has_unit_weights else instance.weights
    best_cost, best = np.inf, None
    for centers in combinations(range(n), k):
        idx = np.asarray(centers)
        d = D[:, idx].min(axis=1)
        cost = objective(d, w)
        if cost < best_cost:
            best_cost, best = cost, idx
    return float(best_cost), best


def brute_force_kmedian(
    instance: ClusteringInstance, *, max_subsets: int = 500_000
) -> tuple[float, np.ndarray]:
    """Exact (weighted) k-median optimum by enumerating all k-subsets."""
    return _brute_force_centers(
        instance,
        lambda d, w: d.sum() if w is None else (w * d).sum(),
        max_subsets=max_subsets,
    )


def brute_force_kmeans(
    instance: ClusteringInstance, *, max_subsets: int = 500_000
) -> tuple[float, np.ndarray]:
    """Exact (weighted) k-means (sum of squared distances) optimum by enumeration."""
    return _brute_force_centers(
        instance,
        lambda d, w: (d * d).sum() if w is None else (w * d * d).sum(),
        max_subsets=max_subsets,
    )


def brute_force_kcenter(
    instance: ClusteringInstance, *, max_subsets: int = 500_000
) -> tuple[float, np.ndarray]:
    """Exact k-center (bottleneck radius) optimum by enumeration
    (weight-invariant: multiplicities duplicate points in place)."""
    return _brute_force_centers(
        instance, lambda d, w: d.max(), max_subsets=max_subsets
    )
