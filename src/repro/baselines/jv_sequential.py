"""Sequential Jain–Vazirani primal–dual facility location (JACM 2001).

The exact (continuous-time) algorithm that §5 approximates with a
geometric schedule: all client duals ``α_j`` rise uniformly; a facility
tentatively opens when fully paid (``Σ_j max(0, α_j − d(j,i)) = f_i``);
clients freeze upon reaching an open facility. Postprocessing keeps a
maximal independent set of tentatively open facilities in the conflict
graph (two facilities conflict when some client pays both). This is a
Lagrangian-multiplier-preserving 3-approximation.

Implemented event-driven, so the dual raising is exact (no ε): the next
event time is found in closed form per facility from the piecewise-
linear payment function.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.metrics.instance import FacilityLocationInstance

_EPS = 1e-12


@dataclass
class JVResult:
    """Open facilities, objective cost, exact duals, and event count."""

    opened: np.ndarray
    cost: float
    alpha: np.ndarray
    tentatively_open: np.ndarray
    events: int


def _facility_open_time(d_row: np.ndarray, frozen_paid: float, f_i: float, unfrozen_d: np.ndarray, t0: float) -> float:
    """Earliest ``t ≥ t0`` at which facility ``i`` is fully paid.

    Payment at time ``t`` is ``frozen_paid + Σ_{unfrozen j} max(0, t −
    d_ij)`` — piecewise linear and nondecreasing in ``t`` with
    breakpoints at the unfrozen distances.
    """
    need = f_i - frozen_paid
    base = np.maximum(0.0, t0 - unfrozen_d).sum()
    if base >= need - _EPS:
        return t0
    # Breakpoints above t0, ascending; between consecutive breakpoints the
    # slope equals the number of unfrozen clients already reached.
    bps = np.sort(unfrozen_d[unfrozen_d > t0])
    t, paid = t0, base
    slope = float(np.count_nonzero(unfrozen_d <= t0))
    for b in bps:
        if slope > 0 and paid + slope * (b - t) >= need - _EPS:
            return t + (need - paid) / slope
        paid += slope * (b - t)
        t = b
        slope += 1.0
    if slope <= 0:
        return np.inf
    return t + (need - paid) / slope


def jv_sequential(instance: FacilityLocationInstance) -> JVResult:
    """Run the exact Jain–Vazirani algorithm; returns the final open set."""
    D, f = instance.D, instance.f
    nf, nc = D.shape
    alpha = np.zeros(nc)
    frozen = np.zeros(nc, dtype=bool)
    tentative = np.zeros(nf, dtype=bool)
    open_order: list[int] = []
    t = 0.0
    events = 0

    while not frozen.all():
        events += 1
        unfrozen_idx = np.flatnonzero(~frozen)
        # Next facility-opening event.
        t_open = np.full(nf, np.inf)
        for i in np.flatnonzero(~tentative):
            frozen_paid = float(np.maximum(0.0, alpha[frozen] - D[i, frozen]).sum()) if frozen.any() else 0.0
            t_open[i] = _facility_open_time(D[i], frozen_paid, float(f[i]), D[i, ~frozen], t)
        # Next client-freezing event (unfrozen client reaching an open facility).
        t_freeze = np.full(nc, np.inf)
        if tentative.any():
            reach = D[np.ix_(tentative, ~frozen)].min(axis=0)
            t_freeze[unfrozen_idx] = np.maximum(reach, t)
        T = min(t_open.min(initial=np.inf), t_freeze.min(initial=np.inf))
        if not np.isfinite(T):  # pragma: no cover - defensive; cannot happen on valid input
            raise RuntimeError("Jain–Vazirani raising stalled")
        t = T
        # Open every facility whose time has come, then freeze reachable clients.
        for i in np.flatnonzero(t_open <= t + _EPS):
            tentative[i] = True
            open_order.append(i)
        if tentative.any():
            reach_now = D[np.ix_(tentative, ~frozen)].min(axis=0) <= t + _EPS
            newly = unfrozen_idx[reach_now]
            alpha[newly] = t
            frozen[newly] = True

    # Conflict graph: i ~ i′ when some client pays both (α_j > d both sides).
    contrib = alpha[None, :] - D > _EPS  # (nf, nc) strict positive payment
    keep: list[int] = []
    for i in open_order:
        conflicts = False
        for i2 in keep:
            if np.any(contrib[i] & contrib[i2]):
                conflicts = True
                break
        if not conflicts:
            keep.append(i)
    opened_idx = np.asarray(sorted(keep), dtype=int)
    return JVResult(
        opened=opened_idx,
        cost=instance.cost(opened_idx),
        alpha=alpha,
        tentatively_open=np.flatnonzero(tentative),
        events=events,
    )
