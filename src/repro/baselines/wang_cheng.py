"""Work-model proxy for the Wang–Cheng parallel k-center algorithm.

Wang & Cheng (IEEE SPDP 1990) gave the only prior *parallel* k-center
result: a 2-approximation in ``O(n log² n)`` depth and ``O(n³)`` work,
which Theorem 6.1 improves to ``O((n log n)²)`` work. Their paper
predates easy access; per DESIGN.md's substitution rule we implement a
faithful *work-model proxy*: a linear scan over all ``O(n²)`` candidate
thresholds, each probed with an ``O(n²)``-work dominator-set check —
the ``O(n³)``-work shape their bound describes (probes of all ``p ≤ n²``
thresholds are independent, hence parallel, matching the polylog-depth
claim; the scan is capped at ``O(n)`` *distinct* useful radii as in
bottleneck methods). The T3 benchmark compares measured work between
this proxy and the paper's algorithm; only the *shape* of the
comparison (cubic vs. near-quadratic) is asserted.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.hochbaum_shmoys import greedy_dominator_set
from repro.metrics.instance import ClusteringInstance


@dataclass
class WangChengResult:
    """Centers, achieved radius, probe count, and modelled work."""

    centers: np.ndarray
    radius: float
    probes: int
    work: float


def wang_cheng_kcenter(instance: ClusteringInstance) -> WangChengResult:
    """Exhaustive-threshold 2-approximation with ``O(n³)`` modelled work.

    Probes every candidate radius (row-minimized to ``O(n)`` distinct
    values per the bottleneck structure) in ascending order and returns
    the first dominator set of size ≤ k. ``work`` charges ``n²`` per
    probe — the modelled cost of one parallel dominating-set check.
    """
    D, k, n = instance.D, instance.k, instance.n
    # The optimal radius is some d(i, j); probe each distinct value.
    thresholds = np.unique(D)
    work = float(n * n)  # building/sorting the candidate set
    probes = 0
    for t in thresholds:
        probes += 1
        work += float(n * n)
        dom = greedy_dominator_set(D <= t)
        if dom.size <= k:
            return WangChengResult(
                centers=dom,
                radius=instance.kcenter_cost(dom),
                probes=probes,
                work=work,
            )
    raise AssertionError("unreachable: the maximum threshold admits one dominator")
