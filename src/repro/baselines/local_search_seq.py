"""Sequential single-swap local search for k-median / k-means.

The Arya et al. (SICOMP 2004) algorithm §7 parallelizes: from any
initial k-set, repeatedly apply a swap ``(i ∈ S, i′ ∉ S)`` that
improves the objective by at least a ``(1 − β/k)`` factor (β = ε/(1+ε);
the polynomial-time variant of "any improving swap"). 5-approx for
k-median, (81+ε) for k-means by the same analysis (Gupta–Tangwongsan).

Kept deliberately close to the parallel version's semantics so tests
can compare outcomes swap-for-swap; the difference is purely that this
one evaluates swaps serially.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.gonzalez import gonzalez_kcenter
from repro.errors import ConvergenceError
from repro.metrics.instance import ClusteringInstance
from repro.util.validation import check_epsilon


@dataclass
class LocalSearchSeqResult:
    """Centers, final objective, and the number of swaps applied."""

    centers: np.ndarray
    cost: float
    swaps: int


def _nearest_two(Dc: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Nearest and second-nearest center distances (and nearest index)
    for each client, given the client × center distance block."""
    order = np.argsort(Dc, axis=1, kind="stable")
    near = order[:, 0]
    d1 = Dc[np.arange(Dc.shape[0]), near]
    d2 = Dc[np.arange(Dc.shape[0]), order[:, 1]] if Dc.shape[1] > 1 else np.full(Dc.shape[0], np.inf)
    return d1, d2, near


def _local_search(instance: ClusteringInstance, power: float, epsilon: float, max_rounds: int | None):
    D = instance.D**power
    n, k = instance.n, instance.k
    beta = epsilon / (1.0 + epsilon)
    centers = gonzalez_kcenter(instance)
    if centers.size < k:  # farthest-point may collapse on duplicate points
        extra = np.setdiff1d(np.arange(n), centers)[: k - centers.size]
        centers = np.concatenate([centers, extra])
    centers = np.sort(centers)
    cost = float(D[:, centers].min(axis=1).sum())
    swaps = 0
    limit = max_rounds if max_rounds is not None else max(64, 8 * k * int(np.ceil(np.log(n + 1) / beta)))

    for _ in range(limit):
        Dc = D[:, centers]
        d1, d2, near = _nearest_two(Dc)
        out_mask = np.ones(n, dtype=bool)
        out_mask[centers] = False
        candidates = np.flatnonzero(out_mask)
        if candidates.size == 0:  # k = n: nothing to swap in
            return LocalSearchSeqResult(centers=centers, cost=cost, swaps=swaps)
        # base[a, j]: client j's service cost if center slot a is dropped.
        base = np.where(near[None, :] == np.arange(k)[:, None], d2[None, :], d1[None, :])
        # new_cost[a, c] = Σ_j min(base[a, j], D[j, cand_c])
        new_cost = np.minimum(base[:, None, :], D[:, candidates].T[None, :, :]).sum(axis=2)
        a, c = np.unravel_index(np.argmin(new_cost), new_cost.shape)
        if new_cost[a, c] < (1.0 - beta / k) * cost:
            centers = np.sort(np.concatenate([np.delete(centers, a), [candidates[c]]]))
            cost = float(new_cost[a, c])
            swaps += 1
        else:
            return LocalSearchSeqResult(centers=centers, cost=cost, swaps=swaps)
    if max_rounds is None:
        raise ConvergenceError("sequential local search exceeded its round bound")
    return LocalSearchSeqResult(centers=centers, cost=cost, swaps=swaps)


def local_search_kmedian_seq(
    instance: ClusteringInstance, *, epsilon: float = 0.5, max_rounds: int | None = None
) -> LocalSearchSeqResult:
    """Sequential (5+ε)-approx local search for k-median."""
    check_epsilon(epsilon, upper=1.0)
    return _local_search(instance, power=1.0, epsilon=epsilon, max_rounds=max_rounds)


def local_search_kmeans_seq(
    instance: ClusteringInstance, *, epsilon: float = 0.5, max_rounds: int | None = None
) -> LocalSearchSeqResult:
    """Sequential (81+ε)-approx local search for k-means."""
    check_epsilon(epsilon, upper=1.0)
    return _local_search(instance, power=2.0, epsilon=epsilon, max_rounds=max_rounds)
