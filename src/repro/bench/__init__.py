"""Benchmark support: named workloads, experiment harness, reporting.

The ``benchmarks/`` directory contains one pytest-benchmark file per
experiment in DESIGN.md's index (F1, T1–T6, E1–E5); the shared
machinery lives here so each bench file reads as: pick workload → run
experiment → print the paper-claim vs. measured rows.
"""

from repro.bench.workloads import (
    clustering_ratio_suite,
    clustering_scaling_suite,
    fl_lp_suite,
    fl_ratio_suite,
    fl_scaling_suite,
    sparse_scaling_suite,
)
from repro.bench.harness import ExperimentTable
from repro.bench.reporting import render_markdown_table, summarize_rounds

__all__ = [
    "fl_ratio_suite",
    "fl_lp_suite",
    "fl_scaling_suite",
    "clustering_ratio_suite",
    "clustering_scaling_suite",
    "sparse_scaling_suite",
    "ExperimentTable",
    "render_markdown_table",
    "summarize_rounds",
]
