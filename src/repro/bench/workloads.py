"""Named workload suites shared by tests, benches, and examples.

Three tiers per problem:

* *ratio* suites — small enough for exact brute-force optima;
* *lp* suites — medium, lower-bounded by LP optima;
* *scaling* suites — geometric size sweeps for work-exponent fits.

Every suite is deterministic in its ``seed`` and spans the generator
families (Euclidean, clustered, adversarial star/two-scale, random
non-geometric metric) so measured claims aren't generator artifacts.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.generators import (
    clustered_clustering,
    clustered_instance,
    euclidean_clustering,
    euclidean_instance,
    knn_clustering_instance,
    knn_instance,
    random_metric_instance,
    star_instance,
    two_scale_instance,
)
from repro.metrics.instance import ClusteringInstance, FacilityLocationInstance


def fl_ratio_suite(seed: int = 0) -> list:
    """Small facility-location instances (n_f ≤ 12) with exact optima."""
    return [
        ("euclid-8x24", euclidean_instance(8, 24, seed=seed)),
        ("euclid-12x30", euclidean_instance(12, 30, seed=seed + 1)),
        ("clustered-10x40", clustered_instance(10, 40, n_clusters=4, seed=seed + 2)),
        ("random-metric-9x27", random_metric_instance(9, 27, seed=seed + 3)),
        ("star-10", star_instance(10, seed=seed + 4)),
        ("two-scale-4x10", two_scale_instance(4, 10, seed=seed + 5)),
    ]


def fl_lp_suite(seed: int = 0) -> list:
    """Medium facility-location instances, LP-lower-bounded."""
    return [
        ("euclid-20x80", euclidean_instance(20, 80, seed=seed)),
        ("clustered-16x100", clustered_instance(16, 100, n_clusters=5, seed=seed + 1)),
        ("random-metric-15x60", random_metric_instance(15, 60, seed=seed + 2)),
        ("two-scale-6x15", two_scale_instance(6, 15, seed=seed + 3)),
    ]


def fl_scaling_suite(seed: int = 0, *, sizes=((10, 40), (14, 80), (20, 160), (28, 320), (40, 640))) -> list:
    """Geometric ``m = n_f·n_c`` sweep for work-exponent fitting."""
    return [
        (f"euclid-{nf}x{nc}", euclidean_instance(nf, nc, seed=seed + i))
        for i, (nf, nc) in enumerate(sizes)
    ]


def sparse_scaling_suite(
    seed: int = 0,
    *,
    sizes=(10_000, 30_000, 100_000),
    k: int = 8,
    facility_ratio: float = 0.1,
) -> list:
    """k-NN instances at client counts the dense path cannot touch.

    Each entry is ``(name, SparseFacilityLocationInstance)`` with
    ``n_f = facility_ratio · n_c`` facilities and ``k`` candidates per
    client, so ``nnz = k · n_c`` while the dense matrix would need
    ``n_f · n_c`` entries (8 GiB at the default 100k tier). Built
    KD-tree-first — no dense intermediate ever exists.
    """
    out = []
    for i, n_c in enumerate(sizes):
        n_c = int(n_c)
        n_f = max(int(n_c * facility_ratio), k)
        out.append(
            (
                f"knn-{n_f}x{n_c}-k{k}",
                knn_instance(n_f, n_c, k=k, seed=seed + i),
            )
        )
    return out


def clustering_ratio_suite(seed: int = 0) -> list:
    """Small clustering instances with exact optima (C(n,k) bounded)."""
    return [
        ("euclid-n30-k3", euclidean_clustering(30, 3, seed=seed)),
        ("euclid-n40-k4", euclidean_clustering(40, 4, seed=seed + 1)),
        ("blobs-n40-k4", clustered_clustering(40, 4, seed=seed + 2)),
        ("blobs-n36-k3", clustered_clustering(36, 3, n_clusters=3, seed=seed + 3)),
    ]


def clustering_scaling_suite(seed: int = 0, *, sizes=(40, 60, 90, 135, 200), k: int = 5) -> list:
    """Clustering size sweep at fixed k."""
    return [
        (f"euclid-n{n}-k{k}", euclidean_clustering(int(n), k, seed=seed + i))
        for i, n in enumerate(sizes)
    ]


def sparse_clustering_suite(
    seed: int = 0,
    *,
    sizes=(10_000, 30_000, 100_000),
    neighbors: int = 64,
    k_ratio: float = 0.02,
) -> list:
    """kNN clustering instances at node counts the dense path cannot touch.

    Each entry is ``(name, SparseClusteringInstance)`` with
    ``k = k_ratio · n`` centers and ``neighbors`` candidates per node
    (symmetrized), so ``nnz ≈ 2·neighbors·n`` while the dense matrix
    would need ``n²`` entries (80 GiB at the 100k tier). Built
    KD-tree-first — no dense intermediate ever exists. The defaults
    keep ``k`` comfortably above the kNN graph's dominator count, so
    the §6.1 bottleneck search stays feasible on the stored radius.
    """
    out = []
    for i, n in enumerate(sizes):
        n = int(n)
        k = max(int(n * k_ratio), 2)
        out.append(
            (
                f"knn-cluster-{n}-m{neighbors}-k{k}",
                knn_clustering_instance(n, k, neighbors=neighbors, seed=seed + i),
            )
        )
    return out


def _with_weights(instance, rng, *, low=1.0, high=5.0):
    """Reweight a clustering/FL instance with seeded uniform weights."""
    if isinstance(instance, ClusteringInstance):
        return ClusteringInstance(
            instance.space, instance.k,
            weights=rng.uniform(low, high, size=instance.n),
        )
    return FacilityLocationInstance(
        instance.D, instance.f,
        client_weights=rng.uniform(low, high, size=instance.n_clients),
    )


def weighted_clustering_ratio_suite(seed: int = 0) -> list:
    """Small *weighted* clustering instances with exact (weighted
    brute-force) optima — the ratio gate for the shard-and-conquer
    weighted objectives."""
    rng = np.random.default_rng(seed + 1000)
    return [
        (f"w-{name}", _with_weights(inst, rng))
        for name, inst in clustering_ratio_suite(seed)
    ]


def weighted_fl_ratio_suite(seed: int = 0) -> list:
    """Small *weighted* facility-location instances (client
    multiplicities) with exact optima."""
    rng = np.random.default_rng(seed + 2000)
    return [
        (f"w-{name}", _with_weights(inst, rng))
        for name, inst in fl_ratio_suite(seed)
    ]


def shard_scaling_suite(
    seed: int = 0,
    *,
    sizes=(250_000, 1_000_000),
    dim: int = 2,
    k: int = 32,
    n_clusters: int = 64,
) -> list:
    """Raw point clouds at counts no single instance can hold.

    Each entry is ``(name, points, k)`` — coordinates only, *no*
    instance object: at these sizes even the kNN CSR structure of the
    full point set blows past a laptop budget, which is exactly what
    ``repro.shard.shard_and_solve`` exists to get around. Points are
    Gaussian blobs (``n_clusters`` ground-truth clusters) so the
    sharded objective has meaningful structure to recover.
    """
    out = []
    for i, n in enumerate(sizes):
        n = int(n)
        rng = np.random.default_rng(seed + 3000 + i)
        centers = rng.random((n_clusters, dim))
        labels = rng.integers(0, n_clusters, size=n)
        pts = centers[labels] + rng.normal(scale=0.02, size=(n, dim))
        out.append((f"blobs-{n}-k{k}", pts, k))
    return out


def epsilon_sweep(values=(0.02, 0.05, 0.1, 0.2, 0.5, 1.0)) -> np.ndarray:
    """The ε grid used by the E4 ablation."""
    return np.asarray(values, dtype=float)
