"""Perf-regression harness: backends × {dense, frontier-compacted}.

Runs ``parallel_greedy`` and ``parallel_primal_dual`` on the same
seeded workload for every requested backend (serial / thread /
process), once with ``compaction=False`` (the reference full-matrix
path) and once with ``compaction=True``, and records per (algorithm,
backend):

* total wall-clock (min over ``repeats`` runs) and ledger charges
  (work/depth/cache — identical across backends by construction, which
  the report asserts);
* a per-round trace of ledger work and wall-clock, differenced from
  :attr:`repro.pram.ledger.CostLedger.round_log`, so the trajectory
  "per-round cost shrinks with the frontier" is visible, not just the
  totals;
* the compacted-vs-dense wall-clock speedup and charged-work ratio;
* exact-equality checks of the solutions across *all* backends and
  both execution paths (opened set, cost, α).

The CLI writes the result as JSON (committed as ``BENCH_PR2.json`` at
the repo root for this PR's baseline; ``BENCH_PR1.json`` holds the
serial-only PR-1 schema) so later PRs can diff the perf trajectory::

    PYTHONPATH=src python -m repro.bench.regressions --nf 1500 --nc 1500 \
        --backends serial,thread,process --repeats 3 --out BENCH_PR2.json

Fixed seeds throughout: the numbers move only when the algorithms (or
the host) change.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time

import numpy as np

from repro.bench.reporting import summarize_rounds
from repro.core.greedy import parallel_greedy
from repro.core.primal_dual import parallel_primal_dual
from repro.metrics.generators import euclidean_instance
from repro.pram.backends import make_backend
from repro.pram.ledger import RoundMark
from repro.pram.machine import PramMachine

#: Round labels whose traces are exported, per algorithm.
_TRACE_LABELS = {
    "parallel_greedy": "greedy_outer",
    "parallel_primal_dual": "pd_iterations",
}

_ALGORITHMS = {
    "parallel_greedy": parallel_greedy,
    "parallel_primal_dual": parallel_primal_dual,
}


def _per_round(round_log, label, final_work: float, final_wall: float) -> list:
    """Difference consecutive same-label marks into per-round deltas.

    A mark records the cumulative (work, wall) *at round entry*, so each
    round's cost spans to the next same-label mark (or the run's end) —
    for greedy this folds a round's subselection iterations into its
    outer round, which is the granularity the §4 analysis bounds.
    """
    marks = [
        (m.work, m.wall)
        for m in map(RoundMark.coerce, round_log)
        if m.label == label
    ]
    out = []
    for k, (w, t) in enumerate(marks):
        w2, t2 = marks[k + 1] if k + 1 < len(marks) else (final_work, final_wall)
        out.append({"round": k + 1, "ledger_work": w2 - w, "wall_s": t2 - t})
    return out


def _run_once(
    algorithm: str,
    instance,
    *,
    epsilon: float,
    seed: int,
    compaction: bool,
    backend,
    repeats: int = 1,
    summary: bool = False,
) -> dict:
    """Seeded run(s) on one backend; wall-clock is the min over repeats.

    Deterministic seeding makes every repeat compute the identical
    solution and ledger, so only the clock varies; the minimum is the
    standard noise-robust estimate for a fixed workload. With
    ``summary`` the per-round trace is stored as fixed-size summary
    stats instead of raw per-round samples (caps the JSON size on
    workloads with many rounds).
    """
    sol = measure = None
    best_wall = float("inf")
    for _ in range(max(int(repeats), 1)):
        machine = PramMachine(backend=backend, seed=seed)
        t0 = time.perf_counter()
        sol = _ALGORITHMS[algorithm](
            instance, epsilon=epsilon, machine=machine, compaction=compaction
        )
        wall = time.perf_counter() - t0
        if wall >= best_wall:
            continue
        best_wall = wall
        ledger = machine.ledger
        measure = {
            "wall_s": wall,
            "ledger_work": ledger.work,
            "ledger_depth": ledger.depth,
            "ledger_cache": ledger.cache,
            "rounds": dict(ledger.rounds),
        }
        if summary:
            measure["round_summary"] = summarize_rounds(
                ledger.round_log, _TRACE_LABELS[algorithm], ledger.work
            )
        else:
            measure["per_round"] = _per_round(
                ledger.round_log,
                _TRACE_LABELS[algorithm],
                ledger.work,
                t0 + wall,
            )
    return {"solution": sol, "measure": measure}


def _same_solution(a, b) -> bool:
    return bool(
        np.array_equal(a.opened, b.opened)
        and a.cost == b.cost
        and np.array_equal(a.alpha, b.alpha)
    )


def run_regression(
    *,
    nf: int = 1500,
    nc: int = 1500,
    seed: int = 0,
    machine_seed: int = 1,
    epsilon: float = 0.1,
    algorithms=("parallel_greedy", "parallel_primal_dual"),
    backends=("serial",),
    num_workers: int | None = None,
    grain: int | None = None,
    repeats: int = 1,
    summary: bool = False,
) -> dict:
    """Run the backend × compaction sweep and return the report dict.

    Backends are named (``"serial"``/``"thread"``/``"process"``); each
    gets a private pool (closed before the next backend runs) so sweeps
    never overlap worker sets. ``solutions_identical`` per algorithm
    covers every (backend, compaction) combination against the dense
    run of the **first listed backend** — list serial first (as the
    committed baseline does) to make that the serial-parity claim.
    ``cost``/``opened`` and the ``charges_invariant`` reference come
    from the same first-listed run.
    """
    instance = euclidean_instance(nf, nc, seed=seed)
    report = {
        "meta": {
            "workload": f"euclidean_instance({nf}, {nc}, seed={seed})",
            "n_facilities": nf,
            "n_clients": nc,
            "m": nf * nc,
            "epsilon": epsilon,
            "machine_seed": machine_seed,
            "backends": list(backends),
            "num_workers": num_workers if num_workers is not None else (os.cpu_count() or 1),
            "grain": grain,
            "repeats": repeats,
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "algorithms": {},
    }
    for algorithm in algorithms:
        entry = {"backends": {}}
        reference = None  # first listed backend's dense solution
        identical = True
        ref_work = {}
        for backend_name in backends:
            backend = make_backend(backend_name, num_workers=num_workers, grain=grain)
            try:
                dense = _run_once(
                    algorithm,
                    instance,
                    epsilon=epsilon,
                    seed=machine_seed,
                    compaction=False,
                    backend=backend,
                    repeats=repeats,
                    summary=summary,
                )
                compacted = _run_once(
                    algorithm,
                    instance,
                    epsilon=epsilon,
                    seed=machine_seed,
                    compaction=True,
                    backend=backend,
                    repeats=repeats,
                    summary=summary,
                )
            finally:
                backend.close()
            if reference is None:
                reference = dense["solution"]
                entry["cost"] = reference.cost
                entry["opened"] = int(reference.opened.size)
                ref_work = {
                    "dense": dense["measure"]["ledger_work"],
                    "compacted": compacted["measure"]["ledger_work"],
                }
            identical = (
                identical
                and _same_solution(reference, dense["solution"])
                and _same_solution(reference, compacted["solution"])
            )
            # Ledger charges are backend-invariant; flag any drift.
            charges_invariant = dense["measure"]["ledger_work"] == ref_work["dense"] and (
                compacted["measure"]["ledger_work"] == ref_work["compacted"]
            )
            entry["backends"][backend_name] = {
                "dense": dense["measure"],
                "compacted": compacted["measure"],
                "speedup_wall": dense["measure"]["wall_s"] / compacted["measure"]["wall_s"],
                "work_ratio": dense["measure"]["ledger_work"]
                / max(compacted["measure"]["ledger_work"], 1.0),
                "charges_invariant": bool(charges_invariant),
            }
        entry["solutions_identical"] = bool(identical)
        report["algorithms"][algorithm] = entry
    return report


def measure_obs_overhead(
    *,
    nf: int = 1500,
    nc: int = 1500,
    seed: int = 0,
    machine_seed: int = 1,
    epsilon: float = 0.1,
    algorithm: str = "parallel_greedy",
    repeats: int = 3,
) -> dict:
    """Wall-clock cost of the observability layer on the regression workload.

    Three modes run the same seeded solve (min wall over ``repeats``):

    * ``off`` — forced :data:`repro.obs.NULL_TRACER`: no primitive
      wrappers are installed, so this *is* the historical code path;
    * ``noop`` — an enabled drop-sink ``Tracer(None)``: wrappers,
      timestamps, and event dicts are built but nothing is written
      (the instrumentation ceiling);
    * ``traced`` — a real JSONL trace file.

    ``overhead_noop`` / ``overhead_traced`` are ratios against ``off``.
    The headline invariant — tracing never perturbs results — is pinned
    separately by the byte-identity tests; this measures only the
    clock.
    """
    import tempfile

    from repro.obs.tracer import NULL_TRACER, Tracer, set_tracer

    instance = euclidean_instance(nf, nc, seed=seed)
    fn = _ALGORITHMS[algorithm]

    def _timed(tracer) -> float:
        prev = set_tracer(tracer)
        try:
            best = float("inf")
            for _ in range(max(int(repeats), 1)):
                machine = PramMachine(seed=machine_seed)
                t0 = time.perf_counter()
                fn(instance, epsilon=epsilon, machine=machine)
                best = min(best, time.perf_counter() - t0)
        finally:
            set_tracer(prev)
        return best

    wall_off = _timed(NULL_TRACER)
    wall_noop = _timed(Tracer(None))
    with tempfile.TemporaryDirectory() as td:
        tracer = Tracer(os.path.join(td, "overhead.jsonl"))
        try:
            wall_traced = _timed(tracer)
        finally:
            tracer.close()
    return {
        "workload": f"euclidean_instance({nf}, {nc}, seed={seed})",
        "algorithm": algorithm,
        "repeats": int(repeats),
        "wall_off_s": wall_off,
        "wall_noop_s": wall_noop,
        "wall_traced_s": wall_traced,
        "overhead_noop": wall_noop / wall_off - 1.0,
        "overhead_traced": wall_traced / wall_off - 1.0,
    }


def main(argv=None) -> None:
    """CLI entry point: run the regression sweep and write JSON."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nf", type=int, default=1500, help="number of facilities")
    parser.add_argument("--nc", type=int, default=1500, help="number of clients")
    parser.add_argument("--seed", type=int, default=0, help="workload seed")
    parser.add_argument("--machine-seed", type=int, default=1, help="PRAM machine seed")
    parser.add_argument("--epsilon", type=float, default=0.1)
    parser.add_argument(
        "--backends",
        default="serial",
        help="comma-separated backend names to sweep (serial,thread,process)",
    )
    parser.add_argument("--workers", type=int, default=None, help="pool worker count")
    parser.add_argument("--grain", type=int, default=None, help="pool grain (elements/task)")
    parser.add_argument("--repeats", type=int, default=1, help="timed runs per config (min wins)")
    parser.add_argument(
        "--summary",
        action="store_true",
        help="store per-round traces as summary stats (caps JSON size)",
    )
    parser.add_argument(
        "--obs-overhead",
        action="store_true",
        help="also measure the observability layer's wall-clock overhead "
        "(off / noop-tracer / traced) on the same workload",
    )
    parser.add_argument("--out", default=None, help="write the JSON report here")
    args = parser.parse_args(argv)

    report = run_regression(
        nf=args.nf,
        nc=args.nc,
        seed=args.seed,
        machine_seed=args.machine_seed,
        epsilon=args.epsilon,
        backends=tuple(b.strip() for b in args.backends.split(",") if b.strip()),
        num_workers=args.workers,
        grain=args.grain,
        repeats=args.repeats,
        summary=args.summary,
    )
    if args.obs_overhead:
        report["obs_overhead"] = measure_obs_overhead(
            nf=args.nf,
            nc=args.nc,
            seed=args.seed,
            machine_seed=args.machine_seed,
            epsilon=args.epsilon,
            repeats=max(args.repeats, 3),
        )
        ov = report["obs_overhead"]
        print(
            f"obs overhead: off {ov['wall_off_s']:.2f}s | "
            f"noop {ov['wall_noop_s']:.2f}s ({ov['overhead_noop']:+.1%}) | "
            f"traced {ov['wall_traced_s']:.2f}s ({ov['overhead_traced']:+.1%})"
        )
    for name, entry in report["algorithms"].items():
        print(f"{name}: identical={entry['solutions_identical']}")
        for backend_name, row in entry["backends"].items():
            print(
                f"  {backend_name:>8}: dense {row['dense']['wall_s']:.2f}s "
                f"(work {row['dense']['ledger_work']:.3g}) | "
                f"compacted {row['compacted']['wall_s']:.2f}s "
                f"(work {row['compacted']['ledger_work']:.3g}) | "
                f"speedup {row['speedup_wall']:.2f}x | "
                f"charges_invariant={row['charges_invariant']}"
            )
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=1)
        print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
