"""Perf-regression harness: dense vs frontier-compacted execution.

Runs ``parallel_greedy`` and ``parallel_primal_dual`` twice on the same
seeded workload — once with ``compaction=False`` (the reference
full-matrix path) and once with ``compaction=True`` — and records, per
algorithm:

* total wall-clock and ledger charges (work/depth/cache);
* a per-round trace of ledger work and wall-clock, differenced from
  :attr:`repro.pram.ledger.CostLedger.round_log`, so the trajectory
  "per-round cost shrinks with the frontier" is visible, not just the
  totals;
* the wall-clock speedup and charged-work ratio;
* an exact-equality check of the two solutions (opened set, cost, α).

The CLI writes the result as JSON (committed as ``BENCH_PR1.json`` at
the repo root for this PR's baseline) so later PRs can diff the perf
trajectory::

    PYTHONPATH=src python -m repro.bench.regressions --nf 1500 --nc 1500 \
        --out BENCH_PR1.json

Everything runs on the serial backend with fixed seeds: the numbers
move only when the algorithms (or the host) change.
"""

from __future__ import annotations

import argparse
import json
import platform
import time

import numpy as np

from repro.core.greedy import parallel_greedy
from repro.core.primal_dual import parallel_primal_dual
from repro.metrics.generators import euclidean_instance
from repro.pram.machine import PramMachine

#: Round labels whose traces are exported, per algorithm.
_TRACE_LABELS = {
    "parallel_greedy": "greedy_outer",
    "parallel_primal_dual": "pd_iterations",
}

_ALGORITHMS = {
    "parallel_greedy": parallel_greedy,
    "parallel_primal_dual": parallel_primal_dual,
}


def _per_round(round_log, label, final_work: float, final_wall: float) -> list:
    """Difference consecutive same-label marks into per-round deltas.

    A mark records the cumulative (work, wall) *at round entry*, so each
    round's cost spans to the next same-label mark (or the run's end) —
    for greedy this folds a round's subselection iterations into its
    outer round, which is the granularity the §4 analysis bounds.
    """
    marks = [(w, t) for (lab, _i, w, t) in round_log if lab == label]
    out = []
    for k, (w, t) in enumerate(marks):
        w2, t2 = marks[k + 1] if k + 1 < len(marks) else (final_work, final_wall)
        out.append({"round": k + 1, "ledger_work": w2 - w, "wall_s": t2 - t})
    return out


def _run_once(algorithm: str, instance, *, epsilon: float, seed: int, compaction: bool) -> dict:
    """One seeded run; returns measurements plus the solution object."""
    machine = PramMachine(seed=seed)
    t0 = time.perf_counter()
    sol = _ALGORITHMS[algorithm](
        instance, epsilon=epsilon, machine=machine, compaction=compaction
    )
    wall = time.perf_counter() - t0
    ledger = machine.ledger
    return {
        "solution": sol,
        "measure": {
            "wall_s": wall,
            "ledger_work": ledger.work,
            "ledger_depth": ledger.depth,
            "ledger_cache": ledger.cache,
            "rounds": dict(ledger.rounds),
            "per_round": _per_round(
                ledger.round_log,
                _TRACE_LABELS[algorithm],
                ledger.work,
                t0 + wall,
            ),
        },
    }


def run_regression(
    *,
    nf: int = 1500,
    nc: int = 1500,
    seed: int = 0,
    machine_seed: int = 1,
    epsilon: float = 0.1,
    algorithms=("parallel_greedy", "parallel_primal_dual"),
) -> dict:
    """Run the dense-vs-compacted comparison and return the report dict."""
    instance = euclidean_instance(nf, nc, seed=seed)
    report = {
        "meta": {
            "workload": f"euclidean_instance({nf}, {nc}, seed={seed})",
            "n_facilities": nf,
            "n_clients": nc,
            "m": nf * nc,
            "epsilon": epsilon,
            "machine_seed": machine_seed,
            "backend": "serial",
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "algorithms": {},
    }
    for algorithm in algorithms:
        dense = _run_once(
            algorithm, instance, epsilon=epsilon, seed=machine_seed, compaction=False
        )
        compacted = _run_once(
            algorithm, instance, epsilon=epsilon, seed=machine_seed, compaction=True
        )
        a, b = dense["solution"], compacted["solution"]
        identical = bool(
            np.array_equal(a.opened, b.opened)
            and a.cost == b.cost
            and np.array_equal(a.alpha, b.alpha)
        )
        report["algorithms"][algorithm] = {
            "dense": dense["measure"],
            "compacted": compacted["measure"],
            "cost": a.cost,
            "opened": int(a.opened.size),
            "solutions_identical": identical,
            "speedup_wall": dense["measure"]["wall_s"] / compacted["measure"]["wall_s"],
            "work_ratio": dense["measure"]["ledger_work"]
            / max(compacted["measure"]["ledger_work"], 1.0),
        }
    return report


def main(argv=None) -> None:
    """CLI entry point: run the regression suite and write JSON."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nf", type=int, default=1500, help="number of facilities")
    parser.add_argument("--nc", type=int, default=1500, help="number of clients")
    parser.add_argument("--seed", type=int, default=0, help="workload seed")
    parser.add_argument("--machine-seed", type=int, default=1, help="PRAM machine seed")
    parser.add_argument("--epsilon", type=float, default=0.1)
    parser.add_argument("--out", default=None, help="write the JSON report here")
    args = parser.parse_args(argv)

    report = run_regression(
        nf=args.nf,
        nc=args.nc,
        seed=args.seed,
        machine_seed=args.machine_seed,
        epsilon=args.epsilon,
    )
    for name, entry in report["algorithms"].items():
        print(
            f"{name}: dense {entry['dense']['wall_s']:.2f}s "
            f"(work {entry['dense']['ledger_work']:.3g}) | "
            f"compacted {entry['compacted']['wall_s']:.2f}s "
            f"(work {entry['compacted']['ledger_work']:.3g}) | "
            f"speedup {entry['speedup_wall']:.2f}x | "
            f"identical={entry['solutions_identical']}"
        )
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=1)
        print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
