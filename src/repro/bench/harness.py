"""Experiment table: accumulate rows, print, and compare to claims.

Bench files build one :class:`ExperimentTable` per experiment ID; the
table prints in a stable aligned format (captured into EXPERIMENTS.md)
and exposes simple assertions for the claim checks the benches make.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.reporting import render_markdown_table


@dataclass
class ExperimentTable:
    """Rows of one experiment, keyed by column name."""

    experiment_id: str
    title: str
    rows: list = field(default_factory=list)

    def add(self, **row) -> None:
        self.rows.append(row)

    @property
    def columns(self) -> list:
        cols: list = []
        for row in self.rows:
            for key in row:
                if key not in cols:
                    cols.append(key)
        return cols

    def render(self) -> str:
        header = f"== {self.experiment_id}: {self.title} =="
        return header + "\n" + render_markdown_table(self.rows, self.columns)

    def emit(self) -> None:
        """Print the table (pytest -s / benchmark logs pick this up)."""
        print("\n" + self.render())

    def column(self, name: str) -> list:
        return [row.get(name) for row in self.rows]
