"""Sparse-vs-dense bench: peak memory and wall-clock across the scale axis.

Six tiers, one JSON report (committed as ``BENCH_PR3.json`` /
``BENCH_PR4.json`` / ``BENCH_PR5.json`` / ``BENCH_PR6.json``):

* **overlap** — facility-location sizes where the dense path still
  fits: the same seeded geometry is solved by the dense
  (frontier-compacted) path and by the sparse path on its k-NN
  truncation. Records wall-clock (min over ``repeats``), solve-phase
  peak memory (tracemalloc), ledger work, and both objectives (plus the
  dense objective of the sparse solution, so the truncation error is
  visible).
* **sparse_scaling** — the ``sparse_scaling_suite`` k-NN instances
  (10k/30k/100k clients by default). For each entry the report records
  the bytes the dense matrix *would* need; tiers over ``--budget-gib``
  are marked ``dense_feasible: false`` and never attempted — that
  marker is the acceptance evidence that the sparse subsystem solves
  instances the dense path cannot hold.
* **clustering_overlap** — the §6.1/§7 clustering solvers, dense vs
  kNN-truncated sparse on the same geometry (PR 4).
* **clustering_scaling** — ``sparse_clustering_suite`` kNN instances up
  to 100k nodes (dense would need 80 GB), k-center + warm-started
  k-median local search on the sparse paths only.
* **shard_scaling** — raw point clouds (250k/1M by default) through
  ``repro.shard.shard_and_solve`` k-median (PR 5). Both the dense
  matrix *and* the single full-point kNN CSR structure are costed
  against ``--budget-gib``; tiers where both are infeasible are the
  scales only the shard-and-conquer pipeline reaches.
* **fault_recovery** — the 250k shard workload re-run on a real process
  pool with one injected worker crash (PR 6): supervised retry must
  reproduce the unfailed run byte-identically at ≤ ~10% wall-clock
  overhead, and degraded-mode drop (retries disabled) must return a
  coverage-accounted widened certificate in under 2× the unfailed
  wall clock.
* **shard_scaling, out-of-core tier** (PR 7) — a 10M-point cloud
  through ``shard_and_solve(..., spill_dir=...)`` on a real process
  pool: partitioned blocks spill to a :class:`repro.shard.ShardStore`
  and every downstream pass streams one shard at a time. Records
  wall-clock and driver **peak RSS** (``/proc/self/status`` VmRSS,
  sampled) alongside the resident 250k/1M tiers — the acceptance
  evidence that the 10M tier completes and the driver's residency
  stays far below the dataset footprint.
* **kernel_microbench** (PR 7) — the four segmented primitives
  (scatter_min/scatter_add/segmented_argmin/segmented_scan_add) timed
  per :mod:`repro.pram.kernels` provider ({numpy, numba-if-present}),
  each output checked byte-identical against the numpy reference.
* **serving** (PR 9) — the :mod:`repro.serve` loadgen against a live
  thread-hosted server on a real process backend: fresh-solve
  throughput/p50/p99 over concurrent clients, the result-cache speedup
  on repeated identical requests, and a crash-injected server checked
  byte-identical against a clean one through HTTP.

Per-round traces are stored as **summary stats** (count/total/first/
last/median work per round), never as raw per-round sample lists, so
the committed JSON stays small at any scale::

    PYTHONPATH=src python -m repro.bench.sparse_bench --out BENCH_PR4.json
    PYTHONPATH=src python -m repro.bench.sparse_bench --fast   # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import tempfile
import time
import tracemalloc

import numpy as np

from repro.bench.reporting import summarize_rounds
from repro.bench.workloads import (
    shard_scaling_suite,
    sparse_clustering_suite,
    sparse_scaling_suite,
)
from repro.core.greedy import parallel_greedy
from repro.core.kcenter import parallel_kcenter
from repro.core.local_search import parallel_kmedian
from repro.core.primal_dual import parallel_primal_dual
from repro.metrics.generators import euclidean_clustering, euclidean_instance
from repro.metrics.sparse import knn_sparsify
from repro.obs.rss import rss_mib as _rss_mib  # noqa: F401  (bench-module API)
from repro.obs.rss import run_with_peak_rss as _run_with_peak_rss
from repro.pram.machine import PramMachine

_ALGORITHMS = {
    "parallel_greedy": (parallel_greedy, "greedy_outer"),
    "parallel_primal_dual": (parallel_primal_dual, "pd_iterations"),
}


def _measure(algorithm: str, instance, *, epsilon: float, seed: int, repeats: int) -> dict:
    """Seeded solve: min wall-clock over ``repeats`` plus one traced
    pass for solve-phase peak memory (tracemalloc slows execution, so
    the memory pass is separate and untimed)."""
    fn, label = _ALGORITHMS[algorithm]
    best_wall = float("inf")
    measure = None
    for _ in range(max(int(repeats), 1)):
        machine = PramMachine(seed=seed)
        t0 = time.perf_counter()
        sol = fn(instance, epsilon=epsilon, machine=machine)
        wall = time.perf_counter() - t0
        if wall >= best_wall:
            continue
        best_wall = wall
        ledger = machine.ledger
        measure = {
            "wall_s": wall,
            "ledger_work": ledger.work,
            "ledger_depth": ledger.depth,
            "cost": sol.cost,
            "opened": int(sol.opened.size),
            "rounds": summarize_rounds(ledger.round_log, label, ledger.work),
            "opened_idx": sol.opened,
        }
    tracemalloc.start()
    fn(instance, epsilon=epsilon, machine=PramMachine(seed=seed))
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    measure["peak_mib"] = peak / 2**20
    return measure


def _strip(measure: dict) -> dict:
    out = dict(measure)
    out.pop("opened_idx", None)
    return out


def _measure_clustering(
    instance, *, epsilon: float, seed: int, repeats: int, trace_memory: bool = True
) -> dict:
    """Seeded k-center + warm-started k-median solve on one instance.

    k-center wall is min over ``repeats``; k-median runs once (its
    round count dwarfs repeat noise) warm-started from the k-center
    centers so the pair shares one bottleneck search. The memory pass
    re-runs k-center under tracemalloc (skippable at the 100k tier,
    where tracing a multi-minute local search would distort it).
    """
    best_wall = float("inf")
    out: dict = {}
    kc_centers = None
    for _ in range(max(int(repeats), 1)):
        machine = PramMachine(seed=seed)
        t0 = time.perf_counter()
        kc = parallel_kcenter(instance, machine=machine)
        wall = time.perf_counter() - t0
        if wall >= best_wall:
            continue
        best_wall = wall
        kc_centers = kc.centers
        ledger = machine.ledger
        out["kcenter"] = {
            "wall_s": wall,
            "ledger_work": ledger.work,
            "ledger_depth": ledger.depth,
            "cost": kc.cost,
            "centers": int(kc.centers.size),
            "probes": kc.extra["probes"],
            "n_thresholds": kc.extra["n_thresholds"],
            "rounds": summarize_rounds(ledger.round_log, "kcenter_probe", ledger.work),
        }
    machine = PramMachine(seed=seed)
    t0 = time.perf_counter()
    km = parallel_kmedian(
        instance, epsilon=epsilon, machine=machine, initial=kc_centers
    )
    wall = time.perf_counter() - t0
    ledger = machine.ledger
    out["kmedian"] = {
        "wall_s": wall,
        "ledger_work": ledger.work,
        "ledger_depth": ledger.depth,
        "cost": km.cost,
        "initial_cost": km.extra["initial_cost"],
        "swap_rounds": km.rounds["local_search"],
        "rounds": summarize_rounds(ledger.round_log, "local_search", ledger.work),
        "centers_idx": km.centers,
    }
    if trace_memory:
        tracemalloc.start()
        parallel_kcenter(instance, machine=PramMachine(seed=seed))
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        out["kcenter"]["peak_mib"] = peak / 2**20
    return out


def _strip_clustering(measure: dict) -> dict:
    out = {key: dict(val) for key, val in measure.items()}
    out["kmedian"].pop("centers_idx", None)
    return out


def _measure_shard(
    points, k, *, shards, coreset_size, neighbors, epsilon, seed, backend, trace_memory
) -> dict:
    """One shard-and-conquer k-median solve: wall-clock, ledger work,
    true vs merged objective, movement, and (optionally) peak memory."""
    from repro.shard import shard_and_solve

    t0 = time.perf_counter()
    sol = shard_and_solve(
        points, k, shards=shards, coreset_size=coreset_size, neighbors=neighbors,
        solver="kmedian", epsilon=epsilon, seed=seed, backend=backend,
    )
    wall = time.perf_counter() - t0
    out = {
        "wall_s": wall,
        "ledger_work": sol.model_costs.work,
        "ledger_depth": sol.model_costs.depth,
        "cost_merged": sol.cost,
        "cost_true": sol.true_cost,
        "movement": sol.movement,
        "merged_n": sol.extra["merged_n"],
        "merged_nnz": sol.extra["merged_nnz"],
        "centers": int(sol.centers.size),
        "swap_rounds": int(sol.rounds.get("local_search", 0)),
        "bound": sol.bound.statement if sol.bound else None,
    }
    if trace_memory:
        tracemalloc.start()
        shard_and_solve(
            points, k, shards=shards, coreset_size=coreset_size, neighbors=neighbors,
            solver="kmedian", epsilon=epsilon, seed=seed, backend=backend,
        )
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        out["peak_mib"] = peak / 2**20
    return out


# RSS sampling lives in repro.obs.rss (imported above as _rss_mib /
# _run_with_peak_rss, the historical private names).


def _measure_shard_store(
    points, k, *, shards, coreset_size, neighbors, epsilon, seed, workers
) -> dict:
    """One out-of-core shard solve on a real process pool: the blocks
    spill to a ShardStore and the driver streams them, so the recorded
    peak RSS is the out-of-core residency claim."""
    import shutil
    import tempfile

    from repro.pram.backends import ProcessBackend
    from repro.pram.machine import PramMachine
    from repro.shard import shard_and_solve

    spill_dir = tempfile.mkdtemp(prefix="repro-shard-store-")
    try:
        with ProcessBackend(workers, grain=1) as backend:
            machine = PramMachine(backend=backend, seed=seed)
            sol, wall, peak_rss = _run_with_peak_rss(
                lambda: shard_and_solve(
                    points, k, shards=shards, coreset_size=coreset_size,
                    neighbors=neighbors, solver="kmedian", epsilon=epsilon,
                    seed=seed, machine=machine, spill_dir=spill_dir,
                )
            )
        store_bytes = sum(
            os.path.getsize(os.path.join(spill_dir, f))
            for f in os.listdir(spill_dir)
        )
    finally:
        shutil.rmtree(spill_dir, ignore_errors=True)
    return {
        "wall_s": wall,
        "peak_rss_mib": peak_rss,
        "store_bytes": int(store_bytes),
        "points_bytes": int(points.nbytes),
        "workers": int(workers),
        "ledger_work": sol.model_costs.work,
        "ledger_depth": sol.model_costs.depth,
        "cost_merged": sol.cost,
        "cost_true": sol.true_cost,
        "movement": sol.movement,
        "merged_n": sol.extra["merged_n"],
        "merged_nnz": sol.extra["merged_nnz"],
        "centers": int(sol.centers.size),
        "swap_rounds": int(sol.rounds.get("local_search", 0)),
        "bound": sol.bound.statement if sol.bound else None,
    }


def _measure_kernels(*, n, n_seg, repeats, seed) -> dict:
    """Per-provider timings of the four segmented primitives, each
    output checked byte-identical against the numpy reference."""
    from repro.pram.kernels import (
        NumpyKernels,
        available_kernel_providers,
        make_kernel_provider,
    )

    rng = np.random.default_rng(seed)
    values = rng.random(int(n))
    idx = rng.integers(0, int(n_seg), int(n)).astype(np.intp)
    indptr = np.concatenate(
        ([0], np.sort(rng.integers(0, int(n), int(n_seg) - 1)), [int(n)])
    ).astype(np.intp)

    calls = {
        "scatter_min": lambda p: p.scatter_min(values, idx, int(n_seg)),
        "scatter_add": lambda p: p.scatter_add(values, idx, int(n_seg)),
        "segmented_argmin": lambda p: p.segmented_argmin(values, indptr),
        "segmented_scan_add": lambda p: p.segmented_scan_add(values, indptr),
    }
    ref = NumpyKernels()
    want = {name: call(ref) for name, call in calls.items()}

    out: dict = {"n": int(n), "segments": int(n_seg)}
    for spec in available_kernel_providers():
        provider = make_kernel_provider(spec)
        entry = {}
        for name, call in calls.items():
            got = call(provider)  # warm-up: triggers any JIT compile
            best = float("inf")
            for _ in range(max(int(repeats), 1)):
                t0 = time.perf_counter()
                got = call(provider)
                best = min(best, time.perf_counter() - t0)
            entry[name] = {
                "wall_s": best,
                "matches_numpy": bool(np.array_equal(np.asarray(got), want[name])),
            }
        out[spec] = entry
    return out


def _measure_fault_recovery(
    points, k, *, shards, coreset_size, neighbors, epsilon, seed, workers, repeats
) -> dict:
    """Clean vs crash-retried vs degraded shard solve on a real process
    pool: the retry overhead and drop ratio the PR 6 acceptance pins."""
    from repro.faults import NO_RETRY, FaultPlan, RetryPolicy
    from repro.pram.backends import ProcessBackend
    from repro.pram.machine import PramMachine
    from repro.shard import shard_and_solve

    kw = dict(
        shards=shards, coreset_size=coreset_size, neighbors=neighbors,
        solver="kmedian", epsilon=epsilon, seed=seed,
    )
    crash_shard = shards // 2
    fast_retry = RetryPolicy(base_delay=0.0, jitter=0.0)
    # None = size to the host like every other pool in the repo, but
    # keep a *real* pool (ProcessBackend(1) runs serially and would
    # only simulate the crash). Oversubscribing a small host inflates
    # retry overhead artificially: each extra in-flight worker loses
    # its partial shard build when the crashed worker breaks the pool.
    if workers is None:
        workers = min(4, max(2, os.cpu_count() or 1))
    with ProcessBackend(workers, grain=1) as backend:
        def solve(**extra):
            machine = PramMachine(backend=backend, seed=seed)
            t0 = time.perf_counter()
            sol = shard_and_solve(points, k, machine=machine, **kw, **extra)
            return sol, time.perf_counter() - t0

        def best_of(**extra):
            # min over repeats for every variant alike — the faulted
            # runs deserve the same noise treatment as the clean one.
            best_sol, best_wall = None, float("inf")
            for _ in range(max(int(repeats), 1)):
                sol, wall = solve(**extra)
                if wall < best_wall:
                    best_sol, best_wall = sol, wall
            return best_sol, best_wall

        base, base_wall = best_of()
        retried, retry_wall = best_of(
            on_shard_failure="retry",
            fault_plan=FaultPlan.single("crash", crash_shard),
            retry_policy=fast_retry,
        )
        dropped, drop_wall = best_of(
            on_shard_failure="drop",
            fault_plan=FaultPlan.single("crash", crash_shard, attempt=None),
            retry_policy=NO_RETRY,
        )
    sandwich_rhs = (
        dropped.extra["merged_cost_exact"] + dropped.movement
        + dropped.extra["dropped_movement"] + dropped.extra["dropped_rep_service"]
    )
    return {
        "n": int(points.shape[0]),
        "k": int(k),
        "shards": int(shards),
        "workers": int(workers),
        "crash_shard": int(crash_shard),
        "base_wall_s": base_wall,
        "retry_wall_s": retry_wall,
        "retry_overhead": retry_wall / max(base_wall, 1e-12) - 1.0,
        "retry_byte_identical": bool(
            np.array_equal(retried.centers, base.centers)
            and retried.cost == base.cost
            and retried.true_cost == base.true_cost
            and retried.movement == base.movement
        ),
        "drop_wall_s": drop_wall,
        "drop_ratio": drop_wall / max(base_wall, 1e-12),
        "drop_degraded": bool(dropped.degraded),
        "drop_failed_shards": [int(s) for s in dropped.failed_shards],
        "drop_covered_weight_fraction": float(dropped.covered_weight_fraction),
        "drop_cost_true": float(dropped.true_cost),
        "drop_certificate_valid": bool(
            dropped.true_cost <= sandwich_rhs * (1.0 + 1e-9)
        ),
        "base_cost_true": float(base.true_cost),
        "bound_clean": base.bound.statement if base.bound else None,
        "bound_degraded": dropped.bound.statement if dropped.bound else None,
    }


def _measure_serving(
    *,
    n,
    dim,
    k,
    shards,
    coreset_size,
    neighbors,
    clients,
    requests,
    cache_requests,
    workers,
    backend,
    backend_workers,
    seed,
) -> dict:
    """The serving tier (PR 9): loadgen against a thread-hosted server.

    Three legs on one report entry: a **fresh** run (every request a
    distinct seed, so each exercises the full queue → worker → solver
    path), a **cached** run (one warmed identical request repeated —
    the result-cache speedup claim), and a **fault** leg (a clean server
    vs one with an injected worker crash must return byte-identical
    solutions through HTTP, the PR 6 contract surviving the wire).
    """
    from repro.faults.plan import FaultPlan
    from repro.obs import SloTarget, trace_to
    from repro.serve import ServeClient, ServerConfig, serve_in_thread
    from repro.serve.loadgen import run_loadgen

    solve_params = {
        "shards": int(shards),
        "coreset_size": int(coreset_size),
        "neighbors": int(neighbors),
    }
    out = {
        "n": int(n), "dim": int(dim), "k": int(k), "clients": int(clients),
        "requests": int(requests), "workers": int(workers), "backend": backend,
        **solve_params,
    }
    # A deliberately generous SLO: the point is to exercise and report
    # the evaluator's verdict over a real run, not to fail the bench on
    # machine noise.
    slo_target = SloTarget(
        p99_latency_s=60.0, max_error_rate=0.5, window_s=600.0, min_samples=5
    )
    config = ServerConfig(
        backend=backend, workers=workers, backend_workers=backend_workers,
        slo=slo_target,
    )
    with serve_in_thread(config) as handle:
        out["fresh"] = run_loadgen(
            handle.host, handle.port, clients=clients, requests=requests,
            n=n, dim=dim, k=k, seed=seed, solve_params=solve_params,
        )
        # Cache leg: warm one identical request, then every repeat must
        # be served from the result cache (distinct seed => distinct
        # instance+key space from the fresh leg).
        client = ServeClient(handle.host, handle.port)
        cache_seed = int(seed) + 1_000_000
        pts = np.random.default_rng(cache_seed).normal(size=(int(n), int(dim)))
        client.solve_and_wait(points=pts, k=k, seed=cache_seed, **solve_params)
        out["cached"] = run_loadgen(
            handle.host, handle.port, clients=clients, requests=cache_requests,
            n=n, dim=dim, k=k, seed=cache_seed, identical=True,
            solve_params=solve_params,
        )
        counters = client.metrics()["counters"]
        health_status, health = client.raw_request("GET", "/health")
        out["slo"] = {
            "target": slo_target.to_json(),
            "health_status": int(health_status),
            **health.get("slo", {}),
        }
    out["cache_speedup"] = out["fresh"]["time_per_request_s"] / max(
        out["cached"]["time_per_request_s"], 1e-12
    )
    out["result_cache_hits"] = int(counters.get("serve.result_cache_hits", 0))
    out["jobs_completed"] = int(counters.get("serve.jobs_completed", 0))

    # Tracing-on overhead (PR 10): the same small loadgen leg against an
    # untraced and a traced server; both sides of the wire share the
    # in-process tracer, so the traced number carries the full
    # trace-context propagation + span-emission cost.
    overhead_requests = max(min(int(requests) // 4, 16), 8)

    def _overhead_leg(tracing: bool) -> float:
        cfg = ServerConfig(
            backend=backend, workers=workers, backend_workers=backend_workers
        )
        if tracing:
            trace_path = os.path.join(
                tempfile.mkdtemp(prefix="bench-trace-"), "trace.jsonl"
            )
            with trace_to(trace_path):
                with serve_in_thread(cfg) as h:
                    rep = run_loadgen(
                        h.host, h.port, clients=clients,
                        requests=overhead_requests, n=n, dim=dim, k=k,
                        seed=int(seed) + 2_000_000, solve_params=solve_params,
                    )
        else:
            with serve_in_thread(cfg) as h:
                rep = run_loadgen(
                    h.host, h.port, clients=clients,
                    requests=overhead_requests, n=n, dim=dim, k=k,
                    seed=int(seed) + 2_000_000, solve_params=solve_params,
                )
        return float(rep["time_per_request_s"])

    untraced_s = _overhead_leg(False)
    traced_s = _overhead_leg(True)
    out["tracing_overhead"] = {
        "requests": int(overhead_requests),
        "untraced_time_per_request_s": untraced_s,
        "traced_time_per_request_s": traced_s,
        "overhead": traced_s / max(untraced_s, 1e-12) - 1.0,
    }

    def _served_solution(extra):
        cfg = ServerConfig(
            backend=backend, workers=1, backend_workers=backend_workers, **extra
        )
        with serve_in_thread(cfg) as h:
            job = ServeClient(h.host, h.port).solve_and_wait(
                points=pts, k=k, seed=cache_seed, **solve_params
            )
        result = dict(job["result"])
        result.pop("solve_s", None)  # wall clock, outside the identity claim
        return result

    clean = _served_solution({})
    crashed = _served_solution(
        {"fault_plan": FaultPlan.single("crash", int(shards) // 2)}
    )
    out["fault"] = {
        "kind": "crash",
        "crash_shard": int(shards) // 2,
        "byte_identical": bool(
            json.dumps(clean, sort_keys=True) == json.dumps(crashed, sort_keys=True)
        ),
        "cost_true": clean["true_cost"],
    }
    return out


def run_sparse_bench(
    *,
    overlap_sizes=(1500, 3000),
    scaling_sizes=(10_000, 30_000, 100_000),
    k: int = 8,
    facility_ratio: float = 0.1,
    epsilon: float = 0.2,
    seed: int = 0,
    machine_seed: int = 1,
    repeats: int = 2,
    budget_gib: float = 2.0,
    algorithms=("parallel_greedy", "parallel_primal_dual"),
    clustering_overlap_sizes=(600, 1200),
    clustering_scaling_sizes=(10_000, 30_000, 100_000),
    clustering_overlap_k: int = 8,
    clustering_overlap_neighbors: int = 96,
    clustering_neighbors: int = 64,
    clustering_k_ratio: float = 0.02,
    clustering_epsilon: float = 0.5,
    shard_sizes=(250_000, 1_000_000),
    shard_k: int = 32,
    shard_shards: int = 16,
    shard_coreset_size: int = 512,
    shard_neighbors: int = 64,
    shard_backend=None,
    fault_sizes=(250_000,),
    fault_workers: int | None = None,
    shard_store_sizes=(10_000_000,),
    shard_store_workers: int | None = None,
    kernel_micro_n: int = 2_000_000,
    kernel_micro_segments: int = 4_000,
    kernel_micro_repeats: int = 3,
    serving_n: int = 400,
    serving_dim: int = 2,
    serving_k: int = 8,
    serving_shards: int = 4,
    serving_coreset_size: int = 128,
    serving_neighbors: int = 32,
    serving_clients: int = 4,
    serving_requests: int = 60,
    serving_cache_requests: int = 20,
    serving_workers: int = 2,
    serving_backend: str = "process",
    serving_backend_workers: int | None = None,
) -> dict:
    """Run all six tiers and return the report dict (module docstring)."""
    report = {
        "meta": {
            "k": k,
            "facility_ratio": facility_ratio,
            "epsilon": epsilon,
            "seed": seed,
            "machine_seed": machine_seed,
            "repeats": repeats,
            "budget_gib": budget_gib,
            "overlap_sizes": list(overlap_sizes),
            "scaling_sizes": list(scaling_sizes),
            "clustering_overlap_sizes": list(clustering_overlap_sizes),
            "clustering_scaling_sizes": list(clustering_scaling_sizes),
            "clustering_overlap_k": clustering_overlap_k,
            "clustering_overlap_neighbors": clustering_overlap_neighbors,
            "clustering_neighbors": clustering_neighbors,
            "clustering_k_ratio": clustering_k_ratio,
            "clustering_epsilon": clustering_epsilon,
            "shard_sizes": list(shard_sizes),
            "shard_k": shard_k,
            "shard_shards": shard_shards,
            "shard_coreset_size": shard_coreset_size,
            "shard_neighbors": shard_neighbors,
            "fault_sizes": list(fault_sizes),
            "fault_workers": fault_workers,
            "shard_store_sizes": list(shard_store_sizes),
            "shard_store_workers": shard_store_workers,
            "kernel_micro_n": kernel_micro_n,
            "kernel_micro_segments": kernel_micro_segments,
            "serving_n": serving_n,
            "serving_clients": serving_clients,
            "serving_requests": serving_requests,
            "serving_backend": serving_backend,
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "overlap": {},
        "sparse_scaling": {},
        "clustering_overlap": {},
        "clustering_scaling": {},
        "shard_scaling": {},
        "fault_recovery": {},
    }

    for n_c in overlap_sizes:
        n_c = int(n_c)
        n_f = max(int(n_c * facility_ratio), k)
        dense_inst = euclidean_instance(n_f, n_c, seed=seed)
        sparse_inst = knn_sparsify(dense_inst, k)
        entry = {
            "n_f": n_f,
            "n_c": n_c,
            "nnz": sparse_inst.nnz,
            "dense_bytes": n_f * n_c * 8,
        }
        for algorithm in algorithms:
            dense = _measure(
                algorithm, dense_inst, epsilon=epsilon, seed=machine_seed, repeats=repeats
            )
            sparse = _measure(
                algorithm, sparse_inst, epsilon=epsilon, seed=machine_seed, repeats=repeats
            )
            # Truncation error, in the dense objective, of the sparse solution.
            sparse_on_dense = float(dense_inst.cost(sparse["opened_idx"]))
            entry[algorithm] = {
                "dense": _strip(dense),
                "sparse": _strip(sparse),
                "speedup_wall": dense["wall_s"] / max(sparse["wall_s"], 1e-12),
                "mem_ratio": dense["peak_mib"] / max(sparse["peak_mib"], 1e-12),
                "work_ratio": dense["ledger_work"] / max(sparse["ledger_work"], 1.0),
                "sparse_solution_dense_cost": sparse_on_dense,
                "dense_cost": dense["cost"],
            }
        report["overlap"][f"euclid-{n_f}x{n_c}-k{k}"] = entry

    budget_bytes = budget_gib * 2**30
    for name, instance in sparse_scaling_suite(
        seed, sizes=scaling_sizes, k=k, facility_ratio=facility_ratio
    ):
        dense_bytes = instance.n_facilities * instance.n_clients * 8
        entry = {
            "n_f": instance.n_facilities,
            "n_c": instance.n_clients,
            "nnz": instance.nnz,
            "dense_bytes": dense_bytes,
            "dense_feasible": bool(dense_bytes <= budget_bytes),
        }
        for algorithm in algorithms:
            entry[algorithm] = {
                "sparse": _strip(
                    _measure(
                        algorithm,
                        instance,
                        epsilon=epsilon,
                        seed=machine_seed,
                        repeats=repeats,
                    )
                )
            }
        report["sparse_scaling"][name] = entry

    # -- clustering overlap: §6.1/§7 dense vs kNN-truncated sparse ---------
    for n in clustering_overlap_sizes:
        n = int(n)
        dense_inst = euclidean_clustering(n, clustering_overlap_k, seed=seed)
        sparse_inst = knn_sparsify(dense_inst, clustering_overlap_neighbors)
        dense = _measure_clustering(
            dense_inst, epsilon=clustering_epsilon, seed=machine_seed, repeats=repeats
        )
        sparse = _measure_clustering(
            sparse_inst, epsilon=clustering_epsilon, seed=machine_seed, repeats=repeats
        )
        # Truncation error, in the dense objective, of the sparse solution.
        km_dense_cost = float(
            dense_inst.kmedian_cost(sparse["kmedian"]["centers_idx"])
        )
        entry = {
            "n": n,
            "k": clustering_overlap_k,
            "nnz": sparse_inst.nnz,
            "dense_bytes": n * n * 8,
            "dense": _strip_clustering(dense),
            "sparse": _strip_clustering(sparse),
            "sparse_kmedian_dense_cost": km_dense_cost,
            "speedup_wall_kcenter": dense["kcenter"]["wall_s"]
            / max(sparse["kcenter"]["wall_s"], 1e-12),
            "speedup_wall_kmedian": dense["kmedian"]["wall_s"]
            / max(sparse["kmedian"]["wall_s"], 1e-12),
            "mem_ratio_kcenter": dense["kcenter"]["peak_mib"]
            / max(sparse["kcenter"]["peak_mib"], 1e-12),
        }
        report["clustering_overlap"][
            f"euclid-n{n}-k{clustering_overlap_k}-m{clustering_overlap_neighbors}"
        ] = entry

    # -- clustering scaling: sparse-only, up to dense-infeasible sizes -----
    for name, instance in sparse_clustering_suite(
        seed,
        sizes=clustering_scaling_sizes,
        neighbors=clustering_neighbors,
        k_ratio=clustering_k_ratio,
    ):
        dense_bytes = instance.n * instance.n * 8
        big = instance.n >= 50_000
        measured = _measure_clustering(
            instance,
            epsilon=clustering_epsilon,
            seed=machine_seed,
            repeats=1 if big else repeats,
            trace_memory=not big,  # tracing a multi-minute solve distorts it
        )
        report["clustering_scaling"][name] = {
            "n": instance.n,
            "k": instance.k,
            "nnz": instance.nnz,
            "dense_bytes": dense_bytes,
            "dense_feasible": bool(dense_bytes <= budget_gib * 2**30),
            "sparse": _strip_clustering(measured),
        }

    # -- shard scaling: raw points no single instance can hold -------------
    # Feasibility markers: the dense matrix *and* the single full-point
    # kNN CSR structure (indptr/indices/data + the segmented per-edge
    # temporaries the solvers allocate, ~5 edge-sized arrays) are costed
    # against the budget; tiers where both blow past it are the scales
    # only the shard pipeline reaches.
    for name, pts, k_pts in shard_scaling_suite(seed, sizes=shard_sizes, k=shard_k):
        n = pts.shape[0]
        dense_bytes = n * n * 8
        # the clustering_scaling construction at this n
        csr_nnz = 2 * clustering_neighbors * n
        single_csr_bytes = csr_nnz * 8 * 5
        big = n >= 500_000
        measured = _measure_shard(
            pts, k_pts,
            shards=shard_shards, coreset_size=shard_coreset_size,
            neighbors=shard_neighbors, epsilon=clustering_epsilon,
            seed=machine_seed, backend=shard_backend,
            trace_memory=not big,
        )
        report["shard_scaling"][name] = {
            "n": n,
            "k": k_pts,
            "shards": shard_shards,
            "coreset_size": shard_coreset_size,
            "dense_bytes": dense_bytes,
            "dense_feasible": bool(dense_bytes <= budget_gib * 2**30),
            "single_csr_bytes": single_csr_bytes,
            "single_csr_feasible": bool(single_csr_bytes <= budget_gib * 2**30),
            "shard": measured,
        }

    # -- shard scaling, out-of-core: blocks on disk, driver streams ---------
    store_workers = (
        shard_store_workers
        if shard_store_workers is not None
        else min(4, max(2, os.cpu_count() or 1))
    )
    for name, pts, k_pts in shard_scaling_suite(seed, sizes=shard_store_sizes, k=shard_k):
        n = pts.shape[0]
        measured = _measure_shard_store(
            pts, k_pts,
            shards=shard_shards, coreset_size=shard_coreset_size,
            neighbors=shard_neighbors, epsilon=clustering_epsilon,
            seed=machine_seed, workers=store_workers,
        )
        report["shard_scaling"][f"{name}-store"] = {
            "n": n,
            "k": k_pts,
            "shards": shard_shards,
            "coreset_size": shard_coreset_size,
            "mode": "store",
            "dense_bytes": n * n * 8,
            "dense_feasible": bool(n * n * 8 <= budget_gib * 2**30),
            "single_csr_bytes": 2 * clustering_neighbors * n * 8 * 5,
            "single_csr_feasible": bool(
                2 * clustering_neighbors * n * 8 * 5 <= budget_gib * 2**30
            ),
            "shard": measured,
        }

    # -- kernel microbench: the provider matrix on one big workload --------
    report["kernel_microbench"] = _measure_kernels(
        n=kernel_micro_n, n_seg=kernel_micro_segments,
        repeats=kernel_micro_repeats, seed=seed,
    )

    # -- fault recovery: the same shard workload under injected crashes ----
    for name, pts, k_pts in shard_scaling_suite(seed, sizes=fault_sizes, k=shard_k):
        report["fault_recovery"][name] = _measure_fault_recovery(
            pts, k_pts,
            shards=shard_shards, coreset_size=shard_coreset_size,
            neighbors=shard_neighbors, epsilon=clustering_epsilon,
            seed=machine_seed, workers=fault_workers, repeats=repeats,
        )

    # -- serving: the loadgen report against a live server (PR 9) ----------
    report["serving"] = _measure_serving(
        n=serving_n, dim=serving_dim, k=serving_k,
        shards=serving_shards, coreset_size=serving_coreset_size,
        neighbors=serving_neighbors, clients=serving_clients,
        requests=serving_requests, cache_requests=serving_cache_requests,
        workers=serving_workers, backend=serving_backend,
        backend_workers=serving_backend_workers, seed=seed,
    )
    return report


def main(argv=None) -> None:
    """CLI entry point: run the sparse bench and write JSON."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--overlap", default="1500,3000", help="comma-separated overlap client counts"
    )
    parser.add_argument(
        "--scaling",
        default="10000,30000,100000",
        help="comma-separated sparse-scaling client counts",
    )
    parser.add_argument("--k", type=int, default=8, help="candidates per client")
    parser.add_argument("--epsilon", type=float, default=0.2)
    parser.add_argument("--seed", type=int, default=0, help="workload seed")
    parser.add_argument("--machine-seed", type=int, default=1)
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument(
        "--budget-gib",
        type=float,
        default=2.0,
        help="memory budget; larger dense matrices are marked infeasible",
    )
    parser.add_argument(
        "--clustering-overlap",
        default="600,1200",
        help="comma-separated clustering overlap node counts",
    )
    parser.add_argument(
        "--clustering-scaling",
        default="10000,30000,100000",
        help="comma-separated clustering scaling node counts",
    )
    parser.add_argument(
        "--clustering-neighbors", type=int, default=64, help="kNN neighbors per node"
    )
    parser.add_argument(
        "--clustering-k-ratio", type=float, default=0.02, help="centers per node"
    )
    parser.add_argument(
        "--shard-scaling",
        default="250000,1000000",
        help="comma-separated shard-tier point counts",
    )
    parser.add_argument("--shard-k", type=int, default=32)
    parser.add_argument("--shard-shards", type=int, default=16)
    parser.add_argument("--shard-coreset-size", type=int, default=512)
    parser.add_argument(
        "--shard-backend", default=None, help="backend for the shard tier (default env)"
    )
    parser.add_argument(
        "--fault-scaling",
        default="250000",
        help="comma-separated fault-recovery point counts",
    )
    parser.add_argument(
        "--fault-workers", type=int, default=None,
        help="process-pool workers for the fault-recovery tier "
             "(default: cpu_count, the backend default)",
    )
    parser.add_argument(
        "--shard-store-scaling",
        default="10000000",
        help="comma-separated out-of-core shard-tier point counts",
    )
    parser.add_argument(
        "--shard-store-workers", type=int, default=None,
        help="process-pool workers for the out-of-core tier "
             "(default: min(4, max(2, cpu_count)))",
    )
    parser.add_argument("--kernel-micro-n", type=int, default=2_000_000)
    parser.add_argument("--kernel-micro-segments", type=int, default=4_000)
    parser.add_argument(
        "--serving-n", type=int, default=400, help="serving-tier instance size"
    )
    parser.add_argument("--serving-clients", type=int, default=4)
    parser.add_argument(
        "--serving-requests", type=int, default=60,
        help="total fresh requests in the serving tier",
    )
    parser.add_argument(
        "--serving-backend", default="process",
        help="execution backend for the served solves",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="CI smoke sizes (overlap 400/300, scaling 2000/5000, 1 repeat)",
    )
    parser.add_argument("--out", default=None, help="write the JSON report here")
    args = parser.parse_args(argv)

    def _sizes(spec):
        return tuple(int(s) for s in spec.split(",") if s.strip())

    if args.fast:
        overlap = (400,)
        scaling = (2000, 5000)
        clustering_overlap = (300,)
        clustering_scaling = (2000, 5000)
        shard_scaling = (20_000,)
        shard_shards, shard_coreset = 4, 128
        shard_k = 8
        fault_scaling = (20_000,)
        shard_store_scaling = (20_000,)
        kernel_micro_n, kernel_micro_segments = 100_000, 500
        serving_n, serving_requests = 240, 50
        repeats = 1
    else:
        overlap = _sizes(args.overlap)
        scaling = _sizes(args.scaling)
        clustering_overlap = _sizes(args.clustering_overlap)
        clustering_scaling = _sizes(args.clustering_scaling)
        shard_scaling = _sizes(args.shard_scaling)
        shard_shards, shard_coreset = args.shard_shards, args.shard_coreset_size
        shard_k = args.shard_k
        fault_scaling = _sizes(args.fault_scaling)
        shard_store_scaling = _sizes(args.shard_store_scaling)
        kernel_micro_n = args.kernel_micro_n
        kernel_micro_segments = args.kernel_micro_segments
        serving_n, serving_requests = args.serving_n, args.serving_requests
        repeats = args.repeats

    report = run_sparse_bench(
        overlap_sizes=overlap,
        scaling_sizes=scaling,
        k=args.k,
        epsilon=args.epsilon,
        seed=args.seed,
        machine_seed=args.machine_seed,
        repeats=repeats,
        budget_gib=args.budget_gib,
        clustering_overlap_sizes=clustering_overlap,
        clustering_scaling_sizes=clustering_scaling,
        clustering_neighbors=args.clustering_neighbors,
        clustering_k_ratio=args.clustering_k_ratio,
        shard_sizes=shard_scaling,
        shard_k=shard_k,
        shard_shards=shard_shards,
        shard_coreset_size=shard_coreset,
        shard_backend=args.shard_backend,
        fault_sizes=fault_scaling,
        fault_workers=args.fault_workers,
        shard_store_sizes=shard_store_scaling,
        shard_store_workers=args.shard_store_workers,
        kernel_micro_n=kernel_micro_n,
        kernel_micro_segments=kernel_micro_segments,
        serving_n=serving_n,
        serving_requests=serving_requests,
        serving_clients=args.serving_clients,
        serving_backend=args.serving_backend,
    )
    for name, entry in report["overlap"].items():
        for algorithm in _ALGORITHMS:
            row = entry.get(algorithm)
            if not row:
                continue
            print(
                f"{name} {algorithm}: dense {row['dense']['wall_s']:.2f}s/"
                f"{row['dense']['peak_mib']:.0f}MiB | sparse "
                f"{row['sparse']['wall_s']:.2f}s/{row['sparse']['peak_mib']:.0f}MiB | "
                f"speedup {row['speedup_wall']:.1f}x mem {row['mem_ratio']:.1f}x"
            )
    for name, entry in report["sparse_scaling"].items():
        dense_note = (
            "feasible" if entry["dense_feasible"] else
            f"INFEASIBLE ({entry['dense_bytes'] / 2**30:.1f} GiB > budget)"
        )
        for algorithm in _ALGORITHMS:
            row = entry.get(algorithm)
            if not row:
                continue
            sp = row["sparse"]
            print(
                f"{name} {algorithm}: sparse {sp['wall_s']:.2f}s/"
                f"{sp['peak_mib']:.0f}MiB work {sp['ledger_work']:.3g} | dense {dense_note}"
            )
    for name, entry in report["clustering_overlap"].items():
        print(
            f"{name}: kcenter dense {entry['dense']['kcenter']['wall_s']:.2f}s | "
            f"sparse {entry['sparse']['kcenter']['wall_s']:.2f}s "
            f"({entry['speedup_wall_kcenter']:.1f}x, mem {entry['mem_ratio_kcenter']:.1f}x) | "
            f"kmedian {entry['speedup_wall_kmedian']:.1f}x"
        )
    for name, entry in report["clustering_scaling"].items():
        dense_note = (
            "feasible" if entry["dense_feasible"] else
            f"INFEASIBLE ({entry['dense_bytes'] / 2**30:.1f} GiB > budget)"
        )
        kc, km = entry["sparse"]["kcenter"], entry["sparse"]["kmedian"]
        print(
            f"{name}: kcenter {kc['wall_s']:.2f}s ({kc['centers']} centers) | "
            f"kmedian {km['wall_s']:.2f}s ({km['swap_rounds']} rounds) | "
            f"dense {dense_note}"
        )
    for name, entry in report["shard_scaling"].items():
        sh = entry["shard"]
        notes = []
        for key, label in (("dense_feasible", "dense"), ("single_csr_feasible", "single-CSR")):
            bkey = key.replace("_feasible", "_bytes")
            notes.append(
                f"{label} " + ("feasible" if entry[key] else f"INFEASIBLE ({entry[bkey] / 2**30:.1f} GiB)")
            )
        if "peak_rss_mib" in sh:
            notes.append(
                f"peak RSS {sh['peak_rss_mib']:.0f} MiB "
                f"(store {sh['store_bytes'] / 2**20:.0f} MiB on disk)"
            )
        print(
            f"{name}: shard_and_solve {sh['wall_s']:.1f}s | true cost {sh['cost_true']:.4g} "
            f"(merged {sh['cost_merged']:.4g}, movement {sh['movement']:.3g}) | "
            f"merged {sh['merged_n']} nodes | " + " | ".join(notes)
        )
    micro = report.get("kernel_microbench", {})
    for spec, entry in micro.items():
        if spec in ("n", "segments"):
            continue
        parts = [
            f"{kname} {kentry['wall_s'] * 1e3:.1f}ms"
            + ("" if kentry["matches_numpy"] else " MISMATCH")
            for kname, kentry in entry.items()
        ]
        print(
            f"kernels[{spec}] n={micro['n']} segs={micro['segments']}: "
            + " | ".join(parts)
        )
    for name, entry in report["fault_recovery"].items():
        print(
            f"{name}: clean {entry['base_wall_s']:.1f}s | retry after crash "
            f"{entry['retry_wall_s']:.1f}s ({entry['retry_overhead']:+.1%}, "
            f"byte-identical={entry['retry_byte_identical']}) | drop "
            f"{entry['drop_wall_s']:.1f}s ({entry['drop_ratio']:.2f}x, covered "
            f"{entry['drop_covered_weight_fraction']:.1%}, certificate "
            f"valid={entry['drop_certificate_valid']})"
        )
    serving = report.get("serving")
    if serving:
        fresh, cached = serving["fresh"], serving["cached"]
        print(
            f"serving[{serving['backend']} n={serving['n']}]: "
            f"{fresh['completed']}/{fresh['requests_sent']} fresh solves over "
            f"{fresh['clients']} clients, {fresh['throughput_rps']:.1f} req/s, "
            f"p50 {fresh['latency_s']['p50'] * 1e3:.0f}ms "
            f"p99 {fresh['latency_s']['p99'] * 1e3:.0f}ms, "
            f"{fresh['failed']} failed | cached {serving['cache_speedup']:.1f}x "
            f"faster | crash byte-identical="
            f"{serving['fault']['byte_identical']}"
        )
        slo = serving.get("slo")
        overhead = serving.get("tracing_overhead")
        if slo or overhead:
            parts = []
            if slo:
                parts.append(f"slo={slo.get('status', '?')}")
            if overhead:
                parts.append(f"tracing overhead {overhead['overhead']:+.1%}")
            print("serving extras: " + " | ".join(parts))
    from repro.obs.tracer import current_tracer

    tracer = current_tracer()
    if tracer.enabled and tracer.path is not None:
        # REPRO_TRACE is live: flush the trace and fold its summary into
        # the committed bench JSON so the profile rides with the numbers.
        from repro.obs.report import load_trace, summarize_trace

        tracer.flush()
        report["trace_summary"] = summarize_trace(load_trace(tracer.path))
        print(f"trace summary attached from {tracer.path}")
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=1)
        print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
