"""Plain-text / markdown table rendering and bench-trace summarization."""

from __future__ import annotations

import numpy as np

from repro.pram.ledger import RoundMark


def summarize_rounds(round_log, label: str, final_work: float) -> dict:
    """Compress a ledger round trace into fixed-size summary stats.

    Raw per-round sample lists grow with the instance (hundreds of
    rounds at 100k clients) and dominate committed bench JSON size; the
    summary keeps the trajectory's shape — how much a round costs at
    the start vs. the end of the run — in O(1) space:
    ``{rounds, work_total, work_first, work_last, work_median}``.

    ``round_log`` holds :class:`repro.pram.ledger.RoundMark` entries;
    bare ``(label, index, work, wall)`` tuples are also accepted.
    """
    marks = [
        m.work for m in map(RoundMark.coerce, round_log) if m.label == label
    ]
    if not marks:
        return {"rounds": 0}
    deltas = np.diff(np.asarray(marks + [final_work]))
    return {
        "rounds": len(marks),
        "work_total": float(deltas.sum()),
        "work_first": float(deltas[0]),
        "work_last": float(deltas[-1]),
        "work_median": float(np.median(deltas)),
    }


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def render_markdown_table(rows: list, columns: list) -> str:
    """Render dict rows as a GitHub-flavored markdown table."""
    if not rows:
        return "(no rows)"
    cells = [[_fmt(row.get(c, "")) for c in columns] for row in rows]
    widths = [
        max(len(str(c)), *(len(r[i]) for r in cells)) for i, c in enumerate(columns)
    ]
    def line(values):
        return "| " + " | ".join(v.ljust(w) for v, w in zip(values, widths)) + " |"
    out = [line([str(c) for c in columns])]
    out.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
    out.extend(line(r) for r in cells)
    return "\n".join(out)
