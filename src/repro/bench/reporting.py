"""Plain-text / markdown table rendering for experiment output."""

from __future__ import annotations


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def render_markdown_table(rows: list, columns: list) -> str:
    """Render dict rows as a GitHub-flavored markdown table."""
    if not rows:
        return "(no rows)"
    cells = [[_fmt(row.get(c, "")) for c in columns] for row in rows]
    widths = [
        max(len(str(c)), *(len(r[i]) for r in cells)) for i, c in enumerate(columns)
    ]
    def line(values):
        return "| " + " | ".join(v.ljust(w) for v, w in zip(values, widths)) + " |"
    out = [line([str(c) for c in columns])]
    out.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
    out.extend(line(r) for r in cells)
    return "\n".join(out)
