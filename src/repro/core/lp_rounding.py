"""§6.2 — Parallel LP filtering + randomized rounding (Theorem 6.5).

Given an *optimal* primal LP solution ``(x, y)`` (the paper assumes it;
our LP substrate provides it), produces an integral solution of cost at
most ``(4+ε)`` times the LP value (with filter parameter ``a = 1/3``,
balancing the facility factor ``1 + 1/a = 4`` against the connection
factor ``3(1+a) = 4``).

Filtering (parallel, one pass): ``δ_j = Σ_i d(i,j)·x_ij``; the ball
``B_j = {i : d(i,j) ≤ (1+a)δ_j}`` holds at least ``a/(1+a)`` of ``j``'s
assignment mass, and ``y′ = min(1, (1+1/a)·y)`` covers every ball
(Lemma 6.2).

Rounding (rounds, eagerly processing near-minimal clients): with ``τ =
min remaining δ`` take ``S = {j : δ_j ≤ (1+ε)τ}``, pick ``J =
MaxUDom`` of the client→ball graph restricted to ``S`` (so chosen
clients have disjoint balls), open the cheapest facility ``i_j`` of
each chosen ball (Claim 6.3 pays for them with the ``y′`` mass), then
retire all of ``S`` and every facility in their balls. A client whose
ball intersects a processed ball is served through the shared facility
within ``3(1+a)(1+ε)δ_j`` (Claim 6.4) and retires too — so active
clients always hold full, untouched balls, keeping the chosen balls
disjoint across the entire run (the Claim 6.3 accounting).

The ``θ/m²`` preprocessing (process ultra-cheap clients in round one)
bounds the rounds at ``O(log_{1+ε} m)``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.dominator import max_u_dominator_set
from repro.core.result import FacilityLocationSolution
from repro.errors import ConvergenceError, InvalidParameterError
from repro.lp.solve import PrimalSolution, solve_primal
from repro.metrics.instance import FacilityLocationInstance
from repro.pram.machine import PramMachine, ensure_machine
from repro.util.validation import check_epsilon

_REL_TOL = 1.0 + 1e-12


def parallel_lp_rounding(
    instance: FacilityLocationInstance,
    primal: PrimalSolution | None = None,
    *,
    epsilon: float = 0.1,
    filter_alpha: float = 1.0 / 3.0,
    machine: PramMachine | None = None,
    seed=None,
    backend=None,
    max_rounds: int | None = None,
) -> FacilityLocationSolution:
    """Round an optimal LP solution to an integral one (Algorithm of §6.2).

    Parameters
    ----------
    primal:
        Optimal LP solution; solved here (sequentially, as substrate)
        when absent — the parallel claim covers only the rounding.
    backend:
        Execution backend name or instance for a freshly constructed
        machine; mutually exclusive with ``machine``. Seeded results
        agree across backends on every tested workload (pool
        backends may reassociate full float sum-reductions in the
        last ulp).
    filter_alpha:
        The filter radius parameter ``a ∈ (0, 1)``; ``1/3`` gives the
        headline ``4+ε``.
    max_rounds:
        Safety bound (default: generous multiple of ``log_{1+ε} m``).

    Returns
    -------
    FacilityLocationSolution
        ``extra`` carries ``delta``, anchor facilities ``i_j``, the LP
        value ``theta``, and per-round trace.
    """
    eps = check_epsilon(epsilon)
    a = float(filter_alpha)
    if not 0.0 < a < 1.0:
        raise InvalidParameterError(f"filter_alpha must lie in (0,1), got {filter_alpha}")
    machine = ensure_machine(machine, backend=backend, seed=seed, size=instance.m)
    if primal is None:
        primal = solve_primal(instance)
    D = instance.D
    f = instance.f.astype(float)
    nf, nc = D.shape
    m = max(instance.m, 2)
    theta = float(primal.value)

    start = machine.snapshot()

    # ---- Filtering ------------------------------------------------------
    delta = machine.reduce(machine.map(np.multiply, D, primal.x), "add", axis=0)
    radius = machine.map(lambda dd: (1.0 + a) * dd * _REL_TOL, delta)
    balls = machine.map(
        lambda d, r: d <= r, D, np.broadcast_to(radius[None, :], D.shape)
    )  # balls[i, j] ⇔ i ∈ B_j
    y_prime = machine.map(lambda yy: np.minimum(1.0, (1.0 + 1.0 / a) * yy), primal.y)
    # Anchor: the cheapest facility of each ball (precomputed once, §6.2).
    anchor = machine.argmin(machine.where(balls, f[:, None], np.inf), axis=0)

    # ---- Rounding rounds ---------------------------------------------------
    cap = max_rounds if max_rounds is not None else 64 + 8 * math.ceil(
        math.log(m) / math.log1p(eps)
    )
    active_c = np.ones(nc, dtype=bool)
    active_f = np.ones(nf, dtype=bool)
    opened = np.zeros(nf, dtype=bool)
    preprocess_cut = theta / (m * m)
    round_trace: list[dict] = []
    rounds = 0

    while active_c.any():
        rounds += 1
        machine.bump_round("rounding")
        if rounds > cap:
            raise ConvergenceError(f"LP rounding exceeded {cap} rounds (m={m}, eps={eps})")
        masked_delta = machine.where(active_c, delta, np.inf)
        tau = float(machine.reduce(masked_delta, "min"))
        cut = max(tau * (1.0 + eps), preprocess_cut if rounds == 1 else 0.0) * _REL_TOL
        S = machine.map(lambda dd, ac: ac & (dd <= cut), delta, active_c)

        # Live ball graph: client j (in S) ↔ facility i ∈ B_j still active.
        live = machine.map(
            lambda b, af, s: b & af & s,
            balls,
            np.broadcast_to(active_f[:, None], balls.shape),
            np.broadcast_to(S[None, :], balls.shape),
        )
        # MaxUDom over clients (U side) sharing facilities (V side):
        # transpose the incidence so U = clients.
        J = max_u_dominator_set(machine.transpose(live), machine, candidates=S)

        # Open the anchor of every chosen client.
        chosen_anchors = np.unique(anchor[J]) if J.any() else np.empty(0, dtype=int)
        opened[chosen_anchors] = True

        # Retire all processed clients and every facility in their balls.
        retired_f = machine.reduce(live, "or", axis=1)  # facilities in ∪_{j∈S} B_j
        active_f &= ~retired_f
        active_c &= ~S
        # A client whose ball lost *any* facility retires too — it is
        # served through the shared facility within 3(1+a)(1+ε)δ_j
        # (Claim 6.4). This keeps every active client's ball fully
        # intact, which is what makes the chosen balls disjoint across
        # the entire run (Claim 6.3's accounting).
        ball_hit = machine.reduce(
            machine.map(
                lambda b, rf: b & rf,
                balls,
                np.broadcast_to(retired_f[:, None], balls.shape),
            ),
            "or",
            axis=0,
        )
        touched = machine.map(lambda ac, bh: ac & bh, active_c, ball_hit)
        active_c &= ~touched

        round_trace.append(
            {
                "tau": tau,
                "processed": int(S.sum()),
                "chosen": int(J.sum()),
                "ball_retired": int(touched.sum()),
                "facilities_retired": int(retired_f.sum()),
            }
        )

    opened_idx = np.flatnonzero(opened)
    return FacilityLocationSolution(
        opened=opened_idx,
        cost=instance.cost(opened_idx),
        facility_cost=instance.facility_cost(opened_idx),
        connection_cost=instance.connection_cost(opened_idx),
        alpha=None,
        rounds=dict(machine.ledger.rounds),
        model_costs=machine.ledger.since(start),
        extra={
            "delta": delta,
            "anchor": anchor,
            "theta": theta,
            "filter_alpha": a,
            "epsilon": eps,
            "y_prime": y_prime,
            "trace": round_trace,
        },
    )
