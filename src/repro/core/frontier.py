"""Frontier-compaction policy shared by the §4/§5/§3 algorithms.

The paper charges each round ``O(m)`` work *over the remaining
instance*: once clients are served (or duals frozen, or MIS candidates
eliminated), they must stop costing anything. The compacted execution
paths in :mod:`repro.core.greedy`, :mod:`repro.core.primal_dual`, and
:mod:`repro.core.dominator` realize that by gathering the live rows and
columns into dense submatrices (``take_rows``/``pack_rows``) and
running every per-round primitive on those, so wall-clock and
ledger-charged work are both proportional to the frontier.

Every algorithm takes a ``compaction`` argument resolved here:

* ``"auto"`` (default) — compact when the instance is large enough for
  the asymptotics to beat the constant-factor overhead of carving out
  submatrices (``size >= AUTO_COMPACTION_MIN_SIZE``);
* ``True`` — always compact (the equivalence tests force this);
* ``False`` — the original full-matrix execution, kept verbatim as the
  reference implementation. Seeded runs of both paths return identical
  solutions on every tested workload; the equivalence suite asserts
  exact equality.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError

#: Instance sizes (``m = n_f · n_c`` or ``n²`` for graphs) below which
#: ``"auto"`` keeps the plain full-matrix path: on tiny inputs the
#: Python-level index bookkeeping costs more than the saved arithmetic.
AUTO_COMPACTION_MIN_SIZE = 4096


def resolve_compaction(compaction, size: int) -> bool:
    """Decide whether the compacted path runs for an instance of ``size``.

    Parameters
    ----------
    compaction:
        ``True``, ``False``, or ``"auto"`` (see module docstring).
    size:
        The instance's element count (the paper's ``m``).
    """
    # NumPy bools arise naturally from size comparisons like
    # ``n_f * n_c > threshold`` — accept them alongside plain bools
    # (an identity check against True/False would reject np.True_).
    if isinstance(compaction, (bool, np.bool_)):
        return bool(compaction)
    if compaction == "auto":
        return bool(size >= AUTO_COMPACTION_MIN_SIZE)
    raise InvalidParameterError(
        f"compaction must be True, False, or 'auto', got {compaction!r}"
    )
