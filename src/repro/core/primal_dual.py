"""§5 — Parallel primal–dual facility location (Algorithm 5.1, Thm 5.4).

Parallelizes Jain–Vazirani by raising all unfrozen client duals along
the geometric schedule ``α = (γ/m²)(1+ε)^ℓ`` instead of continuously:

* a facility opens once ``Σ_j max(0, (1+ε)α_j − d(j,i)) ≥ f_i`` —
  the ``(1+ε)`` lookahead guarantees no facility is ever *overtight*
  at the recorded α (Claim 5.1: the produced α, canonically completed
  with ``β_ij = max(0, α_j − d(j,i))``, is dual feasible — the test
  suite asserts this on every run);
* a client freezes once an open facility is within ``(1+ε)α_j``;
* edges ``(1+ε)α_j > d(j,i)`` to open facilities accumulate in a
  bipartite contribution graph ``H``;
* postprocessing takes ``I = MaxUDom(H)`` so each client pays at most
  one surviving facility, giving the ``(3+ε)`` guarantee via
  Lemmas 5.2/5.3 (the LMP inequality Eq. (5) is also asserted).

Preprocessing opens every facility payable at level ``γ/m²`` for free
(total damage ≤ 3γ/m) which pins the iteration count at
``≤ 3·log_{1+ε} m + O(1)``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.dominator import max_u_dominator_set
from repro.core.greedy import _instance_gamma
from repro.core.result import FacilityLocationSolution
from repro.errors import ConvergenceError
from repro.metrics.instance import FacilityLocationInstance
from repro.pram.machine import PramMachine
from repro.util.validation import check_epsilon

_REL_TOL = 1.0 + 1e-12


def parallel_primal_dual(
    instance: FacilityLocationInstance,
    *,
    epsilon: float = 0.1,
    machine: PramMachine | None = None,
    seed=None,
    preprocess: bool = True,
    max_iterations: int | None = None,
) -> FacilityLocationSolution:
    """Run Algorithm 5.1 to completion.

    Parameters
    ----------
    epsilon:
        Geometric raising slack ``ε > 0``; the guarantee is ``(3+ε′)``
        with ``ε′ → 0`` as ``ε → 0``.
    preprocess:
        Open "free" facilities at level ``γ/m²`` first (§5
        preprocessing). Disable for the E5 ablation — without it the
        iteration count depends on the instance's distance spread.
    max_iterations:
        Safety bound; the default is the analysis bound
        ``3·log_{1+ε}(m) + 8`` when preprocessing is on, and a spread-
        dependent bound otherwise.

    Returns
    -------
    FacilityLocationSolution
        ``alpha`` holds the exact duals; ``extra`` includes the free
        facility set ``F0``, the tentative set ``F_T``, and the
        surviving independent set ``I``.
    """
    eps = check_epsilon(epsilon)
    machine = machine if machine is not None else PramMachine(seed=seed)
    D = instance.D
    f = instance.f.astype(float)
    nf, nc = D.shape
    m = max(instance.m, 2)

    start = machine.snapshot()
    gamma = _instance_gamma(machine, D, f)
    # Degenerate but legal: γ = 0 means every client has a zero-cost,
    # zero-distance facility; the preprocessing opens them all below.
    base = gamma / (m * m) if gamma > 0 else 0.0

    alpha = np.zeros(nc, dtype=float)
    frozen = np.zeros(nc, dtype=bool)
    free_open = np.zeros(nf, dtype=bool)  # F0
    tent_open = np.zeros(nf, dtype=bool)  # F_T (opened during main loop)
    H = np.zeros((nf, nc), dtype=bool)

    if preprocess or gamma == 0.0:
        paid0 = machine.reduce(
            machine.map(lambda d: np.maximum(0.0, base * _REL_TOL - d), D), "add", axis=1
        )
        free_open = machine.map(lambda p, ff: p >= ff / _REL_TOL, paid0, f)
        if free_open.any():
            near = machine.map(
                lambda d, fo: fo & (d <= base * _REL_TOL),
                D,
                np.broadcast_to(free_open[:, None], D.shape),
            )
            freely = machine.reduce(near, "or", axis=0)
            frozen |= freely  # α stays 0 for freely connected clients

    # The schedule sweeps [γ/m², n_c·γ] regardless of preprocessing, so
    # the §5 bound ℓ ≤ 3·log_{1+ε} m applies to both modes (preprocessing
    # buys dual feasibility, not fewer iterations — see tests/benches).
    if max_iterations is not None:
        iter_cap = max_iterations
    else:
        iter_cap = math.ceil(3.0 * math.log(m) / math.log1p(eps)) + 8

    if gamma == 0.0:
        frozen[:] = True  # everyone has a free zero-distance facility

    iterations = 0
    while not frozen.all():
        iterations += 1
        machine.bump_round("pd_iterations")
        if iterations > iter_cap:
            raise ConvergenceError(
                f"primal–dual exceeded {iter_cap} iterations (m={m}, eps={eps})"
            )
        t = base * (1.0 + eps) ** (iterations - 1) if base > 0 else 0.0
        # Step 1: raise unfrozen duals to the schedule level.
        alpha = machine.where(frozen, alpha, t)
        # Step 2: open facilities whose (1+ε)-lookahead payment covers f.
        paid = machine.reduce(
            machine.map(
                lambda d, a: np.maximum(0.0, (1.0 + eps) * a - d),
                D,
                np.broadcast_to(alpha[None, :], D.shape),
            ),
            "add",
            axis=1,
        )
        openable = machine.map(
            lambda p, ff, fo, to: (p * _REL_TOL >= ff) & ~fo & ~to, paid, f, free_open, tent_open
        )
        tent_open |= openable
        # Step 3: freeze unfrozen clients reaching any open facility.
        any_open = machine.map(lambda fo, to: fo | to, free_open, tent_open)
        if any_open.any():
            reachable = machine.reduce(
                machine.map(
                    lambda d, a, op: op & ((1.0 + eps) * a * _REL_TOL >= d),
                    D,
                    np.broadcast_to(alpha[None, :], D.shape),
                    np.broadcast_to(any_open[:, None], D.shape),
                ),
                "or",
                axis=0,
            )
            frozen |= reachable
        # Step 4: accumulate contribution edges to tentatively open facilities.
        H |= machine.map(
            lambda d, a, to: to & ((1.0 + eps) * a > d),
            D,
            np.broadcast_to(alpha[None, :], D.shape),
            np.broadcast_to(tent_open[:, None], D.shape),
        )
        # Exhaustion rule: if every facility is open but clients remain
        # unfrozen, connect them directly (α_j = min_i d(j,i)).
        if not frozen.all() and bool(np.all(free_open | tent_open)):
            nearest = machine.reduce(D, "min", axis=0)
            alpha = machine.where(frozen, alpha, np.maximum(nearest, alpha))
            frozen[:] = True
            H |= machine.map(
                lambda d, a, to: to & ((1.0 + eps) * a > d),
                D,
                np.broadcast_to(alpha[None, :], D.shape),
                np.broadcast_to(tent_open[:, None], D.shape),
            )

    # Post-processing: survivors = maximal U-dominator set of H over F_T.
    if tent_open.any():
        survivors = max_u_dominator_set(H, machine, candidates=tent_open)
    else:
        survivors = np.zeros(nf, dtype=bool)
    final_open = survivors | free_open
    if not final_open.any():
        # Only possible when no client exists to pay anything — open the
        # cheapest facility to return a valid solution shape.
        final_open[int(np.argmin(f))] = True

    opened_idx = np.flatnonzero(final_open)
    return FacilityLocationSolution(
        opened=opened_idx,
        cost=instance.cost(opened_idx),
        facility_cost=instance.facility_cost(opened_idx),
        connection_cost=instance.connection_cost(opened_idx),
        alpha=alpha,
        rounds=dict(machine.ledger.rounds),
        model_costs=machine.ledger.since(start),
        extra={
            "gamma": gamma,
            "F0": np.flatnonzero(free_open),
            "F_T": np.flatnonzero(tent_open),
            "I": np.flatnonzero(survivors),
            "H": H,
            "epsilon": eps,
        },
    )
